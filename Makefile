GO ?= go

## VERSION is stamped into the binaries (and harmony_build_info) via the
## linker; override with `make build VERSION=v1.2.3`.
VERSION ?= dev
LDFLAGS := -ldflags "-X harmony/internal/obs.Version=$(VERSION)"

.PHONY: check fmt vet build test race ctl-smoke comm-smoke comp-smoke obs-smoke ps-rebalance-smoke fair-smoke place-smoke admit-smoke snapshot-smoke bench-smoke bench-report bench-comm bench-comp bench-rebalance bench-fair bench-place bench-admit trace-demo

## check: full local gate — gofmt, vet, build, race-enabled tests, bench smoke run
check: fmt vet build ctl-smoke comm-smoke comp-smoke obs-smoke ps-rebalance-smoke fair-smoke place-smoke admit-smoke snapshot-smoke race bench-smoke

## fmt: fail if any file is not gofmt-formatted
fmt:
	@files=$$(gofmt -l .); \
	if [ -n "$$files" ]; then \
		echo "gofmt needed on:"; echo "$$files"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build $(LDFLAGS) ./...

test:
	$(GO) test ./...

## race: the race detector guards the scheduler search and experiment pool
race:
	$(GO) test -race ./...

## ctl-smoke: fast race-enabled pass over the control plane (HTTP API +
## live-master admission integration)
ctl-smoke:
	$(GO) test -race ./internal/ctl/...

## comm-smoke: short race-enabled pass over the striped pull/push data
## plane (concurrent jobs, snapshots mid-push)
comm-smoke:
	$(GO) test -race -run 'TestCommPathRaceSmoke' ./internal/ps/

## comp-smoke: short race-enabled pass over the fast COMP path (cache
## invalidation vs concurrent spill retunes)
comp-smoke:
	$(GO) test -race -run 'TestCompPathRaceSmoke' ./internal/worker/

## ps-rebalance-smoke: race-enabled pass over the elastic PS — live
## stripe migration under concurrent pull/push (bit-exact vs a
## no-migration control) and the skewed-load rebalance loop
ps-rebalance-smoke:
	$(GO) test -race -run 'TestMigrat|TestPSRebalanceSmoke' ./internal/ps/

## fair-smoke: race-enabled pass over the fair scheduler — queue policy
## unit tests, the deterministic fair-vs-FIFO simulation, and the
## concurrent enqueue/cancel/preempt churn property test
fair-smoke:
	$(GO) test -race ./internal/fair/
	$(GO) test -race -run 'TestFair' ./internal/master/ ./internal/ctl/

## place-smoke: race-enabled pass over the network-aware placement layer —
## the interleave solver (determinism, order independence), the link
## model (demand-curve conservation, capacities), the contention physics
## at 100-machine scale, and NetModel parallel/sequential bit-identity
place-smoke:
	$(GO) test -race -run 'TestSolveInterleave|TestCompFloor|TestGroupCompatibility' ./internal/core/
	$(GO) test -race -run 'TestScheduleParallelMatchesSequentialNetModel' ./internal/core/
	$(GO) test -race -run 'TestNewLinkModel|TestDemandCurve|TestGroupDemand|TestLinkContention' ./internal/sim/

## obs-smoke: race-enabled pass over the tracing subsystem (span ring,
## histograms, traced 2-job live cluster with a worker killed mid-run)
obs-smoke:
	$(GO) test -race ./internal/obs/ ./internal/metrics/
	$(GO) test -race -run 'TestExecutorRecordsSpans' ./internal/subtask/
	$(GO) test -race -run 'TestTracedClusterOverHTTP' ./internal/ctl/

## admit-smoke: race-enabled pass over the admission fast path — Scorer
## bit-identity property tests, fast-vs-legacy decision parity on a live
## cluster, zero-full-rescore regression, the coalescing drainer, and the
## concurrent status-reader/enqueue-churn stress test
admit-smoke:
	$(GO) test -race -run 'TestScorer|TestIncrementalAdmissionBitIdentical|TestScoreDeltaAllocFree|TestRegroupAfterFinish' ./internal/core/
	$(GO) test -race -run 'TestAdmit|TestWakeDrainerCoalesces|TestWorkerSetKeyOrder' ./internal/master/

## snapshot-smoke: race-enabled pass over snapshot/replay — journal ring
## wraparound under concurrent append/read, state capture on a live
## cluster, the deterministic replay engine with its golden corpus, and
## the capture → replay-twice → /metrics HTTP integration
snapshot-smoke:
	$(GO) test -race -run 'TestJournal|TestSnapshot' ./internal/master/
	$(GO) test -race ./internal/replay/
	$(GO) test -race -run 'TestSnapshotReplayOverHTTP|TestEventsFilters|TestSnapshotEndpoint|TestReplayEndpointFeedsMetrics' ./internal/ctl/

## bench-smoke: quick pass over the perf-critical benchmarks with -benchmem
bench-smoke:
	$(GO) test ./internal/core/ -run XXX -bench BenchmarkScheduleLarge -benchmem -benchtime 3x
	$(GO) test ./internal/sim/ -run XXX -bench BenchmarkRunHarmonyBase -benchmem -benchtime 3x
	$(GO) test ./internal/ps/ -run XXX -bench BenchmarkPullPush -benchmem -benchtime 3x
	$(GO) test . -run XXX -bench BenchmarkFig10Parallel -benchtime 1x

## bench-report: machine-readable speedup report (BENCH_schedule.json)
bench-report:
	$(GO) run ./cmd/harmony-bench -bench

## bench-comm: data-plane report — binary codec vs gob baseline
## (BENCH_commpath.json)
bench-comm:
	$(GO) test ./internal/ps/ -run XXX -bench 'BenchmarkPullPush' -benchmem
	$(GO) run ./cmd/harmony-bench -bench-comm

## bench-comp: compute-path report — cached binary blocks + fused
## multicore kernel vs the gob-decode serial baseline (BENCH_comppath.json)
bench-comp:
	$(GO) test ./internal/worker/ -run XXX -bench 'BenchmarkComp' -benchmem
	$(GO) run ./cmd/harmony-bench -bench-comp

## bench-rebalance: elastic-PS report — skewed-access throughput and p99
## stripe lock-wait with hot-stripe rebalancing off vs on
## (BENCH_psrebalance.json)
bench-rebalance:
	$(GO) test ./internal/ps/ -run XXX -bench 'BenchmarkPSRebalance' -benchtime 2x
	$(GO) run ./cmd/harmony-bench -bench-rebalance

## bench-fair: fair-scheduler report — two-tenant contention
## (time-to-fair-share, preemption-to-resume latency) under the fair
## policy vs the FIFO baseline (BENCH_fair.json)
bench-fair:
	$(GO) run ./cmd/harmony-bench -bench-fair

## bench-place: network-aware placement report — comm-heavy two-per-group
## workload at 100 machines under link-contention physics, scheduler's
## aggregate-bandwidth model vs the net-aware model with CASSINI-style
## interleaving (BENCH_placement.json)
bench-place:
	$(GO) run ./cmd/harmony-bench -bench-place

## bench-admit: cluster-scale admission report — 1K workers, 10K held
## arrivals, completion-churn drain passes; incremental fast path vs the
## clone-and-rescore baseline (BENCH_admit.json)
bench-admit:
	$(GO) run ./cmd/harmony-bench -bench-admit

## trace-demo: run a traced 2-worker, 2-job live cluster and write
## trace.json (open at https://ui.perfetto.dev)
trace-demo:
	$(GO) run $(LDFLAGS) ./cmd/harmony-trace-demo -o trace.json
