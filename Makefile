GO ?= go

.PHONY: check vet build test race bench-smoke bench-report

## check: full local gate — vet, build, race-enabled tests, bench smoke run
check: vet build race bench-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

## race: the race detector guards the scheduler search and experiment pool
race:
	$(GO) test -race ./...

## bench-smoke: quick pass over the perf-critical benchmarks with -benchmem
bench-smoke:
	$(GO) test ./internal/core/ -run XXX -bench BenchmarkScheduleLarge -benchmem -benchtime 3x
	$(GO) test ./internal/sim/ -run XXX -bench BenchmarkRunHarmonyBase -benchmem -benchtime 3x
	$(GO) test . -run XXX -bench BenchmarkFig10Parallel -benchtime 1x

## bench-report: machine-readable speedup report (BENCH_schedule.json)
bench-report:
	$(GO) run ./cmd/harmony-bench -bench
