GO ?= go

.PHONY: check fmt vet build test race ctl-smoke bench-smoke bench-report

## check: full local gate — gofmt, vet, build, race-enabled tests, bench smoke run
check: fmt vet build ctl-smoke race bench-smoke

## fmt: fail if any file is not gofmt-formatted
fmt:
	@files=$$(gofmt -l .); \
	if [ -n "$$files" ]; then \
		echo "gofmt needed on:"; echo "$$files"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

## race: the race detector guards the scheduler search and experiment pool
race:
	$(GO) test -race ./...

## ctl-smoke: fast race-enabled pass over the control plane (HTTP API +
## live-master admission integration)
ctl-smoke:
	$(GO) test -race ./internal/ctl/...

## bench-smoke: quick pass over the perf-critical benchmarks with -benchmem
bench-smoke:
	$(GO) test ./internal/core/ -run XXX -bench BenchmarkScheduleLarge -benchmem -benchtime 3x
	$(GO) test ./internal/sim/ -run XXX -bench BenchmarkRunHarmonyBase -benchmem -benchtime 3x
	$(GO) test . -run XXX -bench BenchmarkFig10Parallel -benchtime 1x

## bench-report: machine-readable speedup report (BENCH_schedule.json)
bench-report:
	$(GO) run ./cmd/harmony-bench -bench
