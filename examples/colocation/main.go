// Colocation retells the paper's motivation (Fig. 4 and Fig. 5): naively
// co-locating PS jobs averages utilization out at ~50% and can blow past
// machine memory, while Harmony's subtask multiplexing drives both
// resources high on the same machines.
//
//	go run ./examples/colocation
package main

import (
	"fmt"
	"log"

	"harmony"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Jobs with complementary resource usage — computation-heavy,
	// communication-heavy, and balanced — the mix the paper's grouping
	// seeks out (§IV-B).
	jobs := []harmony.WorkloadJob{
		{Job: harmony.Job{
			ID: "nmf-compute", CompSeconds: 1920, NetSeconds: 30,
			InputGB: 5, ModelGB: 0.5, WorkGB: 0.5,
		}, Iterations: 40},
		{Job: harmony.Job{
			ID: "lasso-comm", CompSeconds: 240, NetSeconds: 130,
			InputGB: 6, ModelGB: 1.5, WorkGB: 0.5,
		}, Iterations: 40},
		{Job: harmony.Job{
			ID: "lda-balanced", CompSeconds: 960, NetSeconds: 60,
			InputGB: 3, ModelGB: 1.0, WorkGB: 0.5,
		}, Iterations: 40},
	}

	for _, setup := range []struct {
		name      string
		scheduler harmony.Scheduler
	}{
		{"each job on its own machines (isolated)", harmony.IsolatedScheduler},
		{"uncoordinated sharing (naive)", harmony.NaiveScheduler},
		{"subtask multiplexing (harmony)", harmony.HarmonyScheduler},
	} {
		rep, err := harmony.Simulate(harmony.SimConfig{
			Machines: 16, Scheduler: setup.scheduler, Seed: 1}, jobs)
		if err != nil {
			return err
		}
		fmt.Printf("%-42s CPU %3.0f%%  net %3.0f%%  makespan %s\n",
			setup.name, rep.CPUUtil*100, rep.NetUtil*100, rep.Makespan.Round(1e9))
	}

	fmt.Println()
	fmt.Println("With subtask multiplexing, one job computes while the others")
	fmt.Println("communicate (Fig. 5b); without coordination their phases collide,")
	fmt.Println("and with dedicated machines the resources simply idle (Fig. 2).")
	return nil
}
