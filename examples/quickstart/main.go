// Quickstart: schedule a small mix of ML training jobs with Harmony and
// compare the simulated outcome against dedicated per-job allocations.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"harmony"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Eight jobs drawn from the paper's evaluation workload (the
	// simulation finishes in milliseconds of wall time regardless).
	jobs := harmony.SmallWorkload(8)
	for i := range jobs {
		jobs[i].Iterations = 24
	}

	// First look at a pure scheduling decision: which jobs does Harmony
	// co-locate, and what utilization does the model predict?
	var profiles []harmony.Job
	for _, j := range jobs {
		profiles = append(profiles, j.Job)
	}
	plan := harmony.Schedule(profiles, 32, harmony.ScheduleOptions{})
	fmt.Println("Harmony's grouping decision for 32 machines:")
	for i, g := range plan.Groups {
		fmt.Printf("  group %d: %d machines, predicted iteration %.0fs, CPU %.0f%%, net %.0f%%\n",
			i, g.Machines, g.PredictedIterSeconds, g.CPUUtil*100, g.NetUtil*100)
		for _, j := range g.Jobs {
			fmt.Printf("    %-24s comp %.0f machine-s/iter, comm %.0f s/iter\n",
				j.ID, j.CompSeconds, j.NetSeconds)
		}
	}
	fmt.Printf("  predicted cluster utilization: CPU %.0f%%, network %.0f%%\n\n",
		plan.CPUUtil*100, plan.NetUtil*100)

	// Then execute the workload under both schedulers.
	iso, err := harmony.Simulate(harmony.SimConfig{
		Machines: 32, Scheduler: harmony.IsolatedScheduler, Seed: 1}, jobs)
	if err != nil {
		return err
	}
	har, err := harmony.Simulate(harmony.SimConfig{
		Machines: 32, Scheduler: harmony.HarmonyScheduler, Seed: 1}, jobs)
	if err != nil {
		return err
	}

	fmt.Println("Executing the 8-job workload on 32 machines:")
	fmt.Printf("  isolated: mean JCT %-12s makespan %-12s CPU %.0f%%  net %.0f%%\n",
		iso.MeanJCT.Round(1e9), iso.Makespan.Round(1e9), iso.CPUUtil*100, iso.NetUtil*100)
	fmt.Printf("  harmony:  mean JCT %-12s makespan %-12s CPU %.0f%%  net %.0f%%\n",
		har.MeanJCT.Round(1e9), har.Makespan.Round(1e9), har.CPUUtil*100, har.NetUtil*100)
	fmt.Printf("  speedup: %.2fx JCT, %.2fx makespan\n",
		iso.MeanJCT.Seconds()/har.MeanJCT.Seconds(),
		iso.Makespan.Seconds()/har.Makespan.Seconds())
	return nil
}
