// Liveps runs the real Harmony runtime in one process: a master and three
// workers over loopback TCP train two co-located Parameter-Server jobs
// (multinomial logistic regression and lasso) with genuine gradient
// computation, subtask multiplexing, and a mid-run pause/checkpoint/
// migrate of one job to a smaller worker group (§IV-B4).
//
//	go run ./examples/liveps
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"harmony"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	master, err := harmony.StartMaster("127.0.0.1:0", harmony.ScheduleOptions{})
	if err != nil {
		return err
	}
	defer master.Close()

	spill, err := os.MkdirTemp("", "harmony-liveps")
	if err != nil {
		return err
	}
	defer os.RemoveAll(spill)

	for _, name := range []string{"alpha", "beta", "gamma"} {
		w, err := harmony.StartWorker(name, "127.0.0.1:0", master.Addr(), spill)
		if err != nil {
			return err
		}
		defer w.Close()
	}
	if err := master.WaitForWorkers(3, 5*time.Second); err != nil {
		return err
	}
	fmt.Printf("master at %s with workers %v\n\n", master.Addr(), master.Workers())

	// Two co-located jobs: a computation-heavy classifier and a
	// communication-light regression.
	if err := master.Submit(harmony.Training{
		Name:       "mlr",
		Config:     harmony.TrainingConfig{Algorithm: "mlr", Features: 24, Classes: 4, Rows: 384},
		Iterations: 30,
		Alpha:      0.3, // keep 30% of input blocks spilled
		Seed:       11,
	}); err != nil {
		return err
	}
	if err := master.Submit(harmony.Training{
		Name:       "lasso",
		Config:     harmony.TrainingConfig{Algorithm: "lasso", Features: 24, Rows: 256, Lambda: 0.02},
		Iterations: 30,
		Seed:       12,
	}); err != nil {
		return err
	}

	// Watch a few iterations, then migrate the lasso job to two workers.
	waitForIteration(master, "lasso", 4)
	checkpoint, err := master.Pause("lasso", 30*time.Second)
	if err != nil {
		return err
	}
	fmt.Printf("paused lasso with a %d-parameter checkpoint; migrating to 2 workers\n",
		len(checkpoint))
	if err := master.Resume("lasso", []string{"alpha", "beta"}, checkpoint); err != nil {
		return err
	}

	for _, job := range []string{"mlr", "lasso"} {
		if err := master.Wait(job, 2*time.Minute); err != nil {
			return err
		}
		iter, loss, _, err := master.Progress(job)
		if err != nil {
			return err
		}
		prof, _ := master.ProfiledJob(job)
		fmt.Printf("%-6s converged after iteration %2d, final loss %.4f "+
			"(profiled comp %.1fms/machine-iter, comm %.1fms)\n",
			job, iter, loss, prof.CompSeconds*1000, prof.NetSeconds*1000)
	}

	cpu, net, err := master.Utilization()
	if err != nil {
		return err
	}
	fmt.Printf("\nworker executors: CPU busy %.0f%%, network lanes busy %.0f%%\n",
		cpu*100, net*100)

	if groups, err := master.PlanGroups(); err == nil {
		fmt.Println("Algorithm 1 over the live profiles would place:")
		for job, members := range groups {
			fmt.Printf("  %-6s -> %v\n", job, members)
		}
	}
	return nil
}

func waitForIteration(m *harmony.Master, job string, iter int) {
	deadline := time.Now().Add(time.Minute)
	for time.Now().Before(deadline) {
		got, _, finished, err := m.Progress(job)
		if err == nil && (got >= iter || finished) {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
}
