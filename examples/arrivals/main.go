// Arrivals demonstrates dynamic regrouping (§IV-B4): jobs submitted over
// time are profiled, placed into the group that maximizes utilization or
// queued, and pulled back in as completions free resources.
//
//	go run ./examples/arrivals
package main

import (
	"fmt"
	"log"
	"time"

	"harmony"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Sixteen paper-derived jobs arriving two minutes apart.
	jobs := harmony.SmallWorkload(16)
	for i := range jobs {
		jobs[i].Iterations = 15
		jobs[i].CompSeconds /= 8
		jobs[i].NetSeconds /= 8
		jobs[i].Arrival = time.Duration(i) * 2 * time.Minute
	}

	iso, err := harmony.Simulate(harmony.SimConfig{
		Machines: 24, Scheduler: harmony.IsolatedScheduler, Seed: 1}, jobs)
	if err != nil {
		return err
	}
	har, err := harmony.Simulate(harmony.SimConfig{
		Machines: 24, Scheduler: harmony.HarmonyScheduler, Seed: 1}, jobs)
	if err != nil {
		return err
	}

	fmt.Println("16 jobs arriving 2 minutes apart on 24 machines:")
	fmt.Printf("  isolated: mean JCT %-12s makespan %-12s CPU %3.0f%%\n",
		iso.MeanJCT.Round(time.Second), iso.Makespan.Round(time.Second), iso.CPUUtil*100)
	fmt.Printf("  harmony:  mean JCT %-12s makespan %-12s CPU %3.0f%%\n",
		har.MeanJCT.Round(time.Second), har.Makespan.Round(time.Second), har.CPUUtil*100)
	fmt.Printf("  harmony kept %.1f jobs running in %.1f groups on average\n\n",
		har.MeanConcurrentJobs, har.MeanGroups)

	fmt.Println("cluster CPU utilization over time (one char ≈ equal time slice):")
	fmt.Printf("  isolated %s\n", sparkline(iso.CPUSeries))
	fmt.Printf("  harmony  %s\n", sparkline(har.CPUSeries))
	return nil
}

func sparkline(series []float64) string {
	const width = 60
	levels := []rune("▁▂▃▄▅▆▇█")
	if len(series) == 0 {
		return ""
	}
	out := make([]rune, 0, width)
	for i := 0; i < width; i++ {
		lo := i * len(series) / width
		hi := (i + 1) * len(series) / width
		if hi <= lo {
			hi = lo + 1
		}
		var sum float64
		n := 0
		for k := lo; k < hi && k < len(series); k++ {
			sum += series[k]
			n++
		}
		idx := int(sum / float64(n) * float64(len(levels)))
		if idx >= len(levels) {
			idx = len(levels) - 1
		}
		if idx < 0 {
			idx = 0
		}
		out = append(out, levels[idx])
	}
	return string(out)
}
