package harmony

import (
	"time"

	"harmony/internal/ctl"
	"harmony/internal/fair"
	"harmony/internal/master"
	"harmony/internal/worker"
)

// Master coordinates live workers: it submits Parameter-Server training
// jobs, synchronizes their distributed iterations, profiles subtask
// times, and migrates jobs between worker groups (§IV-B4).
type Master struct {
	m *master.Master
}

// StartMaster launches the master's RPC endpoint; use "127.0.0.1:0" to
// bind an ephemeral port.
func StartMaster(addr string, opts ScheduleOptions) (*Master, error) {
	m, err := master.New(addr, opts.internal())
	if err != nil {
		return nil, err
	}
	return &Master{m: m}, nil
}

// Addr is the address workers dial.
func (m *Master) Addr() string { return m.m.Addr() }

// WaitForWorkers blocks until n workers have registered.
func (m *Master) WaitForWorkers(n int, timeout time.Duration) error {
	return m.m.WaitForWorkers(n, timeout)
}

// Workers lists the registered worker names.
func (m *Master) Workers() []string { return m.m.Workers() }

// EnableTracing turns on cluster span collection: the master pulls
// subtask/barrier spans from tracing workers over the Stats path and
// serves them at the control plane's /v1/trace as Chrome trace-event
// JSON, with phase latency histograms and per-group overlap gauges on
// /metrics. Workers record spans only when started with tracing
// themselves (Worker.EnableTracing / harmony-worker -trace).
func (m *Master) EnableTracing() { m.m.EnableTracing(0) }

// Training is a live job submission.
type Training struct {
	// Name uniquely identifies the job.
	Name string
	// Config sizes the synthetic learning problem.
	Config TrainingConfig
	// Iterations until the job completes.
	Iterations int
	// Alpha is the initial disk-spill ratio for input blocks (§IV-C).
	Alpha float64
	// Seed keeps data generation reproducible.
	Seed int64
	// Queue names the fair-scheduler queue; empty means "default".
	Queue string
	// Priority orders the job within its queue (higher first).
	Priority int
	// MinWorkers is the gang size: the full worker set places
	// atomically or the job holds pending — never a partial gang.
	MinWorkers int
	// MaxWorkers caps the placement size; 0 means no cap.
	MaxWorkers int
	// Workers restricts the job to a worker subset; nil uses all.
	Workers []string
}

// Submit loads and starts a training job across its worker group.
func (m *Master) Submit(t Training) error {
	cfg, err := t.Config.internal()
	if err != nil {
		return err
	}
	return m.m.Submit(master.JobSpec{
		Name:       t.Name,
		Config:     cfg,
		Iterations: t.Iterations,
		Alpha:      t.Alpha,
		Seed:       t.Seed,
		Queue:      t.Queue,
		Priority:   t.Priority,
		MinWorkers: t.MinWorkers,
		MaxWorkers: t.MaxWorkers,
	}, t.Workers)
}

// Wait blocks until the named job converges.
func (m *Master) Wait(name string, timeout time.Duration) error {
	return m.m.WaitJob(name, timeout)
}

// Progress reports a job's last completed iteration and current loss.
func (m *Master) Progress(name string) (iteration int, loss float64, finished bool, err error) {
	status, iter, l, err := m.m.Status(name)
	if err != nil {
		return 0, 0, false, err
	}
	return iter, l, status == master.StatusFinished, nil
}

// ProfiledJob reports the runtime-profiled metrics for a job, in the
// scheduler's units.
func (m *Master) ProfiledJob(name string) (Job, bool) {
	met, ok := m.m.Metrics(name)
	if !ok {
		return Job{}, false
	}
	return Job{ID: name, CompSeconds: met.CompMachineSeconds, NetSeconds: met.NetSeconds}, ok
}

// Pause stops a job at its next iteration boundary and returns the model
// checkpoint.
func (m *Master) Pause(name string, timeout time.Duration) ([]float64, error) {
	return m.m.Pause(name, timeout)
}

// Resume migrates a paused job onto a worker group, restoring the model
// from the checkpoint.
func (m *Master) Resume(name string, group []string, checkpoint []float64) error {
	return m.m.Resume(name, group, checkpoint)
}

// PlanGroups runs Algorithm 1 over the profiled jobs and returns the
// job→workers placement it recommends.
func (m *Master) PlanGroups() (map[string][]string, error) {
	return m.m.PlanGroups()
}

// Utilization averages the workers' executor busy fractions.
func (m *Master) Utilization() (cpu, net float64, err error) {
	return m.m.WorkerStats()
}

// Close shuts the master down, releasing any blocked workers.
func (m *Master) Close() { m.m.Close() }

// Shutdown drains the master for a clean exit: it stops admitting new
// jobs, snapshots every running job's model as a final checkpoint (best
// effort, within the timeout per job), and closes the master. It returns
// the names of the jobs checkpointed.
func (m *Master) Shutdown(timeout time.Duration) []string {
	return m.m.Shutdown(timeout)
}

// ControlPlane is a running HTTP control-plane endpoint; see ServeAPI.
type ControlPlane struct {
	s *ctl.Server
}

// APIOption configures the control plane served by ServeAPI.
type APIOption func(*ctl.Server)

// WithPprof mounts net/http/pprof's profiling handlers under
// /debug/pprof/ on the control plane. Off by default: the endpoints
// expose process internals and can burn CPU on demand.
func WithPprof() APIOption {
	return func(s *ctl.Server) { s.EnablePprof() }
}

// ServeAPI mounts the HTTP/JSON control plane for this master on addr
// ("127.0.0.1:0" for an ephemeral port): job submission through the
// online admission queue, status, cancellation, /healthz and Prometheus
// /metrics. See DESIGN.md §7 for the API surface.
func (m *Master) ServeAPI(addr string, opts ...APIOption) (*ControlPlane, error) {
	s := ctl.New(m.m)
	for _, opt := range opts {
		opt(s)
	}
	if err := s.Start(addr); err != nil {
		return nil, err
	}
	return &ControlPlane{s: s}, nil
}

// Addr is the control plane's listening address.
func (c *ControlPlane) Addr() string { return c.s.Addr() }

// Close stops the control-plane listener; the master keeps running.
func (c *ControlPlane) Close() error { return c.s.Close() }

// Admission reports the outcome of an Enqueue.
type Admission struct {
	// Admitted is true when the job was placed and started immediately;
	// false means it is held pending in the admission queue.
	Admitted bool
	// Workers is the group the job runs on when admitted.
	Workers []string
}

// Enqueue submits a training job through the online admission path of
// §IV-B4: an idle cluster starts it immediately, otherwise the arrival
// rule places it into the running group that improves cluster
// utilization or holds it pending until a completion or regroup frees
// capacity. hints carries the job's estimated scheduler metrics
// (CompSeconds, NetSeconds, memory sizes); its ID field is ignored.
func (m *Master) Enqueue(t Training, hints Job) (Admission, error) {
	cfg, err := t.Config.internal()
	if err != nil {
		return Admission{}, err
	}
	adm, err := m.m.Enqueue(master.JobSpec{
		Name:       t.Name,
		Config:     cfg,
		Iterations: t.Iterations,
		Alpha:      t.Alpha,
		Seed:       t.Seed,
		Queue:      t.Queue,
		Priority:   t.Priority,
		MinWorkers: t.MinWorkers,
		MaxWorkers: t.MaxWorkers,
	}, master.Profile{
		CompSeconds: hints.CompSeconds,
		NetSeconds:  hints.NetSeconds,
		InputGB:     hints.InputGB,
		ModelGB:     hints.ModelGB,
		WorkGB:      hints.WorkGB,
	})
	if err != nil {
		return Admission{}, err
	}
	return Admission{Admitted: adm.Admitted, Workers: adm.Workers}, nil
}

// Cancel removes a pending job from the admission queue or stops a
// running job, dropping its state from the workers.
func (m *Master) Cancel(name string) error { return m.m.Cancel(name) }

// QueueDepth reports how many jobs are held in the admission queue.
func (m *Master) QueueDepth() int { return m.m.QueueDepth() }

// QueueConfig declares one fair-scheduler queue: its guaranteed quota
// fraction, its weight for splitting unreserved capacity, its
// over-quota weight for ordering borrowers, and an optional parent for
// hierarchical shares. See DESIGN.md §13.
type QueueConfig = fair.QueueConfig

// QueueView is the live per-queue surface: resolved share, quota and
// usage in workers, held depth, and cumulative counters.
type QueueView = master.QueueView

// ParseQueues parses a queue spec of the form
// "name:quota=0.7,weight=2;other:quota=0.3" (keys: quota, weight,
// over-quota-weight/oqw, parent) into queue configurations, for
// command-line wiring.
func ParseQueues(spec string) ([]QueueConfig, error) { return fair.ParseConfigs(spec) }

// ConfigureQueues replaces the fair-scheduler queue hierarchy. The
// "default" queue always exists; every queue referenced by a running or
// held job must survive the swap. Reconfiguring kicks a queue drain so
// held jobs re-order under the new shares immediately.
func (m *Master) ConfigureQueues(cfgs ...QueueConfig) error { return m.m.ConfigureQueues(cfgs...) }

// Queues reports the fair-scheduler queues sorted by name.
func (m *Master) Queues() []QueueView { return m.m.Queues() }

// Worker is a live worker process handle.
type Worker struct {
	w *worker.Worker
}

// StartWorker launches a worker that serves a co-located parameter
// server on addr and registers with the master. spillDir holds spilled
// input blocks.
func StartWorker(name, addr, masterAddr, spillDir string) (*Worker, error) {
	w, _, err := worker.New(name, addr, masterAddr, spillDir)
	if err != nil {
		return nil, err
	}
	return &Worker{w: w}, nil
}

// Name reports the worker's registered name.
func (w *Worker) Name() string { return w.w.Name() }

// SetCompParallelism bounds the fused COMP kernel's core pool (0 selects
// GOMAXPROCS). Results are bit-identical at any setting; only wall time
// changes.
func (w *Worker) SetCompParallelism(n int) { w.w.SetCompParallelism(n) }

// EnableTracing attaches a bounded span recorder to this worker: every
// COMP/PULL/PUSH subtask, executor slot wait, and iteration barrier is
// recorded and shipped to the master piggybacked on the Stats RPC. Off
// by default; when off the instrumentation is a nil check with zero
// allocations.
func (w *Worker) EnableTracing() { w.w.EnableTracing(0) }

// Close stops the worker's jobs and servers.
func (w *Worker) Close() { w.w.Close() }

// Checkpoint returns the job's most recent background model snapshot and
// the iteration it covers. The master snapshots models periodically for
// fault tolerance (§VI); nil means no checkpoint has landed yet.
func (m *Master) Checkpoint(name string) ([]float64, int, error) {
	return m.m.Checkpoint(name)
}

// RemoveWorker unregisters a failed worker and returns the names of jobs
// whose groups included it; recover each with RecoverJob.
func (m *Master) RemoveWorker(name string) ([]string, error) {
	return m.m.RemoveWorker(name)
}

// RecoverJob restarts an affected job on the given worker group (nil =
// all surviving workers) from its latest background checkpoint.
func (m *Master) RecoverJob(name string, group []string) error {
	return m.m.RecoverJob(name, group)
}
