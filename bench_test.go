package harmony

// Benchmarks regenerating every table and figure of the paper's
// evaluation (§V). Each benchmark runs the corresponding experiment from
// internal/exp and reports its headline numbers as custom metrics, so
//
//	go test -bench=. -benchmem
//
// prints the same rows/series the paper reports alongside Go's timing.
// DESIGN.md §4 maps benchmark names to paper references.

import (
	"fmt"
	"runtime"
	"testing"

	"harmony/internal/exp"
)

func BenchmarkTab1WorkloadInventory(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := exp.Tab1()
		if len(r.Specs) != 8 {
			b.Fatal("bad inventory")
		}
	}
}

func BenchmarkFig2SingleJobUtilization(b *testing.B) {
	var cpu, net float64
	for i := 0; i < b.N; i++ {
		r, err := exp.Fig2(exp.DefaultSeed)
		if err != nil {
			b.Fatal(err)
		}
		cpu, net = r.Rows[0].CPUUtil, r.Rows[0].NetUtil
	}
	b.ReportMetric(cpu*100, "MLR16K-cpu-%")
	b.ReportMetric(net*100, "MLR16K-net-%")
}

func BenchmarkFig3MachineSweep(b *testing.B) {
	var iter4, iter32 float64
	for i := 0; i < b.N; i++ {
		r, err := exp.Fig3(exp.DefaultSeed)
		if err != nil {
			b.Fatal(err)
		}
		iter4, iter32 = r.Rows[0].IterSeconds, r.Rows[len(r.Rows)-1].IterSeconds
	}
	b.ReportMetric(iter4, "iter-at-4-s")
	b.ReportMetric(iter32, "iter-at-32-s")
}

func BenchmarkFig4NaiveColocation(b *testing.B) {
	var oom float64
	for i := 0; i < b.N; i++ {
		r, err := exp.Fig4(exp.DefaultSeed)
		if err != nil {
			b.Fatal(err)
		}
		oom = 0
		if r.Rows[len(r.Rows)-1].OOM {
			oom = 1
		}
	}
	b.ReportMetric(oom, "triple-oom")
}

func BenchmarkFig9WorkloadCDF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := exp.Fig9()
		if len(r.IterMinutes) != 80 {
			b.Fatal("bad workload")
		}
	}
}

func BenchmarkFig10MainComparison(b *testing.B) {
	var jct, mk float64
	for i := 0; i < b.N; i++ {
		r, err := exp.Fig10(exp.DefaultSeed, 3)
		if err != nil {
			b.Fatal(err)
		}
		jct = r.JCTSpeedup(r.Harmony)
		mk = r.MakespanSpeedup(r.Harmony)
	}
	b.ReportMetric(jct, "jct-speedup-x")
	b.ReportMetric(mk, "makespan-speedup-x")
}

// BenchmarkFig10Parallel compares the Fig. 10 sweep (isolated + harmony +
// 5 naive seeds, 7 independent simulations) at Concurrency 1 against the
// GOMAXPROCS worker pool. On a multi-core runner the pooled sub-benchmark
// should approach a 7-way fan-out's speedup; results are identical either
// way.
func BenchmarkFig10Parallel(b *testing.B) {
	old := exp.Concurrency()
	defer exp.SetConcurrency(old)
	run := func(name string, workers int) {
		b.Run(name, func(b *testing.B) {
			exp.SetConcurrency(workers)
			for i := 0; i < b.N; i++ {
				if _, err := exp.Fig10(exp.DefaultSeed, 5); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	run("sequential", 1)
	run(fmt.Sprintf("pooled-%d", runtime.GOMAXPROCS(0)), runtime.GOMAXPROCS(0))
}

func BenchmarkFig11UtilizationTimeline(b *testing.B) {
	var gain float64
	for i := 0; i < b.N; i++ {
		r, err := exp.Fig11(exp.DefaultSeed)
		if err != nil {
			b.Fatal(err)
		}
		if r.Isolated.CPUUtil > 0 {
			gain = r.Harmony.CPUUtil / r.Isolated.CPUUtil
		}
	}
	b.ReportMetric(gain, "cpu-util-gain-x")
}

func BenchmarkFig12GroupingCDF(b *testing.B) {
	var baseDoP, compDoP float64
	for i := 0; i < b.N; i++ {
		r, err := exp.Fig12(exp.DefaultSeed)
		if err != nil {
			b.Fatal(err)
		}
		baseDoP = r.MedianDoP("base")
		compDoP = r.MedianDoP("comp-intensive")
	}
	b.ReportMetric(baseDoP, "median-dop-base")
	b.ReportMetric(compDoP, "median-dop-comp")
}

func BenchmarkFig13aErrorSensitivity(b *testing.B) {
	var degraded float64
	for i := 0; i < b.N; i++ {
		r, err := exp.Fig13a(exp.DefaultSeed)
		if err != nil {
			b.Fatal(err)
		}
		degraded = r.Points[len(r.Points)-1].MakespanSpeedup
	}
	b.ReportMetric(degraded, "speedup-at-20pct-err")
}

func BenchmarkFig13bPredictionError(b *testing.B) {
	var iterErr, uErr float64
	for i := 0; i < b.N; i++ {
		r, err := exp.Fig13b(exp.DefaultSeed)
		if err != nil {
			b.Fatal(err)
		}
		iterErr = r.MeanIterError()
		uErr = r.MeanUError()
	}
	b.ReportMetric(iterErr*100, "iter-err-%")
	b.ReportMetric(uErr*100, "U-err-%")
}

func BenchmarkFig14OracleAndScale(b *testing.B) {
	var gap float64
	for i := 0; i < b.N; i++ {
		r, err := exp.Fig14(exp.DefaultSeed)
		if err != nil {
			b.Fatal(err)
		}
		if r.Oracle.Makespan > 0 {
			gap = r.Harmony.Makespan.Seconds() / r.Oracle.Makespan.Seconds()
		}
	}
	b.ReportMetric(gap, "harmony-vs-oracle-makespan-x")
}

func BenchmarkScaleScheduling(b *testing.B) {
	var latency float64
	for i := 0; i < b.N; i++ {
		r := exp.ScaleSched(exp.DefaultSeed)
		latency = r.Points[len(r.Points)-1].Latency.Seconds()
	}
	b.ReportMetric(latency, "8Kjobs-10Kmachines-s")
}

func BenchmarkAblationTechniques(b *testing.B) {
	var subtasksShare float64
	for i := 0; i < b.N; i++ {
		r, err := exp.Ablation(exp.DefaultSeed)
		if err != nil {
			b.Fatal(err)
		}
		subtasksShare = r.Rows[0].BenefitShare
	}
	b.ReportMetric(subtasksShare*100, "subtasks-benefit-%")
}

func BenchmarkAblationDesignChoices(b *testing.B) {
	var full, noSecondary float64
	for i := 0; i < b.N; i++ {
		r, err := exp.DesignAblation(exp.DefaultSeed)
		if err != nil {
			b.Fatal(err)
		}
		full = r.Rows[0].MakespanSpeedup
		noSecondary = r.Rows[1].MakespanSpeedup
	}
	b.ReportMetric(full, "full-speedup-x")
	b.ReportMetric(noSecondary, "no-secondary-comm-x")
}

func BenchmarkSensRatio(b *testing.B) {
	var comp, comm float64
	for i := 0; i < b.N; i++ {
		r, err := exp.SensRatio(exp.DefaultSeed)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range r.Rows {
			switch row.Mix {
			case "comp-intensive":
				comp = row.MakespanSpeedup
			case "comm-intensive":
				comm = row.MakespanSpeedup
			}
		}
	}
	b.ReportMetric(comp, "comp-mix-speedup-x")
	b.ReportMetric(comm, "comm-mix-speedup-x")
}

func BenchmarkSensArrival(b *testing.B) {
	var batch, slow float64
	for i := 0; i < b.N; i++ {
		r, err := exp.SensArrival(exp.DefaultSeed)
		if err != nil {
			b.Fatal(err)
		}
		batch = r.Rows[0].MakespanSpeedup
		slow = r.Rows[len(r.Rows)-2].MakespanSpeedup // poisson 8m
	}
	b.ReportMetric(batch, "batch-speedup-x")
	b.ReportMetric(slow, "poisson8m-speedup-x")
}

func BenchmarkReloadAlphaSweep(b *testing.B) {
	var bestFixed, adaptive float64
	for i := 0; i < b.N; i++ {
		r, err := exp.Reload(exp.DefaultSeed)
		if err != nil {
			b.Fatal(err)
		}
		_, bestFixed = r.BestFixed()
		adaptive = r.Adaptive()
	}
	b.ReportMetric(bestFixed, "best-fixed-iter-s")
	b.ReportMetric(adaptive, "adaptive-iter-s")
}
