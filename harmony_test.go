package harmony

import (
	"testing"
	"time"
)

func TestScheduleFacade(t *testing.T) {
	jobs := []Job{
		{ID: "cpu-heavy", CompSeconds: 3200, NetSeconds: 20},
		{ID: "net-heavy", CompSeconds: 200, NetSeconds: 180},
	}
	plan := Schedule(jobs, 16, ScheduleOptions{})
	if len(plan.Groups) != 1 {
		t.Fatalf("plan has %d groups, want 1 co-located group", len(plan.Groups))
	}
	g := plan.Groups[0]
	if len(g.Jobs) != 2 || g.Machines != 16 {
		t.Errorf("group = %d jobs on %d machines", len(g.Jobs), g.Machines)
	}
	if g.PredictedIterSeconds <= 0 {
		t.Error("missing iteration prediction")
	}
	if plan.CPUUtil < 0.8 {
		t.Errorf("cluster CPU util %.2f, want >= 0.8 for complementary pair", plan.CPUUtil)
	}
}

func TestSimulateFacadeSmall(t *testing.T) {
	jobs := SmallWorkload(6)
	for i := range jobs {
		jobs[i].Iterations = 8
		jobs[i].CompSeconds /= 20
		jobs[i].NetSeconds /= 20
		jobs[i].InputGB /= 10
		jobs[i].ModelGB /= 10
		jobs[i].WorkGB /= 10
	}
	iso, err := Simulate(SimConfig{Machines: 16, Scheduler: IsolatedScheduler, Seed: 1}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	har, err := Simulate(SimConfig{Machines: 16, Scheduler: HarmonyScheduler, Seed: 1}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if har.Finished != 6 || iso.Finished != 6 {
		t.Fatalf("finished %d/%d, want 6/6 (failed %d/%d)",
			har.Finished, iso.Finished, har.Failed, iso.Failed)
	}
	if har.Makespan >= iso.Makespan {
		t.Errorf("harmony makespan %v >= isolated %v", har.Makespan, iso.Makespan)
	}
	if len(har.CPUSeries) == 0 {
		t.Error("missing utilization series")
	}
	if _, err := Simulate(SimConfig{Machines: 4, Scheduler: Scheduler(9)}, jobs); err == nil {
		t.Error("unknown scheduler accepted")
	}
}

func TestPaperWorkloadShape(t *testing.T) {
	jobs := PaperWorkload()
	if len(jobs) != 80 {
		t.Fatalf("paper workload has %d jobs, want 80", len(jobs))
	}
	for _, j := range jobs {
		if j.CompSeconds <= 0 || j.NetSeconds <= 0 || j.Iterations <= 0 {
			t.Fatalf("job %s has invalid profile", j.ID)
		}
	}
}

func TestLiveRuntimeEndToEnd(t *testing.T) {
	m, err := StartMaster("127.0.0.1:0", ScheduleOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	for i := 0; i < 2; i++ {
		w, err := StartWorker("w"+string(rune('0'+i)), "127.0.0.1:0", m.Addr(), t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		defer w.Close()
	}
	if err := m.WaitForWorkers(2, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	if got := len(m.Workers()); got != 2 {
		t.Fatalf("workers = %d", got)
	}
	err = m.Submit(Training{
		Name:       "quick-mlr",
		Config:     TrainingConfig{Algorithm: "mlr", Features: 10, Classes: 3, Rows: 64},
		Iterations: 5,
		Seed:       3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Wait("quick-mlr", 60*time.Second); err != nil {
		t.Fatal(err)
	}
	iter, loss, finished, err := m.Progress("quick-mlr")
	if err != nil {
		t.Fatal(err)
	}
	if !finished || iter != 4 {
		t.Errorf("progress = iter %d finished %v", iter, finished)
	}
	if loss <= 0 {
		t.Errorf("loss = %v, want positive objective", loss)
	}
	if job, ok := m.ProfiledJob("quick-mlr"); !ok || job.CompSeconds <= 0 {
		t.Errorf("profiled job = %+v ok=%v", job, ok)
	}
	cpu, net, err := m.Utilization()
	if err != nil || cpu <= 0 || net <= 0 {
		t.Errorf("utilization = (%v, %v), err %v", cpu, net, err)
	}
}

func TestTrainingConfigValidation(t *testing.T) {
	if _, err := (TrainingConfig{Algorithm: "svm"}).internal(); err == nil {
		t.Error("unknown algorithm accepted")
	}
	for _, algo := range []string{"mlr", "lasso", "nmf", "lda", "MLR", "LDA"} {
		if _, err := (TrainingConfig{Algorithm: algo}).internal(); err != nil {
			t.Errorf("algorithm %q rejected: %v", algo, err)
		}
	}
}
