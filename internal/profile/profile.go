// Package profile collects the runtime metrics that drive Harmony's
// scheduling decisions (§IV-B1 of the paper): per-job moving averages of
// COMP and COMM subtask times and the DoP they were observed at.
//
// Observed COMP times are normalized to aggregate machine-seconds using
// Eq. 2 (T_cpu ∝ 1/m), so the store can predict COMP times at any DoP.
package profile

import (
	"fmt"
	"sort"
	"sync"
)

// DefaultEWMAAlpha is the weight given to the newest observation in the
// moving average. The paper updates profiled metrics "using moving
// averages"; 0.3 responds to drift within a few iterations while smoothing
// per-iteration jitter.
const DefaultEWMAAlpha = 0.3

// MinSamples is the number of observations needed before a job counts as
// profiled and becomes schedulable by the grouping algorithm.
const MinSamples = 3

// Metrics is the profiled summary for one job, in the shape consumed by
// the performance model: (T_cpu_j, T_net_j, m_g) from §IV-B1.
type Metrics struct {
	// CompMachineSeconds is the DoP-normalized COMP cost: the estimated
	// COMP subtask time at DoP m is CompMachineSeconds / m.
	CompMachineSeconds float64
	// NetSeconds is the per-machine COMM (PULL+PUSH) subtask time.
	NetSeconds float64
	// DoP is the group DoP of the most recent observation.
	DoP int
	// Samples is the number of observations folded into the averages.
	Samples int
}

// TcpuAt predicts the COMP subtask time at DoP m (Eq. 2).
func (m Metrics) TcpuAt(dop int) float64 {
	if dop < 1 {
		dop = 1
	}
	return m.CompMachineSeconds / float64(dop)
}

// IterSecondsAt predicts the job's own iteration time at DoP m.
func (m Metrics) IterSecondsAt(dop int) float64 {
	return m.TcpuAt(dop) + m.NetSeconds
}

// Profiled reports whether enough observations have accumulated for the
// scheduler to trust the metrics.
func (m Metrics) Profiled() bool { return m.Samples >= MinSamples }

// Store keeps exponentially weighted moving averages of per-job metrics.
// It is safe for concurrent use: the live runtime updates it from worker
// report handlers while the scheduler reads it.
type Store struct {
	mu    sync.RWMutex
	alpha float64
	jobs  map[string]Metrics
	// byDoP retains a moving average per (job, DoP) so the sensitivity
	// fit (sensitivity.go) can compare COMP times across the DoPs the
	// job actually ran at, not just the latest one.
	byDoP map[string]map[int]dopStat
}

// NewStore creates a store with the given EWMA weight for new samples;
// alpha outside (0, 1] falls back to DefaultEWMAAlpha.
func NewStore(alpha float64) *Store {
	if alpha <= 0 || alpha > 1 {
		alpha = DefaultEWMAAlpha
	}
	return &Store{
		alpha: alpha,
		jobs:  make(map[string]Metrics),
		byDoP: make(map[string]map[int]dopStat),
	}
}

// Observe folds one iteration's measurements into the job's averages:
// tcpu and tnet are the observed COMP and COMM subtask seconds at DoP m.
func (s *Store) Observe(jobID string, dop int, tcpu, tnet float64) error {
	if dop < 1 {
		return fmt.Errorf("profile: observe %s at DoP %d, need >= 1", jobID, dop)
	}
	if tcpu < 0 || tnet < 0 {
		return fmt.Errorf("profile: observe %s with negative times (%.3f, %.3f)", jobID, tcpu, tnet)
	}
	comp := tcpu * float64(dop) // normalize to machine-seconds via Eq. 2
	s.mu.Lock()
	defer s.mu.Unlock()
	perDoP := s.byDoP[jobID]
	if perDoP == nil {
		perDoP = make(map[int]dopStat)
		s.byDoP[jobID] = perDoP
	}
	if st, ok := perDoP[dop]; ok {
		st.Tcpu = s.alpha*tcpu + (1-s.alpha)*st.Tcpu
		st.Samples++
		perDoP[dop] = st
	} else {
		perDoP[dop] = dopStat{Tcpu: tcpu, Samples: 1}
	}
	m, ok := s.jobs[jobID]
	if !ok {
		s.jobs[jobID] = Metrics{CompMachineSeconds: comp, NetSeconds: tnet, DoP: dop, Samples: 1}
		return nil
	}
	m.CompMachineSeconds = s.alpha*comp + (1-s.alpha)*m.CompMachineSeconds
	m.NetSeconds = s.alpha*tnet + (1-s.alpha)*m.NetSeconds
	m.DoP = dop
	m.Samples++
	s.jobs[jobID] = m
	return nil
}

// Metrics returns the job's profiled summary; ok is false when the job has
// never been observed.
func (s *Store) Metrics(jobID string) (Metrics, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	m, ok := s.jobs[jobID]
	return m, ok
}

// Forget drops a job's metrics, typically after it finishes.
func (s *Store) Forget(jobID string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.jobs, jobID)
	delete(s.byDoP, jobID)
}

// Len reports the number of jobs with at least one observation.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.jobs)
}

// Jobs lists every job with at least one observation, sorted by ID, so
// state captures enumerate the store deterministically.
func (s *Store) Jobs() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.jobs))
	for id := range s.jobs {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// DoPPoint is one per-DoP observation average — the raw input of the
// sensitivity fit, exported so snapshots can carry the fit's evidence
// (not just its result) across a capture/replay boundary.
type DoPPoint struct {
	DoP int `json:"dop"`
	// CompSeconds is the averaged COMP subtask seconds observed at this
	// DoP (per machine, not normalized to machine-seconds).
	CompSeconds float64 `json:"comp_seconds"`
	Samples     int     `json:"samples"`
}

// Points returns the job's per-DoP observation averages sorted by DoP;
// nil when the job has never been observed.
func (s *Store) Points(jobID string) []DoPPoint {
	s.mu.RLock()
	defer s.mu.RUnlock()
	perDoP := s.byDoP[jobID]
	if len(perDoP) == 0 {
		return nil
	}
	out := make([]DoPPoint, 0, len(perDoP))
	for dop, st := range perDoP {
		out = append(out, DoPPoint{DoP: dop, CompSeconds: st.Tcpu, Samples: st.Samples})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].DoP < out[j].DoP })
	return out
}
