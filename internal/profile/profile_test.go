package profile

import (
	"math"
	"sync"
	"testing"
	"testing/quick"
)

func TestObserveFirstSample(t *testing.T) {
	s := NewStore(0.3)
	if err := s.Observe("j1", 8, 10, 5); err != nil {
		t.Fatal(err)
	}
	m, ok := s.Metrics("j1")
	if !ok {
		t.Fatal("Metrics() not found after Observe")
	}
	if m.CompMachineSeconds != 80 {
		t.Errorf("CompMachineSeconds = %v, want 80 (10s at DoP 8)", m.CompMachineSeconds)
	}
	if m.NetSeconds != 5 || m.DoP != 8 || m.Samples != 1 {
		t.Errorf("metrics = %+v, want net 5, dop 8, samples 1", m)
	}
	if m.Profiled() {
		t.Error("Profiled() = true after 1 sample, want false")
	}
}

func TestObserveEWMA(t *testing.T) {
	s := NewStore(0.5)
	mustObserve(t, s, "j", 4, 10, 2) // comp 40
	mustObserve(t, s, "j", 4, 20, 4) // comp 80
	m, _ := s.Metrics("j")
	if math.Abs(m.CompMachineSeconds-60) > 1e-9 {
		t.Errorf("comp = %v, want 60 (EWMA of 40, 80 with alpha 0.5)", m.CompMachineSeconds)
	}
	if math.Abs(m.NetSeconds-3) > 1e-9 {
		t.Errorf("net = %v, want 3", m.NetSeconds)
	}
}

func TestObserveDoPNormalization(t *testing.T) {
	// Observations of the same job at different DoPs converge to the same
	// normalized comp cost thanks to Eq. 2.
	s := NewStore(0.3)
	mustObserve(t, s, "j", 4, 25, 5)  // 100 machine-seconds
	mustObserve(t, s, "j", 10, 10, 5) // 100 machine-seconds
	m, _ := s.Metrics("j")
	if math.Abs(m.CompMachineSeconds-100) > 1e-9 {
		t.Errorf("comp = %v, want 100 independent of observation DoP", m.CompMachineSeconds)
	}
	if got := m.TcpuAt(20); math.Abs(got-5) > 1e-9 {
		t.Errorf("TcpuAt(20) = %v, want 5", got)
	}
	if got := m.IterSecondsAt(20); math.Abs(got-10) > 1e-9 {
		t.Errorf("IterSecondsAt(20) = %v, want 10", got)
	}
}

func TestTcpuAtClampsDoP(t *testing.T) {
	m := Metrics{CompMachineSeconds: 100}
	if got := m.TcpuAt(0); got != 100 {
		t.Errorf("TcpuAt(0) = %v, want clamp to DoP 1", got)
	}
}

func TestObserveErrors(t *testing.T) {
	s := NewStore(0.3)
	if err := s.Observe("j", 0, 1, 1); err == nil {
		t.Error("Observe with DoP 0 succeeded")
	}
	if err := s.Observe("j", 1, -1, 1); err == nil {
		t.Error("Observe with negative tcpu succeeded")
	}
	if err := s.Observe("j", 1, 1, -1); err == nil {
		t.Error("Observe with negative tnet succeeded")
	}
	if s.Len() != 0 {
		t.Error("failed observes were recorded")
	}
}

func TestProfiledThreshold(t *testing.T) {
	s := NewStore(0.3)
	for i := 0; i < MinSamples; i++ {
		m, _ := s.Metrics("j")
		if m.Profiled() {
			t.Fatalf("Profiled() = true after %d samples", i)
		}
		mustObserve(t, s, "j", 2, 1, 1)
	}
	m, _ := s.Metrics("j")
	if !m.Profiled() {
		t.Errorf("Profiled() = false after %d samples", MinSamples)
	}
}

func TestForget(t *testing.T) {
	s := NewStore(0.3)
	mustObserve(t, s, "j", 1, 1, 1)
	s.Forget("j")
	if _, ok := s.Metrics("j"); ok {
		t.Error("Metrics() found after Forget")
	}
	if s.Len() != 0 {
		t.Errorf("Len() = %d after Forget, want 0", s.Len())
	}
}

func TestNewStoreBadAlphaFallsBack(t *testing.T) {
	for _, alpha := range []float64{-1, 0, 1.5} {
		s := NewStore(alpha)
		if s.alpha != DefaultEWMAAlpha {
			t.Errorf("NewStore(%v) alpha = %v, want default", alpha, s.alpha)
		}
	}
}

// TestEWMAConvergence checks by property that repeated observations of a
// constant signal converge to that signal.
func TestEWMAConvergence(t *testing.T) {
	f := func(comp16, net16 uint16) bool {
		comp, net := float64(comp16)+1, float64(net16)+1
		s := NewStore(0.3)
		for i := 0; i < 60; i++ {
			if err := s.Observe("j", 4, comp/4, net); err != nil {
				return false
			}
		}
		m, _ := s.Metrics("j")
		return math.Abs(m.CompMachineSeconds-comp) < comp*1e-6 &&
			math.Abs(m.NetSeconds-net) < net*1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestConcurrentAccess(t *testing.T) {
	s := NewStore(0.3)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			id := string(rune('a' + g%4))
			for i := 0; i < 100; i++ {
				_ = s.Observe(id, 2, 1, 1)
				s.Metrics(id)
				s.Len()
			}
		}(g)
	}
	wg.Wait()
	if s.Len() != 4 {
		t.Errorf("Len() = %d, want 4", s.Len())
	}
}

func mustObserve(t *testing.T, s *Store, id string, dop int, tcpu, tnet float64) {
	t.Helper()
	if err := s.Observe(id, dop, tcpu, tnet); err != nil {
		t.Fatal(err)
	}
}
