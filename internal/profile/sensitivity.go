// Synergy-style resource sensitivity (PAPERS.md): instead of assuming
// Eq. 2's perfect 1/m scaling, fit each job's COMP time against the DoPs
// it has actually been observed at. The fit T_cpu(m) = a/m + b separates
// the scalable machine-seconds (a) from a serial floor (b) that no amount
// of extra machines removes. Jobs with a large floor are insensitive to
// machines; the water-filling allocation then hands their marginal
// machines to jobs that still benefit, under the group-total invariant
// (the same total machine count is distributed, only the split changes).
package profile

// sensMinDoPSamples is the number of observations at a DoP before that
// DoP participates in the sensitivity fit; a single noisy iteration at a
// fresh DoP must not swing the floor estimate.
const sensMinDoPSamples = 2

// dopStat is the per-DoP moving average of observed COMP subtask seconds.
type dopStat struct {
	Tcpu    float64
	Samples int
}

// Sensitivity is the fitted resource-sensitivity summary for one job.
type Sensitivity struct {
	// CompScalable is a in T_cpu(m) = a/m + b: machine-seconds that
	// divide across workers.
	CompScalable float64
	// CompFloorSeconds is b: serial seconds per iteration that persist
	// at any DoP. Zero until observations at two or more distinct DoPs
	// disagree with pure 1/m scaling.
	CompFloorSeconds float64
	// NetSeconds is the per-machine COMM seconds, carried over from the
	// profile for marginal-bandwidth queries.
	NetSeconds float64
	// DoPs is the number of distinct DoPs folded into the fit.
	DoPs int
}

// Fitted reports whether the job has been observed at enough distinct
// DoPs for the floor estimate to be meaningful.
func (s Sensitivity) Fitted() bool { return s.DoPs >= 2 }

// TcpuAt predicts the COMP subtask seconds at DoP m under the fit.
func (s Sensitivity) TcpuAt(dop int) float64 {
	if dop < 1 {
		dop = 1
	}
	return s.CompScalable/float64(dop) + s.CompFloorSeconds
}

// MarginalPerMachine is the T_itr seconds one extra machine saves at DoP
// m — the marginal gain the allocation water-fills on. A job dominated by
// its serial floor reports a near-zero marginal.
func (s Sensitivity) MarginalPerMachine(dop int) float64 {
	return s.TcpuAt(dop) - s.TcpuAt(dop+1)
}

// MarginalPerGbps is the T_itr seconds one extra Gbps of link bandwidth
// saves, evaluated at the current link capacity: T_net scales inversely
// with bandwidth, so the marginal at capacity c is NetSeconds/(c+1).
func (s Sensitivity) MarginalPerGbps(linkGbps float64) float64 {
	if linkGbps <= 0 {
		return 0
	}
	return s.NetSeconds - s.NetSeconds*linkGbps/(linkGbps+1)
}

// Sensitivity fits the job's multi-DoP observations; ok is false when the
// job has never been observed. With observations at fewer than two
// distinct DoPs the fit degenerates to Eq. 2 (floor zero).
func (s *Store) Sensitivity(jobID string) (Sensitivity, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	m, ok := s.jobs[jobID]
	if !ok {
		return Sensitivity{}, false
	}
	out := Sensitivity{CompScalable: m.CompMachineSeconds, NetSeconds: m.NetSeconds}
	var xs, ys []float64
	for dop, st := range s.byDoP[jobID] {
		if st.Samples >= sensMinDoPSamples {
			xs = append(xs, 1/float64(dop))
			ys = append(ys, st.Tcpu)
		}
	}
	if len(xs) < 2 {
		return out, true
	}
	// Least squares of tcpu against 1/m: slope a, intercept b.
	var sx, sy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
	}
	n := float64(len(xs))
	mx, my := sx/n, sy/n
	var sxx, sxy float64
	for i := range xs {
		sxx += (xs[i] - mx) * (xs[i] - mx)
		sxy += (xs[i] - mx) * (ys[i] - my)
	}
	if sxx < 1e-12 {
		return out, true
	}
	a := sxy / sxx
	if a < 0 {
		a = 0
	}
	b := my - a*mx
	if b < 0 {
		// Superlinear scaling observed; attribute everything to the
		// scalable term rather than a negative floor.
		b = 0
		a = my / mx
	}
	out.CompScalable = a
	out.CompFloorSeconds = b
	out.DoPs = len(xs)
	return out, true
}
