package ps

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// SkewConfig drives RunSkewLoad: a closed-loop pull/push workload with a
// hot set — HotFrac of the stripes receive HotShare of the traffic
// (defaults model the classic 10%/80% skew). The same generator backs
// BenchmarkPSRebalance and `harmony-bench -bench-rebalance`, so the
// in-repo number and the CLI number measure the same thing.
type SkewConfig struct {
	Addrs       []string
	Job         string
	Stripes     int
	StripeElems int
	Workers     int
	HotFrac     float64
	HotShare    float64
	Duration    time.Duration
	Seed        int64
	Timeout     time.Duration
}

func (c SkewConfig) withDefaults() SkewConfig {
	if c.Job == "" {
		c.Job = "skew"
	}
	if c.Stripes <= 0 {
		c.Stripes = 40
	}
	if c.StripeElems <= 0 {
		c.StripeElems = 1024
	}
	if c.Workers <= 0 {
		c.Workers = 8
	}
	if c.HotFrac <= 0 || c.HotFrac > 1 {
		c.HotFrac = 0.1
	}
	if c.HotShare <= 0 || c.HotShare > 1 {
		c.HotShare = 0.8
	}
	if c.Duration <= 0 {
		c.Duration = time.Second
	}
	if c.Timeout <= 0 {
		c.Timeout = 30 * time.Second
	}
	return c
}

// ModelSize is the total element count the config implies.
func (c SkewConfig) ModelSize() int { return c.Stripes * c.StripeElems }

// SkewResult reports one load run. PushesPerStripe counts applied pushes
// per stripe index, which pins down the exact expected model state: the
// load pushes all-ones deltas, so element e of stripe s must equal
// PushesPerStripe[s] — verified by VerifyState.
type SkewResult struct {
	Pulls           int64
	Pushes          int64
	PushesPerStripe []int64
}

// Ops is the total operation count of the run.
func (r SkewResult) Ops() int64 { return r.Pulls + r.Pushes }

// InitSkewModel deploys the zero model for the skew workload through cl.
func InitSkewModel(cl *Client, cfg SkewConfig) error {
	cfg = cfg.withDefaults()
	cl.SetStripeElems(cfg.StripeElems)
	return cl.Init(cfg.Job, make([]float64, cfg.ModelSize()))
}

// RunSkewLoad hammers the servers with stripe-granular pulls and pushes
// until Duration elapses. Every worker runs its own client (its own
// connections), so per-server service capacity — not a shared conn — is
// the bottleneck under test. Stripes keep running while the caller
// migrates them; the moved-retry path is exercised for real.
func RunSkewLoad(cfg SkewConfig) (SkewResult, error) {
	cfg = cfg.withDefaults()
	hot := int(float64(cfg.Stripes)*cfg.HotFrac + 0.5)
	if hot < 1 {
		hot = 1
	}
	res := SkewResult{PushesPerStripe: make([]int64, cfg.Stripes)}
	var pulls, pushes atomic.Int64
	perStripe := make([]atomic.Int64, cfg.Stripes)
	deadline := time.Now().Add(cfg.Duration)
	errs := make([]error, cfg.Workers)
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cl, err := NewClient(cfg.Addrs, cfg.Timeout)
			if err != nil {
				errs[w] = err
				return
			}
			defer cl.Close()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(w)*7919))
			buf := make([]float64, cfg.StripeElems)
			ones := make([]float64, cfg.StripeElems)
			for i := range ones {
				ones[i] = 1
			}
			for time.Now().Before(deadline) {
				var s int
				if rng.Float64() < cfg.HotShare {
					s = rng.Intn(hot)
				} else {
					s = hot + rng.Intn(cfg.Stripes-hot)
				}
				lo := s * cfg.StripeElems
				if rng.Intn(2) == 0 {
					if err := cl.PullRange(cfg.Job, lo, buf); err != nil {
						errs[w] = err
						return
					}
					pulls.Add(1)
				} else {
					if err := cl.PushRange(cfg.Job, lo, ones); err != nil {
						errs[w] = err
						return
					}
					pushes.Add(1)
					perStripe[s].Add(1)
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return res, err
		}
	}
	res.Pulls = pulls.Load()
	res.Pushes = pushes.Load()
	for s := range perStripe {
		res.PushesPerStripe[s] = perStripe[s].Load()
	}
	return res, nil
}

// VerifyState snapshots the model and checks it bit-exactly against the
// push counts: all-ones integer deltas sum exactly in float64 regardless
// of application order or placement, so any divergence means a push was
// lost or double-applied (e.g. by a botched migration).
func VerifyState(cl *Client, cfg SkewConfig, res SkewResult) error {
	cfg = cfg.withDefaults()
	model, err := cl.Snapshot(cfg.Job, cfg.ModelSize())
	if err != nil {
		return err
	}
	for s := 0; s < cfg.Stripes; s++ {
		want := float64(res.PushesPerStripe[s])
		for e := 0; e < cfg.StripeElems; e++ {
			if got := model[s*cfg.StripeElems+e]; got != want {
				return fmt.Errorf("ps: stripe %d elem %d = %v, want %v (pushes lost or double-applied)",
					s, e, got, want)
			}
		}
	}
	return nil
}
