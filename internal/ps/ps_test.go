package ps

import (
	"math"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"harmony/internal/rpc"
)

// startCluster brings up n parameter servers on loopback TCP.
func startCluster(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		srv := rpc.NewServer()
		NewServer().Register(srv)
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		addrs[i] = addr
	}
	return addrs
}

func newClient(t *testing.T, addrs []string) *Client {
	t.Helper()
	c, err := NewClient(addrs, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

func seqModel(n int) []float64 {
	m := make([]float64, n)
	for i := range m {
		m[i] = float64(i)
	}
	return m
}

func TestPartition(t *testing.T) {
	tests := []struct {
		n, k, i, lo, hi int
	}{
		{10, 3, 0, 0, 4},
		{10, 3, 1, 4, 7},
		{10, 3, 2, 7, 10},
		{9, 3, 1, 3, 6},
		{2, 4, 3, 2, 2}, // more servers than elements: empty partition
	}
	for _, tt := range tests {
		lo, hi := Partition(tt.n, tt.k, tt.i)
		if lo != tt.lo || hi != tt.hi {
			t.Errorf("Partition(%d,%d,%d) = [%d,%d), want [%d,%d)", tt.n, tt.k, tt.i, lo, hi, tt.lo, tt.hi)
		}
	}
}

// TestPartitionCovers checks by property that partitions tile [0, n)
// exactly.
func TestPartitionCovers(t *testing.T) {
	f := func(n16, k8 uint8) bool {
		n := int(n16)%200 + 1
		k := int(k8)%8 + 1
		prev := 0
		for i := 0; i < k; i++ {
			lo, hi := Partition(n, k, i)
			if lo != prev || hi < lo {
				return false
			}
			prev = hi
		}
		return prev == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestInitPullRoundTrip(t *testing.T) {
	addrs := startCluster(t, 3)
	c := newClient(t, addrs)
	model := seqModel(10)
	if err := c.Init("job-a", model); err != nil {
		t.Fatal(err)
	}
	got, err := c.Pull("job-a", 10)
	if err != nil {
		t.Fatal(err)
	}
	for i := range model {
		if got[i] != model[i] {
			t.Fatalf("pull[%d] = %v, want %v", i, got[i], model[i])
		}
	}
}

func TestPushAccumulates(t *testing.T) {
	addrs := startCluster(t, 2)
	c := newClient(t, addrs)
	if err := c.Init("j", make([]float64, 6)); err != nil {
		t.Fatal(err)
	}
	delta := []float64{1, 2, 3, 4, 5, 6}
	if err := c.Push("j", delta); err != nil {
		t.Fatal(err)
	}
	if err := c.Push("j", delta); err != nil {
		t.Fatal(err)
	}
	got, err := c.Pull("j", 6)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if want := 2 * delta[i]; got[i] != want {
			t.Errorf("model[%d] = %v, want %v", i, got[i], want)
		}
	}
}

func TestConcurrentWorkersPush(t *testing.T) {
	addrs := startCluster(t, 3)
	const workers = 6
	const modelSize = 30
	clients := make([]*Client, workers)
	for w := range clients {
		clients[w] = newClient(t, addrs)
	}
	if err := clients[0].Init("j", make([]float64, modelSize)); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			delta := make([]float64, modelSize)
			for i := range delta {
				delta[i] = 1
			}
			for k := 0; k < 10; k++ {
				if err := clients[w].Push("j", delta); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	got, err := clients[0].Pull("j", modelSize)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if math.Abs(v-workers*10) > 1e-9 {
			t.Fatalf("model[%d] = %v, want %d (lost updates)", i, v, workers*10)
		}
	}
}

func TestMultipleJobsIsolated(t *testing.T) {
	addrs := startCluster(t, 2)
	c := newClient(t, addrs)
	if err := c.Init("a", seqModel(4)); err != nil {
		t.Fatal(err)
	}
	if err := c.Init("b", make([]float64, 4)); err != nil {
		t.Fatal(err)
	}
	if err := c.Push("b", []float64{9, 9, 9, 9}); err != nil {
		t.Fatal(err)
	}
	a, _ := c.Pull("a", 4)
	for i := range a {
		if a[i] != float64(i) {
			t.Fatalf("job a corrupted by job b: %v", a)
		}
	}
}

func TestPullUnknownJob(t *testing.T) {
	addrs := startCluster(t, 1)
	c := newClient(t, addrs)
	if _, err := c.Pull("ghost", 4); err == nil {
		t.Error("pull of unknown job succeeded")
	}
}

func TestPushShapeMismatch(t *testing.T) {
	addrs := startCluster(t, 1)
	c := newClient(t, addrs)
	if err := c.Init("j", make([]float64, 4)); err != nil {
		t.Fatal(err)
	}
	if err := c.Push("j", make([]float64, 7)); err == nil {
		t.Error("mismatched push succeeded")
	}
}

func TestSnapshotAndDrop(t *testing.T) {
	addrs := startCluster(t, 2)
	c := newClient(t, addrs)
	if err := c.Init("j", seqModel(8)); err != nil {
		t.Fatal(err)
	}
	snap, err := c.Snapshot("j", 8)
	if err != nil {
		t.Fatal(err)
	}
	if snap[7] != 7 {
		t.Errorf("snapshot[7] = %v", snap[7])
	}
	if err := c.Drop("j"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Pull("j", 8); err == nil {
		t.Error("pull after drop succeeded")
	}
	// Restore from the checkpoint (the §IV-B4 migration path).
	if err := c.Init("j", snap); err != nil {
		t.Fatal(err)
	}
	back, err := c.Pull("j", 8)
	if err != nil {
		t.Fatal(err)
	}
	if back[5] != 5 {
		t.Errorf("restored model wrong: %v", back)
	}
}

func TestNewClientErrors(t *testing.T) {
	if _, err := NewClient(nil, time.Second); err == nil {
		t.Error("NewClient with no addresses succeeded")
	}
	if _, err := NewClient([]string{"127.0.0.1:1"}, 200*time.Millisecond); err == nil {
		t.Error("NewClient to dead address succeeded")
	}
}
