// Package ps implements the Parameter-Server architecture of §II-A: each
// server holds a partition of every job's model vector, and workers
// synchronize through the push/pull API. Servers are co-located with
// workers in the live runtime, exactly as the paper's deployment does.
package ps

import (
	"fmt"
	"sync"
	"time"

	"harmony/internal/rpc"
)

// Method names registered on the RPC server.
const (
	MethodInit     = "ps.init"
	MethodPull     = "ps.pull"
	MethodPush     = "ps.push"
	MethodSnapshot = "ps.snapshot"
	MethodRestore  = "ps.restore"
	MethodDrop     = "ps.drop"
)

// InitArgs creates (or replaces) a job's partition on one server.
type InitArgs struct {
	Job    string
	Lo     int // global index of Values[0]
	Values []float64
}

// PullArgs fetches a job's partition.
type PullArgs struct {
	Job string
}

// PullReply carries the partition back.
type PullReply struct {
	Lo     int
	Values []float64
}

// PushArgs applies an additive delta to a job's partition.
type PushArgs struct {
	Job   string
	Lo    int
	Delta []float64
}

// Ack is an empty success reply.
type Ack struct{}

// SnapshotArgs asks for a checkpoint of a job's partition (migration and
// fault tolerance, §IV-B4/§VI).
type SnapshotArgs struct {
	Job string
}

// DropArgs removes a job's partition (after completion or migration).
type DropArgs struct {
	Job string
}

// partition is one job's shard of parameters on one server.
type partition struct {
	lo     int
	values []float64
}

// Server hosts partitions for any number of jobs. Register it on an
// rpc.Server with Register.
type Server struct {
	mu    sync.RWMutex
	parts map[string]*partition
}

// NewServer returns an empty parameter server.
func NewServer() *Server {
	return &Server{parts: make(map[string]*partition)}
}

// Register installs the PS methods on the RPC server.
func (s *Server) Register(srv *rpc.Server) {
	srv.Handle(MethodInit, rpc.Typed(s.handleInit))
	srv.Handle(MethodPull, rpc.Typed(s.handlePull))
	srv.Handle(MethodPush, rpc.Typed(s.handlePush))
	srv.Handle(MethodSnapshot, rpc.Typed(s.handleSnapshot))
	srv.Handle(MethodRestore, rpc.Typed(s.handleRestore))
	srv.Handle(MethodDrop, rpc.Typed(s.handleDrop))
}

func (s *Server) handleInit(a InitArgs) (Ack, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	vals := make([]float64, len(a.Values))
	copy(vals, a.Values)
	s.parts[a.Job] = &partition{lo: a.Lo, values: vals}
	return Ack{}, nil
}

func (s *Server) handlePull(a PullArgs) (PullReply, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	p, ok := s.parts[a.Job]
	if !ok {
		return PullReply{}, fmt.Errorf("ps: no partition for job %q", a.Job)
	}
	vals := make([]float64, len(p.values))
	copy(vals, p.values)
	return PullReply{Lo: p.lo, Values: vals}, nil
}

func (s *Server) handlePush(a PushArgs) (Ack, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	p, ok := s.parts[a.Job]
	if !ok {
		return Ack{}, fmt.Errorf("ps: no partition for job %q", a.Job)
	}
	if a.Lo != p.lo || len(a.Delta) != len(p.values) {
		return Ack{}, fmt.Errorf("ps: push shape mismatch for job %q: [%d,%d) vs [%d,%d)",
			a.Job, a.Lo, a.Lo+len(a.Delta), p.lo, p.lo+len(p.values))
	}
	for i, d := range a.Delta {
		p.values[i] += d
	}
	return Ack{}, nil
}

func (s *Server) handleSnapshot(a SnapshotArgs) (PullReply, error) {
	return s.handlePull(PullArgs{Job: a.Job})
}

func (s *Server) handleRestore(a InitArgs) (Ack, error) {
	return s.handleInit(a)
}

func (s *Server) handleDrop(a DropArgs) (Ack, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.parts, a.Job)
	return Ack{}, nil
}

// Jobs reports the jobs with partitions on this server.
func (s *Server) Jobs() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.parts)
}

// Client talks to the full set of parameter servers hosting one job's
// model, assembling pulls and scattering pushes across partitions.
type Client struct {
	clients []*rpc.Client
	timeout time.Duration
}

// NewClient connects to every server address.
func NewClient(addrs []string, timeout time.Duration) (*Client, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("ps: no server addresses")
	}
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	c := &Client{timeout: timeout}
	for _, addr := range addrs {
		cl, err := rpc.Dial(addr, timeout)
		if err != nil {
			c.Close()
			return nil, err
		}
		c.clients = append(c.clients, cl)
	}
	return c, nil
}

// Partition computes server i's slice bounds for a model of size n over
// k servers: even ranges with the remainder spread over the first few.
func Partition(n, k, i int) (lo, hi int) {
	base := n / k
	extra := n % k
	lo = i*base + minInt(i, extra)
	hi = lo + base
	if i < extra {
		hi++
	}
	return lo, hi
}

// Init distributes a full model across the servers.
func (c *Client) Init(job string, model []float64) error {
	k := len(c.clients)
	for i, cl := range c.clients {
		lo, hi := Partition(len(model), k, i)
		_, err := rpc.Invoke[InitArgs, Ack](cl, MethodInit,
			InitArgs{Job: job, Lo: lo, Values: model[lo:hi]}, c.timeout)
		if err != nil {
			return fmt.Errorf("ps: init on server %d: %w", i, err)
		}
	}
	return nil
}

// Pull fetches the full model, one partition per server, concurrently —
// the PULL subtask.
func (c *Client) Pull(job string, modelSize int) ([]float64, error) {
	model := make([]float64, modelSize)
	errs := make([]error, len(c.clients))
	var wg sync.WaitGroup
	for i, cl := range c.clients {
		wg.Add(1)
		go func(i int, cl *rpc.Client) {
			defer wg.Done()
			reply, err := rpc.Invoke[PullArgs, PullReply](cl, MethodPull, PullArgs{Job: job}, c.timeout)
			if err != nil {
				errs[i] = err
				return
			}
			if reply.Lo < 0 || reply.Lo+len(reply.Values) > modelSize {
				errs[i] = fmt.Errorf("ps: partition [%d,%d) outside model of size %d",
					reply.Lo, reply.Lo+len(reply.Values), modelSize)
				return
			}
			copy(model[reply.Lo:], reply.Values)
		}(i, cl)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("ps: pull from server %d: %w", i, err)
		}
	}
	return model, nil
}

// Push scatters an additive delta across the servers — the PUSH subtask.
func (c *Client) Push(job string, delta []float64) error {
	k := len(c.clients)
	errs := make([]error, k)
	var wg sync.WaitGroup
	for i, cl := range c.clients {
		lo, hi := Partition(len(delta), k, i)
		wg.Add(1)
		go func(i int, cl *rpc.Client, lo, hi int) {
			defer wg.Done()
			_, err := rpc.Invoke[PushArgs, Ack](cl, MethodPush,
				PushArgs{Job: job, Lo: lo, Delta: delta[lo:hi]}, c.timeout)
			errs[i] = err
		}(i, cl, lo, hi)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("ps: push to server %d: %w", i, err)
		}
	}
	return nil
}

// Snapshot checkpoints the full model (used when pausing a job).
func (c *Client) Snapshot(job string, modelSize int) ([]float64, error) {
	return c.Pull(job, modelSize)
}

// Drop removes the job's partitions from every server.
func (c *Client) Drop(job string) error {
	for i, cl := range c.clients {
		if _, err := rpc.Invoke[DropArgs, Ack](cl, MethodDrop, DropArgs{Job: job}, c.timeout); err != nil {
			return fmt.Errorf("ps: drop on server %d: %w", i, err)
		}
	}
	return nil
}

// Close tears down the connections.
func (c *Client) Close() {
	for _, cl := range c.clients {
		if cl != nil {
			cl.Close()
		}
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
