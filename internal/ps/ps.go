// Package ps implements the Parameter-Server architecture of §II-A: each
// server holds a partition of every job's model vector, and workers
// synchronize through the push/pull API. Servers are co-located with
// workers in the live runtime, exactly as the paper's deployment does.
//
// The pull/push path is the live runtime's hot loop (§IV-A: COMM
// subtasks keep the network busy while co-located COMP runs), so the
// data plane rides the binary float-frame codec of internal/rpc instead
// of gob. Since PR 6 the unit of placement is the stripe, not the
// partition: a job's model is carved into fixed-size stripes, each
// independently locked, counted (pull/push ops, bytes, lock-wait) and
// movable between servers while the job runs — the elastic layer of
// DESIGN.md §12. Clients route per stripe and self-heal: an op that hits
// a migrated-away stripe gets a "moved" status, refreshes its route
// table and retries against the new owner.
//
// Wire layouts (all little-endian; "str" is a u16-length-prefixed
// string, "floats" a u32 count followed by raw IEEE-754 bit patterns):
//
//	init/restore/install request:
//	  str job | u32 count | count × stripe-frame        reply: empty
//	  stripe-frame: u32 idx | u32 lo | u8 flags | u64 version |
//	                u16 nrep | nrep × str addr | floats vals
//	pull/snapshot request:
//	  str job | u32 count | count × u32 idx
//	pull/snapshot reply:
//	  u32 count | count × (u32 idx | u8 status |
//	                       ok: u32 lo | floats vals | moved: str fwd)
//	push request:
//	  str job | u32 count | count × (u32 idx | u32 lo | floats delta)
//	push reply:
//	  u32 nfail | nfail × (u32 idx | str fwd)
//
// "fwd" is the forwarding hint of a migrated-away stripe — the address
// its handoff went to, empty when unknown (never owned here, replica
// bounce). Clients retry a hinted stripe directly at the forward target
// instead of re-scraping routes, so an op can chase a stripe through
// back-to-back migrations without losing the race to the next move.
//
// init/restore replace a job's whole partition on the receiving server;
// install (the migration/replication handoff) merges stripes into it.
// Control-plane methods (drop, routes, stats, migrate, replicate) stay
// gob.
package ps

import (
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"harmony/internal/metrics"
	"harmony/internal/rpc"
)

// Method names registered on the RPC server.
const (
	MethodInit     = "ps.init"
	MethodPull     = "ps.pull"
	MethodPush     = "ps.push"
	MethodSnapshot = "ps.snapshot"
	MethodRestore  = "ps.restore"
	MethodDrop     = "ps.drop"
	// MethodInstall merges handoff stripe-frames into a job's partition:
	// the receiving end of migration and replica propagation.
	MethodInstall = "ps.install"
	// MethodRoutes reports which stripes of a job this server holds.
	MethodRoutes = "ps.routes"
	// MethodStats reports per-stripe load counters for every job.
	MethodStats = "ps.stats"
	// MethodMigrate fences one stripe and hands it to another server.
	MethodMigrate = "ps.migrateOut"
	// MethodReplicate installs a read replica of a stripe on another
	// server; MethodUnreplicate detaches it again.
	MethodReplicate   = "ps.replicate"
	MethodUnreplicate = "ps.unreplicate"
	// MethodDropStripe removes a single stripe block (replica teardown).
	MethodDropStripe = "ps.dropStripe"
)

// Per-stripe status bytes in pull/push replies.
const (
	stripeOK    = 0
	stripeMoved = 1 // not owned here (migrated away or never installed)
)

// Stripe-frame flag bits.
const flagReplica = 1 // install as read replica, version-gated

// The legacy gob wire structs below are no longer what the data plane
// sends; they remain as the reference schema for the gob-baseline comm
// benchmark (cmd/harmony-bench -bench-comm) that the binary codec is
// measured against.

// InitArgs creates (or replaces) a job's partition on one server.
type InitArgs struct {
	Job    string
	Lo     int // global index of Values[0]
	Values []float64
}

// PullArgs fetches a job's partition.
type PullArgs struct {
	Job string
}

// PullReply carries the partition back.
type PullReply struct {
	Lo     int
	Values []float64
}

// PushArgs applies an additive delta to a job's partition.
type PushArgs struct {
	Job   string
	Lo    int
	Delta []float64
}

// Ack is an empty success reply.
type Ack struct{}

// SnapshotArgs asks for a checkpoint of a job's partition (migration and
// fault tolerance, §IV-B4/§VI).
type SnapshotArgs struct {
	Job string
}

// DropArgs removes a job's partition (after completion or migration).
type DropArgs struct {
	Job string
}

// RoutesArgs asks a server which stripes of a job it holds.
type RoutesArgs struct {
	Job string
}

// StripeRoute locates one stripe on the replying server.
type StripeRoute struct {
	Index   int
	Lo      int
	Len     int
	Primary bool
}

// RoutesReply lists the job's stripes held by the replying server.
type RoutesReply struct {
	Stripes []StripeRoute
}

// MigrateArgs fences a stripe on the receiving server and hands its
// state to Dest bit-exactly (the §IV-B4 idea applied per stripe: the
// fence is the pause, the install frame the checkpoint).
type MigrateArgs struct {
	Job    string
	Stripe int
	Dest   string
}

// ReplicateArgs installs a read replica of a stripe on Dest; the
// receiving server must hold the primary.
type ReplicateArgs struct {
	Job    string
	Stripe int
	Dest   string
}

// UnreplicateArgs detaches the Dest replica of a stripe; the receiving
// server must hold the primary.
type UnreplicateArgs struct {
	Job    string
	Stripe int
	Dest   string
}

// DropStripeArgs removes one stripe block from the receiving server.
type DropStripeArgs struct {
	Job    string
	Stripe int
}

// StatsArgs requests per-stripe load counters.
type StatsArgs struct{}

// StripeSize is the default number of float64 elements per stripe
// (256 KiB of parameters). Small enough that co-located jobs' pushes and
// a snapshot's streaming pull interleave — and that a single hot stripe
// is a meaningful unit to migrate — large enough that lock and header
// traffic is negligible against the arithmetic.
const StripeSize = 32 * 1024

// stripeElemsFor picks the per-stripe element count for a model of n
// elements initialized across k servers: StripeSize, shrunk so that even
// a small model yields at least one stripe per server.
func stripeElemsFor(n, k int) int {
	se := StripeSize
	if k > 0 {
		if perServer := (n + k - 1) / k; perServer < se {
			se = perServer
		}
	}
	if se < 1 {
		se = 1
	}
	return se
}

// stripeCount is the number of stripes tiling n elements (always ≥ 1 so
// the degenerate empty model still registers a partition).
func stripeCount(n, se int) int {
	s := (n + se - 1) / se
	if s < 1 {
		s = 1
	}
	return s
}

// stripeStats are the per-stripe load counters feeding the rebalancer's
// EWMA score and /metrics. Atomics: pulls bump them under a read lock.
type stripeStats struct {
	pullOps   atomic.Int64
	pushOps   atomic.Int64
	pullBytes atomic.Int64
	pushBytes atomic.Int64
	lockWait  atomic.Int64 // nanoseconds waiting for gate + stripe lock
}

// stripeBlock is one stripe of one job on one server: the unit of
// locking, accounting and migration.
type stripeBlock struct {
	mu   sync.RWMutex
	idx  int
	lo   int
	vals []float64
	// version counts mutations; replica installs are gated on it so a
	// stale propagation can never roll a replica backwards. Guarded by mu.
	version uint64
	// primary: pushes apply here and propagate outward; false marks a
	// read replica. Guarded by mu.
	primary  bool
	replicas []string // replica server addrs (primary only); guarded by mu
	// moved tombstones a migrated-away stripe: ops that raced the fence
	// and acquired the lock after handoff observe it and report
	// stripeMoved instead of touching stale state. The tombstone stays in
	// the partition map (values freed) as the forwarding entry: movedTo
	// records where the handoff went, and replies carry it as a hint so
	// clients chase the stripe directly. Both guarded by mu.
	moved   bool
	movedTo string
	stats   stripeStats
}

// partition holds one job's stripe blocks on one server.
type partition struct {
	mu      sync.RWMutex
	stripes map[int]*stripeBlock
}

func newPartition() *partition {
	return &partition{stripes: make(map[int]*stripeBlock)}
}

func (p *partition) get(idx int) *stripeBlock {
	p.mu.RLock()
	st := p.stripes[idx]
	p.mu.RUnlock()
	return st
}

// Server hosts stripe blocks for any number of jobs. Register it on an
// rpc.Server with Register; Close releases the replication propagator
// and any outbound handoff connections. The server-level lock only
// guards the partition map; all value access goes through per-stripe
// locks, so concurrent pushes from co-located jobs (different
// partitions) and from one job (different stripes) proceed in parallel.
type Server struct {
	mu    sync.RWMutex
	parts map[string]*partition

	// gate, when non-nil, bounds concurrent stripe service on this server
	// (SetServiceLimit). Wait time at the gate folds into the per-stripe
	// lock-wait measurement: both are time an op spent queued on this
	// server rather than being served.
	gate chan struct{}
	// serviceDelay, when set, is held per stripe op inside the gate: a
	// stand-in for per-server service capacity (NIC drain, PCIe copy) in
	// single-process harnesses where every server shares the host CPU and
	// real service cost would not distinguish placements.
	serviceDelay time.Duration
	// lockWait is the server-wide distribution of per-stripe-op wait
	// (gate + lock acquisition), exported through MethodStats.
	lockWait metrics.Histogram

	// conns caches outbound connections to peer servers for migration and
	// replica propagation.
	connMu sync.Mutex
	conns  map[string]*rpc.Client

	// Replica propagation: pushes to a replicated stripe mark it dirty;
	// a lazily started propagator goroutine ships whole-stripe state
	// (version-gated) to the replicas.
	replMu   sync.Mutex
	dirty    map[replKey]bool
	flushing int
	retries  int // re-dirty timers pending after a failed replica send
	started  bool
	closed   bool
	wake     chan struct{}
	stop     chan struct{}
	wg       sync.WaitGroup
}

type replKey struct {
	job string
	idx int
}

// NewServer returns an empty parameter server.
func NewServer() *Server {
	return &Server{
		parts: make(map[string]*partition),
		conns: make(map[string]*rpc.Client),
		dirty: make(map[replKey]bool),
		wake:  make(chan struct{}, 1),
		stop:  make(chan struct{}),
	}
}

// SetServiceLimit bounds the number of stripe ops this server serves
// concurrently (0 removes the bound). It models finite per-server
// service capacity: excess ops queue, and their queueing time lands in
// the stripe lock-wait counters the rebalancer and /metrics observe.
// Call before serving traffic.
func (s *Server) SetServiceLimit(n int) {
	if n <= 0 {
		s.gate = nil
		return
	}
	s.gate = make(chan struct{}, n)
}

// SetServiceDelay makes every stripe op hold the service slot for an
// extra d (0 disables): a modeled per-op service time for benchmarks
// that study placement under bounded per-server capacity. Call before
// serving traffic.
func (s *Server) SetServiceDelay(d time.Duration) {
	if d < 0 {
		d = 0
	}
	s.serviceDelay = d
}

// Register installs the PS methods on the RPC server. Data-plane methods
// are inline handlers: they never block on other RPCs and run directly on
// the connection's read loop, keeping buffers pooled end to end. The
// handoff methods (migrate, replicate) dial out to peer servers, so they
// stay on the non-inline dispatch path.
func (s *Server) Register(srv *rpc.Server) {
	srv.HandleInline(MethodInit, func(raw []byte) ([]byte, error) { return s.handleInstall(raw, true) })
	srv.HandleInline(MethodRestore, func(raw []byte) ([]byte, error) { return s.handleInstall(raw, true) })
	srv.HandleInline(MethodInstall, func(raw []byte) ([]byte, error) { return s.handleInstall(raw, false) })
	srv.HandleInline(MethodPull, s.handlePull)
	srv.HandleInline(MethodSnapshot, s.handlePull)
	srv.HandleInline(MethodPush, s.handlePush)
	srv.Handle(MethodDrop, rpc.Typed(s.handleDrop))
	srv.Handle(MethodRoutes, rpc.Typed(s.handleRoutes))
	srv.Handle(MethodStats, rpc.Typed(s.handleStats))
	srv.Handle(MethodMigrate, rpc.Typed(s.handleMigrate))
	srv.Handle(MethodReplicate, rpc.Typed(s.handleReplicate))
	srv.Handle(MethodUnreplicate, rpc.Typed(s.handleUnreplicate))
	srv.Handle(MethodDropStripe, rpc.Typed(s.handleDropStripe))
}

// lookup fetches a job's partition under the map lock only.
func (s *Server) lookup(job string) *partition {
	s.mu.RLock()
	p := s.parts[job]
	s.mu.RUnlock()
	return p
}

// lockStripe acquires the stripe lock and then the service gate,
// charging the combined wait to the stripe's counters and the server
// histogram. Stripe lock first, gate second: ops queued behind a fenced
// (migrating) stripe then wait on that one stripe without holding
// service-gate slots, so a slow handoff cannot exhaust the gate and
// stall the server's other stripes.
func (s *Server) lockStripe(st *stripeBlock, write bool) {
	start := time.Now()
	if write {
		st.mu.Lock()
	} else {
		st.mu.RLock()
	}
	if s.gate != nil {
		s.gate <- struct{}{}
	}
	wait := time.Since(start)
	st.stats.lockWait.Add(int64(wait))
	s.lockWait.Observe(wait.Seconds())
	if s.serviceDelay > 0 {
		// Service, not queueing: spent after acquisition, so it delays
		// later ops (their wait grows) without inflating this op's wait.
		time.Sleep(s.serviceDelay)
	}
}

// tombstone reports whether the stripe has migrated away, and where to.
// It takes only the stripe lock — never a service-gate slot or the
// modeled service delay — so bouncing off a forwarding tombstone costs
// the source server essentially nothing: a migrated-away hot stripe
// stops consuming the old owner's service capacity immediately. During
// the fence the write lock is held, so the check inherently waits out
// the handoff and then reports the fresh placement.
func (st *stripeBlock) tombstone() (string, bool) {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return st.movedTo, st.moved
}

func (s *Server) unlockStripe(st *stripeBlock, write bool) {
	if s.gate != nil {
		<-s.gate
	}
	if write {
		st.mu.Unlock()
	} else {
		st.mu.RUnlock()
	}
}

// --- handoff frame codec ----------------------------------------------

// appendStripeFrame encodes one stripe-frame (see the package comment's
// wire layout). The caller holds whatever lock makes vals stable.
func appendStripeFrame(dst []byte, idx, lo int, flags byte, version uint64, replicas []string, vals []float64) []byte {
	dst = rpc.AppendUint32(dst, uint32(idx))
	dst = rpc.AppendUint32(dst, uint32(lo))
	dst = append(dst, flags)
	dst = rpc.AppendUint64(dst, version)
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(replicas)))
	for _, r := range replicas {
		dst = rpc.AppendString(dst, r)
	}
	return rpc.AppendFloats(dst, vals)
}

type stripeFrame struct {
	idx, lo  int
	flags    byte
	version  uint64
	replicas []string
	vals     []float64
}

// readStripeFrame decodes one stripe-frame, copying values out of the
// wire buffer (install keeps them past the handler's return).
func readStripeFrame(b []byte) (stripeFrame, []byte, error) {
	var f stripeFrame
	idx32, b, err := rpc.ReadUint32(b)
	if err != nil {
		return f, nil, err
	}
	lo32, b, err := rpc.ReadUint32(b)
	if err != nil {
		return f, nil, err
	}
	if len(b) < 1 {
		return f, nil, fmt.Errorf("rpc: stripe frame flags truncated")
	}
	f.flags = b[0]
	version, b, err := rpc.ReadUint64(b[1:])
	if err != nil {
		return f, nil, err
	}
	if len(b) < 2 {
		return f, nil, fmt.Errorf("rpc: stripe frame replica count truncated")
	}
	nrep := int(binary.LittleEndian.Uint16(b))
	b = b[2:]
	for i := 0; i < nrep; i++ {
		var addr string
		addr, b, err = rpc.ReadString(b)
		if err != nil {
			return f, nil, err
		}
		f.replicas = append(f.replicas, addr)
	}
	vals, b, err := rpc.ReadFloats(b, nil)
	if err != nil {
		return f, nil, err
	}
	f.idx, f.lo, f.version, f.vals = int(idx32), int(lo32), version, vals
	return f, b, nil
}

// --- data-plane handlers ----------------------------------------------

// handleInstall decodes an init/restore/install message. replace swaps
// the job's whole partition for the decoded stripes (init/restore);
// merge installs them into the existing partition one at a time,
// version-gated for replica propagation (install).
func (s *Server) handleInstall(raw []byte, replace bool) ([]byte, error) {
	job, rest, err := rpc.ReadString(raw)
	if err != nil {
		return nil, fmt.Errorf("ps: install: %w", err)
	}
	count32, rest, err := rpc.ReadUint32(rest)
	if err != nil {
		return nil, fmt.Errorf("ps: install %q: %w", job, err)
	}
	count := int(count32)
	if count > len(rest) { // cheap sanity bound: every frame takes > 1 byte
		return nil, fmt.Errorf("ps: install %q: stripe count %d exceeds body", job, count)
	}
	frames := make([]stripeFrame, 0, count)
	for i := 0; i < count; i++ {
		var f stripeFrame
		f, rest, err = readStripeFrame(rest)
		if err != nil {
			return nil, fmt.Errorf("ps: install %q stripe %d/%d: %w", job, i, count, err)
		}
		frames = append(frames, f)
	}
	if replace {
		p := newPartition()
		for _, f := range frames {
			p.stripes[f.idx] = &stripeBlock{
				idx: f.idx, lo: f.lo, vals: f.vals, version: f.version,
				primary: f.flags&flagReplica == 0, replicas: f.replicas,
			}
		}
		s.mu.Lock()
		s.parts[job] = p
		s.mu.Unlock()
		return nil, nil
	}
	s.mu.Lock()
	p := s.parts[job]
	if p == nil {
		p = newPartition()
		s.parts[job] = p
	}
	s.mu.Unlock()
	for _, f := range frames {
		s.installStripe(p, f)
	}
	return nil, nil
}

// installStripe merges one handoff frame into the partition. Primary
// installs (migration) replace unconditionally; replica installs apply
// only when they advance the version, so reordered propagations can
// never roll a replica backwards.
func (s *Server) installStripe(p *partition, f stripeFrame) {
	incomingPrimary := f.flags&flagReplica == 0
	p.mu.Lock()
	st := p.stripes[f.idx]
	if st == nil {
		p.stripes[f.idx] = &stripeBlock{
			idx: f.idx, lo: f.lo, vals: f.vals, version: f.version,
			primary: incomingPrimary, replicas: f.replicas,
		}
		p.mu.Unlock()
		return
	}
	p.mu.Unlock()
	st.mu.Lock()
	if !incomingPrimary && st.version >= f.version && !st.moved {
		st.mu.Unlock()
		return // stale propagation
	}
	st.lo, st.vals, st.version = f.lo, f.vals, f.version
	st.primary = incomingPrimary
	st.replicas = f.replicas
	st.moved = false
	st.movedTo = ""
	st.mu.Unlock()
}

// handlePull streams the requested stripes out one by one: each stripe
// is encoded under its own read lock, so a snapshot of a large job never
// stalls co-located jobs' pushes. Stripes this server no longer owns
// come back with a moved status the client uses to refresh its routes.
func (s *Server) handlePull(raw []byte) ([]byte, error) {
	job, rest, err := rpc.ReadString(raw)
	if err != nil {
		return nil, fmt.Errorf("ps: pull: %w", err)
	}
	count32, rest, err := rpc.ReadUint32(rest)
	if err != nil {
		return nil, fmt.Errorf("ps: pull %q: %w", job, err)
	}
	count := int(count32)
	p := s.lookup(job)
	reply := rpc.GetBuffer(4096)[:0]
	reply = rpc.AppendUint32(reply, count32)
	for i := 0; i < count; i++ {
		idx32, next, err := rpc.ReadUint32(rest)
		if err != nil {
			rpc.PutBuffer(reply)
			return nil, fmt.Errorf("ps: pull %q: %w", job, err)
		}
		rest = next
		var st *stripeBlock
		if p != nil {
			st = p.get(int(idx32))
		}
		if st == nil {
			reply = rpc.AppendUint32(reply, idx32)
			reply = append(reply, stripeMoved)
			reply = rpc.AppendString(reply, "")
			continue
		}
		if fwd, moved := st.tombstone(); moved {
			reply = rpc.AppendUint32(reply, idx32)
			reply = append(reply, stripeMoved)
			reply = rpc.AppendString(reply, fwd)
			continue
		}
		s.lockStripe(st, false)
		if st.moved {
			fwd := st.movedTo
			s.unlockStripe(st, false)
			reply = rpc.AppendUint32(reply, idx32)
			reply = append(reply, stripeMoved)
			reply = rpc.AppendString(reply, fwd)
			continue
		}
		reply = rpc.AppendUint32(reply, idx32)
		reply = append(reply, stripeOK)
		reply = rpc.AppendUint32(reply, uint32(st.lo))
		reply = rpc.AppendFloats(reply, st.vals)
		st.stats.pullOps.Add(1)
		st.stats.pullBytes.Add(int64(8 * len(st.vals)))
		s.unlockStripe(st, false)
	}
	return reply, nil
}

// handlePush accumulates deltas straight off the wire, stripe by stripe.
// Sub-stripe ranges are accepted. Stripes this server no longer owns are
// reported back unapplied; a delta that does not fit its stripe is a
// caller bug and fails the whole call.
func (s *Server) handlePush(raw []byte) ([]byte, error) {
	job, rest, err := rpc.ReadString(raw)
	if err != nil {
		return nil, fmt.Errorf("ps: push: %w", err)
	}
	count32, rest, err := rpc.ReadUint32(rest)
	if err != nil {
		return nil, fmt.Errorf("ps: push %q: %w", job, err)
	}
	count := int(count32)
	p := s.lookup(job)
	type bounce struct {
		idx uint32
		fwd string
	}
	var failed []bounce
	for i := 0; i < count; i++ {
		idx32, next, err := rpc.ReadUint32(rest)
		if err != nil {
			return nil, fmt.Errorf("ps: push %q: %w", job, err)
		}
		lo32, next, err := rpc.ReadUint32(next)
		if err != nil {
			return nil, fmt.Errorf("ps: push %q: %w", job, err)
		}
		n, data, next, err := rpc.FloatFrame(next)
		if err != nil {
			return nil, fmt.Errorf("ps: push %q stripe %d: %w", job, idx32, err)
		}
		rest = next
		var st *stripeBlock
		if p != nil {
			st = p.get(int(idx32))
		}
		if st == nil {
			failed = append(failed, bounce{idx32, ""})
			continue
		}
		if fwd, moved := st.tombstone(); moved {
			failed = append(failed, bounce{idx32, fwd})
			continue
		}
		s.lockStripe(st, true)
		if st.moved || !st.primary {
			// Writes aggregate at the owner; a replica bounces the push so
			// the client re-routes it there. movedTo is empty on a replica
			// bounce (a replica does not track its primary's address).
			fwd := st.movedTo
			s.unlockStripe(st, true)
			failed = append(failed, bounce{idx32, fwd})
			continue
		}
		start := int(lo32) - st.lo
		if start < 0 || start+n > len(st.vals) {
			s.unlockStripe(st, true)
			return nil, fmt.Errorf("ps: push shape mismatch for job %q: [%d,%d) vs stripe %d [%d,%d)",
				job, lo32, int(lo32)+n, st.idx, st.lo, st.lo+len(st.vals))
		}
		for k := 0; k < n; k++ {
			st.vals[start+k] += rpc.FloatAt(data, k)
		}
		st.version++
		propagate := len(st.replicas) > 0
		st.stats.pushOps.Add(1)
		st.stats.pushBytes.Add(int64(8 * n))
		s.unlockStripe(st, true)
		if propagate {
			s.markDirty(job, int(idx32))
		}
	}
	reply := rpc.GetBuffer(4 + 8*len(failed))[:0]
	reply = rpc.AppendUint32(reply, uint32(len(failed)))
	for _, b := range failed {
		reply = rpc.AppendUint32(reply, b.idx)
		reply = rpc.AppendString(reply, b.fwd)
	}
	return reply, nil
}

func (s *Server) handleDrop(a DropArgs) (Ack, error) {
	s.mu.Lock()
	delete(s.parts, a.Job)
	s.mu.Unlock()
	s.replMu.Lock()
	for k := range s.dirty {
		if k.job == a.Job {
			delete(s.dirty, k)
		}
	}
	s.replMu.Unlock()
	return Ack{}, nil
}

func (s *Server) handleRoutes(a RoutesArgs) (RoutesReply, error) {
	p := s.lookup(a.Job)
	if p == nil {
		return RoutesReply{}, nil
	}
	p.mu.RLock()
	blocks := make([]*stripeBlock, 0, len(p.stripes))
	for _, st := range p.stripes {
		blocks = append(blocks, st)
	}
	p.mu.RUnlock()
	var reply RoutesReply
	for _, st := range blocks {
		st.mu.RLock()
		if !st.moved {
			reply.Stripes = append(reply.Stripes, StripeRoute{
				Index: st.idx, Lo: st.lo, Len: len(st.vals), Primary: st.primary,
			})
		}
		st.mu.RUnlock()
	}
	return reply, nil
}

// Jobs reports the jobs with partitions on this server.
func (s *Server) Jobs() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.parts)
}

// --- migration and replication ----------------------------------------

// handoffTimeout bounds the install call made while a stripe is fenced
// (migrate/replicate) and the replica propagation sends. A stripe is at
// most a few hundred KiB, so seconds suffice; a slow destination must
// fail the handoff — leaving the stripe intact on the source — rather
// than extend the fence toward the RPC minute-scale control timeouts.
const handoffTimeout = 5 * time.Second

// replicaRetryDelay spaces retries of replica propagation toward an
// unreachable replica, so a dead replica is not hammered in a hot loop.
const replicaRetryDelay = 50 * time.Millisecond

// conn returns a cached outbound connection to a peer server.
func (s *Server) conn(addr string) (*rpc.Client, error) {
	s.connMu.Lock()
	defer s.connMu.Unlock()
	if cl, ok := s.conns[addr]; ok {
		return cl, nil
	}
	cl, err := rpc.Dial(addr, 10*time.Second)
	if err != nil {
		return nil, err
	}
	s.conns[addr] = cl
	return cl, nil
}

// handleMigrate is the fence-and-handoff protocol (DESIGN.md §12): take
// the stripe's write lock (the fence — racing ops queue behind it),
// encode its exact state as an install frame, hand it to the destination,
// and tombstone the local block. Ops that were queued on the fence
// observe the tombstone and report moved, steering the client to the new
// owner. The handoff is bit-exact: values travel as raw IEEE-754 bits.
func (s *Server) handleMigrate(a MigrateArgs) (Ack, error) {
	p := s.lookup(a.Job)
	if p == nil {
		return Ack{}, fmt.Errorf("ps: migrate: no stripes for job %q", a.Job)
	}
	st := p.get(a.Stripe)
	if st == nil {
		return Ack{}, fmt.Errorf("ps: migrate: job %q stripe %d not here", a.Job, a.Stripe)
	}
	// Dial the destination before fencing: an unreachable peer must fail
	// the move without the stripe ever pausing service.
	cl, err := s.conn(a.Dest)
	if err != nil {
		return Ack{}, fmt.Errorf("ps: migrate to %s: %w", a.Dest, err)
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.moved {
		return Ack{}, fmt.Errorf("ps: migrate: job %q stripe %d already moved", a.Job, a.Stripe)
	}
	if !st.primary {
		return Ack{}, fmt.Errorf("ps: migrate: job %q stripe %d is a replica here", a.Job, a.Stripe)
	}
	// The destination may currently hold a replica of this stripe: it is
	// promoted by the primary install and must not appear in its own
	// replica list.
	replicas := make([]string, 0, len(st.replicas))
	for _, r := range st.replicas {
		if r != a.Dest {
			replicas = append(replicas, r)
		}
	}
	body := rpc.GetBuffer(2 + len(a.Job) + 4)[:0]
	body = rpc.AppendString(body, a.Job)
	body = rpc.AppendUint32(body, 1)
	body = appendStripeFrame(body, st.idx, st.lo, 0, st.version, replicas, st.vals)
	reply, err := cl.Call(MethodInstall, body, handoffTimeout)
	rpc.PutBuffer(body)
	rpc.PutBuffer(reply)
	if err != nil {
		// Handoff failed: the stripe stays here, fully intact.
		return Ack{}, fmt.Errorf("ps: migrate job %q stripe %d to %s: %w", a.Job, a.Stripe, a.Dest, err)
	}
	// Tombstone with a forwarding entry: the block stays in the map
	// (values freed) so ops arriving after the handoff are pointed
	// straight at the destination instead of groping through a routes
	// re-scrape that the next migration can invalidate.
	st.moved = true
	st.movedTo = a.Dest
	st.replicas = nil
	st.vals = nil
	return Ack{}, nil
}

func (s *Server) handleReplicate(a ReplicateArgs) (Ack, error) {
	p := s.lookup(a.Job)
	if p == nil {
		return Ack{}, fmt.Errorf("ps: replicate: no stripes for job %q", a.Job)
	}
	st := p.get(a.Stripe)
	if st == nil {
		return Ack{}, fmt.Errorf("ps: replicate: job %q stripe %d not here", a.Job, a.Stripe)
	}
	// As with migrate: dial before fencing so an unreachable destination
	// never pauses the stripe.
	cl, err := s.conn(a.Dest)
	if err != nil {
		return Ack{}, fmt.Errorf("ps: replicate to %s: %w", a.Dest, err)
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.moved || !st.primary {
		return Ack{}, fmt.Errorf("ps: replicate: job %q stripe %d is not primary here", a.Job, a.Stripe)
	}
	for _, r := range st.replicas {
		if r == a.Dest {
			return Ack{}, nil // already attached
		}
	}
	body := rpc.GetBuffer(2 + len(a.Job) + 4)[:0]
	body = rpc.AppendString(body, a.Job)
	body = rpc.AppendUint32(body, 1)
	body = appendStripeFrame(body, st.idx, st.lo, flagReplica, st.version, nil, st.vals)
	reply, err := cl.Call(MethodInstall, body, handoffTimeout)
	rpc.PutBuffer(body)
	rpc.PutBuffer(reply)
	if err != nil {
		return Ack{}, fmt.Errorf("ps: replicate job %q stripe %d to %s: %w", a.Job, a.Stripe, a.Dest, err)
	}
	st.replicas = append(st.replicas, a.Dest)
	return Ack{}, nil
}

func (s *Server) handleUnreplicate(a UnreplicateArgs) (Ack, error) {
	p := s.lookup(a.Job)
	if p == nil {
		return Ack{}, fmt.Errorf("ps: unreplicate: no stripes for job %q", a.Job)
	}
	st := p.get(a.Stripe)
	if st == nil {
		return Ack{}, fmt.Errorf("ps: unreplicate: job %q stripe %d not here", a.Job, a.Stripe)
	}
	st.mu.Lock()
	if st.moved || !st.primary {
		st.mu.Unlock()
		return Ack{}, fmt.Errorf("ps: unreplicate: job %q stripe %d is not primary here", a.Job, a.Stripe)
	}
	kept := st.replicas[:0]
	for _, r := range st.replicas {
		if r != a.Dest {
			kept = append(kept, r)
		}
	}
	st.replicas = kept
	st.mu.Unlock()
	// Best-effort teardown of the detached replica block; a failure
	// leaves a stale block that only wastes memory (it can never serve a
	// push, and the client routes reads by refreshed routes).
	if cl, err := s.conn(a.Dest); err == nil {
		_, _ = rpc.Invoke[DropStripeArgs, Ack](cl, MethodDropStripe,
			DropStripeArgs{Job: a.Job, Stripe: a.Stripe}, time.Minute)
	}
	return Ack{}, nil
}

func (s *Server) handleDropStripe(a DropStripeArgs) (Ack, error) {
	p := s.lookup(a.Job)
	if p == nil {
		return Ack{}, nil
	}
	st := p.get(a.Stripe)
	if st == nil {
		return Ack{}, nil
	}
	st.mu.Lock()
	st.moved = true
	st.movedTo = "" // replica teardown: the primary's address is not known here
	st.replicas = nil
	st.vals = nil
	st.mu.Unlock()
	return Ack{}, nil
}

// markDirty queues a replicated stripe for propagation and wakes the
// propagator, starting it on first use.
func (s *Server) markDirty(job string, idx int) {
	s.replMu.Lock()
	if s.closed {
		s.replMu.Unlock()
		return
	}
	s.dirty[replKey{job, idx}] = true
	if !s.started {
		s.started = true
		s.wg.Add(1)
		go s.propagate()
	}
	s.replMu.Unlock()
	select {
	case s.wake <- struct{}{}:
	default:
	}
}

// propagate is the replica propagator: it drains the dirty set, shipping
// each stripe's current state to its replicas. Propagation coalesces —
// many pushes between flushes cost one send — and is version-gated at
// the receiving end, so replicas converge to the primary's latest state.
func (s *Server) propagate() {
	defer s.wg.Done()
	for {
		select {
		case <-s.stop:
			return
		case <-s.wake:
		}
		for {
			s.replMu.Lock()
			var key replKey
			found := false
			for k := range s.dirty {
				key, found = k, true
				break
			}
			if !found {
				s.replMu.Unlock()
				break
			}
			delete(s.dirty, key)
			s.flushing++
			s.replMu.Unlock()
			s.flushStripe(key.job, key.idx)
			s.replMu.Lock()
			s.flushing--
			s.replMu.Unlock()
		}
	}
}

// flushStripe ships one stripe's state to its replicas. A replica that
// cannot be reached re-queues the stripe after a short delay: the last
// push before traffic quiesces must still converge every replica, so a
// missed send retries until it lands or the replica is detached, rather
// than waiting for the next push to re-mark the stripe dirty.
func (s *Server) flushStripe(job string, idx int) {
	p := s.lookup(job)
	if p == nil {
		return
	}
	st := p.get(idx)
	if st == nil {
		return
	}
	st.mu.RLock()
	if st.moved || !st.primary || len(st.replicas) == 0 {
		st.mu.RUnlock()
		return
	}
	replicas := append([]string(nil), st.replicas...)
	body := rpc.GetBuffer(2 + len(job) + 4)[:0]
	body = rpc.AppendString(body, job)
	body = rpc.AppendUint32(body, 1)
	body = appendStripeFrame(body, st.idx, st.lo, flagReplica, st.version, nil, st.vals)
	st.mu.RUnlock()
	failed := false
	for _, addr := range replicas {
		cl, err := s.conn(addr)
		if err != nil {
			failed = true
			continue
		}
		reply, err := cl.Call(MethodInstall, body, handoffTimeout)
		if err != nil {
			failed = true
			continue
		}
		rpc.PutBuffer(reply)
	}
	rpc.PutBuffer(body)
	if failed {
		s.redirty(job, idx)
	}
}

// redirty schedules a delayed re-mark of a stripe whose propagation
// failed. The pending timer counts against FlushReplication so "drained"
// still means every replica converged (or the server closed).
func (s *Server) redirty(job string, idx int) {
	s.replMu.Lock()
	defer s.replMu.Unlock()
	if s.closed {
		return
	}
	s.retries++
	time.AfterFunc(replicaRetryDelay, func() {
		s.replMu.Lock()
		s.retries--
		s.replMu.Unlock()
		s.markDirty(job, idx)
	})
}

// FlushReplication blocks until every queued replica propagation has
// drained (tests and orderly shutdown; steady-state callers never wait).
func (s *Server) FlushReplication(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		s.replMu.Lock()
		idle := len(s.dirty) == 0 && s.flushing == 0 && s.retries == 0
		s.replMu.Unlock()
		if idle {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("ps: replication not drained after %s", timeout)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// Stats snapshots this server's per-stripe load counters (the in-process
// mirror of MethodStats, used by tests and the local bench harness).
func (s *Server) Stats() StatsReply {
	s.mu.RLock()
	jobs := make(map[string]*partition, len(s.parts))
	for name, p := range s.parts {
		jobs[name] = p
	}
	s.mu.RUnlock()
	var reply StatsReply
	for name, p := range jobs {
		p.mu.RLock()
		blocks := make([]*stripeBlock, 0, len(p.stripes))
		for _, st := range p.stripes {
			blocks = append(blocks, st)
		}
		p.mu.RUnlock()
		js := JobStats{Job: name}
		for _, st := range blocks {
			st.mu.RLock()
			if st.moved {
				// A forwarding tombstone: the live block (and its restarted
				// counters) is on the destination server.
				st.mu.RUnlock()
				continue
			}
			stat := StripeStat{
				Index: st.idx, Lo: st.lo, Len: len(st.vals),
				Primary: st.primary, Replicas: len(st.replicas),
			}
			st.mu.RUnlock()
			stat.PullOps = st.stats.pullOps.Load()
			stat.PushOps = st.stats.pushOps.Load()
			stat.PullBytes = st.stats.pullBytes.Load()
			stat.PushBytes = st.stats.pushBytes.Load()
			stat.LockWaitSeconds = time.Duration(st.stats.lockWait.Load()).Seconds()
			js.Stripes = append(js.Stripes, stat)
		}
		reply.Jobs = append(reply.Jobs, js)
	}
	reply.LockWait = s.lockWait.Snapshot()
	return reply
}

func (s *Server) handleStats(StatsArgs) (StatsReply, error) {
	return s.Stats(), nil
}

// Close stops the replica propagator and closes outbound handoff
// connections. The RPC server hosting the methods is closed separately.
func (s *Server) Close() {
	s.replMu.Lock()
	if s.closed {
		s.replMu.Unlock()
		return
	}
	s.closed = true
	started := s.started
	s.replMu.Unlock()
	if started {
		close(s.stop)
	}
	s.wg.Wait()
	s.connMu.Lock()
	for _, cl := range s.conns {
		cl.Close()
	}
	s.conns = make(map[string]*rpc.Client)
	s.connMu.Unlock()
}

// Partition computes server i's slice bounds for n items over k servers:
// even ranges with the remainder spread over the first few. The elastic
// layer uses it to place stripes (n = stripe count) at Init; the name
// and element-range semantics predate stripe-granular placement.
func Partition(n, k, i int) (lo, hi int) {
	base := n / k
	extra := n % k
	lo = i*base + minInt(i, extra)
	hi = lo + base
	if i < extra {
		hi++
	}
	return lo, hi
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
