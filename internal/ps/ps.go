// Package ps implements the Parameter-Server architecture of §II-A: each
// server holds a partition of every job's model vector, and workers
// synchronize through the push/pull API. Servers are co-located with
// workers in the live runtime, exactly as the paper's deployment does.
//
// The pull/push path is the live runtime's hot loop (§IV-A: COMM
// subtasks keep the network busy while co-located COMP runs), so the
// data plane rides the binary float-frame codec of internal/rpc instead
// of gob, partitions are sharded into independently locked stripes so
// co-located jobs' pushes never contend on a server-wide mutex, and the
// client can pull into caller-owned buffers for allocation-free
// steady-state iterations. Wire layouts (all little-endian):
//
//	init/restore  request:  str job | u32 lo | floats values   reply: empty
//	pull/snapshot request:  str job                            reply: u32 lo | floats values
//	push          request:  str job | u32 lo | floats delta    reply: empty
//
// where "str" is a u16-length-prefixed string and "floats" a u32 count
// followed by raw IEEE-754 bit patterns (rpc.AppendFloats). Drop stays a
// gob control-plane method.
package ps

import (
	"fmt"
	"sync"
	"time"

	"harmony/internal/metrics"
	"harmony/internal/rpc"
)

// Method names registered on the RPC server.
const (
	MethodInit     = "ps.init"
	MethodPull     = "ps.pull"
	MethodPush     = "ps.push"
	MethodSnapshot = "ps.snapshot"
	MethodRestore  = "ps.restore"
	MethodDrop     = "ps.drop"
)

// The legacy gob wire structs below are no longer what the data plane
// sends; they remain as the reference schema for the gob-baseline comm
// benchmark (cmd/harmony-bench -bench-comm) that the binary codec is
// measured against.

// InitArgs creates (or replaces) a job's partition on one server.
type InitArgs struct {
	Job    string
	Lo     int // global index of Values[0]
	Values []float64
}

// PullArgs fetches a job's partition.
type PullArgs struct {
	Job string
}

// PullReply carries the partition back.
type PullReply struct {
	Lo     int
	Values []float64
}

// PushArgs applies an additive delta to a job's partition.
type PushArgs struct {
	Job   string
	Lo    int
	Delta []float64
}

// Ack is an empty success reply.
type Ack struct{}

// SnapshotArgs asks for a checkpoint of a job's partition (migration and
// fault tolerance, §IV-B4/§VI).
type SnapshotArgs struct {
	Job string
}

// DropArgs removes a job's partition (after completion or migration).
type DropArgs struct {
	Job string
}

// StripeSize is the number of float64 elements each stripe lock guards
// (256 KiB of parameters). Small enough that co-located jobs' pushes and
// a snapshot's streaming pull interleave, large enough that lock traffic
// is negligible against the arithmetic.
const StripeSize = 32 * 1024

// partition is one job's shard of parameters on one server, sharded into
// independently locked stripes: locks[i] guards
// values[i*StripeSize : (i+1)*StripeSize].
type partition struct {
	lo     int
	values []float64
	locks  []sync.RWMutex
}

func newPartition(lo int, values []float64) *partition {
	stripes := (len(values) + StripeSize - 1) / StripeSize
	if stripes < 1 {
		stripes = 1
	}
	return &partition{lo: lo, values: values, locks: make([]sync.RWMutex, stripes)}
}

// stripeBounds returns the [lo, hi) element range of stripe s.
func (p *partition) stripeBounds(s int) (int, int) {
	lo := s * StripeSize
	hi := lo + StripeSize
	if hi > len(p.values) {
		hi = len(p.values)
	}
	return lo, hi
}

// Server hosts partitions for any number of jobs. Register it on an
// rpc.Server with Register. The server-level lock only guards the
// partition map; all value access goes through per-stripe locks, so
// concurrent pushes from co-located jobs (different partitions) and
// chunked pushes from one job (different stripes) proceed in parallel.
type Server struct {
	mu    sync.RWMutex
	parts map[string]*partition
}

// NewServer returns an empty parameter server.
func NewServer() *Server {
	return &Server{parts: make(map[string]*partition)}
}

// Register installs the PS methods on the RPC server. Data-plane methods
// are inline handlers: they never block on other RPCs and run directly on
// the connection's read loop, keeping buffers pooled end to end.
func (s *Server) Register(srv *rpc.Server) {
	srv.HandleInline(MethodInit, s.handleInit)
	srv.HandleInline(MethodPull, s.handlePull)
	srv.HandleInline(MethodPush, s.handlePush)
	srv.HandleInline(MethodSnapshot, s.handlePull)
	srv.HandleInline(MethodRestore, s.handleInit)
	srv.Handle(MethodDrop, rpc.Typed(s.handleDrop))
}

// lookup fetches a job's partition under the map lock only.
func (s *Server) lookup(job string) (*partition, error) {
	s.mu.RLock()
	p, ok := s.parts[job]
	s.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("ps: no partition for job %q", job)
	}
	return p, nil
}

func (s *Server) handleInit(raw []byte) ([]byte, error) {
	job, rest, err := rpc.ReadString(raw)
	if err != nil {
		return nil, fmt.Errorf("ps: init: %w", err)
	}
	lo32, rest, err := rpc.ReadUint32(rest)
	if err != nil {
		return nil, fmt.Errorf("ps: init %q: %w", job, err)
	}
	vals, _, err := rpc.ReadFloats(rest, nil)
	if err != nil {
		return nil, fmt.Errorf("ps: init %q: %w", job, err)
	}
	p := newPartition(int(lo32), vals)
	s.mu.Lock()
	s.parts[job] = p
	s.mu.Unlock()
	return nil, nil
}

// handlePull streams the partition out stripe by stripe: each stripe is
// encoded under its own read lock, so a snapshot of a large job never
// stalls co-located jobs' pushes (they contend per stripe, not per
// server) and the full partition is never copied under one lock.
func (s *Server) handlePull(raw []byte) ([]byte, error) {
	job, _, err := rpc.ReadString(raw)
	if err != nil {
		return nil, fmt.Errorf("ps: pull: %w", err)
	}
	p, err := s.lookup(job)
	if err != nil {
		return nil, err
	}
	reply := rpc.GetBuffer(8 + rpc.FloatsLen(len(p.values)))[:0]
	reply = rpc.AppendUint32(reply, uint32(p.lo))
	reply = rpc.AppendUint32(reply, uint32(len(p.values)))
	for st := range p.locks {
		lo, hi := p.stripeBounds(st)
		p.locks[st].RLock()
		reply = rpc.AppendFloatValues(reply, p.values[lo:hi])
		p.locks[st].RUnlock()
	}
	return reply, nil
}

// handlePush accumulates a delta straight off the wire, stripe by
// stripe. Sub-range deltas are accepted, so one job may chunk its push
// across several calls.
func (s *Server) handlePush(raw []byte) ([]byte, error) {
	job, rest, err := rpc.ReadString(raw)
	if err != nil {
		return nil, fmt.Errorf("ps: push: %w", err)
	}
	lo32, rest, err := rpc.ReadUint32(rest)
	if err != nil {
		return nil, fmt.Errorf("ps: push %q: %w", job, err)
	}
	count, data, _, err := rpc.FloatFrame(rest)
	if err != nil {
		return nil, fmt.Errorf("ps: push %q: %w", job, err)
	}
	p, err := s.lookup(job)
	if err != nil {
		return nil, err
	}
	start := int(lo32) - p.lo
	if start < 0 || start+count > len(p.values) {
		return nil, fmt.Errorf("ps: push shape mismatch for job %q: [%d,%d) vs [%d,%d)",
			job, lo32, int(lo32)+count, p.lo, p.lo+len(p.values))
	}
	for st := start / StripeSize; st*StripeSize < start+count; st++ {
		lo, hi := p.stripeBounds(st)
		if lo < start {
			lo = start
		}
		if hi > start+count {
			hi = start + count
		}
		p.locks[st].Lock()
		for i := lo; i < hi; i++ {
			p.values[i] += rpc.FloatAt(data, i-start)
		}
		p.locks[st].Unlock()
	}
	return nil, nil
}

func (s *Server) handleDrop(a DropArgs) (Ack, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.parts, a.Job)
	return Ack{}, nil
}

// Jobs reports the jobs with partitions on this server.
func (s *Server) Jobs() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.parts)
}

// Client talks to the full set of parameter servers hosting one job's
// model, assembling pulls and scattering pushes across partitions.
type Client struct {
	clients []*rpc.Client
	timeout time.Duration
}

// NewClient connects to every server address.
func NewClient(addrs []string, timeout time.Duration) (*Client, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("ps: no server addresses")
	}
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	c := &Client{timeout: timeout}
	for _, addr := range addrs {
		cl, err := rpc.Dial(addr, timeout)
		if err != nil {
			c.Close()
			return nil, err
		}
		c.clients = append(c.clients, cl)
	}
	return c, nil
}

// Partition computes server i's slice bounds for a model of size n over
// k servers: even ranges with the remainder spread over the first few.
func Partition(n, k, i int) (lo, hi int) {
	base := n / k
	extra := n % k
	lo = i*base + minInt(i, extra)
	hi = lo + base
	if i < extra {
		hi++
	}
	return lo, hi
}

// bulkBody assembles a data-plane request body in a pooled buffer:
// str job | u32 lo | floats vals (the float frame is omitted for pulls).
func bulkBody(job string, lo int, vals []float64, withFloats bool) []byte {
	n := 2 + len(job) + 4
	if withFloats {
		n += rpc.FloatsLen(len(vals))
	}
	body := rpc.GetBuffer(n)[:0]
	body = rpc.AppendString(body, job)
	body = rpc.AppendUint32(body, uint32(lo))
	if withFloats {
		body = rpc.AppendFloats(body, vals)
	}
	return body
}

// Init distributes a full model across the servers, one partition per
// server, concurrently — like Pull and Push, deployment is bounded by the
// slowest server rather than the sum of sequential round trips.
func (c *Client) Init(job string, model []float64) error {
	return c.scatter(job, model, MethodInit)
}

// scatter fans a full-model payload out across the servers.
func (c *Client) scatter(job string, model []float64, method string) error {
	k := len(c.clients)
	errs := make([]error, k)
	var moved int64
	start := time.Now()
	var wg sync.WaitGroup
	for i, cl := range c.clients {
		lo, hi := Partition(len(model), k, i)
		wg.Add(1)
		go func(i int, cl *rpc.Client, lo, hi int) {
			defer wg.Done()
			body := bulkBody(job, lo, model[lo:hi], true)
			reply, err := cl.Call(method, body, c.timeout)
			rpc.PutBuffer(body)
			rpc.PutBuffer(reply)
			errs[i] = err
		}(i, cl, lo, hi)
		moved += int64(8 * (hi - lo))
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("ps: %s on server %d: %w", method, i, err)
		}
	}
	if method == MethodPush {
		metrics.Comm.ObservePush(moved, time.Since(start))
	}
	return nil
}

// Pull fetches the full model, one partition per server, concurrently —
// the PULL subtask. It allocates a fresh model; iterating callers should
// prefer PullInto with a reused buffer.
func (c *Client) Pull(job string, modelSize int) ([]float64, error) {
	model := make([]float64, modelSize)
	if err := c.PullInto(job, model); err != nil {
		return nil, err
	}
	return model, nil
}

// PullInto fetches the full model into the caller's buffer (len(model)
// is the model size). Each server's reply decodes straight into its
// slice of the buffer, so the steady-state pull allocates nothing.
func (c *Client) PullInto(job string, model []float64) error {
	return c.gather(job, model, MethodPull)
}

func (c *Client) gather(job string, model []float64, method string) error {
	errs := make([]error, len(c.clients))
	var mu sync.Mutex
	var moved int64
	start := time.Now()
	var wg sync.WaitGroup
	for i, cl := range c.clients {
		wg.Add(1)
		go func(i int, cl *rpc.Client) {
			defer wg.Done()
			body := bulkBody(job, 0, nil, false)
			reply, err := cl.Call(method, body, c.timeout)
			rpc.PutBuffer(body)
			if err != nil {
				errs[i] = err
				return
			}
			errs[i] = decodePartitionInto(reply, model)
			mu.Lock()
			moved += int64(len(reply))
			mu.Unlock()
			rpc.PutBuffer(reply)
		}(i, cl)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("ps: %s from server %d: %w", method, i, err)
		}
	}
	metrics.Comm.ObservePull(moved, time.Since(start))
	return nil
}

// decodePartitionInto places one server's pull reply into its range of
// the assembled model.
func decodePartitionInto(reply []byte, model []float64) error {
	lo32, rest, err := rpc.ReadUint32(reply)
	if err != nil {
		return err
	}
	count, data, _, err := rpc.FloatFrame(rest)
	if err != nil {
		return err
	}
	lo := int(lo32)
	if lo+count > len(model) {
		return fmt.Errorf("ps: partition [%d,%d) outside model of size %d", lo, lo+count, len(model))
	}
	dst := model[lo : lo+count]
	for i := range dst {
		dst[i] = rpc.FloatAt(data, i)
	}
	return nil
}

// Push scatters an additive delta across the servers — the PUSH subtask.
func (c *Client) Push(job string, delta []float64) error {
	return c.scatter(job, delta, MethodPush)
}

// Snapshot checkpoints the full model (used when pausing a job). It rides
// the same binary codec and per-stripe streaming as Pull, so snapshotting
// a large job does not stall co-located jobs' pushes.
func (c *Client) Snapshot(job string, modelSize int) ([]float64, error) {
	model := make([]float64, modelSize)
	if err := c.gather(job, model, MethodSnapshot); err != nil {
		return nil, err
	}
	return model, nil
}

// Restore reinstalls a checkpointed model across the servers (the
// §IV-B4 migration path; same wire format as Init).
func (c *Client) Restore(job string, model []float64) error {
	return c.scatter(job, model, MethodRestore)
}

// Drop removes the job's partitions from every server.
func (c *Client) Drop(job string) error {
	for i, cl := range c.clients {
		if _, err := rpc.Invoke[DropArgs, Ack](cl, MethodDrop, DropArgs{Job: job}, c.timeout); err != nil {
			return fmt.Errorf("ps: drop on server %d: %w", i, err)
		}
	}
	return nil
}

// Close tears down the connections.
func (c *Client) Close() {
	for _, cl := range c.clients {
		if cl != nil {
			cl.Close()
		}
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
