package ps

import (
	"fmt"
	"sort"

	"harmony/internal/metrics"
)

// StripeStat is one stripe's load counters as reported by MethodStats.
// Counters are cumulative since the stripe block was installed on its
// current server; consumers that need rates (the rebalancer) difference
// successive scrapes and clamp at zero across migrations.
type StripeStat struct {
	Index    int
	Lo       int
	Len      int
	Primary  bool
	Replicas int

	PullOps         int64
	PushOps         int64
	PullBytes       int64
	PushBytes       int64
	LockWaitSeconds float64
}

// Ops is the stripe's total op count (pulls + pushes).
func (s StripeStat) Ops() int64 { return s.PullOps + s.PushOps }

// JobStats groups one job's stripes on one server.
type JobStats struct {
	Job     string
	Stripes []StripeStat
}

// StatsReply is one server's answer to MethodStats.
type StatsReply struct {
	Jobs []JobStats
	// LockWait is the server-wide distribution of per-op wait (service
	// gate + stripe lock) — the congestion signal the rebalancer drives
	// down.
	LockWait metrics.HistSnapshot
}

// ServerStats tags one server's StatsReply with its identity.
type ServerStats struct {
	Name string
	Addr string
	StatsReply
}

// ClusterStats is the master's merged view across every PS server
// (Master.PSStats); it feeds the rebalancer, /metrics and
// `harmonyctl ps-stats`.
type ClusterStats struct {
	Servers []ServerStats
}

// stripeSample is a flattened (server, job, stripe) stat used for top-K
// selection.
type stripeSample struct {
	server string
	job    string
	stat   StripeStat
}

// StripeSamples renders cluster-wide per-stripe load as Prometheus
// samples with bounded cardinality: the top-K stripes by op count get
// their own labeled series, everything else folds into a stripe="other"
// aggregate per server. Families:
//
//	harmony_ps_stripe_ops_total{op,server,job,stripe}
//	harmony_ps_stripe_lock_wait_seconds_total{server,job,stripe}
func StripeSamples(cs ClusterStats, topK int) []metrics.Sample {
	if topK < 0 {
		topK = 0
	}
	var all []stripeSample
	for _, srv := range cs.Servers {
		for _, js := range srv.Jobs {
			for _, st := range js.Stripes {
				all = append(all, stripeSample{server: srv.Name, job: js.Job, stat: st})
			}
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].stat.Ops() > all[j].stat.Ops() })
	hot := all
	if len(hot) > topK {
		hot = all[:topK]
	}
	rest := all[len(hot):]

	const (
		opsFam  = "harmony_ps_stripe_ops_total"
		opsHelp = "Parameter-server ops per stripe (top-K hot stripes; the rest aggregate as stripe=\"other\")."
		lwFam   = "harmony_ps_stripe_lock_wait_seconds_total"
		lwHelp  = "Time ops spent waiting on the stripe's service gate and lock."
	)
	var out []metrics.Sample
	opSample := func(op, server, job, stripe string, v float64) metrics.Sample {
		return metrics.Sample{
			Name: fmt.Sprintf(`%s{op=%q,server=%q,job=%q,stripe=%s}`, opsFam, op, server, job, stripe),
			Help: opsHelp, Type: metrics.PromCounter, Fam: opsFam, Value: v,
		}
	}
	lwSample := func(server, job, stripe string, v float64) metrics.Sample {
		return metrics.Sample{
			Name: fmt.Sprintf(`%s{server=%q,job=%q,stripe=%s}`, lwFam, server, job, stripe),
			Help: lwHelp, Type: metrics.PromCounter, Fam: lwFam, Value: v,
		}
	}
	for _, s := range hot {
		stripe := fmt.Sprintf(`"%d"`, s.stat.Index)
		out = append(out,
			opSample("pull", s.server, s.job, stripe, float64(s.stat.PullOps)),
			opSample("push", s.server, s.job, stripe, float64(s.stat.PushOps)),
			lwSample(s.server, s.job, stripe, s.stat.LockWaitSeconds),
		)
	}
	// Fold the cold tail into one aggregate per server so the series
	// count stays bounded no matter how many stripes exist.
	type agg struct {
		pull, push int64
		lockWait   float64
	}
	other := make(map[string]*agg)
	var servers []string
	for _, s := range rest {
		a := other[s.server]
		if a == nil {
			a = &agg{}
			other[s.server] = a
			servers = append(servers, s.server)
		}
		a.pull += s.stat.PullOps
		a.push += s.stat.PushOps
		a.lockWait += s.stat.LockWaitSeconds
	}
	sort.Strings(servers)
	for _, server := range servers {
		a := other[server]
		out = append(out,
			opSample("pull", server, "", `"other"`, float64(a.pull)),
			opSample("push", server, "", `"other"`, float64(a.push)),
			lwSample(server, "", `"other"`, a.lockWait),
		)
	}
	return out
}
