package ps

import (
	"fmt"
	"sort"
	"time"

	"harmony/internal/rpc"
)

// This file is the hot-stripe rebalancer of DESIGN.md §12: it turns the
// per-stripe counters of MethodStats into an EWMA load score per stripe,
// plans migrations that move hot stripes off the most loaded server, and
// executes them with the fence-and-handoff protocol. The planner is pure
// (Observe/Plan over ClusterStats), so it unit-tests without a cluster;
// the master's control loop owns the scrape-plan-execute cadence.

// lockWaitWeight converts seconds of measured lock/gate wait into
// op-equivalents when scoring a stripe. One second of queueing counts
// like 10k ops: congestion dominates raw traffic, which is the point —
// the rebalancer chases contention, not popularity.
const lockWaitWeight = 10_000

// stripeKey identifies a stripe independent of its current placement.
type stripeKey struct {
	Job    string
	Stripe int
}

// cum is the last observed cumulative counter values for one stripe.
type cum struct {
	ops      int64
	pulls    int64
	lockWait float64
}

// Move is one planned stripe relocation. Replicate marks a read-hot
// stripe that should gain a replica on To instead of moving: reads then
// spread across copies while writes keep aggregating at From.
type Move struct {
	Job       string
	Stripe    int
	From      string
	To        string
	Replicate bool
}

func (m Move) String() string {
	verb := "migrate"
	if m.Replicate {
		verb = "replicate"
	}
	return fmt.Sprintf("%s %s/%d %s -> %s", verb, m.Job, m.Stripe, m.From, m.To)
}

// PlanOptions tune one planning round.
type PlanOptions struct {
	// MaxMoves caps migrations per round (default 2): each move briefly
	// fences a stripe, so rounds stay small and frequent.
	MaxMoves int
	// Tolerance is the accepted relative spread around the mean server
	// load before any move is planned (default 0.25).
	Tolerance float64
	// MinScore ignores stripes (and servers) colder than this absolute
	// score — noise suppression at idle (default 1).
	MinScore float64
	// ReplicateReadHotspots plans a replica instead of a migration when a
	// single stripe dominated by pulls is itself the imbalance: moving it
	// would only relocate the hotspot, while replicas split the reads.
	ReplicateReadHotspots bool
	// ReadHotRatio is the pull:push ratio above which a stripe counts as
	// read-hot (default 4).
	ReadHotRatio float64
	// CooldownRounds keeps a just-moved stripe off the candidate list for
	// this many Observe rounds (default 3): its EWMA needs a few intervals
	// on the new server before its score means anything there, and moving
	// it again sooner is churn by construction.
	CooldownRounds int
	// MinStreak requires the same server to trip the tolerance check for
	// this many consecutive planning rounds before any move is planned
	// (default 2). Queueing noise makes a different server look hottest
	// each interval; a real hotspot stays the hottest. One noisy interval
	// is not an imbalance.
	MinStreak int
}

func (o PlanOptions) withDefaults() PlanOptions {
	if o.MaxMoves <= 0 {
		o.MaxMoves = 2
	}
	if o.Tolerance <= 0 {
		o.Tolerance = 0.25
	}
	if o.MinScore <= 0 {
		o.MinScore = 1
	}
	if o.ReadHotRatio <= 0 {
		o.ReadHotRatio = 4
	}
	if o.CooldownRounds <= 0 {
		o.CooldownRounds = 3
	}
	if o.MinStreak <= 0 {
		o.MinStreak = 2
	}
	return o
}

// stripeState is the balancer's rolling view of one stripe.
type stripeState struct {
	score    float64 // EWMA of per-interval cost
	server   string  // current primary
	lo, n    int
	pullFrac float64 // pull share of the last interval's ops
	replicas int
}

// Balancer scores stripes from successive stats scrapes and plans
// migrations. Not safe for concurrent use; the owning control loop
// serializes Observe/Plan.
type Balancer struct {
	alpha   float64
	prev    map[stripeKey]cum
	state   map[stripeKey]*stripeState
	seenAt  map[stripeKey]int
	movedAt map[stripeKey]int
	round   int
	// Persistence gate for Plan: the server currently tripping the
	// tolerance check and for how many consecutive rounds it has.
	hiServer  string
	hiStreak  int
	planRound int
}

// NewBalancer returns a balancer with EWMA smoothing alpha (weight of
// the newest interval; 0 < alpha <= 1, default 0.5).
func NewBalancer(alpha float64) *Balancer {
	if alpha <= 0 || alpha > 1 {
		alpha = 0.5
	}
	return &Balancer{
		alpha:   alpha,
		prev:    make(map[stripeKey]cum),
		state:   make(map[stripeKey]*stripeState),
		seenAt:  make(map[stripeKey]int),
		movedAt: make(map[stripeKey]int),
	}
}

// Observe folds one cluster-wide stats scrape into the per-stripe EWMA
// scores. Counters are cumulative per stripe block, and a block's
// counters restart from zero when the stripe migrates; interval deltas
// clamp at zero so a migration reads as a quiet interval, not a
// negative one.
func (b *Balancer) Observe(cs ClusterStats) {
	b.round++
	for _, srv := range cs.Servers {
		for _, js := range srv.Jobs {
			for _, st := range js.Stripes {
				if !st.Primary {
					continue
				}
				key := stripeKey{Job: js.Job, Stripe: st.Index}
				now := cum{ops: st.Ops(), pulls: st.PullOps, lockWait: st.LockWaitSeconds}
				last := b.prev[key]
				s := b.state[key]
				// A migrated stripe restarts its counters on the new server,
				// invalidating the baseline. Folding the bogus "quiet"
				// interval into the EWMA would make the stripe look cold
				// right after its move and invite churn — keep the score and
				// just rebase.
				rebase := (s != nil && s.server != srv.Addr) || now.ops < last.ops
				dOps := now.ops - last.ops
				dPulls := now.pulls - last.pulls
				dWait := now.lockWait - last.lockWait
				if dOps < 0 {
					dOps, dPulls = 0, 0
				}
				if dPulls < 0 {
					dPulls = 0
				}
				if dWait < 0 {
					dWait = 0
				}
				cost := float64(dOps) + lockWaitWeight*dWait
				if s == nil {
					s = &stripeState{score: cost}
					b.state[key] = s
				} else if !rebase {
					s.score = b.alpha*cost + (1-b.alpha)*s.score
				}
				s.server = srv.Addr
				s.lo, s.n = st.Lo, st.Len
				s.replicas = st.Replicas
				if dOps > 0 && !rebase {
					s.pullFrac = float64(dPulls) / float64(dOps)
				}
				b.prev[key] = now
				b.seenAt[key] = b.round
			}
		}
	}
	// Forget stripes that vanished (job dropped): two rounds of absence.
	for key, at := range b.seenAt {
		if b.round-at > 2 {
			delete(b.seenAt, key)
			delete(b.state, key)
			delete(b.prev, key)
			delete(b.movedAt, key)
		}
	}
}

// Score reports the current EWMA score of one stripe (tests/CLI).
func (b *Balancer) Score(job string, stripe int) float64 {
	if s := b.state[stripeKey{Job: job, Stripe: stripe}]; s != nil {
		return s.score
	}
	return 0
}

// serverLoad sums stripe scores per server over every server present in
// the last scrape plus any server hosting a scored stripe.
func (b *Balancer) serverLoads(servers []string) map[string]float64 {
	loads := make(map[string]float64, len(servers))
	for _, s := range servers {
		loads[s] = 0
	}
	for _, st := range b.state {
		loads[st.server] += st.score
	}
	return loads
}

// Plan proposes stripe relocations with every observed job allowed on
// every server — the single-tenant convenience form for benches and
// tests. Production callers use PlanJobs: a job's PS clients route only
// within that job's own server set, so each stripe must stay inside it.
func (b *Balancer) Plan(servers []string, opts PlanOptions) []Move {
	domains := make(map[string][]string)
	for key := range b.state {
		domains[key.Job] = servers
	}
	return b.PlanJobs(domains, opts)
}

// PlanJobs proposes up to MaxMoves stripe relocations that shrink the
// load gap between the hottest and coldest servers. domains maps each
// job to the servers its stripes may be placed on (the job's current
// server set); a stripe never leaves its job's domain — a placement
// outside it would be unreachable to the job's clients, which refresh
// routes only against their own servers. Loads and the imbalance check
// span the union of all domains, since co-located jobs share servers. A
// domain server not present in past scrapes counts as idle and is a
// natural target. Jobs absent from domains (unknown, mid-resize) are
// never moved.
func (b *Balancer) PlanJobs(domains map[string][]string, opts PlanOptions) []Move {
	opts = opts.withDefaults()
	inUnion := make(map[string]bool)
	var servers []string
	for _, ds := range domains {
		for _, s := range ds {
			if !inUnion[s] {
				inUnion[s] = true
				servers = append(servers, s)
			}
		}
	}
	sort.Strings(servers)
	if len(servers) < 2 {
		return nil
	}
	var moves []Move
	// Work on a mutable copy of the loads so successive moves in one
	// round see each other's effect.
	loads := b.serverLoads(servers)
	moved := make(map[stripeKey]bool)
	cooling := func(key stripeKey) bool {
		at, ok := b.movedAt[key]
		return ok && b.round-at < opts.CooldownRounds
	}
	// Persistence gate: track which server (if any) trips the tolerance
	// check this round and demand MinStreak consecutive rounds of the
	// same answer before planning anything.
	{
		var hi string
		var total float64
		for _, s := range servers {
			if hi == "" || loads[s] > loads[hi] {
				hi = s
			}
			total += loads[s]
		}
		mean := total / float64(len(servers))
		trip := loads[hi] >= opts.MinScore && loads[hi] > mean*(1+opts.Tolerance)
		if b.planRound != b.round {
			b.planRound = b.round
			switch {
			case trip && hi == b.hiServer:
				b.hiStreak++
			case trip:
				b.hiServer, b.hiStreak = hi, 1
			default:
				b.hiServer, b.hiStreak = "", 0
			}
		}
		if !trip || b.hiStreak < opts.MinStreak {
			return nil
		}
	}
	for len(moves) < opts.MaxMoves {
		var hi string
		first := true
		for _, s := range servers {
			if first {
				hi, first = s, false
				continue
			}
			if loads[s] > loads[hi] {
				hi = s
			}
		}
		var mean float64
		for _, s := range servers {
			mean += loads[s]
		}
		mean /= float64(len(servers))
		if loads[hi] < opts.MinScore || loads[hi] <= mean*(1+opts.Tolerance) {
			break
		}
		// Pick the hottest stripe on hi whose score fits strictly inside
		// the gap to the coldest server of its own job's domain: moving it
		// must shrink the spread, not just swap which server is overloaded
		// (score >= gap would oscillate).
		var bestKey stripeKey
		var best *stripeState
		var bestDest string
		for key, st := range b.state {
			if st.server != hi || moved[key] || cooling(key) || st.score < opts.MinScore {
				continue
			}
			dest, ok := coldestIn(domains[key.Job], hi, loads)
			if !ok || st.score >= loads[hi]-loads[dest] {
				continue
			}
			if best == nil || st.score > best.score {
				bestKey, best, bestDest = key, st, dest
			}
		}
		replicate := false
		if best == nil && opts.ReplicateReadHotspots {
			// No stripe fits: one stripe dominates the server. If reads
			// dominate the stripe, a replica splits them across two hosts —
			// the only lever that helps a single hotspot.
			hotFrac := opts.ReadHotRatio / (opts.ReadHotRatio + 1)
			for key, st := range b.state {
				if st.server != hi || moved[key] || cooling(key) || st.score < opts.MinScore {
					continue
				}
				if st.pullFrac < hotFrac || st.replicas > 0 {
					continue
				}
				dest, ok := coldestIn(domains[key.Job], hi, loads)
				if !ok {
					continue
				}
				if best == nil || st.score > best.score {
					bestKey, best, bestDest = key, st, dest
				}
			}
			replicate = best != nil
		}
		if best == nil {
			break
		}
		moves = append(moves, Move{
			Job: bestKey.Job, Stripe: bestKey.Stripe,
			From: hi, To: bestDest, Replicate: replicate,
		})
		moved[bestKey] = true
		if replicate {
			// Reads split across copies; model as halving the load and
			// charging the other half to the replica host.
			half := best.score / 2
			loads[hi] -= half
			loads[bestDest] += half
		} else {
			loads[hi] -= best.score
			loads[bestDest] += best.score
		}
	}
	sort.Slice(moves, func(i, j int) bool {
		if moves[i].Job != moves[j].Job {
			return moves[i].Job < moves[j].Job
		}
		return moves[i].Stripe < moves[j].Stripe
	})
	return moves
}

// coldestIn picks the least-loaded server of domain other than hi.
func coldestIn(domain []string, hi string, loads map[string]float64) (string, bool) {
	var lo string
	found := false
	for _, s := range domain {
		if s == hi {
			continue
		}
		if !found || loads[s] < loads[lo] {
			lo, found = s, true
		}
	}
	return lo, found
}

// CommitMoves folds executed moves back into the balancer's model:
// cooldown stamps and primary placement change only once a handoff
// actually succeeded, so a move that failed to execute stays eligible
// on the next round instead of sitting out CooldownRounds on a phantom
// placement.
func (b *Balancer) CommitMoves(moves []Move) {
	for _, m := range moves {
		key := stripeKey{Job: m.Job, Stripe: m.Stripe}
		b.movedAt[key] = b.round
		if st := b.state[key]; st != nil {
			if m.Replicate {
				st.replicas++
			} else {
				st.server = m.To
			}
		}
	}
}

// ConnFunc supplies a connection to a PS server by address. The caller
// owns connection lifetime (the master reuses worker connections; the
// bench keeps a dial cache).
type ConnFunc func(addr string) (*rpc.Client, error)

// ExecuteMoves applies planned moves via the fence-and-handoff RPCs,
// returning the subset that succeeded (feed it to Balancer.CommitMoves).
// Execution is best-effort and sequential: a failed move leaves its
// stripe on the source, fully intact, and later moves still run.
func ExecuteMoves(conn ConnFunc, moves []Move, timeout time.Duration) ([]Move, error) {
	if timeout <= 0 {
		timeout = time.Minute
	}
	var firstErr error
	var executed []Move
	for _, m := range moves {
		cl, err := conn(m.From)
		if err == nil {
			if m.Replicate {
				_, err = rpc.Invoke[ReplicateArgs, Ack](cl, MethodReplicate,
					ReplicateArgs{Job: m.Job, Stripe: m.Stripe, Dest: m.To}, timeout)
			} else {
				_, err = rpc.Invoke[MigrateArgs, Ack](cl, MethodMigrate,
					MigrateArgs{Job: m.Job, Stripe: m.Stripe, Dest: m.To}, timeout)
			}
		}
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("ps: %s: %w", m, err)
			}
			continue
		}
		executed = append(executed, m)
	}
	return executed, firstErr
}

// DrainServer migrates every primary stripe of job off src, spreading
// them round-robin across peers, and drops src's replica blocks — the
// shrink half of elastic server-set resizing. Returns the number of
// stripes moved.
func DrainServer(conn ConnFunc, job, src string, peers []string, timeout time.Duration) (int, error) {
	if len(peers) == 0 {
		return 0, fmt.Errorf("ps: drain %s: no destination servers", src)
	}
	if timeout <= 0 {
		timeout = time.Minute
	}
	cl, err := conn(src)
	if err != nil {
		return 0, fmt.Errorf("ps: drain %s: %w", src, err)
	}
	routes, err := rpc.Invoke[RoutesArgs, RoutesReply](cl, MethodRoutes, RoutesArgs{Job: job}, timeout)
	if err != nil {
		return 0, fmt.Errorf("ps: drain %s: routes: %w", src, err)
	}
	moved := 0
	for i, sr := range routes.Stripes {
		if !sr.Primary {
			// A replica block on a leaving server: detach it from its
			// primary, wherever that is — cheapest found by asking peers.
			detachReplica(conn, job, sr.Index, src, peers, timeout)
			continue
		}
		dest := peers[i%len(peers)]
		if _, err := rpc.Invoke[MigrateArgs, Ack](cl, MethodMigrate,
			MigrateArgs{Job: job, Stripe: sr.Index, Dest: dest}, timeout); err != nil {
			return moved, fmt.Errorf("ps: drain %s stripe %d: %w", src, sr.Index, err)
		}
		moved++
	}
	return moved, nil
}

// detachReplica finds the primary of (job, stripe) among peers and asks
// it to unreplicate addr. Best-effort: a leftover replica block is inert.
func detachReplica(conn ConnFunc, job string, stripe int, addr string, peers []string, timeout time.Duration) {
	for _, peer := range peers {
		cl, err := conn(peer)
		if err != nil {
			continue
		}
		routes, err := rpc.Invoke[RoutesArgs, RoutesReply](cl, MethodRoutes, RoutesArgs{Job: job}, timeout)
		if err != nil {
			continue
		}
		for _, sr := range routes.Stripes {
			if sr.Index == stripe && sr.Primary {
				_, _ = rpc.Invoke[UnreplicateArgs, Ack](cl, MethodUnreplicate,
					UnreplicateArgs{Job: job, Stripe: stripe, Dest: addr}, timeout)
				return
			}
		}
	}
}
