package ps

import (
	"fmt"
	"sync"
	"time"

	"harmony/internal/metrics"
	"harmony/internal/rpc"
)

// RebalanceExperiment is the skewed-access A/B harness behind
// BenchmarkPSRebalance and `harmony-bench -bench-rebalance`: it brings up
// an in-process PS cluster with a bounded per-server service rate, runs
// the skew load with rebalancing off or on, and reports throughput plus
// the p99 of per-op stripe wait. Placement starts even, so the hot
// stripes (the first HotFrac of indices) all land on server 0 — the
// saturation the rebalancer must dissolve.
type RebalanceExperiment struct {
	SkewConfig
	Servers int
	// ServiceLimit bounds concurrent stripe service per server (default
	// 1): the finite capacity that makes placement matter.
	ServiceLimit int
	// ServiceDelay is the modeled per-op service time each op holds its
	// slot for. In-process servers share the host CPU, so real service
	// cost cannot distinguish placements; the delay restores per-server
	// capacity as the bottleneck the way a per-server NIC would be.
	ServiceDelay time.Duration
	Rebalance    bool
	// Interval is the scrape-plan-execute cadence (default 100ms).
	Interval time.Duration
	MaxMoves int
	// Warmup excludes the run's opening phase from the lock-wait
	// distribution (default Duration/3): with rebalancing on, the first
	// intervals measure the pre-convergence placement, which is exactly
	// what the off-run measures. Throughput still covers the whole run —
	// convergence time is part of the cost of rebalancing.
	Warmup time.Duration
}

func (e RebalanceExperiment) withDefaults() RebalanceExperiment {
	e.SkewConfig = e.SkewConfig.withDefaults()
	if e.Servers <= 0 {
		e.Servers = 4
	}
	if e.ServiceLimit <= 0 {
		e.ServiceLimit = 1
	}
	if e.Interval <= 0 {
		e.Interval = 100 * time.Millisecond
	}
	if e.MaxMoves <= 0 {
		e.MaxMoves = 2
	}
	if e.Warmup <= 0 {
		e.Warmup = e.Duration / 3
	}
	if e.Warmup >= e.Duration {
		e.Warmup = e.Duration / 2
	}
	return e
}

// RebalanceResult is one experiment run's outcome.
type RebalanceResult struct {
	Ops       int64
	Pulls     int64
	Pushes    int64
	Duration  time.Duration
	OpsPerSec float64
	// P99LockWaitSeconds is the p99 of per-op wait (service gate + stripe
	// lock) aggregated across servers.
	P99LockWaitSeconds float64
	// Moves counts executed migrations/replications (0 when off).
	Moves int
	// Verified is true when the final model matched the push counts
	// bit-exactly.
	Verified bool
}

// Run executes the experiment on fresh in-process servers.
func (e RebalanceExperiment) Run() (RebalanceResult, error) {
	e = e.withDefaults()
	var res RebalanceResult
	servers := make([]*Server, e.Servers)
	rpcs := make([]*rpc.Server, e.Servers)
	addrs := make([]string, e.Servers)
	defer func() {
		for i := range servers {
			if servers[i] != nil {
				servers[i].Close()
			}
			if rpcs[i] != nil {
				rpcs[i].Close()
			}
		}
	}()
	for i := range servers {
		servers[i] = NewServer()
		servers[i].SetServiceLimit(e.ServiceLimit)
		servers[i].SetServiceDelay(e.ServiceDelay)
		rpcs[i] = rpc.NewServer()
		servers[i].Register(rpcs[i])
		addr, err := rpcs[i].Listen("127.0.0.1:0")
		if err != nil {
			return res, err
		}
		addrs[i] = addr
	}
	e.Addrs = addrs
	boot, err := NewClient(addrs, e.Timeout)
	if err != nil {
		return res, err
	}
	defer boot.Close()
	if err := InitSkewModel(boot, e.SkewConfig); err != nil {
		return res, err
	}

	stop := make(chan struct{})
	var balWG sync.WaitGroup
	moves := 0
	if e.Rebalance {
		conns := make(map[string]*rpc.Client)
		defer func() {
			for _, cl := range conns {
				cl.Close()
			}
		}()
		conn := func(addr string) (*rpc.Client, error) {
			if cl, ok := conns[addr]; ok {
				return cl, nil
			}
			cl, err := rpc.Dial(addr, e.Timeout)
			if err != nil {
				return nil, err
			}
			conns[addr] = cl
			return cl, nil
		}
		bal := NewBalancer(0.5)
		balWG.Add(1)
		go func() {
			defer balWG.Done()
			ticker := time.NewTicker(e.Interval)
			defer ticker.Stop()
			for {
				select {
				case <-stop:
					return
				case <-ticker.C:
				}
				var cs ClusterStats
				for i, srv := range servers {
					cs.Servers = append(cs.Servers, ServerStats{
						Name: addrs[i], Addr: addrs[i], StatsReply: srv.Stats(),
					})
				}
				bal.Observe(cs)
				plan := bal.Plan(addrs, PlanOptions{MaxMoves: e.MaxMoves})
				executed, _ := ExecuteMoves(conn, plan, e.Timeout)
				bal.CommitMoves(executed)
				moves += len(executed)
			}
		}()
	}

	// Snapshot each server's wait histogram at the end of the warmup so
	// the reported distribution covers only the steady-state window.
	warm := make([]metrics.HistSnapshot, len(servers))
	var warmWG sync.WaitGroup
	warmWG.Add(1)
	go func() {
		defer warmWG.Done()
		time.Sleep(e.Warmup)
		for i, srv := range servers {
			warm[i] = srv.Stats().LockWait
		}
	}()

	start := time.Now()
	load, err := RunSkewLoad(e.SkewConfig)
	elapsed := time.Since(start)
	close(stop)
	balWG.Wait()
	warmWG.Wait()
	if err != nil {
		return res, err
	}
	if err := VerifyState(boot, e.SkewConfig, load); err != nil {
		return res, fmt.Errorf("state verification: %w", err)
	}

	var lockWait metrics.HistSnapshot
	for i, srv := range servers {
		lockWait = lockWait.Add(srv.Stats().LockWait.Sub(warm[i]))
	}
	res = RebalanceResult{
		Ops: load.Ops(), Pulls: load.Pulls, Pushes: load.Pushes,
		Duration:           elapsed,
		OpsPerSec:          float64(load.Ops()) / elapsed.Seconds(),
		P99LockWaitSeconds: lockWait.Quantile(0.99),
		Moves:              moves,
		Verified:           true,
	}
	return res, nil
}
