package ps

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"harmony/internal/rpc"
)

// startServers brings up n parameter servers on loopback TCP and hands
// back the Server objects too (migration tests drive SetServiceLimit,
// FlushReplication and Stats directly).
func startServers(t *testing.T, n int) ([]*Server, []string) {
	t.Helper()
	servers := make([]*Server, n)
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		srv := rpc.NewServer()
		ps := NewServer()
		ps.Register(srv)
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		t.Cleanup(ps.Close)
		servers[i] = ps
		addrs[i] = addr
	}
	return servers, addrs
}

func dialRaw(t *testing.T, addr string) *rpc.Client {
	t.Helper()
	cl, err := rpc.Dial(addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	return cl
}

// primaryStripes asks one server which stripes of job it owns.
func primaryStripes(t *testing.T, cl *rpc.Client, job string) []int {
	t.Helper()
	reply, err := rpc.Invoke[RoutesArgs, RoutesReply](cl, MethodRoutes, RoutesArgs{Job: job}, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	var out []int
	for _, sr := range reply.Stripes {
		if sr.Primary {
			out = append(out, sr.Index)
		}
	}
	return out
}

// TestMigrateStripe moves one stripe between two servers and checks the
// client self-heals: the old route's pull hits a moved status, refreshes
// and lands on the new owner with the exact same values.
func TestMigrateStripe(t *testing.T) {
	_, addrs := startServers(t, 2)
	c := newClient(t, addrs)
	c.SetStripeElems(4)
	model := seqModel(16) // 4 stripes of 4
	if err := c.Init("job", model); err != nil {
		t.Fatal(err)
	}
	src := dialRaw(t, addrs[0])
	owned := primaryStripes(t, src, "job")
	if len(owned) == 0 {
		t.Fatal("server 0 owns no stripes")
	}
	for _, s := range owned {
		if _, err := rpc.Invoke[MigrateArgs, Ack](src, MethodMigrate,
			MigrateArgs{Job: "job", Stripe: s, Dest: addrs[1]}, 2*time.Second); err != nil {
			t.Fatalf("migrate stripe %d: %v", s, err)
		}
	}
	if left := primaryStripes(t, src, "job"); len(left) != 0 {
		t.Fatalf("server 0 still owns %v after drain", left)
	}
	got := make([]float64, 16)
	if err := c.PullInto("job", got); err != nil {
		t.Fatal(err)
	}
	for i := range model {
		if got[i] != model[i] {
			t.Fatalf("elem %d = %v after migration, want %v", i, got[i], model[i])
		}
	}
	// Re-migrating a moved stripe must fail loudly, not double-move.
	if _, err := rpc.Invoke[MigrateArgs, Ack](src, MethodMigrate,
		MigrateArgs{Job: "job", Stripe: owned[0], Dest: addrs[1]}, 2*time.Second); err == nil {
		t.Fatal("migrating an already-moved stripe succeeded")
	}
}

// runHammer pushes all-ones deltas from several workers while
// (optionally) a migrator shuttles stripes between two servers, then
// returns the snapshot. Integer deltas sum exactly in float64 whatever
// the application order, so the migrated run must be bit-identical to
// the control run.
func runHammer(t *testing.T, migrate bool) []float64 {
	t.Helper()
	const (
		stripes     = 6
		stripeElems = 32
		modelSize   = stripes * stripeElems
		workers     = 4
		iters       = 40
	)
	_, addrs := startServers(t, 2)
	boot := newClient(t, addrs)
	boot.SetStripeElems(stripeElems)
	if err := boot.Init("job", make([]float64, modelSize)); err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var migrWG sync.WaitGroup
	var moves int
	if migrate {
		conns := []*rpc.Client{dialRaw(t, addrs[0]), dialRaw(t, addrs[1])}
		migrWG.Add(1)
		go func() {
			defer migrWG.Done()
			// No t.Fatal in here: this goroutine outlives test assertions.
			rng := rand.New(rand.NewSource(42))
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				from := i % 2
				routes, err := rpc.Invoke[RoutesArgs, RoutesReply](conns[from], MethodRoutes,
					RoutesArgs{Job: "job"}, 2*time.Second)
				if err != nil {
					continue
				}
				var owned []int
				for _, sr := range routes.Stripes {
					if sr.Primary {
						owned = append(owned, sr.Index)
					}
				}
				if len(owned) > 0 {
					s := owned[rng.Intn(len(owned))]
					if _, err := rpc.Invoke[MigrateArgs, Ack](conns[from], MethodMigrate,
						MigrateArgs{Job: "job", Stripe: s, Dest: addrs[1-from]}, 2*time.Second); err == nil {
						moves++
					}
				}
				time.Sleep(500 * time.Microsecond)
			}
		}()
	}
	ones := make([]float64, modelSize)
	for i := range ones {
		ones[i] = 1
	}
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cl, err := NewClient(addrs, 5*time.Second)
			if err != nil {
				errs[w] = err
				return
			}
			defer cl.Close()
			buf := make([]float64, modelSize)
			for i := 0; i < iters; i++ {
				if err := cl.PullInto("job", buf); err != nil {
					errs[w] = fmt.Errorf("iter %d pull: %w", i, err)
					return
				}
				if err := cl.Push("job", ones); err != nil {
					errs[w] = fmt.Errorf("iter %d push: %w", i, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	migrWG.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if migrate {
		t.Logf("completed %d migrations during load", moves)
		if moves == 0 {
			t.Fatal("no migrations completed during load; test exercised nothing")
		}
	}
	snap, err := boot.Snapshot("job", modelSize)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range snap {
		if v != float64(workers*iters) {
			t.Fatalf("elem %d = %v, want %d (push lost or double-applied)", i, v, workers*iters)
		}
	}
	return snap
}

// TestMigrationUnderLoadBitExact is the headline correctness test: many
// workers hammer pull/push while stripes migrate back and forth between
// two servers, and the final model must be bit-identical to a run with
// no migration at all. Run with -race to exercise the fence.
func TestMigrationUnderLoadBitExact(t *testing.T) {
	control := runHammer(t, false)
	migrated := runHammer(t, true)
	for i := range control {
		if control[i] != migrated[i] {
			t.Fatalf("elem %d: control %v vs migrated %v", i, control[i], migrated[i])
		}
	}
}

// TestReplicaReadAggregation checks the server-side aggregation path:
// writes aggregate at the owner, replicas converge after propagation,
// and replica-enabled pulls see the aggregated state.
func TestReplicaReadAggregation(t *testing.T) {
	servers, addrs := startServers(t, 2)
	c := newClient(t, addrs)
	c.SetStripeElems(8)
	if err := c.Init("job", make([]float64, 16)); err != nil { // 2 stripes
		t.Fatal(err)
	}
	src := dialRaw(t, addrs[0])
	owned := primaryStripes(t, src, "job")
	if len(owned) == 0 {
		t.Fatal("server 0 owns no stripes")
	}
	rep := owned[0]
	if _, err := rpc.Invoke[ReplicateArgs, Ack](src, MethodReplicate,
		ReplicateArgs{Job: "job", Stripe: rep, Dest: addrs[1]}, 2*time.Second); err != nil {
		t.Fatal(err)
	}
	delta := make([]float64, 16)
	for i := range delta {
		delta[i] = float64(i)
	}
	for i := 0; i < 3; i++ {
		if err := c.Push("job", delta); err != nil {
			t.Fatal(err)
		}
	}
	if err := servers[0].FlushReplication(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	c.SetReadReplicas(true)
	got := make([]float64, 16)
	// Round-robin across owner and replica: every read must agree.
	for round := 0; round < 4; round++ {
		if err := c.PullInto("job", got); err != nil {
			t.Fatal(err)
		}
		for i := range got {
			if got[i] != 3*delta[i] {
				t.Fatalf("round %d elem %d = %v, want %v", round, i, got[i], 3*delta[i])
			}
		}
	}
	// A push routed at the replica must bounce (status moved) and land on
	// the owner after the client refreshes — total stays exact.
	if err := c.Push("job", delta); err != nil {
		t.Fatal(err)
	}
	snap, err := c.Snapshot("job", 16)
	if err != nil {
		t.Fatal(err)
	}
	for i := range snap {
		if snap[i] != 4*delta[i] {
			t.Fatalf("after 4 pushes elem %d = %v, want %v", i, snap[i], 4*delta[i])
		}
	}
}

// validInstallBody builds a well-formed single-stripe install message.
func validInstallBody() []byte {
	body := rpc.AppendString(nil, "job")
	body = rpc.AppendUint32(body, 1)
	return appendStripeFrame(body, 0, 0, 0, 1, []string{"127.0.0.1:9"}, []float64{1, 2, 3})
}

// TestInstallFrameTruncated mirrors the PR-3 codec suite for the handoff
// frame: every strict prefix of a valid install body must be rejected
// with an error, never a panic or a silent partial install.
func TestInstallFrameTruncated(t *testing.T) {
	s := NewServer()
	body := validInstallBody()
	if _, err := s.handleInstall(body, false); err != nil {
		t.Fatalf("valid body rejected: %v", err)
	}
	for n := 0; n < len(body); n++ {
		if _, err := s.handleInstall(body[:n], false); err == nil {
			t.Fatalf("truncation at %d/%d bytes accepted", n, len(body))
		}
	}
}

// TestInstallFrameCorruptCount checks that an inflated stripe count (a
// corrupt header promising more frames than the body holds) errors out.
func TestInstallFrameCorruptCount(t *testing.T) {
	s := NewServer()
	body := rpc.AppendString(nil, "job")
	body = rpc.AppendUint32(body, 1<<20) // claims a million stripes
	body = appendStripeFrame(body, 0, 0, 0, 1, nil, []float64{1})
	if _, err := s.handleInstall(body, false); err == nil {
		t.Fatal("corrupt stripe count accepted")
	}
}

// FuzzInstallFrame feeds arbitrary bytes to the install decoder: it must
// return an error or succeed, never panic or read out of bounds.
func FuzzInstallFrame(f *testing.F) {
	f.Add([]byte{})
	f.Add(validInstallBody())
	body := validInstallBody()
	f.Add(body[:len(body)/2])
	f.Fuzz(func(t *testing.T, data []byte) {
		s := NewServer()
		_, _ = s.handleInstall(data, false)
		_, _ = s.handleInstall(data, true)
	})
}

// TestStripeFrameRoundTrip checks the handoff codec round-trips exact
// values, flags, versions and replica lists.
func TestStripeFrameRoundTrip(t *testing.T) {
	vals := []float64{0, -1.5, 3.25e100, 1e-300}
	frame := appendStripeFrame(nil, 7, 224, flagReplica, 99, []string{"a:1", "b:2"}, vals)
	got, rest, err := readStripeFrame(frame)
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 0 {
		t.Fatalf("%d trailing bytes", len(rest))
	}
	if got.idx != 7 || got.lo != 224 || got.flags != flagReplica || got.version != 99 {
		t.Fatalf("header mismatch: %+v", got)
	}
	if len(got.replicas) != 2 || got.replicas[0] != "a:1" || got.replicas[1] != "b:2" {
		t.Fatalf("replicas mismatch: %v", got.replicas)
	}
	for i := range vals {
		if got.vals[i] != vals[i] {
			t.Fatalf("val %d = %v, want %v", i, got.vals[i], vals[i])
		}
	}
}
