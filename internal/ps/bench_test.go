package ps

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"harmony/internal/rpc"
)

// benchModelSize is the 1M-parameter model of the ISSUE target (8 MB of
// float64s) spread across benchServers servers.
const (
	benchModelSize = 1 << 20
	benchServers   = 4
)

func startBenchCluster(tb testing.TB, n int) []string {
	tb.Helper()
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		srv := rpc.NewServer()
		NewServer().Register(srv)
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			tb.Fatal(err)
		}
		tb.Cleanup(func() { srv.Close() })
		addrs[i] = addr
	}
	return addrs
}

func benchVectors(n int) (model, delta []float64) {
	model = make([]float64, n)
	delta = make([]float64, n)
	for i := range model {
		model[i] = float64(i % 97)
		delta[i] = 1e-3
	}
	return model, delta
}

// BenchmarkPullPush measures one full steady-state COMM iteration — a
// full-model pull plus a full-delta push across 4 servers — on the
// binary data plane with reused buffers. Compare against
// BenchmarkPullPushGob, the pre-refactor gob implementation.
func BenchmarkPullPush(b *testing.B) {
	addrs := startBenchCluster(b, benchServers)
	c, err := NewClient(addrs, time.Minute)
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	model, delta := benchVectors(benchModelSize)
	if err := c.Init("bench", model); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(2 * 8 * benchModelSize)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.PullInto("bench", model); err != nil {
			b.Fatal(err)
		}
		if err := c.Push("bench", delta); err != nil {
			b.Fatal(err)
		}
	}
}

// --- gob baseline -----------------------------------------------------
//
// The pre-refactor data plane, preserved verbatim in miniature: one
// server-wide RWMutex, gob-encoded request/reply structs (the legacy
// schema kept in ps.go), a full-partition copy under RLock per pull, and
// sequential decode into a fresh slice per call.

type gobPartition struct {
	Lo     int
	Values []float64
}

type gobServer struct {
	mu    sync.RWMutex
	parts map[string]*gobPartition
}

func registerGobServer(srv *rpc.Server) {
	s := &gobServer{parts: make(map[string]*gobPartition)}
	srv.Handle("psgob.init", rpc.Typed(func(a InitArgs) (Ack, error) {
		s.mu.Lock()
		defer s.mu.Unlock()
		vals := make([]float64, len(a.Values))
		copy(vals, a.Values)
		s.parts[a.Job] = &gobPartition{Lo: a.Lo, Values: vals}
		return Ack{}, nil
	}))
	srv.Handle("psgob.pull", rpc.Typed(func(a PullArgs) (PullReply, error) {
		s.mu.RLock()
		defer s.mu.RUnlock()
		p, ok := s.parts[a.Job]
		if !ok {
			return PullReply{}, fmt.Errorf("ps: no partition for job %q", a.Job)
		}
		vals := make([]float64, len(p.Values))
		copy(vals, p.Values)
		return PullReply{Lo: p.Lo, Values: vals}, nil
	}))
	srv.Handle("psgob.push", rpc.Typed(func(a PushArgs) (Ack, error) {
		s.mu.Lock()
		defer s.mu.Unlock()
		p, ok := s.parts[a.Job]
		if !ok {
			return Ack{}, fmt.Errorf("ps: no partition for job %q", a.Job)
		}
		start := a.Lo - p.Lo
		if start < 0 || start+len(a.Delta) > len(p.Values) {
			return Ack{}, fmt.Errorf("ps: push shape mismatch for job %q", a.Job)
		}
		for i, d := range a.Delta {
			p.Values[start+i] += d
		}
		return Ack{}, nil
	}))
}

type gobClient struct {
	clients []*rpc.Client
	timeout time.Duration
}

func dialGob(tb testing.TB, addrs []string) *gobClient {
	tb.Helper()
	c := &gobClient{timeout: time.Minute}
	for _, addr := range addrs {
		cl, err := rpc.Dial(addr, c.timeout)
		if err != nil {
			tb.Fatal(err)
		}
		tb.Cleanup(func() { cl.Close() })
		c.clients = append(c.clients, cl)
	}
	return c
}

func (c *gobClient) init(job string, model []float64) error {
	k := len(c.clients)
	for i, cl := range c.clients {
		lo, hi := Partition(len(model), k, i)
		if _, err := rpc.Invoke[InitArgs, Ack](cl, "psgob.init",
			InitArgs{Job: job, Lo: lo, Values: model[lo:hi]}, c.timeout); err != nil {
			return err
		}
	}
	return nil
}

func (c *gobClient) pull(job string, modelSize int) ([]float64, error) {
	model := make([]float64, modelSize)
	errs := make([]error, len(c.clients))
	var wg sync.WaitGroup
	for i, cl := range c.clients {
		wg.Add(1)
		go func(i int, cl *rpc.Client) {
			defer wg.Done()
			reply, err := rpc.Invoke[PullArgs, PullReply](cl, "psgob.pull", PullArgs{Job: job}, c.timeout)
			if err != nil {
				errs[i] = err
				return
			}
			copy(model[reply.Lo:], reply.Values)
		}(i, cl)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return model, nil
}

func (c *gobClient) push(job string, delta []float64) error {
	k := len(c.clients)
	errs := make([]error, k)
	var wg sync.WaitGroup
	for i, cl := range c.clients {
		lo, hi := Partition(len(delta), k, i)
		wg.Add(1)
		go func(i int, cl *rpc.Client, lo, hi int) {
			defer wg.Done()
			_, errs[i] = rpc.Invoke[PushArgs, Ack](cl, "psgob.push",
				PushArgs{Job: job, Lo: lo, Delta: delta[lo:hi]}, c.timeout)
		}(i, cl, lo, hi)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// BenchmarkPullPushGob is the same workload as BenchmarkPullPush over
// the pre-refactor gob data plane.
func BenchmarkPullPushGob(b *testing.B) {
	addrs := make([]string, benchServers)
	for i := range addrs {
		srv := rpc.NewServer()
		registerGobServer(srv)
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { srv.Close() })
		addrs[i] = addr
	}
	c := dialGob(b, addrs)
	model, delta := benchVectors(benchModelSize)
	if err := c.init("bench", model); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(2 * 8 * benchModelSize)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.pull("bench", benchModelSize); err != nil {
			b.Fatal(err)
		}
		if err := c.push("bench", delta); err != nil {
			b.Fatal(err)
		}
	}
}

// TestCommPathRaceSmoke hammers the striped data plane from concurrent
// clients — two co-located jobs pulling, pushing and snapshotting at
// once — so `go test -race` exercises the per-stripe locking. Wired into
// `make check`.
func TestCommPathRaceSmoke(t *testing.T) {
	addrs := startBenchCluster(t, 2)
	const modelSize = 3*StripeSize + 17 // span several stripes, ragged tail
	var wg sync.WaitGroup
	for j := 0; j < 2; j++ {
		job := fmt.Sprintf("job-%d", j)
		init, err := NewClient(addrs, time.Minute)
		if err != nil {
			t.Fatal(err)
		}
		model := make([]float64, modelSize)
		if err := init.Init(job, model); err != nil {
			t.Fatal(err)
		}
		init.Close()
		for w := 0; w < 2; w++ {
			wg.Add(1)
			go func(job string) {
				defer wg.Done()
				c, err := NewClient(addrs, time.Minute)
				if err != nil {
					t.Error(err)
					return
				}
				defer c.Close()
				buf := make([]float64, modelSize)
				delta := make([]float64, modelSize)
				for i := range delta {
					delta[i] = 1
				}
				for it := 0; it < 25; it++ {
					if err := c.PullInto(job, buf); err != nil {
						t.Error(err)
						return
					}
					if err := c.Push(job, delta); err != nil {
						t.Error(err)
						return
					}
					if _, err := c.Snapshot(job, modelSize); err != nil {
						t.Error(err)
						return
					}
				}
			}(job)
		}
	}
	wg.Wait()

	// Every push added exactly 1 to every element: 2 workers × 25 iters.
	c, err := NewClient(addrs, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for j := 0; j < 2; j++ {
		model, err := c.Pull(fmt.Sprintf("job-%d", j), modelSize)
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range model {
			if v != 50 {
				t.Fatalf("job-%d element %d = %v, want 50", j, i, v)
			}
		}
	}
}
