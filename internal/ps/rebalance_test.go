package ps

import (
	"testing"
	"time"

	"harmony/internal/rpc"
)

// statsFor builds a synthetic single-job ClusterStats for planner tests.
// perServer maps server addr → stripe stats.
func statsFor(perServer map[string][]StripeStat) ClusterStats {
	var cs ClusterStats
	for addr, stripes := range perServer {
		cs.Servers = append(cs.Servers, ServerStats{
			Name: addr, Addr: addr,
			StatsReply: StatsReply{Jobs: []JobStats{{Job: "j", Stripes: stripes}}},
		})
	}
	return cs
}

func TestBalancerMovesHotStripes(t *testing.T) {
	b := NewBalancer(0.5)
	b.Observe(statsFor(map[string][]StripeStat{
		"a": {
			{Index: 0, Lo: 0, Len: 4, Primary: true, PullOps: 5000, PushOps: 5000},
			{Index: 1, Lo: 4, Len: 4, Primary: true, PullOps: 4000, PushOps: 4000},
			{Index: 2, Lo: 8, Len: 4, Primary: true, PullOps: 10, PushOps: 10},
		},
		"b": {
			{Index: 3, Lo: 12, Len: 4, Primary: true, PullOps: 10, PushOps: 10},
		},
	}))
	moves := b.Plan([]string{"a", "b"}, PlanOptions{MaxMoves: 2, MinStreak: 1})
	if len(moves) == 0 {
		t.Fatal("no moves planned for a 500x imbalance")
	}
	for _, m := range moves {
		if m.From != "a" || m.To != "b" {
			t.Fatalf("move %v goes the wrong way", m)
		}
		if m.Stripe != 0 && m.Stripe != 1 {
			t.Fatalf("move %v relocates a cold stripe", m)
		}
		if m.Replicate {
			t.Fatalf("move %v replicates; plain migration expected", m)
		}
	}
}

func TestBalancerBalancedNoMoves(t *testing.T) {
	b := NewBalancer(0.5)
	b.Observe(statsFor(map[string][]StripeStat{
		"a": {{Index: 0, Len: 4, Primary: true, PullOps: 1000, PushOps: 1000}},
		"b": {{Index: 1, Lo: 4, Len: 4, Primary: true, PullOps: 1100, PushOps: 900}},
	}))
	if moves := b.Plan([]string{"a", "b"}, PlanOptions{MinStreak: 1}); len(moves) != 0 {
		t.Fatalf("planned %v on a balanced cluster", moves)
	}
}

// TestBalancerCounterReset: after a migration the destination's stripe
// block restarts counters at zero; the interval delta must clamp, not go
// negative and poison the score.
func TestBalancerCounterReset(t *testing.T) {
	b := NewBalancer(0.5)
	hot := StripeStat{Index: 0, Len: 4, Primary: true, PullOps: 100000, PushOps: 100000}
	b.Observe(statsFor(map[string][]StripeStat{"a": {hot}, "b": {}}))
	// The stripe migrated to b: counters restart near zero.
	b.Observe(statsFor(map[string][]StripeStat{
		"a": {},
		"b": {{Index: 0, Len: 4, Primary: true, PullOps: 5, PushOps: 5}},
	}))
	if s := b.Score("j", 0); s < 0 {
		t.Fatalf("score went negative after counter reset: %v", s)
	}
}

// TestBalancerReplicatesReadHotspot: a single stripe that alone
// outweighs its server cannot be fixed by migration (the hotspot just
// relocates); with ReplicateReadHotspots it plans a replica instead.
func TestBalancerReplicatesReadHotspot(t *testing.T) {
	b := NewBalancer(0.5)
	cs := statsFor(map[string][]StripeStat{
		"a": {{Index: 0, Len: 4, Primary: true, PullOps: 100000, PushOps: 100}},
		"b": {{Index: 1, Lo: 4, Len: 4, Primary: true, PullOps: 10, PushOps: 10}},
	})
	b.Observe(cs)
	if moves := b.Plan([]string{"a", "b"}, PlanOptions{MinStreak: 1}); len(moves) != 0 {
		t.Fatalf("planned %v; a dominant hotspot should not migrate", moves)
	}
	moves := b.Plan([]string{"a", "b"}, PlanOptions{ReplicateReadHotspots: true, MinStreak: 1})
	if len(moves) != 1 || !moves[0].Replicate || moves[0].Stripe != 0 {
		t.Fatalf("want one replicate move of stripe 0, got %v", moves)
	}
}

// TestBalancerPersistenceGate: a single interval where one server looks
// hot must not trigger moves — queueing noise makes a different server
// look hottest each scrape, and reacting to one sample is churn. Only
// the same server tripping the threshold MinStreak rounds in a row
// unlocks planning.
func TestBalancerPersistenceGate(t *testing.T) {
	servers := []string{"a", "b"}
	// cumulative op counters per server's resident stripes; "a" owns
	// stripes 0,1 and "b" owns 2,3 so each server always has a candidate
	// cooler than the gap.
	totals := map[string][2]int64{"a": {0, 0}, "b": {0, 0}}
	observe := func(b *Balancer, hot string) {
		for _, s := range servers {
			tt := totals[s]
			if s == hot {
				tt[0] += 30000
				tt[1] += 30000
			} else {
				tt[0] += 10
				tt[1] += 10
			}
			totals[s] = tt
		}
		b.Observe(statsFor(map[string][]StripeStat{
			"a": {
				{Index: 0, Lo: 0, Len: 4, Primary: true, PullOps: totals["a"][0]},
				{Index: 1, Lo: 4, Len: 4, Primary: true, PullOps: totals["a"][1]},
			},
			"b": {
				{Index: 2, Lo: 8, Len: 4, Primary: true, PullOps: totals["b"][0]},
				{Index: 3, Lo: 12, Len: 4, Primary: true, PullOps: totals["b"][1]},
			},
		}))
	}
	// Alternating hot server — scrape noise: the streak never reaches 2,
	// so nothing is ever planned.
	b := NewBalancer(1)
	for i := 0; i < 6; i++ {
		observe(b, servers[i%2])
		if moves := b.Plan(servers, PlanOptions{}); len(moves) != 0 {
			t.Fatalf("round %d: planned %v off oscillating noise", i, moves)
		}
	}
	// Persistently hot server: gated on the first round, planning on the
	// second.
	totals = map[string][2]int64{"a": {0, 0}, "b": {0, 0}}
	b = NewBalancer(1)
	observe(b, "a")
	if moves := b.Plan(servers, PlanOptions{}); len(moves) != 0 {
		t.Fatalf("planned %v on the first hot interval", moves)
	}
	observe(b, "a")
	if moves := b.Plan(servers, PlanOptions{}); len(moves) == 0 {
		t.Fatal("no moves after two consecutive hot intervals")
	}
}

// TestBalancerRespectsJobDomains: a job's PS clients route only within
// the job's own server set, so PlanJobs must never place a stripe
// outside its job's domain — even when a server outside it is the
// globally coldest target.
func TestBalancerRespectsJobDomains(t *testing.T) {
	b := NewBalancer(0.5)
	b.Observe(ClusterStats{Servers: []ServerStats{
		{Name: "a", Addr: "a", StatsReply: StatsReply{Jobs: []JobStats{
			{Job: "j1", Stripes: []StripeStat{
				{Index: 0, Lo: 0, Len: 4, Primary: true, PullOps: 50000, PushOps: 50000},
				{Index: 1, Lo: 4, Len: 4, Primary: true, PullOps: 20000, PushOps: 20000},
			}},
			{Job: "j2", Stripes: []StripeStat{
				{Index: 0, Lo: 0, Len: 4, Primary: true, PullOps: 10, PushOps: 10},
			}},
		}}},
		{Name: "b", Addr: "b", StatsReply: StatsReply{Jobs: []JobStats{
			{Job: "j1", Stripes: []StripeStat{
				{Index: 2, Lo: 8, Len: 4, Primary: true, PullOps: 10, PushOps: 10},
			}},
		}}},
		{Name: "c", Addr: "c"},
	}})
	// Server c is idle (globally coldest) but only in j2's domain: j1's
	// hot stripes must go to b, never c.
	domains := map[string][]string{"j1": {"a", "b"}, "j2": {"a", "c"}}
	moves := b.PlanJobs(domains, PlanOptions{MaxMoves: 2, MinStreak: 1})
	if len(moves) == 0 {
		t.Fatal("no moves planned for a hot server with in-domain targets")
	}
	for _, m := range moves {
		inDomain := false
		for _, s := range domains[m.Job] {
			if s == m.To {
				inDomain = true
			}
		}
		if !inDomain {
			t.Fatalf("move %v leaves %s's domain %v", m, m.Job, domains[m.Job])
		}
	}
	// A job with no domain (mid-resize, unknown) must never move.
	b2 := NewBalancer(0.5)
	b2.Observe(statsFor(map[string][]StripeStat{
		"a": {
			{Index: 0, Lo: 0, Len: 4, Primary: true, PullOps: 50000, PushOps: 50000},
			{Index: 1, Lo: 4, Len: 4, Primary: true, PullOps: 20000, PushOps: 20000},
		},
		"b": {{Index: 2, Lo: 8, Len: 4, Primary: true, PullOps: 10, PushOps: 10}},
	}))
	if moves := b2.PlanJobs(map[string][]string{"other": {"a", "b"}},
		PlanOptions{MaxMoves: 2, MinStreak: 1}); len(moves) != 0 {
		t.Fatalf("planned %v for a job with no placement domain", moves)
	}
}

// TestBalancerCommitMoves: cooldown and the balancer's placement model
// update only when a move is committed (executed), so a move whose
// handoff failed stays eligible the next round instead of sitting out
// CooldownRounds while the hotspot persists.
func TestBalancerCommitMoves(t *testing.T) {
	b := NewBalancer(1)
	servers := []string{"a", "b"}
	hot := func(total int64) ClusterStats {
		return statsFor(map[string][]StripeStat{
			"a": {
				{Index: 0, Lo: 0, Len: 4, Primary: true, PullOps: total},
				{Index: 1, Lo: 4, Len: 4, Primary: true, PullOps: total / 2},
			},
			"b": {{Index: 2, Lo: 8, Len: 4, Primary: true, PullOps: 10}},
		})
	}
	opts := PlanOptions{MaxMoves: 1, MinStreak: 1}
	b.Observe(hot(30000))
	first := b.Plan(servers, opts)
	if len(first) != 1 || first[0].Stripe != 0 {
		t.Fatalf("round 1 planned %v, want the hottest stripe 0", first)
	}
	// The move failed to execute: no commit. The next round must re-plan
	// the same stripe, not cool it down on a phantom placement.
	b.Observe(hot(60000))
	second := b.Plan(servers, opts)
	if len(second) != 1 || second[0].Stripe != 0 {
		t.Fatalf("round 2 planned %v after a failed move, want stripe 0 again", second)
	}
	// This time it executed: committed, so the stripe cools down and the
	// next round falls back to the next-hottest candidate.
	b.CommitMoves(second)
	b.Observe(hot(90000))
	for _, m := range b.Plan(servers, opts) {
		if m.Stripe == 0 {
			t.Fatalf("stripe 0 re-planned while cooling after commit: %v", m)
		}
	}
}

// TestBalancerForgetsDroppedJobs: stripes absent from several scrapes
// drop out of the state so a completed job stops influencing plans.
func TestBalancerForgetsDroppedJobs(t *testing.T) {
	b := NewBalancer(0.5)
	b.Observe(statsFor(map[string][]StripeStat{
		"a": {{Index: 0, Len: 4, Primary: true, PullOps: 1000, PushOps: 1000}},
	}))
	empty := statsFor(map[string][]StripeStat{"a": {}})
	for i := 0; i < 4; i++ {
		b.Observe(empty)
	}
	if s := b.Score("j", 0); s != 0 {
		t.Fatalf("dropped job still scored %v", s)
	}
}

// TestDrainServer empties one server's stripes onto its peers — the
// shrink half of elastic resizing — and checks the model survives.
func TestDrainServer(t *testing.T) {
	_, addrs := startServers(t, 3)
	c := newClient(t, addrs)
	c.SetStripeElems(4)
	model := seqModel(24) // 6 stripes
	if err := c.Init("job", model); err != nil {
		t.Fatal(err)
	}
	conns := make(map[string]*rpc.Client)
	conn := func(addr string) (*rpc.Client, error) {
		if cl, ok := conns[addr]; ok {
			return cl, nil
		}
		cl := dialRaw(t, addr)
		conns[addr] = cl
		return cl, nil
	}
	moved, err := DrainServer(conn, "job", addrs[0], addrs[1:], 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if moved == 0 {
		t.Fatal("drain moved nothing")
	}
	if left := primaryStripes(t, conns[addrs[0]], "job"); len(left) != 0 {
		t.Fatalf("server 0 still owns %v after drain", left)
	}
	got, err := c.Pull("job", 24)
	if err != nil {
		t.Fatal(err)
	}
	for i := range model {
		if got[i] != model[i] {
			t.Fatalf("elem %d = %v after drain, want %v", i, got[i], model[i])
		}
	}
}

// TestPSRebalanceSmoke runs the skewed A/B experiment briefly with
// rebalancing on: the final model must stay bit-exact while stripes are
// live-migrated under load, and at least one move must have executed.
// Throughput claims are left to BenchmarkPSRebalance; under -race the
// timing is too distorted to assert on. Wired into `make check` as
// ps-rebalance-smoke.
func TestPSRebalanceSmoke(t *testing.T) {
	exp := RebalanceExperiment{
		SkewConfig: SkewConfig{
			Stripes: 20, StripeElems: 128, Workers: 4,
			Duration: 400 * time.Millisecond, Seed: 1,
		},
		Servers: 3, ServiceLimit: 1, Rebalance: true,
		Interval: 50 * time.Millisecond, MaxMoves: 2,
	}
	res, err := exp.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Verified {
		t.Fatal("final state not verified")
	}
	if res.Moves == 0 {
		t.Fatal("rebalancer executed no moves under an 80/10 skew")
	}
	t.Logf("ops=%d ops/s=%.0f p99_lock_wait=%v moves=%d",
		res.Ops, res.OpsPerSec, time.Duration(res.P99LockWaitSeconds*float64(time.Second)), res.Moves)
}

// BenchmarkPSRebalance is the headline A/B: the same skewed load (hot
// 10% of stripes taking 80% of traffic) with rebalancing off vs. on.
// The offered load (5 closed-loop workers at 1ms modeled service time)
// sits between one server's capacity and the cluster's, so the skewed
// placement saturates its one hot server while the balanced placement
// saturates nothing — the regime where placement is the bottleneck.
// Compare ops/s and p99µs between the two sub-benchmarks;
// `harmony-bench -bench-rebalance` emits the same comparison as JSON.
func BenchmarkPSRebalance(b *testing.B) {
	for _, mode := range []struct {
		name      string
		rebalance bool
	}{{"off", false}, {"on", true}} {
		b.Run(mode.name, func(b *testing.B) {
			var ops int64
			var secs, p99 float64
			for i := 0; i < b.N; i++ {
				exp := RebalanceExperiment{
					SkewConfig: SkewConfig{
						Stripes: 40, StripeElems: 128, Workers: 5,
						Duration: 800 * time.Millisecond, Seed: int64(i),
					},
					Servers: 4, ServiceLimit: 1, ServiceDelay: time.Millisecond,
					Rebalance: mode.rebalance,
					Interval:  75 * time.Millisecond, MaxMoves: 2,
				}
				res, err := exp.Run()
				if err != nil {
					b.Fatal(err)
				}
				ops += res.Ops
				secs += res.Duration.Seconds()
				if res.P99LockWaitSeconds > p99 {
					p99 = res.P99LockWaitSeconds
				}
			}
			b.ReportMetric(float64(ops)/secs, "ops/s")
			b.ReportMetric(p99*1e6, "p99µs")
		})
	}
}
