package ps

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"harmony/internal/metrics"
	"harmony/internal/rpc"
)

// maxRouteAttempts bounds the moved-stripe retry loop: each attempt
// follows the moved reply's forwarding hint (or refreshes the route
// table when there is none), so a handful of rounds rides out any burst
// of concurrent migrations.
const maxRouteAttempts = 6

// movedRef is one stripe a server bounced, with the forwarding hint from
// its tombstone ("" when the server has no forwarding entry).
type movedRef struct {
	idx int
	fwd string
}

// errClientClosed surfaces ops racing Close (or a SetServers shrink)
// instead of dereferencing a vanished connection.
var errClientClosed = fmt.Errorf("ps: client closed")

// stripeRef locates one stripe of a job from the client's point of view.
type stripeRef struct {
	lo, n    int
	owner    string   // server addr holding the primary
	replicas []string // servers holding read replicas
}

// jobRoute is an immutable stripe→server map for one job. Clients swap
// the whole route on refresh, so in-flight ops keep a consistent view.
type jobRoute struct {
	stripes []stripeRef // indexed by stripe index; contiguous tiling
}

// extent is the model length the route tiles.
func (r *jobRoute) extent() int {
	if len(r.stripes) == 0 {
		return 0
	}
	last := r.stripes[len(r.stripes)-1]
	return last.lo + last.n
}

// overlapping lists the stripes intersecting [lo, lo+n).
func (r *jobRoute) overlapping(lo, n int) []int {
	var out []int
	for s, st := range r.stripes {
		if st.lo < lo+n && st.lo+st.n > lo {
			out = append(out, s)
		}
	}
	return out
}

// Client talks to the set of parameter servers hosting one or more jobs'
// models. It routes per stripe: pulls gather whole stripes from their
// owners (or replicas, when enabled), pushes scatter deltas to the
// owners, and an op that hits a migrated-away stripe refreshes the route
// table from the servers and retries — so the server set and stripe
// placement can change underneath a running job. Safe for concurrent use.
type Client struct {
	timeout time.Duration
	// stripeElems overrides the Init-time stripe size (tests and the
	// rebalance bench use small stripes to get many movable units).
	stripeElems  int
	readReplicas atomic.Bool
	rr           atomic.Uint64

	mu      sync.RWMutex
	addrs   []string
	clients map[string]*rpc.Client
	routes  map[string]*jobRoute
	// retired holds connections to servers dropped by SetServers; they
	// stay open (in-flight ops may still reference them) until Close.
	retired []*rpc.Client
}

// NewClient connects to every server address.
func NewClient(addrs []string, timeout time.Duration) (*Client, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("ps: no server addresses")
	}
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	c := &Client{
		timeout: timeout,
		clients: make(map[string]*rpc.Client),
		routes:  make(map[string]*jobRoute),
	}
	for _, addr := range addrs {
		cl, err := rpc.Dial(addr, timeout)
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("ps: dial server %s: %w", addr, err)
		}
		c.addrs = append(c.addrs, addr)
		c.clients[addr] = cl
	}
	return c, nil
}

// SetStripeElems overrides the per-stripe element count used by Init and
// Restore (0 restores the size-derived default). Call before Init.
func (c *Client) SetStripeElems(n int) { c.stripeElems = n }

// SetReadReplicas toggles serving pulls from replicas: when on, a pull
// of a replicated stripe round-robins across the owner and its replicas.
// Replica reads are eventually consistent (replicas trail the owner by
// the propagation delay), which SGD-style consumers tolerate; snapshots
// should leave this off.
func (c *Client) SetReadReplicas(on bool) { c.readReplicas.Store(on) }

// SetServers replaces the server set (grow/shrink of a job's servers).
// Connections to retained addrs are reused; routes are cleared so the
// next op re-discovers stripe placement.
func (c *Client) SetServers(addrs []string) error {
	if len(addrs) == 0 {
		return fmt.Errorf("ps: no server addresses")
	}
	fresh := make(map[string]*rpc.Client, len(addrs))
	for _, addr := range addrs {
		if _, dup := fresh[addr]; dup {
			continue
		}
		c.mu.RLock()
		cl := c.clients[addr]
		c.mu.RUnlock()
		if cl == nil {
			var err error
			cl, err = rpc.Dial(addr, c.timeout)
			if err != nil {
				for a, opened := range fresh {
					c.mu.RLock()
					reused := c.clients[a] == opened
					c.mu.RUnlock()
					if !reused {
						opened.Close()
					}
				}
				return fmt.Errorf("ps: dial server %s: %w", addr, err)
			}
		}
		fresh[addr] = cl
	}
	c.mu.Lock()
	for addr, cl := range c.clients {
		if fresh[addr] != cl {
			c.retired = append(c.retired, cl)
		}
	}
	c.addrs = append(c.addrs[:0:0], addrs...)
	c.clients = fresh
	c.routes = make(map[string]*jobRoute)
	c.mu.Unlock()
	return nil
}

// snapshotServers copies the current addr list and connection map.
func (c *Client) snapshotServers() ([]string, map[string]*rpc.Client) {
	c.mu.RLock()
	addrs := append([]string(nil), c.addrs...)
	conns := make(map[string]*rpc.Client, len(c.clients))
	for a, cl := range c.clients {
		conns[a] = cl
	}
	c.mu.RUnlock()
	return addrs, conns
}

func (c *Client) route(job string) *jobRoute {
	c.mu.RLock()
	r := c.routes[job]
	c.mu.RUnlock()
	return r
}

// Init distributes a full model across the servers: the model is carved
// into stripes, stripes are spread evenly, and every server receives its
// stripes in one install message — deployment is bounded by the slowest
// server, not the sum of sequential round trips.
func (c *Client) Init(job string, model []float64) error {
	return c.install(job, model, MethodInit)
}

// Restore reinstalls a checkpointed model across the servers (the
// §IV-B4 migration path; same wire format as Init).
func (c *Client) Restore(job string, model []float64) error {
	return c.install(job, model, MethodRestore)
}

func (c *Client) install(job string, model []float64, method string) error {
	addrs, conns := c.snapshotServers()
	k := len(addrs)
	se := c.stripeElems
	if se <= 0 {
		se = stripeElemsFor(len(model), k)
	}
	S := stripeCount(len(model), se)
	route := &jobRoute{stripes: make([]stripeRef, S)}
	perServer := make([][]int, k)
	for i := 0; i < k; i++ {
		slo, shi := Partition(S, k, i)
		for s := slo; s < shi; s++ {
			lo := s * se
			hi := minInt(lo+se, len(model))
			if hi < lo {
				hi = lo
			}
			route.stripes[s] = stripeRef{lo: lo, n: hi - lo, owner: addrs[i]}
			perServer[i] = append(perServer[i], s)
		}
	}
	errs := make([]error, k)
	var wg sync.WaitGroup
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cl := conns[addrs[i]]
			if cl == nil {
				errs[i] = errClientClosed
				return
			}
			body := rpc.GetBuffer(2 + len(job) + 4)[:0]
			body = rpc.AppendString(body, job)
			body = rpc.AppendUint32(body, uint32(len(perServer[i])))
			for _, s := range perServer[i] {
				st := route.stripes[s]
				body = appendStripeFrame(body, s, st.lo, 0, 1, nil, model[st.lo:st.lo+st.n])
			}
			reply, err := cl.Call(method, body, c.timeout)
			rpc.PutBuffer(body)
			rpc.PutBuffer(reply)
			errs[i] = err
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("ps: %s on server %d (%s): %w", method, i, addrs[i], err)
		}
	}
	c.mu.Lock()
	c.routes[job] = route
	c.mu.Unlock()
	return nil
}

// refreshRoute rebuilds the stripe→server map by asking every server
// which stripes of the job it holds. Partial per-server failures are
// tolerated as long as the surviving answers tile the model. A stripe
// can transiently appear on no server (the queries are not an atomic
// snapshot: dest asked before its install, source asked after the
// handoff), so incomplete tilings retry briefly before failing.
func (c *Client) refreshRoute(job string) (*jobRoute, error) {
	var lastErr error
	for attempt := 0; attempt < maxRouteAttempts; attempt++ {
		if attempt > 0 {
			time.Sleep(time.Duration(attempt) * time.Millisecond)
		}
		route, incomplete, err := c.queryRoutes(job)
		if err == nil {
			return route, nil
		}
		lastErr = err
		if !incomplete {
			break
		}
	}
	return nil, lastErr
}

// queryRoutes performs one routes fan-out. incomplete marks failures a
// racing migration explains (retryable); hard failures are not.
func (c *Client) queryRoutes(job string) (route *jobRoute, incomplete bool, err error) {
	addrs, conns := c.snapshotServers()
	replies := make([]RoutesReply, len(addrs))
	errs := make([]error, len(addrs))
	var wg sync.WaitGroup
	for i := range addrs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cl := conns[addrs[i]]
			if cl == nil {
				errs[i] = errClientClosed
				return
			}
			replies[i], errs[i] = rpc.Invoke[RoutesArgs, RoutesReply](
				cl, MethodRoutes, RoutesArgs{Job: job}, c.timeout)
		}(i)
	}
	wg.Wait()
	byIdx := make(map[int]*stripeRef)
	maxIdx := -1
	for i, reply := range replies {
		if errs[i] != nil {
			continue
		}
		for _, sr := range reply.Stripes {
			ref := byIdx[sr.Index]
			if ref == nil {
				ref = &stripeRef{lo: -1}
				byIdx[sr.Index] = ref
			}
			if sr.Primary {
				ref.lo, ref.n, ref.owner = sr.Lo, sr.Len, addrs[i]
			} else {
				ref.replicas = append(ref.replicas, addrs[i])
			}
			if sr.Index > maxIdx {
				maxIdx = sr.Index
			}
		}
	}
	firstErr := func() error {
		for i, err := range errs {
			if err != nil {
				return fmt.Errorf("ps: routes on server %d (%s): %w", i, addrs[i], err)
			}
		}
		return nil
	}
	if maxIdx < 0 {
		if err := firstErr(); err != nil {
			return nil, false, err
		}
		return nil, false, fmt.Errorf("ps: no stripes for job %q", job)
	}
	route = &jobRoute{stripes: make([]stripeRef, maxIdx+1)}
	wantLo := 0
	for s := 0; s <= maxIdx; s++ {
		ref := byIdx[s]
		if ref == nil || ref.owner == "" || ref.lo != wantLo {
			if err := firstErr(); err != nil {
				return nil, true, err
			}
			return nil, true, fmt.Errorf("ps: incomplete routes for job %q: stripe %d unaccounted", job, s)
		}
		route.stripes[s] = *ref
		wantLo += ref.n
	}
	c.mu.Lock()
	c.routes[job] = route
	c.mu.Unlock()
	return route, false, nil
}

// routeCovering returns a route whose tiling covers [0, need). A cached
// or freshly queried route can transiently cover less when the stripes
// near the end are mid-migration (the per-server queries are not an
// atomic snapshot), so a short route retries rather than erring — and a
// genuinely short model (the caller asked past the end) surfaces as the
// final error.
func (c *Client) routeCovering(job string, need int, r *jobRoute) (*jobRoute, error) {
	var err error
	for attempt := 0; attempt < maxRouteAttempts; attempt++ {
		if r != nil && r.extent() >= need {
			return r, nil
		}
		if attempt > 0 {
			time.Sleep(time.Duration(attempt) * time.Millisecond)
		}
		if r, err = c.refreshRoute(job); err != nil {
			return nil, err
		}
	}
	if r != nil && r.extent() >= need {
		return r, nil
	}
	return nil, fmt.Errorf("ps: shape mismatch for job %q: request reaches %d, model has %d elements",
		job, need, r.extent())
}

// Pull fetches the full model, stripes gathered concurrently from their
// owners — the PULL subtask. It allocates a fresh model; iterating
// callers should prefer PullInto with a reused buffer.
func (c *Client) Pull(job string, modelSize int) ([]float64, error) {
	model := make([]float64, modelSize)
	if err := c.PullInto(job, model); err != nil {
		return nil, err
	}
	return model, nil
}

// PullInto fetches the full model into the caller's buffer (len(model)
// is the model size). Each stripe decodes straight into its slice of the
// buffer, so the steady-state pull allocates nothing.
func (c *Client) PullInto(job string, model []float64) error {
	return c.pullStripes(job, MethodPull, 0, model, true)
}

// PullRange fetches the model elements [lo, lo+len(dst)) into dst.
// Stripes overlapping the range travel whole; only the overlap lands in
// dst. Used by range-oriented consumers (the skew load generator).
func (c *Client) PullRange(job string, lo int, dst []float64) error {
	return c.pullStripes(job, MethodPull, lo, dst, true)
}

// Snapshot checkpoints the full model (used when pausing a job). It
// rides the same per-stripe streaming as Pull, so snapshotting a large
// job does not stall co-located jobs' pushes. Snapshots always read
// primaries, never replicas: the result is the exact aggregation state.
func (c *Client) Snapshot(job string, modelSize int) ([]float64, error) {
	model := make([]float64, modelSize)
	if err := c.pullStripes(job, MethodSnapshot, 0, model, false); err != nil {
		return nil, err
	}
	return model, nil
}

// pullStripes gathers every stripe overlapping [reqLo, reqLo+len(dst))
// into dst. A moved stripe with a forwarding hint retries directly at
// the forward target (chasing the stripe through back-to-back
// migrations); one without a hint triggers a route refresh. Connection
// errors abort with the server identity attached.
func (c *Client) pullStripes(job, method string, reqLo int, dst []float64, allowReplicas bool) error {
	start := time.Now()
	var movedBytes int64
	r, err := c.routeCovering(job, reqLo+len(dst), c.route(job))
	if err != nil {
		return err
	}
	pending := r.overlapping(reqLo, len(dst))
	forwards := make(map[int]string)
	useReplicas := allowReplicas && c.readReplicas.Load()
	for attempt := 0; len(pending) > 0; attempt++ {
		if attempt >= maxRouteAttempts {
			return fmt.Errorf("ps: %s %q: %d stripes unavailable after %d attempts",
				method, job, len(pending), attempt)
		}
		if attempt > 0 && !allForwarded(pending, forwards) {
			if r, err = c.routeCovering(job, reqLo+len(dst), nil); err != nil {
				return err
			}
			time.Sleep(time.Millisecond)
		}
		_, conns := c.snapshotServers()
		groups := make(map[string][]int)
		var stale []int
		for _, s := range pending {
			if s >= len(r.stripes) {
				stale = append(stale, s)
				continue
			}
			st := r.stripes[s]
			addr := st.owner
			if fwd := forwards[s]; fwd != "" && conns[fwd] != nil {
				addr = fwd
			} else if useReplicas && len(st.replicas) > 0 {
				cands := append([]string{st.owner}, st.replicas...)
				addr = cands[int(c.rr.Add(1))%len(cands)]
			}
			if conns[addr] == nil {
				stale = append(stale, s)
				continue
			}
			groups[addr] = append(groups[addr], s)
		}
		type result struct {
			addr  string
			moved []movedRef
			bytes int64
			err   error
		}
		results := make(chan result, len(groups))
		for addr, idxs := range groups {
			go func(addr string, idxs []int) {
				res := result{addr: addr}
				body := rpc.GetBuffer(2 + len(job) + 4 + 4*len(idxs))[:0]
				body = rpc.AppendString(body, job)
				body = rpc.AppendUint32(body, uint32(len(idxs)))
				for _, s := range idxs {
					body = rpc.AppendUint32(body, uint32(s))
				}
				reply, err := conns[addr].Call(method, body, c.timeout)
				rpc.PutBuffer(body)
				if err != nil {
					res.err = err
					results <- res
					return
				}
				res.bytes = int64(len(reply))
				res.moved, res.err = decodeStripesInto(reply, reqLo, dst)
				rpc.PutBuffer(reply)
				results <- res
			}(addr, idxs)
		}
		pending = append([]int(nil), stale...)
		var callErr error
		for range groups {
			res := <-results
			if res.err != nil {
				if callErr == nil {
					callErr = fmt.Errorf("ps: %s from server %s: %w", method, res.addr, res.err)
				}
				continue
			}
			movedBytes += res.bytes
			for _, mv := range res.moved {
				setForward(forwards, mv)
				pending = append(pending, mv.idx)
			}
		}
		if callErr != nil {
			return callErr
		}
	}
	c.applyForwards(job, forwards)
	metrics.Comm.ObservePull(movedBytes, time.Since(start))
	return nil
}

// allForwarded reports whether every pending stripe has a forwarding
// hint — then the retry chases the hints directly and the route
// re-scrape (whose answer the next migration can invalidate) is skipped.
func allForwarded(pending []int, forwards map[int]string) bool {
	for _, s := range pending {
		if forwards[s] == "" {
			return false
		}
	}
	return len(pending) > 0
}

// setForward records a bounce's forwarding hint, clearing a stale one
// when the server had no forwarding entry.
func setForward(forwards map[int]string, mv movedRef) {
	if mv.fwd != "" {
		forwards[mv.idx] = mv.fwd
	} else {
		delete(forwards, mv.idx)
	}
}

// applyForwards promotes the forwarding hints an op chased into the
// cached route, so subsequent ops go straight to the new owner instead
// of bouncing through the old one on every call. Replicas are cleared
// for promoted stripes (migration drops them); the next full refresh
// restores any. Concurrent promotions may overwrite each other — the
// route is a hint either way, and the next bounce re-corrects it.
func (c *Client) applyForwards(job string, forwards map[int]string) {
	if len(forwards) == 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	r := c.routes[job]
	if r == nil {
		return
	}
	clone := &jobRoute{stripes: append([]stripeRef(nil), r.stripes...)}
	changed := false
	for s, fwd := range forwards {
		if s < len(clone.stripes) && fwd != "" && clone.stripes[s].owner != fwd {
			clone.stripes[s].owner = fwd
			clone.stripes[s].replicas = nil
			changed = true
		}
	}
	if changed {
		c.routes[job] = clone
	}
}

// decodeStripesInto places a pull reply's stripes into dst (which holds
// [reqLo, reqLo+len(dst)) of the model) and returns the stripes the
// server bounced, each with its forwarding hint.
func decodeStripesInto(reply []byte, reqLo int, dst []float64) ([]movedRef, error) {
	count32, rest, err := rpc.ReadUint32(reply)
	if err != nil {
		return nil, err
	}
	var moved []movedRef
	for i := 0; i < int(count32); i++ {
		idx32, next, err := rpc.ReadUint32(rest)
		if err != nil {
			return nil, err
		}
		if len(next) < 1 {
			return nil, fmt.Errorf("rpc: stripe status truncated")
		}
		status := next[0]
		rest = next[1:]
		if status != stripeOK {
			fwd, next, err := rpc.ReadString(rest)
			if err != nil {
				return nil, err
			}
			rest = next
			moved = append(moved, movedRef{idx: int(idx32), fwd: fwd})
			continue
		}
		lo32, next, err := rpc.ReadUint32(rest)
		if err != nil {
			return nil, err
		}
		n, data, next, err := rpc.FloatFrame(next)
		if err != nil {
			return nil, err
		}
		rest = next
		slo := int(lo32)
		olo, ohi := maxInt(slo, reqLo), minInt(slo+n, reqLo+len(dst))
		for k := olo; k < ohi; k++ {
			dst[k-reqLo] = rpc.FloatAt(data, k-slo)
		}
	}
	return moved, nil
}

// Push scatters an additive delta across the stripe owners — the PUSH
// subtask. Aggregation happens server-side, in place, at each stripe's
// primary.
func (c *Client) Push(job string, delta []float64) error {
	return c.pushStripes(job, 0, delta)
}

// PushRange pushes an additive delta for elements [lo, lo+len(delta)).
func (c *Client) PushRange(job string, lo int, delta []float64) error {
	return c.pushStripes(job, lo, delta)
}

func (c *Client) pushStripes(job string, reqLo int, delta []float64) error {
	start := time.Now()
	var movedBytes int64
	if reqLo < 0 {
		return fmt.Errorf("ps: push %q: negative offset %d", job, reqLo)
	}
	r, err := c.routeCovering(job, reqLo+len(delta), c.route(job))
	if err != nil {
		return err
	}
	pending := r.overlapping(reqLo, len(delta))
	forwards := make(map[int]string)
	for attempt := 0; len(pending) > 0; attempt++ {
		if attempt >= maxRouteAttempts {
			return fmt.Errorf("ps: push %q: %d stripes unapplied after %d attempts",
				job, len(pending), attempt)
		}
		if attempt > 0 && !allForwarded(pending, forwards) {
			if r, err = c.routeCovering(job, reqLo+len(delta), nil); err != nil {
				return err
			}
			time.Sleep(time.Millisecond)
		}
		_, conns := c.snapshotServers()
		groups := make(map[string][]int)
		var stale []int
		for _, s := range pending {
			if s >= len(r.stripes) {
				stale = append(stale, s)
				continue
			}
			// Stripe geometry (lo/n) is immutable across migrations, so a
			// forwarded push can still build its body from the stale route.
			addr := r.stripes[s].owner
			if fwd := forwards[s]; fwd != "" && conns[fwd] != nil {
				addr = fwd
			}
			if conns[addr] == nil {
				stale = append(stale, s)
				continue
			}
			groups[addr] = append(groups[addr], s)
		}
		type result struct {
			addr   string
			failed []movedRef
			bytes  int64
			err    error
		}
		results := make(chan result, len(groups))
		for addr, idxs := range groups {
			go func(addr string, idxs []int) {
				res := result{addr: addr}
				body := rpc.GetBuffer(2 + len(job) + 4)[:0]
				body = rpc.AppendString(body, job)
				body = rpc.AppendUint32(body, uint32(len(idxs)))
				for _, s := range idxs {
					st := r.stripes[s]
					olo, ohi := maxInt(st.lo, reqLo), minInt(st.lo+st.n, reqLo+len(delta))
					body = rpc.AppendUint32(body, uint32(s))
					body = rpc.AppendUint32(body, uint32(olo))
					body = rpc.AppendFloats(body, delta[olo-reqLo:ohi-reqLo])
					res.bytes += int64(8 * (ohi - olo))
				}
				reply, err := conns[addr].Call(MethodPush, body, c.timeout)
				rpc.PutBuffer(body)
				if err != nil {
					res.err = err
					results <- res
					return
				}
				res.failed, res.err = decodePushReply(reply)
				rpc.PutBuffer(reply)
				results <- res
			}(addr, idxs)
		}
		pending = append([]int(nil), stale...)
		var callErr error
		for range groups {
			res := <-results
			if res.err != nil {
				// A connection-level push failure is ambiguous (the delta may
				// or may not have been applied); retrying could double-apply,
				// so the whole op aborts. Per-stripe moved failures are safe
				// to retry: the server verifiably did not apply them.
				if callErr == nil {
					callErr = fmt.Errorf("ps: push on server %s: %w", res.addr, res.err)
				}
				continue
			}
			movedBytes += res.bytes
			for _, mv := range res.failed {
				setForward(forwards, mv)
				pending = append(pending, mv.idx)
			}
		}
		if callErr != nil {
			return callErr
		}
	}
	c.applyForwards(job, forwards)
	metrics.Comm.ObservePush(movedBytes, time.Since(start))
	return nil
}

func decodePushReply(reply []byte) ([]movedRef, error) {
	nfail32, rest, err := rpc.ReadUint32(reply)
	if err != nil {
		return nil, err
	}
	var failed []movedRef
	for i := 0; i < int(nfail32); i++ {
		idx32, next, err := rpc.ReadUint32(rest)
		if err != nil {
			return nil, err
		}
		fwd, next, err := rpc.ReadString(next)
		if err != nil {
			return nil, err
		}
		rest = next
		failed = append(failed, movedRef{idx: int(idx32), fwd: fwd})
	}
	return failed, nil
}

// Drop removes the job's partitions from every server.
func (c *Client) Drop(job string) error {
	addrs, conns := c.snapshotServers()
	for i, addr := range addrs {
		if conns[addr] == nil {
			return fmt.Errorf("ps: drop on server %d (%s): %w", i, addr, errClientClosed)
		}
		if _, err := rpc.Invoke[DropArgs, Ack](conns[addr], MethodDrop, DropArgs{Job: job}, c.timeout); err != nil {
			return fmt.Errorf("ps: drop on server %d (%s): %w", i, addr, err)
		}
	}
	c.mu.Lock()
	delete(c.routes, job)
	c.mu.Unlock()
	return nil
}

// Close tears down the connections, including any retired by SetServers.
func (c *Client) Close() {
	c.mu.Lock()
	conns := c.clients
	retired := c.retired
	c.addrs = nil
	c.clients = make(map[string]*rpc.Client)
	c.retired = nil
	c.mu.Unlock()
	for _, cl := range conns {
		if cl != nil {
			cl.Close()
		}
	}
	for _, cl := range retired {
		if cl != nil {
			cl.Close()
		}
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
