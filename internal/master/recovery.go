package master

import (
	"fmt"
	"time"

	"harmony/internal/ps"
	"harmony/internal/rpc"
	"harmony/internal/worker"
)

// CheckpointEvery is how often (in iterations) the master snapshots each
// job's model in the background — the paper's standard failure handling
// is "checkpointing (per epoch) and restart" (§VI).
const CheckpointEvery = 5

// maybeCheckpoint is called from the barrier handler when a group
// iteration completes; it snapshots asynchronously so the release is not
// delayed.
func (m *Master) maybeCheckpoint(j *job, iteration int) {
	if iteration == 0 || iteration%CheckpointEvery != 0 {
		return
	}
	servers := m.serverAddrsLocked(j)
	name := j.spec.Name
	size := j.spec.Config.ModelSize()
	go func() {
		client, err := ps.NewClient(servers, time.Minute)
		if err != nil {
			// Servers mid-teardown; the next checkpoint will catch up.
			// Count the loss so dropped snapshots stay visible (/metrics
			// exposes harmony_checkpoint_failures_total).
			m.checkpointFailed()
			return
		}
		defer client.Close()
		snap, err := client.Snapshot(name, size)
		if err != nil {
			m.checkpointFailed()
			return
		}
		m.mu.Lock()
		if jj, ok := m.jobs[name]; ok && jj == j && iteration > j.checkpointIter {
			j.checkpoint = snap
			j.checkpointIter = iteration
		}
		m.mu.Unlock()
	}()
}

// checkpointFailed counts a background snapshot that was dropped.
func (m *Master) checkpointFailed() {
	m.mu.Lock()
	m.counters.checkpointFailures++
	m.mu.Unlock()
}

// Checkpoint reports the job's most recent background snapshot and the
// iteration it covers (nil before the first CheckpointEvery iterations).
func (m *Master) Checkpoint(name string) ([]float64, int, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	j, ok := m.jobs[name]
	if !ok {
		return nil, 0, fmt.Errorf("master: unknown job %q", name)
	}
	if j.checkpoint == nil {
		return nil, 0, nil
	}
	out := make([]float64, len(j.checkpoint))
	copy(out, j.checkpoint)
	return out, j.checkpointIter, nil
}

// RemoveWorker unregisters a failed worker. Jobs whose groups included it
// are marked paused (their barriers are released with Stop so surviving
// workers park the job); callers then RecoverJob each one. A machine
// failure "may have an impact on all co-located jobs" (§VI) — every job
// on the worker is affected.
func (m *Master) RemoveWorker(name string) ([]string, error) {
	m.mu.Lock()
	idx := -1
	for i, w := range m.workers {
		if w.name == name {
			idx = i
			break
		}
	}
	if idx < 0 {
		m.mu.Unlock()
		return nil, fmt.Errorf("master: unknown worker %q", name)
	}
	dead := m.workers[idx]
	m.workers = append(m.workers[:idx], m.workers[idx+1:]...)

	var affected []string
	for jobName, j := range m.jobs {
		uses := false
		members := make([]int, 0, len(j.workers))
		for _, wi := range j.workers {
			switch {
			case wi == idx:
				uses = true
			case wi > idx:
				members = append(members, wi-1) // indexes shift left
			default:
				members = append(members, wi)
			}
		}
		j.workers = members
		if !uses || j.status == StatusFinished {
			continue
		}
		affected = append(affected, jobName)
		j.status = StatusPaused
		j.pauseRequested = false
		// Release any workers blocked at this job's barrier so they stop.
		for _, bs := range j.barriers {
			for _, ch := range bs.waiters {
				ch <- worker.Stop
			}
		}
		j.barriers = make(map[int]*barrierState)
		j.pausedCh = make(chan struct{})
	}
	// Worker indexes shifted and affected jobs left the running set: the
	// derived plan is stale in both group membership and shape.
	m.invalidatePlanLocked()
	m.mu.Unlock()
	dead.client.Close()
	return affected, nil
}

// RecoverJob restarts an affected job on the given worker group (nil =
// every surviving worker), restoring the latest background checkpoint —
// progress since that checkpoint is recomputed, as with any
// checkpoint/restart scheme.
func (m *Master) RecoverJob(name string, group []string) error {
	m.mu.Lock()
	j, ok := m.jobs[name]
	if !ok {
		m.mu.Unlock()
		return fmt.Errorf("master: unknown job %q", name)
	}
	if j.status == StatusFinished {
		m.mu.Unlock()
		return nil
	}
	idxs, err := m.workerIndexesLocked(group)
	if err != nil {
		m.mu.Unlock()
		return err
	}
	restore := j.checkpoint
	fromIter := 0
	if restore != nil {
		fromIter = j.checkpointIter + 1
	}
	oldRefs := make([]workerRef, len(j.workers))
	for i, wi := range j.workers {
		oldRefs[i] = m.workers[wi]
	}
	j.workers = idxs
	j.status = StatusRunning
	j.barriers = make(map[int]*barrierState)
	j.doneFrom = make(map[string]bool)
	j.psServers = nil // deploy rebuilds model partitions on the new group
	j.epoch++         // stragglers of the failed placement are now stale
	m.counters.recoveries++
	// The stamp below must see the restarted placement, not the cached
	// pre-failure plan.
	m.invalidatePlanLocked()
	ev := m.stampJobPlacementLocked(Event{Kind: EventRecover, Job: name,
		Group: m.workerNamesLocked(j),
		Note:  fmt.Sprintf("restart from checkpoint iteration %d", j.checkpointIter)})
	j.measIter = 0
	j.lastRelease = time.Time{}
	m.mu.Unlock()

	// Best-effort cleanup on survivors that hosted the old placement.
	for _, r := range oldRefs {
		_, _ = rpc.Invoke[worker.DropJobArgs, worker.Ack](r.client,
			worker.MethodDropJob, worker.DropJobArgs{Job: name}, time.Minute)
		_, _ = rpc.Invoke[ps.DropArgs, ps.Ack](r.client,
			ps.MethodDrop, ps.DropArgs{Job: name}, time.Minute)
	}
	// Journal after the deploy attempt so a failed restart is auditable
	// in place: the PS client stamps the failing server's address into
	// its fan-out errors, and that identity surfaces here.
	err = m.deploy(j, restore, fromIter)
	if err != nil {
		ev.Note += "; deploy failed: " + err.Error()
	}
	m.journal.append(ev)
	return err
}
