package master

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"harmony/internal/core"
)

// appendSeqNote is append with the Note bound to the assigned sequence
// number inside the same critical section, so concurrent readers can
// detect a torn event (payload from one seq, number from another).
func (l *journal) appendSeqNote(e Event) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.next++
	e.Seq = l.next
	e.Note = fmt.Sprintf("n%d", l.next)
	if e.Time.IsZero() {
		e.Time = time.Now()
	}
	l.buf[(l.next-1)%uint64(len(l.buf))] = e
}

// TestJournalBoundedRetention pins the journal's ring contract: over
// capacity the oldest decisions are evicted, sequence numbers stay
// monotone, and retained events keep their payload.
func TestJournalBoundedRetention(t *testing.T) {
	l := newJournal(4)
	for i := 0; i < 10; i++ {
		l.append(Event{Kind: EventHold, Job: fmt.Sprintf("j%d", i)})
	}
	evs := l.snapshot()
	if len(evs) != 4 {
		t.Fatalf("retained %d events, want 4", len(evs))
	}
	for i, e := range evs {
		wantSeq := uint64(7 + i)
		if e.Seq != wantSeq {
			t.Errorf("event %d Seq = %d, want %d", i, e.Seq, wantSeq)
		}
		if e.Job != fmt.Sprintf("j%d", 6+i) {
			t.Errorf("event %d Job = %q", i, e.Job)
		}
		if e.Time.IsZero() {
			t.Errorf("event %d missing timestamp", i)
		}
		if i > 0 && e.Seq <= evs[i-1].Seq {
			t.Errorf("sequence not monotone at %d", i)
		}
	}
}

func TestJournalPredictedFrom(t *testing.T) {
	g := core.Group{
		Jobs: []core.JobInfo{
			{ID: "a", Comp: 4, Net: 1},
			{ID: "b", Comp: 2, Net: 2},
		},
		Machines: 2,
	}
	m := &Master{}
	e := m.predictedEvent(Event{Kind: EventAdmitArrival, Job: "b"}, core.PredictGroup(g, false))
	if e.PredictedIterSeconds != g.IterSeconds() {
		t.Errorf("predicted T_itr = %v, want %v", e.PredictedIterSeconds, g.IterSeconds())
	}
	ucpu, unet := g.Util()
	if e.PredictedCPUUtil != ucpu || e.PredictedNetUtil != unet {
		t.Errorf("predicted util = (%v, %v), want (%v, %v)",
			e.PredictedCPUUtil, e.PredictedNetUtil, ucpu, unet)
	}
	if e.PredictedIterSeconds <= 0 {
		t.Error("prediction should be positive for a non-empty group")
	}
	if e.PredictedCompatibility != 0 {
		t.Errorf("NetModel off: compatibility stamp = %v, want 0", e.PredictedCompatibility)
	}
	mn := &Master{opts: core.Options{NetModel: true}}
	e = mn.predictedEvent(Event{Kind: EventAdmitArrival, Job: "b"}, core.PredictGroup(g, true))
	if want := core.GroupCompatibility(g); e.PredictedCompatibility != want {
		t.Errorf("NetModel on: compatibility stamp = %v, want %v", e.PredictedCompatibility, want)
	}
}

func TestJournalEmptySnapshot(t *testing.T) {
	l := newJournal(8)
	if evs := l.snapshot(); len(evs) != 0 {
		t.Errorf("empty journal snapshot = %+v", evs)
	}
}

// TestJournalSnapshotSince pins the incremental-read contract of the
// ?since= / ?kind= filters: Seq > since, kind match, and graceful
// handling of a since that has already been evicted from the ring.
func TestJournalSnapshotSince(t *testing.T) {
	l := newJournal(8)
	for i := 0; i < 6; i++ {
		kind := EventHold
		if i%2 == 1 {
			kind = EventAdmitArrival
		}
		l.append(Event{Kind: kind, Job: fmt.Sprintf("j%d", i)})
	}

	if evs := l.snapshotSince(4, ""); len(evs) != 2 || evs[0].Seq != 5 || evs[1].Seq != 6 {
		t.Fatalf("since=4: got %+v, want seqs 5,6", evs)
	}
	if evs := l.snapshotSince(6, ""); evs != nil {
		t.Fatalf("since=latest: got %+v, want nil", evs)
	}
	if evs := l.snapshotSince(100, ""); evs != nil {
		t.Fatalf("since beyond head: got %+v, want nil", evs)
	}

	evs := l.snapshotSince(0, EventAdmitArrival)
	if len(evs) != 3 {
		t.Fatalf("kind filter: got %d events, want 3", len(evs))
	}
	for _, e := range evs {
		if e.Kind != EventAdmitArrival {
			t.Errorf("kind filter leaked %q", e.Kind)
		}
	}
	if evs := l.snapshotSince(3, EventHold); len(evs) != 1 || evs[0].Seq != 5 {
		t.Fatalf("since+kind: got %+v, want one hold at seq 5", evs)
	}

	// Push past capacity: since below the eviction horizon returns only
	// retained events, never stale slots.
	for i := 6; i < 20; i++ {
		l.append(Event{Kind: EventHold, Job: fmt.Sprintf("j%d", i)})
	}
	evs = l.snapshotSince(2, "")
	if len(evs) != 8 {
		t.Fatalf("post-wrap since=2: got %d events, want the 8 retained", len(evs))
	}
	if evs[0].Seq != 13 || evs[len(evs)-1].Seq != 20 {
		t.Fatalf("post-wrap range = [%d, %d], want [13, 20]", evs[0].Seq, evs[len(evs)-1].Seq)
	}
}

// TestJournalConcurrentWraparound hammers the ring with concurrent
// appenders and readers across many wraparounds (run under -race): every
// snapshot must be strictly seq-monotone, gap-free within itself, and
// contain only events whose payload matches their sequence number.
func TestJournalConcurrentWraparound(t *testing.T) {
	l := newJournal(16)
	const (
		writers   = 4
		perWriter = 500
		readers   = 4
	)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	errs := make(chan string, readers)

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				evs := l.snapshotSince(0, "")
				for i, e := range evs {
					if i > 0 && e.Seq != evs[i-1].Seq+1 {
						select {
						case errs <- fmt.Sprintf("gap: seq %d after %d", e.Seq, evs[i-1].Seq):
						default:
						}
						return
					}
					if e.Note != fmt.Sprintf("n%d", e.Seq) {
						select {
						case errs <- fmt.Sprintf("torn event: seq %d note %q", e.Seq, e.Note):
						default:
						}
						return
					}
				}
			}
		}()
	}

	var appendWG sync.WaitGroup
	for w := 0; w < writers; w++ {
		appendWG.Add(1)
		go func() {
			defer appendWG.Done()
			for i := 0; i < perWriter; i++ {
				l.appendSeqNote(Event{Kind: EventHold})
			}
		}()
	}
	appendWG.Wait()
	close(stop)
	wg.Wait()

	select {
	case msg := <-errs:
		t.Fatal(msg)
	default:
	}

	evs := l.snapshotSince(0, "")
	if len(evs) != 16 {
		t.Fatalf("retained %d events, want 16", len(evs))
	}
	if want := uint64(writers * perWriter); evs[len(evs)-1].Seq != want {
		t.Fatalf("final seq = %d, want %d", evs[len(evs)-1].Seq, want)
	}
}
