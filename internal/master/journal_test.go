package master

import (
	"fmt"
	"testing"

	"harmony/internal/core"
)

// TestJournalBoundedRetention pins the journal's ring contract: over
// capacity the oldest decisions are evicted, sequence numbers stay
// monotone, and retained events keep their payload.
func TestJournalBoundedRetention(t *testing.T) {
	l := newJournal(4)
	for i := 0; i < 10; i++ {
		l.append(Event{Kind: EventHold, Job: fmt.Sprintf("j%d", i)})
	}
	evs := l.snapshot()
	if len(evs) != 4 {
		t.Fatalf("retained %d events, want 4", len(evs))
	}
	for i, e := range evs {
		wantSeq := uint64(7 + i)
		if e.Seq != wantSeq {
			t.Errorf("event %d Seq = %d, want %d", i, e.Seq, wantSeq)
		}
		if e.Job != fmt.Sprintf("j%d", 6+i) {
			t.Errorf("event %d Job = %q", i, e.Job)
		}
		if e.Time.IsZero() {
			t.Errorf("event %d missing timestamp", i)
		}
		if i > 0 && e.Seq <= evs[i-1].Seq {
			t.Errorf("sequence not monotone at %d", i)
		}
	}
}

func TestJournalPredictedFrom(t *testing.T) {
	g := core.Group{
		Jobs: []core.JobInfo{
			{ID: "a", Comp: 4, Net: 1},
			{ID: "b", Comp: 2, Net: 2},
		},
		Machines: 2,
	}
	m := &Master{}
	e := m.predictedEvent(Event{Kind: EventAdmitArrival, Job: "b"}, core.PredictGroup(g, false))
	if e.PredictedIterSeconds != g.IterSeconds() {
		t.Errorf("predicted T_itr = %v, want %v", e.PredictedIterSeconds, g.IterSeconds())
	}
	ucpu, unet := g.Util()
	if e.PredictedCPUUtil != ucpu || e.PredictedNetUtil != unet {
		t.Errorf("predicted util = (%v, %v), want (%v, %v)",
			e.PredictedCPUUtil, e.PredictedNetUtil, ucpu, unet)
	}
	if e.PredictedIterSeconds <= 0 {
		t.Error("prediction should be positive for a non-empty group")
	}
	if e.PredictedCompatibility != 0 {
		t.Errorf("NetModel off: compatibility stamp = %v, want 0", e.PredictedCompatibility)
	}
	mn := &Master{opts: core.Options{NetModel: true}}
	e = mn.predictedEvent(Event{Kind: EventAdmitArrival, Job: "b"}, core.PredictGroup(g, true))
	if want := core.GroupCompatibility(g); e.PredictedCompatibility != want {
		t.Errorf("NetModel on: compatibility stamp = %v, want %v", e.PredictedCompatibility, want)
	}
}

func TestJournalEmptySnapshot(t *testing.T) {
	l := newJournal(8)
	if evs := l.snapshot(); len(evs) != 0 {
		t.Errorf("empty journal snapshot = %+v", evs)
	}
}
