// Package master implements the live Harmony master (Fig. 6): it accepts
// worker registrations, submits Parameter-Server jobs across them,
// synchronizes every job's distributed iterations (the SubTask
// Synchronizer of Fig. 7), profiles subtask times, and regroups jobs with
// Algorithm 1 — pausing, checkpointing and migrating models between
// worker groups (§IV-B4).
package master

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"harmony/internal/core"
	"harmony/internal/fair"
	"harmony/internal/metrics"
	"harmony/internal/mlapp"
	"harmony/internal/profile"
	"harmony/internal/ps"
	"harmony/internal/rpc"
	"harmony/internal/worker"
)

// JobSpec describes one training job submission.
type JobSpec struct {
	Name       string
	Config     mlapp.Config
	Iterations int
	// Alpha is the initial disk-block spill ratio on each worker.
	Alpha float64
	// Seed drives synthetic data generation and model init.
	Seed int64
	// Queue names the admission queue (DESIGN.md §13); empty means the
	// default queue.
	Queue string
	// Priority orders jobs within a queue (higher first) and protects
	// running jobs from preemption (lowest-priority victims go first).
	Priority int
	// MinWorkers is the job's gang size: its full worker set places
	// atomically or the whole job holds — never partial. <= 1 means any
	// single worker suffices.
	MinWorkers int
	// MaxWorkers caps the placement size (0 = no cap). A flood of
	// MaxWorkers=1 jobs shares a cluster instead of serializing on it.
	MaxWorkers int
}

// JobStatus reports a job's lifecycle.
type JobStatus int

// Job states (§III). StatusPending and StatusCanceled extend the paper's
// lifecycle for the online control plane: pending jobs wait in the
// admission queue, canceled jobs were stopped by an operator.
const (
	StatusRunning JobStatus = iota + 1
	StatusPaused
	StatusFinished
	StatusPending
	StatusCanceled
)

// String names the state for status surfaces and metrics labels.
func (s JobStatus) String() string {
	switch s {
	case StatusRunning:
		return "running"
	case StatusPaused:
		return "paused"
	case StatusFinished:
		return "finished"
	case StatusPending:
		return "pending"
	case StatusCanceled:
		return "canceled"
	default:
		return fmt.Sprintf("JobStatus(%d)", int(s))
	}
}

type workerRef struct {
	name   string
	addr   string
	client *rpc.Client
}

type barrierState struct {
	arrived int
	waiters []chan worker.Directive
}

type job struct {
	spec    JobSpec
	workers []int // indexes into Master.workers
	status  JobStatus
	iter    int // last completed iteration (max over barriers)

	// queue and priority are the fair-scheduler coordinates (§13);
	// arrival is the submission sequence number (kept across preemption
	// so a reclaimed job resumes ahead of later arrivals in its queue),
	// startSeq the deployment sequence (recency for victim selection).
	queue    string
	priority int
	arrival  uint64
	startSeq uint64

	// prof carries the submitter's profile hints (§IV-B1 shape); live
	// profiled metrics supersede it once MinSamples have accumulated.
	prof core.JobInfo

	// epoch counts deployments of this job. Recovery and migration tear
	// a placement down while its stragglers may still have barrier or
	// done RPCs in flight; those echo the old epoch and are discarded so
	// they cannot pollute the new placement's barrier counts.
	epoch int

	barriers map[int]*barrierState
	doneFrom map[string]bool
	loss     float64

	// checkpoint is the latest background model snapshot (§VI fault
	// tolerance), covering checkpointIter.
	checkpoint     []float64
	checkpointIter int

	pauseRequested bool
	pausedCh       chan struct{} // closed when the pause takes effect
	finishedCh     chan struct{} // closed when all workers complete

	// measIter tracks measured iteration seconds as an EWMA of the wall
	// time between consecutive barrier releases; the decision journal
	// reports it beside the model's predicted T_itr.
	measIter    float64
	lastRelease time.Time

	// psServers overrides the job's parameter-server set when elastic
	// resizing has diverged it from the worker group (DESIGN.md §12);
	// nil means the default co-located placement. Reset on migration and
	// recovery, which rebuild model partitions on the new group.
	psServers []string
}

// Master coordinates the live runtime. Create with New; stop with Close.
type Master struct {
	srv  *rpc.Server
	addr string

	// mu is a read/write split (DESIGN.md §15): status surfaces
	// (ListJobs, Job, Cluster, Counters, Queues, queue views, /metrics
	// scrapes) take the read side and no longer contend with admission,
	// which — like every state mutation — holds the write side.
	mu       sync.RWMutex
	workers  []workerRef
	jobs     map[string]*job
	pending  []*pendingJob
	profiles *profile.Store
	opts     core.Options
	counters counters
	draining bool
	closed   bool

	// pendingIdx indexes m.pending by job name so duplicate checks and
	// drain lookups are O(1) instead of scans of a 10K-deep queue.
	// Maintained by addPendingLocked/removePendingLocked.
	pendingIdx map[string]*pendingJob

	// Admission fast path (DESIGN.md §15). admitEpoch versions every
	// input of an admission decision: it is bumped (under mu's write
	// side) by any mutation of the live plan, the pending queue, the
	// worker set, or the queue policy. The drain pass stamps reject
	// verdicts with the epoch they were computed at and skips re-scoring
	// a held job until the epoch moves; the usage/free/held snapshots in
	// admitInputsLocked are cached on the same key. planMu guards the
	// cached live plan (planCache), which is built lazily under mu's
	// read side and cleared by invalidatePlanLocked (lock order:
	// mu → planMu). legacyAdmission re-enables the pre-fast-path
	// clone-and-rescore behavior for the A/B benchmark.
	admitEpoch      uint64
	planMu          sync.Mutex
	planCache       *livePlanCache
	inputEpoch      uint64
	usageCache      fair.Usage
	freeCache       []string
	heldCache       []fair.Held
	legacyAdmission bool

	// The single drainer goroutine (drainLoop) replaces the historical
	// per-event `go m.drainQueue()` spawns: wakeups coalesce through the
	// 1-buffered drainCh, so a burst of holds and completions triggers
	// one batched pass instead of a goroutine storm.
	drainCh       chan struct{}
	drainStop     chan struct{}
	drainStopOnce sync.Once

	// Fair-scheduler state (fairsched.go): the active queue policy, a
	// per-queue counter ledger, the arrival/deployment sequence clocks,
	// and the reclaim latch that serializes preemption rounds.
	fairsched  *fair.Scheduler
	qcounters  map[string]*queueCounters
	arrivalSeq uint64
	deploySeq  uint64
	reclaiming bool

	// journal records scheduler decisions (always on; bounded ring).
	// trace, when non-nil, collects worker spans for /v1/trace.
	journal *journal
	trace   *traceState

	// phases caches solved comm-interleaving state per live co-location
	// group (interleave.go); only populated when opts.NetModel is on.
	phases map[string]*groupPhase

	// Hot-stripe rebalancer state (psstats.go): the balancer has its own
	// lock so scrape rounds never hold Master.mu across RPCs. psOpMu
	// serializes rebalance rounds with ResizeJobServers — a round planned
	// against a pre-resize server set must not execute while servers
	// drain out of it. Lock order: psOpMu → mu → psMu.
	psMu     sync.Mutex
	balancer *ps.Balancer
	psOpMu   sync.Mutex
	psStop   chan struct{}
	psWG     sync.WaitGroup
}

// New starts a master listening on addr ("127.0.0.1:0" for tests).
func New(addr string, opts core.Options) (*Master, error) {
	m := &Master{
		srv:        rpc.NewServer(),
		jobs:       make(map[string]*job),
		pendingIdx: make(map[string]*pendingJob),
		profiles:   profile.NewStore(profile.DefaultEWMAAlpha),
		opts:       opts,
		journal:    newJournal(DefaultJournalCapacity),
		fairsched:  fair.Default(),
		qcounters:  make(map[string]*queueCounters),
		phases:     make(map[string]*groupPhase),
		admitEpoch: 1,
		drainCh:    make(chan struct{}, 1),
		drainStop:  make(chan struct{}),
	}
	go m.drainLoop()
	m.srv.Handle("master.register", rpc.Typed(m.handleRegister))
	m.srv.Handle(worker.MethodBarrier, rpc.Typed(m.handleBarrier))
	m.srv.Handle(worker.MethodJobDone, rpc.Typed(m.handleJobDone))
	bound, err := m.srv.Listen(addr)
	if err != nil {
		return nil, err
	}
	m.addr = bound
	return m, nil
}

// Addr is the master's RPC address for workers to dial.
func (m *Master) Addr() string { return m.addr }

type registerArgs struct {
	Name string
	Addr string
}

func (m *Master) handleRegister(a registerArgs) (worker.Ack, error) {
	client, err := rpc.Dial(a.Addr, 10*time.Second)
	if err != nil {
		return worker.Ack{}, fmt.Errorf("master: dial back worker %s: %w", a.Name, err)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		client.Close()
		return worker.Ack{}, rpc.ErrClosed
	}
	for _, w := range m.workers {
		if w.name == a.Name {
			client.Close()
			return worker.Ack{}, fmt.Errorf("master: duplicate worker name %q", a.Name)
		}
	}
	m.workers = append(m.workers, workerRef{name: a.Name, addr: a.Addr, client: client})
	// A new worker extends the free list: cached admission inputs (and
	// reject verdicts) are stale. Appending leaves existing worker
	// indexes — and so the live plan — intact.
	m.admitEpoch++
	return worker.Ack{}, nil
}

// WaitForWorkers blocks until n workers have registered.
func (m *Master) WaitForWorkers(n int, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		m.mu.RLock()
		got := len(m.workers)
		m.mu.RUnlock()
		if got >= n {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("master: %d of %d workers after %s", got, n, timeout)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// Workers reports registered worker names.
func (m *Master) Workers() []string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	names := make([]string, len(m.workers))
	for i, w := range m.workers {
		names[i] = w.name
	}
	return names
}

// Submit loads and starts a job across the given workers (all registered
// workers when group is nil), bypassing the admission queue.
func (m *Master) Submit(spec JobSpec, group []string) error {
	return m.submitPending(&pendingJob{spec: spec, info: core.JobInfo{ID: spec.Name}}, group)
}

// submitPending deploys a (possibly previously preempted) job onto a
// worker group. The pendingJob carries the admission path's profile
// hints, the queue coordinates, and — after a preemption — the
// checkpoint frame to restore from.
func (m *Master) submitPending(p *pendingJob, group []string) error {
	spec := p.spec
	if spec.Name == "" || spec.Iterations <= 0 {
		return errors.New("master: job needs a name and positive iterations")
	}
	m.mu.Lock()
	if m.draining || m.closed {
		m.mu.Unlock()
		return ErrDraining
	}
	if m.knownLocked(spec.Name) {
		m.mu.Unlock()
		return fmt.Errorf("master: duplicate job %q: %w", spec.Name, ErrDuplicateJob)
	}
	queue := spec.Queue
	if queue == "" {
		queue = fair.DefaultQueue
	}
	if !m.fairsched.Has(queue) {
		m.mu.Unlock()
		return fmt.Errorf("master: %w %q", ErrUnknownQueue, queue)
	}
	idxs, err := m.workerIndexesLocked(group)
	if err != nil {
		m.mu.Unlock()
		return err
	}
	if p.seq == 0 {
		m.arrivalSeq++
		p.seq = m.arrivalSeq
	}
	m.deploySeq++
	j := &job{
		// epoch advances past every prior deployment of this name, so a
		// preempted placement's stragglers stay stale after the resume.
		spec: spec, workers: idxs, status: StatusRunning, prof: p.info, epoch: p.epoch + 1,
		queue: queue, priority: spec.Priority, arrival: p.seq, startSeq: m.deploySeq,
		barriers:   make(map[int]*barrierState),
		doneFrom:   make(map[string]bool),
		pausedCh:   make(chan struct{}),
		finishedCh: p.finishedCh,
	}
	if j.finishedCh == nil {
		j.finishedCh = make(chan struct{})
	}
	fromIter := 0
	if p.resume != nil {
		fromIter = p.resumeIter
		j.iter = fromIter - 1
		j.checkpoint = p.resume
		j.checkpointIter = fromIter - 1
	}
	m.jobs[spec.Name] = j
	m.invalidatePlanLocked()
	m.mu.Unlock()

	if err := m.deploy(j, p.resume, fromIter); err != nil {
		m.mu.Lock()
		delete(m.jobs, spec.Name)
		m.invalidatePlanLocked()
		m.mu.Unlock()
		return err
	}
	return nil
}

func (m *Master) workerIndexesLocked(group []string) ([]int, error) {
	if len(m.workers) == 0 {
		return nil, errors.New("master: no workers registered")
	}
	if group == nil {
		idxs := make([]int, len(m.workers))
		for i := range idxs {
			idxs[i] = i
		}
		return idxs, nil
	}
	var idxs []int
	for _, name := range group {
		found := -1
		for i, w := range m.workers {
			if w.name == name {
				found = i
				break
			}
		}
		if found < 0 {
			return nil, fmt.Errorf("master: %w %q", ErrUnknownWorker, name)
		}
		idxs = append(idxs, found)
	}
	if len(idxs) == 0 {
		return nil, errors.New("master: empty worker group")
	}
	return idxs, nil
}

// deploy loads a job onto its worker group and starts iterating; restore
// carries checkpointed model parameters for migrations.
func (m *Master) deploy(j *job, restore []float64, fromIter int) error {
	m.mu.Lock()
	epoch := j.epoch
	refs := make([]workerRef, len(j.workers))
	for i, wi := range j.workers {
		refs[i] = m.workers[wi]
	}
	m.mu.Unlock()
	servers := make([]string, len(refs))
	for i, r := range refs {
		servers[i] = r.addr
	}
	for i, r := range refs {
		args := worker.LoadJobArgs{
			Job: j.spec.Name, Config: j.spec.Config, Servers: servers,
			ShardIndex: i, ShardCount: len(refs), Seed: j.spec.Seed,
			InitModel: i == 0, Alpha: j.spec.Alpha,
		}
		if i == 0 && restore != nil {
			// Checkpointed models ride the data plane's float-frame codec:
			// a gob []float64 would walk every element reflectively, which
			// for large models would drag migration/recovery back onto the
			// slow plane PR 3 retired.
			args.RestoreFrame = rpc.AppendFloats(nil, restore)
		}
		if _, err := rpc.Invoke[worker.LoadJobArgs, worker.Ack](r.client,
			worker.MethodLoadJob, args, time.Minute); err != nil {
			return fmt.Errorf("master: load %s on %s: %w", j.spec.Name, r.name, err)
		}
	}
	for _, r := range refs {
		if _, err := rpc.Invoke[worker.StartJobArgs, worker.Ack](r.client,
			worker.MethodStartJob, worker.StartJobArgs{
				Job: j.spec.Name, FromIteration: fromIter, Iterations: j.spec.Iterations,
				Epoch: epoch,
			}, time.Minute); err != nil {
			return fmt.Errorf("master: start %s on %s: %w", j.spec.Name, r.name, err)
		}
	}
	return nil
}

// handleBarrier blocks each worker until the whole group reaches the
// iteration boundary, then releases them with the pending directive.
func (m *Master) handleBarrier(a worker.BarrierArgs) (worker.BarrierReply, error) {
	m.mu.Lock()
	j, ok := m.jobs[a.Job]
	if !ok {
		m.mu.Unlock()
		return worker.BarrierReply{Directive: worker.Stop}, nil
	}
	if j.status == StatusCanceled || j.status == StatusFinished {
		// A canceled job's stragglers must not park at a barrier no
		// group-mate will ever reach.
		m.mu.Unlock()
		return worker.BarrierReply{Directive: worker.Stop}, nil
	}
	if a.Epoch != j.epoch {
		// Straggler from a placement that recovery or migration already
		// tore down; counting it would desync the new group's barrier.
		m.mu.Unlock()
		return worker.BarrierReply{Directive: worker.Stop}, nil
	}
	if m.draining || m.closed {
		// Wind-down: a barrier call that parked here after Close released
		// the existing waiters would pin the RPC server's handler wait
		// group until the barrier timeout.
		m.mu.Unlock()
		return worker.BarrierReply{Directive: worker.Stop}, nil
	}
	// Every observation can move the scheduler-visible profile (the EWMA
	// supersedes submission hints once MinSamples accumulate), so the
	// cached plan is stale; the same bump covers the pause flip below.
	_ = m.profiles.Observe(a.Job, len(j.workers), a.CompSeconds, a.NetSeconds)
	m.invalidatePlanLocked()
	j.loss = a.Loss
	if a.Iteration > j.iter {
		j.iter = a.Iteration
	}
	bs := j.barriers[a.Iteration]
	if bs == nil {
		bs = &barrierState{}
		j.barriers[a.Iteration] = bs
	}
	bs.arrived++
	if bs.arrived < len(j.workers) {
		ch := make(chan worker.Directive, 1)
		bs.waiters = append(bs.waiters, ch)
		m.mu.Unlock()
		select {
		case d := <-ch:
			return worker.BarrierReply{Directive: d}, nil
		case <-time.After(5 * time.Minute):
			return worker.BarrierReply{Directive: worker.Stop},
				errors.New("master: barrier timed out")
		}
	}
	// Last arrival: release the whole group. The wall time between
	// releases is the measured group iteration time the journal compares
	// against the model's prediction.
	now := time.Now()
	if !j.lastRelease.IsZero() {
		dt := now.Sub(j.lastRelease).Seconds()
		if j.measIter <= 0 {
			j.measIter = dt
		} else {
			j.measIter = 0.3*dt + 0.7*j.measIter
		}
	}
	j.lastRelease = now
	d := worker.Continue
	if j.pauseRequested {
		d = worker.Pause
		j.status = StatusPaused
		j.pauseRequested = false
		close(j.pausedCh)
	}
	// The barrier entry is deleted under the lock BEFORE the staggered
	// release below: once gone, Close and RemoveWorker can no longer see
	// these waiters, so the post-sleep sends are the only sends.
	delete(j.barriers, a.Iteration)
	if d == worker.Continue {
		m.maybeCheckpoint(j, a.Iteration)
	}
	var stagger time.Duration
	if d == worker.Continue {
		// CASSINI-style phase enforcement (interleave.go): hold the whole
		// group briefly so its next comm windows land on the solved offset.
		stagger = m.phaseDelayLocked(a.Job, now)
	}
	waiters := bs.waiters
	m.mu.Unlock()
	if stagger > 0 {
		time.Sleep(stagger)
	}
	for _, ch := range waiters {
		ch <- d
	}
	return worker.BarrierReply{Directive: d}, nil
}

func (m *Master) handleJobDone(a worker.JobDoneArgs) (worker.Ack, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[a.Job]
	if !ok {
		return worker.Ack{}, nil
	}
	if a.Epoch != j.epoch {
		return worker.Ack{}, nil
	}
	j.doneFrom[a.Worker] = true
	if len(j.doneFrom) >= len(j.workers) && j.status != StatusFinished && j.status != StatusCanceled {
		// Freeze the final measured values into the completion event
		// before the job leaves the live plan.
		iter, ucpu, unet := m.measuredLocked(a.Job, j)
		m.journal.append(Event{
			Kind: EventComplete, Job: a.Job,
			MeasuredIterSeconds: iter,
			MeasuredCPUUtil:     ucpu,
			MeasuredNetUtil:     unet,
		})
		j.status = StatusFinished
		m.invalidatePlanLocked()
		close(j.finishedCh)
		// A completion frees capacity: drain the admission queue (§IV-B4).
		m.wakeDrainer()
	}
	return worker.Ack{}, nil
}

// WaitJob blocks until the job completes.
func (m *Master) WaitJob(name string, timeout time.Duration) error {
	m.mu.RLock()
	var ch chan struct{}
	if j, ok := m.jobs[name]; ok {
		ch = j.finishedCh
	} else if p := m.pendingByNameLocked(name); p != nil {
		// A held job is known work: it completes after a drain (or a
		// resume from preemption) eventually deploys it. The channel
		// survives the pending→deployed transition.
		ch = p.finishedCh
	}
	m.mu.RUnlock()
	if ch == nil {
		return fmt.Errorf("master: %w %q", ErrUnknownJob, name)
	}
	select {
	case <-ch:
		return nil
	case <-time.After(timeout):
		return fmt.Errorf("master: job %q not finished after %s", name, timeout)
	}
}

// Status reports a job's state, last completed iteration, and loss.
func (m *Master) Status(name string) (JobStatus, int, float64, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	j, ok := m.jobs[name]
	if !ok {
		return 0, 0, 0, fmt.Errorf("master: unknown job %q", name)
	}
	return j.status, j.iter, j.loss, nil
}

// Metrics exposes the profiled (T_cpu, T_net) estimates for a job.
func (m *Master) Metrics(name string) (profile.Metrics, bool) {
	return m.profiles.Metrics(name)
}

// Pause stops a job at its next iteration boundary and returns its model
// checkpoint (§IV-B4: "waits until ongoing iteration ends, stops the
// subtasks of the job, and checkpoints the model parameters").
func (m *Master) Pause(name string, timeout time.Duration) ([]float64, error) {
	m.mu.Lock()
	j, ok := m.jobs[name]
	if !ok || j.status != StatusRunning {
		m.mu.Unlock()
		return nil, fmt.Errorf("master: job %q not running", name)
	}
	j.pauseRequested = true
	pausedCh := j.pausedCh
	finishedCh := j.finishedCh
	servers := m.serverAddrsLocked(j)
	m.mu.Unlock()

	select {
	case <-pausedCh:
	case <-finishedCh:
		return nil, fmt.Errorf("master: job %q finished before pausing", name)
	case <-time.After(timeout):
		return nil, fmt.Errorf("master: pause of %q timed out", name)
	}
	client, err := ps.NewClient(servers, time.Minute)
	if err != nil {
		return nil, err
	}
	defer client.Close()
	return client.Snapshot(name, j.spec.Config.ModelSize())
}

// Resume migrates a paused job onto a (possibly different) worker group,
// restoring the checkpointed model; input shards are regenerated, not
// migrated (§IV-B4).
func (m *Master) Resume(name string, group []string, checkpoint []float64) error {
	m.mu.Lock()
	j, ok := m.jobs[name]
	if !ok || j.status != StatusPaused {
		m.mu.Unlock()
		return fmt.Errorf("master: job %q not paused", name)
	}
	oldRefs := make([]workerRef, len(j.workers))
	for i, wi := range j.workers {
		oldRefs[i] = m.workers[wi]
	}
	idxs, err := m.workerIndexesLocked(group)
	if err != nil {
		m.mu.Unlock()
		return err
	}
	fromIter := j.iter + 1
	j.workers = idxs
	j.status = StatusRunning
	j.pausedCh = make(chan struct{})
	j.barriers = make(map[int]*barrierState)
	j.psServers = nil // deploy rebuilds model partitions on the new group
	j.epoch++         // the pre-migration placement must not reach the new barriers
	m.counters.migrations++
	// The job moved groups: refresh the cached plan before stamping the
	// migration event with the prediction for the placement it now joins;
	// the measured EWMA restarts on the new placement.
	m.invalidatePlanLocked()
	ev := m.stampJobPlacementLocked(Event{Kind: EventMigrate, Job: name, Group: group})
	j.measIter = 0
	j.lastRelease = time.Time{}
	m.mu.Unlock()
	m.journal.append(ev)

	// Tear the old placement down; shards and model partitions are
	// rebuilt on the new group.
	for _, r := range oldRefs {
		_, _ = rpc.Invoke[worker.DropJobArgs, worker.Ack](r.client,
			worker.MethodDropJob, worker.DropJobArgs{Job: name}, time.Minute)
		_, _ = rpc.Invoke[ps.DropArgs, ps.Ack](r.client,
			ps.MethodDrop, ps.DropArgs{Job: name}, time.Minute)
	}
	if err := m.deploy(j, checkpoint, fromIter); err != nil {
		return err
	}
	// A regroup reshapes the plan; retry held jobs against it (§IV-B4).
	m.wakeDrainer()
	return nil
}

// serverAddrsLocked lists the PS addresses of a job's current group,
// preferring an elastically resized server set when one is live.
func (m *Master) serverAddrsLocked(j *job) []string {
	if j.psServers != nil {
		return append([]string(nil), j.psServers...)
	}
	addrs := make([]string, len(j.workers))
	for i, wi := range j.workers {
		addrs[i] = m.workers[wi].addr
	}
	return addrs
}

// PlanGroups runs Algorithm 1 over the currently profiled jobs, mapping
// machine counts to concrete worker subsets. It returns job→workers
// assignments without applying them; callers migrate via Pause/Resume.
func (m *Master) PlanGroups() (map[string][]string, error) {
	m.mu.RLock()
	var infos []core.JobInfo
	for name := range m.jobs {
		if met, ok := m.profiles.Metrics(name); ok && met.Profiled() {
			infos = append(infos, core.JobInfo{
				ID:   name,
				Comp: met.CompMachineSeconds,
				Net:  met.NetSeconds,
			})
		}
	}
	total := len(m.workers)
	names := make([]string, len(m.workers))
	for i, w := range m.workers {
		names[i] = w.name
	}
	m.mu.RUnlock()
	if len(infos) == 0 {
		return nil, errors.New("master: no profiled jobs to plan")
	}
	sort.Slice(infos, func(a, b int) bool { return infos[a].ID < infos[b].ID })
	plan := core.Schedule(infos, total, m.opts)
	if len(plan.Groups) == 0 {
		return nil, errors.New("master: scheduler produced no groups")
	}
	out := make(map[string][]string)
	next := 0
	for _, g := range plan.Groups {
		take := g.Machines
		if next+take > total {
			take = total - next
		}
		if take < 1 {
			take = 1
			next = total - 1
		}
		members := names[next : next+take]
		next += take
		for _, job := range g.Jobs {
			out[job.ID] = members
		}
	}
	return out, nil
}

// WorkerStats aggregates executor utilization across workers.
func (m *Master) WorkerStats() (cpu, net float64, err error) {
	m.mu.RLock()
	refs := append([]workerRef(nil), m.workers...)
	m.mu.RUnlock()
	if len(refs) == 0 {
		return 0, 0, errors.New("master: no workers")
	}
	for _, r := range refs {
		st, err := rpc.Invoke[worker.StatsArgs, worker.StatsReply](r.client,
			worker.MethodStats, worker.StatsArgs{SpanAfter: worker.SpanCursorNone},
			time.Minute)
		if err != nil {
			return 0, 0, err
		}
		cpu += st.CPUUtil
		net += st.NetUtil
	}
	return cpu / float64(len(refs)), net / float64(len(refs)), nil
}

// CommStats sums data-plane traffic across the cluster: this process's
// counters (checkpoints and snapshots ride the same data plane) plus
// every worker's, deduplicated by owning process so in-process workers —
// which share this process's global counters — are counted once. Worker
// stats are best effort: a worker mid-restart is skipped, not an error.
func (m *Master) CommStats() metrics.CommSnapshot {
	m.mu.RLock()
	refs := append([]workerRef(nil), m.workers...)
	m.mu.RUnlock()
	perProcess := map[string]metrics.CommSnapshot{
		metrics.ProcessID(): metrics.Comm.Snapshot(),
	}
	for _, r := range refs {
		st, err := rpc.Invoke[worker.StatsArgs, worker.StatsReply](r.client,
			worker.MethodStats, worker.StatsArgs{SpanAfter: worker.SpanCursorNone},
			time.Minute)
		if err != nil {
			continue
		}
		perProcess[st.CommProcess] = st.Comm
	}
	var sum metrics.CommSnapshot
	for _, s := range perProcess {
		sum = sum.Add(s)
	}
	return sum
}

// CompStats sums compute-path health (decoded-block cache hits/misses,
// reload-stall seconds) across the cluster with the same per-process
// deduplication and best-effort semantics as CommStats.
func (m *Master) CompStats() metrics.CompSnapshot {
	m.mu.RLock()
	refs := append([]workerRef(nil), m.workers...)
	m.mu.RUnlock()
	perProcess := map[string]metrics.CompSnapshot{
		metrics.ProcessID(): metrics.Comp.Snapshot(),
	}
	for _, r := range refs {
		st, err := rpc.Invoke[worker.StatsArgs, worker.StatsReply](r.client,
			worker.MethodStats, worker.StatsArgs{SpanAfter: worker.SpanCursorNone},
			time.Minute)
		if err != nil {
			continue
		}
		perProcess[st.CommProcess] = st.Comp
	}
	var sum metrics.CompSnapshot
	for _, s := range perProcess {
		sum = sum.Add(s)
	}
	return sum
}

// Close releases all barriers with Stop and shuts the master down.
func (m *Master) Close() {
	// Signal the drainer first; it exits after at most one more round
	// (each round re-checks m.closed under the lock).
	m.drainStopOnce.Do(func() { close(m.drainStop) })
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	psStop := m.psStop
	m.psStop = nil
	for _, j := range m.jobs {
		for _, bs := range j.barriers {
			for _, ch := range bs.waiters {
				ch <- worker.Stop
			}
		}
		j.barriers = make(map[int]*barrierState)
	}
	clients := make([]*rpc.Client, 0, len(m.workers))
	for _, w := range m.workers {
		clients = append(clients, w.client)
	}
	m.mu.Unlock()
	if psStop != nil {
		close(psStop)
	}
	m.psWG.Wait()
	for _, c := range clients {
		c.Close()
	}
	m.srv.Close()
}
