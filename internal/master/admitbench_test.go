package master

import "testing"

// TestAdmitBenchSmall runs the -bench-admit harness at toy scale in both
// modes, pinning the invariants the full-scale run relies on: the seed
// waves all place, the flood all holds, churn rounds admit from the
// queue, and the fast path performs zero full-plan Score recomputations
// across flood and churn.
func TestAdmitBenchSmall(t *testing.T) {
	cfg := AdmitBenchConfig{Workers: 40, Groups: 4, HeldJobs: 60, ChurnRounds: 2}
	for _, legacy := range []bool{false, true} {
		cfg.Legacy = legacy
		res, err := RunAdmitBench(cfg)
		if err != nil {
			t.Fatalf("legacy=%v: %v", legacy, err)
		}
		if res.Admissions < int64(cfg.ChurnRounds) {
			t.Errorf("legacy=%v: %d admissions over %d churn rounds, want >= %d",
				legacy, res.Admissions, cfg.ChurnRounds, cfg.ChurnRounds)
		}
		if !legacy && res.FullScoreCalls != 0 {
			t.Errorf("fast path performed %d full Score calls, want 0", res.FullScoreCalls)
		}
		if legacy && res.FullScoreCalls == 0 {
			t.Error("legacy path performed no full Score calls; baseline is not exercising clone-and-rescore")
		}
		if res.EnqueueP99Micros < res.EnqueueP50Micros {
			t.Errorf("legacy=%v: p99 %v < p50 %v", legacy, res.EnqueueP99Micros, res.EnqueueP50Micros)
		}
	}
}
