package master

import (
	"fmt"
	"sort"
	"sync"
	"testing"
	"time"

	"harmony/internal/core"
	"harmony/internal/mlapp"
)

// TestAdmitZeroFullScoreRecomputations pins the fast path's core
// invariant (DESIGN.md §15): an admission decision — admitted or held,
// including its journal stamp — performs zero full-plan Options.Score
// evaluations. Everything reads the Scorer's cached aggregates.
func TestAdmitZeroFullScoreRecomputations(t *testing.T) {
	m := cluster(t, 2)

	before := core.FullScoreCalls()
	adm, err := m.Enqueue(spec("a", mlapp.MLR, 100000), Profile{})
	if err != nil {
		t.Fatal(err)
	}
	if !adm.Admitted {
		t.Fatalf("idle-cluster admission = %+v, want admitted", adm)
	}
	if d := core.FullScoreCalls() - before; d != 0 {
		t.Fatalf("initial admission performed %d full Score calls, want 0", d)
	}

	// A held decision walks the arrival rule over the live plan — the hot
	// path at scale — and must also stay incremental.
	before = core.FullScoreCalls()
	adm, err = m.Enqueue(spec("b", mlapp.Lasso, 5), Profile{})
	if err != nil {
		t.Fatal(err)
	}
	if adm.Admitted {
		t.Fatal("unprofiled job admitted into a busy cluster")
	}
	if d := core.FullScoreCalls() - before; d != 0 {
		t.Fatalf("held admission performed %d full Score calls, want 0", d)
	}
	if err := m.Cancel("a"); err != nil {
		t.Fatal(err)
	}
}

// TestWakeDrainerCoalesces pins the one-pending-wakeup latch: any burst
// of wakeups collapses into at most one queued drain pass, and none of
// the sends block.
func TestWakeDrainerCoalesces(t *testing.T) {
	m := &Master{drainCh: make(chan struct{}, 1)}
	done := make(chan struct{})
	go func() {
		for i := 0; i < 1000; i++ {
			m.wakeDrainer()
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("wakeDrainer blocked")
	}
	if n := len(m.drainCh); n != 1 {
		t.Fatalf("pending wakeups = %d, want exactly 1", n)
	}
}

// TestWorkerSetKeyOrder pins that the compact group key sorts in numeric
// index order — the property the old fmt.Sprint key lost past ten
// workers, where "10" sorted before "9".
func TestWorkerSetKeyOrder(t *testing.T) {
	sets := [][]int{{9}, {10}, {2, 3}, {1, 10}, {1, 9}, {0, 1, 2}, {256}, {129}}
	keys := make([]string, len(sets))
	for i, s := range sets {
		keys[i] = workerSetKey(s)
	}
	sort.Strings(keys)
	wantOrder := [][]int{{0, 1, 2}, {1, 9}, {1, 10}, {2, 3}, {9}, {10}, {129}, {256}}
	for i, want := range wantOrder {
		if keys[i] != workerSetKey(want) {
			t.Fatalf("sorted key %d is not for %v", i, want)
		}
	}
	if workerSetKey([]int{1, 2}) == workerSetKey([]int{1, 3}) {
		t.Fatal("distinct sets share a key")
	}
}

// TestAdmitLegacyParity evaluates the same candidate stream against the
// same locked master state through the fast path and through the
// retained clone-and-rescore baseline, asserting decisions — placement,
// initial flag, hold reason, and the journal prediction — are
// bit-identical. Holding mu across both evaluations freezes the live
// profiles, so the comparison is exact, not timing-dependent.
func TestAdmitLegacyParity(t *testing.T) {
	m := cluster(t, 2)
	if _, err := m.Enqueue(spec("seed", mlapp.MLR, 100000),
		Profile{CompSeconds: 4, NetSeconds: 1}); err != nil {
		t.Fatal(err)
	}
	m.mu.Lock()
	for i := 0; i < 8; i++ {
		s := spec(fmt.Sprintf("cand%d", i), mlapp.MLR, 10)
		info := Profile{CompSeconds: 0.5 * float64(i), NetSeconds: 0.25}.info(s.Name)
		m.legacyAdmission = false
		m.planMu.Lock()
		m.planCache = nil
		m.planMu.Unlock()
		m.admitEpoch++
		gF, pF, iF, okF, rF := m.admitLocked(s, info)
		m.legacyAdmission = true
		gL, pL, iL, okL, rL := m.admitLocked(s, info)
		m.legacyAdmission = false
		if okF != okL || iF != iL || rF != rL {
			t.Fatalf("cand%d verdict diverged: fast (%v,%v,%q), legacy (%v,%v,%q)",
				i, okF, iF, rF, okL, iL, rL)
		}
		if fmt.Sprint(gF) != fmt.Sprint(gL) {
			t.Fatalf("cand%d placement diverged: fast %v, legacy %v", i, gF, gL)
		}
		if pF != pL {
			t.Fatalf("cand%d prediction diverged: fast %+v, legacy %+v", i, pF, pL)
		}
	}
	m.mu.Unlock()
	_ = m.Cancel("seed")
}

// TestAdmitSmokeConcurrentChurn hammers the admission write path while
// the read-mostly status surfaces poll concurrently; run under -race it
// checks the RWMutex split and the plan cache's locking discipline.
func TestAdmitSmokeConcurrentChurn(t *testing.T) {
	m := cluster(t, 2)
	const jobs = 12
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				_ = m.ListJobs()
				_ = m.Cluster()
				_ = m.Counters()
				_ = m.Queues()
				_ = m.Events()
				_ = m.QueueDepth()
			}
		}()
	}
	for i := 0; i < jobs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			name := fmt.Sprintf("churn%d", i)
			_, err := m.Enqueue(spec(name, mlapp.MLR, 100000),
				Profile{CompSeconds: 2, NetSeconds: 1})
			if err != nil {
				t.Error(err)
				return
			}
			_ = m.Cancel(name)
		}(i)
	}
	waitDone := make(chan struct{})
	go func() { wg.Wait(); close(waitDone) }()
	// Writers finish, then readers are told to stop.
	time.Sleep(50 * time.Millisecond)
	close(stop)
	select {
	case <-waitDone:
	case <-time.After(60 * time.Second):
		t.Fatal("churn deadlocked")
	}
	for i := 0; i < jobs; i++ {
		_ = m.Cancel(fmt.Sprintf("churn%d", i))
	}
}
