package master

import (
	"harmony/internal/core"
	"harmony/internal/fair"
)

// This file is the master half of the admission fast path (DESIGN.md
// §15): the cached live plan and its Scorer, the epoch-versioned
// admission-input snapshots, the pending-queue index, and the single
// coalescing drainer goroutine. The core half (incremental scoring) lives
// in internal/core/score.go.

// livePlanCache holds the derived scheduler view of the running cluster.
// Guarded by Master.planMu; cleared (never mutated in place) by
// invalidatePlanLocked. The scorer is built lazily on the first admission
// against this plan and is only ever used under mu's write side — Scorer
// methods mutate internal scratch space.
type livePlanCache struct {
	plan    core.Plan
	members [][]string
	scorer  *core.Scorer
}

// invalidatePlanLocked drops the cached live plan and advances the
// admission epoch. Callers hold mu's write side and invoke it after any
// mutation that changes the derived plan: deploy, migrate, recover,
// completion, cancel of a running job, preemption, worker removal, or a
// profile observation (profiled metrics feed jobInfoLocked).
func (m *Master) invalidatePlanLocked() {
	m.planMu.Lock()
	m.planCache = nil
	m.planMu.Unlock()
	m.admitEpoch++
}

// workerSetKey packs sorted worker indexes into a compact fixed-width
// big-endian byte string. Lexicographic order over these keys equals
// numeric order over the index tuples, so the group order derived from
// sorting them is deterministic for a fixed cluster state — the property
// the old fmt.Sprint key provided at ~10x the allocation cost (and, past
// ten workers, with an order that depended on decimal digit counts).
func workerSetKey(idxs []int) string {
	b := make([]byte, 4*len(idxs))
	for i, wi := range idxs {
		b[4*i] = byte(wi >> 24)
		b[4*i+1] = byte(wi >> 16)
		b[4*i+2] = byte(wi >> 8)
		b[4*i+3] = byte(wi)
	}
	return string(b)
}

// livePlanLocked returns the scheduler's view of the running cluster:
// jobs sharing a worker set form one group whose DoP is the set size,
// with a parallel slice mapping each group to its worker names. The
// result is served from the plan cache when valid and rebuilt under
// planMu otherwise; callers hold at least mu's read side and must treat
// the returned plan and members as immutable. Builders hold ≥RLock while
// storing, and invalidators hold the write lock, so a stale build can
// never overwrite a newer invalidation.
func (m *Master) livePlanLocked() (core.Plan, [][]string) {
	if m.legacyAdmission {
		return m.buildLivePlanLocked()
	}
	m.planMu.Lock()
	defer m.planMu.Unlock()
	if c := m.planCache; c != nil {
		return c.plan, c.members
	}
	plan, members := m.buildLivePlanLocked()
	m.planCache = &livePlanCache{plan: plan, members: members}
	return plan, members
}

// planScorerLocked returns the cached plan together with its Scorer,
// building the Scorer on first use per plan epoch. Callers hold mu's
// WRITE side: the Scorer reuses scratch space and is not safe for
// concurrent use, so only the serialized mutation paths (admission,
// journal stamping) may touch it.
func (m *Master) planScorerLocked() (core.Plan, [][]string, *core.Scorer) {
	plan, members := m.livePlanLocked()
	if m.legacyAdmission {
		return plan, members, core.NewScorer(plan, m.opts)
	}
	m.planMu.Lock()
	defer m.planMu.Unlock()
	if c := m.planCache; c != nil {
		if c.scorer == nil {
			c.scorer = core.NewScorer(c.plan, m.opts)
		}
		return c.plan, c.members, c.scorer
	}
	// The cache was dropped between the two planMu sections; impossible
	// while the caller holds the write lock, but rebuild defensively.
	return plan, members, core.NewScorer(plan, m.opts)
}

// admitInputsLocked returns the fair-policy inputs of an admission
// decision — per-queue usage, the free-worker list, and the held-queue
// view — cached per admission epoch. A drain pass over a 10K-deep queue
// reuses one snapshot for every candidate instead of rebuilding all
// three per candidate. Callers hold mu's write side (the cache fields
// are written here); the returned values are read-only.
func (m *Master) admitInputsLocked() (fair.Usage, []string, []fair.Held) {
	if m.inputEpoch != m.admitEpoch || m.usageCache == nil {
		m.usageCache = m.usageLocked()
		m.freeCache = m.freeWorkersLocked()
		m.heldCache = m.heldLocked()
		m.inputEpoch = m.admitEpoch
	}
	if m.legacyAdmission {
		// The baseline pays exactly its historical costs: usage and the
		// free list were rebuilt for every admission decision, while the
		// held view was snapshotted once per drain pass (it only changes
		// when the pending queue does, which also moves the epoch).
		return m.usageLocked(), m.freeWorkersLocked(), m.heldCache
	}
	return m.usageCache, m.freeCache, m.heldCache
}

// addPendingLocked appends a held job to the queue, indexes it by name,
// and advances the admission epoch (a new hold changes BorrowGated for
// every queue, so cached reject verdicts must expire).
func (m *Master) addPendingLocked(p *pendingJob) {
	m.pending = append(m.pending, p)
	m.pendingIdx[p.spec.Name] = p
	m.admitEpoch++
	if !m.legacyAdmission && m.usageCache != nil && m.inputEpoch == m.admitEpoch-1 {
		// The queue append is the only input this bump covers: extend the
		// held snapshot in place instead of rebuilding all three inputs on
		// the next decision. Under an arrival flood this keeps each
		// Enqueue O(groups) instead of O(queue depth).
		m.heldCache = append(m.heldCache, fair.Held{
			Job: p.spec.Name, Queue: p.queue, Priority: p.priority,
			Seq: p.seq, Demand: p.demand(), Resumable: p.resume != nil,
		})
		m.inputEpoch = m.admitEpoch
	}
}

// wakeDrainer requests a drain pass. The 1-buffered channel coalesces
// bursts: any number of wakeups while a pass runs collapse into exactly
// one follow-up pass, replacing the historical goroutine-per-event
// `go m.drainQueue()` storm.
func (m *Master) wakeDrainer() {
	select {
	case m.drainCh <- struct{}{}:
	default:
	}
}

// drainLoop is the single long-lived drainer goroutine, started by New
// and stopped by Close.
func (m *Master) drainLoop() {
	for {
		select {
		case <-m.drainStop:
			return
		case <-m.drainCh:
			m.drainQueue()
		}
	}
}

// SetLegacyAdmission toggles the pre-§15 clone-and-rescore admission
// path (full plan rebuild and full-plan rescoring per candidate, fresh
// fair-policy inputs per decision, no reject-verdict cache). Decisions
// are bit-identical either way; the A/B benchmark uses the toggle to
// measure the fast path's speedup against an unchanged baseline.
func (m *Master) SetLegacyAdmission(on bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.legacyAdmission = on
	m.invalidatePlanLocked()
}
