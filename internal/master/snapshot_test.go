package master

import (
	"encoding/json"
	"testing"
	"time"

	"harmony/internal/mlapp"
)

// TestSnapshotCapture pins the capture contract on a live cluster: the
// snapshot is versioned, schema-valid, carries the workers, the running
// jobs with their cost metrics, the queue policy, and the decision
// journal, and survives a JSON round trip unchanged.
func TestSnapshotCapture(t *testing.T) {
	m := cluster(t, 3)
	prof := Profile{CompSeconds: 3, NetSeconds: 0.5, ModelGB: 0.2, WorkGB: 0.1}
	for _, name := range []string{"snap-a", "snap-b"} {
		adm, err := m.Enqueue(spec(name, mlapp.MLR, 200), prof)
		if err != nil {
			t.Fatal(err)
		}
		if !adm.Admitted {
			t.Fatalf("%s held, want admitted on an idle cluster", name)
		}
	}
	// Let a few iterations land so measured values and profiles exist.
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		_, iter, _, err := m.Status("snap-a")
		if err != nil {
			t.Fatal(err)
		}
		if iter >= 3 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}

	snap, err := m.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if snap.SchemaVersion != SnapshotSchemaVersion {
		t.Fatalf("schema version = %d, want %d", snap.SchemaVersion, SnapshotSchemaVersion)
	}
	if err := snap.Validate(); err != nil {
		t.Fatalf("fresh snapshot invalid: %v", err)
	}
	if len(snap.Workers) != 3 {
		t.Fatalf("workers = %v, want 3", snap.Workers)
	}
	if snap.CapturedAt.IsZero() {
		t.Error("snapshot missing capture time")
	}
	jobs := make(map[string]SnapshotJob)
	for _, j := range snap.Jobs {
		jobs[j.Name] = j
	}
	for _, name := range []string{"snap-a", "snap-b"} {
		j, ok := jobs[name]
		if !ok {
			t.Fatalf("snapshot missing job %s", name)
		}
		if j.State != "running" {
			t.Errorf("%s state = %q, want running", name, j.State)
		}
		if j.CompSeconds <= 0 || j.NetSeconds <= 0 {
			t.Errorf("%s cost view = (%v, %v), want positive", name, j.CompSeconds, j.NetSeconds)
		}
		if j.Algorithm != "MLR" {
			t.Errorf("%s algorithm = %q", name, j.Algorithm)
		}
		if len(j.Workers) == 0 {
			t.Errorf("%s has no placement", name)
		}
	}
	if len(snap.Queues) == 0 {
		t.Error("snapshot missing queue policy")
	}
	if len(snap.Journal) == 0 {
		t.Error("snapshot missing decision journal")
	}
	if len(snap.Groups) == 0 {
		t.Error("snapshot missing live plan groups")
	}

	// Round trip: a decoded snapshot must validate and keep the journal.
	b, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if err := back.Validate(); err != nil {
		t.Fatalf("round-tripped snapshot invalid: %v", err)
	}
	if len(back.Journal) != len(snap.Journal) {
		t.Fatalf("round trip lost journal events: %d != %d", len(back.Journal), len(snap.Journal))
	}
}

// TestSnapshotValidate pins the schema checks replay relies on.
func TestSnapshotValidate(t *testing.T) {
	base := func() Snapshot {
		return Snapshot{
			SchemaVersion: SnapshotSchemaVersion,
			Workers:       []string{"w0", "w1"},
			Jobs:          []SnapshotJob{{Name: "a", Workers: []string{"w0"}}},
			Groups:        []SnapshotGroup{{Workers: []string{"w0"}, Jobs: []string{"a"}}},
			Journal:       []Event{{Seq: 1, Kind: EventAdmitInitial, Job: "a"}, {Seq: 2, Kind: EventComplete, Job: "a"}},
		}
	}
	ok := base()
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid snapshot rejected: %v", err)
	}

	cases := []struct {
		name   string
		mutate func(*Snapshot)
	}{
		{"wrong version", func(s *Snapshot) { s.SchemaVersion = SnapshotSchemaVersion + 1 }},
		{"duplicate worker", func(s *Snapshot) { s.Workers = []string{"w0", "w0"} }},
		{"duplicate job", func(s *Snapshot) { s.Jobs = append(s.Jobs, SnapshotJob{Name: "a"}) }},
		{"empty job name", func(s *Snapshot) { s.Jobs = append(s.Jobs, SnapshotJob{}) }},
		{"job on unknown worker", func(s *Snapshot) { s.Jobs[0].Workers = []string{"nope"} }},
		{"group with unknown worker", func(s *Snapshot) { s.Groups[0].Workers = []string{"nope"} }},
		{"group with unknown job", func(s *Snapshot) { s.Groups[0].Jobs = []string{"nope"} }},
		{"journal seq regression", func(s *Snapshot) { s.Journal[1].Seq = 1 }},
	}
	for _, tc := range cases {
		s := base()
		tc.mutate(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s: Validate accepted a broken snapshot", tc.name)
		}
	}
}
