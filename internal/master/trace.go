package master

import (
	"sort"
	"strings"
	"sync"
	"time"

	"harmony/internal/metrics"
	"harmony/internal/obs"
	"harmony/internal/rpc"
	"harmony/internal/worker"
)

// collectTimeout bounds telemetry Stats calls. It is much shorter than
// the aggregators' minute so a /v1/trace or /metrics scrape cannot park
// behind a dead worker; the scrape just misses that worker's spans.
const collectTimeout = 5 * time.Second

// DefaultTraceRetention is how many tagged spans the master retains
// across collections when tracing is enabled.
const DefaultTraceRetention = 1 << 17

// traceState accumulates spans pulled from workers. Per-worker cursors
// make collection incremental: each Stats call only ships spans recorded
// since the previous collection.
type traceState struct {
	mu        sync.Mutex
	cursors   map[string]uint64
	spans     []obs.TaggedSpan
	retention int
}

// EnableTracing turns on cluster span collection, retaining up to
// retention spans (<= 0 selects DefaultTraceRetention). Workers record
// spans only when started with tracing themselves; the master simply
// collects whatever they report.
func (m *Master) EnableTracing(retention int) {
	if retention <= 0 {
		retention = DefaultTraceRetention
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.trace == nil {
		m.trace = &traceState{cursors: make(map[string]uint64), retention: retention}
	}
}

// TracingEnabled reports whether the master collects spans.
func (m *Master) TracingEnabled() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.trace != nil
}

// workerNamesLocked lists a job's current worker names.
func (m *Master) workerNamesLocked(j *job) []string {
	names := make([]string, len(j.workers))
	for i, wi := range j.workers {
		names[i] = m.workers[wi].name
	}
	return names
}

// groupNamesLocked maps every deployed job to its group label: the
// comma-joined sorted names of its current worker set.
func (m *Master) groupNamesLocked() map[string]string {
	out := make(map[string]string, len(m.jobs))
	for name, j := range m.jobs {
		names := make([]string, len(j.workers))
		for i, wi := range j.workers {
			names[i] = m.workers[wi].name
		}
		sort.Strings(names)
		out[name] = strings.Join(names, ",")
	}
	return out
}

// CollectSpans pulls new spans from every worker (best effort: a worker
// mid-restart is skipped) into the bounded retention buffer and returns
// a snapshot of all retained spans, tagged with the recording machine
// and the job's current group. Returns nil when tracing is disabled.
func (m *Master) CollectSpans() []obs.TaggedSpan {
	m.mu.Lock()
	t := m.trace
	if t == nil {
		m.mu.Unlock()
		return nil
	}
	refs := append([]workerRef(nil), m.workers...)
	groups := m.groupNamesLocked()
	m.mu.Unlock()

	type haul struct {
		machine string
		spans   []obs.Span
	}
	hauls := make([]haul, 0, len(refs))
	for _, r := range refs {
		t.mu.Lock()
		cursor := t.cursors[r.name]
		t.mu.Unlock()
		st, err := rpc.Invoke[worker.StatsArgs, worker.StatsReply](r.client,
			worker.MethodStats, worker.StatsArgs{SpanAfter: cursor}, collectTimeout)
		if err != nil {
			continue
		}
		hauls = append(hauls, haul{machine: r.name, spans: st.Spans})
	}

	t.mu.Lock()
	defer t.mu.Unlock()
	for _, h := range hauls {
		for _, s := range h.spans {
			if s.Seq > t.cursors[h.machine] {
				t.cursors[h.machine] = s.Seq
			}
			t.spans = append(t.spans, obs.TaggedSpan{
				Span: s, Machine: h.machine, Group: groups[s.Job],
			})
		}
	}
	if over := len(t.spans) - t.retention; over > 0 {
		t.spans = append(t.spans[:0], t.spans[over:]...)
	}
	return append([]obs.TaggedSpan(nil), t.spans...)
}

// PhaseStats aggregates per-phase latency histograms across workers
// (best effort, like the other Stats aggregators). ok is false when
// tracing is disabled on this master.
func (m *Master) PhaseStats() (hist [obs.NumPhases]metrics.HistSnapshot, ok bool) {
	m.mu.Lock()
	enabled := m.trace != nil
	refs := append([]workerRef(nil), m.workers...)
	m.mu.Unlock()
	if !enabled {
		return hist, false
	}
	for _, r := range refs {
		st, err := rpc.Invoke[worker.StatsArgs, worker.StatsReply](r.client,
			worker.MethodStats, worker.StatsArgs{SpanAfter: worker.SpanCursorNone},
			collectTimeout)
		if err != nil {
			continue
		}
		for p := 0; p < int(obs.NumPhases); p++ {
			hist[p] = hist[p].Add(st.PhaseHist[p])
		}
	}
	return hist, true
}

// MeasuredOverlap reports, per co-location group, the measured fraction
// of machine busy time where COMP and COMM subtasks ran simultaneously —
// the live counterpart of the model's utilization claim. Collection runs
// first so the measure covers the freshest spans; nil when tracing is
// disabled.
func (m *Master) MeasuredOverlap() map[string]float64 {
	spans := m.CollectSpans()
	if spans == nil {
		return nil
	}
	ratio, ok := obs.OverlapByGroup(spans)
	// Each scrape doubles as a calibration sample for the interleaving
	// layer: measured overlap recalibrates predicted compatibility
	// (no-op when the net model is off).
	m.recalibrateInterleave(ratio, ok)
	return ratio
}
