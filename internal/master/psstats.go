package master

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"harmony/internal/ps"
	"harmony/internal/rpc"
	"harmony/internal/worker"
)

// This file is the master half of the elastic parameter service
// (DESIGN.md §12): scraping per-stripe load off every worker's
// co-located PS, driving the hot-stripe rebalancer on a cadence, and
// growing/shrinking a job's server set with live stripe migration.

// PSStats scrapes per-stripe parameter-server statistics from every
// registered worker (each worker co-hosts a PS on its RPC address).
// Scraping is best-effort per worker — one mid-restart worker must not
// blank the cluster view — but an empty result with failures reports
// the first error.
func (m *Master) PSStats() (ps.ClusterStats, error) {
	m.mu.Lock()
	refs := append([]workerRef(nil), m.workers...)
	m.mu.Unlock()
	if len(refs) == 0 {
		return ps.ClusterStats{}, errors.New("master: no workers")
	}
	var cs ps.ClusterStats
	var firstErr error
	for _, r := range refs {
		reply, err := rpc.Invoke[ps.StatsArgs, ps.StatsReply](r.client,
			ps.MethodStats, ps.StatsArgs{}, time.Minute)
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("master: ps stats from %s (%s): %w", r.name, r.addr, err)
			}
			continue
		}
		cs.Servers = append(cs.Servers, ps.ServerStats{
			Name: r.name, Addr: r.addr, StatsReply: reply,
		})
	}
	if len(cs.Servers) == 0 && firstErr != nil {
		return cs, firstErr
	}
	return cs, nil
}

// psConnLocked returns a ConnFunc resolving PS addresses to the
// master's existing worker connections (the PS shares the worker's RPC
// server, so no extra dials are needed).
func (m *Master) psConn() ps.ConnFunc {
	return func(addr string) (*rpc.Client, error) {
		m.mu.Lock()
		defer m.mu.Unlock()
		for _, w := range m.workers {
			if w.addr == addr {
				return w.client, nil
			}
		}
		return nil, fmt.Errorf("master: no worker at %s", addr)
	}
}

// RebalancePS runs one observe-plan-execute round of the hot-stripe
// rebalancer and returns the planned moves and how many executed. Each
// running job's stripes are only (re)placed within that job's own
// server set: its PS clients refresh routes against those servers
// alone, so a stripe parked anywhere else would be unreachable. Safe to
// call concurrently with the background loop; whole rounds serialize
// with each other and with ResizeJobServers on psOpMu.
func (m *Master) RebalancePS(opts ps.PlanOptions) ([]ps.Move, int, error) {
	cs, err := m.PSStats()
	if err != nil {
		return nil, 0, err
	}
	m.psOpMu.Lock()
	defer m.psOpMu.Unlock()

	m.mu.Lock()
	domains := make(map[string][]string, len(m.jobs))
	for name, j := range m.jobs {
		if j.status == StatusRunning {
			domains[name] = m.serverAddrsLocked(j)
		}
	}
	m.mu.Unlock()

	m.psMu.Lock()
	if m.balancer == nil {
		m.balancer = ps.NewBalancer(0)
	}
	m.balancer.Observe(cs)
	moves := m.balancer.PlanJobs(domains, opts)
	m.psMu.Unlock()
	if len(moves) == 0 {
		return nil, 0, nil
	}
	executed, execErr := ps.ExecuteMoves(m.psConn(), moves, time.Minute)
	done := len(executed)
	m.psMu.Lock()
	m.balancer.CommitMoves(executed)
	m.psMu.Unlock()
	ev := Event{Kind: EventPSRebalance, Note: describeMoves(moves, done)}
	if job, same := singleJob(moves); same {
		ev.Job = job
		ev = m.stampJobPlacement(ev)
	}
	if execErr != nil {
		ev.Note += "; error: " + execErr.Error()
	}
	m.journal.append(ev)
	return moves, done, execErr
}

// singleJob reports the common job of the moves, if they share one.
func singleJob(moves []ps.Move) (string, bool) {
	job := moves[0].Job
	for _, mv := range moves[1:] {
		if mv.Job != job {
			return "", false
		}
	}
	return job, true
}

func describeMoves(moves []ps.Move, done int) string {
	parts := make([]string, len(moves))
	for i, mv := range moves {
		parts[i] = mv.String()
	}
	return fmt.Sprintf("%d/%d executed: %s", done, len(moves), strings.Join(parts, ", "))
}

// StartPSRebalancer launches the background rebalancing loop at the
// given cadence (default 2s); Close stops it. Starting twice is a
// no-op.
func (m *Master) StartPSRebalancer(interval time.Duration, opts ps.PlanOptions) {
	if interval <= 0 {
		interval = 2 * time.Second
	}
	m.mu.Lock()
	if m.closed || m.psStop != nil {
		m.mu.Unlock()
		return
	}
	stop := make(chan struct{})
	m.psStop = stop
	m.mu.Unlock()
	m.psWG.Add(1)
	go func() {
		defer m.psWG.Done()
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-stop:
				return
			case <-ticker.C:
			}
			// Best-effort: a failed round (worker mid-restart) retries at
			// the next tick.
			_, _, _ = m.RebalancePS(opts)
		}
	}()
}

// ResizeJobServers grows or shrinks a running job's parameter-server
// set to the given worker group without stopping the job: servers
// leaving the set are drained (every stripe live-migrated to a
// survivor), then each of the job's workers re-points its PS client at
// the new set. Grown-in servers start empty and fill as the rebalancer
// moves hot stripes onto them.
func (m *Master) ResizeJobServers(name string, group []string) error {
	// Serialize with RebalancePS (psOpMu): a rebalance round planned
	// against the pre-resize server set must not re-place stripes onto a
	// server this resize is draining out of the job.
	m.psOpMu.Lock()
	defer m.psOpMu.Unlock()
	m.mu.Lock()
	j, ok := m.jobs[name]
	if !ok {
		m.mu.Unlock()
		return fmt.Errorf("master: unknown job %q", name)
	}
	if j.status != StatusRunning {
		m.mu.Unlock()
		return fmt.Errorf("master: job %q not running", name)
	}
	idxs, err := m.workerIndexesLocked(group)
	if err != nil {
		m.mu.Unlock()
		return err
	}
	oldSet := m.serverAddrsLocked(j)
	newSet := make([]string, len(idxs))
	for i, wi := range idxs {
		newSet[i] = m.workers[wi].addr
	}
	jobRefs := make([]workerRef, len(j.workers))
	for i, wi := range j.workers {
		jobRefs[i] = m.workers[wi]
	}
	m.mu.Unlock()

	keep := make(map[string]bool, len(newSet))
	for _, a := range newSet {
		keep[a] = true
	}
	var removed []string
	for _, a := range oldSet {
		if !keep[a] {
			removed = append(removed, a)
		}
	}
	if len(removed) == len(oldSet) && len(newSet) == 0 {
		return fmt.Errorf("master: resize of %q would leave no servers", name)
	}
	conn := m.psConn()
	moved := 0
	for _, src := range removed {
		n, err := ps.DrainServer(conn, name, src, newSet, time.Minute)
		moved += n
		if err != nil {
			return fmt.Errorf("master: resize %q: %w", name, err)
		}
	}

	m.mu.Lock()
	if jj, live := m.jobs[name]; live && jj == j {
		j.psServers = append([]string(nil), newSet...)
	}
	m.mu.Unlock()

	// Re-point every worker's PS client; stripes already drained, so a
	// worker that raced ahead just follows moved-stripe redirects.
	var firstErr error
	for _, r := range jobRefs {
		if _, err := rpc.Invoke[worker.UpdatePSArgs, worker.Ack](r.client,
			worker.MethodUpdatePS, worker.UpdatePSArgs{Job: name, Servers: newSet},
			time.Minute); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("master: update ps on %s: %w", r.name, err)
		}
	}
	sort.Strings(group)
	ev := m.stampJobPlacement(Event{Kind: EventPSResize, Job: name, Group: group,
		Note: fmt.Sprintf("servers %d -> %d, %d stripes drained", len(oldSet), len(newSet), moved)})
	if firstErr != nil {
		ev.Note += "; error: " + firstErr.Error()
	}
	m.journal.append(ev)
	return firstErr
}
