package master

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"harmony/internal/fair"
	"harmony/internal/mlapp"
)

// fairSpec is spec() plus fair-scheduler coordinates.
func fairSpec(name string, iters int, queue string, min, max int) JobSpec {
	s := spec(name, mlapp.MLR, iters)
	s.Queue = queue
	s.MinWorkers = min
	s.MaxWorkers = max
	return s
}

func pollUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestFairGangAtomicOrHold pins the KAI-style gang rule: a job whose
// MinWorkers cannot be satisfied holds in full — it is never started on
// a partial worker set — and places atomically once capacity frees.
func TestFairGangAtomicOrHold(t *testing.T) {
	m := cluster(t, 2)
	if err := m.Submit(spec("a", mlapp.MLR, 100000), []string{"w0"}); err != nil {
		t.Fatal(err)
	}
	adm, err := m.Enqueue(fairSpec("gang", 6, "", 2, 2), Profile{})
	if err != nil {
		t.Fatal(err)
	}
	if adm.Admitted {
		t.Fatal("gang of 2 admitted with only 1 free worker")
	}
	v, ok := m.Job("gang")
	if !ok || v.State != "pending" {
		t.Fatalf("Job(gang) = %+v, %v", v, ok)
	}
	if v.HoldReason != fair.HoldNoGang {
		t.Errorf("hold reason = %q, want %q", v.HoldReason, fair.HoldNoGang)
	}
	if v.QueuePosition != 1 {
		t.Errorf("queue position = %d, want 1", v.QueuePosition)
	}
	// The default queue owns the whole cluster, so reclaim never fires
	// for it (admitting the gang would leave the queue over its own
	// quota); the hold persists until capacity genuinely frees.
	if c := m.Counters(); c.Preempted != 0 {
		t.Fatalf("reclaim preempted %d jobs inside a single queue", c.Preempted)
	}
	if err := m.Cancel("a"); err != nil {
		t.Fatal(err)
	}
	pollUntil(t, "gang admission", func() bool {
		v, ok := m.Job("gang")
		return ok && v.State != "pending"
	})
	v, _ = m.Job("gang")
	if len(v.Workers) != 2 {
		t.Fatalf("gang placed on %v, want both workers atomically", v.Workers)
	}
	if err := m.WaitJob("gang", 60*time.Second); err != nil {
		t.Fatal(err)
	}
}

// TestFairPreemptionBitIdenticalResume is the end-to-end multi-tenant
// story on a live cluster: tenantB's flood borrows the whole cluster,
// tenantA's gang reclaims it back to the 70/30 split through the
// pause/checkpoint path, every surface reflects the transitions, and
// the preempted jobs resume bit-identically — their final losses equal
// the never-preempted control job with the same spec and shard count.
func TestFairPreemptionBitIdenticalResume(t *testing.T) {
	m := cluster(t, 3)
	if err := m.ConfigureQueues(
		fair.QueueConfig{Name: "tenantA", Quota: 0.7},
		fair.QueueConfig{Name: "tenantB", Quota: 0.3},
	); err != nil {
		t.Fatal(err)
	}

	// tenantB floods: three identical single-worker jobs take the whole
	// cluster (borrowing is work-conserving while nothing else waits).
	for _, name := range []string{"b1", "b2", "b3"} {
		adm, err := m.Enqueue(fairSpec(name, 2000, "tenantB", 1, 1), Profile{})
		if err != nil {
			t.Fatal(err)
		}
		if !adm.Admitted || len(adm.Workers) != 1 {
			t.Fatalf("%s admission = %+v, want 1 worker", name, adm)
		}
	}
	// Let the victims make some progress so the preempt journal entries
	// carry measured values and the resume genuinely mid-flight.
	for _, name := range []string{"b1", "b2", "b3"} {
		pollUntil(t, name+" progress", func() bool {
			_, iter, _, err := m.Status(name)
			return err == nil && iter >= 3
		})
	}

	// tenantA's gang of 2 arrives: it is under quota (2 <= 70% of 3)
	// and nothing is free, so the fair scheduler must reclaim the two
	// most recently started tenantB jobs and place the gang atomically.
	if _, err := m.Enqueue(fairSpec("gang", 100000, "tenantA", 2, 2), Profile{}); err != nil {
		t.Fatal(err)
	}
	pollUntil(t, "gang admission via reclaim", func() bool {
		v, ok := m.Job("gang")
		return ok && v.State == "running"
	})
	v, _ := m.Job("gang")
	if len(v.Workers) != 2 {
		t.Fatalf("gang running on %v, want exactly 2 workers", v.Workers)
	}
	if c := m.Counters(); c.Preempted != 2 {
		t.Fatalf("Preempted = %d, want 2", c.Preempted)
	}
	for _, name := range []string{"b2", "b3"} {
		v, ok := m.Job(name)
		if !ok || v.State != "pending" {
			t.Fatalf("victim %s = %+v, want pending", name, v)
		}
		if v.HoldReason != fair.HoldPreempted || !v.Resumable || v.ResumeIter < 1 {
			t.Errorf("victim %s view = %+v, want preempted+resumable", name, v)
		}
		if v.QueuePosition == 0 {
			t.Errorf("victim %s has no queue position", name)
		}
	}
	if bv, _ := m.Job("b1"); bv.State != "running" {
		t.Errorf("oldest victim candidate b1 = %s, want untouched (priority-then-recency)", bv.State)
	}

	// The per-queue surface reflects the reclaim.
	byName := make(map[string]QueueView)
	for _, q := range m.Queues() {
		byName[q.Name] = q
	}
	qa, qb := byName["tenantA"], byName["tenantB"]
	if qa.QuotaWorkers != 2 || qb.QuotaWorkers != 1 {
		t.Errorf("quota workers = %d/%d, want 2/1", qa.QuotaWorkers, qb.QuotaWorkers)
	}
	if qa.UsageWorkers != 2 || qa.Running != 1 || qa.Depth != 0 {
		t.Errorf("tenantA view = %+v", qa)
	}
	if qb.UsageWorkers != 1 || qb.Running != 1 || qb.Depth != 2 || qb.Preempted != 2 {
		t.Errorf("tenantB view = %+v", qb)
	}

	// Journal: a hold for the gang, two preempts with measured stamps,
	// and the gang's eventual drain admission.
	kinds := make(map[string]int)
	for _, e := range m.Events() {
		kinds[e.Kind]++
		if e.Kind == EventPreempt && e.MeasuredIterSeconds <= 0 {
			t.Errorf("preempt of %s lacks a measured T_itr: %+v", e.Job, e)
		}
	}
	if kinds[EventPreempt] != 2 || kinds[EventHold] < 1 || kinds[EventQueueDrain] < 1 {
		t.Errorf("journal kinds = %v, want 2 preempts, a hold, a drain", kinds)
	}

	// Cancel the gang: capacity frees and the victims resume from their
	// checkpoints. All three tenantB jobs then run to completion.
	if err := m.Cancel("gang"); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"b1", "b2", "b3"} {
		if err := m.WaitJob(name, 120*time.Second); err != nil {
			t.Fatalf("wait %s: %v", name, err)
		}
	}
	resumes := 0
	for _, e := range m.Events() {
		if e.Kind == EventResume {
			resumes++
			if !strings.Contains(e.Note, "resume from checkpoint iteration") {
				t.Errorf("resume note = %q", e.Note)
			}
		}
	}
	if resumes != 2 {
		t.Errorf("resume events = %d, want 2", resumes)
	}

	// Bit-identical resume: all three jobs share spec, seed and shard
	// count (1 worker), so the preempted-and-resumed b2/b3 must land on
	// exactly the loss of the never-preempted b1 — float-equal, no
	// tolerance. A different shard count would reorder FP reductions;
	// the single-worker gang keeps the sum order fixed.
	var losses [3]float64
	for i, name := range []string{"b1", "b2", "b3"} {
		status, iter, loss, err := m.Status(name)
		if err != nil {
			t.Fatal(err)
		}
		if status != StatusFinished || iter != 1999 {
			t.Fatalf("%s = %v at iteration %d, want finished at 1999", name, status, iter)
		}
		losses[i] = loss
	}
	if losses[1] != losses[0] || losses[2] != losses[0] {
		t.Errorf("final losses diverged after preempt/resume: %v", losses)
	}
}

// TestFairHoldReasonsAndCancelHeld pins the hold-reason classification
// and the cancel_held journal event: a gang with no feasible worker set
// holds as no_gang_capacity, an over-quota submission gated by an
// under-quota waiter holds as quota_exhausted, and canceling a held job
// records a distinct journal kind carrying the reason.
func TestFairHoldReasonsAndCancelHeld(t *testing.T) {
	m := cluster(t, 2)
	if err := m.ConfigureQueues(
		fair.QueueConfig{Name: "qa", Quota: 0.5},
		fair.QueueConfig{Name: "qb", Quota: 0.5},
	); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Enqueue(fairSpec("zz", 5, "ghost", 0, 0), Profile{}); !errors.Is(err, ErrUnknownQueue) {
		t.Fatalf("enqueue into unknown queue = %v, want ErrUnknownQueue", err)
	}

	// qb borrows the whole cluster while nothing else waits.
	for _, name := range []string{"b1", "b2"} {
		if adm, err := m.Enqueue(fairSpec(name, 100000, "qb", 1, 1), Profile{}); err != nil || !adm.Admitted {
			t.Fatalf("%s: %+v, %v", name, adm, err)
		}
	}
	// qa's gang of 2 exceeds qa's quota of 1, so reclaim refuses to
	// serve it (it would end over quota) and it holds on gang capacity.
	if _, err := m.Enqueue(fairSpec("a1", 5, "qa", 2, 2), Profile{}); err != nil {
		t.Fatal(err)
	}
	if v, _ := m.Job("a1"); v.HoldReason != fair.HoldNoGang {
		t.Errorf("a1 hold reason = %q, want %q", v.HoldReason, fair.HoldNoGang)
	}
	// A further qb submission is gated: qb is over quota and qa has a
	// held job, so borrowing more is quota_exhausted.
	if _, err := m.Enqueue(fairSpec("b3", 5, "qb", 1, 1), Profile{}); err != nil {
		t.Fatal(err)
	}
	if v, _ := m.Job("b3"); v.HoldReason != fair.HoldQuota {
		t.Errorf("b3 hold reason = %q, want %q", v.HoldReason, fair.HoldQuota)
	}
	// The under-quota queue's job outranks the borrower in line.
	a, _ := m.Job("a1")
	b, _ := m.Job("b3")
	if a.QueuePosition != 1 || b.QueuePosition != 2 {
		t.Errorf("queue positions a1=%d b3=%d, want 1 and 2", a.QueuePosition, b.QueuePosition)
	}

	if err := m.Cancel("a1"); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, e := range m.Events() {
		if e.Kind == EventCancelHeld && e.Job == "a1" {
			found = true
			if !strings.Contains(e.Note, fair.HoldNoGang) {
				t.Errorf("cancel_held note = %q, want the hold reason", e.Note)
			}
		}
	}
	if !found {
		t.Error("no cancel_held journal event for a1")
	}
	for _, q := range m.Queues() {
		if q.Name == "qa" && q.Canceled != 1 {
			t.Errorf("qa canceled_total = %d, want 1", q.Canceled)
		}
	}
}

// TestFairChurnRace is the concurrency property test (run under
// -race by `make fair-smoke`): concurrent Enqueue/Cancel across two
// queues with gangs, natural drains and preemptions must never
// deadlock and never partially place a gang. Policy-order determinism
// is pinned separately by the tick-driven internal/fair experiment
// tests, where timing is simulated; here real scheduling interleaves.
func TestFairChurnRace(t *testing.T) {
	m := cluster(t, 3)
	if err := m.ConfigureQueues(
		fair.QueueConfig{Name: "qa", Quota: 0.6},
		fair.QueueConfig{Name: "qb", Quota: 0.4},
	); err != nil {
		t.Fatal(err)
	}
	const (
		producers = 3
		perWorker = 6
	)
	// minBy records each job's gang size for the atomicity checks; it is
	// fully populated before any read (producers write before sending the
	// name, checks run after wg.Wait).
	var minMu sync.Mutex
	minBy := make(map[string]int)
	var wg sync.WaitGroup
	names := make(chan string, producers*perWorker)
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(p)))
			for i := 0; i < perWorker; i++ {
				name := fmt.Sprintf("j%d-%d", p, i)
				queue := "qa"
				if rng.Intn(2) == 0 {
					queue = "qb"
				}
				min := 1
				if rng.Intn(3) == 0 {
					min = 2
				}
				s := fairSpec(name, 10+rng.Intn(20), queue, min, min)
				s.Priority = rng.Intn(3)
				minMu.Lock()
				minBy[name] = min
				minMu.Unlock()
				if _, err := m.Enqueue(s, Profile{}); err != nil {
					t.Errorf("enqueue %s: %v", name, err)
					continue
				}
				names <- name
				if rng.Intn(4) == 0 {
					// Cancel a recently submitted job: held, running,
					// preempted, or already finished are all legal here.
					if err := m.Cancel(name); err != nil &&
						!errors.Is(err, ErrJobFinished) && !errors.Is(err, ErrUnknownJob) {
						t.Errorf("cancel %s: %v", name, err)
					}
				}
			}
		}(p)
	}

	// Observer: while the churn runs, no deployed gang job may ever be
	// seen on fewer workers than its MinWorkers.
	stop := make(chan struct{})
	var obs sync.WaitGroup
	obs.Add(1)
	go func() {
		defer obs.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, v := range m.ListJobs() {
				if v.State != "running" || !strings.HasPrefix(v.Name, "j") {
					continue
				}
				minMu.Lock()
				min := minBy[v.Name]
				minMu.Unlock()
				if min > 0 && len(v.Workers) < min {
					t.Errorf("job %s running on %d workers, min %d", v.Name, len(v.Workers), min)
				}
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()

	wg.Wait()
	close(names)
	// Every non-canceled job must eventually finish: completions free
	// capacity, drains admit the rest, preempted jobs resume. A hang
	// here is the deadlock this test exists to catch. A name canceled
	// while held leaves no record — ErrUnknownJob is a legal outcome.
	for name := range names {
		if err := m.WaitJob(name, 120*time.Second); err != nil && !errors.Is(err, ErrUnknownJob) {
			t.Fatalf("wait %s: %v", name, err)
		}
	}
	close(stop)
	obs.Wait()

	// Gang atomicity, re-checked against the journal: every placement
	// event for a gang job recorded a full-width group.
	for _, e := range m.Events() {
		switch e.Kind {
		case EventAdmitInitial, EventAdmitArrival, EventQueueDrain, EventResume:
			if min := minBy[e.Job]; min > 0 && len(e.Group) < min {
				t.Errorf("%s of %s placed %d workers, min %d", e.Kind, e.Job, len(e.Group), min)
			}
		}
	}
	// The master is still serviceable after the churn.
	if adm, err := m.Enqueue(fairSpec("after", 5, "qa", 1, 0), Profile{}); err != nil || !adm.Admitted {
		t.Fatalf("post-churn enqueue = %+v, %v", adm, err)
	}
	if err := m.WaitJob("after", 60*time.Second); err != nil {
		t.Fatal(err)
	}
}
