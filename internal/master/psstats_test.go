package master

import (
	"strings"
	"testing"
	"time"

	"harmony/internal/mlapp"
	"harmony/internal/ps"
)

// stripesByServer flattens a cluster scrape into server-name -> stripe
// count for one job.
func stripesByServer(cs ps.ClusterStats, job string) map[string]int {
	out := make(map[string]int)
	for _, srv := range cs.Servers {
		for _, js := range srv.Jobs {
			if js.Job == job {
				out[srv.Name] += len(js.Stripes)
			}
		}
	}
	return out
}

// TestElasticPSResizeLive shrinks a running job's parameter-server set
// to a single worker mid-training: the drained servers' stripes must
// live-migrate to the survivor, the workers must follow, and training
// must still finish.
func TestElasticPSResizeLive(t *testing.T) {
	m := cluster(t, 3)
	if err := m.Submit(spec("nmf", mlapp.NMF, 5000), nil); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		_, iter, _, _ := m.Status("nmf")
		if iter >= 2 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}

	cs, err := m.PSStats()
	if err != nil {
		t.Fatal(err)
	}
	before := stripesByServer(cs, "nmf")
	total := 0
	for _, n := range before {
		total += n
	}
	if total == 0 {
		t.Fatalf("no nmf stripes in scrape: %+v", cs)
	}

	if err := m.ResizeJobServers("nmf", []string{"w0"}); err != nil {
		t.Fatal(err)
	}
	cs, err = m.PSStats()
	if err != nil {
		t.Fatal(err)
	}
	after := stripesByServer(cs, "nmf")
	for srv, n := range after {
		if srv != "w0" && n > 0 {
			t.Errorf("server %s still holds %d nmf stripes after resize (before %+v, after %+v)",
				srv, n, before, after)
		}
	}
	if after["w0"] != total {
		t.Errorf("w0 holds %d stripes after resize, want all %d", after["w0"], total)
	}
	var resized *Event
	for _, ev := range m.Events() {
		if ev.Kind == EventPSResize && ev.Job == "nmf" {
			e := ev
			resized = &e
		}
	}
	if resized == nil {
		t.Fatal("no ps_resize event journaled")
	}
	if !strings.Contains(resized.Note, "-> 1") {
		t.Errorf("resize note = %q, want server count -> 1", resized.Note)
	}

	// Cut the run short; training must complete against the shrunk set.
	_, iter, _, _ := m.Status("nmf")
	m.mu.Lock()
	m.jobs["nmf"].spec.Iterations = iter + 3
	m.mu.Unlock()
	if err := m.WaitJob("nmf", 60*time.Second); err != nil {
		t.Fatal(err)
	}
	if status, _, _, _ := m.Status("nmf"); status != StatusFinished {
		t.Errorf("status after resize = %v, want finished", status)
	}
}

// TestRebalancePSBalanced runs manual rebalance rounds against an
// evenly-loaded live cluster: nothing should move, and the background
// loop must start and stop cleanly under Close.
func TestRebalancePSBalanced(t *testing.T) {
	m := cluster(t, 2)
	if err := m.Submit(spec("mlr", mlapp.MLR, 6), nil); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		moves, done, err := m.RebalancePS(ps.PlanOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if len(moves) != 0 || done != 0 {
			t.Errorf("round %d planned %v on a balanced cluster", i, moves)
		}
	}
	m.StartPSRebalancer(10*time.Millisecond, ps.PlanOptions{})
	m.StartPSRebalancer(10*time.Millisecond, ps.PlanOptions{}) // idempotent
	if err := m.WaitJob("mlr", 60*time.Second); err != nil {
		t.Fatal(err)
	}
	time.Sleep(30 * time.Millisecond) // let the loop take a few ticks
}
