package master

import (
	"sync"
	"time"

	"harmony/internal/core"
)

// Decision kinds recorded in the journal.
const (
	EventAdmitInitial = "admit_initial"
	EventAdmitArrival = "admit_arrival"
	EventHold         = "hold"
	EventQueueDrain   = "queue_drain"
	EventCancel       = "cancel"
	EventMigrate      = "migrate"
	EventRecover      = "recover"
	EventComplete     = "complete"
	EventPSRebalance  = "ps_rebalance"
	EventPSResize     = "ps_resize"
	// EventPreempt and EventResume bracket a fair-scheduler reclaim
	// (DESIGN.md §13): preempt freezes the victim's measured T_itr/U at
	// suspension, resume stamps the model's prediction for the placement
	// the job restores onto.
	EventPreempt = "preempt"
	EventResume  = "resume"
	// EventCancelHeld marks a cancel of a never-admitted held job, so
	// replay can reconstruct queue state without guessing whether the
	// canceled name ever held workers.
	EventCancelHeld = "cancel_held"
	// EventRecalibrate records the interleaving feedback loop (DESIGN.md
	// §14) folding a measured COMP/COMM overlap ratio into a group's
	// predicted link compatibility — the compatibility analogue of the
	// predicted-vs-measured T_itr/U stamps.
	EventRecalibrate = "compat_recalibrate"
)

// Event is one scheduler decision: what the master did with a job, the
// model's predictions for the placement it chose (Eq. 1 and 3), and —
// once the job has run — the measured values beside them, so prediction
// error is auditable per decision rather than in aggregate.
type Event struct {
	Seq  uint64    `json:"seq"`
	Time time.Time `json:"time"`
	Kind string    `json:"kind"`
	Job  string    `json:"job"`
	// Group is the worker set the decision placed the job on (empty for
	// holds and cancels of pending jobs).
	Group []string `json:"group,omitempty"`
	// Predicted values from the §IV-B2 model at decision time: the group
	// iteration seconds T_itr(g) of Eq. 1 and the utilization pair U(g)
	// of Eq. 3 for the group the job joined. Zero when the decision had
	// no placement to model (holds).
	PredictedIterSeconds float64 `json:"predicted_iter_seconds,omitempty"`
	PredictedCPUUtil     float64 `json:"predicted_cpu_util,omitempty"`
	PredictedNetUtil     float64 `json:"predicted_net_util,omitempty"`
	// Measured counterparts: iteration seconds are an EWMA of the wall
	// time between the job's barrier releases; utilization divides the
	// group's profiled subtask seconds by that measured iteration time.
	// Filled at read time while the job runs, frozen into the complete
	// event when it finishes, zero before the first measurement.
	MeasuredIterSeconds float64 `json:"measured_iter_seconds,omitempty"`
	MeasuredCPUUtil     float64 `json:"measured_cpu_util,omitempty"`
	MeasuredNetUtil     float64 `json:"measured_net_util,omitempty"`
	// Compatibility stamps, present only under Options.NetModel: the
	// interleaving solver's predicted link compatibility for the group
	// the decision placed the job on, and the value recalibrated from
	// the measured overlap ratio (recalibrate events).
	PredictedCompatibility float64 `json:"predicted_compatibility,omitempty"`
	MeasuredCompatibility  float64 `json:"measured_compatibility,omitempty"`
	Note                   string  `json:"note,omitempty"`
}

// DefaultJournalCapacity bounds journal retention; older events are
// evicted once the ring is full, keeping the master's footprint constant
// over arbitrarily long runs.
const DefaultJournalCapacity = 512

// journal is a bounded ring of decision events with monotone sequence
// numbers. It has its own lock so appends work both under and outside
// Master.mu.
type journal struct {
	mu   sync.Mutex
	buf  []Event
	next uint64
}

func newJournal(capacity int) *journal {
	if capacity <= 0 {
		capacity = DefaultJournalCapacity
	}
	return &journal{buf: make([]Event, capacity)}
}

// append stamps the event with the next sequence number and the current
// time, evicting the oldest entry when the ring is full.
func (l *journal) append(e Event) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.next++
	e.Seq = l.next
	if e.Time.IsZero() {
		e.Time = time.Now()
	}
	l.buf[(l.next-1)%uint64(len(l.buf))] = e
}

// snapshot returns retained events in sequence order.
func (l *journal) snapshot() []Event {
	return l.snapshotSince(0, "")
}

// snapshotSince returns retained events with Seq > since matching kind
// (every kind when empty), in sequence order. Filtering happens under
// the journal's own lock — never the master's — and bounds the copy to
// the slice actually requested, so an incremental poller pays for its
// delta, not the whole ring.
func (l *journal) snapshotSince(since uint64, kind string) []Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := uint64(len(l.buf))
	lo := uint64(1)
	if l.next > n {
		lo = l.next - n + 1
	}
	if since >= lo {
		lo = since + 1
	}
	if lo > l.next {
		return nil
	}
	out := make([]Event, 0, l.next-lo+1)
	for seq := lo; seq <= l.next; seq++ {
		e := l.buf[(seq-1)%n]
		if kind != "" && e.Kind != kind {
			continue
		}
		out = append(out, e)
	}
	return out
}

// predictedEvent is the one stamping helper shared by every decision
// path that journals a placement (admit, queue drain, migrate, recover,
// ps_rebalance, ps_resize): it fills the Eq. 1/Eq. 3 predictions and,
// under the net model, the group's predicted link compatibility. The
// prediction comes from the admission path's Scorer cache (or
// core.PredictGroup on paths with no cached plan) — the stamp never
// triggers a model recomputation of its own.
func (m *Master) predictedEvent(e Event, p core.GroupPrediction) Event {
	e.PredictedIterSeconds = p.IterSeconds
	e.PredictedCPUUtil, e.PredictedNetUtil = p.CPUUtil, p.NetUtil
	if m.opts.NetModel {
		e.PredictedCompatibility = p.Compatibility
	}
	return e
}

// stampJobPlacementLocked fills the event's predicted fields for the
// group e.Job currently occupies in the live plan, returning e unchanged
// when the job has no placement. Caller holds mu's write side (the
// Scorer cache is not concurrency-safe).
func (m *Master) stampJobPlacementLocked(e Event) Event {
	plan, _, sc := m.planScorerLocked()
	if gi, ok := plan.FindJob(e.Job); ok {
		e = m.predictedEvent(e, sc.Prediction(gi))
	}
	return e
}

// stampJobPlacement is stampJobPlacementLocked for callers that do not
// hold m.mu (the parameter-service paths journal after their RPC fan-out).
func (m *Master) stampJobPlacement(e Event) Event {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stampJobPlacementLocked(e)
}

// measuredLocked reports the job's measured iteration seconds and its
// live group's measured utilization. The EWMA tracks wall time between
// barrier releases; utilization divides the group's profiled subtask
// seconds (the same quantities the model predicts from) by the measured
// iteration time, so a prediction gap shows up directly.
func (m *Master) measuredLocked(name string, j *job) (iter, ucpu, unet float64) {
	if j == nil || j.measIter <= 0 {
		return 0, 0, 0
	}
	iter = j.measIter
	plan, _ := m.livePlanLocked()
	if gi, ok := plan.FindJob(name); ok {
		g := plan.Groups[gi]
		ucpu = g.SumComp() / iter
		unet = g.SumNet() / iter
	}
	return iter, ucpu, unet
}

// Events returns the decision journal, oldest first. Events for jobs
// still running are enriched with their current measured values; frozen
// measurements (stamped at completion) are kept as recorded.
func (m *Master) Events() []Event {
	return m.EventsSince(0, "")
}

// EventsSince returns journal events with Seq > since matching kind
// (every kind when empty), oldest first, enriched like Events. The ring
// copy happens under the journal's own lock before m.mu is touched, so
// a polling /v1/events client never serializes the copy against the
// admission path; the master lock is held (read side) only for the
// measured-value lookups on live jobs.
func (m *Master) EventsSince(since uint64, kind string) []Event {
	evs := m.journal.snapshotSince(since, kind)
	m.mu.RLock()
	defer m.mu.RUnlock()
	m.enrichEventsLocked(evs)
	return evs
}

// enrichEventsLocked fills unmeasured events with their job's current
// measured values. Caller holds at least m.mu's read side.
func (m *Master) enrichEventsLocked(evs []Event) {
	type meas struct{ iter, ucpu, unet float64 }
	cache := make(map[string]meas)
	for i := range evs {
		e := &evs[i]
		if e.MeasuredIterSeconds != 0 {
			continue
		}
		mv, ok := cache[e.Job]
		if !ok {
			if j, live := m.jobs[e.Job]; live {
				mv.iter, mv.ucpu, mv.unet = m.measuredLocked(e.Job, j)
			}
			cache[e.Job] = mv
		}
		e.MeasuredIterSeconds = mv.iter
		e.MeasuredCPUUtil = mv.ucpu
		e.MeasuredNetUtil = mv.unet
	}
}
