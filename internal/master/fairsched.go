package master

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"harmony/internal/core"
	"harmony/internal/fair"
	"harmony/internal/ps"
	"harmony/internal/rpc"
	"harmony/internal/worker"
)

// This file wires the fair policy layer (internal/fair, DESIGN.md §13)
// into the live admission path: queue configuration, deficit-weighted
// drain ordering, gang placement against the live plan, and
// preemption/reclaim through the pause/checkpoint machinery.

// ErrUnknownQueue marks a submission naming a queue that was never
// configured.
var ErrUnknownQueue = errors.New("unknown queue")

// queueCounters is the per-queue ledger behind the labeled
// harmony_queue_* metric families; guarded by Master.mu.
type queueCounters struct {
	admitted  int64
	held      int64
	drained   int64
	preempted int64
	canceled  int64
}

// qcLocked returns the queue's counter ledger, creating it on first use.
func (m *Master) qcLocked(queue string) *queueCounters {
	qc := m.qcounters[queue]
	if qc == nil {
		qc = &queueCounters{}
		m.qcounters[queue] = qc
	}
	return qc
}

// ConfigureQueues replaces the queue policy. Every queue referenced by a
// deployed or held job must exist in the new configuration; shares and
// quotas take effect immediately and a drain pass retries held jobs
// against them.
func (m *Master) ConfigureQueues(cfgs ...fair.QueueConfig) error {
	s, err := fair.New(cfgs...)
	if err != nil {
		return err
	}
	m.mu.Lock()
	for name, j := range m.jobs {
		if !s.Has(j.queue) {
			m.mu.Unlock()
			return fmt.Errorf("master: job %q uses queue %q absent from the new configuration", name, j.queue)
		}
	}
	for _, p := range m.pending {
		if !s.Has(p.queue) {
			m.mu.Unlock()
			return fmt.Errorf("master: held job %q uses queue %q absent from the new configuration", p.spec.Name, p.queue)
		}
	}
	m.fairsched = s
	// A new policy changes every quota and gate: expire cached reject
	// verdicts and input snapshots, then retry held jobs against it.
	m.admitEpoch++
	m.mu.Unlock()
	m.wakeDrainer()
	return nil
}

// usageLocked counts the workers each queue's deployed jobs occupy.
// Paused jobs keep their claim: their workers still hold job state
// mid-migration.
func (m *Master) usageLocked() fair.Usage {
	u := make(fair.Usage)
	for _, j := range m.jobs {
		if j.status == StatusRunning || j.status == StatusPaused {
			u[j.queue] += len(j.workers)
		}
	}
	return u
}

// freeWorkersLocked lists workers no deployed job occupies, in
// registration order (deterministic for a fixed cluster state).
func (m *Master) freeWorkersLocked() []string {
	busy := make([]bool, len(m.workers))
	for _, j := range m.jobs {
		if j.status != StatusRunning && j.status != StatusPaused {
			continue
		}
		for _, wi := range j.workers {
			if wi < len(busy) {
				busy[wi] = true
			}
		}
	}
	var free []string
	for i, w := range m.workers {
		if !busy[i] {
			free = append(free, w.name)
		}
	}
	return free
}

// heldLocked is the policy view of the admission queue.
func (m *Master) heldLocked() []fair.Held {
	held := make([]fair.Held, len(m.pending))
	for i, p := range m.pending {
		held[i] = fair.Held{
			Job: p.spec.Name, Queue: p.queue, Priority: p.priority,
			Seq: p.seq, Demand: p.demand(), Resumable: p.resume != nil,
		}
	}
	return held
}

// runningLocked is the policy view of deployed jobs for victim
// selection.
func (m *Master) runningLocked() []fair.Running {
	var out []fair.Running
	for name, j := range m.jobs {
		if j.status != StatusRunning {
			continue
		}
		out = append(out, fair.Running{
			Job: name, Queue: j.queue, Priority: j.priority,
			StartSeq: j.startSeq, Workers: len(j.workers),
		})
	}
	return out
}

// admitLocked decides placement for one job under the fair policy. The
// gang rule is atomic: the returned group satisfies the spec's
// MinWorkers/MaxWorkers band in full, or the job holds with a reason.
//
// Placement tries, in order: the §IV-B4 arrival rule (the Scorer's
// incremental BestAddition into a running group that improves the
// scheduling score — bit-identical to the clone-and-rescore reference,
// which legacyAdmission re-enables), then a new group on free workers
// (the idle cluster is the degenerate case where every worker is free).
// Either path is vetoed when the queue is over quota and an under-quota
// queue has held jobs (borrowing is gated). Caller holds mu's write
// side.
func (m *Master) admitLocked(spec JobSpec, info core.JobInfo) (group []string, predicted core.GroupPrediction, initial, ok bool, reason string) {
	if len(m.workers) == 0 {
		return nil, core.GroupPrediction{}, false, false, fair.HoldNoGang
	}
	queue := spec.Queue
	if queue == "" {
		queue = fair.DefaultQueue
	}
	min := spec.MinWorkers
	if min < 1 {
		min = 1
	}
	max := spec.MaxWorkers
	total := len(m.workers)
	usage, free, held := m.admitInputsLocked()
	gated := m.fairsched.BorrowGated(queue, held, usage, total)
	headroom := m.fairsched.QuotaWorkers(queue, total) - usage[queue]

	var plan core.Plan
	var members [][]string
	var sc *core.Scorer
	if m.legacyAdmission {
		// The baseline pays exactly its historical costs: a fresh plan
		// build and a clone-and-rescore per candidate group, no Scorer.
		plan, members = m.livePlanLocked()
	} else {
		plan, members, sc = m.planScorerLocked()
	}
	if len(plan.Groups) > 0 {
		gi := -1
		var pred core.GroupPrediction
		if m.legacyAdmission {
			if next, placed := core.TryAddJobReference(plan, info, m.opts); placed {
				if found, ok := next.FindJob(info.ID); ok {
					gi = found
					pred = core.PredictGroup(next.Groups[found], m.opts.NetModel)
				}
			}
		} else if found, p, placed := sc.BestAddition(info); placed {
			gi, pred = found, p
		}
		if gi >= 0 && gi < len(members) {
			g := members[gi]
			fits := len(g) >= min && (max <= 0 || len(g) <= max)
			if fits && (!gated || len(g) <= headroom) {
				return append([]string(nil), g...), pred, false, true, ""
			}
		}
	}
	want := len(free)
	if max > 0 && want > max {
		want = max
	}
	if gated && want > headroom {
		want = headroom
	}
	if want >= min {
		pg := core.Group{Jobs: []core.JobInfo{info}, Machines: want}
		return append([]string(nil), free[:want]...),
			core.PredictGroup(pg, m.opts.NetModel), len(plan.Groups) == 0, true, ""
	}
	switch {
	case gated && headroom < min:
		return nil, core.GroupPrediction{}, false, false, fair.HoldQuota
	case len(free) < min && min > 1:
		return nil, core.GroupPrediction{}, false, false, fair.HoldNoGang
	default:
		return nil, core.GroupPrediction{}, false, false, fair.HoldSlowdown
	}
}

// pendingByNameLocked finds a held job by name.
func (m *Master) pendingByNameLocked(name string) *pendingJob {
	return m.pendingIdx[name]
}

// removePendingLocked unlinks a held job from the queue and advances the
// admission epoch (the held view feeds BorrowGated).
func (m *Master) removePendingLocked(p *pendingJob) {
	for i, q := range m.pending {
		if q == p {
			m.pending = append(m.pending[:i], m.pending[i+1:]...)
			delete(m.pendingIdx, p.spec.Name)
			m.admitEpoch++
			return
		}
	}
}

// reclaimTarget is one beneficiary held job plus the over-quota victims
// whose preemption frees enough workers for its gang.
type reclaimTarget struct {
	p       *pendingJob
	need    int
	victims []fair.Running
}

// reclaimTargetLocked scans held jobs in fair order for one whose queue
// is under quota, would stay within quota after admission (the
// anti-ping-pong rule), and whose gang can be covered by preempting
// over-quota victims.
func (m *Master) reclaimTargetLocked(ordered []fair.Held) *reclaimTarget {
	usage := m.usageLocked()
	total := len(m.workers)
	free := len(m.freeWorkersLocked())
	running := m.runningLocked()
	for _, h := range ordered {
		p := m.pendingByNameLocked(h.Job)
		if p == nil {
			continue
		}
		quota := m.fairsched.QuotaWorkers(h.Queue, total)
		if usage[h.Queue]+h.Demand > quota {
			continue // beneficiary would end over quota; no reclaim
		}
		need := h.Demand - free
		if need <= 0 {
			continue // free workers suffice; this hold is not capacity-bound
		}
		if victims := m.fairsched.Victims(h.Queue, need, running, usage, total); victims != nil {
			return &reclaimTarget{p: p, need: need, victims: victims}
		}
	}
	return nil
}

// preemptJob suspends one running victim through the §IV-B4
// drain-and-checkpoint path and requeues it as a resumable held job: the
// next admission of the name restores the checkpoint frame and continues
// from the iteration after it. Called without Master.mu held.
func (m *Master) preemptJob(name, beneficiary string) {
	m.mu.Lock()
	j, ok := m.jobs[name]
	if !ok || j.status != StatusRunning {
		m.mu.Unlock()
		return
	}
	iter, ucpu, unet := m.measuredLocked(name, j)
	m.mu.Unlock()
	m.journal.append(Event{Kind: EventPreempt, Job: name,
		MeasuredIterSeconds: iter, MeasuredCPUUtil: ucpu, MeasuredNetUtil: unet,
		Note: fmt.Sprintf("reclaimed for queue %q", beneficiary)})
	ckpt, err := m.Pause(name, time.Minute)
	if err != nil {
		// The victim finished or was canceled while we decided; the drain
		// loop re-evaluates against the new plan.
		return
	}
	m.mu.Lock()
	j, ok = m.jobs[name]
	if !ok || j.status != StatusPaused {
		m.mu.Unlock()
		return
	}
	refs := make([]workerRef, len(j.workers))
	for i, wi := range j.workers {
		refs[i] = m.workers[wi]
	}
	p := &pendingJob{
		spec: j.spec, info: m.jobInfoLocked(name, j),
		queue: j.queue, priority: j.priority, seq: j.arrival,
		holdReason: fair.HoldPreempted,
		resume:     ckpt, resumeIter: j.iter + 1,
		finishedCh: j.finishedCh, epoch: j.epoch,
	}
	delete(m.jobs, name)
	m.invalidatePlanLocked()
	m.addPendingLocked(p)
	m.counters.preempted++
	m.qcLocked(j.queue).preempted++
	m.mu.Unlock()

	// Best-effort teardown of the suspended placement; shards and model
	// partitions rebuild from the checkpoint on re-admission.
	for _, r := range refs {
		_, _ = rpc.Invoke[worker.DropJobArgs, worker.Ack](r.client,
			worker.MethodDropJob, worker.DropJobArgs{Job: name}, time.Minute)
		_, _ = rpc.Invoke[ps.DropArgs, ps.Ack](r.client,
			ps.MethodDrop, ps.DropArgs{Job: name}, time.Minute)
	}
}

// QueueView is the per-queue status surface for GET /v1/queues and the
// labeled metric families.
type QueueView struct {
	Name            string  `json:"name"`
	Parent          string  `json:"parent,omitempty"`
	Weight          float64 `json:"weight"`
	Quota           float64 `json:"quota"`
	OverQuotaWeight float64 `json:"over_quota_weight"`
	// Share is the queue's resolved fraction of the cluster;
	// QuotaWorkers that share in whole workers on the current cluster.
	Share        float64 `json:"share"`
	QuotaWorkers int     `json:"quota_workers"`
	// UsageWorkers counts workers the queue's deployed jobs occupy;
	// Running and Depth count its deployed and held jobs.
	UsageWorkers int `json:"usage_workers"`
	Running      int `json:"running"`
	Depth        int `json:"depth"`
	// Cumulative per-queue counters.
	Admitted  int64 `json:"admitted_total"`
	Held      int64 `json:"held_total"`
	Drained   int64 `json:"drained_total"`
	Preempted int64 `json:"preempted_total"`
	Canceled  int64 `json:"canceled_total"`
}

// Queues reports every configured queue's share, live usage, queue
// depth, and cumulative counters, sorted by name.
func (m *Master) Queues() []QueueView {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.queuesLocked()
}

// queuesLocked builds the per-queue views under a lock the caller
// already holds, so Snapshot can capture queues in the same consistent
// section as the plan and job state.
func (m *Master) queuesLocked() []QueueView {
	total := len(m.workers)
	usage := m.usageLocked()
	running := make(map[string]int)
	for _, j := range m.jobs {
		if j.status == StatusRunning || j.status == StatusPaused {
			running[j.queue]++
		}
	}
	depth := make(map[string]int)
	for _, p := range m.pending {
		depth[p.queue]++
	}
	views := make([]QueueView, 0, len(m.fairsched.Names()))
	for _, name := range m.fairsched.Names() {
		cfg, _ := m.fairsched.Config(name)
		v := QueueView{
			Name: name, Parent: cfg.Parent, Weight: cfg.Weight,
			Quota: cfg.Quota, OverQuotaWeight: cfg.OverQuotaWeight,
			Share:        m.fairsched.Share(name),
			QuotaWorkers: m.fairsched.QuotaWorkers(name, total),
			UsageWorkers: usage[name],
			Running:      running[name],
			Depth:        depth[name],
		}
		if qc := m.qcounters[name]; qc != nil {
			v.Admitted, v.Held, v.Drained = qc.admitted, qc.held, qc.drained
			v.Preempted, v.Canceled = qc.preempted, qc.canceled
		}
		views = append(views, v)
	}
	sort.Slice(views, func(a, b int) bool { return views[a].Name < views[b].Name })
	return views
}
