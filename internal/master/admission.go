package master

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"harmony/internal/core"
	"harmony/internal/ps"
	"harmony/internal/rpc"
	"harmony/internal/worker"
	"harmony/internal/workload"
)

// Sentinel errors surfaced by the control plane; callers match them with
// errors.Is to pick HTTP status codes.
var (
	// ErrDuplicateJob marks a submission that reuses a known job name.
	ErrDuplicateJob = errors.New("duplicate job")
	// ErrUnknownJob marks an operation on a name the master never saw.
	ErrUnknownJob = errors.New("unknown job")
	// ErrJobFinished marks a cancel of a job that already completed.
	ErrJobFinished = errors.New("job already finished")
	// ErrDraining rejects submissions while the master shuts down.
	ErrDraining = errors.New("master is draining")
	// ErrUnknownWorker marks a placement naming an unregistered worker.
	ErrUnknownWorker = errors.New("unknown worker")
)

// Profile carries a submitter's cost estimates for a job that has not run
// yet, in the scheduler's units (§IV-B1): aggregate COMP machine-seconds
// and per-machine COMM seconds per iteration, plus memory footprint
// parameters. The zero value means "unprofiled" — such a job cannot be
// placed by the arrival rule while other jobs run and waits in the queue
// until the cluster goes idle.
type Profile struct {
	CompSeconds float64
	NetSeconds  float64
	InputGB     float64
	ModelGB     float64
	WorkGB      float64
}

func (p Profile) info(name string) core.JobInfo {
	return core.JobInfo{
		ID:      name,
		Comp:    p.CompSeconds,
		Net:     p.NetSeconds,
		InputGB: p.InputGB, ModelGB: p.ModelGB, WorkGB: p.WorkGB,
		JVMHeapFactor: workload.JVMHeapFactor,
	}
}

// Admission reports the outcome of an Enqueue.
type Admission struct {
	// Admitted is true when the job was placed and started immediately;
	// false means it is held pending in the queue.
	Admitted bool
	// Workers is the group the job was placed on when admitted.
	Workers []string
}

type pendingJob struct {
	spec JobSpec
	info core.JobInfo
}

// counters aggregates control-plane events; guarded by Master.mu.
type counters struct {
	admittedInitial    int64
	admittedArrival    int64
	heldPending        int64
	queueDrained       int64
	canceled           int64
	migrations         int64
	recoveries         int64
	checkpointFailures int64
}

// Counters is a snapshot of the master's control-plane counters.
type Counters struct {
	// AdmittedInitial counts jobs started on an idle cluster.
	AdmittedInitial int64
	// AdmittedArrival counts jobs placed into a running group by the
	// §IV-B4 arrival rule.
	AdmittedArrival int64
	// HeldPending counts submissions the arrival rule rejected.
	HeldPending int64
	// QueueDrained counts pending jobs later admitted by a drain pass.
	QueueDrained int64
	// Canceled counts operator cancellations (pending or running).
	Canceled int64
	// Migrations counts pause/resume group moves.
	Migrations int64
	// Recoveries counts failure-triggered job restarts.
	Recoveries int64
	// CheckpointFailures counts background model snapshots that failed
	// and were dropped.
	CheckpointFailures int64
}

// Counters snapshots the control-plane counters.
func (m *Master) Counters() Counters {
	m.mu.Lock()
	defer m.mu.Unlock()
	return Counters{
		AdmittedInitial:    m.counters.admittedInitial,
		AdmittedArrival:    m.counters.admittedArrival,
		HeldPending:        m.counters.heldPending,
		QueueDrained:       m.counters.queueDrained,
		Canceled:           m.counters.canceled,
		Migrations:         m.counters.migrations,
		Recoveries:         m.counters.recoveries,
		CheckpointFailures: m.counters.checkpointFailures,
	}
}

// knownLocked reports whether a job name is taken by a deployed or a
// pending job.
func (m *Master) knownLocked(name string) bool {
	if _, ok := m.jobs[name]; ok {
		return true
	}
	for _, p := range m.pending {
		if p.spec.Name == name {
			return true
		}
	}
	return false
}

// Enqueue submits a job through the online admission path of §IV-B4:
// an idle cluster starts the job immediately on all workers; otherwise
// the arrival rule (core.TryAddJob, 5% regrouping threshold) places it
// into the running group that improves cluster utilization, or holds it
// pending. Pending jobs are retried whenever a job completes, a
// migration reshapes the plan, or a running job is canceled.
func (m *Master) Enqueue(spec JobSpec, prof Profile) (Admission, error) {
	if spec.Name == "" || spec.Iterations <= 0 {
		return Admission{}, errors.New("master: job needs a name and positive iterations")
	}
	info := prof.info(spec.Name)
	m.mu.Lock()
	if m.draining || m.closed {
		m.mu.Unlock()
		return Admission{}, ErrDraining
	}
	if m.knownLocked(spec.Name) {
		m.mu.Unlock()
		return Admission{}, fmt.Errorf("master: duplicate job %q: %w", spec.Name, ErrDuplicateJob)
	}
	group, predicted, initial, ok := m.admitLocked(info)
	if !ok {
		m.pending = append(m.pending, &pendingJob{spec: spec, info: info})
		m.counters.heldPending++
		m.mu.Unlock()
		m.journal.append(Event{Kind: EventHold, Job: spec.Name,
			Note: "arrival rule found no improving placement"})
		return Admission{}, nil
	}
	kind := EventAdmitArrival
	if initial {
		m.counters.admittedInitial++
		kind = EventAdmitInitial
	} else {
		m.counters.admittedArrival++
	}
	m.mu.Unlock()
	m.journal.append(predictedFrom(Event{Kind: kind, Job: spec.Name, Group: group}, predicted))
	if err := m.submit(spec, group, info); err != nil {
		return Admission{}, err
	}
	return Admission{Admitted: true, Workers: group}, nil
}

// admitLocked decides placement for a newly arrived job. On an idle
// cluster the job forms the initial group across all workers. Otherwise
// it is placed by TryAddJob into the running group that raises the
// scheduling score — without moving any running job — or rejected, in
// which case it waits (§IV-B4).
func (m *Master) admitLocked(info core.JobInfo) (group []string, predicted core.Group, initial, ok bool) {
	if len(m.workers) == 0 {
		return nil, core.Group{}, false, false
	}
	plan, members := m.livePlanLocked()
	if len(plan.Groups) == 0 {
		names := make([]string, len(m.workers))
		for i, w := range m.workers {
			names[i] = w.name
		}
		return names, core.Group{Jobs: []core.JobInfo{info}, Machines: len(names)}, true, true
	}
	next, placed := core.TryAddJob(plan, info, m.opts)
	if !placed {
		return nil, core.Group{}, false, false
	}
	gi, found := next.FindJob(info.ID)
	if !found || gi >= len(members) {
		return nil, core.Group{}, false, false
	}
	return members[gi], next.Groups[gi], false, true
}

// livePlanLocked derives the scheduler's view of the running cluster:
// jobs sharing a worker set form one group whose DoP is the set size.
// The parallel slice maps each group to its worker names. Group and job
// order are deterministic for a fixed cluster state.
func (m *Master) livePlanLocked() (core.Plan, [][]string) {
	type bucket struct {
		idxs []int
		jobs []core.JobInfo
	}
	byKey := make(map[string]*bucket)
	var keys []string
	for name, j := range m.jobs {
		if j.status != StatusRunning {
			continue
		}
		idxs := append([]int(nil), j.workers...)
		sort.Ints(idxs)
		key := fmt.Sprint(idxs)
		b := byKey[key]
		if b == nil {
			b = &bucket{idxs: idxs}
			byKey[key] = b
			keys = append(keys, key)
		}
		b.jobs = append(b.jobs, m.jobInfoLocked(name, j))
	}
	sort.Strings(keys)
	var plan core.Plan
	var members [][]string
	for _, key := range keys {
		b := byKey[key]
		sort.Slice(b.jobs, func(a, c int) bool { return b.jobs[a].ID < b.jobs[c].ID })
		names := make([]string, len(b.idxs))
		for i, wi := range b.idxs {
			names[i] = m.workers[wi].name
		}
		plan.Groups = append(plan.Groups, core.Group{Jobs: b.jobs, Machines: len(b.idxs)})
		members = append(members, names)
	}
	return plan, members
}

// jobInfoLocked is the scheduler's view of one deployed job: runtime
// profiled metrics once enough samples accumulated, submission hints
// before that.
func (m *Master) jobInfoLocked(name string, j *job) core.JobInfo {
	info := j.prof
	info.ID = name
	if met, ok := m.profiles.Metrics(name); ok && met.Profiled() {
		info.Comp = met.CompMachineSeconds
		info.Net = met.NetSeconds
	}
	return info
}

// drainQueue retries held jobs in FIFO order against the current plan,
// deploying every one the arrival rule now accepts. It is called after
// completions, migrations and cancellations.
func (m *Master) drainQueue() {
	for {
		m.mu.Lock()
		if m.closed || m.draining || len(m.pending) == 0 {
			m.mu.Unlock()
			return
		}
		picked := -1
		var group []string
		var predicted core.Group
		var initial bool
		for i, p := range m.pending {
			if g, pred, init, ok := m.admitLocked(p.info); ok {
				picked, group, predicted, initial = i, g, pred, init
				break
			}
		}
		if picked < 0 {
			m.mu.Unlock()
			return
		}
		p := m.pending[picked]
		m.pending = append(m.pending[:picked], m.pending[picked+1:]...)
		m.counters.queueDrained++
		if initial {
			m.counters.admittedInitial++
		} else {
			m.counters.admittedArrival++
		}
		m.mu.Unlock()
		m.journal.append(predictedFrom(
			Event{Kind: EventQueueDrain, Job: p.spec.Name, Group: group}, predicted))
		if err := m.submit(p.spec, group, p.info); err != nil {
			// Deployment raced a worker failure or shutdown; requeue and
			// let the next drain retry rather than spinning here.
			m.mu.Lock()
			if !m.closed && !m.draining {
				m.pending = append(m.pending, p)
			}
			m.mu.Unlock()
			return
		}
	}
}

// Cancel removes a pending job from the queue, or stops a deployed job:
// its barriers are released with Stop, its shards and model partitions
// are dropped from the workers, and waiters are unblocked.
func (m *Master) Cancel(name string) error {
	m.mu.Lock()
	for i, p := range m.pending {
		if p.spec.Name == name {
			m.pending = append(m.pending[:i], m.pending[i+1:]...)
			m.counters.canceled++
			m.mu.Unlock()
			m.journal.append(Event{Kind: EventCancel, Job: name, Note: "canceled while pending"})
			return nil
		}
	}
	j, ok := m.jobs[name]
	if !ok {
		m.mu.Unlock()
		return fmt.Errorf("master: %w %q", ErrUnknownJob, name)
	}
	switch j.status {
	case StatusFinished:
		m.mu.Unlock()
		return fmt.Errorf("master: cancel %q: %w", name, ErrJobFinished)
	case StatusCanceled:
		m.mu.Unlock()
		return nil
	}
	// Measured values are captured while the job still counts as running
	// — livePlanLocked drops it the moment the status flips.
	iter, ucpu, unet := m.measuredLocked(name, j)
	m.journal.append(Event{Kind: EventCancel, Job: name,
		MeasuredIterSeconds: iter, MeasuredCPUUtil: ucpu, MeasuredNetUtil: unet})
	j.status = StatusCanceled
	m.counters.canceled++
	for _, bs := range j.barriers {
		for _, ch := range bs.waiters {
			ch <- worker.Stop
		}
	}
	j.barriers = make(map[int]*barrierState)
	close(j.finishedCh)
	refs := make([]workerRef, len(j.workers))
	for i, wi := range j.workers {
		refs[i] = m.workers[wi]
	}
	m.mu.Unlock()

	// Best-effort teardown: drop the job's shards and model partitions.
	for _, r := range refs {
		_, _ = rpc.Invoke[worker.DropJobArgs, worker.Ack](r.client,
			worker.MethodDropJob, worker.DropJobArgs{Job: name}, time.Minute)
		_, _ = rpc.Invoke[ps.DropArgs, ps.Ack](r.client,
			ps.MethodDrop, ps.DropArgs{Job: name}, time.Minute)
	}
	go m.drainQueue()
	return nil
}

// JobView is the status surface of one job for the control plane.
type JobView struct {
	Name      string
	State     string
	Iteration int
	Loss      float64
	Workers   []string
	// CompSeconds and NetSeconds are the job's current scheduler metrics
	// (profiled once Profiled is true, submission hints before).
	CompSeconds float64
	NetSeconds  float64
	Profiled    bool
	// CheckpointIter is the iteration of the latest background snapshot.
	CheckpointIter int
}

func (m *Master) jobViewLocked(name string, j *job) JobView {
	names := make([]string, len(j.workers))
	for i, wi := range j.workers {
		names[i] = m.workers[wi].name
	}
	info := m.jobInfoLocked(name, j)
	met, ok := m.profiles.Metrics(name)
	return JobView{
		Name:           name,
		State:          j.status.String(),
		Iteration:      j.iter,
		Loss:           j.loss,
		Workers:        names,
		CompSeconds:    info.Comp,
		NetSeconds:     info.Net,
		Profiled:       ok && met.Profiled(),
		CheckpointIter: j.checkpointIter,
	}
}

// ListJobs reports every deployed and pending job, sorted by name.
func (m *Master) ListJobs() []JobView {
	m.mu.Lock()
	defer m.mu.Unlock()
	views := make([]JobView, 0, len(m.jobs)+len(m.pending))
	for name, j := range m.jobs {
		views = append(views, m.jobViewLocked(name, j))
	}
	for _, p := range m.pending {
		views = append(views, JobView{
			Name:        p.spec.Name,
			State:       StatusPending.String(),
			CompSeconds: p.info.Comp,
			NetSeconds:  p.info.Net,
		})
	}
	sort.Slice(views, func(a, b int) bool { return views[a].Name < views[b].Name })
	return views
}

// Job reports one job's status; ok is false for unknown names.
func (m *Master) Job(name string) (JobView, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if j, ok := m.jobs[name]; ok {
		return m.jobViewLocked(name, j), true
	}
	for _, p := range m.pending {
		if p.spec.Name == name {
			return JobView{
				Name:        name,
				State:       StatusPending.String(),
				CompSeconds: p.info.Comp,
				NetSeconds:  p.info.Net,
			}, true
		}
	}
	return JobView{}, false
}

// GroupView is one live co-location group: the worker set and the jobs
// sharing it.
type GroupView struct {
	Workers []string
	Jobs    []string
}

// ClusterView is the control plane's cluster status: registered workers,
// the current placement derived from running jobs, and the held queue.
type ClusterView struct {
	Workers []string
	Groups  []GroupView
	Pending []string
}

// Cluster reports the cluster status surface.
func (m *Master) Cluster() ClusterView {
	m.mu.Lock()
	defer m.mu.Unlock()
	cv := ClusterView{Workers: make([]string, len(m.workers))}
	for i, w := range m.workers {
		cv.Workers[i] = w.name
	}
	plan, members := m.livePlanLocked()
	for gi, g := range plan.Groups {
		gv := GroupView{Workers: members[gi]}
		for _, j := range g.Jobs {
			gv.Jobs = append(gv.Jobs, j.ID)
		}
		cv.Groups = append(cv.Groups, gv)
	}
	for _, p := range m.pending {
		cv.Pending = append(cv.Pending, p.spec.Name)
	}
	return cv
}

// QueueDepth reports the number of jobs held pending.
func (m *Master) QueueDepth() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.pending)
}

// Shutdown drains the control plane for a clean exit: it stops admitting
// new work, snapshots every running job's model as a final checkpoint
// (best effort, within the timeout per job), and closes the master. It
// returns the names of the jobs checkpointed.
func (m *Master) Shutdown(timeout time.Duration) []string {
	if timeout <= 0 {
		timeout = time.Minute
	}
	type target struct {
		name    string
		servers []string
		size    int
		iter    int
	}
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.draining = true
	m.pending = nil
	var targets []target
	for name, j := range m.jobs {
		if j.status != StatusRunning || j.iter == 0 {
			continue
		}
		targets = append(targets, target{
			name:    name,
			servers: m.serverAddrsLocked(j),
			size:    j.spec.Config.ModelSize(),
			iter:    j.iter,
		})
	}
	m.mu.Unlock()
	sort.Slice(targets, func(a, b int) bool { return targets[a].name < targets[b].name })

	var saved []string
	for _, t := range targets {
		snap, err := snapshotModel(t.servers, t.name, t.size, timeout)
		m.mu.Lock()
		if err != nil {
			m.counters.checkpointFailures++
			m.mu.Unlock()
			continue
		}
		if j, ok := m.jobs[t.name]; ok && t.iter >= j.checkpointIter {
			j.checkpoint = snap
			j.checkpointIter = t.iter
			saved = append(saved, t.name)
		}
		m.mu.Unlock()
	}
	m.Close()
	return saved
}

func snapshotModel(servers []string, name string, size int, timeout time.Duration) ([]float64, error) {
	client, err := ps.NewClient(servers, timeout)
	if err != nil {
		return nil, err
	}
	defer client.Close()
	return client.Snapshot(name, size)
}
