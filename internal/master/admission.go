package master

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"harmony/internal/core"
	"harmony/internal/fair"
	"harmony/internal/ps"
	"harmony/internal/rpc"
	"harmony/internal/worker"
	"harmony/internal/workload"
)

// Sentinel errors surfaced by the control plane; callers match them with
// errors.Is to pick HTTP status codes.
var (
	// ErrDuplicateJob marks a submission that reuses a known job name.
	ErrDuplicateJob = errors.New("duplicate job")
	// ErrUnknownJob marks an operation on a name the master never saw.
	ErrUnknownJob = errors.New("unknown job")
	// ErrJobFinished marks a cancel of a job that already completed.
	ErrJobFinished = errors.New("job already finished")
	// ErrDraining rejects submissions while the master shuts down.
	ErrDraining = errors.New("master is draining")
	// ErrUnknownWorker marks a placement naming an unregistered worker.
	ErrUnknownWorker = errors.New("unknown worker")
)

// Profile carries a submitter's cost estimates for a job that has not run
// yet, in the scheduler's units (§IV-B1): aggregate COMP machine-seconds
// and per-machine COMM seconds per iteration, plus memory footprint
// parameters. The zero value means "unprofiled" — such a job cannot be
// placed by the arrival rule while other jobs run and waits in the queue
// until the cluster goes idle.
type Profile struct {
	CompSeconds float64
	NetSeconds  float64
	InputGB     float64
	ModelGB     float64
	WorkGB      float64
}

func (p Profile) info(name string) core.JobInfo {
	return core.JobInfo{
		ID:      name,
		Comp:    p.CompSeconds,
		Net:     p.NetSeconds,
		InputGB: p.InputGB, ModelGB: p.ModelGB, WorkGB: p.WorkGB,
		JVMHeapFactor: workload.JVMHeapFactor,
	}
}

// Admission reports the outcome of an Enqueue.
type Admission struct {
	// Admitted is true when the job was placed and started immediately;
	// false means it is held pending in the queue.
	Admitted bool
	// Workers is the group the job was placed on when admitted.
	Workers []string
}

type pendingJob struct {
	spec JobSpec
	info core.JobInfo
	// Fair-scheduler coordinates (DESIGN.md §13): the resolved queue,
	// the job's priority, and its arrival sequence number (FIFO within
	// equal priority; preserved across preemption so a reclaimed job
	// resumes ahead of later arrivals in its queue).
	queue    string
	priority int
	seq      uint64
	// holdReason classifies why the job waits (fair.Hold*).
	holdReason string
	// resume carries a preempted job's checkpoint frame; on re-admission
	// the job restores it and continues from resumeIter. finishedCh and
	// epoch survive the preemption so WaitJob callers stay parked and
	// stragglers of the suspended placement stay stale.
	resume     []float64
	resumeIter int
	finishedCh chan struct{}
	epoch      int
	// rejectEpoch caches the admission epoch at which the drain pass last
	// rejected this job (DESIGN.md §15): until the epoch moves — some
	// admission input changed — re-scoring it would reproduce the same
	// verdict, so the pass skips it.
	rejectEpoch uint64
}

// demand is the gang size the job must place atomically.
func (p *pendingJob) demand() int {
	if p.spec.MinWorkers > 1 {
		return p.spec.MinWorkers
	}
	return 1
}

// counters aggregates control-plane events; guarded by Master.mu.
type counters struct {
	admittedInitial    int64
	admittedArrival    int64
	heldPending        int64
	queueDrained       int64
	canceled           int64
	preempted          int64
	migrations         int64
	recoveries         int64
	checkpointFailures int64
}

// Counters is a snapshot of the master's control-plane counters.
type Counters struct {
	// AdmittedInitial counts jobs started on an idle cluster.
	AdmittedInitial int64
	// AdmittedArrival counts jobs placed into a running group by the
	// §IV-B4 arrival rule.
	AdmittedArrival int64
	// HeldPending counts submissions the arrival rule rejected.
	HeldPending int64
	// QueueDrained counts pending jobs later admitted by a drain pass.
	QueueDrained int64
	// Canceled counts operator cancellations (pending or running).
	Canceled int64
	// Preempted counts running jobs the fair scheduler reclaimed and
	// requeued as resumable held jobs (DESIGN.md §13).
	Preempted int64
	// Migrations counts pause/resume group moves.
	Migrations int64
	// Recoveries counts failure-triggered job restarts.
	Recoveries int64
	// CheckpointFailures counts background model snapshots that failed
	// and were dropped.
	CheckpointFailures int64
}

// Counters snapshots the control-plane counters.
func (m *Master) Counters() Counters {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return Counters{
		AdmittedInitial:    m.counters.admittedInitial,
		AdmittedArrival:    m.counters.admittedArrival,
		HeldPending:        m.counters.heldPending,
		QueueDrained:       m.counters.queueDrained,
		Canceled:           m.counters.canceled,
		Preempted:          m.counters.preempted,
		Migrations:         m.counters.migrations,
		Recoveries:         m.counters.recoveries,
		CheckpointFailures: m.counters.checkpointFailures,
	}
}

// knownLocked reports whether a job name is taken by a deployed or a
// pending job.
func (m *Master) knownLocked(name string) bool {
	if _, ok := m.jobs[name]; ok {
		return true
	}
	_, ok := m.pendingIdx[name]
	return ok
}

// Enqueue submits a job through the online admission path of §IV-B4
// under the fair policy (DESIGN.md §13): the job places atomically into
// a running group (the arrival rule) or onto free workers — an idle
// cluster is the degenerate case — unless its queue's quota gates the
// borrow, in which case it holds with a reason. Pending jobs are
// retried in deficit-weighted fair order whenever a job completes, a
// migration reshapes the plan, or a job is canceled or preempted.
func (m *Master) Enqueue(spec JobSpec, prof Profile) (Admission, error) {
	if spec.Name == "" || spec.Iterations <= 0 {
		return Admission{}, errors.New("master: job needs a name and positive iterations")
	}
	if spec.MaxWorkers > 0 && spec.MinWorkers > spec.MaxWorkers {
		return Admission{}, fmt.Errorf("master: job %q wants min %d > max %d workers",
			spec.Name, spec.MinWorkers, spec.MaxWorkers)
	}
	info := prof.info(spec.Name)
	m.mu.Lock()
	if m.draining || m.closed {
		m.mu.Unlock()
		return Admission{}, ErrDraining
	}
	if m.knownLocked(spec.Name) {
		m.mu.Unlock()
		return Admission{}, fmt.Errorf("master: duplicate job %q: %w", spec.Name, ErrDuplicateJob)
	}
	queue := spec.Queue
	if queue == "" {
		queue = fair.DefaultQueue
	}
	if !m.fairsched.Has(queue) {
		m.mu.Unlock()
		return Admission{}, fmt.Errorf("master: %w %q", ErrUnknownQueue, queue)
	}
	m.arrivalSeq++
	p := &pendingJob{spec: spec, info: info, queue: queue,
		priority: spec.Priority, seq: m.arrivalSeq}
	group, predicted, initial, ok, reason := m.admitLocked(spec, info)
	if !ok {
		p.holdReason = reason
		// Held work is waitable from the moment it is accepted: WaitJob
		// parks on this channel, which survives the pending→deployed
		// transition (and is closed by Cancel/Shutdown of a held job).
		p.finishedCh = make(chan struct{})
		m.addPendingLocked(p)
		m.counters.heldPending++
		m.qcLocked(queue).held++
		m.mu.Unlock()
		m.journal.append(Event{Kind: EventHold, Job: spec.Name,
			Note: "held: " + reason})
		// A hold in an under-quota queue may be reclaimable right now:
		// the drain pass evaluates preemption against the live plan.
		m.wakeDrainer()
		return Admission{}, nil
	}
	kind := EventAdmitArrival
	if initial {
		m.counters.admittedInitial++
		kind = EventAdmitInitial
	} else {
		m.counters.admittedArrival++
	}
	m.qcLocked(queue).admitted++
	m.mu.Unlock()
	m.journal.append(m.predictedEvent(Event{Kind: kind, Job: spec.Name, Group: group}, predicted))
	if err := m.submitPending(p, group); err != nil {
		return Admission{}, err
	}
	return Admission{Admitted: true, Workers: group}, nil
}

// buildLivePlanLocked derives the scheduler's view of the running
// cluster from scratch: jobs sharing a worker set form one group whose
// DoP is the set size. The parallel slice maps each group to its worker
// names. Group and job order are deterministic for a fixed cluster
// state. Most callers want livePlanLocked (fastpath.go), which caches
// the result between plan mutations.
func (m *Master) buildLivePlanLocked() (core.Plan, [][]string) {
	type bucket struct {
		idxs []int
		jobs []core.JobInfo
	}
	byKey := make(map[string]*bucket)
	var keys []string
	for name, j := range m.jobs {
		if j.status != StatusRunning {
			continue
		}
		idxs := append([]int(nil), j.workers...)
		sort.Ints(idxs)
		key := workerSetKey(idxs)
		b := byKey[key]
		if b == nil {
			b = &bucket{idxs: idxs}
			byKey[key] = b
			keys = append(keys, key)
		}
		b.jobs = append(b.jobs, m.jobInfoLocked(name, j))
	}
	sort.Strings(keys)
	var plan core.Plan
	var members [][]string
	for _, key := range keys {
		b := byKey[key]
		sort.Slice(b.jobs, func(a, c int) bool { return b.jobs[a].ID < b.jobs[c].ID })
		names := make([]string, len(b.idxs))
		for i, wi := range b.idxs {
			names[i] = m.workers[wi].name
		}
		plan.Groups = append(plan.Groups, core.Group{Jobs: b.jobs, Machines: len(b.idxs)})
		members = append(members, names)
	}
	return plan, members
}

// jobInfoLocked is the scheduler's view of one deployed job: runtime
// profiled metrics once enough samples accumulated, submission hints
// before that.
func (m *Master) jobInfoLocked(name string, j *job) core.JobInfo {
	info := j.prof
	info.ID = name
	if met, ok := m.profiles.Metrics(name); ok && met.Profiled() {
		info.Comp = met.CompMachineSeconds
		info.Net = met.NetSeconds
	}
	// The fitted serial floor (Synergy-style sensitivity) only feeds the
	// model when the net-aware scheduler is on: with it off, TcpuAt must
	// reproduce Eq. 2 exactly.
	if m.opts.NetModel {
		if s, ok := m.profiles.Sensitivity(name); ok && s.Fitted() {
			info.CompFloor = s.CompFloorSeconds
		}
	}
	return info
}

// drainQueue retries held jobs in deficit-weighted fair order against
// the current plan (DESIGN.md §13), deploying every one the policy now
// accepts. When nothing admits but an under-quota queue's gang could
// place by reclaiming over-quota capacity, it preempts the selected
// victims through the pause/checkpoint path and retries. It runs on the
// single drainer goroutine (fastpath.go), woken after completions,
// migrations, cancellations, holds, and queue reconfigurations.
func (m *Master) drainQueue() {
	for {
		m.mu.Lock()
		if m.closed || m.draining || len(m.pending) == 0 {
			m.mu.Unlock()
			return
		}
		usage, _, held := m.admitInputsLocked()
		ordered := m.fairsched.Order(held, usage, len(m.workers))
		var p *pendingJob
		var group []string
		var predicted core.GroupPrediction
		var initial bool
		for _, h := range ordered {
			cand := m.pendingByNameLocked(h.Job)
			if cand == nil {
				continue
			}
			if !m.legacyAdmission && cand.rejectEpoch == m.admitEpoch {
				// Nothing this verdict depended on has changed since the
				// last pass rejected the job; skip the re-score.
				continue
			}
			g, pred, init, ok, reason := m.admitLocked(cand.spec, cand.info)
			if ok {
				p, group, predicted, initial = cand, g, pred, init
				break
			}
			cand.rejectEpoch = m.admitEpoch
			if cand.holdReason != fair.HoldPreempted {
				cand.holdReason = reason
			}
		}
		if p == nil {
			// Nothing places as-is: reclaim for the first under-quota gang
			// that preemption can unblock. The latch serializes rounds so
			// concurrent drains never double-preempt.
			target := m.reclaimTargetLocked(ordered)
			if target == nil || m.reclaiming {
				m.mu.Unlock()
				return
			}
			m.reclaiming = true
			beneficiary := target.p.queue
			victims := target.victims
			m.mu.Unlock()
			for _, v := range victims {
				m.preemptJob(v.Job, beneficiary)
			}
			m.mu.Lock()
			m.reclaiming = false
			m.mu.Unlock()
			continue
		}
		m.removePendingLocked(p)
		m.counters.queueDrained++
		if initial {
			m.counters.admittedInitial++
		} else {
			m.counters.admittedArrival++
		}
		m.qcLocked(p.queue).admitted++
		m.qcLocked(p.queue).drained++
		m.mu.Unlock()
		kind := EventQueueDrain
		note := ""
		if p.resume != nil {
			kind = EventResume
			note = fmt.Sprintf("resume from checkpoint iteration %d", p.resumeIter-1)
		}
		m.journal.append(m.predictedEvent(
			Event{Kind: kind, Job: p.spec.Name, Group: group, Note: note}, predicted))
		if err := m.submitPending(p, group); err != nil {
			// Deployment raced a worker failure or shutdown; requeue and
			// let the next drain retry rather than spinning here.
			m.mu.Lock()
			if !m.closed && !m.draining {
				m.addPendingLocked(p)
			}
			m.mu.Unlock()
			return
		}
	}
}

// Cancel removes a pending job from the queue, or stops a deployed job:
// its barriers are released with Stop, its shards and model partitions
// are dropped from the workers, and waiters are unblocked.
func (m *Master) Cancel(name string) error {
	m.mu.Lock()
	if p := m.pendingByNameLocked(name); p != nil {
		m.removePendingLocked(p)
		m.counters.canceled++
		m.qcLocked(p.queue).canceled++
		if p.finishedCh != nil {
			// A canceled preempted job will never resume; unpark its
			// WaitJob callers.
			close(p.finishedCh)
		}
		m.mu.Unlock()
		// cancel_held is distinct from a running-job cancel so replay
		// can reconstruct queue state: this name never held workers
		// (or had already released them to a preemption).
		note := "canceled while held"
		if p.holdReason != "" {
			note += ": " + p.holdReason
		}
		m.journal.append(Event{Kind: EventCancelHeld, Job: name, Note: note})
		return nil
	}
	j, ok := m.jobs[name]
	if !ok {
		m.mu.Unlock()
		return fmt.Errorf("master: %w %q", ErrUnknownJob, name)
	}
	switch j.status {
	case StatusFinished:
		m.mu.Unlock()
		return fmt.Errorf("master: cancel %q: %w", name, ErrJobFinished)
	case StatusCanceled:
		m.mu.Unlock()
		return nil
	}
	// Measured values are captured while the job still counts as running
	// — livePlanLocked drops it the moment the status flips.
	iter, ucpu, unet := m.measuredLocked(name, j)
	m.journal.append(Event{Kind: EventCancel, Job: name,
		MeasuredIterSeconds: iter, MeasuredCPUUtil: ucpu, MeasuredNetUtil: unet})
	j.status = StatusCanceled
	m.invalidatePlanLocked()
	m.counters.canceled++
	m.qcLocked(j.queue).canceled++
	for _, bs := range j.barriers {
		for _, ch := range bs.waiters {
			ch <- worker.Stop
		}
	}
	j.barriers = make(map[int]*barrierState)
	close(j.finishedCh)
	refs := make([]workerRef, len(j.workers))
	for i, wi := range j.workers {
		refs[i] = m.workers[wi]
	}
	m.mu.Unlock()

	// Best-effort teardown: drop the job's shards and model partitions.
	for _, r := range refs {
		_, _ = rpc.Invoke[worker.DropJobArgs, worker.Ack](r.client,
			worker.MethodDropJob, worker.DropJobArgs{Job: name}, time.Minute)
		_, _ = rpc.Invoke[ps.DropArgs, ps.Ack](r.client,
			ps.MethodDrop, ps.DropArgs{Job: name}, time.Minute)
	}
	m.wakeDrainer()
	return nil
}

// JobView is the status surface of one job for the control plane.
type JobView struct {
	Name      string
	State     string
	Iteration int
	Loss      float64
	Workers   []string
	// CompSeconds and NetSeconds are the job's current scheduler metrics
	// (profiled once Profiled is true, submission hints before).
	CompSeconds float64
	NetSeconds  float64
	Profiled    bool
	// CheckpointIter is the iteration of the latest background snapshot.
	CheckpointIter int
	// Queue and Priority are the job's fair-scheduler coordinates.
	Queue    string
	Priority int
	// HoldReason classifies a pending job's wait (fair.Hold*): the Eq. 1
	// slowdown bound, no feasible gang, quota exhaustion, or a
	// preemption awaiting resume. Empty for deployed jobs.
	HoldReason string
	// QueuePosition is the job's 1-based slot in the fair admission
	// order (0 for deployed jobs) — a held job is distinguishable from a
	// stuck one by reason and place in line.
	QueuePosition int
	// Resumable marks a preempted job holding a checkpoint; ResumeIter
	// is the iteration it will continue from on re-admission.
	Resumable  bool
	ResumeIter int
}

func (m *Master) jobViewLocked(name string, j *job) JobView {
	names := make([]string, len(j.workers))
	for i, wi := range j.workers {
		names[i] = m.workers[wi].name
	}
	info := m.jobInfoLocked(name, j)
	met, ok := m.profiles.Metrics(name)
	return JobView{
		Name:           name,
		State:          j.status.String(),
		Iteration:      j.iter,
		Loss:           j.loss,
		Workers:        names,
		CompSeconds:    info.Comp,
		NetSeconds:     info.Net,
		Profiled:       ok && met.Profiled(),
		CheckpointIter: j.checkpointIter,
		Queue:          j.queue,
		Priority:       j.priority,
	}
}

// pendingViewLocked builds the view of one held job; positions maps job
// name to its 1-based slot in the fair admission order.
func (m *Master) pendingViewLocked(p *pendingJob, positions map[string]int) JobView {
	return JobView{
		Name:          p.spec.Name,
		State:         StatusPending.String(),
		CompSeconds:   p.info.Comp,
		NetSeconds:    p.info.Net,
		Queue:         p.queue,
		Priority:      p.priority,
		HoldReason:    p.holdReason,
		QueuePosition: positions[p.spec.Name],
		Resumable:     p.resume != nil,
		ResumeIter:    p.resumeIter,
		Iteration:     max(p.resumeIter-1, 0),
	}
}

// queuePositionsLocked maps each held job to its 1-based slot in the
// fair admission order.
func (m *Master) queuePositionsLocked() map[string]int {
	ordered := m.fairsched.Order(m.heldLocked(), m.usageLocked(), len(m.workers))
	positions := make(map[string]int, len(ordered))
	for i, h := range ordered {
		positions[h.Job] = i + 1
	}
	return positions
}

// ListJobs reports every deployed and pending job, sorted by name.
func (m *Master) ListJobs() []JobView {
	m.mu.RLock()
	defer m.mu.RUnlock()
	views := make([]JobView, 0, len(m.jobs)+len(m.pending))
	for name, j := range m.jobs {
		views = append(views, m.jobViewLocked(name, j))
	}
	positions := m.queuePositionsLocked()
	for _, p := range m.pending {
		views = append(views, m.pendingViewLocked(p, positions))
	}
	sort.Slice(views, func(a, b int) bool { return views[a].Name < views[b].Name })
	return views
}

// Job reports one job's status; ok is false for unknown names.
func (m *Master) Job(name string) (JobView, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if j, ok := m.jobs[name]; ok {
		return m.jobViewLocked(name, j), true
	}
	if p := m.pendingIdx[name]; p != nil {
		return m.pendingViewLocked(p, m.queuePositionsLocked()), true
	}
	return JobView{}, false
}

// GroupView is one live co-location group: the worker set and the jobs
// sharing it. When the net-aware scheduler is on, the interleaving
// fields expose the solved comm phases (DESIGN.md §14).
type GroupView struct {
	Workers []string
	Jobs    []string
	// Interleaved marks a multi-job group whose comm phases were solved;
	// the fields below are only meaningful when it is true.
	Interleaved bool
	// Compatibility is the group's predicted link compatibility in [0,1]
	// (1 = comm windows fully interleave), calibrated against measured
	// COMP/COMM overlap once trace scrapes accumulate.
	Compatibility float64
	// PhasePeriodSeconds is the solved circle period (the group's Eq. 1
	// iteration time); PhaseOffsets maps job → comm-phase offset seconds.
	PhasePeriodSeconds float64
	PhaseOffsets       map[string]float64
}

// ClusterView is the control plane's cluster status: registered workers,
// the current placement derived from running jobs, and the held queue.
type ClusterView struct {
	Workers []string
	Groups  []GroupView
	Pending []string
}

// Cluster reports the cluster status surface.
func (m *Master) Cluster() ClusterView {
	m.mu.RLock()
	defer m.mu.RUnlock()
	cv := ClusterView{Workers: make([]string, len(m.workers))}
	for i, w := range m.workers {
		cv.Workers[i] = w.name
	}
	plan, members := m.livePlanLocked()
	for gi, g := range plan.Groups {
		gv := GroupView{Workers: members[gi]}
		for _, j := range g.Jobs {
			gv.Jobs = append(gv.Jobs, j.ID)
		}
		if m.opts.NetModel && len(g.Jobs) > 1 {
			il := core.SolveInterleave(g.Jobs, g.Machines)
			gv.Interleaved = true
			gv.Compatibility = il.Compatibility
			gv.PhasePeriodSeconds = il.Period
			gv.PhaseOffsets = make(map[string]float64, len(g.Jobs))
			for ji, j := range g.Jobs {
				gv.PhaseOffsets[j.ID] = il.Offsets[ji]
			}
			// Prefer the measurement-calibrated compatibility once trace
			// scrapes have fed the EWMA (interleave.go).
			label := append([]string(nil), members[gi]...)
			sort.Strings(label)
			if gp := m.phases[strings.Join(label, ",")]; gp != nil && gp.calibrated > 0 {
				gv.Compatibility = gp.calibrated
			}
		}
		cv.Groups = append(cv.Groups, gv)
	}
	for _, p := range m.pending {
		cv.Pending = append(cv.Pending, p.spec.Name)
	}
	return cv
}

// QueueDepth reports the number of jobs held pending.
func (m *Master) QueueDepth() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.pending)
}

// Shutdown drains the control plane for a clean exit: it stops admitting
// new work, snapshots every running job's model as a final checkpoint
// (best effort, within the timeout per job), and closes the master. It
// returns the names of the jobs checkpointed.
func (m *Master) Shutdown(timeout time.Duration) []string {
	if timeout <= 0 {
		timeout = time.Minute
	}
	type target struct {
		name    string
		servers []string
		size    int
		iter    int
	}
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.draining = true
	for _, p := range m.pending {
		if p.finishedCh != nil {
			// Dropped preempted jobs never resume; unpark WaitJob callers.
			close(p.finishedCh)
		}
	}
	m.pending = nil
	m.pendingIdx = make(map[string]*pendingJob)
	m.admitEpoch++
	var targets []target
	for name, j := range m.jobs {
		if j.status != StatusRunning || j.iter == 0 {
			continue
		}
		targets = append(targets, target{
			name:    name,
			servers: m.serverAddrsLocked(j),
			size:    j.spec.Config.ModelSize(),
			iter:    j.iter,
		})
	}
	m.mu.Unlock()
	sort.Slice(targets, func(a, b int) bool { return targets[a].name < targets[b].name })

	var saved []string
	for _, t := range targets {
		snap, err := snapshotModel(t.servers, t.name, t.size, timeout)
		m.mu.Lock()
		if err != nil {
			m.counters.checkpointFailures++
			m.mu.Unlock()
			continue
		}
		if j, ok := m.jobs[t.name]; ok && t.iter >= j.checkpointIter {
			j.checkpoint = snap
			j.checkpointIter = t.iter
			saved = append(saved, t.name)
		}
		m.mu.Unlock()
	}
	m.Close()
	return saved
}

func snapshotModel(servers []string, name string, size int, timeout time.Duration) ([]float64, error) {
	client, err := ps.NewClient(servers, timeout)
	if err != nil {
		return nil, err
	}
	defer client.Close()
	return client.Snapshot(name, size)
}
