package master

import (
	"fmt"
	"sort"
	"time"

	"harmony/internal/profile"
	"harmony/internal/ps"
)

// This file is the capture half of the snapshot/replay pipeline
// (DESIGN.md §16): a versioned, schema-checked serialization of the
// master's complete scheduler-visible state. internal/replay re-executes
// the journaled decision sequence against it; GET /v1/snapshot and
// `harmonyctl snapshot` expose it to operators.

// SnapshotSchemaVersion is the wire version of Snapshot. Any change to
// the snapshot's JSON shape — a new field, a renamed tag, a type change —
// must bump this constant and add a new schema golden
// (internal/replay/testdata/schema_v<N>.json); the golden round-trip
// fixture fails on unversioned changes.
const SnapshotSchemaVersion = 1

// Snapshot is the master's complete scheduler-visible state at one
// moment: the live plan with group placements, every deployed and held
// job with the cost metrics the model sees, the fair-queue policy and
// usage, best-effort PS stripe placement, and the decision journal.
// Field order is fixed and every collection is sorted, so marshaling a
// snapshot is deterministic for fixed state.
type Snapshot struct {
	SchemaVersion int       `json:"schema_version"`
	CapturedAt    time.Time `json:"captured_at"`
	// Options are the scheduler options the captured decisions ran
	// under; replay applies the same model gates (NetModel above all).
	Options SnapshotOptions `json:"options"`
	// Workers are the registered worker names in registration order.
	Workers []string `json:"workers"`
	// Groups is the live plan: jobs sharing a worker set form one group.
	Groups []SnapshotGroup `json:"groups,omitempty"`
	// Jobs covers every job the master knows — deployed, held, finished,
	// canceled — sorted by name.
	Jobs []SnapshotJob `json:"jobs,omitempty"`
	// Queues is the fair-scheduler policy plus live usage per queue.
	Queues []QueueView `json:"queues,omitempty"`
	// PS is the per-stripe parameter-server placement, scraped best
	// effort (absent when no worker answered).
	PS *ps.ClusterStats `json:"ps,omitempty"`
	// Journal is the decision ring, oldest first, enriched with the
	// measured values current at capture time.
	Journal []Event `json:"journal,omitempty"`
}

// SnapshotOptions mirrors core.Options with stable JSON tags.
type SnapshotOptions struct {
	CPUWeight         float64 `json:"cpu_weight,omitempty"`
	MemoryCapGB       float64 `json:"memory_cap_gb,omitempty"`
	MinImprovement    float64 `json:"min_improvement,omitempty"`
	MaxJobsPerGroup   int     `json:"max_jobs_per_group,omitempty"`
	DisableSwapTuning bool    `json:"disable_swap_tuning,omitempty"`
	NetModel          bool    `json:"net_model,omitempty"`
}

// SnapshotGroup is one live co-location group.
type SnapshotGroup struct {
	Workers []string `json:"workers"`
	Jobs    []string `json:"jobs"`
}

// SnapshotJob is one job's scheduler-visible state: lifecycle, fair
// coordinates, placement, the Eq. 1 cost inputs (profiled metrics when
// enough samples accumulated, submission hints before), the sensitivity
// fit with its per-DoP evidence, and measured iteration time.
type SnapshotJob struct {
	Name  string `json:"name"`
	State string `json:"state"`
	// Algorithm, Seed, Alpha and the worker band reconstruct the spec on
	// the replay side (scenario conversion needs the app kind and the
	// iteration budget).
	Algorithm  string  `json:"algorithm,omitempty"`
	Seed       int64   `json:"seed,omitempty"`
	Alpha      float64 `json:"alpha,omitempty"`
	Iterations int     `json:"iterations,omitempty"`
	MinWorkers int     `json:"min_workers,omitempty"`
	MaxWorkers int     `json:"max_workers,omitempty"`
	// Fair-scheduler coordinates.
	Queue      string `json:"queue,omitempty"`
	Priority   int    `json:"priority,omitempty"`
	ArrivalSeq uint64 `json:"arrival_seq,omitempty"`
	StartSeq   uint64 `json:"start_seq,omitempty"`
	// Live progress and placement.
	Iteration           int      `json:"iteration,omitempty"`
	Workers             []string `json:"workers,omitempty"`
	CheckpointIteration int      `json:"checkpoint_iteration,omitempty"`
	// Scheduler cost view (§IV-B1 units). CompFloorSeconds is the fitted
	// serial floor recorded whenever the sensitivity fit converged,
	// regardless of Options.NetModel; replay applies the same gate
	// jobInfoLocked does.
	CompSeconds      float64 `json:"comp_seconds,omitempty"`
	NetSeconds       float64 `json:"net_seconds,omitempty"`
	InputGB          float64 `json:"input_gb,omitempty"`
	ModelGB          float64 `json:"model_gb,omitempty"`
	WorkGB           float64 `json:"work_gb,omitempty"`
	JVMHeapFactor    float64 `json:"jvm_heap_factor,omitempty"`
	PullFrac         float64 `json:"pull_frac,omitempty"`
	CompFloorSeconds float64 `json:"comp_floor_seconds,omitempty"`
	// Profiling state: whether live metrics supersede the hints, how
	// many samples back them, and the per-DoP evidence of the fit.
	Profiled        bool               `json:"profiled,omitempty"`
	ProfileSamples  int                `json:"profile_samples,omitempty"`
	ProfilePoints   []profile.DoPPoint `json:"profile_points,omitempty"`
	SensitivityDoPs int                `json:"sensitivity_dops,omitempty"`
	// MeasuredIterSeconds is the EWMA of wall time between barrier
	// releases — the measured counterpart of the Eq. 1 prediction.
	MeasuredIterSeconds float64 `json:"measured_iter_seconds,omitempty"`
	// Hold state for pending jobs.
	HoldReason      string `json:"hold_reason,omitempty"`
	Resumable       bool   `json:"resumable,omitempty"`
	ResumeIteration int    `json:"resume_iteration,omitempty"`
}

// Snapshot captures the master's state. The PS stripe scrape runs first
// (it fans out RPCs and must not hold m.mu); everything else — workers,
// plan, jobs, queues, journal — is captured under one read lock, so the
// core scheduler state is internally consistent.
func (m *Master) Snapshot() (Snapshot, error) {
	s := Snapshot{
		SchemaVersion: SnapshotSchemaVersion,
		CapturedAt:    time.Now().UTC(),
	}
	if cs, err := m.PSStats(); err == nil && len(cs.Servers) > 0 {
		s.PS = &cs
	}

	m.mu.RLock()
	defer m.mu.RUnlock()
	s.Options = SnapshotOptions{
		CPUWeight:         m.opts.CPUWeight,
		MemoryCapGB:       m.opts.MemoryCapGB,
		MinImprovement:    m.opts.MinImprovement,
		MaxJobsPerGroup:   m.opts.MaxJobsPerGroup,
		DisableSwapTuning: m.opts.DisableSwapTuning,
		NetModel:          m.opts.NetModel,
	}
	s.Workers = make([]string, len(m.workers))
	for i, w := range m.workers {
		s.Workers[i] = w.name
	}

	plan, members := m.livePlanLocked()
	for gi, g := range plan.Groups {
		sg := SnapshotGroup{Workers: append([]string(nil), members[gi]...)}
		for _, j := range g.Jobs {
			sg.Jobs = append(sg.Jobs, j.ID)
		}
		s.Groups = append(s.Groups, sg)
	}

	names := make([]string, 0, len(m.jobs))
	for name := range m.jobs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		s.Jobs = append(s.Jobs, m.snapshotJobLocked(name, m.jobs[name]))
	}
	for _, p := range m.pending {
		s.Jobs = append(s.Jobs, m.snapshotPendingLocked(p))
	}
	sort.Slice(s.Jobs, func(a, b int) bool { return s.Jobs[a].Name < s.Jobs[b].Name })

	s.Queues = m.queuesLocked()

	evs := m.journal.snapshotSince(0, "")
	m.enrichEventsLocked(evs)
	s.Journal = evs
	return s, nil
}

// snapshotJobLocked serializes one deployed (or finished/canceled) job.
func (m *Master) snapshotJobLocked(name string, j *job) SnapshotJob {
	info := m.jobInfoLocked(name, j)
	workers := make([]string, len(j.workers))
	for i, wi := range j.workers {
		workers[i] = m.workers[wi].name
	}
	sj := SnapshotJob{
		Name:      name,
		State:     j.status.String(),
		Algorithm: j.spec.Config.Kind.String(),
		Seed:      j.spec.Seed, Alpha: j.spec.Alpha,
		Iterations: j.spec.Iterations,
		MinWorkers: j.spec.MinWorkers, MaxWorkers: j.spec.MaxWorkers,
		Queue: j.queue, Priority: j.priority,
		ArrivalSeq: j.arrival, StartSeq: j.startSeq,
		Iteration: j.iter, Workers: workers,
		CheckpointIteration: j.checkpointIter,
		CompSeconds:         info.Comp, NetSeconds: info.Net,
		InputGB: info.InputGB, ModelGB: info.ModelGB, WorkGB: info.WorkGB,
		JVMHeapFactor: info.JVMHeapFactor, PullFrac: info.PullFrac,
		MeasuredIterSeconds: j.measIter,
	}
	if met, ok := m.profiles.Metrics(name); ok {
		sj.Profiled = met.Profiled()
		sj.ProfileSamples = met.Samples
		sj.ProfilePoints = m.profiles.Points(name)
	}
	if sens, ok := m.profiles.Sensitivity(name); ok && sens.Fitted() {
		sj.CompFloorSeconds = sens.CompFloorSeconds
		sj.SensitivityDoPs = sens.DoPs
	}
	return sj
}

// snapshotPendingLocked serializes one held job.
func (m *Master) snapshotPendingLocked(p *pendingJob) SnapshotJob {
	return SnapshotJob{
		Name:      p.spec.Name,
		State:     StatusPending.String(),
		Algorithm: p.spec.Config.Kind.String(),
		Seed:      p.spec.Seed, Alpha: p.spec.Alpha,
		Iterations: p.spec.Iterations,
		MinWorkers: p.spec.MinWorkers, MaxWorkers: p.spec.MaxWorkers,
		Queue: p.queue, Priority: p.priority,
		ArrivalSeq:  p.seq,
		CompSeconds: p.info.Comp, NetSeconds: p.info.Net,
		InputGB: p.info.InputGB, ModelGB: p.info.ModelGB, WorkGB: p.info.WorkGB,
		JVMHeapFactor: p.info.JVMHeapFactor, PullFrac: p.info.PullFrac,
		HoldReason: p.holdReason,
		Resumable:  p.resume != nil,
		ResumeIteration: func() int {
			if p.resume != nil {
				return p.resumeIter
			}
			return 0
		}(),
	}
}

// Validate schema-checks a decoded snapshot: the version must match this
// build, references must resolve, and the journal must be seq-monotone.
// Replay refuses snapshots that fail validation.
func (s *Snapshot) Validate() error {
	if s.SchemaVersion != SnapshotSchemaVersion {
		return fmt.Errorf("master: snapshot schema version %d, this build reads %d",
			s.SchemaVersion, SnapshotSchemaVersion)
	}
	known := make(map[string]bool, len(s.Workers))
	for _, w := range s.Workers {
		if known[w] {
			return fmt.Errorf("master: snapshot lists worker %q twice", w)
		}
		known[w] = true
	}
	jobs := make(map[string]bool, len(s.Jobs))
	for _, j := range s.Jobs {
		if j.Name == "" {
			return fmt.Errorf("master: snapshot job with empty name")
		}
		if jobs[j.Name] {
			return fmt.Errorf("master: snapshot lists job %q twice", j.Name)
		}
		jobs[j.Name] = true
		for _, w := range j.Workers {
			if !known[w] {
				return fmt.Errorf("master: job %q placed on unknown worker %q", j.Name, w)
			}
		}
	}
	for gi, g := range s.Groups {
		for _, w := range g.Workers {
			if !known[w] {
				return fmt.Errorf("master: group %d uses unknown worker %q", gi, w)
			}
		}
		for _, jn := range g.Jobs {
			if !jobs[jn] {
				return fmt.Errorf("master: group %d lists unknown job %q", gi, jn)
			}
		}
	}
	var prev uint64
	for i, e := range s.Journal {
		if e.Seq <= prev {
			return fmt.Errorf("master: journal seq not monotone at index %d (%d after %d)",
				i, e.Seq, prev)
		}
		prev = e.Seq
	}
	return nil
}
