package master

import (
	"fmt"
	"sort"
	"time"

	"harmony/internal/core"
	"harmony/internal/mlapp"
	"harmony/internal/ps"
	"harmony/internal/rpc"
	"harmony/internal/worker"
)

// This file is the cluster-scale admission benchmark behind
// `harmony-bench -bench-admit` (DESIGN.md §15): it drives a real Master
// — the live admission path, not a simulation — at a scale no test
// cluster reaches (1K machines, 10K held jobs) by standing up a single
// stub worker RPC server that acks deploy/teardown calls for the whole
// fleet. It lives in package master because the harness must reach the
// master's internals: registering synthetic workers without 1K dial
// handshakes, completing jobs without a data plane, and timing drain
// passes synchronously with the background drainer parked.

// AdmitBenchConfig sizes one benchmark run.
type AdmitBenchConfig struct {
	// Workers is the synthetic fleet size; Groups co-location groups of
	// Workers/Groups machines each are seeded with two jobs apiece.
	Workers int
	Groups  int
	// HeldJobs is the size of the admission flood: jobs enqueued against
	// the full cluster, every one held.
	HeldJobs int
	// ChurnRounds completes one seeded job per round and times the drain
	// pass that re-evaluates the held queue against the vacated slot.
	ChurnRounds int
	// Legacy re-enables the pre-§15 clone-and-rescore admission path.
	Legacy bool
}

func (c AdmitBenchConfig) withDefaults() AdmitBenchConfig {
	if c.Workers <= 0 {
		c.Workers = 1000
	}
	if c.Groups <= 0 {
		c.Groups = 50
	}
	if c.HeldJobs <= 0 {
		c.HeldJobs = 10000
	}
	if c.ChurnRounds <= 0 {
		c.ChurnRounds = 5
	}
	return c
}

// AdmitBenchResult reports one mode's measurements.
type AdmitBenchResult struct {
	Mode        string `json:"mode"`
	Workers     int    `json:"workers"`
	SeedJobs    int    `json:"seed_jobs"`
	HeldJobs    int    `json:"held_jobs"`
	ChurnRounds int    `json:"churn_rounds"`

	// Enqueue latency over the held flood: each sample is one full
	// admission decision (arrival rule + fair gates) that ends in a hold.
	EnqueueP50Micros float64 `json:"enqueue_p50_micros"`
	EnqueueP99Micros float64 `json:"enqueue_p99_micros"`
	EnqueueSeconds   float64 `json:"enqueue_seconds"`

	// Drain figures over the churn rounds: every round re-evaluates the
	// whole held queue, admitting into the slot the completion vacated.
	DrainSeconds     float64 `json:"drain_seconds"`
	Admissions       int64   `json:"admissions"`
	AdmissionsPerSec float64 `json:"admissions_per_sec"`
	// HoldEvalsPerSec is drain throughput in held-candidate evaluations
	// per second (each round scans the full queue at least once).
	HoldEvalsPerSec float64 `json:"hold_evals_per_sec"`
	// FullScoreCalls counts full-plan Options.Score evaluations across
	// the flood and churn phases: 0 on the fast path by construction.
	FullScoreCalls int64 `json:"full_score_calls"`
}

func benchSpec(name string, minW, maxW int) JobSpec {
	return JobSpec{
		Name:       name,
		Config:     mlapp.Config{Kind: mlapp.MLR, Features: 12, Classes: 3, Rows: 96, LearningRate: 0.2},
		Iterations: 1000,
		MinWorkers: minW,
		MaxWorkers: maxW,
	}
}

// RunAdmitBench executes one benchmark mode against a fresh master.
func RunAdmitBench(cfg AdmitBenchConfig) (AdmitBenchResult, error) {
	cfg = cfg.withDefaults()
	groupSize := cfg.Workers / cfg.Groups
	if groupSize < 1 {
		return AdmitBenchResult{}, fmt.Errorf("admitbench: %d workers cannot fill %d groups", cfg.Workers, cfg.Groups)
	}
	res := AdmitBenchResult{
		Mode: "fast", Workers: cfg.Workers, SeedJobs: 2 * cfg.Groups,
		HeldJobs: cfg.HeldJobs, ChurnRounds: cfg.ChurnRounds,
	}
	if cfg.Legacy {
		res.Mode = "legacy"
	}

	// Two jobs per group is the steady state: the cap makes full groups
	// infeasible for the arrival rule, so the flood holds deterministically
	// and each churn completion vacates exactly one slot.
	m, err := New("127.0.0.1:0", core.Options{MaxJobsPerGroup: 2})
	if err != nil {
		return res, err
	}
	defer m.Close()
	// Park the background drainer: the benchmark invokes drainQueue
	// synchronously so each pass can be timed.
	m.drainStopOnce.Do(func() { close(m.drainStop) })

	// One stub RPC server acks deploy/teardown for the entire fleet; all
	// synthetic workers share one dialed client.
	stub := rpc.NewServer()
	stub.Handle(worker.MethodLoadJob, rpc.Typed(func(worker.LoadJobArgs) (worker.Ack, error) {
		return worker.Ack{}, nil
	}))
	stub.Handle(worker.MethodStartJob, rpc.Typed(func(worker.StartJobArgs) (worker.Ack, error) {
		return worker.Ack{}, nil
	}))
	stub.Handle(worker.MethodDropJob, rpc.Typed(func(worker.DropJobArgs) (worker.Ack, error) {
		return worker.Ack{}, nil
	}))
	stub.Handle(ps.MethodDrop, rpc.Typed(func(ps.DropArgs) (ps.Ack, error) {
		return ps.Ack{}, nil
	}))
	stubAddr, err := stub.Listen("127.0.0.1:0")
	if err != nil {
		return res, err
	}
	defer stub.Close()
	client, err := rpc.Dial(stubAddr, time.Minute)
	if err != nil {
		return res, err
	}
	m.mu.Lock()
	for i := 0; i < cfg.Workers; i++ {
		m.workers = append(m.workers,
			workerRef{name: fmt.Sprintf("w%04d", i), addr: stubAddr, client: client})
	}
	m.legacyAdmission = cfg.Legacy
	m.admitEpoch++
	m.mu.Unlock()

	// Seed phase. First wave: comp-heavy jobs take the free path, carving
	// the fleet into Groups gangs of groupSize. Second wave: complementary
	// net-heavy jobs, each admitted by the arrival rule into a one-job
	// group (raising its net utilization raises the cluster score).
	for i := 0; i < 2*cfg.Groups; i++ {
		var prof Profile
		if i < cfg.Groups {
			prof = Profile{
				CompSeconds: float64(groupSize) * (0.45 + 0.01*float64(i%5)),
				NetSeconds:  0.08 + 0.002*float64(i%7),
			}
		} else {
			prof = Profile{
				CompSeconds: float64(groupSize) * 0.05,
				NetSeconds:  0.30 + 0.002*float64(i%7),
			}
		}
		adm, err := m.Enqueue(benchSpec(fmt.Sprintf("seed%04d", i), groupSize, groupSize), prof)
		if err != nil {
			return res, fmt.Errorf("admitbench: seed %d: %w", i, err)
		}
		if !adm.Admitted {
			return res, fmt.Errorf("admitbench: seed job %d held (wave misconfigured)", i)
		}
	}

	scoreCalls := core.FullScoreCalls()

	// Flood phase: HeldJobs arrivals against a full cluster. Every one
	// walks the arrival rule over all groups, fails the cap, finds no free
	// workers, and holds. Each Enqueue is one latency sample.
	lat := make([]time.Duration, cfg.HeldJobs)
	floodStart := time.Now()
	for i := 0; i < cfg.HeldJobs; i++ {
		prof := Profile{
			CompSeconds: float64(groupSize) * 0.04,
			NetSeconds:  0.25 + 0.001*float64(i%11),
		}
		t0 := time.Now()
		adm, err := m.Enqueue(benchSpec(fmt.Sprintf("held%05d", i), 1, groupSize), prof)
		lat[i] = time.Since(t0)
		if err != nil {
			return res, fmt.Errorf("admitbench: flood %d: %w", i, err)
		}
		if adm.Admitted {
			return res, fmt.Errorf("admitbench: flood job %d admitted into a full cluster", i)
		}
	}
	res.EnqueueSeconds = time.Since(floodStart).Seconds()
	sort.Slice(lat, func(a, b int) bool { return lat[a] < lat[b] })
	res.EnqueueP50Micros = float64(lat[len(lat)/2].Microseconds())
	res.EnqueueP99Micros = float64(lat[len(lat)*99/100].Microseconds())

	// Churn phase: complete one second-wave seed job per round, then time
	// the synchronous drain pass that re-scores the held queue against the
	// vacated slot.
	drainedBefore := m.Counters().QueueDrained
	var drain time.Duration
	for r := 0; r < cfg.ChurnRounds; r++ {
		name := fmt.Sprintf("seed%04d", cfg.Groups+r)
		m.mu.Lock()
		j, ok := m.jobs[name]
		if !ok {
			m.mu.Unlock()
			return res, fmt.Errorf("admitbench: churn victim %s missing", name)
		}
		epoch := j.epoch
		members := make([]string, len(j.workers))
		for i, wi := range j.workers {
			members[i] = m.workers[wi].name
		}
		m.mu.Unlock()
		for _, w := range members {
			if _, err := m.handleJobDone(worker.JobDoneArgs{Job: name, Worker: w, Epoch: epoch}); err != nil {
				return res, fmt.Errorf("admitbench: complete %s: %w", name, err)
			}
		}
		t0 := time.Now()
		m.drainQueue()
		drain += time.Since(t0)
	}
	res.DrainSeconds = drain.Seconds()
	res.Admissions = m.Counters().QueueDrained - drainedBefore
	if res.DrainSeconds > 0 {
		res.AdmissionsPerSec = float64(res.Admissions) / res.DrainSeconds
		// Each round scans the held queue at least once before giving up;
		// this understates evaluations slightly (admit-terminated passes
		// rescan) and is comparable across modes.
		res.HoldEvalsPerSec = float64(cfg.ChurnRounds) * float64(cfg.HeldJobs) / res.DrainSeconds
	}
	res.FullScoreCalls = core.FullScoreCalls() - scoreCalls
	return res, nil
}
