package master

import (
	"testing"
	"time"

	"harmony/internal/core"
	"harmony/internal/mlapp"
	"harmony/internal/worker"
)

// TestWorkerFailureRecovery kills a worker mid-training and recovers the
// job on the survivors from the latest background checkpoint (§VI).
func TestWorkerFailureRecovery(t *testing.T) {
	m, err := New("127.0.0.1:0", core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	workers := make([]*worker.Worker, 3)
	for i := range workers {
		w, _, err := worker.New("w"+string(rune('0'+i)), "127.0.0.1:0", m.Addr(), t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		workers[i] = w
	}
	defer func() {
		for _, w := range workers[1:] {
			w.Close()
		}
	}()
	if err := m.WaitForWorkers(3, 5*time.Second); err != nil {
		t.Fatal(err)
	}

	if err := m.Submit(JobSpec{
		Name:       "mlr",
		Config:     mlapp.Config{Kind: mlapp.MLR, Features: 12, Classes: 3, Rows: 96, LearningRate: 0.2},
		Iterations: 60,
		Seed:       5,
	}, nil); err != nil {
		t.Fatal(err)
	}

	// Wait for a background checkpoint to land.
	deadline := time.Now().Add(20 * time.Second)
	var ckIter int
	for time.Now().Before(deadline) {
		snap, iter, err := m.Checkpoint("mlr")
		if err != nil {
			t.Fatal(err)
		}
		if snap != nil {
			ckIter = iter
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if ckIter == 0 {
		t.Fatal("no background checkpoint within deadline")
	}

	// Kill worker 0 and recover on the survivors.
	workers[0].Close()
	affected, err := m.RemoveWorker("w0")
	if err != nil {
		t.Fatal(err)
	}
	if len(affected) != 1 || affected[0] != "mlr" {
		t.Fatalf("affected jobs = %v, want [mlr]", affected)
	}
	// Cut the remaining run short so the test stays fast.
	m.mu.Lock()
	m.jobs["mlr"].spec.Iterations = ckIter + 4
	m.mu.Unlock()
	if err := m.RecoverJob("mlr", nil); err != nil {
		t.Fatal(err)
	}
	if err := m.WaitJob("mlr", 60*time.Second); err != nil {
		t.Fatal(err)
	}
	status, iter, loss, err := m.Status("mlr")
	if err != nil {
		t.Fatal(err)
	}
	if status != StatusFinished {
		t.Errorf("status = %v after recovery", status)
	}
	if iter < ckIter {
		t.Errorf("final iteration %d below checkpoint %d", iter, ckIter)
	}
	if loss <= 0 {
		t.Errorf("loss = %v after recovery", loss)
	}
}

func TestRemoveWorkerUnknown(t *testing.T) {
	m, err := New("127.0.0.1:0", core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if _, err := m.RemoveWorker("ghost"); err == nil {
		t.Error("RemoveWorker on unknown worker succeeded")
	}
}

func TestCheckpointUnknownJob(t *testing.T) {
	m, err := New("127.0.0.1:0", core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if _, _, err := m.Checkpoint("ghost"); err == nil {
		t.Error("Checkpoint on unknown job succeeded")
	}
	if err := m.RecoverJob("ghost", nil); err == nil {
		t.Error("RecoverJob on unknown job succeeded")
	}
}
