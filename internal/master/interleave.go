package master

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"harmony/internal/core"
)

// This file is the live half of the CASSINI-style interleaving layer
// (DESIGN.md §14). The scheduler side (core.SolveInterleave) assigns each
// co-located job a phase offset on its group's shared link; the master
// enforces the offsets by staggering barrier releases — a job whose group
// finished an iteration early is held for at most a small slice of the
// period so its next PULL/PUSH windows land on the solved phase — and
// feeds the measured COMP/COMM overlap ratio from internal/obs back into
// the predicted compatibility each scrape.

const (
	// maxStaggerFraction caps a barrier-release delay at this share of
	// the group period: the stagger is a phase corrector for small drift,
	// not a throttle. A group that has drifted further restarts free and
	// re-aligns over the next cycles.
	maxStaggerFraction = 0.15
	// maxStaggerDelay absolutely bounds a release delay so mis-profiled
	// periods can never park a whole worker group for long.
	maxStaggerDelay = 250 * time.Millisecond
	// phaseResolveInterval is how often a group's offsets are re-solved
	// against fresher profiled metrics while its membership is stable.
	phaseResolveInterval = 2 * time.Second
	// recalibrateAlpha weighs a new measured-overlap sample in the
	// calibrated compatibility EWMA.
	recalibrateAlpha = 0.3
)

// groupPhase is the solved interleaving for one live co-location group,
// keyed by the group label (sorted comma-joined worker names — the same
// label internal/obs tags spans with).
type groupPhase struct {
	// sig identifies the job membership the solve was made for.
	sig string
	// anchor is the phase reference: offsets are measured against it and
	// it survives re-solves so the group's phasing stays continuous.
	anchor   time.Time
	solvedAt time.Time
	period   float64
	offsets  map[string]float64
	// predicted is the solver's compatibility; predOverlap the overlap
	// ratio the model expects obs to measure under those offsets.
	predicted   float64
	predOverlap float64
	// calibrated folds measured overlap into predicted (EWMA); zero
	// until the first sufficient-sample measurement arrives.
	calibrated float64
	journaled  bool
}

// groupLabelLocked is the group key for a job's current worker set.
func (m *Master) groupLabelLocked(j *job) string {
	names := make([]string, len(j.workers))
	for i, wi := range j.workers {
		names[i] = m.workers[wi].name
	}
	sort.Strings(names)
	return strings.Join(names, ",")
}

// groupPhaseLocked returns the solved phase state for the group the job
// runs in, solving (or re-solving) when membership changed or the solve
// went stale. Returns nil when the job runs alone — nothing to
// interleave — or is not running.
func (m *Master) groupPhaseLocked(name string, now time.Time) *groupPhase {
	j := m.jobs[name]
	if j == nil || j.status != StatusRunning {
		return nil
	}
	key := m.groupLabelLocked(j)
	members := make([]string, 0, 2)
	for other, oj := range m.jobs {
		if oj.status == StatusRunning && m.groupLabelLocked(oj) == key {
			members = append(members, other)
		}
	}
	if len(members) < 2 {
		delete(m.phases, key)
		return nil
	}
	sort.Strings(members)
	sig := strings.Join(members, "\x00")
	gp := m.phases[key]
	if gp != nil && gp.sig == sig && now.Sub(gp.solvedAt) < phaseResolveInterval {
		return gp
	}
	infos := make([]core.JobInfo, len(members))
	for i, id := range members {
		infos[i] = m.jobInfoLocked(id, m.jobs[id])
	}
	il := core.SolveInterleave(infos, len(j.workers))
	if gp == nil || gp.sig != sig {
		gp = &groupPhase{sig: sig, anchor: now}
		m.phases[key] = gp
	}
	gp.solvedAt = now
	gp.period = il.Period
	gp.predicted = il.Compatibility
	gp.predOverlap = predictOverlap(infos, len(j.workers), il.Compatibility)
	gp.offsets = make(map[string]float64, len(members))
	for i, id := range members {
		gp.offsets[id] = il.Offsets[i]
	}
	return gp
}

// predictOverlap is the COMP/COMM overlap ratio the model expects
// internal/obs to measure for the group: the pipelined share of the
// period, discounted by the compatibility (collided comm extends comm
// windows while CPUs idle, eroding overlap).
func predictOverlap(jobs []core.JobInfo, machines int, compat float64) float64 {
	var sumComp, sumNet, iter float64
	for _, j := range jobs {
		sumComp += j.TcpuAt(machines)
		sumNet += j.Net
		iter = math.Max(iter, j.IterAt(machines))
	}
	iter = math.Max(iter, math.Max(sumComp, sumNet))
	if iter <= 0 {
		return 0
	}
	return compat * math.Min(sumComp, sumNet) / iter
}

// phaseDelayLocked computes how long to hold a group's barrier release so
// the named job's next comm windows land on its solved phase offset.
// Zero when the net model is off, the job runs alone, or the group has
// drifted too far for a short hold to correct.
func (m *Master) phaseDelayLocked(name string, now time.Time) time.Duration {
	if !m.opts.NetModel {
		return 0
	}
	gp := m.groupPhaseLocked(name, now)
	if gp == nil || gp.period <= 0 {
		return 0
	}
	phase := math.Mod(now.Sub(gp.anchor).Seconds(), gp.period)
	delay := gp.offsets[name] - phase
	if delay < 0 {
		delay += gp.period
	}
	if delay > maxStaggerFraction*gp.period {
		return 0
	}
	d := time.Duration(delay * float64(time.Second))
	if d > maxStaggerDelay {
		d = maxStaggerDelay
	}
	return d
}

// recalibrateInterleave folds measured per-group overlap ratios into the
// calibrated compatibility of every live group (called on each
// MeasuredOverlap scrape). Groups whose measurement has insufficient
// samples (ok false) are skipped — "no data" is not "no overlap". The
// first calibration per group membership is journaled predicted-vs-
// measured, like the T_itr/U stamps.
func (m *Master) recalibrateInterleave(ratio map[string]float64, ok map[string]bool) {
	if !m.opts.NetModel {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	live := make(map[string]bool, len(m.jobs))
	for _, j := range m.jobs {
		if j.status == StatusRunning {
			live[m.groupLabelLocked(j)] = true
		}
	}
	for key, gp := range m.phases {
		if !live[key] {
			delete(m.phases, key)
			continue
		}
		if !ok[key] {
			continue
		}
		measured := gp.predicted
		if gp.predOverlap > 1e-9 {
			scale := ratio[key] / gp.predOverlap
			if scale > 1 {
				scale = 1
			}
			measured = gp.predicted * scale
		}
		if gp.calibrated == 0 {
			gp.calibrated = measured
		} else {
			gp.calibrated = recalibrateAlpha*measured + (1-recalibrateAlpha)*gp.calibrated
		}
		if !gp.journaled {
			gp.journaled = true
			m.journal.append(Event{
				Kind:                   EventRecalibrate,
				Group:                  strings.Split(key, ","),
				PredictedCompatibility: gp.predicted,
				MeasuredCompatibility:  gp.calibrated,
				Note: fmt.Sprintf("overlap ratio %.3f vs predicted %.3f",
					ratio[key], gp.predOverlap),
			})
		}
	}
}
