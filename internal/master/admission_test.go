package master

import (
	"errors"
	"testing"
	"time"

	"harmony/internal/mlapp"
)

func TestEnqueueIdleClusterAdmits(t *testing.T) {
	m := cluster(t, 2)
	adm, err := m.Enqueue(spec("a", mlapp.MLR, 5), Profile{})
	if err != nil {
		t.Fatal(err)
	}
	if !adm.Admitted || len(adm.Workers) != 2 {
		t.Fatalf("idle-cluster admission = %+v, want admitted on both workers", adm)
	}
	if err := m.WaitJob("a", 60*time.Second); err != nil {
		t.Fatal(err)
	}
	if c := m.Counters(); c.AdmittedInitial != 1 {
		t.Errorf("AdmittedInitial = %d, want 1", c.AdmittedInitial)
	}
}

func TestEnqueueUnprofiledHeldWhileBusy(t *testing.T) {
	m := cluster(t, 2)
	if err := m.Submit(spec("a", mlapp.MLR, 100000), nil); err != nil {
		t.Fatal(err)
	}
	// An unprofiled job cannot improve the score of a busy plan, so the
	// arrival rule holds it (§IV-B4).
	adm, err := m.Enqueue(spec("b", mlapp.Lasso, 5), Profile{})
	if err != nil {
		t.Fatal(err)
	}
	if adm.Admitted {
		t.Fatal("unprofiled job admitted into a busy cluster")
	}
	if d := m.QueueDepth(); d != 1 {
		t.Fatalf("queue depth = %d, want 1", d)
	}
	if v, ok := m.Job("b"); !ok || v.State != "pending" {
		t.Fatalf("Job(b) = %+v, %v; want pending", v, ok)
	}
	// Names are reserved while pending.
	if _, err := m.Enqueue(spec("b", mlapp.Lasso, 5), Profile{}); !errors.Is(err, ErrDuplicateJob) {
		t.Errorf("duplicate enqueue = %v, want ErrDuplicateJob", err)
	}
	if err := m.Submit(spec("b", mlapp.Lasso, 5), nil); !errors.Is(err, ErrDuplicateJob) {
		t.Errorf("duplicate submit of pending name = %v, want ErrDuplicateJob", err)
	}
	// Canceling a pending job removes it from the queue.
	if err := m.Cancel("b"); err != nil {
		t.Fatal(err)
	}
	if d := m.QueueDepth(); d != 0 {
		t.Fatalf("queue depth after cancel = %d, want 0", d)
	}
	if err := m.Cancel("b"); !errors.Is(err, ErrUnknownJob) {
		t.Errorf("cancel of removed job = %v, want ErrUnknownJob", err)
	}
	if err := m.Cancel("a"); err != nil {
		t.Fatal(err)
	}
}

func TestQueueDrainOnCompletion(t *testing.T) {
	m := cluster(t, 2)
	if err := m.Submit(spec("a", mlapp.MLR, 6), nil); err != nil {
		t.Fatal(err)
	}
	adm, err := m.Enqueue(spec("b", mlapp.Lasso, 4), Profile{})
	if err != nil {
		t.Fatal(err)
	}
	if adm.Admitted {
		t.Fatal("job b admitted while a was running")
	}
	if err := m.WaitJob("a", 60*time.Second); err != nil {
		t.Fatal(err)
	}
	// a's completion triggers a drain that admits b on the idle cluster.
	deadline := time.Now().Add(20 * time.Second)
	for {
		if v, ok := m.Job("b"); ok && v.State != "pending" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job b was not drained from the queue after a finished")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := m.WaitJob("b", 60*time.Second); err != nil {
		t.Fatal(err)
	}
	c := m.Counters()
	if c.QueueDrained != 1 {
		t.Errorf("QueueDrained = %d, want 1", c.QueueDrained)
	}
	if c.HeldPending != 1 {
		t.Errorf("HeldPending = %d, want 1", c.HeldPending)
	}
}

func TestCancelRunningJobFreesCluster(t *testing.T) {
	m := cluster(t, 2)
	if err := m.Submit(spec("a", mlapp.MLR, 100000), nil); err != nil {
		t.Fatal(err)
	}
	if err := m.Cancel("a"); err != nil {
		t.Fatal(err)
	}
	if v, _ := m.Job("a"); v.State != "canceled" {
		t.Fatalf("state after cancel = %q, want canceled", v.State)
	}
	// Cancel is idempotent on an already-canceled job.
	if err := m.Cancel("a"); err != nil {
		t.Fatal(err)
	}
	// WaitJob unblocks on cancellation.
	if err := m.WaitJob("a", 10*time.Second); err != nil {
		t.Fatal(err)
	}
	// The cluster is idle again: a new job is admitted immediately.
	adm, err := m.Enqueue(spec("c", mlapp.Lasso, 4), Profile{})
	if err != nil {
		t.Fatal(err)
	}
	if !adm.Admitted {
		t.Fatal("cluster not reusable after cancel")
	}
	if err := m.WaitJob("c", 60*time.Second); err != nil {
		t.Fatal(err)
	}
	if c := m.Counters(); c.Canceled != 1 {
		t.Errorf("Canceled = %d, want 1", c.Canceled)
	}
}

func TestCancelFinishedJobErrors(t *testing.T) {
	m := cluster(t, 1)
	if err := m.Submit(spec("a", mlapp.MLR, 3), nil); err != nil {
		t.Fatal(err)
	}
	if err := m.WaitJob("a", 60*time.Second); err != nil {
		t.Fatal(err)
	}
	if err := m.Cancel("a"); !errors.Is(err, ErrJobFinished) {
		t.Errorf("cancel of finished job = %v, want ErrJobFinished", err)
	}
}

func TestShutdownCheckpointsRunningJobs(t *testing.T) {
	m := cluster(t, 2)
	if err := m.Submit(spec("a", mlapp.NMF, 100000), nil); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(20 * time.Second)
	for {
		_, iter, _, err := m.Status("a")
		if err != nil {
			t.Fatal(err)
		}
		if iter >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job a made no progress")
		}
		time.Sleep(5 * time.Millisecond)
	}
	saved := m.Shutdown(20 * time.Second)
	found := false
	for _, name := range saved {
		if name == "a" {
			found = true
		}
	}
	if !found {
		t.Fatalf("Shutdown checkpointed %v, want [a]", saved)
	}
	snap, iter, err := m.Checkpoint("a")
	if err != nil {
		t.Fatal(err)
	}
	if len(snap) == 0 || iter < 2 {
		t.Errorf("final checkpoint: %d values at iteration %d", len(snap), iter)
	}
	// The drained master rejects new work.
	if _, err := m.Enqueue(spec("z", mlapp.MLR, 3), Profile{}); !errors.Is(err, ErrDraining) {
		t.Errorf("enqueue after shutdown = %v, want ErrDraining", err)
	}
}

func TestListJobsIncludesPending(t *testing.T) {
	m := cluster(t, 2)
	if err := m.Submit(spec("a", mlapp.MLR, 100000), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Enqueue(spec("b", mlapp.Lasso, 4), Profile{}); err != nil {
		t.Fatal(err)
	}
	views := m.ListJobs()
	if len(views) != 2 {
		t.Fatalf("ListJobs = %d entries, want 2", len(views))
	}
	if views[0].Name != "a" || views[1].Name != "b" {
		t.Fatalf("ListJobs order = [%s %s], want [a b]", views[0].Name, views[1].Name)
	}
	if views[1].State != "pending" {
		t.Errorf("pending view = %+v", views[1])
	}
	cv := m.Cluster()
	if len(cv.Workers) != 2 || len(cv.Groups) != 1 || len(cv.Pending) != 1 {
		t.Errorf("cluster view = %+v", cv)
	}
	if err := m.Cancel("a"); err != nil {
		t.Fatal(err)
	}
}
