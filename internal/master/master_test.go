package master

import (
	"strings"
	"testing"
	"time"

	"harmony/internal/core"
	"harmony/internal/mlapp"
	"harmony/internal/worker"
)

// cluster spins up a master and n live workers over loopback TCP.
func cluster(t *testing.T, n int) *Master {
	t.Helper()
	m, err := New("127.0.0.1:0", core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)
	for i := 0; i < n; i++ {
		w, _, err := worker.New(
			"w"+string(rune('0'+i)), "127.0.0.1:0", m.Addr(), t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(w.Close)
	}
	if err := m.WaitForWorkers(n, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	return m
}

func spec(name string, kind mlapp.Kind, iters int) JobSpec {
	return JobSpec{
		Name:       name,
		Config:     mlapp.Config{Kind: kind, Features: 12, Classes: 3, Rows: 96, LearningRate: 0.2},
		Iterations: iters,
		Seed:       7,
	}
}

func TestSingleJobTrainsToCompletion(t *testing.T) {
	m := cluster(t, 3)
	if err := m.Submit(spec("mlr-1", mlapp.MLR, 8), nil); err != nil {
		t.Fatal(err)
	}
	// Capture an early loss, then wait for completion. Poll tightly and
	// only accept a genuinely early iteration: the binary data plane can
	// finish all 8 iterations in a few milliseconds, and sampling a late
	// loss here would compare the final loss against itself.
	var earlyLoss float64
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		status, iter, loss, err := m.Status("mlr-1")
		if err != nil {
			t.Fatal(err)
		}
		if iter >= 1 && iter <= 3 && loss > 0 {
			earlyLoss = loss
			break
		}
		if iter > 3 || status == StatusFinished {
			break // job outran the poller; skip the improvement check
		}
	}
	if err := m.WaitJob("mlr-1", 60*time.Second); err != nil {
		t.Fatal(err)
	}
	status, iter, finalLoss, err := m.Status("mlr-1")
	if err != nil {
		t.Fatal(err)
	}
	if status != StatusFinished {
		t.Errorf("status = %v, want finished", status)
	}
	if iter != 7 {
		t.Errorf("last iteration = %d, want 7", iter)
	}
	if earlyLoss > 0 && finalLoss >= earlyLoss {
		t.Errorf("loss did not improve: %.4f -> %.4f", earlyLoss, finalLoss)
	}
}

func TestTwoJobsCoLocated(t *testing.T) {
	m := cluster(t, 2)
	if err := m.Submit(spec("mlr", mlapp.MLR, 6), nil); err != nil {
		t.Fatal(err)
	}
	if err := m.Submit(spec("lasso", mlapp.Lasso, 6), nil); err != nil {
		t.Fatal(err)
	}
	if err := m.WaitJob("mlr", 60*time.Second); err != nil {
		t.Fatal(err)
	}
	if err := m.WaitJob("lasso", 60*time.Second); err != nil {
		t.Fatal(err)
	}
	// Both jobs produced profiling metrics through the barrier.
	for _, name := range []string{"mlr", "lasso"} {
		met, ok := m.Metrics(name)
		if !ok || !met.Profiled() {
			t.Errorf("job %s not profiled (ok=%v, samples=%d)", name, ok, met.Samples)
		}
		if met.CompMachineSeconds <= 0 || met.NetSeconds < 0 {
			t.Errorf("job %s metrics implausible: %+v", name, met)
		}
	}
}

func TestPauseCheckpointResumeMigration(t *testing.T) {
	m := cluster(t, 3)
	if err := m.Submit(spec("nmf", mlapp.NMF, 50), nil); err != nil {
		t.Fatal(err)
	}
	// Let a few iterations pass, then pause.
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		_, iter, _, _ := m.Status("nmf")
		if iter >= 2 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	checkpoint, err := m.Pause("nmf", 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(checkpoint) != spec("nmf", mlapp.NMF, 1).Config.ModelSize() {
		t.Fatalf("checkpoint size %d", len(checkpoint))
	}
	status, pausedIter, _, _ := m.Status("nmf")
	if status != StatusPaused {
		t.Fatalf("status after pause = %v", status)
	}

	// Migrate to a smaller group (§IV-B4) and cut the run short so the
	// test finishes quickly.
	m.mu.Lock()
	m.jobs["nmf"].spec.Iterations = pausedIter + 3
	m.mu.Unlock()
	if err := m.Resume("nmf", []string{"w0", "w1"}, checkpoint); err != nil {
		t.Fatal(err)
	}
	if err := m.WaitJob("nmf", 60*time.Second); err != nil {
		t.Fatal(err)
	}
	_, finalIter, _, _ := m.Status("nmf")
	if finalIter <= pausedIter {
		t.Errorf("no progress after migration: %d -> %d", pausedIter, finalIter)
	}
}

func TestPlanGroups(t *testing.T) {
	m := cluster(t, 4)
	if err := m.Submit(spec("a", mlapp.MLR, 8), nil); err != nil {
		t.Fatal(err)
	}
	if err := m.Submit(spec("b", mlapp.Lasso, 8), nil); err != nil {
		t.Fatal(err)
	}
	if err := m.WaitJob("a", 60*time.Second); err != nil {
		t.Fatal(err)
	}
	if err := m.WaitJob("b", 60*time.Second); err != nil {
		t.Fatal(err)
	}
	groups, err := m.PlanGroups()
	if err != nil {
		t.Fatal(err)
	}
	seen := 0
	for job, members := range groups {
		if len(members) == 0 {
			t.Errorf("job %s assigned no workers", job)
		}
		seen++
	}
	if seen == 0 {
		t.Error("plan placed no jobs")
	}
}

func TestWorkerStats(t *testing.T) {
	m := cluster(t, 2)
	if err := m.Submit(spec("mlr", mlapp.MLR, 5), nil); err != nil {
		t.Fatal(err)
	}
	if err := m.WaitJob("mlr", 60*time.Second); err != nil {
		t.Fatal(err)
	}
	cpu, net, err := m.WorkerStats()
	if err != nil {
		t.Fatal(err)
	}
	if cpu <= 0 || net <= 0 {
		t.Errorf("worker utilization = (%v, %v), want positive", cpu, net)
	}
}

func TestSubmitValidation(t *testing.T) {
	m := cluster(t, 1)
	if err := m.Submit(JobSpec{}, nil); err == nil {
		t.Error("empty spec accepted")
	}
	if err := m.Submit(spec("dup", mlapp.MLR, 3), nil); err != nil {
		t.Fatal(err)
	}
	if err := m.Submit(spec("dup", mlapp.MLR, 3), nil); err == nil ||
		!strings.Contains(err.Error(), "duplicate") {
		t.Errorf("duplicate submit = %v", err)
	}
	if err := m.Submit(spec("ghost", mlapp.MLR, 3), []string{"nope"}); err == nil {
		t.Error("unknown worker group accepted")
	}
	if err := m.WaitJob("dup", 60*time.Second); err != nil {
		t.Fatal(err)
	}
	if err := m.WaitJob("missing", time.Second); err == nil {
		t.Error("WaitJob on unknown job succeeded")
	}
}

func TestDuplicateWorkerName(t *testing.T) {
	m := cluster(t, 1)
	if _, _, err := worker.New("w0", "127.0.0.1:0", m.Addr(), t.TempDir()); err == nil {
		t.Error("duplicate worker name accepted")
	}
}
