package core

import (
	"math"
	"sync/atomic"
)

// This file implements the admission fast path (DESIGN.md §15): a Scorer
// caches per-group aggregates of a fixed base plan (ΣT_cpu, ΣT_net, the
// job-bound Eq. 1 term, the spilled memory footprint, Eq. 3 utilizations
// and the NetModel compatibility term) so that scoring "plan + one job in
// group gi" — the inner loop of the §IV-B4 arrival rule — costs O(groups)
// float re-accumulation and O(1) model work instead of a full Plan.Clone
// and rescore.
//
// Bit-identity contract: every cached value is produced by the same Group
// methods the full Options.Score path calls, and every candidate score
// re-accumulates the weighted sums in the plan's group order substituting
// the candidate group's terms in place. Because appending one job to a
// group appends exactly one term at the end of each left-to-right
// reduction (s += ..., math.Max chains), the incremental results are
// bit-identical to cloning the plan, appending the job, and rescoring —
// float addition is order-sensitive, so the Scorer never subtracts or
// reorders terms. The property test in score_test.go pins this against
// the retained clone-and-rescore reference implementations.

// fullScoreCalls counts full-plan Options.Score evaluations. The
// admission fast path must not perform any (see
// TestAdmitPerformsZeroFullScoreRecomputations in internal/master); the
// counter is a test hook, incremented in Options.Score.
var fullScoreCalls atomic.Int64

// FullScoreCalls returns the number of full-plan Options.Score
// evaluations performed by this process. Tests snapshot it around an
// admission decision to pin the zero-recompute invariant.
func FullScoreCalls() int64 { return fullScoreCalls.Load() }

// GroupPrediction carries the model predictions for one group that the
// runtime stamps into journal events (Eq. 1 iteration time, Eq. 3
// utilizations, and the interleaving compatibility when the NetModel is
// active). The admission path reads these from the Scorer's cache instead
// of recomputing them per event.
type GroupPrediction struct {
	IterSeconds   float64
	CPUUtil       float64
	NetUtil       float64
	Compatibility float64
}

// PredictGroup computes a group's journal predictions directly; the slow
// paths (migration stamps in legacy mode, single-job free-worker
// placements) use it where no Scorer cache applies.
func PredictGroup(g Group, netModel bool) GroupPrediction {
	uc, un := g.Util()
	p := GroupPrediction{IterSeconds: g.IterSeconds(), CPUUtil: uc, NetUtil: un}
	if netModel {
		p.Compatibility = GroupCompatibility(g)
	}
	return p
}

// groupAgg caches one group's scoring aggregates. All floats are the
// exact values the corresponding Group methods return for the base plan.
type groupAgg struct {
	sumComp float64 // Group.SumComp at the group DoP
	sumNet  float64 // Group.SumNet
	maxIter float64 // Group.MaxJobIter
	iter    float64 // Group.IterSeconds (Eq. 1)
	minMem  float64 // Group.MinMemoryGB
	uc, un  float64 // Group.Util (Eq. 3)
	compat  float64 // GroupCompatibility, cached only when NetModel
	mach    float64 // float64(Group.Machines), the Eq. 4 weight
	nJobs   int
	ok      bool // group passes the MaxJobsPerGroup / MemoryCapGB caps
}

// Scorer scores incremental modifications of a fixed base plan. It is
// cheap to build (one pass over the plan, plus one interleave solve per
// group when NetModel is on) and must be rebuilt whenever the underlying
// plan changes. Methods that score candidates reuse internal scratch
// space: a Scorer is not safe for concurrent use.
type Scorer struct {
	opts       Options
	plan       Plan
	groups     []groupAgg
	infeasible int // groups already violating the caps
	base       float64
	scratch    []JobInfo // candidate job list for interleave solves
}

// NewScorer builds the aggregate cache for plan. opts is normalized with
// the same defaults Options.Score applies.
func NewScorer(plan Plan, opts Options) *Scorer {
	s := &Scorer{
		opts:   opts.withDefaults(),
		plan:   plan,
		groups: make([]groupAgg, len(plan.Groups)),
	}
	for i, g := range plan.Groups {
		a := &s.groups[i]
		a.sumComp = g.SumComp()
		a.sumNet = g.SumNet()
		a.maxIter = g.MaxJobIter()
		a.iter = math.Max(a.sumComp, math.Max(a.sumNet, a.maxIter))
		a.minMem = g.MinMemoryGB()
		a.uc, a.un = g.Util()
		if s.opts.NetModel {
			a.compat = GroupCompatibility(g)
		}
		a.mach = float64(g.Machines)
		a.nJobs = len(g.Jobs)
		a.ok = s.groupFits(len(g.Jobs), a.minMem)
		if !a.ok {
			s.infeasible++
		}
	}
	s.base = s.scoreWith(-1, groupAgg{})
	return s
}

func (s *Scorer) groupFits(nJobs int, minMem float64) bool {
	if s.opts.MaxJobsPerGroup > 0 && nJobs > s.opts.MaxJobsPerGroup {
		return false
	}
	if s.opts.MemoryCapGB > 0 && minMem > s.opts.MemoryCapGB {
		return false
	}
	return true
}

// scoreWith accumulates the plan score with group gi's cached terms
// replaced by cand (gi < 0 scores the base plan). The walk mirrors
// Options.Score exactly: same group order, same per-group factors, same
// final weighting, so results are bit-identical to scoring the
// materialized candidate plan.
func (s *Scorer) scoreWith(gi int, cand groupAgg) float64 {
	var wc, wn, m float64
	if s.opts.NetModel {
		for i := range s.groups {
			a := &s.groups[i]
			if i == gi {
				a = &cand
			}
			wc += a.mach * a.uc
			wn += a.mach * a.un * a.compat
			m += a.mach
		}
		if m == 0 {
			return 0
		}
		return s.opts.CPUWeight*wc/m + (1-s.opts.CPUWeight)*wn/m
	}
	for i := range s.groups {
		a := &s.groups[i]
		if i == gi {
			a = &cand
		}
		wc += a.mach * a.uc
		wn += a.mach * a.un
		m += a.mach
	}
	if m == 0 {
		return 0
	}
	return s.opts.CPUWeight*(wc/m) + (1-s.opts.CPUWeight)*(wn/m)
}

// NumGroups returns the number of groups in the base plan.
func (s *Scorer) NumGroups() int { return len(s.groups) }

// Score returns the base plan's score, bit-identical to
// opts.Score(plan) but without a full-plan recomputation.
func (s *Scorer) Score() float64 { return s.base }

// Prediction returns the cached journal predictions for base group gi.
func (s *Scorer) Prediction(gi int) GroupPrediction {
	a := &s.groups[gi]
	p := GroupPrediction{IterSeconds: a.iter, CPUUtil: a.uc, NetUtil: a.un}
	if s.opts.NetModel {
		p.Compatibility = a.compat
	}
	return p
}

// candidateAgg computes the aggregates of group gi with job appended,
// replaying exactly the final term of each left-to-right reduction the
// Group methods would perform on the materialized candidate.
func (s *Scorer) candidateAgg(job JobInfo, gi int) groupAgg {
	g := &s.groups[gi]
	mInt := s.plan.Groups[gi].Machines
	cand := groupAgg{
		sumComp: g.sumComp + job.TcpuAt(mInt),
		sumNet:  g.sumNet + job.Net,
		maxIter: math.Max(g.maxIter, job.IterAt(mInt)),
		minMem:  g.minMem + job.MinMemoryGB(mInt),
		mach:    g.mach,
		nJobs:   g.nJobs + 1,
		compat:  1,
	}
	cand.iter = math.Max(cand.sumComp, math.Max(cand.sumNet, cand.maxIter))
	if cand.iter != 0 {
		cand.uc = cand.sumComp / cand.iter
		cand.un = cand.sumNet / cand.iter
	}
	if s.opts.NetModel {
		s.scratch = append(s.scratch[:0], s.plan.Groups[gi].Jobs...)
		s.scratch = append(s.scratch, job)
		cand.compat = SolveInterleave(s.scratch, mInt).Compatibility
	}
	return cand
}

// ScoreDelta scores adding job to group gi without materializing the
// candidate plan. feasible mirrors Options.feasible over the candidate:
// false when the grown group would violate a cap, or when any untouched
// group already does. The returned prediction describes the candidate
// group with the job included.
func (s *Scorer) ScoreDelta(job JobInfo, gi int) (score float64, pred GroupPrediction, feasible bool) {
	cand := s.candidateAgg(job, gi)
	rest := s.infeasible
	if !s.groups[gi].ok {
		rest--
	}
	if rest > 0 || !s.groupFits(cand.nJobs, cand.minMem) {
		return 0, GroupPrediction{}, false
	}
	pred = GroupPrediction{IterSeconds: cand.iter, CPUUtil: cand.uc, NetUtil: cand.un}
	if s.opts.NetModel {
		pred.Compatibility = cand.compat
	}
	return s.scoreWith(gi, cand), pred, true
}

// BestAddition applies the §IV-B4 arrival rule over the cached plan:
// the candidate group maximizing the cluster score, requiring a strict
// improvement over the base plan. Selection order and tie-breaking are
// identical to the clone-and-rescore reference (first group wins ties).
func (s *Scorer) BestAddition(job JobInfo) (gi int, pred GroupPrediction, ok bool) {
	bestScore := s.base
	bestGroup := -1
	var bestPred GroupPrediction
	for i := range s.groups {
		sc, p, feasible := s.ScoreDelta(job, i)
		if !feasible {
			continue
		}
		if sc > bestScore {
			bestScore = sc
			bestGroup = i
			bestPred = p
		}
	}
	if bestGroup < 0 {
		return -1, GroupPrediction{}, false
	}
	return bestGroup, bestPred, true
}

// scoreReplacement scores the plan formed by the base plan's groups minus
// the selected set, followed by repl, accumulating untouched groups from
// the cache in base-plan order and the replacement groups fresh — the
// exact walk Options.Score performs on the materialized candidate. The
// §IV-B4 completion rule uses it to score escalation candidates without
// materializing them.
func (s *Scorer) scoreReplacement(selected map[int]bool, repl []Group) float64 {
	var wc, wn, m float64
	if s.opts.NetModel {
		for i := range s.groups {
			if selected[i] {
				continue
			}
			a := &s.groups[i]
			wc += a.mach * a.uc
			wn += a.mach * a.un * a.compat
			m += a.mach
		}
		for _, g := range repl {
			uc, un := g.Util()
			wc += float64(g.Machines) * uc
			wn += float64(g.Machines) * un * GroupCompatibility(g)
			m += float64(g.Machines)
		}
		if m == 0 {
			return 0
		}
		return s.opts.CPUWeight*wc/m + (1-s.opts.CPUWeight)*wn/m
	}
	for i := range s.groups {
		if selected[i] {
			continue
		}
		a := &s.groups[i]
		wc += a.mach * a.uc
		wn += a.mach * a.un
		m += a.mach
	}
	for _, g := range repl {
		uc, un := g.Util()
		wc += float64(g.Machines) * uc
		wn += float64(g.Machines) * un
		m += float64(g.Machines)
	}
	if m == 0 {
		return 0
	}
	return s.opts.CPUWeight*(wc/m) + (1-s.opts.CPUWeight)*(wn/m)
}
