// Package core implements the paper's primary contribution: the
// performance model for co-located Parameter-Server jobs (Eq. 1–4 of
// §IV-B2), the job-grouping and machine-allocation scheduling algorithm
// (Algorithm 1, §IV-B3), and the dynamic regrouping rules that respond to
// job arrivals and completions (§IV-B4).
//
// The package operates purely on profiled metrics and returns declarative
// plans; executing a plan (moving jobs, allocating machines, pausing and
// migrating) is the runtime's concern.
package core

import (
	"fmt"
	"math"
	"strings"
)

// JobInfo is what the scheduler knows about one job: its identity, its
// profiled cost metrics, and its memory footprint parameters.
type JobInfo struct {
	// ID uniquely names the job.
	ID string
	// Comp is the profiled aggregate COMP cost in machine-seconds per
	// iteration; the COMP subtask time at DoP m is Comp/m (Eq. 2).
	Comp float64
	// Net is the profiled per-machine COMM (PULL+PUSH) seconds per
	// iteration.
	Net float64
	// InputGB, ModelGB and WorkGB parameterize the per-machine memory
	// footprint; see MinMemoryGB. Zero values disable memory feasibility
	// checks for the job.
	InputGB float64
	ModelGB float64
	WorkGB  float64
	// JVMHeapFactor inflates raw data sizes to heap footprints; zero
	// means raw sizes are used as-is.
	JVMHeapFactor float64
	// CompFloor is the serial, non-parallelizable part of the COMP
	// subtask in seconds per iteration, fitted from observations at
	// multiple DoPs (Synergy-style sensitivity). Jobs with a large floor
	// gain little from extra machines, so the water-filling allocation
	// hands their machines to more scalable jobs. Zero reproduces Eq. 2
	// exactly.
	CompFloor float64
	// PullFrac is the PULL share of Net, splitting the per-iteration
	// comm seconds into a PULL window at the start of the cycle and a
	// PUSH window at the end; the interleaving solver places both on the
	// shared link. Zero means an even split.
	PullFrac float64
}

// TcpuAt predicts the COMP subtask seconds at DoP m (Eq. 2, plus the
// fitted serial floor when multi-DoP profiles revealed one).
func (j JobInfo) TcpuAt(m int) float64 {
	if m < 1 {
		m = 1
	}
	return j.Comp/float64(m) + j.CompFloor
}

// IterAt predicts the job's own iteration seconds at DoP m
// (T_jitr in Eq. 1).
func (j JobInfo) IterAt(m int) float64 { return j.TcpuAt(m) + j.Net }

// CompRatioAt is the computation share of the job's iteration at DoP m.
func (j JobInfo) CompRatioAt(m int) float64 {
	it := j.IterAt(m)
	if it == 0 {
		return 0
	}
	return j.TcpuAt(m) / it
}

// MinMemoryGB is the job's smallest possible per-machine heap footprint at
// DoP m: all input blocks spilled to disk (α=1, §IV-C), leaving only the
// model partition and working memory resident.
func (j JobInfo) MinMemoryGB(m int) float64 {
	if m < 1 {
		m = 1
	}
	heap := j.JVMHeapFactor
	if heap <= 0 {
		heap = 1
	}
	return heap*j.ModelGB/float64(m) + j.WorkGB
}

// Group is a set of co-located jobs and the machines allocated to them;
// the group DoP m_g equals Machines since every machine hosts one worker
// and one server.
type Group struct {
	Jobs     []JobInfo
	Machines int
}

// SumComp is ΣT_cpu_j over the group's jobs at the group DoP.
func (g Group) SumComp() float64 {
	var s float64
	for _, j := range g.Jobs {
		s += j.TcpuAt(g.Machines)
	}
	return s
}

// SumNet is ΣT_net_j over the group's jobs.
func (g Group) SumNet() float64 {
	var s float64
	for _, j := range g.Jobs {
		s += j.Net
	}
	return s
}

// MaxJobIter is max_j T_jitr_j, the job-bound term of Eq. 1.
func (g Group) MaxJobIter() float64 {
	var m float64
	for _, j := range g.Jobs {
		m = math.Max(m, j.IterAt(g.Machines))
	}
	return m
}

// IterSeconds predicts the group iteration time T_g_itr by Eq. 1:
// the maximum of the CPU-bound, network-bound and job-bound terms.
func (g Group) IterSeconds() float64 {
	return math.Max(g.SumComp(), math.Max(g.SumNet(), g.MaxJobIter()))
}

// Util is Eq. 3: the group's CPU and network utilization as shares of the
// group iteration time. Both components are in [0, 1] because Eq. 1 lower-
// bounds the denominator by each numerator.
func (g Group) Util() (ucpu, unet float64) {
	it := g.IterSeconds()
	if it == 0 {
		return 0, 0
	}
	return g.SumComp() / it, g.SumNet() / it
}

// MinMemoryGB is the smallest per-machine footprint of the whole group
// with every job's input fully spilled.
func (g Group) MinMemoryGB() float64 {
	var s float64
	for _, j := range g.Jobs {
		s += j.MinMemoryGB(g.Machines)
	}
	return s
}

// Imbalance is the signed resource imbalance ΣT_cpu − ΣT_net used by the
// swap-based fine-tuning step; positive means CPU-bound.
func (g Group) Imbalance() float64 { return g.SumComp() - g.SumNet() }

func (g Group) String() string {
	ids := make([]string, len(g.Jobs))
	for i, j := range g.Jobs {
		ids[i] = j.ID
	}
	return fmt.Sprintf("{m=%d jobs=[%s]}", g.Machines, strings.Join(ids, " "))
}

// Plan is a complete scheduling decision: a set of job groups with
// machine allocations.
type Plan struct {
	Groups []Group
}

// Util is Eq. 4: cluster utilization as the machine-weighted average of
// group utilizations.
func (p Plan) Util() (ucpu, unet float64) {
	var wc, wn, m float64
	for _, g := range p.Groups {
		uc, un := g.Util()
		wc += float64(g.Machines) * uc
		wn += float64(g.Machines) * un
		m += float64(g.Machines)
	}
	if m == 0 {
		return 0, 0
	}
	return wc / m, wn / m
}

// TotalMachines sums the machines allocated across groups.
func (p Plan) TotalMachines() int {
	var m int
	for _, g := range p.Groups {
		m += g.Machines
	}
	return m
}

// NumJobs counts the jobs placed by the plan.
func (p Plan) NumJobs() int {
	var n int
	for _, g := range p.Groups {
		n += len(g.Jobs)
	}
	return n
}

// JobIDs returns the ids of all placed jobs.
func (p Plan) JobIDs() []string {
	ids := make([]string, 0, p.NumJobs())
	for _, g := range p.Groups {
		for _, j := range g.Jobs {
			ids = append(ids, j.ID)
		}
	}
	return ids
}

// FindJob locates a job in the plan, returning its group index.
func (p Plan) FindJob(id string) (group int, ok bool) {
	for gi, g := range p.Groups {
		for _, j := range g.Jobs {
			if j.ID == id {
				return gi, true
			}
		}
	}
	return 0, false
}

// Clone deep-copies the plan so callers can mutate candidates freely.
func (p Plan) Clone() Plan {
	groups := make([]Group, len(p.Groups))
	for i, g := range p.Groups {
		jobs := make([]JobInfo, len(g.Jobs))
		copy(jobs, g.Jobs)
		groups[i] = Group{Jobs: jobs, Machines: g.Machines}
	}
	return Plan{Groups: groups}
}

func (p Plan) String() string {
	parts := make([]string, len(p.Groups))
	for i, g := range p.Groups {
		parts[i] = g.String()
	}
	return strings.Join(parts, " ")
}
