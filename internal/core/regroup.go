package core

import (
	"math"
	"sort"
)

// SimilarityTolerance is the relative difference under which two jobs (or
// a job and a bundle of jobs) count as equivalent for replacement after a
// completion; the paper uses 5% (§IV-B4).
const SimilarityTolerance = 0.05

// maxBundleSize bounds the subset search when replacing one finished job
// with several smaller equivalent jobs.
const maxBundleSize = 3

// TryAddJob implements the arrival rule of §IV-B4: place the newly
// profiled job into the existing group that maximizes cluster utilization,
// without moving any running job or machine. It returns the improved plan
// and true only when the addition raises the scheduling score; otherwise
// the job should keep waiting.
//
// Candidates are scored incrementally through a Scorer (DESIGN.md §15), so
// only the winning placement materializes a cloned plan; decisions are
// bit-identical to TryAddJobReference, the retained clone-and-rescore
// implementation.
func TryAddJob(plan Plan, job JobInfo, opts Options) (Plan, bool) {
	if len(plan.Groups) == 0 {
		return plan, false
	}
	gi, _, ok := NewScorer(plan, opts).BestAddition(job)
	if !ok {
		return plan, false
	}
	out := plan.Clone()
	out.Groups[gi].Jobs = append(out.Groups[gi].Jobs, job)
	return out, true
}

// TryAddJobReference is the pre-fast-path arrival rule: clone the plan
// once per candidate group and rescore from scratch. It is retained as
// the oracle for the bit-identity property tests and the benchmark
// baseline; TryAddJob must make the same decision on every input.
func TryAddJobReference(plan Plan, job JobInfo, opts Options) (Plan, bool) {
	opts = opts.withDefaults()
	if len(plan.Groups) == 0 {
		return plan, false
	}
	base := opts.Score(plan)
	bestScore := base
	bestGroup := -1
	for gi := range plan.Groups {
		cand := plan.Clone()
		cand.Groups[gi].Jobs = append(cand.Groups[gi].Jobs, job)
		if !opts.feasible(cand) {
			continue
		}
		if s := opts.Score(cand); s > bestScore {
			bestScore = s
			bestGroup = gi
		}
	}
	if bestGroup < 0 {
		return plan, false
	}
	out := plan.Clone()
	out.Groups[bestGroup].Jobs = append(out.Groups[bestGroup].Jobs, job)
	return out, true
}

// FindReplacement searches waiting jobs for a substitute with statistics
// within SimilarityTolerance of the finished job at the group's DoP —
// first a single similar job, then a bundle whose summed iteration time
// and computation/communication ratio match (§IV-B4). It returns the
// chosen candidate indices.
func FindReplacement(finished JobInfo, dop int, waiting []JobInfo) ([]int, bool) {
	if dop < 1 {
		dop = 1
	}
	targetIter := finished.IterAt(dop)
	targetRatio := finished.CompRatioAt(dop)
	if targetIter <= 0 {
		return nil, false
	}
	// Single-job match.
	for i, w := range waiting {
		if similar(w.IterAt(dop), targetIter) && similar(w.CompRatioAt(dop), targetRatio) {
			return []int{i}, true
		}
	}
	// Bundle match: a set whose iteration times sum to the finished job's
	// and whose aggregate comp/comm ratio matches.
	idxs := make([]int, len(waiting))
	for i := range idxs {
		idxs[i] = i
	}
	// Consider shorter jobs first; long jobs can never be part of a
	// bundle whose sum matches.
	sort.SliceStable(idxs, func(a, b int) bool {
		return waiting[idxs[a]].IterAt(dop) < waiting[idxs[b]].IterAt(dop)
	})
	var pick func(start int, chosen []int, sumIter, sumComp, sumNet float64) ([]int, bool)
	pick = func(start int, chosen []int, sumIter, sumComp, sumNet float64) ([]int, bool) {
		if len(chosen) >= 2 {
			ratio := 0.0
			if sumComp+sumNet > 0 {
				ratio = sumComp / (sumComp + sumNet)
			}
			if similar(sumIter, targetIter) && similar(ratio, targetRatio) {
				out := make([]int, len(chosen))
				copy(out, chosen)
				return out, true
			}
		}
		if len(chosen) == maxBundleSize {
			return nil, false
		}
		for k := start; k < len(idxs); k++ {
			w := waiting[idxs[k]]
			it := w.IterAt(dop)
			if sumIter+it > targetIter*(1+SimilarityTolerance) {
				break // sorted ascending: everything after overshoots too
			}
			if got, ok := pick(k+1, append(chosen, idxs[k]), sumIter+it,
				sumComp+w.TcpuAt(dop), sumNet+w.Net); ok {
				return got, true
			}
		}
		return nil, false
	}
	return pick(0, nil, 0, 0, 0)
}

func similar(a, b float64) bool {
	scale := math.Max(math.Abs(a), math.Abs(b))
	if scale == 0 {
		return true
	}
	return math.Abs(a-b) <= SimilarityTolerance*scale
}

// RegroupResult describes the outcome of a completion-triggered regroup.
type RegroupResult struct {
	// Plan is the new scheduling decision.
	Plan Plan
	// Changed reports whether the decision goes beyond merely removing
	// the finished job: false when the expected benefit was under the
	// regrouping threshold and the shrunk plan is kept as-is.
	Changed bool
	// AddedJobs lists waiting jobs the decision pulled in.
	AddedJobs []string
	// InvolvedGroups is the number of pre-existing groups whose jobs were
	// reshuffled (0 when only a replacement was inserted).
	InvolvedGroups int
}

// RegroupAfterFinish implements the completion rule of §IV-B4. It removes
// the finished job, tries to repair the group with an equivalent waiting
// job (or bundle), and only if that fails escalates to Algorithm 1 over a
// growing set of groups — preferring decisions that move fewer jobs unless
// a bigger reshuffle wins by more than the 5% threshold.
//
// Escalation candidates are scored through the Scorer's replacement walk
// (cached aggregates for untouched groups, fresh terms for the rebuilt
// sub-plan), so only the winning candidate materializes a plan; decisions
// are bit-identical to RegroupAfterFinishReference.
func RegroupAfterFinish(plan Plan, finishedID string, waiting []JobInfo, opts Options) RegroupResult {
	opts = opts.withDefaults()
	gi, ok := plan.FindJob(finishedID)
	if !ok {
		return RegroupResult{Plan: plan}
	}
	shrunk := plan.Clone()
	shrunk.Groups[gi].Jobs = removeJob(shrunk.Groups[gi].Jobs, finishedID)
	finished := jobByID(plan.Groups[gi].Jobs, finishedID)

	// Drop emptied groups (their machines are reclaimed by the caller).
	if len(shrunk.Groups[gi].Jobs) == 0 && len(waiting) == 0 {
		shrunk.Groups = append(shrunk.Groups[:gi], shrunk.Groups[gi+1:]...)
		return RegroupResult{Plan: shrunk}
	}

	// 1) Repair with an equivalent waiting job or bundle.
	if idxs, ok := FindReplacement(finished, plan.Groups[gi].Machines, waiting); ok {
		repaired := shrunk.Clone()
		var added []string
		for _, i := range idxs {
			repaired.Groups[gi].Jobs = append(repaired.Groups[gi].Jobs, waiting[i])
			added = append(added, waiting[i].ID)
		}
		if opts.feasible(repaired) {
			return RegroupResult{Plan: repaired, Changed: true, AddedJobs: added}
		}
	}

	// 2) Escalate: re-run Algorithm 1 over the affected group plus a
	// growing set of other groups (smallest job count first), keeping
	// their combined machines.
	type candidate struct {
		selected map[int]bool
		sub      []Group
		score    float64
		involved int
		jobs     int
	}
	sc := NewScorer(shrunk, opts)
	baseScore := sc.Score()
	var cands []candidate

	others := make([]int, 0, len(shrunk.Groups))
	for i := range shrunk.Groups {
		if i != gi {
			others = append(others, i)
		}
	}
	sort.SliceStable(others, func(a, b int) bool {
		return len(shrunk.Groups[others[a]].Jobs) < len(shrunk.Groups[others[b]].Jobs)
	})

	for k := 0; k <= len(others); k++ {
		selected := map[int]bool{gi: true}
		for _, oi := range others[:k] {
			selected[oi] = true
		}
		var pool []JobInfo
		var poolMachines int
		for i, g := range shrunk.Groups {
			if selected[i] {
				pool = append(pool, g.Jobs...)
				poolMachines += g.Machines
			}
		}
		pool = append(pool, waiting...)
		if len(pool) == 0 || poolMachines == 0 {
			continue
		}
		sub := Schedule(pool, poolMachines, opts)
		if len(sub.Groups) == 0 {
			continue
		}
		cands = append(cands, candidate{
			selected: selected,
			sub:      sub.Groups,
			score:    sc.scoreReplacement(selected, sub.Groups),
			involved: k + 1,
			jobs:     len(pool),
		})
	}
	if len(cands) == 0 {
		return RegroupResult{Plan: shrunk}
	}

	// Prefer the smallest involvement; a larger reshuffle must beat it by
	// the threshold to be chosen (§IV-B4).
	best := cands[0]
	for _, c := range cands[1:] {
		if c.score > best.score*(1+SimilarityTolerance) {
			best = c
		}
	}
	// Do not regroup at all when the expected benefit is under threshold.
	if best.score < baseScore*(1+opts.MinImprovement) {
		return RegroupResult{Plan: shrunk}
	}
	// Materialize only the winner (untouched groups in base-plan order,
	// then the rebuilt sub-plan — the same layout scoreReplacement walked).
	var untouched []Group
	for i, g := range shrunk.Groups {
		if !best.selected[i] {
			untouched = append(untouched, g)
		}
	}
	bestPlan := Plan{Groups: append(untouched, best.sub...)}
	added := addedJobIDs(shrunk, bestPlan)
	return RegroupResult{
		Plan:           bestPlan,
		Changed:        true,
		AddedJobs:      added,
		InvolvedGroups: best.involved,
	}
}

// RegroupAfterFinishReference is the pre-fast-path completion rule: every
// escalation candidate materializes a full plan and is scored from
// scratch. Retained as the oracle for the bit-identity property tests;
// RegroupAfterFinish must return an identical RegroupResult on every
// input.
func RegroupAfterFinishReference(plan Plan, finishedID string, waiting []JobInfo, opts Options) RegroupResult {
	opts = opts.withDefaults()
	gi, ok := plan.FindJob(finishedID)
	if !ok {
		return RegroupResult{Plan: plan}
	}
	shrunk := plan.Clone()
	shrunk.Groups[gi].Jobs = removeJob(shrunk.Groups[gi].Jobs, finishedID)
	finished := jobByID(plan.Groups[gi].Jobs, finishedID)

	if len(shrunk.Groups[gi].Jobs) == 0 && len(waiting) == 0 {
		shrunk.Groups = append(shrunk.Groups[:gi], shrunk.Groups[gi+1:]...)
		return RegroupResult{Plan: shrunk}
	}

	if idxs, ok := FindReplacement(finished, plan.Groups[gi].Machines, waiting); ok {
		repaired := shrunk.Clone()
		var added []string
		for _, i := range idxs {
			repaired.Groups[gi].Jobs = append(repaired.Groups[gi].Jobs, waiting[i])
			added = append(added, waiting[i].ID)
		}
		if opts.feasible(repaired) {
			return RegroupResult{Plan: repaired, Changed: true, AddedJobs: added}
		}
	}

	type candidate struct {
		plan     Plan
		score    float64
		involved int
		jobs     int
	}
	baseScore := opts.Score(shrunk)
	var cands []candidate

	others := make([]int, 0, len(shrunk.Groups))
	for i := range shrunk.Groups {
		if i != gi {
			others = append(others, i)
		}
	}
	sort.SliceStable(others, func(a, b int) bool {
		return len(shrunk.Groups[others[a]].Jobs) < len(shrunk.Groups[others[b]].Jobs)
	})

	for k := 0; k <= len(others); k++ {
		selected := map[int]bool{gi: true}
		for _, oi := range others[:k] {
			selected[oi] = true
		}
		var pool []JobInfo
		var poolMachines int
		var untouched []Group
		for i, g := range shrunk.Groups {
			if selected[i] {
				pool = append(pool, g.Jobs...)
				poolMachines += g.Machines
			} else {
				untouched = append(untouched, g)
			}
		}
		pool = append(pool, waiting...)
		if len(pool) == 0 || poolMachines == 0 {
			continue
		}
		sub := Schedule(pool, poolMachines, opts)
		if len(sub.Groups) == 0 {
			continue
		}
		cand := Plan{Groups: append(untouched, sub.Groups...)}
		cands = append(cands, candidate{
			plan:     cand,
			score:    opts.Score(cand),
			involved: k + 1,
			jobs:     len(pool),
		})
	}
	if len(cands) == 0 {
		return RegroupResult{Plan: shrunk}
	}

	best := cands[0]
	for _, c := range cands[1:] {
		if c.score > best.score*(1+SimilarityTolerance) {
			best = c
		}
	}
	if best.score < baseScore*(1+opts.MinImprovement) {
		return RegroupResult{Plan: shrunk}
	}
	added := addedJobIDs(shrunk, best.plan)
	return RegroupResult{
		Plan:           best.plan,
		Changed:        true,
		AddedJobs:      added,
		InvolvedGroups: best.involved,
	}
}

func removeJob(jobs []JobInfo, id string) []JobInfo {
	out := jobs[:0]
	for _, j := range jobs {
		if j.ID != id {
			out = append(out, j)
		}
	}
	return out
}

func jobByID(jobs []JobInfo, id string) JobInfo {
	for _, j := range jobs {
		if j.ID == id {
			return j
		}
	}
	return JobInfo{}
}

func addedJobIDs(before, after Plan) []string {
	had := make(map[string]bool, before.NumJobs())
	for _, id := range before.JobIDs() {
		had[id] = true
	}
	var added []string
	for _, id := range after.JobIDs() {
		if !had[id] {
			added = append(added, id)
		}
	}
	return added
}
