package core

import (
	"math"
	"sort"
)

// This file implements the CASSINI-style communication interleaving model
// (PAPERS.md): co-located jobs alternate COMP and COMM phases, so their
// demand on the group's shared link is a periodic sequence of PULL and
// PUSH bursts. CASSINI's geometric abstraction rolls one period onto a
// circle and rotates each job's bursts by a per-job angle (the phase
// offset) so bursts interleave instead of collide. Because every job in a
// Harmony group is dispatched on the same group iteration period (Eq. 1),
// the unified circle has a single circumference and the search reduces to
// small modular arithmetic over a discretized circle.

const (
	// interleaveSlots discretizes one group period. 64 slots keep the
	// solver exact enough for burst widths down to ~1.5% of the period
	// while staying cheap inside the scheduler's inner loops.
	interleaveSlots = 64
	// offsetStep is the candidate-offset granularity in slots; every
	// job's offset is searched at interleaveSlots/offsetStep positions
	// around the circle.
	offsetStep = 2
)

// Interleave is the solved communication schedule for one set of
// co-located jobs sharing a link.
type Interleave struct {
	// Period is the circle circumference in seconds: the group iteration
	// time predicted by Eq. 1 at the given DoP.
	Period float64
	// Offsets holds one phase offset in seconds per input job, aligned
	// with the input slice, each in [0, Period). Shifting job i's cycle
	// start by Offsets[i] realizes the interleaving.
	Offsets []float64
	// Compatibility is the fraction of the group's comm demand that fits
	// the shared link without collision under the best found offsets:
	// 1 means perfectly interleavable, lower values mean (1-C)·ΣNet
	// seconds of comm collide per iteration no matter the phasing.
	Compatibility float64
	// CollisionSeconds is the absolute collided comm seconds per
	// iteration, (1-Compatibility)·ΣNet.
	CollisionSeconds float64
}

// SolveInterleave computes per-job phase offsets on the shared link for
// jobs co-located at DoP machines, and the resulting compatibility score.
// It is a pure function: the same jobs (in any order) produce the same
// per-job offsets, because placement walks jobs in a canonical order
// (descending comm demand, ties by ID) regardless of input order.
func SolveInterleave(jobs []JobInfo, machines int) Interleave {
	res := Interleave{
		Period:        groupIterSeconds(jobs, machines),
		Offsets:       make([]float64, len(jobs)),
		Compatibility: 1,
	}
	if len(jobs) < 2 || res.Period <= 0 {
		return res
	}
	order := make([]int, len(jobs))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		ja, jb := jobs[order[a]], jobs[order[b]]
		if ja.Net != jb.Net {
			return ja.Net > jb.Net
		}
		return ja.ID < jb.ID
	})

	slotSec := res.Period / interleaveSlots
	var occ, dem [interleaveSlots]float64
	var totalDemand, totalExcess float64
	for _, ji := range order {
		j := jobs[ji]
		if j.Net <= 0 {
			continue
		}
		demand := commDemand(j, machines, res.Period, &dem)
		totalDemand += demand
		bestOff, bestCost := 0, math.Inf(1)
		for c := 0; c < interleaveSlots; c += offsetStep {
			var cost float64
			for s := 0; s < interleaveSlots; s++ {
				d := dem[s]
				if d == 0 {
					continue
				}
				o := occ[(s+c)%interleaveSlots]
				// Incremental excess over unit link capacity in this
				// slot: what the new demand adds beyond what already
				// overflowed.
				after := o + d - 1
				if after > 0 {
					if before := o - 1; before > 0 {
						after -= before
					}
					cost += after
				}
			}
			if cost < bestCost-1e-12 {
				bestCost = cost
				bestOff = c
			}
			if bestCost == 0 {
				break
			}
		}
		for s := 0; s < interleaveSlots; s++ {
			if dem[s] != 0 {
				occ[(s+bestOff)%interleaveSlots] += dem[s]
			}
		}
		res.Offsets[ji] = float64(bestOff) * slotSec
		totalExcess += bestCost * slotSec
	}
	if totalDemand > 0 {
		res.CollisionSeconds = math.Min(totalExcess, totalDemand)
		res.Compatibility = 1 - res.CollisionSeconds/totalDemand
	}
	return res
}

// commDemand fills dem with job j's fractional link occupancy per slot at
// zero offset — the PULL window at the start of the cycle and the PUSH
// window after COMP — and returns the total demand in seconds.
func commDemand(j JobInfo, machines int, period float64, dem *[interleaveSlots]float64) float64 {
	*dem = [interleaveSlots]float64{}
	net := math.Min(j.Net, period)
	if net <= 0 || period <= 0 {
		return 0
	}
	pf := j.PullFrac
	if pf <= 0 || pf >= 1 {
		pf = 0.5
	}
	pull := pf * net
	push := net - pull
	comp := j.TcpuAt(machines)
	fillWindow(dem, period, 0, pull)
	fillWindow(dem, period, pull+comp, push)
	return net
}

// fillWindow adds a [start, start+width) second window onto the circle,
// with fractional coverage at the partial edge slots. It walks slot
// indices as integers — a float accumulator here can stall when a window
// edge lands within one ulp of a slot boundary.
func fillWindow(dem *[interleaveSlots]float64, period, start, width float64) {
	if width <= 0 || period <= 0 {
		return
	}
	if width > period {
		width = period
	}
	slotSec := period / interleaveSlots
	end := start + width
	first := int(math.Floor(start / slotSec))
	last := int(math.Ceil(end / slotSec))
	for s := first; s < last; s++ {
		lo := math.Max(start, float64(s)*slotSec)
		hi := math.Min(end, float64(s+1)*slotSec)
		if hi <= lo {
			continue
		}
		dem[((s%interleaveSlots)+interleaveSlots)%interleaveSlots] += (hi - lo) / slotSec
	}
}

// groupIterSeconds is Eq. 1 over an ad-hoc job set at the given DoP,
// without materializing a Group. The sums accumulate in value-sorted
// order so the result is bit-identical for any permutation of the input —
// the solver's input-order-independence contract depends on it.
func groupIterSeconds(jobs []JobInfo, machines int) float64 {
	comps := make([]float64, 0, len(jobs))
	nets := make([]float64, 0, len(jobs))
	var maxIter float64
	for _, j := range jobs {
		comps = append(comps, j.TcpuAt(machines))
		nets = append(nets, j.Net)
		maxIter = math.Max(maxIter, j.IterAt(machines))
	}
	sort.Float64s(comps)
	sort.Float64s(nets)
	var sumComp, sumNet float64
	for _, v := range comps {
		sumComp += v
	}
	for _, v := range nets {
		sumNet += v
	}
	return math.Max(sumComp, math.Max(sumNet, maxIter))
}

// GroupCompatibility scores how well a group's comm bursts can interleave
// on its shared link, in [0, 1].
func GroupCompatibility(g Group) float64 {
	return SolveInterleave(g.Jobs, g.Machines).Compatibility
}

// collisionSeconds is the solver's predicted collided comm seconds per
// iteration for an ad-hoc job set; the scheduler uses it as a penalty in
// the same units as the imbalance terms it already minimizes.
func collisionSeconds(jobs []JobInfo, machines int) float64 {
	return SolveInterleave(jobs, machines).CollisionSeconds
}
