package core

import (
	"math"
	"math/rand"
	"testing"
)

// TestSolveInterleaveSeparatesTwoIdenticalJobs pins the core promise:
// two comm-heavy jobs whose bursts would collide at zero offset get
// distinct phases and a clean circle.
func TestSolveInterleaveSeparatesTwoIdenticalJobs(t *testing.T) {
	// At 4 machines: Tcpu = 2s each, Net = 2s each. Period = max(4, 4) = 4s;
	// each job's comm fills half the circle, so perfect interleaving exists.
	jobs := []JobInfo{
		{ID: "a", Comp: 8, Net: 2},
		{ID: "b", Comp: 8, Net: 2},
	}
	il := SolveInterleave(jobs, 4)
	if il.Period != 4 {
		t.Fatalf("period = %v, want 4", il.Period)
	}
	if il.Compatibility < 0.95 {
		t.Errorf("compatibility = %v, want ~1 (perfectly interleavable pair)", il.Compatibility)
	}
	if il.Offsets[0] == il.Offsets[1] {
		t.Errorf("identical offsets %v for colliding jobs", il.Offsets)
	}
}

// TestSolveInterleaveOverloadedLink: when aggregate comm exceeds the
// period, some collision is unavoidable and compatibility must drop
// below 1 while staying in [0, 1].
func TestSolveInterleaveOverloadedLink(t *testing.T) {
	jobs := []JobInfo{
		{ID: "a", Comp: 1, Net: 6},
		{ID: "b", Comp: 1, Net: 6},
		{ID: "c", Comp: 1, Net: 6},
	}
	il := SolveInterleave(jobs, 4)
	if il.Compatibility < 0 || il.Compatibility > 1 {
		t.Fatalf("compatibility = %v outside [0,1]", il.Compatibility)
	}
	// Period = sumNet = 18s and the link is exactly full; the discretized
	// solver may not reach 1.0 but must not claim heavy collision either.
	if il.CollisionSeconds < 0 {
		t.Errorf("negative collision seconds %v", il.CollisionSeconds)
	}
	// Four comm-saturating jobs on a period bounded by sumNet leave no
	// slack at all once COMP windows force overlaps.
	over := []JobInfo{
		{ID: "a", Comp: 40, Net: 10},
		{ID: "b", Comp: 40, Net: 10},
	}
	ilOver := SolveInterleave(over, 4) // period = max(20, 20, 20) = 20
	if ilOver.Compatibility < 0 || ilOver.Compatibility > 1 {
		t.Fatalf("compatibility = %v outside [0,1]", ilOver.Compatibility)
	}
}

// TestSolveInterleaveInputOrderIndependent is the determinism contract:
// per-job offsets must not depend on the order jobs are passed in, or
// map-iteration order anywhere upstream would leak into plans.
func TestSolveInterleaveInputOrderIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 25; trial++ {
		n := 2 + rng.Intn(5)
		jobs := make([]JobInfo, n)
		for i := range jobs {
			jobs[i] = JobInfo{
				ID:       string(rune('a' + i)),
				Comp:     1 + rng.Float64()*40,
				Net:      0.5 + rng.Float64()*10,
				PullFrac: rng.Float64(),
			}
		}
		machines := 1 + rng.Intn(16)
		base := SolveInterleave(jobs, machines)
		want := make(map[string]float64, n)
		for i, j := range jobs {
			want[j.ID] = base.Offsets[i]
		}
		for shuffle := 0; shuffle < 4; shuffle++ {
			perm := rng.Perm(n)
			shuffled := make([]JobInfo, n)
			for i, p := range perm {
				shuffled[i] = jobs[p]
			}
			got := SolveInterleave(shuffled, machines)
			if got.Compatibility != base.Compatibility || got.Period != base.Period {
				t.Fatalf("trial %d: shuffled solve changed score: %v/%v vs %v/%v",
					trial, got.Compatibility, got.Period, base.Compatibility, base.Period)
			}
			for i, j := range shuffled {
				if got.Offsets[i] != want[j.ID] {
					t.Fatalf("trial %d: job %s offset %v after shuffle, want %v",
						trial, j.ID, got.Offsets[i], want[j.ID])
				}
			}
		}
	}
}

// TestSolveInterleaveDegenerate: singleton and zero-net job sets are
// trivially compatible with zero offsets.
func TestSolveInterleaveDegenerate(t *testing.T) {
	il := SolveInterleave([]JobInfo{{ID: "solo", Comp: 10, Net: 2}}, 4)
	if il.Compatibility != 1 || il.Offsets[0] != 0 {
		t.Errorf("singleton solve = %+v, want compatibility 1 offset 0", il)
	}
	il = SolveInterleave(nil, 4)
	if il.Compatibility != 1 {
		t.Errorf("empty solve compatibility = %v, want 1", il.Compatibility)
	}
}

// TestCompFloorChangesTcpu pins the Synergy-style sensitivity plumbing:
// CompFloor adds serial seconds that machines cannot shave, and zero
// floor reproduces Eq. 2 exactly.
func TestCompFloorChangesTcpu(t *testing.T) {
	j := JobInfo{ID: "a", Comp: 8, Net: 1}
	if got := j.TcpuAt(4); got != 2 {
		t.Fatalf("TcpuAt(4) = %v, want 2 (Eq. 2)", got)
	}
	j.CompFloor = 1.5
	if got := j.TcpuAt(4); got != 3.5 {
		t.Fatalf("TcpuAt(4) with floor = %v, want 3.5", got)
	}
	// The floor shrinks the marginal gain of extra machines: a floored
	// job gains less from machine 5 than an unfloored one.
	floored := JobInfo{Comp: 8, CompFloor: 4}
	pure := JobInfo{Comp: 8}
	gainFloored := floored.TcpuAt(4) - floored.TcpuAt(5)
	gainPure := pure.TcpuAt(4) - pure.TcpuAt(5)
	if math.Abs(gainFloored-gainPure) > 1e-9 {
		t.Fatalf("marginal gains %v vs %v: the floor is constant and must cancel",
			gainFloored, gainPure)
	}
}

// TestGroupCompatibilityScoreTerm: with NetModel on, Score prefers a
// plan whose groups interleave cleanly over one with colliding comm.
func TestGroupCompatibilityScoreTerm(t *testing.T) {
	clean := Plan{Groups: []Group{{
		Machines: 4,
		Jobs: []JobInfo{
			{ID: "a", Comp: 8, Net: 2},
			{ID: "b", Comp: 8, Net: 2},
		},
	}}}
	colliding := Plan{Groups: []Group{{
		Machines: 4,
		Jobs: []JobInfo{
			{ID: "a", Comp: 2, Net: 8},
			{ID: "b", Comp: 2, Net: 8},
		},
	}}}
	if GroupCompatibility(clean.Groups[0]) <= GroupCompatibility(colliding.Groups[0]) {
		t.Fatalf("clean group compatibility %v <= colliding %v",
			GroupCompatibility(clean.Groups[0]), GroupCompatibility(colliding.Groups[0]))
	}
	// The compatibility term must only move the net share of the score:
	// for the clean group it is ~neutral, for the colliding group the
	// NetModel score drops below the default score.
	on, off := Options{NetModel: true}, Options{}
	if on.Score(colliding) >= off.Score(colliding) {
		t.Errorf("NetModel score %v >= default %v for a colliding group",
			on.Score(colliding), off.Score(colliding))
	}
	// PullFrac noise must not change the default (NetModel-off) score.
	noisy := Plan{Groups: []Group{{
		Machines: 4,
		Jobs: []JobInfo{
			{ID: "a", Comp: 8, Net: 2, PullFrac: 0.9},
			{ID: "b", Comp: 8, Net: 2},
		},
	}}}
	if off.Score(noisy) != off.Score(clean) {
		t.Error("PullFrac changed the default score: NetModel gating leaked")
	}
}
