package core

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

func checkPlanValid(t *testing.T, p Plan, jobs []JobInfo, machines int) {
	t.Helper()
	if p.TotalMachines() > machines {
		t.Errorf("plan uses %d machines, only %d available", p.TotalMachines(), machines)
	}
	seen := make(map[string]int)
	for gi, g := range p.Groups {
		if len(g.Jobs) == 0 {
			t.Errorf("group %d is empty", gi)
		}
		if g.Machines < 1 {
			t.Errorf("group %d has %d machines, want >= 1", gi, g.Machines)
		}
		for _, j := range g.Jobs {
			seen[j.ID]++
		}
	}
	for id, n := range seen {
		if n != 1 {
			t.Errorf("job %s placed %d times", id, n)
		}
	}
	known := make(map[string]bool, len(jobs))
	for _, j := range jobs {
		known[j.ID] = true
	}
	for id := range seen {
		if !known[id] {
			t.Errorf("plan contains unknown job %s", id)
		}
	}
}

func TestScheduleEmpty(t *testing.T) {
	if p := Schedule(nil, 10, Options{}); len(p.Groups) != 0 {
		t.Error("Schedule(nil) returned groups")
	}
	if p := Schedule([]JobInfo{job("a", 1, 1)}, 0, Options{}); len(p.Groups) != 0 {
		t.Error("Schedule with 0 machines returned groups")
	}
}

func TestScheduleSingleJob(t *testing.T) {
	jobs := []JobInfo{job("a", 1600, 100)}
	p := Schedule(jobs, 16, Options{})
	checkPlanValid(t, p, jobs, 16)
	if p.NumJobs() != 1 {
		t.Fatalf("placed %d jobs, want 1", p.NumJobs())
	}
	if p.TotalMachines() != 16 {
		t.Errorf("single job got %d machines, want all 16", p.TotalMachines())
	}
}

// TestScheduleComplementaryPair checks that two jobs with complementary
// resource use are co-located in one group rather than isolated.
func TestScheduleComplementaryPair(t *testing.T) {
	jobs := []JobInfo{
		job("cpu-heavy", 3200, 20),
		job("net-heavy", 200, 180),
	}
	p := Schedule(jobs, 16, Options{})
	checkPlanValid(t, p, jobs, 16)
	if p.NumJobs() != 2 {
		t.Fatalf("placed %d jobs, want 2", p.NumJobs())
	}
	if len(p.Groups) != 1 {
		t.Fatalf("made %d groups, want 1 co-located group, plan: %s", len(p.Groups), p)
	}
	uc, un := p.Util()
	if uc < 0.8 {
		t.Errorf("co-located CPU util %.2f, want >= 0.8", uc)
	}
	if un < 0.5 {
		t.Errorf("co-located net util %.2f, want >= 0.5", un)
	}
}

// TestScheduleImprovesOverIsolation: co-locating the whole base-like mix
// must score at least as well as any single job alone.
func TestScheduleImprovesOverIsolation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	jobs := randomJobs(rng, 12)
	opts := Options{}
	p := Schedule(jobs, 32, opts)
	checkPlanValid(t, p, jobs, 32)
	single := Schedule(jobs[:1], 32, opts)
	if opts.Score(p) < opts.Score(single) {
		t.Errorf("full plan score %.3f < single-job score %.3f",
			opts.Score(p), opts.Score(single))
	}
	if p.NumJobs() < 2 {
		t.Errorf("scheduler placed only %d of 12 jobs", p.NumJobs())
	}
}

func TestScheduleMachineConservation(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		n := 2 + rng.Intn(20)
		m := 4 + rng.Intn(60)
		jobs := randomJobs(rng, n)
		p := Schedule(jobs, m, Options{})
		checkPlanValid(t, p, jobs, m)
		if len(p.Groups) > 0 && p.TotalMachines() != m {
			t.Errorf("trial %d: plan uses %d of %d machines", trial, p.TotalMachines(), m)
		}
	}
}

func TestSchedulePrefixProperty(t *testing.T) {
	// Jobs not in the scheduled prefix stay out: the placed set must be a
	// prefix of the input ordering (Algorithm 1 L4-5).
	rng := rand.New(rand.NewSource(3))
	jobs := randomJobs(rng, 10)
	p := Schedule(jobs, 20, Options{})
	placed := make(map[string]bool)
	for _, id := range p.JobIDs() {
		placed[id] = true
	}
	lastPlaced := -1
	for i, j := range jobs {
		if placed[j.ID] {
			lastPlaced = i
		}
	}
	for i := 0; i <= lastPlaced; i++ {
		if !placed[jobs[i].ID] {
			t.Errorf("job %d (%s) skipped inside the scheduled prefix", i, jobs[i].ID)
		}
	}
}

func TestBestGroupCountBalances(t *testing.T) {
	// 8 identical jobs with Tcpu(m)=Net when m = machines/nG solves to a
	// predictable group count: comp=800 machine-s, net=50s, machines=64;
	// Tcpu = 800*nG/64 = 12.5*nG; equals 50 at nG=4.
	var jobs []JobInfo
	for i := 0; i < 8; i++ {
		jobs = append(jobs, job(string(rune('a'+i)), 800, 50))
	}
	got := bestGroupCount(jobs, 64, Options{}.withDefaults())
	if got != 4 {
		t.Errorf("bestGroupCount = %d, want 4", got)
	}
}

func TestAssignJobsKeepsLargeJobsTogether(t *testing.T) {
	// Two big jobs and two small jobs into two groups: the big pair must
	// share a group to avoid the job-bound case (§IV-B3).
	jobs := []JobInfo{
		job("big1", 4000, 200), job("small1", 100, 10),
		job("big2", 4200, 210), job("small2", 120, 12),
	}
	groups := assignJobs(jobs, 2, 16, Options{})
	if len(groups) != 2 {
		t.Fatalf("got %d groups", len(groups))
	}
	var bigGroup int = -1
	for gi, g := range groups {
		for _, j := range g.Jobs {
			if j.ID == "big1" {
				bigGroup = gi
			}
		}
	}
	foundTogether := false
	for _, j := range groups[bigGroup].Jobs {
		if j.ID == "big2" {
			foundTogether = true
		}
	}
	if !foundTogether {
		t.Errorf("big jobs split across groups: %v / %v", groups[0], groups[1])
	}
}

func TestAssignJobsEvenSplit(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	jobs := randomJobs(rng, 10)
	groups := assignJobs(jobs, 3, 30, Options{})
	sizes := []int{len(groups[0].Jobs), len(groups[1].Jobs), len(groups[2].Jobs)}
	sort.Ints(sizes)
	if sizes[0] < 3 || sizes[2] > 4 {
		t.Errorf("uneven assignment sizes %v, want 3/3/4 split", sizes)
	}
}

func TestFineTuneReducesImbalance(t *testing.T) {
	// Deliberately pathological grouping: both CPU-heavies in group 0 and
	// both net-heavies in group 1. Fine-tuning must reduce combined
	// imbalance by swapping one pair.
	groups := []Group{
		{Machines: 8, Jobs: []JobInfo{job("c1", 1600, 10), job("c2", 1600, 10)}},
		{Machines: 8, Jobs: []JobInfo{job("n1", 80, 190), job("n2", 80, 190)}},
	}
	before := math.Abs(groups[0].Imbalance()) + math.Abs(groups[1].Imbalance())
	fineTune(groups, Options{})
	after := math.Abs(groups[0].Imbalance()) + math.Abs(groups[1].Imbalance())
	if after >= before {
		t.Errorf("fineTune imbalance %.1f -> %.1f, want reduction", before, after)
	}
}

func TestFineTuneSingleGroupNoop(t *testing.T) {
	groups := []Group{{Machines: 4, Jobs: []JobInfo{job("a", 100, 10)}}}
	fineTune(groups, Options{}) // must not panic or mutate
	if len(groups[0].Jobs) != 1 {
		t.Error("single-group fine-tune mutated jobs")
	}
}

func TestAllocateMachinesFavorsCPUBound(t *testing.T) {
	groups := []Group{
		{Jobs: []JobInfo{job("cpu", 6400, 10)}}, // strongly CPU-bound
		{Jobs: []JobInfo{job("net", 10, 200)}},  // strongly network-bound
	}
	allocateMachines(groups, 10)
	total := groups[0].Machines + groups[1].Machines
	if total != 10 {
		t.Fatalf("allocated %d machines, want 10", total)
	}
	if groups[0].Machines <= groups[1].Machines {
		t.Errorf("cpu-bound group got %d machines vs %d for net-bound, want more",
			groups[0].Machines, groups[1].Machines)
	}
	if groups[1].Machines < 1 {
		t.Error("every group must keep at least one machine")
	}
}

func TestAllocateMachinesAllNetworkBound(t *testing.T) {
	// When no group benefits from extra machines, the spares must still be
	// distributed rather than stranded.
	groups := []Group{
		{Jobs: []JobInfo{job("n1", 1, 100)}},
		{Jobs: []JobInfo{job("n2", 1, 100)}},
	}
	allocateMachines(groups, 9)
	if got := groups[0].Machines + groups[1].Machines; got != 9 {
		t.Errorf("allocated %d machines, want 9", got)
	}
}

func TestScheduleMemoryConstraint(t *testing.T) {
	// Jobs so heavy that two per group exceed memory: the scheduler must
	// not co-locate them in one group.
	heavy := func(id string) JobInfo {
		j := job(id, 800, 50)
		j.ModelGB = 18 * 16 // 18 GB per machine at DoP 16
		j.WorkGB = 1
		return j
	}
	jobs := []JobInfo{heavy("a"), heavy("b")}
	p := Schedule(jobs, 32, Options{MemoryCapGB: 32})
	checkPlanValid(t, p, jobs, 32)
	for _, g := range p.Groups {
		if g.MinMemoryGB() > 32 {
			t.Errorf("group %s exceeds memory cap: %.1f GB", g, g.MinMemoryGB())
		}
	}
}

func TestScheduleMaxJobsPerGroup(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	jobs := randomJobs(rng, 12)
	p := Schedule(jobs, 24, Options{MaxJobsPerGroup: 3})
	checkPlanValid(t, p, jobs, 24)
	for _, g := range p.Groups {
		if len(g.Jobs) > 3 {
			t.Errorf("group has %d jobs, cap is 3", len(g.Jobs))
		}
	}
}

func TestOptionsScoreWeighting(t *testing.T) {
	p := Plan{Groups: []Group{{Machines: 4, Jobs: []JobInfo{job("a", 400, 10)}}}}
	uc, un := p.Util()
	def := Options{}
	want := 0.7*uc + 0.3*un
	if got := def.Score(p); math.Abs(got-want) > 1e-12 {
		t.Errorf("default Score = %v, want %v", got, want)
	}
	cpuOnly := Options{CPUWeight: 1}
	if got := cpuOnly.Score(p); math.Abs(got-uc) > 1e-12 {
		t.Errorf("CPU-only Score = %v, want %v", got, uc)
	}
}

func TestScheduleDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	jobs := randomJobs(rng, 15)
	a := Schedule(jobs, 40, Options{})
	b := Schedule(jobs, 40, Options{})
	if a.String() != b.String() {
		t.Errorf("Schedule not deterministic:\n%s\n%s", a, b)
	}
}
