package core

import (
	"math"
	"sort"
)

// Options tune the scheduler. The zero value selects the paper's defaults.
type Options struct {
	// CPUWeight is the weight of CPU utilization in the scheduling score;
	// the paper treats CPU "more importantly than the network" (§IV-B2).
	// Defaults to 0.7; network gets the remainder.
	CPUWeight float64
	// MemoryCapGB bounds the per-machine heap footprint of a group with
	// all inputs spilled. Zero disables the feasibility check.
	MemoryCapGB float64
	// MinImprovement is the relative utilization gain below which Harmony
	// refuses to regroup (§IV-B4 uses 5%).
	MinImprovement float64
	// MaxJobsPerGroup caps group size; zero means unlimited. The paper
	// prefers fewer jobs per group for lower memory pressure.
	MaxJobsPerGroup int
	// DisableSwapTuning skips the swap-based fine-tuning step of §IV-B3,
	// for the design ablation.
	DisableSwapTuning bool
}

func (o Options) withDefaults() Options {
	if o.CPUWeight <= 0 || o.CPUWeight > 1 {
		o.CPUWeight = 0.7
	}
	if o.MinImprovement <= 0 {
		o.MinImprovement = 0.05
	}
	return o
}

// Score collapses a plan's utilization vector to a scalar objective using
// the CPU-preferring weights.
func (o Options) Score(p Plan) float64 {
	o = o.withDefaults()
	uc, un := p.Util()
	return o.CPUWeight*uc + (1-o.CPUWeight)*un
}

// feasible reports whether every group fits machine memory with all input
// spilled and respects the group-size cap.
func (o Options) feasible(p Plan) bool {
	for _, g := range p.Groups {
		if o.MaxJobsPerGroup > 0 && len(g.Jobs) > o.MaxJobsPerGroup {
			return false
		}
		if o.MemoryCapGB > 0 && g.MinMemoryGB() > o.MemoryCapGB {
			return false
		}
	}
	return true
}

// Schedule is Algorithm 1 of the paper. It considers growing prefixes of
// jobs (which the caller orders by scheduling priority: running, paused,
// then newly profiled), picks the group count that best balances CPU and
// network time, assigns jobs to groups, allocates machines, and stops when
// utilization no longer improves.
//
// The returned plan places a prefix of jobs; the rest remain waiting.
// An empty plan is returned when no job can be placed (for example when
// there are no jobs or no machines).
func Schedule(jobs []JobInfo, machines int, opts Options) Plan {
	opts = opts.withDefaults()
	if len(jobs) == 0 || machines <= 0 {
		return Plan{}
	}

	var best Plan
	bestScore := -1.0
	for nj := 1; nj <= len(jobs); nj = nextPrefix(nj) {
		toGroup := jobs[:nj]
		nG := bestGroupCount(toGroup, machines, opts)
		groups := assignJobs(toGroup, nG, machines)
		if !opts.DisableSwapTuning {
			fineTune(groups)
		}
		allocateMachines(groups, machines)
		cand := Plan{Groups: groups}
		if !opts.feasible(cand) {
			// Larger prefixes only add memory pressure at the same
			// group count; try one more group count before giving up
			// on this prefix by splitting wider.
			if wide := widenForMemory(toGroup, machines, opts); wide != nil {
				cand = Plan{Groups: wide}
			} else {
				break
			}
		}
		score := opts.Score(cand)
		if score > bestScore {
			bestScore = score
			best = cand
			continue
		}
		break // L12-13: no more improvement with more jobs
	}
	return best
}

// nextPrefix advances Algorithm 1's job-count loop. Small prefixes step
// one job at a time (exactly L4 of the paper); past 64 jobs the step
// grows geometrically so that scheduling thousands of jobs stays within
// the seconds the paper reports for 8K jobs on 10K machines (§V-F).
func nextPrefix(nj int) int {
	if nj < 64 {
		return nj + 1
	}
	return nj + (nj+15)/16
}

// bestGroupCount is L6 of Algorithm 1: choose the number of groups n_G
// whose implied DoP (machines/n_G, equal across groups) best balances
// each job's CPU and network time: argmin Σ_j |T_cpu_j(n_G) − T_net_j|.
// Each |comp·n_G/M − net| term is convex in n_G, so the sum is convex;
// large inputs use ternary search instead of a linear scan.
func bestGroupCount(jobs []JobInfo, machines int, opts Options) int {
	maxG := len(jobs)
	if machines < maxG {
		maxG = machines
	}
	cost := func(nG int) float64 {
		if opts.MaxJobsPerGroup > 0 && (len(jobs)+nG-1)/nG > opts.MaxJobsPerGroup {
			return math.Inf(1)
		}
		m := machines / nG
		var c float64
		for _, j := range jobs {
			c += math.Abs(j.TcpuAt(m) - j.Net)
		}
		return c
	}
	if maxG <= 64 {
		bestG, bestCost := 1, math.Inf(1)
		for nG := 1; nG <= maxG; nG++ {
			if c := cost(nG); c < bestCost {
				bestCost = c
				bestG = nG
			}
		}
		return bestG
	}
	lo, hi := 1, maxG
	for hi-lo > 2 {
		m1 := lo + (hi-lo)/3
		m2 := hi - (hi-lo)/3
		if cost(m1) <= cost(m2) {
			hi = m2
		} else {
			lo = m1
		}
	}
	bestG, bestCost := lo, cost(lo)
	for nG := lo + 1; nG <= hi; nG++ {
		if c := cost(nG); c < bestCost {
			bestCost = c
			bestG = nG
		}
	}
	return bestG
}

// assignJobs distributes jobs evenly into nG groups (§IV-B3): sort by the
// job's own iteration time so that similarly sized jobs land together
// (preventing job-bound groups), then fill groups one by one, choosing at
// each step the remaining job that best balances the group's CPU and
// network use.
func assignJobs(jobs []JobInfo, nG, machines int) []Group {
	if nG < 1 {
		nG = 1
	}
	m := machines / nG
	if m < 1 {
		m = 1
	}
	sorted := make([]JobInfo, len(jobs))
	copy(sorted, jobs)
	sort.SliceStable(sorted, func(i, j int) bool {
		return sorted[i].IterAt(m) > sorted[j].IterAt(m)
	})

	groups := make([]Group, nG)
	for i := range groups {
		groups[i].Machines = m // provisional; allocateMachines finalizes
	}
	remaining := sorted
	for gi := range groups {
		// Even split: earlier groups absorb the remainder.
		size := len(remaining) / (nG - gi)
		if len(remaining)%(nG-gi) != 0 {
			size++
		}
		for k := 0; k < size; k++ {
			pick := 0
			if k > 0 {
				// Pick the remaining job that minimizes the group's
				// |ΣT_cpu − ΣT_net| imbalance, but only among jobs with
				// iteration times close to the largest remaining one:
				// similar-sized jobs stay together (preventing the
				// job-bound case) while the choice within that window
				// balances resource use.
				window := 1
				head := remaining[0].IterAt(m)
				for window < len(remaining) && window < 32 &&
					remaining[window].IterAt(m)*1.5 >= head {
					window++
				}
				bestImb := math.Inf(1)
				for c := 0; c < window; c++ {
					j := remaining[c]
					imb := math.Abs(groups[gi].Imbalance() + j.TcpuAt(m) - j.Net)
					if imb < bestImb {
						bestImb = imb
						pick = c
					}
				}
			}
			groups[gi].Jobs = append(groups[gi].Jobs, remaining[pick])
			remaining = append(remaining[:pick], remaining[pick+1:]...)
		}
	}
	return groups
}

// fineTune is the swap step of §IV-B3: repeatedly pick the most imbalanced
// group, find the group with the most complementary resource use, and swap
// the job pair that minimizes the combined imbalance. It stops when no
// swap helps (with an iteration cap as a safety net).
func fineTune(groups []Group) {
	if len(groups) < 2 {
		return
	}
	maxRounds := 4 * len(groups)
	if maxRounds > 256 {
		maxRounds = 256
	}
	for round := 0; round < maxRounds; round++ {
		// Most imbalanced group.
		src := 0
		for i := range groups {
			if math.Abs(groups[i].Imbalance()) > math.Abs(groups[src].Imbalance()) {
				src = i
			}
		}
		// Most complementary partner: largest imbalance of opposite sign.
		dst, found := 0, false
		srcImb := groups[src].Imbalance()
		var bestOpp float64
		for i := range groups {
			if i == src {
				continue
			}
			imb := groups[i].Imbalance()
			if imb*srcImb < 0 && math.Abs(imb) > bestOpp {
				bestOpp = math.Abs(imb)
				dst = i
				found = true
			}
		}
		if !found {
			return
		}
		if !trySwap(&groups[src], &groups[dst]) {
			return
		}
	}
}

// trySwap finds the job pair whose exchange minimizes the two groups'
// combined imbalance; it applies the swap and reports true only when it
// strictly improves.
func trySwap(a, b *Group) bool {
	current := math.Abs(a.Imbalance()) + math.Abs(b.Imbalance())
	bestI, bestJ, bestCost := -1, -1, current
	for i, ja := range a.Jobs {
		for j, jb := range b.Jobs {
			da := ja.TcpuAt(a.Machines) - ja.Net
			db := jb.TcpuAt(b.Machines) - jb.Net
			// Swapping moves ja's contribution out of a and jb's in,
			// evaluated at each group's own DoP.
			dbInA := jb.TcpuAt(a.Machines) - jb.Net
			daInB := ja.TcpuAt(b.Machines) - ja.Net
			newA := a.Imbalance() - da + dbInA
			newB := b.Imbalance() - db + daInB
			cost := math.Abs(newA) + math.Abs(newB)
			if cost < bestCost-1e-12 {
				bestCost = cost
				bestI, bestJ = i, j
			}
		}
	}
	if bestI < 0 {
		return false
	}
	a.Jobs[bestI], b.Jobs[bestJ] = b.Jobs[bestJ], a.Jobs[bestI]
	return true
}

// allocateMachines is the machine-distribution step of §IV-B3: every
// group gets one machine, then the remaining machines go one at a time to
// the group whose iteration time shrinks the most from one more machine
// (the most computation-bound group, per Eq. 1 and Eq. 2). A max-heap on
// the marginal gain keeps the water-filling loop near O(M log G).
func allocateMachines(groups []Group, machines int) {
	if len(groups) == 0 {
		return
	}
	gain := func(i int) float64 {
		g := groups[i]
		now := g.IterSeconds()
		g.Machines++
		return (now - g.IterSeconds()) / math.Max(now, 1e-12)
	}
	for i := range groups {
		groups[i].Machines = 1
	}
	// heap of (gain, group index); lazy re-evaluation on pop.
	type entry struct {
		gain float64
		idx  int
	}
	h := make([]entry, len(groups))
	for i := range groups {
		h[i] = entry{gain(i), i}
	}
	less := func(a, b entry) bool { return a.gain > b.gain } // max-heap
	var down func(i int)
	down = func(i int) {
		for {
			l, r := 2*i+1, 2*i+2
			big := i
			if l < len(h) && less(h[l], h[big]) {
				big = l
			}
			if r < len(h) && less(h[r], h[big]) {
				big = r
			}
			if big == i {
				return
			}
			h[i], h[big] = h[big], h[i]
			i = big
		}
	}
	for i := len(h)/2 - 1; i >= 0; i-- {
		down(i)
	}
	for spare := machines - len(groups); spare > 0; {
		top := h[0]
		fresh := gain(top.idx)
		if fresh < top.gain-1e-12 {
			// Stale: re-key and sift.
			h[0].gain = fresh
			down(0)
			continue
		}
		if fresh <= 1e-12 {
			// No group benefits (all network- or job-bound); spread the
			// rest round-robin so machines are not stranded.
			for i := 0; spare > 0; i, spare = (i+1)%len(groups), spare-1 {
				groups[i].Machines++
			}
			return
		}
		groups[top.idx].Machines++
		spare--
		h[0].gain = gain(top.idx)
		down(0)
	}
}

// widenForMemory retries the grouping with more, smaller groups until the
// memory constraint is satisfied; it returns nil when even one job per
// group does not fit.
func widenForMemory(jobs []JobInfo, machines int, opts Options) []Group {
	maxG := len(jobs)
	if machines < maxG {
		maxG = machines
	}
	for nG := bestGroupCount(jobs, machines, opts) + 1; nG <= maxG; nG++ {
		groups := assignJobs(jobs, nG, machines)
		if !opts.DisableSwapTuning {
			fineTune(groups)
		}
		allocateMachines(groups, machines)
		if opts.feasible(Plan{Groups: groups}) {
			return groups
		}
	}
	return nil
}
