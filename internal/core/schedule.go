package core

import (
	"math"
	"sort"

	"harmony/internal/parallel"
)

// Options tune the scheduler. The zero value selects the paper's defaults.
type Options struct {
	// CPUWeight is the weight of CPU utilization in the scheduling score;
	// the paper treats CPU "more importantly than the network" (§IV-B2).
	// Defaults to 0.7; network gets the remainder.
	CPUWeight float64
	// MemoryCapGB bounds the per-machine heap footprint of a group with
	// all inputs spilled. Zero disables the feasibility check.
	MemoryCapGB float64
	// MinImprovement is the relative utilization gain below which Harmony
	// refuses to regroup (§IV-B4 uses 5%).
	MinImprovement float64
	// MaxJobsPerGroup caps group size; zero means unlimited. The paper
	// prefers fewer jobs per group for lower memory pressure.
	MaxJobsPerGroup int
	// DisableSwapTuning skips the swap-based fine-tuning step of §IV-B3,
	// for the design ablation.
	DisableSwapTuning bool
	// NetModel replaces Eq. 1's aggregate-bandwidth view of a group's
	// network with the link-contention model: grouping decisions account
	// for whether co-located jobs' PULL/PUSH bursts can interleave on
	// the shared link (see interleave.go), and comm seconds the solver
	// predicts will collide are discounted from the network-utilization
	// score. Off by default; plans are bit-identical to the paper's
	// model when false.
	NetModel bool
	// Parallelism bounds the worker pool evaluating Algorithm 1's
	// candidate prefixes and widenForMemory's group-count retries. Zero
	// selects runtime.GOMAXPROCS(0); 1 runs the exact single-threaded
	// path with no goroutines. Every candidate is a pure function of its
	// inputs and the reduction walks candidates in deterministic prefix
	// order, so plans are bit-identical at every setting.
	Parallelism int
}

func (o Options) withDefaults() Options {
	if o.CPUWeight <= 0 || o.CPUWeight > 1 {
		o.CPUWeight = 0.7
	}
	if o.MinImprovement <= 0 {
		o.MinImprovement = 0.05
	}
	o.Parallelism = parallel.Workers(o.Parallelism)
	return o
}

// Score collapses a plan's utilization vector to a scalar objective using
// the CPU-preferring weights. With NetModel on, each group's network term
// is discounted by its link compatibility: comm seconds predicted to
// collide on the shared link are occupancy, not useful utilization.
func (o Options) Score(p Plan) float64 {
	fullScoreCalls.Add(1)
	o = o.withDefaults()
	if o.NetModel {
		var wc, wn, m float64
		for _, g := range p.Groups {
			uc, un := g.Util()
			wc += float64(g.Machines) * uc
			wn += float64(g.Machines) * un * GroupCompatibility(g)
			m += float64(g.Machines)
		}
		if m == 0 {
			return 0
		}
		return o.CPUWeight*wc/m + (1-o.CPUWeight)*wn/m
	}
	uc, un := p.Util()
	return o.CPUWeight*uc + (1-o.CPUWeight)*un
}

// feasible reports whether every group fits machine memory with all input
// spilled and respects the group-size cap.
func (o Options) feasible(p Plan) bool {
	for _, g := range p.Groups {
		if o.MaxJobsPerGroup > 0 && len(g.Jobs) > o.MaxJobsPerGroup {
			return false
		}
		if o.MemoryCapGB > 0 && g.MinMemoryGB() > o.MemoryCapGB {
			return false
		}
	}
	return true
}

// Schedule is Algorithm 1 of the paper. It considers growing prefixes of
// jobs (which the caller orders by scheduling priority: running, paused,
// then newly profiled), picks the group count that best balances CPU and
// network time, assigns jobs to groups, allocates machines, and stops when
// utilization no longer improves.
//
// The returned plan places a prefix of jobs; the rest remain waiting.
// An empty plan is returned when no job can be placed (for example when
// there are no jobs or no machines).
//
// With Options.Parallelism > 1 the candidate prefixes are evaluated
// speculatively on a bounded worker pool; the reduction applies the same
// stop rule in prefix order, so the result is identical to the sequential
// search.
func Schedule(jobs []JobInfo, machines int, opts Options) Plan {
	opts = opts.withDefaults()
	if len(jobs) == 0 || machines <= 0 {
		return Plan{}
	}
	if opts.Parallelism > 1 {
		return scheduleParallel(jobs, machines, opts)
	}

	var best Plan
	bestScore := -1.0
	for nj := 1; nj <= len(jobs); nj = nextPrefix(nj) {
		cand := evalPrefix(jobs, nj, machines, opts)
		if cand.stop {
			break
		}
		if cand.score > bestScore {
			bestScore = cand.score
			best = cand.plan
			continue
		}
		break // L12-13: no more improvement with more jobs
	}
	return best
}

// scheduleParallel runs the prefix search on a worker pool. Prefixes are
// evaluated in batches (bounding the speculation past the stop point);
// the sequential reduction over each batch preserves Algorithm 1's exact
// stop rule: first non-improving or memory-infeasible prefix ends the
// search.
func scheduleParallel(jobs []JobInfo, machines int, opts Options) Plan {
	var prefixes []int
	for nj := 1; nj <= len(jobs); nj = nextPrefix(nj) {
		prefixes = append(prefixes, nj)
	}
	var best Plan
	bestScore := -1.0
	batch := opts.Parallelism * 2
	cands := make([]prefixCandidate, batch)
	for start := 0; start < len(prefixes); start += batch {
		end := start + batch
		if end > len(prefixes) {
			end = len(prefixes)
		}
		window := cands[:end-start]
		parallel.Run(len(window), opts.Parallelism, func(i int) {
			window[i] = evalPrefix(jobs, prefixes[start+i], machines, opts)
		})
		for _, cand := range window {
			if cand.stop {
				return best
			}
			if cand.score > bestScore {
				bestScore = cand.score
				best = cand.plan
				continue
			}
			return best
		}
	}
	return best
}

// prefixCandidate is one evaluated prefix of Algorithm 1's job-count loop.
type prefixCandidate struct {
	plan  Plan
	score float64
	// stop marks a prefix that is memory-infeasible even after widening;
	// the search ends there, since larger prefixes only add memory
	// pressure.
	stop bool
}

// evalPrefix builds and scores the candidate plan for one prefix length.
// It is a pure function of its arguments, which is what lets the parallel
// search evaluate prefixes speculatively without changing the result.
func evalPrefix(jobs []JobInfo, nj, machines int, opts Options) prefixCandidate {
	toGroup := jobs[:nj]
	nG := bestGroupCount(toGroup, machines, opts)
	groups := assignJobs(toGroup, nG, machines, opts)
	if !opts.DisableSwapTuning {
		fineTune(groups, opts)
	}
	allocateMachines(groups, machines)
	cand := Plan{Groups: groups}
	if !opts.feasible(cand) {
		// Larger prefixes only add memory pressure at the same group
		// count; try wider splits before giving up on this prefix.
		wide := widenForMemory(toGroup, machines, opts)
		if wide == nil {
			return prefixCandidate{stop: true}
		}
		cand = Plan{Groups: wide}
	}
	return prefixCandidate{plan: cand, score: opts.Score(cand)}
}

// nextPrefix advances Algorithm 1's job-count loop. Small prefixes step
// one job at a time (exactly L4 of the paper); past 64 jobs the step
// grows geometrically so that scheduling thousands of jobs stays within
// the seconds the paper reports for 8K jobs on 10K machines (§V-F).
func nextPrefix(nj int) int {
	if nj < 64 {
		return nj + 1
	}
	return nj + (nj+15)/16
}

// bestGroupCount is L6 of Algorithm 1: choose the number of groups n_G
// whose implied DoP (machines/n_G, equal across groups) best balances
// each job's CPU and network time: argmin Σ_j |T_cpu_j(n_G) − T_net_j|.
// Each |comp·n_G/M − net| term is convex in n_G, so the sum is convex;
// large inputs use ternary search instead of a linear scan.
func bestGroupCount(jobs []JobInfo, machines int, opts Options) int {
	maxG := len(jobs)
	if machines < maxG {
		maxG = machines
	}
	cost := func(nG int) float64 {
		if opts.MaxJobsPerGroup > 0 && (len(jobs)+nG-1)/nG > opts.MaxJobsPerGroup {
			return math.Inf(1)
		}
		m := machines / nG
		var c float64
		for _, j := range jobs {
			c += math.Abs(j.TcpuAt(m) - j.Net)
		}
		return c
	}
	if maxG <= 64 {
		bestG, bestCost := 1, math.Inf(1)
		for nG := 1; nG <= maxG; nG++ {
			if c := cost(nG); c < bestCost {
				bestCost = c
				bestG = nG
			}
		}
		return bestG
	}
	lo, hi := 1, maxG
	for hi-lo > 2 {
		m1 := lo + (hi-lo)/3
		m2 := hi - (hi-lo)/3
		if cost(m1) <= cost(m2) {
			hi = m2
		} else {
			lo = m1
		}
	}
	bestG, bestCost := lo, cost(lo)
	for nG := lo + 1; nG <= hi; nG++ {
		if c := cost(nG); c < bestCost {
			bestCost = c
			bestG = nG
		}
	}
	return bestG
}

// assignJobs distributes jobs evenly into nG groups (§IV-B3): sort by the
// job's own iteration time so that similarly sized jobs land together
// (preventing job-bound groups), then fill groups one by one, choosing at
// each step the remaining job that best balances the group's CPU and
// network use.
//
// The model terms T_cpu and T_itr at the group DoP are memoized up front
// (the sort and every window scan reuse them), and removal from the
// remaining set shifts only the scanned window — at most 32 elements —
// instead of the whole tail, so one assignment pass is O(n log n + n·w)
// rather than O(n²).
//
// With Options.NetModel on, each candidate is additionally charged the
// comm seconds the interleaving solver predicts would collide on the
// group's shared link were the candidate added — so the window pick
// prefers jobs whose PULL/PUSH bursts fit the group's idle link windows.
func assignJobs(jobs []JobInfo, nG, machines int, opts Options) []Group {
	if nG < 1 {
		nG = 1
	}
	m := machines / nG
	if m < 1 {
		m = 1
	}
	n := len(jobs)
	tcpu := make([]float64, n)
	iter := make([]float64, n)
	rem := make([]int, n) // indices into jobs, sorted; rem[head:] remain
	for i, j := range jobs {
		tcpu[i] = j.TcpuAt(m)
		iter[i] = j.IterAt(m)
		rem[i] = i
	}
	sort.SliceStable(rem, func(a, b int) bool {
		return iter[rem[a]] > iter[rem[b]]
	})

	groups := make([]Group, nG)
	for i := range groups {
		groups[i].Machines = m // provisional; allocateMachines finalizes
	}
	var scratch []JobInfo // candidate group membership for the net model
	head := 0
	for gi := range groups {
		// Even split: earlier groups absorb the remainder.
		left := n - head
		size := left / (nG - gi)
		if left%(nG-gi) != 0 {
			size++
		}
		for k := 0; k < size; k++ {
			pick := 0
			if k > 0 {
				// Pick the remaining job that minimizes the group's
				// |ΣT_cpu − ΣT_net| imbalance, but only among jobs with
				// iteration times close to the largest remaining one:
				// similar-sized jobs stay together (preventing the
				// job-bound case) while the choice within that window
				// balances resource use.
				window := 1
				top := iter[rem[head]]
				for window < n-head && window < 32 &&
					iter[rem[head+window]]*1.5 >= top {
					window++
				}
				// The group is unchanged while scanning candidates, so
				// its imbalance is computed once, not per candidate.
				imb := groups[gi].Imbalance()
				bestImb := math.Inf(1)
				for c := 0; c < window; c++ {
					ji := rem[head+c]
					v := math.Abs(imb + tcpu[ji] - jobs[ji].Net)
					if opts.NetModel {
						scratch = append(scratch[:0], groups[gi].Jobs...)
						scratch = append(scratch, jobs[ji])
						v += collisionSeconds(scratch, m)
					}
					if v < bestImb {
						bestImb = v
						pick = c
					}
				}
			}
			groups[gi].Jobs = append(groups[gi].Jobs, jobs[rem[head+pick]])
			// Order-preserving removal: shift the skipped window prefix
			// right by one and advance the head.
			copy(rem[head+1:head+pick+1], rem[head:head+pick])
			head++
		}
	}
	return groups
}

// fineTune is the swap step of §IV-B3: repeatedly pick the most imbalanced
// group, find the group with the most complementary resource use, and swap
// the job pair that minimizes the combined imbalance. It stops when no
// swap helps (with an iteration cap as a safety net).
//
// Group imbalances are cached across rounds; a swap invalidates exactly
// the two groups it touched.
func fineTune(groups []Group, opts Options) {
	if len(groups) < 2 {
		return
	}
	maxRounds := 4 * len(groups)
	if maxRounds > 256 {
		maxRounds = 256
	}
	imb := make([]float64, len(groups))
	for i := range groups {
		imb[i] = groups[i].Imbalance()
	}
	for round := 0; round < maxRounds; round++ {
		// Most imbalanced group.
		src := 0
		for i := range imb {
			if math.Abs(imb[i]) > math.Abs(imb[src]) {
				src = i
			}
		}
		// Most complementary partner: largest imbalance of opposite sign.
		dst, found := 0, false
		srcImb := imb[src]
		var bestOpp float64
		for i := range imb {
			if i == src {
				continue
			}
			if imb[i]*srcImb < 0 && math.Abs(imb[i]) > bestOpp {
				bestOpp = math.Abs(imb[i])
				dst = i
				found = true
			}
		}
		if !found {
			return
		}
		if !trySwap(&groups[src], &groups[dst], opts) {
			return
		}
		imb[src] = groups[src].Imbalance()
		imb[dst] = groups[dst].Imbalance()
	}
}

// trySwap finds the job pair whose exchange minimizes the two groups'
// combined imbalance; it applies the swap and reports true only when it
// strictly improves. Each job's imbalance contribution at both groups'
// DoPs is computed once up front, leaving only additions inside the
// pair loop.
//
// With Options.NetModel on, the objective additionally includes each
// group's predicted collided comm seconds. The interleaving solver is too
// expensive to run per pair, so the pair loop keeps the cheapest few
// pairs by imbalance and only those finalists pay for a solve.
func trySwap(a, b *Group, opts Options) bool {
	imbA, imbB := a.Imbalance(), b.Imbalance()
	current := math.Abs(imbA) + math.Abs(imbB)
	da := make([]float64, len(a.Jobs))    // ja's contribution at a's DoP
	daInB := make([]float64, len(a.Jobs)) // ja's contribution at b's DoP
	for i, ja := range a.Jobs {
		da[i] = ja.TcpuAt(a.Machines) - ja.Net
		daInB[i] = ja.TcpuAt(b.Machines) - ja.Net
	}
	db := make([]float64, len(b.Jobs))
	dbInA := make([]float64, len(b.Jobs))
	for j, jb := range b.Jobs {
		db[j] = jb.TcpuAt(b.Machines) - jb.Net
		dbInA[j] = jb.TcpuAt(a.Machines) - jb.Net
	}
	pairCost := func(i, j int) float64 {
		// Swapping moves ja's contribution out of a and jb's in,
		// evaluated at each group's own DoP.
		newA := imbA - da[i] + dbInA[j]
		newB := imbB - db[j] + daInB[i]
		return math.Abs(newA) + math.Abs(newB)
	}
	if opts.NetModel {
		return trySwapNetModel(a, b, current, pairCost)
	}
	bestI, bestJ, bestCost := -1, -1, current
	for i := range a.Jobs {
		for j := range b.Jobs {
			if cost := pairCost(i, j); cost < bestCost-1e-12 {
				bestCost = cost
				bestI, bestJ = i, j
			}
		}
	}
	if bestI < 0 {
		return false
	}
	a.Jobs[bestI], b.Jobs[bestJ] = b.Jobs[bestJ], a.Jobs[bestI]
	return true
}

// swapFinalists bounds the number of candidate pairs that pay for an
// interleave solve per trySwap call under the net model.
const swapFinalists = 8

// trySwapNetModel is trySwap's net-model objective: combined imbalance
// plus both groups' predicted collided comm seconds. The best
// swapFinalists pairs by imbalance (deterministic ties: lower i, then j)
// are re-scored with the solver; the swap applies only on strict
// improvement over the current configuration's full cost.
func trySwapNetModel(a, b *Group, currentImb float64, pairCost func(i, j int) float64) bool {
	type cand struct {
		i, j int
		imb  float64
	}
	finalists := make([]cand, 0, swapFinalists+1)
	for i := range a.Jobs {
		for j := range b.Jobs {
			c := cand{i, j, pairCost(i, j)}
			at := len(finalists)
			for at > 0 && finalists[at-1].imb > c.imb+1e-12 {
				at--
			}
			if at < swapFinalists {
				finalists = append(finalists, cand{})
				copy(finalists[at+1:], finalists[at:])
				finalists[at] = c
				if len(finalists) > swapFinalists {
					finalists = finalists[:swapFinalists]
				}
			}
		}
	}
	current := currentImb + collisionSeconds(a.Jobs, a.Machines) + collisionSeconds(b.Jobs, b.Machines)
	ja := make([]JobInfo, len(a.Jobs))
	jb := make([]JobInfo, len(b.Jobs))
	bestI, bestJ, bestCost := -1, -1, current
	for _, c := range finalists {
		copy(ja, a.Jobs)
		copy(jb, b.Jobs)
		ja[c.i], jb[c.j] = jb[c.j], ja[c.i]
		cost := c.imb + collisionSeconds(ja, a.Machines) + collisionSeconds(jb, b.Machines)
		if cost < bestCost-1e-12 {
			bestCost = cost
			bestI, bestJ = c.i, c.j
		}
	}
	if bestI < 0 {
		return false
	}
	a.Jobs[bestI], b.Jobs[bestJ] = b.Jobs[bestJ], a.Jobs[bestI]
	return true
}

// allocateMachines is the machine-distribution step of §IV-B3: every
// group gets one machine, then the remaining machines go one at a time to
// the group whose iteration time shrinks the most from one more machine
// (the most computation-bound group, per Eq. 1 and Eq. 2). A max-heap on
// the marginal gain keeps the water-filling loop near O(M log G).
func allocateMachines(groups []Group, machines int) {
	if len(groups) == 0 {
		return
	}
	gain := func(i int) float64 {
		g := groups[i]
		now := g.IterSeconds()
		g.Machines++
		return (now - g.IterSeconds()) / math.Max(now, 1e-12)
	}
	for i := range groups {
		groups[i].Machines = 1
	}
	// heap of (gain, group index); lazy re-evaluation on pop.
	type entry struct {
		gain float64
		idx  int
	}
	h := make([]entry, len(groups))
	for i := range groups {
		h[i] = entry{gain(i), i}
	}
	less := func(a, b entry) bool { return a.gain > b.gain } // max-heap
	var down func(i int)
	down = func(i int) {
		for {
			l, r := 2*i+1, 2*i+2
			big := i
			if l < len(h) && less(h[l], h[big]) {
				big = l
			}
			if r < len(h) && less(h[r], h[big]) {
				big = r
			}
			if big == i {
				return
			}
			h[i], h[big] = h[big], h[i]
			i = big
		}
	}
	for i := len(h)/2 - 1; i >= 0; i-- {
		down(i)
	}
	for spare := machines - len(groups); spare > 0; {
		top := h[0]
		fresh := gain(top.idx)
		if fresh < top.gain-1e-12 {
			// Stale: re-key and sift.
			h[0].gain = fresh
			down(0)
			continue
		}
		if fresh <= 1e-12 {
			// No group benefits (all network- or job-bound); spread the
			// rest round-robin so machines are not stranded.
			for i := 0; spare > 0; i, spare = (i+1)%len(groups), spare-1 {
				groups[i].Machines++
			}
			return
		}
		groups[top.idx].Machines++
		spare--
		h[0].gain = gain(top.idx)
		down(0)
	}
}

// widenForMemory retries the grouping with more, smaller groups until the
// memory constraint is satisfied; it returns nil when even one job per
// group does not fit. With Options.Parallelism > 1, batches of group
// counts are tried concurrently and the lowest feasible count wins — the
// same count the sequential scan would return first.
func widenForMemory(jobs []JobInfo, machines int, opts Options) []Group {
	maxG := len(jobs)
	if machines < maxG {
		maxG = machines
	}
	startG := bestGroupCount(jobs, machines, opts) + 1
	if opts.Parallelism <= 1 {
		for nG := startG; nG <= maxG; nG++ {
			if groups := widenAttempt(jobs, nG, machines, opts); groups != nil {
				return groups
			}
		}
		return nil
	}
	batch := opts.Parallelism * 2
	attempts := make([][]Group, batch)
	for lo := startG; lo <= maxG; lo += batch {
		count := maxG - lo + 1
		if count > batch {
			count = batch
		}
		window := attempts[:count]
		parallel.Run(count, opts.Parallelism, func(i int) {
			window[i] = widenAttempt(jobs, lo+i, machines, opts)
		})
		for _, groups := range window {
			if groups != nil {
				return groups
			}
		}
	}
	return nil
}

// widenAttempt builds the grouping at one candidate group count and
// reports it if memory-feasible.
func widenAttempt(jobs []JobInfo, nG, machines int, opts Options) []Group {
	groups := assignJobs(jobs, nG, machines, opts)
	if !opts.DisableSwapTuning {
		fineTune(groups, opts)
	}
	allocateMachines(groups, machines)
	if opts.feasible(Plan{Groups: groups}) {
		return groups
	}
	return nil
}
