package core

import (
	"math/rand"
	"testing"
)

func TestTryAddJobImproves(t *testing.T) {
	// A CPU-bound group leaves network idle; adding a network-heavy job
	// must be accepted and raise the score.
	plan := Plan{Groups: []Group{
		{Machines: 8, Jobs: []JobInfo{job("cpu", 1600, 10)}},
	}}
	opts := Options{}
	newJob := job("net", 80, 150)
	got, ok := TryAddJob(plan, newJob, opts)
	if !ok {
		t.Fatal("TryAddJob rejected a complementary job")
	}
	if got.NumJobs() != 2 {
		t.Errorf("new plan has %d jobs, want 2", got.NumJobs())
	}
	if opts.Score(got) <= opts.Score(plan) {
		t.Error("accepted addition did not improve score")
	}
	// Original plan untouched.
	if plan.NumJobs() != 1 {
		t.Error("TryAddJob mutated the input plan")
	}
}

func TestTryAddJobRejectsWhenNoImprovement(t *testing.T) {
	// A perfectly balanced group: adding a CPU-heavy job makes it
	// CPU-bound and lowers weighted utilization.
	plan := Plan{Groups: []Group{
		{Machines: 8, Jobs: []JobInfo{job("a", 800, 100), job("b", 800, 100)}},
	}}
	_, ok := TryAddJob(plan, job("cpu", 4000, 1), Options{})
	if ok {
		t.Error("TryAddJob accepted a job that lowers utilization")
	}
}

func TestTryAddJobEmptyPlan(t *testing.T) {
	if _, ok := TryAddJob(Plan{}, job("a", 1, 1), Options{}); ok {
		t.Error("TryAddJob on empty plan accepted a job")
	}
}

func TestTryAddJobRespectsMemory(t *testing.T) {
	plan := Plan{Groups: []Group{
		{Machines: 4, Jobs: []JobInfo{job("cpu", 800, 10)}},
	}}
	big := job("net", 40, 150)
	big.WorkGB = 100 // cannot fit anywhere
	if _, ok := TryAddJob(plan, big, Options{MemoryCapGB: 32}); ok {
		t.Error("TryAddJob placed a job that exceeds group memory")
	}
}

func TestFindReplacementSingle(t *testing.T) {
	finished := job("f", 1600, 100) // at DoP 16: iter 200, ratio 0.5
	waiting := []JobInfo{
		job("w0", 5000, 10),  // very different
		job("w1", 1632, 98),  // iter 200, ratio ~0.51: similar
		job("w2", 1600, 100), // identical (after w1 in list)
	}
	idxs, ok := FindReplacement(finished, 16, waiting)
	if !ok {
		t.Fatal("no replacement found")
	}
	if len(idxs) != 1 || idxs[0] != 1 {
		t.Errorf("replacement = %v, want first similar job [1]", idxs)
	}
}

func TestFindReplacementBundle(t *testing.T) {
	finished := job("f", 1600, 100) // iter 200 at DoP 16, ratio 0.5
	// No single job is similar, but two halves sum to it.
	waiting := []JobInfo{
		job("half1", 800, 50), // iter 100, ratio 0.5
		job("half2", 800, 50),
		job("noise", 6000, 5),
	}
	idxs, ok := FindReplacement(finished, 16, waiting)
	if !ok {
		t.Fatal("no bundle replacement found")
	}
	if len(idxs) != 2 {
		t.Fatalf("bundle size %d, want 2: %v", len(idxs), idxs)
	}
	seen := map[int]bool{}
	for _, i := range idxs {
		seen[i] = true
	}
	if !seen[0] || !seen[1] {
		t.Errorf("bundle picked %v, want the two halves", idxs)
	}
}

func TestFindReplacementNone(t *testing.T) {
	finished := job("f", 1600, 100)
	waiting := []JobInfo{job("w", 50, 5)}
	if _, ok := FindReplacement(finished, 16, waiting); ok {
		t.Error("found a replacement among dissimilar jobs")
	}
	if _, ok := FindReplacement(finished, 16, nil); ok {
		t.Error("found a replacement in empty waiting list")
	}
	if _, ok := FindReplacement(JobInfo{}, 16, waiting); ok {
		t.Error("zero finished job should not match")
	}
}

func TestRegroupAfterFinishRepairs(t *testing.T) {
	plan := Plan{Groups: []Group{
		{Machines: 16, Jobs: []JobInfo{job("stay", 1600, 100), job("done", 800, 50)}},
		{Machines: 16, Jobs: []JobInfo{job("other", 1600, 100)}},
	}}
	waiting := []JobInfo{job("sub", 808, 50)} // similar to "done" at DoP 16
	res := RegroupAfterFinish(plan, "done", waiting, Options{})
	if !res.Changed {
		t.Fatal("repair regroup reported Changed=false")
	}
	if len(res.AddedJobs) != 1 || res.AddedJobs[0] != "sub" {
		t.Errorf("AddedJobs = %v, want [sub]", res.AddedJobs)
	}
	gi, ok := res.Plan.FindJob("sub")
	if !ok || gi != 0 {
		t.Errorf("substitute placed in group %d (found %v), want 0", gi, ok)
	}
	if _, ok := res.Plan.FindJob("done"); ok {
		t.Error("finished job still in plan")
	}
	if res.InvolvedGroups != 0 {
		t.Errorf("InvolvedGroups = %d for a pure repair, want 0", res.InvolvedGroups)
	}
}

func TestRegroupAfterFinishUnknownJob(t *testing.T) {
	plan := Plan{Groups: []Group{{Machines: 4, Jobs: []JobInfo{job("a", 1, 1)}}}}
	res := RegroupAfterFinish(plan, "ghost", nil, Options{})
	if res.Changed {
		t.Error("regroup for unknown job reported a change")
	}
	if res.Plan.NumJobs() != 1 {
		t.Error("regroup for unknown job altered the plan")
	}
}

func TestRegroupAfterFinishDropsEmptyGroup(t *testing.T) {
	plan := Plan{Groups: []Group{
		{Machines: 4, Jobs: []JobInfo{job("solo", 100, 10)}},
		{Machines: 4, Jobs: []JobInfo{job("other", 100, 10)}},
	}}
	res := RegroupAfterFinish(plan, "solo", nil, Options{})
	if len(res.Plan.Groups) != 1 {
		t.Errorf("plan has %d groups after sole job finished, want 1", len(res.Plan.Groups))
	}
}

func TestRegroupAfterFinishEscalates(t *testing.T) {
	// No similar waiting job; the finished job leaves its group strongly
	// imbalanced, so escalation should reshuffle and pull in the waiting
	// network-heavy job.
	plan := Plan{Groups: []Group{
		{Machines: 16, Jobs: []JobInfo{job("cpu1", 3200, 20), job("done", 160, 300)}},
		{Machines: 16, Jobs: []JobInfo{job("cpu2", 3200, 20), job("net2", 160, 300)}},
	}}
	waiting := []JobInfo{job("fresh", 800, 150)} // not similar to done
	opts := Options{}
	res := RegroupAfterFinish(plan, "done", waiting, opts)
	if _, ok := res.Plan.FindJob("done"); ok {
		t.Fatal("finished job still present")
	}
	// Either the regroup was judged not worth it (plan shrunk only) or a
	// changed plan must strictly improve the score.
	shrunk := plan.Clone()
	shrunk.Groups[0].Jobs = shrunk.Groups[0].Jobs[:1]
	if res.Changed {
		if opts.Score(res.Plan) < opts.Score(shrunk)*(1+opts.withDefaults().MinImprovement) {
			t.Errorf("escalated regroup did not clear the 5%% threshold: %.3f vs %.3f",
				opts.Score(res.Plan), opts.Score(shrunk))
		}
	}
	// All surviving jobs placed exactly once.
	seen := map[string]int{}
	for _, id := range res.Plan.JobIDs() {
		seen[id]++
	}
	for id, n := range seen {
		if n != 1 {
			t.Errorf("job %s appears %d times after regroup", id, n)
		}
	}
}

func TestRegroupMachineConservation(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	jobs := randomJobs(rng, 10)
	plan := Schedule(jobs, 30, Options{})
	if len(plan.Groups) == 0 {
		t.Skip("scheduler placed nothing")
	}
	total := plan.TotalMachines()
	finished := plan.Groups[0].Jobs[0].ID
	res := RegroupAfterFinish(plan, finished, randomJobs(rng, 3), Options{})
	if got := res.Plan.TotalMachines(); got > total {
		t.Errorf("regroup grew machines %d -> %d", total, got)
	}
}
