package core

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"
)

// benchJobs mirrors the synthetic workload internal/exp/scale.go uses for
// the §V-F scalability experiment.
func benchJobs(n int) []JobInfo {
	rng := rand.New(rand.NewSource(42))
	jobs := make([]JobInfo, n)
	for i := range jobs {
		jobs[i] = JobInfo{
			ID:   fmt.Sprintf("j%04d", i),
			Comp: 500 + rng.Float64()*10000,
			Net:  30 + rng.Float64()*400,
		}
	}
	return jobs
}

// BenchmarkScheduleLarge measures the Algorithm 1 search over 1K jobs on
// 1K machines, sequentially and at full parallelism. On a multi-core
// runner the parallel variant should scale with the core count; on one
// core both take the identical single-threaded path.
func BenchmarkScheduleLarge(b *testing.B) {
	jobs := benchJobs(1000)
	const machines = 1000
	b.Run("sequential", func(b *testing.B) {
		benchSchedule(b, jobs, machines, 1)
	})
	b.Run(fmt.Sprintf("parallel-%d", runtime.GOMAXPROCS(0)), func(b *testing.B) {
		benchSchedule(b, jobs, machines, runtime.GOMAXPROCS(0))
	})
}

func benchSchedule(b *testing.B, jobs []JobInfo, machines, par int) {
	opts := Options{Parallelism: par}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Schedule(jobs, machines, opts)
	}
}
