package core

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"testing"
)

// randomJob draws a job with the profile shapes the workload inventory
// (Table I) spans: compute-heavy, comm-heavy and balanced, occasionally
// with memory parameters and a serial floor so the cap checks and the
// Synergy-style model both see coverage.
func randomJob(rng *rand.Rand, id int) JobInfo {
	j := JobInfo{
		ID:   fmt.Sprintf("j%04d", id),
		Comp: 0.5 + 40*rng.Float64(),
		Net:  0.05 + 4*rng.Float64(),
	}
	if rng.Intn(3) == 0 {
		j.CompFloor = 0.2 * rng.Float64()
	}
	if rng.Intn(2) == 0 {
		j.ModelGB = 4 * rng.Float64()
		j.WorkGB = 2 * rng.Float64()
		j.JVMHeapFactor = 1 + rng.Float64()
	}
	if rng.Intn(3) == 0 {
		j.PullFrac = 0.2 + 0.6*rng.Float64()
	}
	return j
}

func randomOpts(rng *rand.Rand, netModel bool) Options {
	opts := Options{NetModel: netModel, Parallelism: 1}
	if rng.Intn(2) == 0 {
		opts.MemoryCapGB = 8 + 24*rng.Float64()
	}
	if rng.Intn(3) == 0 {
		opts.MaxJobsPerGroup = 2 + rng.Intn(4)
	}
	return opts
}

// TestScorerMatchesFullScore pins the Scorer's base score and every
// per-group ScoreDelta against the clone-and-rescore path, bitwise.
func TestScorerMatchesFullScore(t *testing.T) {
	for _, netModel := range []bool{false, true} {
		t.Run(fmt.Sprintf("netModel=%v", netModel), func(t *testing.T) {
			rng := rand.New(rand.NewSource(7))
			for trial := 0; trial < 40; trial++ {
				opts := randomOpts(rng, netModel)
				jobs := make([]JobInfo, 3+rng.Intn(10))
				for i := range jobs {
					jobs[i] = randomJob(rng, trial*100+i)
				}
				plan := Schedule(jobs, 4+rng.Intn(29), opts)
				if len(plan.Groups) == 0 {
					continue
				}
				sc := NewScorer(plan, opts)
				if got, want := sc.Score(), opts.Score(plan); got != want {
					t.Fatalf("trial %d: Scorer.Score = %v, full Score = %v", trial, got, want)
				}
				arrival := randomJob(rng, trial*100+99)
				for gi := range plan.Groups {
					cand := plan.Clone()
					cand.Groups[gi].Jobs = append(cand.Groups[gi].Jobs, arrival)
					wantFeasible := opts.withDefaults().feasible(cand)
					gotScore, pred, gotFeasible := sc.ScoreDelta(arrival, gi)
					if gotFeasible != wantFeasible {
						t.Fatalf("trial %d gi %d: ScoreDelta feasible = %v, reference = %v",
							trial, gi, gotFeasible, wantFeasible)
					}
					if !wantFeasible {
						continue
					}
					if want := opts.Score(cand); gotScore != want {
						t.Fatalf("trial %d gi %d: ScoreDelta = %v, clone-and-rescore = %v (diff %g)",
							trial, gi, gotScore, want, gotScore-want)
					}
					g := cand.Groups[gi]
					if pred.IterSeconds != g.IterSeconds() {
						t.Fatalf("trial %d gi %d: predicted iter %v, group iter %v",
							trial, gi, pred.IterSeconds, g.IterSeconds())
					}
					uc, un := g.Util()
					if pred.CPUUtil != uc || pred.NetUtil != un {
						t.Fatalf("trial %d gi %d: predicted util (%v,%v), group util (%v,%v)",
							trial, gi, pred.CPUUtil, pred.NetUtil, uc, un)
					}
					if netModel && pred.Compatibility != GroupCompatibility(g) {
						t.Fatalf("trial %d gi %d: predicted compat %v, group compat %v",
							trial, gi, pred.Compatibility, GroupCompatibility(g))
					}
				}
			}
		})
	}
}

// TestIncrementalAdmissionBitIdentical drives randomized job streams —
// arrivals, completions, cancels, preemptions — through the incremental
// §IV-B4 rules and the retained clone-and-rescore references in
// lock-step, asserting every decision (chosen plan, flags, added jobs) is
// bit-identical, with the NetModel both off and on.
func TestIncrementalAdmissionBitIdentical(t *testing.T) {
	for _, netModel := range []bool{false, true} {
		t.Run(fmt.Sprintf("netModel=%v", netModel), func(t *testing.T) {
			rng := rand.New(rand.NewSource(42))
			trials := 12
			steps := 40
			if netModel {
				// Interleave solves make reference scoring expensive.
				trials, steps = 6, 25
			}
			for trial := 0; trial < trials; trial++ {
				opts := randomOpts(rng, netModel)
				seed := make([]JobInfo, 4+rng.Intn(8))
				for i := range seed {
					seed[i] = randomJob(rng, trial*1000+i)
				}
				plan := Schedule(seed, 8+rng.Intn(25), opts)
				var waiting []JobInfo
				nextID := trial*1000 + 100
				for step := 0; step < steps; step++ {
					switch op := rng.Intn(4); {
					case op == 0 || plan.NumJobs() == 0: // arrival
						job := randomJob(rng, nextID)
						nextID++
						got, gotOK := TryAddJob(plan, job, opts)
						want, wantOK := TryAddJobReference(plan, job, opts)
						if gotOK != wantOK || !reflect.DeepEqual(got, want) {
							t.Fatalf("trial %d step %d: TryAddJob diverged: ok %v/%v\n got: %v\nwant: %v",
								trial, step, gotOK, wantOK, got, want)
						}
						if gotOK {
							plan = got
						} else {
							waiting = append(waiting, job)
						}
					case op == 1: // completion triggers the regroup rule
						id := randomPlacedJob(rng, plan)
						got := RegroupAfterFinish(plan, id, waiting, opts)
						want := RegroupAfterFinishReference(plan, id, waiting, opts)
						if !reflect.DeepEqual(got, want) {
							t.Fatalf("trial %d step %d: RegroupAfterFinish(%s) diverged\n got: %+v\nwant: %+v",
								trial, step, id, got, want)
						}
						plan = got.Plan
						waiting = removeWaiting(waiting, got.AddedJobs)
					case op == 2: // cancel: the job vanishes without regrouping
						id := randomPlacedJob(rng, plan)
						gi, _ := plan.FindJob(id)
						plan = plan.Clone()
						plan.Groups[gi].Jobs = removeJob(plan.Groups[gi].Jobs, id)
						if len(plan.Groups[gi].Jobs) == 0 {
							plan.Groups = append(plan.Groups[:gi], plan.Groups[gi+1:]...)
						}
					default: // preemption: back to the waiting pool
						id := randomPlacedJob(rng, plan)
						gi, _ := plan.FindJob(id)
						preempted := jobByID(plan.Groups[gi].Jobs, id)
						plan = plan.Clone()
						plan.Groups[gi].Jobs = removeJob(plan.Groups[gi].Jobs, id)
						if len(plan.Groups[gi].Jobs) == 0 {
							plan.Groups = append(plan.Groups[:gi], plan.Groups[gi+1:]...)
						}
						waiting = append(waiting, preempted)
					}
					if len(waiting) > 6 {
						waiting = waiting[len(waiting)-6:]
					}
				}
			}
		})
	}
}

func randomPlacedJob(rng *rand.Rand, plan Plan) string {
	ids := plan.JobIDs()
	return ids[rng.Intn(len(ids))]
}

func removeWaiting(waiting []JobInfo, added []string) []JobInfo {
	if len(added) == 0 {
		return waiting
	}
	drop := make(map[string]bool, len(added))
	for _, id := range added {
		drop[id] = true
	}
	out := waiting[:0]
	for _, w := range waiting {
		if !drop[w.ID] {
			out = append(out, w)
		}
	}
	return out
}

// TestScoreDeltaAllocFree pins the fast path's zero-allocation property
// without the NetModel (with it, one interleave solve per candidate
// allocates its offset slice).
func TestScoreDeltaAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	jobs := make([]JobInfo, 12)
	for i := range jobs {
		jobs[i] = randomJob(rng, i)
	}
	opts := Options{Parallelism: 1}
	plan := Schedule(jobs, 24, opts)
	if len(plan.Groups) < 2 {
		t.Fatalf("want a multi-group plan, got %v", plan)
	}
	sc := NewScorer(plan, opts)
	arrival := randomJob(rng, 99)
	allocs := testing.AllocsPerRun(100, func() {
		if _, _, ok := sc.BestAddition(arrival); !ok {
			_ = math.Abs(0) // keep the call from being elided
		}
	})
	if allocs != 0 {
		t.Fatalf("BestAddition allocates %v objects per run, want 0", allocs)
	}
}
