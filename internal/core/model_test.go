package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func job(id string, comp, net float64) JobInfo {
	return JobInfo{ID: id, Comp: comp, Net: net}
}

func TestJobInfoPredictions(t *testing.T) {
	j := job("a", 160, 10)
	if got := j.TcpuAt(16); got != 10 {
		t.Errorf("TcpuAt(16) = %v, want 10", got)
	}
	if got := j.TcpuAt(0); got != 160 {
		t.Errorf("TcpuAt(0) = %v, want clamp to DoP 1", got)
	}
	if got := j.IterAt(16); got != 20 {
		t.Errorf("IterAt(16) = %v, want 20", got)
	}
	if got := j.CompRatioAt(16); got != 0.5 {
		t.Errorf("CompRatioAt(16) = %v, want 0.5", got)
	}
	if got := (JobInfo{}).CompRatioAt(4); got != 0 {
		t.Errorf("zero job ratio = %v, want 0", got)
	}
}

func TestMinMemoryGB(t *testing.T) {
	j := JobInfo{ID: "a", ModelGB: 8, WorkGB: 1, JVMHeapFactor: 2}
	if got := j.MinMemoryGB(4); got != 2*8.0/4+1 {
		t.Errorf("MinMemoryGB(4) = %v, want 5", got)
	}
	noHeap := JobInfo{ID: "b", ModelGB: 8, WorkGB: 1}
	if got := noHeap.MinMemoryGB(4); got != 3 {
		t.Errorf("MinMemoryGB without heap factor = %v, want 3", got)
	}
}

// TestEq1Cases reproduces the three regimes of Eq. 1 and Fig. 8.
func TestEq1Cases(t *testing.T) {
	tests := []struct {
		name string
		g    Group
		want float64
	}{
		{
			name: "cpu-bound",
			g: Group{Machines: 10, Jobs: []JobInfo{
				job("a", 1000, 10), job("b", 1000, 10), job("c", 1000, 10),
			}},
			want: 300, // ΣTcpu = 3*100 > ΣTnet = 30 > max iter 110
		},
		{
			name: "network-bound (Fig 8a)",
			g: Group{Machines: 10, Jobs: []JobInfo{
				job("a", 100, 50), job("b", 100, 50), job("c", 100, 50),
			}},
			want: 150, // ΣTnet = 150 > ΣTcpu = 30, max iter 60
		},
		{
			name: "job-bound (Fig 8b)",
			g: Group{Machines: 10, Jobs: []JobInfo{
				job("big", 1000, 100), job("small", 10, 1),
			}},
			want: 200, // big's own iteration 100+100 exceeds ΣTcpu=101, ΣTnet=101
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.g.IterSeconds(); math.Abs(got-tt.want) > 1e-9 {
				t.Errorf("IterSeconds() = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestEq3Utilization(t *testing.T) {
	// CPU-bound group: CPU utilization is exactly 1 (§IV-B2).
	g := Group{Machines: 4, Jobs: []JobInfo{job("a", 400, 10), job("b", 400, 10)}}
	uc, un := g.Util()
	if uc != 1 {
		t.Errorf("cpu-bound group Ucpu = %v, want 1", uc)
	}
	if want := 20.0 / 200.0; math.Abs(un-want) > 1e-9 {
		t.Errorf("Unet = %v, want %v", un, want)
	}
	// Job-bound group: both below 1.
	jb := Group{Machines: 10, Jobs: []JobInfo{job("big", 1000, 100), job("small", 10, 1)}}
	uc, un = jb.Util()
	if uc >= 1 || un >= 1 {
		t.Errorf("job-bound group util = (%v, %v), want both < 1", uc, un)
	}
	if uc, un := (Group{}).Util(); uc != 0 || un != 0 {
		t.Error("empty group util should be zero")
	}
}

// TestUtilInUnitInterval checks the Eq. 3 invariant by property: both
// utilization components always land in [0, 1].
func TestUtilInUnitInterval(t *testing.T) {
	f := func(comps, nets [4]uint16, m uint8) bool {
		g := Group{Machines: int(m%32) + 1}
		for i := 0; i < 4; i++ {
			g.Jobs = append(g.Jobs, job("j", float64(comps[i])+0.5, float64(nets[i])+0.5))
		}
		uc, un := g.Util()
		return uc >= 0 && uc <= 1+1e-12 && un >= 0 && un <= 1+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEq4ClusterUtil(t *testing.T) {
	// Two groups with different utilizations, weighted by machines.
	g1 := Group{Machines: 3, Jobs: []JobInfo{job("a", 300, 100)}} // Tcpu=100=Tnet: both util 1... verify
	g2 := Group{Machines: 1, Jobs: []JobInfo{job("b", 100, 10)}}
	p := Plan{Groups: []Group{g1, g2}}
	uc1, un1 := g1.Util()
	uc2, un2 := g2.Util()
	wantC := (3*uc1 + 1*uc2) / 4
	wantN := (3*un1 + 1*un2) / 4
	uc, un := p.Util()
	if math.Abs(uc-wantC) > 1e-9 || math.Abs(un-wantN) > 1e-9 {
		t.Errorf("Plan.Util() = (%v, %v), want (%v, %v)", uc, un, wantC, wantN)
	}
	if uc, un := (Plan{}).Util(); uc != 0 || un != 0 {
		t.Error("empty plan util should be zero")
	}
}

func TestPlanHelpers(t *testing.T) {
	p := Plan{Groups: []Group{
		{Machines: 2, Jobs: []JobInfo{job("a", 1, 1), job("b", 1, 1)}},
		{Machines: 3, Jobs: []JobInfo{job("c", 1, 1)}},
	}}
	if got := p.TotalMachines(); got != 5 {
		t.Errorf("TotalMachines = %d, want 5", got)
	}
	if got := p.NumJobs(); got != 3 {
		t.Errorf("NumJobs = %d, want 3", got)
	}
	if gi, ok := p.FindJob("c"); !ok || gi != 1 {
		t.Errorf("FindJob(c) = (%d, %v), want (1, true)", gi, ok)
	}
	if _, ok := p.FindJob("zz"); ok {
		t.Error("FindJob(zz) found a phantom job")
	}
	ids := p.JobIDs()
	if len(ids) != 3 || ids[0] != "a" || ids[2] != "c" {
		t.Errorf("JobIDs = %v", ids)
	}
	clone := p.Clone()
	clone.Groups[0].Jobs[0].ID = "mutated"
	if p.Groups[0].Jobs[0].ID != "a" {
		t.Error("Clone shares job storage with the original")
	}
	if p.String() == "" || p.Groups[0].String() == "" {
		t.Error("String() should be non-empty")
	}
}

func randomJobs(rng *rand.Rand, n int) []JobInfo {
	jobs := make([]JobInfo, n)
	for i := range jobs {
		jobs[i] = JobInfo{
			ID:   string(rune('a'+i%26)) + string(rune('0'+i/26)),
			Comp: 100 + rng.Float64()*5000,
			Net:  5 + rng.Float64()*300,
		}
	}
	return jobs
}
