package core

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

// TestScheduleParallelMatchesSequential is the determinism contract of the
// concurrent search: any Parallelism setting must produce the exact plan
// the single-threaded path produces.
func TestScheduleParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(120)
		machines := 1 + rng.Intn(200)
		jobs := randomJobs(rng, n)
		opts := Options{Parallelism: 1}
		if trial%3 == 0 {
			opts.MemoryCapGB = 10 + rng.Float64()*20
			for i := range jobs {
				jobs[i].InputGB = rng.Float64() * 8
				jobs[i].ModelGB = rng.Float64() * 2
				jobs[i].WorkGB = rng.Float64()
			}
		}
		if trial%4 == 0 {
			opts.MaxJobsPerGroup = 1 + rng.Intn(5)
		}
		want := Schedule(jobs, machines, opts).String()
		for _, par := range []int{2, 4, 8} {
			opts.Parallelism = par
			got := Schedule(jobs, machines, opts).String()
			if got != want {
				t.Fatalf("trial %d (n=%d machines=%d): Parallelism=%d diverged from sequential\nseq: %s\npar: %s",
					trial, n, machines, par, want, got)
			}
		}
	}
}

// TestScheduleParallelMatchesSequentialNetModel extends the determinism
// contract to the net-aware scheduler: the collision-cost window pick,
// the finalist-based swap re-scoring, and the compatibility score term
// must all be independent of Options.Parallelism.
func TestScheduleParallelMatchesSequentialNetModel(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	// Smaller instances than the base test: the collision solver makes
	// each evalPrefix meaningfully heavier, and the property is about
	// determinism, not scale.
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(80)
		machines := 1 + rng.Intn(160)
		jobs := randomJobs(rng, n)
		for i := range jobs {
			jobs[i].PullFrac = rng.Float64()
			if trial%2 == 0 {
				jobs[i].CompFloor = rng.Float64() * 2
			}
		}
		opts := Options{Parallelism: 1, NetModel: true}
		if trial%4 == 0 {
			opts.MaxJobsPerGroup = 1 + rng.Intn(5)
		}
		want := Schedule(jobs, machines, opts).String()
		for _, par := range []int{2, 4, 8} {
			opts.Parallelism = par
			got := Schedule(jobs, machines, opts).String()
			if got != want {
				t.Fatalf("trial %d (n=%d machines=%d): NetModel Parallelism=%d diverged\nseq: %s\npar: %s",
					trial, n, machines, par, want, got)
			}
		}
	}
}

// TestBestGroupCountTernaryMatchesLinear checks the ternary search used
// for maxG > 64 against an exhaustive scan. Plateaus in the cost curve can
// make the two pick different-but-equally-good counts, so the property
// compared is the achieved cost, not the index.
func TestBestGroupCountTernaryMatchesLinear(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	costAt := func(jobs []JobInfo, machines, nG int, opts Options) float64 {
		if opts.MaxJobsPerGroup > 0 && (len(jobs)+nG-1)/nG > opts.MaxJobsPerGroup {
			return math.Inf(1)
		}
		m := machines / nG
		var c float64
		for _, j := range jobs {
			c += math.Abs(j.TcpuAt(m) - j.Net)
		}
		return c
	}
	for trial := 0; trial < 50; trial++ {
		n := 65 + rng.Intn(400) // force the ternary branch (maxG > 64)
		machines := n + rng.Intn(4*n)
		jobs := randomJobs(rng, n)
		var opts Options
		if trial%5 == 0 {
			opts.MaxJobsPerGroup = 2 + rng.Intn(6)
		}
		got := bestGroupCount(jobs, machines, opts)
		maxG := n
		if machines < maxG {
			maxG = machines
		}
		bestCost := math.Inf(1)
		for nG := 1; nG <= maxG; nG++ {
			if c := costAt(jobs, machines, nG, opts); c < bestCost {
				bestCost = c
			}
		}
		gotCost := costAt(jobs, machines, got, opts)
		if gotCost > bestCost*(1+1e-9)+1e-9 {
			t.Fatalf("trial %d (n=%d machines=%d): ternary picked nG=%d cost=%g, exhaustive min=%g",
				trial, n, machines, got, gotCost, bestCost)
		}
	}
}

// TestAllocateMachinesStaleGainsTerminate is a regression test for the
// lazy max-heap: when every queued gain is stale (all groups network- or
// job-bound, so extra machines never help), the re-evaluation loop must
// fall through to the round-robin spread rather than spin.
func TestAllocateMachinesStaleGainsTerminate(t *testing.T) {
	// Pure network-bound jobs: Comp = 0, so IterSeconds never shrinks with
	// more machines and every marginal gain is exactly zero.
	groups := []Group{
		{Jobs: []JobInfo{job("a", 0, 50)}},
		{Jobs: []JobInfo{job("b", 0, 80)}},
		{Jobs: []JobInfo{job("c", 0, 20)}},
	}
	const machines = 17
	done := make(chan struct{})
	go func() {
		allocateMachines(groups, machines)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("allocateMachines did not terminate with all-stale gains")
	}
	total := 0
	for i, g := range groups {
		if g.Machines < 1 {
			t.Errorf("group %d got %d machines, want >= 1", i, g.Machines)
		}
		total += g.Machines
	}
	if total != machines {
		t.Errorf("allocated %d machines, want all %d", total, machines)
	}
}
