// Package ctl is the live master's control plane: an HTTP/JSON API for
// online job submission through the §IV-B4 admission queue, job and
// cluster status, cancellation, and observability (/healthz and a
// Prometheus-text /metrics). It is stdlib-only and mounted next to the
// master's worker-facing RPC endpoint.
//
// API surface (see DESIGN.md §7):
//
//	POST   /v1/jobs          submit a job (admitted or held pending)
//	GET    /v1/jobs          list jobs
//	GET    /v1/jobs/{name}   one job's status
//	DELETE /v1/jobs/{name}   cancel a pending or running job
//	GET    /v1/cluster       workers, groups, queue
//	GET    /v1/queues        fair-scheduler queues: shares, usage, depth
//	GET    /v1/events        scheduler decision journal (?since=, ?kind=)
//	GET    /v1/snapshot      versioned capture of the master's full state
//	POST   /v1/replay        self-replay the journal, report model drift
//	GET    /v1/trace         Chrome trace-event JSON of collected spans
//	GET    /v1/ps            per-stripe parameter-server statistics
//	GET    /healthz          liveness + uptime
//	GET    /metrics          Prometheus text format
package ctl

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"regexp"
	"sync"
	"time"

	"harmony/internal/master"
	"harmony/internal/metrics"
	"harmony/internal/mlapp"
	"harmony/internal/obs"
	"harmony/internal/ps"
	"harmony/internal/replay"
)

// Backend is what the control plane needs from the live master;
// *master.Master satisfies it.
type Backend interface {
	Enqueue(spec master.JobSpec, prof master.Profile) (master.Admission, error)
	Submit(spec master.JobSpec, group []string) error
	ListJobs() []master.JobView
	Job(name string) (master.JobView, bool)
	Cancel(name string) error
	Cluster() master.ClusterView
	Counters() master.Counters
	Queues() []master.QueueView
	WorkerStats() (cpu, net float64, err error)
	CommStats() metrics.CommSnapshot
	CompStats() metrics.CompSnapshot
	EventsSince(since uint64, kind string) []master.Event
	Snapshot() (master.Snapshot, error)
	PSStats() (ps.ClusterStats, error)
	TracingEnabled() bool
	CollectSpans() []obs.TaggedSpan
	PhaseStats() (hist [obs.NumPhases]metrics.HistSnapshot, ok bool)
	MeasuredOverlap() map[string]float64
}

var _ Backend = (*master.Master)(nil)

// routes enumerated for the per-route request counter, in the order they
// appear in /metrics.
var routes = []string{
	"POST /v1/jobs",
	"GET /v1/jobs",
	"GET /v1/jobs/{name}",
	"DELETE /v1/jobs/{name}",
	"GET /v1/cluster",
	"GET /v1/queues",
	"GET /v1/events",
	"GET /v1/snapshot",
	"POST /v1/replay",
	"GET /v1/trace",
	"GET /v1/ps",
	"GET /healthz",
	"GET /metrics",
}

// Server serves the control-plane API. Create with New, mount it as an
// http.Handler or call Start to listen on an address.
type Server struct {
	b   Backend
	mux *http.ServeMux

	mu       sync.Mutex
	requests map[string]int64
	// lastReplay caches the most recent POST /v1/replay calibration
	// report; /metrics renders it as harmony_model_error_ratio gauges.
	lastReplay *replay.Report

	ln net.Listener
	hs *http.Server
}

// New builds the control plane over the backend.
func New(b Backend) *Server {
	s := &Server{
		b:        b,
		mux:      http.NewServeMux(),
		requests: make(map[string]int64, len(routes)),
	}
	s.handle("POST /v1/jobs", s.handleSubmit)
	s.handle("GET /v1/jobs", s.handleListJobs)
	s.handle("GET /v1/jobs/{name}", s.handleGetJob)
	s.handle("DELETE /v1/jobs/{name}", s.handleCancelJob)
	s.handle("GET /v1/cluster", s.handleCluster)
	s.handle("GET /v1/queues", s.handleQueues)
	s.handle("GET /v1/events", s.handleEvents)
	s.handle("GET /v1/snapshot", s.handleSnapshot)
	s.handle("POST /v1/replay", s.handleReplay)
	s.handle("GET /v1/trace", s.handleTrace)
	s.handle("GET /v1/ps", s.handlePSStats)
	s.handle("GET /healthz", s.handleHealthz)
	s.handle("GET /metrics", s.handleMetrics)
	return s
}

// EnablePprof mounts net/http/pprof's profiling handlers under
// /debug/pprof/ on the control-plane mux. Call before Start; it is
// flag-guarded in the binaries (off by default) because the profile
// endpoints expose process internals and can burn CPU on demand.
func (s *Server) EnablePprof() {
	s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
}

func (s *Server) handle(route string, h http.HandlerFunc) {
	s.mux.HandleFunc(route, func(w http.ResponseWriter, r *http.Request) {
		s.mu.Lock()
		s.requests[route]++
		s.mu.Unlock()
		h(w, r)
	})
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Start listens on addr ("127.0.0.1:0" for an ephemeral port) and serves
// the API in the background until Close.
func (s *Server) Start(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("ctl: listen %s: %w", addr, err)
	}
	s.ln = ln
	s.hs = &http.Server{Handler: s, ReadHeaderTimeout: 10 * time.Second}
	go func() { _ = s.hs.Serve(ln) }()
	return nil
}

// Addr is the listening address after Start.
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close stops the listener; in-flight requests are aborted.
func (s *Server) Close() error {
	if s.hs == nil {
		return nil
	}
	return s.hs.Close()
}

// SubmitRequest is the POST /v1/jobs body.
type SubmitRequest struct {
	Name         string  `json:"name"`
	Algorithm    string  `json:"algorithm"`
	Features     int     `json:"features,omitempty"`
	Classes      int     `json:"classes,omitempty"`
	Rows         int     `json:"rows,omitempty"`
	LearningRate float64 `json:"learning_rate,omitempty"`
	Lambda       float64 `json:"lambda,omitempty"`
	Iterations   int     `json:"iterations"`
	Alpha        float64 `json:"alpha,omitempty"`
	Seed         int64   `json:"seed,omitempty"`
	// Workers pins the job to an explicit worker group, bypassing the
	// admission queue.
	Workers []string `json:"workers,omitempty"`
	// Queue and Priority are the fair-scheduler coordinates (DESIGN.md
	// §13); an empty queue means "default".
	Queue    string `json:"queue,omitempty"`
	Priority int    `json:"priority,omitempty"`
	// MinWorkers is the gang size (the full set places atomically or the
	// job holds); MaxWorkers caps the placement (0 = no cap).
	MinWorkers int `json:"min_workers,omitempty"`
	MaxWorkers int `json:"max_workers,omitempty"`
	// Profile carries cost estimates for the §IV-B4 arrival rule; without
	// it the job can only start on an idle cluster.
	Profile *ProfileHints `json:"profile,omitempty"`
}

// ProfileHints are scheduler-unit cost estimates for an unprofiled job.
type ProfileHints struct {
	CompSeconds float64 `json:"comp_seconds,omitempty"`
	NetSeconds  float64 `json:"net_seconds,omitempty"`
	InputGB     float64 `json:"input_gb,omitempty"`
	ModelGB     float64 `json:"model_gb,omitempty"`
	WorkGB      float64 `json:"work_gb,omitempty"`
}

// SubmitResponse reports the admission outcome.
type SubmitResponse struct {
	Name  string `json:"name"`
	State string `json:"state"` // "running" or "pending"
	// Workers is the group the job was placed on when admitted.
	Workers []string `json:"workers,omitempty"`
}

// JobResponse is one job's status.
type JobResponse struct {
	Name                string   `json:"name"`
	State               string   `json:"state"`
	Iteration           int      `json:"iteration"`
	Loss                float64  `json:"loss"`
	Workers             []string `json:"workers,omitempty"`
	CompSeconds         float64  `json:"comp_seconds"`
	NetSeconds          float64  `json:"net_seconds"`
	Profiled            bool     `json:"profiled"`
	CheckpointIteration int      `json:"checkpoint_iteration"`
	Queue               string   `json:"queue,omitempty"`
	Priority            int      `json:"priority,omitempty"`
	// HoldReason and QueuePosition distinguish a held job from a stuck
	// one: why it waits (slowdown_bound, no_gang_capacity,
	// quota_exhausted, preempted) and its slot in the fair order.
	HoldReason    string `json:"hold_reason,omitempty"`
	QueuePosition int    `json:"queue_position,omitempty"`
	// Resumable marks a preempted job that will restore a checkpoint and
	// continue from ResumeIteration on re-admission.
	Resumable       bool `json:"resumable,omitempty"`
	ResumeIteration int  `json:"resume_iteration,omitempty"`
}

// QueueResponse is one queue's configuration, share, and live usage.
type QueueResponse = master.QueueView

// QueuesResponse is the GET /v1/queues body.
type QueuesResponse struct {
	Queues []QueueResponse `json:"queues"`
}

// JobListResponse is the GET /v1/jobs body.
type JobListResponse struct {
	Jobs []JobResponse `json:"jobs"`
}

// GroupResponse is one live co-location group. The interleaving fields
// are present only when the master runs the net-aware scheduler
// (DESIGN.md §14).
type GroupResponse struct {
	Workers []string `json:"workers"`
	Jobs    []string `json:"jobs"`
	// Interleaved marks a multi-job group with solved comm phases.
	Interleaved bool `json:"interleaved,omitempty"`
	// Compatibility is the group's link compatibility in [0,1],
	// calibrated against measured overlap once traces accumulate.
	Compatibility float64 `json:"compatibility,omitempty"`
	// PhasePeriodSeconds is the solved circle period; PhaseOffsets maps
	// job name to its comm-phase offset in seconds.
	PhasePeriodSeconds float64            `json:"phase_period_seconds,omitempty"`
	PhaseOffsets       map[string]float64 `json:"phase_offsets,omitempty"`
}

// ClusterResponse is the GET /v1/cluster body.
type ClusterResponse struct {
	Workers []string        `json:"workers"`
	Groups  []GroupResponse `json:"groups"`
	Pending []string        `json:"pending,omitempty"`
}

// HealthResponse is the GET /healthz body.
type HealthResponse struct {
	Status        string  `json:"status"`
	Workers       int     `json:"workers"`
	Version       string  `json:"version"`
	UptimeSeconds float64 `json:"uptime_seconds"`
}

// EventsResponse is the GET /v1/events body.
type EventsResponse struct {
	Events []master.Event `json:"events"`
}

// ErrorResponse is the envelope of every non-2xx response.
type ErrorResponse struct {
	Error ErrorInfo `json:"error"`
}

// ErrorInfo is a machine-readable error: a stable code plus a message.
type ErrorInfo struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// Error codes used in ErrorInfo.Code.
const (
	CodeInvalidRequest = "invalid_request"
	CodeNotFound       = "not_found"
	CodeConflict       = "conflict"
	CodeUnavailable    = "unavailable"
	CodeInternal       = "internal"
)

var nameRe = regexp.MustCompile(`^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$`)

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req SubmitRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, CodeInvalidRequest, "malformed JSON body: "+err.Error())
		return
	}
	if !nameRe.MatchString(req.Name) {
		writeError(w, http.StatusBadRequest, CodeInvalidRequest,
			"name must match "+nameRe.String())
		return
	}
	kind, err := mlapp.ParseKind(req.Algorithm)
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeInvalidRequest,
			fmt.Sprintf("unknown algorithm %q (want mlr, lasso, nmf or lda)", req.Algorithm))
		return
	}
	if req.Iterations <= 0 {
		writeError(w, http.StatusBadRequest, CodeInvalidRequest, "iterations must be positive")
		return
	}
	if req.Alpha < 0 || req.Alpha > 1 {
		writeError(w, http.StatusBadRequest, CodeInvalidRequest, "alpha must be in [0, 1]")
		return
	}
	if req.Features < 0 || req.Classes < 0 || req.Rows < 0 {
		writeError(w, http.StatusBadRequest, CodeInvalidRequest, "problem sizes must be non-negative")
		return
	}
	spec := master.JobSpec{
		Name: req.Name,
		Config: mlapp.Config{
			Kind: kind, Features: req.Features, Classes: req.Classes, Rows: req.Rows,
			LearningRate: req.LearningRate, Lambda: req.Lambda,
		},
		Iterations: req.Iterations,
		Alpha:      req.Alpha,
		Seed:       req.Seed,
		Queue:      req.Queue,
		Priority:   req.Priority,
		MinWorkers: req.MinWorkers,
		MaxWorkers: req.MaxWorkers,
	}
	if req.MinWorkers < 0 || req.MaxWorkers < 0 ||
		(req.MaxWorkers > 0 && req.MinWorkers > req.MaxWorkers) {
		writeError(w, http.StatusBadRequest, CodeInvalidRequest,
			"min_workers/max_workers must be non-negative with min <= max")
		return
	}
	if len(req.Workers) > 0 {
		// An explicit group is an operator override: deploy directly.
		if err := s.b.Submit(spec, req.Workers); err != nil {
			writeBackendError(w, err)
			return
		}
		writeJSON(w, http.StatusCreated, SubmitResponse{
			Name: req.Name, State: "running", Workers: req.Workers,
		})
		return
	}
	var prof master.Profile
	if req.Profile != nil {
		prof = master.Profile{
			CompSeconds: req.Profile.CompSeconds,
			NetSeconds:  req.Profile.NetSeconds,
			InputGB:     req.Profile.InputGB,
			ModelGB:     req.Profile.ModelGB,
			WorkGB:      req.Profile.WorkGB,
		}
	}
	adm, err := s.b.Enqueue(spec, prof)
	if err != nil {
		writeBackendError(w, err)
		return
	}
	if !adm.Admitted {
		writeJSON(w, http.StatusAccepted, SubmitResponse{Name: req.Name, State: "pending"})
		return
	}
	writeJSON(w, http.StatusCreated, SubmitResponse{
		Name: req.Name, State: "running", Workers: adm.Workers,
	})
}

func (s *Server) handleListJobs(w http.ResponseWriter, r *http.Request) {
	views := s.b.ListJobs()
	out := JobListResponse{Jobs: make([]JobResponse, len(views))}
	for i, v := range views {
		out.Jobs[i] = toJobResponse(v)
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleGetJob(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	v, ok := s.b.Job(name)
	if !ok {
		writeError(w, http.StatusNotFound, CodeNotFound, fmt.Sprintf("unknown job %q", name))
		return
	}
	writeJSON(w, http.StatusOK, toJobResponse(v))
}

func (s *Server) handleCancelJob(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if err := s.b.Cancel(name); err != nil {
		writeBackendError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"name": name, "state": "canceled"})
}

func (s *Server) handleCluster(w http.ResponseWriter, r *http.Request) {
	cv := s.b.Cluster()
	out := ClusterResponse{Workers: cv.Workers, Pending: cv.Pending}
	for _, g := range cv.Groups {
		out.Groups = append(out.Groups, GroupResponse{
			Workers:            g.Workers,
			Jobs:               g.Jobs,
			Interleaved:        g.Interleaved,
			Compatibility:      g.Compatibility,
			PhasePeriodSeconds: g.PhasePeriodSeconds,
			PhaseOffsets:       g.PhaseOffsets,
		})
	}
	writeJSON(w, http.StatusOK, out)
}

func toJobResponse(v master.JobView) JobResponse {
	return JobResponse{
		Name:                v.Name,
		State:               v.State,
		Iteration:           v.Iteration,
		Loss:                v.Loss,
		Workers:             v.Workers,
		CompSeconds:         v.CompSeconds,
		NetSeconds:          v.NetSeconds,
		Profiled:            v.Profiled,
		CheckpointIteration: v.CheckpointIter,
		Queue:               v.Queue,
		Priority:            v.Priority,
		HoldReason:          v.HoldReason,
		QueuePosition:       v.QueuePosition,
		Resumable:           v.Resumable,
		ResumeIteration:     v.ResumeIter,
	}
}

// handleQueues serves the per-queue fair-scheduler surface: resolved
// shares, quota/usage in workers, queue depth, and cumulative counters.
func (s *Server) handleQueues(w http.ResponseWriter, r *http.Request) {
	qs := s.b.Queues()
	if qs == nil {
		qs = []QueueResponse{}
	}
	writeJSON(w, http.StatusOK, QueuesResponse{Queues: qs})
}

func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(body)
}

func writeError(w http.ResponseWriter, status int, code, msg string) {
	writeJSON(w, status, ErrorResponse{Error: ErrorInfo{Code: code, Message: msg}})
}

// writeBackendError maps master errors onto HTTP statuses.
func writeBackendError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, master.ErrUnknownJob):
		writeError(w, http.StatusNotFound, CodeNotFound, err.Error())
	case errors.Is(err, master.ErrUnknownWorker), errors.Is(err, master.ErrUnknownQueue):
		writeError(w, http.StatusBadRequest, CodeInvalidRequest, err.Error())
	case errors.Is(err, master.ErrDuplicateJob), errors.Is(err, master.ErrJobFinished):
		writeError(w, http.StatusConflict, CodeConflict, err.Error())
	case errors.Is(err, master.ErrDraining):
		writeError(w, http.StatusServiceUnavailable, CodeUnavailable, err.Error())
	default:
		writeError(w, http.StatusInternalServerError, CodeInternal, err.Error())
	}
}
