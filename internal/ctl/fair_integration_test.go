package ctl_test

import (
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"

	"harmony/internal/core"
	"harmony/internal/ctl"
	"harmony/internal/fair"
	"harmony/internal/master"
	"harmony/internal/worker"
)

// TestFairMultiTenantOverHTTP drives the DESIGN.md §13 multi-tenant
// story end to end through the HTTP API against a live cluster: two
// queues at 70/30, a tenantB flood borrowing everything, a tenantA gang
// reclaiming capacity through preemption, and every surface — queue
// listing, labeled metrics, job hold reasons, the decision journal —
// reflecting the transitions. The preempted jobs resume from their
// checkpoints and finish bit-identically with the untouched control.
func TestFairMultiTenantOverHTTP(t *testing.T) {
	m, err := master.New("127.0.0.1:0", core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)
	if err := m.ConfigureQueues(
		fair.QueueConfig{Name: "tenantA", Quota: 0.7},
		fair.QueueConfig{Name: "tenantB", Quota: 0.3},
	); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		w, _, err := worker.New(
			fmt.Sprintf("w%d", i), "127.0.0.1:0", m.Addr(), t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(w.Close)
	}
	if err := m.WaitForWorkers(3, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	s := ctl.New(m)
	if err := s.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	base := "http://" + s.Addr()

	// A submission naming an unconfigured queue is a client error.
	bad := submitBody("zz", "mlr", 5, nil)
	bad.Queue = "ghost"
	if code := httpJSON(t, http.MethodPost, base+"/v1/jobs", bad, nil); code != http.StatusBadRequest {
		t.Fatalf("unknown queue: code %d, want 400", code)
	}

	// tenantB floods the cluster with three single-worker jobs; with
	// nothing else waiting, borrowing past the 30% quota is allowed.
	var adm ctl.SubmitResponse
	for _, name := range []string{"b1", "b2", "b3"} {
		req := submitBody(name, "mlr", 2000, nil)
		req.Queue = "tenantB"
		req.MaxWorkers = 1
		if code := httpJSON(t, http.MethodPost, base+"/v1/jobs", req, &adm); code != http.StatusCreated {
			t.Fatalf("submit %s: code %d (%+v)", name, code, adm)
		}
		if len(adm.Workers) != 1 {
			t.Fatalf("%s placed on %v, want 1 worker (max_workers)", name, adm.Workers)
		}
	}
	for _, name := range []string{"b1", "b2", "b3"} {
		pollJob(t, base, name, 30*time.Second, func(j ctl.JobResponse) bool {
			return j.Iteration >= 3
		})
	}

	// tenantA's gang of 2 is under its quota (70% of 3 = 2 workers) and
	// nothing is free: the fair scheduler preempts the two most recent
	// tenantB jobs via the checkpoint path and places the gang whole.
	gang := submitBody("gang", "mlr", 100000, nil)
	gang.Queue = "tenantA"
	gang.MinWorkers = 2
	gang.MaxWorkers = 2
	if code := httpJSON(t, http.MethodPost, base+"/v1/jobs", gang, &adm); code != http.StatusAccepted {
		t.Fatalf("submit gang: code %d (%+v); reclaim is asynchronous, want 202", code, adm)
	}
	g := pollJob(t, base, "gang", 30*time.Second, func(j ctl.JobResponse) bool {
		return j.State == "running"
	})
	if len(g.Workers) != 2 || g.Queue != "tenantA" {
		t.Fatalf("gang view = %+v, want 2 workers in tenantA", g)
	}

	// The victims are held with the preempted reason, resumable from
	// their checkpoint, and hold a slot in the fair admission order.
	for _, name := range []string{"b2", "b3"} {
		v := pollJob(t, base, name, 10*time.Second, func(j ctl.JobResponse) bool {
			return j.State == "pending"
		})
		if v.HoldReason != "preempted" || !v.Resumable || v.QueuePosition == 0 {
			t.Errorf("victim %s = %+v, want preempted+resumable with a queue position", name, v)
		}
	}

	// GET /v1/queues reflects the reclaimed split.
	var qs ctl.QueuesResponse
	if code := httpJSON(t, http.MethodGet, base+"/v1/queues", nil, &qs); code != http.StatusOK {
		t.Fatalf("queues: code %d", code)
	}
	byName := make(map[string]ctl.QueueResponse)
	for _, q := range qs.Queues {
		byName[q.Name] = q
	}
	if q := byName["tenantA"]; q.UsageWorkers != 2 || q.Running != 1 || q.QuotaWorkers != 2 {
		t.Errorf("tenantA = %+v", q)
	}
	if q := byName["tenantB"]; q.UsageWorkers != 1 || q.Depth != 2 || q.Preempted != 2 {
		t.Errorf("tenantB = %+v", q)
	}
	if _, ok := byName["default"]; !ok {
		t.Error("default queue missing from /v1/queues")
	}

	// The labeled metric families carry the same story.
	mtx := fetchMetrics(t, base)
	for _, want := range []string{
		`harmony_queue_depth{queue="tenantB"} 2`,
		`harmony_queue_preempted_total{queue="tenantB"} 2`,
		`harmony_queue_usage_workers{queue="tenantA"} 2`,
		`harmony_queue_quota_workers{queue="tenantA"} 2`,
		`harmony_queue_share{queue="tenantA"} 0.7`,
		`harmony_preemptions_total 2`,
		`harmony_queue_depth{queue="default"} 0`,
	} {
		if !strings.Contains(mtx, want) {
			t.Errorf("metrics missing %q", want)
		}
	}

	// A held job canceled before it ever runs records cancel_held.
	b4 := submitBody("b4", "mlr", 5, nil)
	b4.Queue = "tenantB"
	b4.MaxWorkers = 1
	if code := httpJSON(t, http.MethodPost, base+"/v1/jobs", b4, &adm); code != http.StatusAccepted {
		t.Fatalf("submit b4: code %d", code)
	}
	if code := httpJSON(t, http.MethodDelete, base+"/v1/jobs/b4", nil, nil); code != http.StatusOK {
		t.Fatalf("cancel b4: code %d", code)
	}

	// Release the gang; the victims resume from checkpoint and all of
	// tenantB runs to completion.
	if code := httpJSON(t, http.MethodDelete, base+"/v1/jobs/gang", nil, nil); code != http.StatusOK {
		t.Fatalf("cancel gang: code %d", code)
	}
	var losses [3]float64
	for i, name := range []string{"b1", "b2", "b3"} {
		j := pollJob(t, base, name, 120*time.Second, func(j ctl.JobResponse) bool {
			return j.State == "finished"
		})
		losses[i] = j.Loss
	}
	// Same spec, same seed, same 1-worker shard count: the preempted
	// and resumed b2/b3 must match the never-preempted b1 exactly.
	if losses[1] != losses[0] || losses[2] != losses[0] {
		t.Errorf("final losses diverged after preempt/resume: %v", losses)
	}

	// The journal recorded the full lifecycle.
	var evs ctl.EventsResponse
	if code := httpJSON(t, http.MethodGet, base+"/v1/events", nil, &evs); code != http.StatusOK {
		t.Fatalf("events: code %d", code)
	}
	kinds := make(map[string]int)
	for _, e := range evs.Events {
		kinds[e.Kind]++
		if e.Kind == master.EventPreempt && e.MeasuredIterSeconds <= 0 {
			t.Errorf("preempt of %s lacks measured T_itr", e.Job)
		}
	}
	if kinds[master.EventPreempt] != 2 || kinds[master.EventResume] != 2 || kinds[master.EventCancelHeld] != 1 {
		t.Errorf("journal kinds = %v, want 2 preempts, 2 resumes, 1 cancel_held", kinds)
	}
}
