package ctl_test

import (
	"bytes"
	"net/http"
	"strings"
	"testing"
	"time"

	"harmony/internal/core"
	"harmony/internal/ctl"
	"harmony/internal/master"
	"harmony/internal/replay"
)

// TestSnapshotReplayOverHTTP exercises the full observability pipeline
// against a live master: capture /v1/snapshot mid-workload, replay it
// twice through internal/replay asserting bit-identical reports, check
// the calibration rows carry the journal's own prediction stamps, then
// ask the master to self-replay (POST /v1/replay) and verify the model
// error gauges land on /metrics.
func TestSnapshotReplayOverHTTP(t *testing.T) {
	base := startCluster(t, 2, core.Options{})

	// One long-running job, snapshot taken mid-flight once measured
	// iteration times exist so calibration has something to compare.
	var adm ctl.SubmitResponse
	if code := httpJSON(t, http.MethodPost, base+"/v1/jobs",
		submitBody("snap-a", "mlr", 100000, nil), &adm); code != http.StatusCreated {
		t.Fatalf("submit snap-a: code %d", code)
	}
	pollJob(t, base, "snap-a", 30*time.Second, func(j ctl.JobResponse) bool {
		return j.Profiled && j.Iteration >= 3
	})

	var snap master.Snapshot
	if code := httpJSON(t, http.MethodGet, base+"/v1/snapshot", nil, &snap); code != http.StatusOK {
		t.Fatalf("snapshot: code %d", code)
	}
	if err := snap.Validate(); err != nil {
		t.Fatalf("captured snapshot invalid: %v", err)
	}
	if len(snap.Workers) != 2 || len(snap.Journal) == 0 {
		t.Fatalf("snapshot = %d workers, %d journal events; want 2 workers and a journal",
			len(snap.Workers), len(snap.Journal))
	}
	var job *master.SnapshotJob
	for i := range snap.Jobs {
		if snap.Jobs[i].Name == "snap-a" {
			job = &snap.Jobs[i]
		}
	}
	if job == nil || job.State != "running" || len(job.Workers) == 0 ||
		job.CompSeconds <= 0 || job.MeasuredIterSeconds <= 0 {
		t.Fatalf("snapshot job snap-a = %+v; want running with costs and a measured T_itr", job)
	}

	// Replay twice: the engine is pure, so the encoded reports must be
	// bit-identical.
	rep1, err := replay.Run(&snap, replay.Overrides{})
	if err != nil {
		t.Fatal(err)
	}
	rep2, err := replay.Run(&snap, replay.Overrides{})
	if err != nil {
		t.Fatal(err)
	}
	b1, err := rep1.Encode()
	if err != nil {
		t.Fatal(err)
	}
	b2, err := rep2.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatalf("replay of the same snapshot diverged:\n%s\n--- vs ---\n%s", b1, b2)
	}

	// Every calibration row must carry the journal's own stamps: the
	// decision keyed by seq reports exactly the predicted/measured
	// T_itr the live master journaled.
	stamps := make(map[uint64]master.Event, len(snap.Journal))
	for _, e := range snap.Journal {
		stamps[e.Seq] = e
	}
	modeled := 0
	for _, d := range rep1.Decisions {
		e, ok := stamps[d.Seq]
		if !ok {
			t.Fatalf("decision seq %d not in the captured journal", d.Seq)
		}
		if d.JournalIterSeconds != e.PredictedIterSeconds ||
			d.MeasuredIterSeconds != e.MeasuredIterSeconds {
			t.Errorf("decision %d: journal stamp mismatch: got (%.4f, %.4f), journal (%.4f, %.4f)",
				d.Seq, d.JournalIterSeconds, d.MeasuredIterSeconds,
				e.PredictedIterSeconds, e.MeasuredIterSeconds)
		}
		if d.ReplayIterSeconds > 0 {
			modeled++
		}
	}
	if modeled == 0 {
		t.Fatalf("replay re-modeled no decisions: %+v", rep1.Decisions)
	}

	// Self-replay: the master replays its own snapshot and the drift
	// gauges appear on /metrics.
	var selfRep replay.Report
	if code := httpJSON(t, http.MethodPost, base+"/v1/replay", nil, &selfRep); code != http.StatusOK {
		t.Fatalf("self-replay: code %d", code)
	}
	if selfRep.Overall.Modeled == 0 || len(selfRep.Groups) == 0 {
		t.Fatalf("self-replay modeled nothing: %+v", selfRep.Overall)
	}
	mtx := fetchMetrics(t, base)
	if !strings.Contains(mtx, `harmony_model_error_ratio{group="`) {
		t.Errorf("metrics missing harmony_model_error_ratio after self-replay:\n%s", mtx)
	}
	if !strings.Contains(mtx, "harmony_model_drift_ratio") {
		t.Errorf("metrics missing harmony_model_drift_ratio after self-replay:\n%s", mtx)
	}
}
