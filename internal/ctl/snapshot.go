package ctl

import (
	"encoding/json"
	"io"
	"net/http"
	"strconv"

	"harmony/internal/replay"
)

// This file is the control-plane half of snapshot/replay (DESIGN.md
// §16): GET /v1/snapshot serves the master's versioned state capture,
// POST /v1/replay self-replays the decision journal through
// internal/replay and caches the calibration report for /metrics.

// ReplayRequest is the POST /v1/replay body; every field is optional
// (an empty body replays the capture as-is).
type ReplayRequest struct {
	// Machines, NetModel and Queues are the what-if overrides, with
	// replay.Overrides semantics.
	Machines int    `json:"machines,omitempty"`
	NetModel *bool  `json:"net_model,omitempty"`
	Queues   string `json:"queues,omitempty"`
}

// handleSnapshot captures and serves the master's full state. The
// capture itself validates before it leaves the process, so a snapshot
// that fails its own schema check is a server error, not a silently
// broken artifact.
func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	snap, err := s.b.Snapshot()
	if err != nil {
		writeBackendError(w, err)
		return
	}
	if err := snap.Validate(); err != nil {
		writeError(w, http.StatusInternalServerError, CodeInternal, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, snap)
}

// handleReplay snapshots the live master and replays its journal,
// returning the calibration report. The report is cached so the next
// /metrics scrape exposes harmony_model_error_ratio{group,kind}.
func (s *Server) handleReplay(w http.ResponseWriter, r *http.Request) {
	var req ReplayRequest
	if body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20)); err != nil {
		writeError(w, http.StatusBadRequest, CodeInvalidRequest, "read body: "+err.Error())
		return
	} else if len(body) > 0 {
		if err := json.Unmarshal(body, &req); err != nil {
			writeError(w, http.StatusBadRequest, CodeInvalidRequest, "malformed JSON body: "+err.Error())
			return
		}
	}
	snap, err := s.b.Snapshot()
	if err != nil {
		writeBackendError(w, err)
		return
	}
	rep, err := replay.Run(&snap, replay.Overrides{
		Machines: req.Machines, NetModel: req.NetModel, Queues: req.Queues,
	})
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeInvalidRequest, err.Error())
		return
	}
	s.mu.Lock()
	s.lastReplay = rep
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, rep)
}

// parseEventsQuery extracts the ?since=<seq> and ?kind= filters of
// GET /v1/events; ok is false after a malformed since (the handler has
// already written the 400).
func parseEventsQuery(w http.ResponseWriter, r *http.Request) (since uint64, kind string, ok bool) {
	if v := r.URL.Query().Get("since"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, CodeInvalidRequest,
				"since must be a non-negative integer sequence number")
			return 0, "", false
		}
		since = n
	}
	return since, r.URL.Query().Get("kind"), true
}
