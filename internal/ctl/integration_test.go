package ctl_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"harmony/internal/core"
	"harmony/internal/ctl"
	"harmony/internal/master"
	"harmony/internal/worker"
)

// startCluster boots a live master with n workers and mounts the control
// plane on an ephemeral port, returning the API base URL.
func startCluster(t *testing.T, n int, opts core.Options) string {
	t.Helper()
	m, err := master.New("127.0.0.1:0", opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)
	for i := 0; i < n; i++ {
		w, _, err := worker.New(
			fmt.Sprintf("w%d", i), "127.0.0.1:0", m.Addr(), t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(w.Close)
	}
	if err := m.WaitForWorkers(n, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	s := ctl.New(m)
	if err := s.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return "http://" + s.Addr()
}

func httpJSON(t *testing.T, method, url string, body, out any) int {
	t.Helper()
	var rd io.Reader
	if body != nil {
		buf, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(buf)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil && resp.StatusCode < 400 {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("%s %s: decoding %q: %v", method, url, raw, err)
		}
	}
	return resp.StatusCode
}

func submitBody(name, algo string, iters int, hints *ctl.ProfileHints) ctl.SubmitRequest {
	return ctl.SubmitRequest{
		Name: name, Algorithm: algo,
		Features: 12, Classes: 3, Rows: 96, LearningRate: 0.2,
		Iterations: iters, Seed: 7, Profile: hints,
	}
}

func pollJob(t *testing.T, base, name string, timeout time.Duration, ok func(ctl.JobResponse) bool) ctl.JobResponse {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		var j ctl.JobResponse
		code := httpJSON(t, http.MethodGet, base+"/v1/jobs/"+name, nil, &j)
		if code == http.StatusOK && ok(j) {
			return j
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s did not reach the expected state (last: code %d, %+v)", name, code, j)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func fetchMetrics(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(raw)
}

// TestOnlineArrivalOverHTTP drives the full §IV-B4 online story through
// the HTTP API against a live master with real workers: an initial admit
// on the idle cluster, an arrival-rule admit of a complementary job into
// the running group, hold-pending for memory-infeasible jobs, pending and
// running cancellation, and the queue drain once the cluster idles.
func TestOnlineArrivalOverHTTP(t *testing.T) {
	// MemoryCapGB 2 makes any job hinting work_gb=50 infeasible in every
	// non-empty group, forcing the hold-pending path.
	base := startCluster(t, 2, core.Options{MemoryCapGB: 2})

	// Job a: long-running, admitted on the idle cluster (initial path).
	var adm ctl.SubmitResponse
	code := httpJSON(t, http.MethodPost, base+"/v1/jobs",
		submitBody("a", "mlr", 100000, nil), &adm)
	if code != http.StatusCreated {
		t.Fatalf("submit a: code %d", code)
	}
	if adm.State != "running" || len(adm.Workers) != 2 {
		t.Fatalf("submit a: %+v, want running on both workers", adm)
	}

	// Wait for the master to profile a, then read its measured costs so
	// job b can be shaped as a's complement regardless of machine speed.
	prof := pollJob(t, base, "a", 30*time.Second, func(j ctl.JobResponse) bool {
		return j.Profiled && j.CompSeconds > 0 && j.NetSeconds > 0
	})

	// Job b mirrors a (comp per machine = a's net and vice versa), so
	// co-locating them drives both utilizations toward 1 and the arrival
	// rule must place b into a's running group.
	mirror := &ctl.ProfileHints{
		CompSeconds: 2 * prof.NetSeconds,
		NetSeconds:  prof.CompSeconds / 2,
	}
	code = httpJSON(t, http.MethodPost, base+"/v1/jobs",
		submitBody("b", "lasso", 5, mirror), &adm)
	if code != http.StatusCreated {
		t.Fatalf("submit b: code %d (%+v)", code, adm)
	}
	if adm.State != "running" || len(adm.Workers) != 2 {
		t.Fatalf("arrival admission of b = %+v, want running on a's group", adm)
	}
	var cv ctl.ClusterResponse
	if code := httpJSON(t, http.MethodGet, base+"/v1/cluster", nil, &cv); code != http.StatusOK {
		t.Fatalf("cluster: code %d", code)
	}
	if len(cv.Groups) != 1 || len(cv.Groups[0].Jobs) != 2 {
		t.Fatalf("cluster after arrival admit = %+v, want one group with jobs a and b", cv)
	}
	if m := fetchMetrics(t, base); !strings.Contains(m, `harmony_admissions_total{path="arrival"} 1`) {
		t.Errorf("metrics missing arrival admission:\n%s", m)
	}

	// Jobs c and d hint at a working set far over the memory cap: no
	// running group can take them, so both are held pending.
	for _, name := range []string{"c", "d"} {
		code = httpJSON(t, http.MethodPost, base+"/v1/jobs",
			submitBody(name, "mlr", 4, &ctl.ProfileHints{WorkGB: 50}), &adm)
		if code != http.StatusAccepted || adm.State != "pending" {
			t.Fatalf("submit %s: code %d, %+v; want 202 pending", name, code, adm)
		}
	}

	// Canceling pending d removes it from the queue outright.
	if code := httpJSON(t, http.MethodDelete, base+"/v1/jobs/d", nil, nil); code != http.StatusOK {
		t.Fatalf("cancel d: code %d", code)
	}
	if code := httpJSON(t, http.MethodGet, base+"/v1/jobs/d", nil, nil); code != http.StatusNotFound {
		t.Fatalf("get canceled-pending d: code %d, want 404", code)
	}

	// Cancel the long-running a; once b also finishes the cluster idles
	// and the drain admits c through the initial path (the memory cap
	// only gates co-location).
	if code := httpJSON(t, http.MethodDelete, base+"/v1/jobs/a", nil, nil); code != http.StatusOK {
		t.Fatalf("cancel a: code %d", code)
	}
	pollJob(t, base, "c", 60*time.Second, func(j ctl.JobResponse) bool {
		return j.State == "finished"
	})

	m := fetchMetrics(t, base)
	for _, want := range []string{
		`harmony_queue_depth 0`,
		`harmony_queue_drained_total 1`,
		`harmony_admissions_held_total 2`,
		`harmony_jobs_canceled_total 2`,
		`harmony_admissions_total{path="initial"} 2`,
		`harmony_jobs{state="canceled"} 1`,
	} {
		if !strings.Contains(m, want) {
			t.Errorf("final metrics missing %q:\n%s", want, m)
		}
	}
}

// TestHTTPDuplicateAndUnknown covers the error surface against the live
// master: duplicate submissions conflict, unknown jobs 404, unknown
// workers in an explicit group are invalid.
func TestHTTPDuplicateAndUnknown(t *testing.T) {
	base := startCluster(t, 1, core.Options{})

	var adm ctl.SubmitResponse
	if code := httpJSON(t, http.MethodPost, base+"/v1/jobs",
		submitBody("a", "mlr", 100000, nil), &adm); code != http.StatusCreated {
		t.Fatalf("submit a: code %d", code)
	}
	if code := httpJSON(t, http.MethodPost, base+"/v1/jobs",
		submitBody("a", "mlr", 5, nil), nil); code != http.StatusConflict {
		t.Errorf("duplicate submit: code %d, want 409", code)
	}
	if code := httpJSON(t, http.MethodGet, base+"/v1/jobs/nope", nil, nil); code != http.StatusNotFound {
		t.Errorf("unknown job: code %d, want 404", code)
	}
	req := submitBody("x", "mlr", 5, nil)
	req.Workers = []string{"ghost"}
	if code := httpJSON(t, http.MethodPost, base+"/v1/jobs", req, nil); code != http.StatusBadRequest {
		t.Errorf("unknown worker group: code %d, want 400", code)
	}
	if code := httpJSON(t, http.MethodDelete, base+"/v1/jobs/a", nil, nil); code != http.StatusOK {
		t.Fatalf("cancel a: code %d", code)
	}
}
