package ctl_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"harmony/internal/core"
	"harmony/internal/ctl"
	"harmony/internal/master"
	"harmony/internal/worker"
)

// startCluster boots a live master with n workers and mounts the control
// plane on an ephemeral port, returning the API base URL.
func startCluster(t *testing.T, n int, opts core.Options) string {
	t.Helper()
	m, err := master.New("127.0.0.1:0", opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)
	for i := 0; i < n; i++ {
		w, _, err := worker.New(
			fmt.Sprintf("w%d", i), "127.0.0.1:0", m.Addr(), t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(w.Close)
	}
	if err := m.WaitForWorkers(n, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	s := ctl.New(m)
	if err := s.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return "http://" + s.Addr()
}

func httpJSON(t *testing.T, method, url string, body, out any) int {
	t.Helper()
	var rd io.Reader
	if body != nil {
		buf, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(buf)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil && resp.StatusCode < 400 {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("%s %s: decoding %q: %v", method, url, raw, err)
		}
	}
	return resp.StatusCode
}

func submitBody(name, algo string, iters int, hints *ctl.ProfileHints) ctl.SubmitRequest {
	return ctl.SubmitRequest{
		Name: name, Algorithm: algo,
		Features: 12, Classes: 3, Rows: 96, LearningRate: 0.2,
		Iterations: iters, Seed: 7, Profile: hints,
	}
}

func pollJob(t *testing.T, base, name string, timeout time.Duration, ok func(ctl.JobResponse) bool) ctl.JobResponse {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		var j ctl.JobResponse
		code := httpJSON(t, http.MethodGet, base+"/v1/jobs/"+name, nil, &j)
		if code == http.StatusOK && ok(j) {
			return j
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s did not reach the expected state (last: code %d, %+v)", name, code, j)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func fetchMetrics(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(raw)
}

// TestOnlineArrivalOverHTTP drives the full §IV-B4 online story through
// the HTTP API against a live master with real workers: an initial admit
// on the idle cluster, an arrival-rule admit of a complementary job into
// the running group, hold-pending for memory-infeasible jobs, pending and
// running cancellation, and the queue drain once the cluster idles.
func TestOnlineArrivalOverHTTP(t *testing.T) {
	// MemoryCapGB 2 makes any job hinting work_gb=50 infeasible in every
	// non-empty group, forcing the hold-pending path.
	base := startCluster(t, 2, core.Options{MemoryCapGB: 2})

	// Job a: long-running, admitted on the idle cluster (initial path).
	var adm ctl.SubmitResponse
	code := httpJSON(t, http.MethodPost, base+"/v1/jobs",
		submitBody("a", "mlr", 100000, nil), &adm)
	if code != http.StatusCreated {
		t.Fatalf("submit a: code %d", code)
	}
	if adm.State != "running" || len(adm.Workers) != 2 {
		t.Fatalf("submit a: %+v, want running on both workers", adm)
	}

	// Wait for the master to profile a, then read its measured costs so
	// job b can be shaped as a's complement regardless of machine speed.
	prof := pollJob(t, base, "a", 30*time.Second, func(j ctl.JobResponse) bool {
		return j.Profiled && j.CompSeconds > 0 && j.NetSeconds > 0
	})

	// Job b mirrors a (comp per machine = a's net and vice versa), so
	// co-locating them drives both utilizations toward 1 and the arrival
	// rule must place b into a's running group.
	mirror := &ctl.ProfileHints{
		CompSeconds: 2 * prof.NetSeconds,
		NetSeconds:  prof.CompSeconds / 2,
	}
	code = httpJSON(t, http.MethodPost, base+"/v1/jobs",
		submitBody("b", "lasso", 5, mirror), &adm)
	if code != http.StatusCreated {
		t.Fatalf("submit b: code %d (%+v)", code, adm)
	}
	if adm.State != "running" || len(adm.Workers) != 2 {
		t.Fatalf("arrival admission of b = %+v, want running on a's group", adm)
	}
	var cv ctl.ClusterResponse
	if code := httpJSON(t, http.MethodGet, base+"/v1/cluster", nil, &cv); code != http.StatusOK {
		t.Fatalf("cluster: code %d", code)
	}
	if len(cv.Groups) != 1 || len(cv.Groups[0].Jobs) != 2 {
		t.Fatalf("cluster after arrival admit = %+v, want one group with jobs a and b", cv)
	}
	if m := fetchMetrics(t, base); !strings.Contains(m, `harmony_admissions_total{path="arrival"} 1`) {
		t.Errorf("metrics missing arrival admission:\n%s", m)
	}

	// Jobs c and d hint at a working set far over the memory cap: no
	// running group can take them, so both are held pending.
	for _, name := range []string{"c", "d"} {
		code = httpJSON(t, http.MethodPost, base+"/v1/jobs",
			submitBody(name, "mlr", 4, &ctl.ProfileHints{WorkGB: 50}), &adm)
		if code != http.StatusAccepted || adm.State != "pending" {
			t.Fatalf("submit %s: code %d, %+v; want 202 pending", name, code, adm)
		}
	}

	// Canceling pending d removes it from the queue outright.
	if code := httpJSON(t, http.MethodDelete, base+"/v1/jobs/d", nil, nil); code != http.StatusOK {
		t.Fatalf("cancel d: code %d", code)
	}
	if code := httpJSON(t, http.MethodGet, base+"/v1/jobs/d", nil, nil); code != http.StatusNotFound {
		t.Fatalf("get canceled-pending d: code %d, want 404", code)
	}

	// Cancel the long-running a; once b also finishes the cluster idles
	// and the drain admits c through the initial path (the memory cap
	// only gates co-location).
	if code := httpJSON(t, http.MethodDelete, base+"/v1/jobs/a", nil, nil); code != http.StatusOK {
		t.Fatalf("cancel a: code %d", code)
	}
	pollJob(t, base, "c", 60*time.Second, func(j ctl.JobResponse) bool {
		return j.State == "finished"
	})

	m := fetchMetrics(t, base)
	for _, want := range []string{
		`harmony_queue_depth{queue="default"} 0`,
		`harmony_queue_drained_total 1`,
		`harmony_admissions_held_total 2`,
		`harmony_jobs_canceled_total 2`,
		`harmony_admissions_total{path="initial"} 2`,
		`harmony_jobs{state="canceled"} 1`,
	} {
		if !strings.Contains(m, want) {
			t.Errorf("final metrics missing %q:\n%s", want, m)
		}
	}
}

// TestHTTPDuplicateAndUnknown covers the error surface against the live
// master: duplicate submissions conflict, unknown jobs 404, unknown
// workers in an explicit group are invalid.
func TestHTTPDuplicateAndUnknown(t *testing.T) {
	base := startCluster(t, 1, core.Options{})

	var adm ctl.SubmitResponse
	if code := httpJSON(t, http.MethodPost, base+"/v1/jobs",
		submitBody("a", "mlr", 100000, nil), &adm); code != http.StatusCreated {
		t.Fatalf("submit a: code %d", code)
	}
	if code := httpJSON(t, http.MethodPost, base+"/v1/jobs",
		submitBody("a", "mlr", 5, nil), nil); code != http.StatusConflict {
		t.Errorf("duplicate submit: code %d, want 409", code)
	}
	if code := httpJSON(t, http.MethodGet, base+"/v1/jobs/nope", nil, nil); code != http.StatusNotFound {
		t.Errorf("unknown job: code %d, want 404", code)
	}
	req := submitBody("x", "mlr", 5, nil)
	req.Workers = []string{"ghost"}
	if code := httpJSON(t, http.MethodPost, base+"/v1/jobs", req, nil); code != http.StatusBadRequest {
		t.Errorf("unknown worker group: code %d, want 400", code)
	}
	if code := httpJSON(t, http.MethodDelete, base+"/v1/jobs/a", nil, nil); code != http.StatusOK {
		t.Fatalf("cancel a: code %d", code)
	}
}

// TestTracedClusterOverHTTP drives a live 2-job cluster with tracing on
// and checks the whole telemetry surface: /v1/trace yields Chrome
// trace-event JSON with COMP and COMM spans from both jobs sharing a
// machine, /metrics grows harmony_phase_seconds histogram families and
// the per-group overlap gauge, and /v1/events pairs the model's
// predicted T_itr with measured iteration times. Finally a worker is
// torn down mid-run and the trace scrape must still succeed — trace
// collection is best effort like the stats aggregators.
func TestTracedClusterOverHTTP(t *testing.T) {
	m, err := master.New("127.0.0.1:0", core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)
	m.EnableTracing(0)
	workers := make([]*worker.Worker, 2)
	for i := range workers {
		w, _, err := worker.New(
			fmt.Sprintf("w%d", i), "127.0.0.1:0", m.Addr(), t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		w.EnableTracing(0)
		workers[i] = w
		t.Cleanup(w.Close)
	}
	if err := m.WaitForWorkers(2, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	s := ctl.New(m)
	if err := s.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	base := "http://" + s.Addr()

	// Two long-running jobs sharing both workers, so COMP of one can
	// overlap COMM of the other on the same machine. Job b is shaped as
	// a's complement from a's measured profile, so the arrival rule
	// co-locates it with a (same pattern as TestOnlineArrivalOverHTTP).
	var adm ctl.SubmitResponse
	if code := httpJSON(t, http.MethodPost, base+"/v1/jobs",
		submitBody("a", "mlr", 100000, nil), &adm); code != http.StatusCreated {
		t.Fatalf("submit a: code %d", code)
	}
	prof := pollJob(t, base, "a", 30*time.Second, func(j ctl.JobResponse) bool {
		return j.Profiled && j.CompSeconds > 0 && j.NetSeconds > 0
	})
	mirror := &ctl.ProfileHints{
		CompSeconds: 2 * prof.NetSeconds,
		NetSeconds:  prof.CompSeconds / 2,
	}
	if code := httpJSON(t, http.MethodPost, base+"/v1/jobs",
		submitBody("b", "lasso", 100000, mirror), &adm); code != http.StatusCreated {
		t.Fatalf("submit b: code %d (%+v)", code, adm)
	}
	for _, name := range []string{"a", "b"} {
		pollJob(t, base, name, 30*time.Second, func(j ctl.JobResponse) bool {
			return j.Iteration >= 5
		})
	}

	// The trace must parse as Chrome trace-event JSON and contain COMP
	// and COMM slices from both jobs on a shared machine (pid).
	var tr struct {
		TraceEvents []struct {
			Ph   string         `json:"ph"`
			Cat  string         `json:"cat"`
			PID  int            `json:"pid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if code := httpJSON(t, http.MethodGet, base+"/v1/trace", nil, &tr); code != http.StatusOK {
		t.Fatalf("trace: code %d", code)
	}
	type pj struct {
		pid int
		job string
	}
	compBy := make(map[pj]bool)
	commBy := make(map[pj]bool)
	for _, e := range tr.TraceEvents {
		if e.Ph != "X" {
			continue
		}
		job, _ := e.Args["job"].(string)
		switch e.Cat {
		case "comp":
			compBy[pj{e.PID, job}] = true
		case "pull", "push":
			commBy[pj{e.PID, job}] = true
		}
	}
	sharedMachine := false
	for k := range compBy {
		other := pj{k.pid, "a"}
		if k.job == "a" {
			other.job = "b"
		}
		if commBy[other] || compBy[other] {
			sharedMachine = true
		}
	}
	if len(compBy) == 0 || len(commBy) == 0 || !sharedMachine {
		t.Errorf("trace lacks co-located COMP/COMM spans from both jobs: comp=%v comm=%v",
			compBy, commBy)
	}

	// Histograms and overlap reach /metrics.
	mtx := fetchMetrics(t, base)
	for _, want := range []string{
		"# TYPE harmony_phase_seconds histogram",
		`harmony_phase_seconds_bucket{phase="comp",le="+Inf"}`,
		`harmony_phase_seconds_count{phase="pull"}`,
		"harmony_group_overlap_ratio{group=\"w0,w1\"}",
		"harmony_build_info",
	} {
		if !strings.Contains(mtx, want) {
			t.Errorf("metrics missing %q", want)
		}
	}

	// The journal has the initial admission of a with a model prediction
	// and — since both jobs have completed iterations — a measured T_itr.
	var evs ctl.EventsResponse
	if code := httpJSON(t, http.MethodGet, base+"/v1/events", nil, &evs); code != http.StatusOK {
		t.Fatalf("events: code %d", code)
	}
	paired := false
	for _, e := range evs.Events {
		if e.Job == "b" && e.Kind == master.EventAdmitArrival &&
			e.PredictedIterSeconds > 0 && e.MeasuredIterSeconds > 0 {
			paired = true
		}
	}
	if !paired {
		t.Errorf("no decision pairing predicted and measured T_itr: %+v", evs.Events)
	}

	// Tear one worker down mid-run: the next scrape skips it instead of
	// failing (best effort, like WorkerStats).
	workers[1].Close()
	if code := httpJSON(t, http.MethodGet, base+"/v1/trace", nil, &tr); code != http.StatusOK {
		t.Errorf("trace after worker teardown: code %d, want 200", code)
	}
	if resp := fetchMetrics(t, base); !strings.Contains(resp, "harmony_phase_seconds") {
		t.Errorf("metrics after worker teardown lost phase histograms")
	}
}
