package ctl

import (
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"harmony/internal/master"
	"harmony/internal/metrics"
	"harmony/internal/obs"
	"harmony/internal/ps"
	"harmony/internal/replay"
)

// fakeBackend scripts the master's control-plane surface for handler
// tests; the live path is covered by integration_test.go.
type fakeBackend struct {
	enqueue    func(master.JobSpec, master.Profile) (master.Admission, error)
	submit     func(master.JobSpec, []string) error
	jobs       []master.JobView
	cancelErr  error
	cluster    master.ClusterView
	counters   master.Counters
	comm       metrics.CommSnapshot
	comp       metrics.CompSnapshot
	statsErr   error
	queues     []master.QueueView
	events     []master.Event
	snap       *master.Snapshot
	snapErr    error
	psStats    ps.ClusterStats
	psErr      error
	traced     bool
	spans      []obs.TaggedSpan
	phaseHist  [obs.NumPhases]metrics.HistSnapshot
	overlap    map[string]float64
	lastSpec   master.JobSpec
	lastProf   master.Profile
	lastGroup  []string
	lastCancel string
}

func (f *fakeBackend) Enqueue(spec master.JobSpec, prof master.Profile) (master.Admission, error) {
	f.lastSpec, f.lastProf = spec, prof
	if f.enqueue != nil {
		return f.enqueue(spec, prof)
	}
	return master.Admission{Admitted: true, Workers: []string{"w0"}}, nil
}

func (f *fakeBackend) Submit(spec master.JobSpec, group []string) error {
	f.lastSpec, f.lastGroup = spec, group
	if f.submit != nil {
		return f.submit(spec, group)
	}
	return nil
}

func (f *fakeBackend) ListJobs() []master.JobView { return f.jobs }

func (f *fakeBackend) Job(name string) (master.JobView, bool) {
	for _, j := range f.jobs {
		if j.Name == name {
			return j, true
		}
	}
	return master.JobView{}, false
}

func (f *fakeBackend) Cancel(name string) error {
	f.lastCancel = name
	return f.cancelErr
}

func (f *fakeBackend) Cluster() master.ClusterView { return f.cluster }
func (f *fakeBackend) Counters() master.Counters   { return f.counters }
func (f *fakeBackend) Queues() []master.QueueView  { return f.queues }

func (f *fakeBackend) WorkerStats() (float64, float64, error) {
	return 0.75, 0.5, f.statsErr
}

func (f *fakeBackend) CommStats() metrics.CommSnapshot {
	return f.comm
}

func (f *fakeBackend) CompStats() metrics.CompSnapshot {
	return f.comp
}

func (f *fakeBackend) EventsSince(since uint64, kind string) []master.Event {
	var out []master.Event
	for _, e := range f.events {
		if e.Seq > since && (kind == "" || e.Kind == kind) {
			out = append(out, e)
		}
	}
	return out
}

func (f *fakeBackend) Snapshot() (master.Snapshot, error) {
	if f.snapErr != nil {
		return master.Snapshot{}, f.snapErr
	}
	if f.snap != nil {
		return *f.snap, nil
	}
	ws := f.cluster.Workers
	return master.Snapshot{
		SchemaVersion: master.SnapshotSchemaVersion,
		Workers:       ws,
		Journal:       f.events,
	}, nil
}

func (f *fakeBackend) PSStats() (ps.ClusterStats, error) { return f.psStats, f.psErr }

func (f *fakeBackend) TracingEnabled() bool { return f.traced }

func (f *fakeBackend) CollectSpans() []obs.TaggedSpan { return f.spans }

func (f *fakeBackend) PhaseStats() ([obs.NumPhases]metrics.HistSnapshot, bool) {
	return f.phaseHist, f.traced
}

func (f *fakeBackend) MeasuredOverlap() map[string]float64 { return f.overlap }

func doReq(t *testing.T, s *Server, method, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	var rd *strings.Reader
	if body == "" {
		rd = strings.NewReader("")
	} else {
		rd = strings.NewReader(body)
	}
	req := httptest.NewRequest(method, path, rd)
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	return w
}

func decodeErr(t *testing.T, w *httptest.ResponseRecorder) ErrorInfo {
	t.Helper()
	var e ErrorResponse
	if err := json.Unmarshal(w.Body.Bytes(), &e); err != nil {
		t.Fatalf("error body not JSON: %v (%s)", err, w.Body.String())
	}
	return e.Error
}

func TestSubmitValidation(t *testing.T) {
	s := New(&fakeBackend{})
	cases := []struct {
		name string
		body string
	}{
		{"malformed JSON", `{`},
		{"unknown field", `{"name":"a","algorithm":"mlr","iterations":5,"bogus":1}`},
		{"missing name", `{"algorithm":"mlr","iterations":5}`},
		{"bad name", `{"name":"a job!","algorithm":"mlr","iterations":5}`},
		{"bad algorithm", `{"name":"a","algorithm":"svm","iterations":5}`},
		{"zero iterations", `{"name":"a","algorithm":"mlr"}`},
		{"alpha out of range", `{"name":"a","algorithm":"mlr","iterations":5,"alpha":1.5}`},
		{"negative rows", `{"name":"a","algorithm":"mlr","iterations":5,"rows":-1}`},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			w := doReq(t, s, http.MethodPost, "/v1/jobs", c.body)
			if w.Code != http.StatusBadRequest {
				t.Fatalf("status = %d, want 400 (%s)", w.Code, w.Body.String())
			}
			if e := decodeErr(t, w); e.Code != CodeInvalidRequest {
				t.Errorf("error code = %q, want %q", e.Code, CodeInvalidRequest)
			}
		})
	}
}

func TestSubmitAdmitted(t *testing.T) {
	fb := &fakeBackend{}
	s := New(fb)
	w := doReq(t, s, http.MethodPost, "/v1/jobs",
		`{"name":"a","algorithm":"lasso","iterations":5,"seed":9,"profile":{"comp_seconds":2,"net_seconds":1,"work_gb":3}}`)
	if w.Code != http.StatusCreated {
		t.Fatalf("status = %d, want 201 (%s)", w.Code, w.Body.String())
	}
	var resp SubmitResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.State != "running" || len(resp.Workers) != 1 {
		t.Errorf("response = %+v", resp)
	}
	if fb.lastSpec.Name != "a" || fb.lastSpec.Seed != 9 || fb.lastSpec.Iterations != 5 {
		t.Errorf("spec passed through = %+v", fb.lastSpec)
	}
	if fb.lastProf.CompSeconds != 2 || fb.lastProf.NetSeconds != 1 || fb.lastProf.WorkGB != 3 {
		t.Errorf("profile passed through = %+v", fb.lastProf)
	}
}

func TestSubmitHeldPending(t *testing.T) {
	fb := &fakeBackend{
		enqueue: func(master.JobSpec, master.Profile) (master.Admission, error) {
			return master.Admission{}, nil
		},
	}
	w := doReq(t, New(fb), http.MethodPost, "/v1/jobs",
		`{"name":"a","algorithm":"mlr","iterations":5}`)
	if w.Code != http.StatusAccepted {
		t.Fatalf("status = %d, want 202 (%s)", w.Code, w.Body.String())
	}
	var resp SubmitResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.State != "pending" {
		t.Errorf("state = %q, want pending", resp.State)
	}
}

func TestSubmitExplicitWorkersBypassesQueue(t *testing.T) {
	fb := &fakeBackend{}
	w := doReq(t, New(fb), http.MethodPost, "/v1/jobs",
		`{"name":"a","algorithm":"nmf","iterations":5,"workers":["w1","w2"]}`)
	if w.Code != http.StatusCreated {
		t.Fatalf("status = %d, want 201 (%s)", w.Code, w.Body.String())
	}
	if len(fb.lastGroup) != 2 || fb.lastGroup[0] != "w1" {
		t.Errorf("explicit group not passed to Submit: %v", fb.lastGroup)
	}
}

func TestBackendErrorMapping(t *testing.T) {
	cases := []struct {
		err        error
		wantStatus int
		wantCode   string
	}{
		{master.ErrDuplicateJob, http.StatusConflict, CodeConflict},
		{master.ErrUnknownWorker, http.StatusBadRequest, CodeInvalidRequest},
		{master.ErrDraining, http.StatusServiceUnavailable, CodeUnavailable},
		{errors.New("boom"), http.StatusInternalServerError, CodeInternal},
	}
	for _, c := range cases {
		fb := &fakeBackend{
			enqueue: func(master.JobSpec, master.Profile) (master.Admission, error) {
				return master.Admission{}, c.err
			},
		}
		w := doReq(t, New(fb), http.MethodPost, "/v1/jobs",
			`{"name":"a","algorithm":"mlr","iterations":5}`)
		if w.Code != c.wantStatus {
			t.Errorf("%v: status = %d, want %d", c.err, w.Code, c.wantStatus)
		}
		if e := decodeErr(t, w); e.Code != c.wantCode {
			t.Errorf("%v: code = %q, want %q", c.err, e.Code, c.wantCode)
		}
	}
}

func TestGetJob(t *testing.T) {
	fb := &fakeBackend{jobs: []master.JobView{{
		Name: "a", State: "running", Iteration: 7, Loss: 0.5,
		Workers: []string{"w0", "w1"}, Profiled: true,
	}}}
	s := New(fb)
	w := doReq(t, s, http.MethodGet, "/v1/jobs/a", "")
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d (%s)", w.Code, w.Body.String())
	}
	var j JobResponse
	if err := json.Unmarshal(w.Body.Bytes(), &j); err != nil {
		t.Fatal(err)
	}
	if j.Name != "a" || j.Iteration != 7 || !j.Profiled || len(j.Workers) != 2 {
		t.Errorf("job response = %+v", j)
	}

	w = doReq(t, s, http.MethodGet, "/v1/jobs/nope", "")
	if w.Code != http.StatusNotFound {
		t.Fatalf("unknown job status = %d", w.Code)
	}
	if e := decodeErr(t, w); e.Code != CodeNotFound {
		t.Errorf("error code = %q", e.Code)
	}
}

func TestCancelJob(t *testing.T) {
	fb := &fakeBackend{}
	s := New(fb)
	w := doReq(t, s, http.MethodDelete, "/v1/jobs/a", "")
	if w.Code != http.StatusOK || fb.lastCancel != "a" {
		t.Fatalf("cancel status = %d, backend saw %q", w.Code, fb.lastCancel)
	}

	fb.cancelErr = master.ErrJobFinished
	if w := doReq(t, s, http.MethodDelete, "/v1/jobs/a", ""); w.Code != http.StatusConflict {
		t.Errorf("cancel of finished job status = %d, want 409", w.Code)
	}
	fb.cancelErr = master.ErrUnknownJob
	if w := doReq(t, s, http.MethodDelete, "/v1/jobs/a", ""); w.Code != http.StatusNotFound {
		t.Errorf("cancel of unknown job status = %d, want 404", w.Code)
	}
}

func TestClusterAndHealthz(t *testing.T) {
	fb := &fakeBackend{cluster: master.ClusterView{
		Workers: []string{"w0", "w1"},
		Groups:  []master.GroupView{{Workers: []string{"w0", "w1"}, Jobs: []string{"a", "b"}}},
		Pending: []string{"c"},
	}}
	s := New(fb)
	w := doReq(t, s, http.MethodGet, "/v1/cluster", "")
	if w.Code != http.StatusOK {
		t.Fatalf("cluster status = %d", w.Code)
	}
	var cv ClusterResponse
	if err := json.Unmarshal(w.Body.Bytes(), &cv); err != nil {
		t.Fatal(err)
	}
	if len(cv.Workers) != 2 || len(cv.Groups) != 1 || len(cv.Pending) != 1 {
		t.Errorf("cluster response = %+v", cv)
	}

	w = doReq(t, s, http.MethodGet, "/healthz", "")
	if w.Code != http.StatusOK {
		t.Fatalf("healthz status = %d", w.Code)
	}
	var h HealthResponse
	if err := json.Unmarshal(w.Body.Bytes(), &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Workers != 2 {
		t.Errorf("healthz = %+v", h)
	}
}

func TestMetricsExposition(t *testing.T) {
	fb := &fakeBackend{
		jobs: []master.JobView{
			{Name: "a", State: "running"},
			{Name: "b", State: "running"},
			{Name: "c", State: "pending"},
		},
		cluster: master.ClusterView{
			Workers: []string{"w0", "w1"},
			Groups:  []master.GroupView{{Workers: []string{"w0"}, Jobs: []string{"a"}}},
			Pending: []string{"c"},
		},
		counters: master.Counters{
			AdmittedInitial: 1, AdmittedArrival: 2, HeldPending: 3,
			QueueDrained: 1, Canceled: 1, Preempted: 2, Migrations: 4,
			Recoveries: 5, CheckpointFailures: 6,
		},
		queues: []master.QueueView{{
			Name: "default", Share: 1, QuotaWorkers: 2, UsageWorkers: 1,
			Running: 2, Depth: 1, Admitted: 3, Held: 3, Preempted: 2,
		}},
		comm: metrics.CommSnapshot{
			Pulls: 10, Pushes: 9, PullBytes: 4096, PushBytes: 2048,
			PullSeconds: 1.5, PushSeconds: 0.5,
		},
		comp: metrics.CompSnapshot{
			BlockHits: 40, BlockMisses: 8, ReloadStallSeconds: 0.25,
		},
	}
	s := New(fb)
	// A prior request shows up in the per-route counter.
	doReq(t, s, http.MethodGet, "/v1/jobs", "")
	w := doReq(t, s, http.MethodGet, "/metrics", "")
	if w.Code != http.StatusOK {
		t.Fatalf("metrics status = %d", w.Code)
	}
	if ct := w.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type = %q", ct)
	}
	body := w.Body.String()
	for _, want := range []string{
		`harmony_jobs{state="running"} 2`,
		`harmony_jobs{state="pending"} 1`,
		`harmony_jobs{state="finished"} 0`,
		`harmony_queue_depth{queue="default"} 1`,
		`harmony_queue_share{queue="default"} 1`,
		`harmony_queue_usage_workers{queue="default"} 1`,
		`harmony_queue_admitted_total{queue="default"} 3`,
		`harmony_queue_preempted_total{queue="default"} 2`,
		`harmony_preemptions_total 2`,
		`harmony_workers 2`,
		`harmony_groups 1`,
		`harmony_admissions_total{path="initial"} 1`,
		`harmony_admissions_total{path="arrival"} 2`,
		`harmony_admissions_held_total 3`,
		`harmony_queue_drained_total 1`,
		`harmony_jobs_canceled_total 1`,
		`harmony_migrations_total 4`,
		`harmony_recoveries_total 5`,
		`harmony_checkpoint_failures_total 6`,
		`harmony_utilization{resource="cpu"} 0.75`,
		`harmony_utilization{resource="network"} 0.5`,
		`harmony_comm_ops_total{op="pull"} 10`,
		`harmony_comm_ops_total{op="push"} 9`,
		`harmony_comm_bytes_total{op="pull"} 4096`,
		`harmony_comm_bytes_total{op="push"} 2048`,
		`harmony_comm_seconds_total{op="pull"} 1.5`,
		`harmony_comm_seconds_total{op="push"} 0.5`,
		`harmony_comp_block_cache_total{result="hit"} 40`,
		`harmony_comp_block_cache_total{result="miss"} 8`,
		`harmony_comp_reload_stall_seconds_total 0.25`,
		`harmony_api_requests_total{route="GET /v1/jobs"} 1`,
		"# TYPE harmony_jobs gauge",
		"# TYPE harmony_admissions_total counter",
	} {
		if !strings.Contains(body, want+"\n") && !strings.Contains(body, want) {
			t.Errorf("metrics missing %q\n%s", want, body)
		}
	}
}

func TestPprofFlagGuarded(t *testing.T) {
	// Without EnablePprof the profile routes must not exist.
	s := New(&fakeBackend{})
	if w := doReq(t, s, http.MethodGet, "/debug/pprof/", ""); w.Code != http.StatusNotFound {
		t.Fatalf("pprof served without EnablePprof: %d", w.Code)
	}
	s = New(&fakeBackend{})
	s.EnablePprof()
	if w := doReq(t, s, http.MethodGet, "/debug/pprof/", ""); w.Code != http.StatusOK {
		t.Fatalf("pprof index status = %d", w.Code)
	}
	if w := doReq(t, s, http.MethodGet, "/debug/pprof/cmdline", ""); w.Code != http.StatusOK {
		t.Fatalf("pprof cmdline status = %d", w.Code)
	}
}

func TestMetricsSkipsUtilizationOnStatsError(t *testing.T) {
	fb := &fakeBackend{statsErr: errors.New("worker down")}
	w := doReq(t, New(fb), http.MethodGet, "/metrics", "")
	if w.Code != http.StatusOK {
		t.Fatalf("metrics status = %d", w.Code)
	}
	if strings.Contains(w.Body.String(), "harmony_utilization") {
		t.Error("utilization emitted despite stats error")
	}
}

func TestPSStatsEndpoint(t *testing.T) {
	fb := &fakeBackend{psStats: ps.ClusterStats{Servers: []ps.ServerStats{{
		Name: "w0", Addr: "127.0.0.1:1",
		StatsReply: ps.StatsReply{Jobs: []ps.JobStats{{
			Job: "j", Stripes: []ps.StripeStat{
				{Index: 0, Len: 4, Primary: true, PullOps: 7, PushOps: 3, LockWaitSeconds: 0.5},
			},
		}}},
	}}}}
	w := doReq(t, New(fb), http.MethodGet, "/v1/ps", "")
	if w.Code != http.StatusOK {
		t.Fatalf("ps status = %d: %s", w.Code, w.Body.String())
	}
	var got ps.ClusterStats
	if err := json.Unmarshal(w.Body.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	if len(got.Servers) != 1 || got.Servers[0].Name != "w0" ||
		got.Servers[0].Jobs[0].Stripes[0].PullOps != 7 {
		t.Fatalf("ps body = %+v", got)
	}

	fb.psErr = errors.New("no workers")
	if w := doReq(t, New(fb), http.MethodGet, "/v1/ps", ""); w.Code == http.StatusOK {
		t.Fatalf("ps error path status = %d", w.Code)
	}
}

func TestMetricsStripeSamples(t *testing.T) {
	fb := &fakeBackend{psStats: ps.ClusterStats{Servers: []ps.ServerStats{{
		Name: "w0", Addr: "127.0.0.1:1",
		StatsReply: ps.StatsReply{Jobs: []ps.JobStats{{
			Job: "j", Stripes: []ps.StripeStat{
				{Index: 2, Len: 4, Primary: true, PullOps: 100, PushOps: 50, LockWaitSeconds: 1.5},
			},
		}}},
	}}}}
	w := doReq(t, New(fb), http.MethodGet, "/metrics", "")
	if w.Code != http.StatusOK {
		t.Fatalf("metrics status = %d", w.Code)
	}
	body := w.Body.String()
	for _, want := range []string{
		`harmony_ps_stripe_ops_total{op="pull",server="w0",job="j",stripe="2"} 100`,
		`harmony_ps_stripe_ops_total{op="push",server="w0",job="j",stripe="2"} 50`,
		`harmony_ps_stripe_lock_wait_seconds_total{server="w0",job="j",stripe="2"} 1.5`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q\n%s", want, body)
		}
	}
	// A failing scrape must not take /metrics down with it.
	fb.psErr = errors.New("no workers")
	if w := doReq(t, New(fb), http.MethodGet, "/metrics", ""); w.Code != http.StatusOK {
		t.Fatalf("metrics with ps error = %d", w.Code)
	}
}

func TestHealthzReportsUptimeAndVersion(t *testing.T) {
	s := New(&fakeBackend{})
	w := doReq(t, s, http.MethodGet, "/healthz", "")
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d", w.Code)
	}
	var h HealthResponse
	if err := json.Unmarshal(w.Body.Bytes(), &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Version == "" || h.UptimeSeconds < 0 {
		t.Errorf("health = %+v", h)
	}
}

func TestEventsEndpoint(t *testing.T) {
	f := &fakeBackend{events: []master.Event{
		{Seq: 1, Kind: master.EventAdmitInitial, Job: "a",
			Group:                []string{"w0", "w1"},
			PredictedIterSeconds: 2.5, PredictedCPUUtil: 0.8,
			MeasuredIterSeconds: 2.7},
	}}
	s := New(f)
	w := doReq(t, s, http.MethodGet, "/v1/events", "")
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d", w.Code)
	}
	var out EventsResponse
	if err := json.Unmarshal(w.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Events) != 1 {
		t.Fatalf("events = %+v", out.Events)
	}
	e := out.Events[0]
	if e.Kind != master.EventAdmitInitial || e.PredictedIterSeconds != 2.5 ||
		e.MeasuredIterSeconds != 2.7 {
		t.Errorf("event round-trip = %+v", e)
	}
	// An empty journal still yields a JSON array, not null.
	w = doReq(t, s, http.MethodGet, "/v1/events", "")
	f.events = nil
	w = doReq(t, s, http.MethodGet, "/v1/events", "")
	if !strings.Contains(w.Body.String(), `"events":[]`) {
		t.Errorf("empty journal body = %s", w.Body.String())
	}
}

func TestEventsFilters(t *testing.T) {
	f := &fakeBackend{events: []master.Event{
		{Seq: 1, Kind: master.EventAdmitInitial, Job: "a"},
		{Seq: 2, Kind: master.EventHold, Job: "b"},
		{Seq: 3, Kind: master.EventAdmitArrival, Job: "c"},
	}}
	s := New(f)
	cases := []struct {
		query string
		want  []uint64
	}{
		{"", []uint64{1, 2, 3}},
		{"?since=1", []uint64{2, 3}},
		{"?since=3", nil},
		{"?kind=hold", []uint64{2}},
		{"?since=2&kind=admit_arrival", []uint64{3}},
	}
	for _, c := range cases {
		w := doReq(t, s, http.MethodGet, "/v1/events"+c.query, "")
		if w.Code != http.StatusOK {
			t.Fatalf("%q: status = %d", c.query, w.Code)
		}
		var out EventsResponse
		if err := json.Unmarshal(w.Body.Bytes(), &out); err != nil {
			t.Fatal(err)
		}
		var got []uint64
		for _, e := range out.Events {
			got = append(got, e.Seq)
		}
		if len(got) != len(c.want) {
			t.Errorf("%q: seqs = %v, want %v", c.query, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("%q: seqs = %v, want %v", c.query, got, c.want)
				break
			}
		}
	}
	w := doReq(t, s, http.MethodGet, "/v1/events?since=nope", "")
	if w.Code != http.StatusBadRequest {
		t.Errorf("bad since: status = %d, want 400", w.Code)
	}
}

// replayableSnapshot is a one-job capture whose single journaled
// admission can be re-modeled, so a self-replay produces a non-empty
// calibration report.
func replayableSnapshot() *master.Snapshot {
	return &master.Snapshot{
		SchemaVersion: master.SnapshotSchemaVersion,
		Workers:       []string{"w0", "w1"},
		Jobs: []master.SnapshotJob{{
			Name: "a", State: "running", Algorithm: "MLR",
			Iterations: 100, Iteration: 5, Workers: []string{"w0", "w1"},
			CompSeconds: 8, NetSeconds: 1, ModelGB: 0.5, WorkGB: 0.3,
			MeasuredIterSeconds: 5.2,
		}},
		Journal: []master.Event{{
			Seq: 1, Kind: master.EventAdmitInitial, Job: "a",
			Group:                []string{"w0", "w1"},
			PredictedIterSeconds: 5, MeasuredIterSeconds: 5.2,
		}},
	}
}

func TestSnapshotEndpoint(t *testing.T) {
	f := &fakeBackend{snap: replayableSnapshot()}
	s := New(f)
	w := doReq(t, s, http.MethodGet, "/v1/snapshot", "")
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", w.Code, w.Body.String())
	}
	var snap master.Snapshot
	if err := json.Unmarshal(w.Body.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.SchemaVersion != master.SnapshotSchemaVersion ||
		len(snap.Jobs) != 1 || len(snap.Journal) != 1 {
		t.Errorf("snapshot round-trip = %+v", snap)
	}

	// A capture that fails its own schema check must not leave the
	// process as a 200.
	f.snap.SchemaVersion = 99
	w = doReq(t, s, http.MethodGet, "/v1/snapshot", "")
	if w.Code != http.StatusInternalServerError {
		t.Errorf("invalid capture: status = %d, want 500", w.Code)
	}
}

func TestReplayEndpointFeedsMetrics(t *testing.T) {
	f := &fakeBackend{snap: replayableSnapshot()}
	s := New(f)

	// Before any replay the model-error gauges are absent.
	w := doReq(t, s, http.MethodGet, "/metrics", "")
	if strings.Contains(w.Body.String(), "harmony_model_error_ratio") {
		t.Fatalf("model gauges present before replay:\n%s", w.Body.String())
	}

	w = doReq(t, s, http.MethodPost, "/v1/replay", "")
	if w.Code != http.StatusOK {
		t.Fatalf("replay: status = %d: %s", w.Code, w.Body.String())
	}
	var rep replay.Report
	if err := json.Unmarshal(w.Body.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Overall.Modeled != 1 || len(rep.Groups) != 1 {
		t.Fatalf("self-replay report = %+v", rep.Overall)
	}

	w = doReq(t, s, http.MethodGet, "/metrics", "")
	body := w.Body.String()
	for _, want := range []string{
		`harmony_model_error_ratio{group="w0,w1",kind="admit_initial"}`,
		"harmony_model_drift_ratio",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics after replay missing %q:\n%s", want, body)
		}
	}

	if w := doReq(t, s, http.MethodPost, "/v1/replay", `{`); w.Code != http.StatusBadRequest {
		t.Errorf("malformed body: status = %d, want 400", w.Code)
	}
	if w := doReq(t, s, http.MethodPost, "/v1/replay",
		`{"queues":"bad spec;;;"}`); w.Code != http.StatusBadRequest {
		t.Errorf("bad queue override: status = %d, want 400", w.Code)
	}
}

func TestTraceEndpoint(t *testing.T) {
	f := &fakeBackend{traced: true, spans: []obs.TaggedSpan{
		{Span: obs.Span{Seq: 1, Phase: obs.PhaseComp, Job: "a",
			Start: 1_000_000, End: 2_000_000}, Machine: "w0", Group: "w0"},
	}}
	s := New(f)
	w := doReq(t, s, http.MethodGet, "/v1/trace", "")
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d", w.Code)
	}
	if ct := w.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("content type = %q", ct)
	}
	var tr struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &tr); err != nil {
		t.Fatalf("trace not JSON: %v", err)
	}
	if len(tr.TraceEvents) == 0 {
		t.Error("no trace events rendered")
	}
	// Tracing off: still valid, empty trace.
	f.traced, f.spans = false, nil
	w = doReq(t, s, http.MethodGet, "/v1/trace", "")
	if err := json.Unmarshal(w.Body.Bytes(), &tr); err != nil || w.Code != http.StatusOK {
		t.Errorf("disabled trace: code %d err %v", w.Code, err)
	}
}

func TestMetricsPhaseHistogramsAndOverlap(t *testing.T) {
	f := &fakeBackend{traced: true, overlap: map[string]float64{"w0,w1": 0.4}}
	var h metrics.Histogram
	h.Observe(0.01)
	f.phaseHist[obs.PhaseComp] = h.Snapshot()
	s := New(f)
	w := doReq(t, s, http.MethodGet, "/metrics", "")
	body := w.Body.String()
	for _, want := range []string{
		"# TYPE harmony_phase_seconds histogram",
		`harmony_phase_seconds_bucket{phase="comp",le="+Inf"} 1`,
		`harmony_phase_seconds_count{phase="comp"} 1`,
		`harmony_phase_seconds_count{phase="pull"} 0`,
		`harmony_group_overlap_ratio{group="w0,w1"} 0.4`,
		`harmony_build_info{version="`,
		"harmony_uptime_seconds",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("missing %q in /metrics:\n%s", want, body)
		}
	}

	// Tracing off: histogram families and overlap gauges disappear, build
	// info stays.
	s2 := New(&fakeBackend{})
	body2 := doReq(t, s2, http.MethodGet, "/metrics", "").Body.String()
	if strings.Contains(body2, "harmony_phase_seconds") {
		t.Error("phase histograms rendered with tracing off")
	}
	if !strings.Contains(body2, "harmony_build_info") {
		t.Error("build info missing with tracing off")
	}
}
