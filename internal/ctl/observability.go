package ctl

import (
	"net/http"
	"sort"
	"strings"
	"time"

	"harmony/internal/master"
	"harmony/internal/metrics"
	"harmony/internal/obs"
	"harmony/internal/ps"
)

// psStripeTopK bounds per-stripe series cardinality on /metrics: the K
// hottest stripes cluster-wide get individual series, the rest fold
// into a per-server stripe="other" aggregate.
const psStripeTopK = 16

// processStart anchors the /healthz uptime report.
var processStart = time.Now()

// jobStates is the fixed label set of harmony_jobs; every state is
// always emitted so dashboards see zeros instead of gaps.
var jobStates = []master.JobStatus{
	master.StatusPending,
	master.StatusRunning,
	master.StatusPaused,
	master.StatusFinished,
	master.StatusCanceled,
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	cv := s.b.Cluster()
	writeJSON(w, http.StatusOK, HealthResponse{
		Status:        "ok",
		Workers:       len(cv.Workers),
		Version:       obs.Version,
		UptimeSeconds: time.Since(processStart).Seconds(),
	})
}

// handleEvents serves the scheduler decision journal: every admission,
// hold, regroup, recovery and completion with the model's predicted
// T_itr/U beside the measured values. ?since=<seq> returns only events
// after that sequence number (incremental polling pays for its delta,
// not the whole ring); ?kind= filters to one decision kind.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	since, kind, ok := parseEventsQuery(w, r)
	if !ok {
		return
	}
	evs := s.b.EventsSince(since, kind)
	if evs == nil {
		evs = []master.Event{}
	}
	writeJSON(w, http.StatusOK, EventsResponse{Events: evs})
}

// handleTrace collects spans from the workers (best effort: a worker
// mid-restart is skipped, never an error) and renders them as Chrome
// trace-event JSON loadable in Perfetto. With tracing disabled the body
// is a valid empty trace.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	spans := s.b.CollectSpans()
	w.Header().Set("Content-Type", "application/json")
	_ = obs.WriteChromeTrace(w, spans)
}

// handlePSStats serves the merged per-stripe parameter-server view —
// what the hot-stripe rebalancer sees (`harmonyctl ps-stats` renders
// it as a table).
func (s *Server) handlePSStats(w http.ResponseWriter, r *http.Request) {
	cs, err := s.b.PSStats()
	if err != nil {
		writeBackendError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, cs)
}

// handleMetrics renders the control-plane inventory in the Prometheus
// text exposition format: job counts by state, queue depth, live groups,
// admission/migration/checkpoint counters, per-resource worker
// utilization, and API request counts.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	jobs := s.b.ListJobs()
	cv := s.b.Cluster()
	c := s.b.Counters()

	byState := make(map[string]int)
	for _, j := range jobs {
		byState[j.State]++
	}
	samples := make([]metrics.Sample, 0, 32)
	for _, st := range jobStates {
		samples = append(samples, metrics.Sample{
			Name:  `harmony_jobs{state="` + st.String() + `"}`,
			Help:  "Jobs known to the master, by lifecycle state.",
			Type:  metrics.PromGauge,
			Value: float64(byState[st.String()]),
		})
	}
	samples = append(samples,
		metrics.Sample{Name: "harmony_workers",
			Help: "Registered live workers.",
			Type: metrics.PromGauge, Value: float64(len(cv.Workers))},
		metrics.Sample{Name: "harmony_groups",
			Help: "Live co-location groups derived from running jobs.",
			Type: metrics.PromGauge, Value: float64(len(cv.Groups))},
		metrics.Sample{Name: `harmony_admissions_total{path="initial"}`,
			Help: "Jobs admitted, by path: initial (idle cluster) or arrival (placed into a running group by the IV-B4 rule).",
			Type: metrics.PromCounter, Value: float64(c.AdmittedInitial)},
		metrics.Sample{Name: `harmony_admissions_total{path="arrival"}`,
			Type: metrics.PromCounter, Value: float64(c.AdmittedArrival)},
		metrics.Sample{Name: "harmony_admissions_held_total",
			Help: "Submissions the arrival rule held pending.",
			Type: metrics.PromCounter, Value: float64(c.HeldPending)},
		metrics.Sample{Name: "harmony_queue_drained_total",
			Help: "Pending jobs later admitted by a queue drain.",
			Type: metrics.PromCounter, Value: float64(c.QueueDrained)},
		metrics.Sample{Name: "harmony_jobs_canceled_total",
			Help: "Jobs canceled through the control plane.",
			Type: metrics.PromCounter, Value: float64(c.Canceled)},
		metrics.Sample{Name: "harmony_migrations_total",
			Help: "Pause/resume group migrations (regroup decisions applied).",
			Type: metrics.PromCounter, Value: float64(c.Migrations)},
		metrics.Sample{Name: "harmony_recoveries_total",
			Help: "Failure-triggered job restarts from background checkpoints.",
			Type: metrics.PromCounter, Value: float64(c.Recoveries)},
		metrics.Sample{Name: "harmony_preemptions_total",
			Help: "Running jobs the fair scheduler reclaimed and requeued as resumable held jobs.",
			Type: metrics.PromCounter, Value: float64(c.Preempted)},
		metrics.Sample{Name: "harmony_checkpoint_failures_total",
			Help: "Background model snapshots that failed and were dropped.",
			Type: metrics.PromCounter, Value: float64(c.CheckpointFailures)},
	)
	// Net-aware placement families (DESIGN.md §14), present only for
	// groups whose comm phases the scheduler solved. Group labels are the
	// sorted comma-joined worker names, matching harmony_group_overlap_ratio.
	for _, g := range cv.Groups {
		if !g.Interleaved {
			continue
		}
		label := strings.Join(g.Workers, ",")
		samples = append(samples, metrics.Sample{
			Name: `harmony_group_compatibility{group="` + label + `"}`,
			Help: "Predicted (trace-calibrated when available) link compatibility of each interleaved co-location group, in [0,1].",
			Type: metrics.PromGauge, Value: g.Compatibility,
		})
		jobs := make([]string, 0, len(g.PhaseOffsets))
		for j := range g.PhaseOffsets {
			jobs = append(jobs, j)
		}
		sort.Strings(jobs)
		for _, j := range jobs {
			samples = append(samples, metrics.Sample{
				Name: `harmony_phase_offset_seconds{job="` + j + `"}`,
				Help: "Solved comm-phase offset of each job on its group's shared link.",
				Type: metrics.PromGauge, Value: g.PhaseOffsets[j],
			})
		}
	}
	// Per-queue fair-scheduler families (DESIGN.md §13). A single-tenant
	// deployment reports everything under queue="default", which is the
	// compatibility view of the pre-fair aggregate gauges.
	for _, q := range s.b.Queues() {
		l := `{queue="` + q.Name + `"}`
		samples = append(samples,
			metrics.Sample{Name: "harmony_queue_depth" + l,
				Help: "Jobs held pending in the admission queue, by queue.",
				Type: metrics.PromGauge, Value: float64(q.Depth)},
			metrics.Sample{Name: "harmony_queue_share" + l,
				Help: "Resolved fraction of the cluster guaranteed to the queue.",
				Type: metrics.PromGauge, Value: q.Share},
			metrics.Sample{Name: "harmony_queue_quota_workers" + l,
				Help: "Queue guarantee in whole workers on the current cluster.",
				Type: metrics.PromGauge, Value: float64(q.QuotaWorkers)},
			metrics.Sample{Name: "harmony_queue_usage_workers" + l,
				Help: "Workers occupied by the queue's deployed jobs.",
				Type: metrics.PromGauge, Value: float64(q.UsageWorkers)},
			metrics.Sample{Name: "harmony_queue_running" + l,
				Help: "Deployed jobs per queue.",
				Type: metrics.PromGauge, Value: float64(q.Running)},
			metrics.Sample{Name: "harmony_queue_admitted_total" + l,
				Help: "Jobs admitted per queue (initial, arrival, and drain paths).",
				Type: metrics.PromCounter, Value: float64(q.Admitted)},
			metrics.Sample{Name: "harmony_queue_held_total" + l,
				Help: "Submissions held pending, by queue.",
				Type: metrics.PromCounter, Value: float64(q.Held)},
			metrics.Sample{Name: "harmony_queue_preempted_total" + l,
				Help: "Jobs preempted out of the queue's running set.",
				Type: metrics.PromCounter, Value: float64(q.Preempted)},
		)
	}
	// Per-resource executor utilization, best effort: a scrape must not
	// fail because a worker is mid-restart.
	if cpu, net, err := s.b.WorkerStats(); err == nil {
		samples = append(samples,
			metrics.Sample{
				Name: `harmony_utilization{resource="` + strings.ToLower(metrics.CPU.String()) + `"}`,
				Help: "Mean worker executor busy fraction per resource.",
				Type: metrics.PromGauge, Value: cpu},
			metrics.Sample{
				Name: `harmony_utilization{resource="` + strings.ToLower(metrics.Net.String()) + `"}`,
				Type: metrics.PromGauge, Value: net},
		)
	}
	// Data-plane traffic (pull/push ops, bytes, latency) and compute-path
	// health (block-cache hit/miss, reload-stall seconds), aggregated
	// across the cluster: this process plus every worker process.
	samples = append(samples, metrics.CommSamples(s.b.CommStats())...)
	samples = append(samples, metrics.CompSamples(s.b.CompStats())...)
	// Per-stripe PS load, bounded to the hottest stripes plus per-server
	// aggregates; best effort like the other worker scrapes.
	if cs, err := s.b.PSStats(); err == nil {
		samples = append(samples, ps.StripeSamples(cs, psStripeTopK)...)
	}
	samples = append(samples,
		metrics.Sample{Name: `harmony_build_info{version="` + obs.Version + `"}`,
			Help: "Build metadata; the value is always 1.",
			Type: metrics.PromGauge, Value: 1},
		metrics.Sample{Name: "harmony_uptime_seconds",
			Help: "Seconds since this control plane started.",
			Type: metrics.PromGauge, Value: time.Since(processStart).Seconds()},
	)
	// Phase latency histograms and measured COMP/COMM overlap, present
	// only when the master collects traces (-trace).
	if hist, ok := s.b.PhaseStats(); ok {
		for p := obs.Phase(0); p < obs.NumPhases; p++ {
			samples = metrics.AppendHistogram(samples, "harmony_phase_seconds",
				"Latency of worker subtask phases, by phase.",
				`phase="`+p.String()+`"`, hist[p])
		}
		overlap := s.b.MeasuredOverlap()
		groups := make([]string, 0, len(overlap))
		for g := range overlap {
			groups = append(groups, g)
		}
		sort.Strings(groups)
		for _, g := range groups {
			samples = append(samples, metrics.Sample{
				Name: `harmony_group_overlap_ratio{group="` + g + `"}`,
				Help: "Measured fraction of machine busy time where COMP and COMM subtasks overlapped, per co-location group.",
				Type: metrics.PromGauge, Value: overlap[g],
			})
		}
	}
	// Model calibration gauges from the last POST /v1/replay: the mean
	// |predicted − measured| / measured iteration-time error per
	// (worker set, decision kind), from re-running the §IV-B2 model over
	// the journaled decision sequence (DESIGN.md §16). Absent until the
	// first self-replay.
	s.mu.Lock()
	rep := s.lastReplay
	s.mu.Unlock()
	if rep != nil {
		for _, g := range rep.Groups {
			samples = append(samples, metrics.Sample{
				Name: `harmony_model_error_ratio{group="` + g.Group + `",kind="` + g.Kind + `"}`,
				Help: "Mean relative iteration-time prediction error per co-location group and decision kind, from the last journal self-replay.",
				Type: metrics.PromGauge, Value: g.MeanIterErrRatio,
			})
		}
		samples = append(samples, metrics.Sample{
			Name: "harmony_model_drift_ratio",
			Help: "Mean relative drift between decision-time predictions and the current model's replayed predictions.",
			Type: metrics.PromGauge, Value: rep.Overall.MeanDriftRatio,
		})
	}
	s.mu.Lock()
	for _, route := range routes {
		samples = append(samples, metrics.Sample{
			Name:  `harmony_api_requests_total{route="` + route + `"}`,
			Help:  "Control-plane API requests served, by route.",
			Type:  metrics.PromCounter,
			Value: float64(s.requests[route]),
		})
	}
	s.mu.Unlock()

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = metrics.WritePrometheus(w, samples)
}
