package ctl

import (
	"net/http"
	"strings"

	"harmony/internal/master"
	"harmony/internal/metrics"
)

// jobStates is the fixed label set of harmony_jobs; every state is
// always emitted so dashboards see zeros instead of gaps.
var jobStates = []master.JobStatus{
	master.StatusPending,
	master.StatusRunning,
	master.StatusPaused,
	master.StatusFinished,
	master.StatusCanceled,
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	cv := s.b.Cluster()
	writeJSON(w, http.StatusOK, HealthResponse{Status: "ok", Workers: len(cv.Workers)})
}

// handleMetrics renders the control-plane inventory in the Prometheus
// text exposition format: job counts by state, queue depth, live groups,
// admission/migration/checkpoint counters, per-resource worker
// utilization, and API request counts.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	jobs := s.b.ListJobs()
	cv := s.b.Cluster()
	c := s.b.Counters()

	byState := make(map[string]int)
	for _, j := range jobs {
		byState[j.State]++
	}
	samples := make([]metrics.Sample, 0, 32)
	for _, st := range jobStates {
		samples = append(samples, metrics.Sample{
			Name:  `harmony_jobs{state="` + st.String() + `"}`,
			Help:  "Jobs known to the master, by lifecycle state.",
			Type:  metrics.PromGauge,
			Value: float64(byState[st.String()]),
		})
	}
	samples = append(samples,
		metrics.Sample{Name: "harmony_queue_depth",
			Help: "Jobs held pending in the admission queue.",
			Type: metrics.PromGauge, Value: float64(len(cv.Pending))},
		metrics.Sample{Name: "harmony_workers",
			Help: "Registered live workers.",
			Type: metrics.PromGauge, Value: float64(len(cv.Workers))},
		metrics.Sample{Name: "harmony_groups",
			Help: "Live co-location groups derived from running jobs.",
			Type: metrics.PromGauge, Value: float64(len(cv.Groups))},
		metrics.Sample{Name: `harmony_admissions_total{path="initial"}`,
			Help: "Jobs admitted, by path: initial (idle cluster) or arrival (placed into a running group by the IV-B4 rule).",
			Type: metrics.PromCounter, Value: float64(c.AdmittedInitial)},
		metrics.Sample{Name: `harmony_admissions_total{path="arrival"}`,
			Type: metrics.PromCounter, Value: float64(c.AdmittedArrival)},
		metrics.Sample{Name: "harmony_admissions_held_total",
			Help: "Submissions the arrival rule held pending.",
			Type: metrics.PromCounter, Value: float64(c.HeldPending)},
		metrics.Sample{Name: "harmony_queue_drained_total",
			Help: "Pending jobs later admitted by a queue drain.",
			Type: metrics.PromCounter, Value: float64(c.QueueDrained)},
		metrics.Sample{Name: "harmony_jobs_canceled_total",
			Help: "Jobs canceled through the control plane.",
			Type: metrics.PromCounter, Value: float64(c.Canceled)},
		metrics.Sample{Name: "harmony_migrations_total",
			Help: "Pause/resume group migrations (regroup decisions applied).",
			Type: metrics.PromCounter, Value: float64(c.Migrations)},
		metrics.Sample{Name: "harmony_recoveries_total",
			Help: "Failure-triggered job restarts from background checkpoints.",
			Type: metrics.PromCounter, Value: float64(c.Recoveries)},
		metrics.Sample{Name: "harmony_checkpoint_failures_total",
			Help: "Background model snapshots that failed and were dropped.",
			Type: metrics.PromCounter, Value: float64(c.CheckpointFailures)},
	)
	// Per-resource executor utilization, best effort: a scrape must not
	// fail because a worker is mid-restart.
	if cpu, net, err := s.b.WorkerStats(); err == nil {
		samples = append(samples,
			metrics.Sample{
				Name: `harmony_utilization{resource="` + strings.ToLower(metrics.CPU.String()) + `"}`,
				Help: "Mean worker executor busy fraction per resource.",
				Type: metrics.PromGauge, Value: cpu},
			metrics.Sample{
				Name: `harmony_utilization{resource="` + strings.ToLower(metrics.Net.String()) + `"}`,
				Type: metrics.PromGauge, Value: net},
		)
	}
	// Data-plane traffic (pull/push ops, bytes, latency) and compute-path
	// health (block-cache hit/miss, reload-stall seconds), aggregated
	// across the cluster: this process plus every worker process.
	samples = append(samples, metrics.CommSamples(s.b.CommStats())...)
	samples = append(samples, metrics.CompSamples(s.b.CompStats())...)
	s.mu.Lock()
	for _, route := range routes {
		samples = append(samples, metrics.Sample{
			Name:  `harmony_api_requests_total{route="` + route + `"}`,
			Help:  "Control-plane API requests served, by route.",
			Type:  metrics.PromCounter,
			Value: float64(s.requests[route]),
		})
	}
	s.mu.Unlock()

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = metrics.WritePrometheus(w, samples)
}
