package workload

import (
	"fmt"
	"sort"
)

// profile is the calibrated per-(app, dataset) cost model at the reference
// DoP. The ten hyper-parameter variants scale computation (and, where a
// hyper-parameter grows the model, communication) around this base.
type profile struct {
	app  App
	data Dataset
	// baseComp is CompMachineSeconds for variant multiplier 1.0.
	baseComp float64
	// baseNet is NetSeconds for variant multiplier 1.0.
	baseNet float64
	// pullFrac splits baseNet into PULL and PUSH.
	pullFrac float64
	// hyperName is the hyper-parameter that the ten variants sweep.
	hyperName string
	// netTracksHyper is true when the hyper-parameter grows the model
	// (e.g. MLR's class count) so communication scales with computation.
	netTracksHyper bool
	// workGB is the per-machine working memory.
	workGB float64
}

// The calibrated profiles. Base communication times follow from model
// sizes over the 1.1 Gbps links of the m4.2xlarge instances
// (PULL+PUSH ≈ 2 × model bytes / link bandwidth, plus sparse-update
// overheads for LDA); base computation times are set so that the
// computation ratios at DoP 16 reproduce the spreads of Fig. 2 and
// Fig. 9b: NMF computation-heavy, Lasso communication-heavy, MLR and LDA
// in between.
// Communication times include per-request overheads beyond raw model
// bytes (connection handling, sparse-update framing), which is why the
// chattier applications sit well above the bandwidth-only lower bound;
// the mix balances computation against communication at DoP ~15-20,
// matching the group-DoP distribution of Fig. 12a.
var profiles = []profile{
	{app: NMF, data: Netflix64x, baseComp: 1360, baseNet: 50, pullFrac: 0.5, hyperName: "rank", workGB: 0.6},
	{app: NMF, data: Netflix128x, baseComp: 3500, baseNet: 120, pullFrac: 0.5, hyperName: "rank", workGB: 1.0},
	{app: LDA, data: PubMed, baseComp: 1960, baseNet: 160, pullFrac: 0.45, hyperName: "topics", workGB: 0.8},
	{app: LDA, data: NYTimes, baseComp: 1440, baseNet: 80, pullFrac: 0.45, hyperName: "topics", workGB: 0.6},
	{app: MLR, data: Synth78, baseComp: 6530, baseNet: 280, pullFrac: 0.5, hyperName: "classes", netTracksHyper: true, workGB: 1.4},
	{app: MLR, data: Synth155, baseComp: 6850, baseNet: 420, pullFrac: 0.5, hyperName: "classes", netTracksHyper: true, workGB: 2.4},
	{app: Lasso, data: Synth78, baseComp: 930, baseNet: 200, pullFrac: 0.55, hyperName: "lambda", workGB: 1.4},
	{app: Lasso, data: Synth155, baseComp: 1400, baseNet: 380, pullFrac: 0.55, hyperName: "lambda", workGB: 2.4},
}

// VariantsPerProfile is the number of hyper-parameter settings per
// (app, dataset) pair; 4 apps × 2 datasets × 10 hyper-parameters gives the
// 80 job configurations of §V-B.
const VariantsPerProfile = 10

// compMuls spreads the ten hyper-parameter variants across a ~3.6× range
// of computational cost, which yields the 1–20 minute iteration-time
// spread of Fig. 9a.
var compMuls = [VariantsPerProfile]float64{
	0.50, 0.65, 0.80, 0.90, 1.00, 1.10, 1.25, 1.40, 1.60, 1.80,
}

// iterCounts staggers convergence lengths across variants; combined with
// iteration times this spreads job durations without any two variants of
// a profile being identical.
var iterCounts = [VariantsPerProfile]int{
	64, 48, 72, 40, 56, 80, 44, 68, 52, 60,
}

// Base returns the 80-job base workload of §V-B: every profile crossed
// with every hyper-parameter variant. Job IDs are stable across calls.
func Base() []Spec {
	specs := make([]Spec, 0, len(profiles)*VariantsPerProfile)
	for _, p := range profiles {
		for v := 0; v < VariantsPerProfile; v++ {
			specs = append(specs, makeSpec(p, v))
		}
	}
	return specs
}

func makeSpec(p profile, v int) Spec {
	mul := compMuls[v]
	net := p.baseNet
	if p.netTracksHyper {
		// Hyper-parameters that grow the model also grow the
		// parameter traffic, but sub-linearly: gradient sparsity
		// rises with model size.
		net *= 0.6 + 0.4*mul
	}
	return Spec{
		ID:                 fmt.Sprintf("%s-%s-h%d", p.app, p.data.Name, v),
		App:                p.app,
		Data:               p.data,
		Hyper:              fmt.Sprintf("%s=%d", p.hyperName, v),
		CompMachineSeconds: p.baseComp * mul,
		NetSeconds:         net,
		PullFrac:           p.pullFrac,
		Iterations:         iterCounts[v],
		WorkGB:             p.workGB,
	}
}

// CompIntensive returns the 60 jobs of the base workload with the highest
// computation-to-communication ratio at the reference DoP (§V-D,
// "computation-intensive workload").
func CompIntensive() []Spec { return topByCompRatio(Base(), 60, true) }

// CommIntensive returns the 60 jobs with the lowest computation ratio
// (§V-D, "communication-intensive workload").
func CommIntensive() []Spec { return topByCompRatio(Base(), 60, false) }

func topByCompRatio(specs []Spec, n int, descending bool) []Spec {
	sorted := make([]Spec, len(specs))
	copy(sorted, specs)
	sort.SliceStable(sorted, func(i, j int) bool {
		ri, rj := sorted[i].CompRatioAt(ReferenceDoP), sorted[j].CompRatioAt(ReferenceDoP)
		if descending {
			return ri > rj
		}
		return ri < rj
	})
	if n > len(sorted) {
		n = len(sorted)
	}
	return sorted[:n]
}

// Fig2Jobs returns the four single-job workloads of Fig. 2: MLR with 16K
// and 8K classes, and LDA on PubMed and NYTimes.
func Fig2Jobs() []Spec {
	mlr := profiles[4] // MLR/Synth78
	lda1 := profiles[2]
	lda2 := profiles[3]
	j16k := makeSpec(mlr, 9) // largest class count
	j16k.ID, j16k.Hyper = "MLR-16K", "classes=16K"
	j8k := makeSpec(mlr, 4)
	j8k.ID, j8k.Hyper = "MLR-8K", "classes=8K"
	jp := makeSpec(lda1, 5)
	jp.ID = "LDA-PubMed"
	jn := makeSpec(lda2, 5)
	jn.ID = "LDA-NYTimes"
	return []Spec{j16k, j8k, jp, jn}
}

// Fig3Job returns the single MLR job swept across 4/8/16/32 machines in
// Fig. 3.
func Fig3Job() Spec {
	s := makeSpec(profiles[4], 5)
	s.ID = "MLR-sweep"
	return s
}

// Fig4Jobs returns the NMF, Lasso and MLR jobs co-located in Fig. 4.
// Their combined heap footprint at DoP 16 exceeds a 32 GB machine, which
// is what produces the out-of-memory bar for the three-job co-location.
func Fig4Jobs() (nmf, lasso, mlr Spec) {
	nmf = makeSpec(profiles[0], 5)
	nmf.ID = "NMF-fig4"
	lasso = makeSpec(profiles[6], 5)
	lasso.ID = "Lasso-fig4"
	mlr = makeSpec(profiles[4], 5)
	mlr.ID = "MLR-fig4"
	return nmf, lasso, mlr
}

// ReloadJobs returns the eight jobs (4 apps × 2 datasets, middle
// hyper-parameter) of the dynamic-data-reloading micro-benchmark (§V-G).
func ReloadJobs() []Spec {
	specs := make([]Spec, 0, len(profiles))
	for _, p := range profiles {
		s := makeSpec(p, 5)
		s.ID = "reload-" + s.ID
		specs = append(specs, s)
	}
	return specs
}

// Small returns the first n jobs of the base workload, reordered so that
// applications interleave; useful for fast tests.
func Small(n int) []Spec {
	base := Base()
	// Interleave across profiles: take variant v of each profile in turn.
	var out []Spec
	for v := 0; v < VariantsPerProfile && len(out) < n; v++ {
		for p := 0; p < len(profiles) && len(out) < n; p++ {
			out = append(out, base[p*VariantsPerProfile+v])
		}
	}
	return out
}
