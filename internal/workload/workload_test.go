package workload

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestAppString(t *testing.T) {
	tests := []struct {
		app  App
		want string
	}{
		{NMF, "NMF"},
		{LDA, "LDA"},
		{MLR, "MLR"},
		{Lasso, "Lasso"},
		{App(99), "App(99)"},
	}
	for _, tt := range tests {
		if got := tt.app.String(); got != tt.want {
			t.Errorf("App(%d).String() = %q, want %q", int(tt.app), got, tt.want)
		}
	}
}

func TestBaseWorkloadSize(t *testing.T) {
	base := Base()
	if len(base) != 80 {
		t.Fatalf("Base() returned %d jobs, want 80 (4 apps x 2 datasets x 10 hypers)", len(base))
	}
	seen := make(map[string]bool, len(base))
	apps := make(map[App]int)
	for _, s := range base {
		if err := s.Validate(); err != nil {
			t.Errorf("invalid spec: %v", err)
		}
		if seen[s.ID] {
			t.Errorf("duplicate job ID %q", s.ID)
		}
		seen[s.ID] = true
		apps[s.App]++
	}
	for _, app := range []App{NMF, LDA, MLR, Lasso} {
		if apps[app] != 20 {
			t.Errorf("app %s has %d jobs, want 20", app, apps[app])
		}
	}
}

func TestBaseWorkloadDeterministic(t *testing.T) {
	a, b := Base(), Base()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("Base() not deterministic at index %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// TestFig9IterationTimeSpread checks that iteration times at the reference
// DoP cover the 1–20 minute range of Fig. 9a.
func TestFig9IterationTimeSpread(t *testing.T) {
	minItr, maxItr := math.Inf(1), math.Inf(-1)
	for _, s := range Base() {
		itr := s.IterSecondsAt(ReferenceDoP) / 60 // minutes
		minItr = math.Min(minItr, itr)
		maxItr = math.Max(maxItr, itr)
	}
	if minItr > 3 {
		t.Errorf("fastest iteration %.1f min, want some under 3 min (Fig. 9a)", minItr)
	}
	if maxItr < 10 || maxItr > 25 {
		t.Errorf("slowest iteration %.1f min, want in [10, 25] min (Fig. 9a tops near 20)", maxItr)
	}
}

// TestFig9CompRatioSpread checks that computation ratios cover a wide
// range, as in Fig. 9b.
func TestFig9CompRatioSpread(t *testing.T) {
	var low, high int
	for _, s := range Base() {
		r := s.CompRatioAt(ReferenceDoP)
		if r < 0 || r > 1 {
			t.Fatalf("%s comp ratio %.2f outside [0,1]", s.ID, r)
		}
		if r < 0.45 {
			low++
		}
		if r > 0.65 {
			high++
		}
	}
	if low < 10 {
		t.Errorf("only %d jobs with comp ratio < 0.45, want >= 10 (communication-heavy tail)", low)
	}
	if high < 10 {
		t.Errorf("only %d jobs with comp ratio > 0.65, want >= 10 (computation-heavy tail)", high)
	}
}

func TestEq2Scaling(t *testing.T) {
	s := Fig3Job()
	// Tcpu must scale exactly as 1/m (Eq. 2).
	t4, t8, t32 := s.TcpuAt(4), s.TcpuAt(8), s.TcpuAt(32)
	if math.Abs(t4/t8-2) > 1e-9 {
		t.Errorf("Tcpu(4)/Tcpu(8) = %.4f, want 2", t4/t8)
	}
	if math.Abs(t8/t32-4) > 1e-9 {
		t.Errorf("Tcpu(8)/Tcpu(32) = %.4f, want 4", t8/t32)
	}
	// Tnet must stay roughly constant (within 15% across 4..32 machines).
	n4, n32 := s.TnetAt(4), s.TnetAt(32)
	if ratio := n32 / n4; ratio < 1 || ratio > 1.15 {
		t.Errorf("Tnet(32)/Tnet(4) = %.3f, want mild growth within [1, 1.15]", ratio)
	}
}

func TestPullPushSplit(t *testing.T) {
	for _, s := range Base()[:8] {
		pull, push, net := s.TpullAt(16), s.TpushAt(16), s.TnetAt(16)
		if math.Abs(pull+push-net) > 1e-9 {
			t.Errorf("%s: pull %.2f + push %.2f != net %.2f", s.ID, pull, push, net)
		}
	}
}

func TestMemoryModel(t *testing.T) {
	s := Spec{
		ID: "m", App: MLR, Data: Dataset{Name: "d", InputGB: 16, ModelGB: 8},
		CompMachineSeconds: 1, NetSeconds: 1, Iterations: 1, WorkGB: 2,
	}
	full := s.MemoryGB(16, 0)
	want := JVMHeapFactor*(16.0/16+8.0/16) + 2
	if math.Abs(full-want) > 1e-9 {
		t.Errorf("MemoryGB(16, 0) = %.3f, want %.3f", full, want)
	}
	spilled := s.MemoryGB(16, 1)
	wantSpilled := JVMHeapFactor*(8.0/16) + 2
	if math.Abs(spilled-wantSpilled) > 1e-9 {
		t.Errorf("MemoryGB(16, 1) = %.3f, want %.3f", spilled, wantSpilled)
	}
	// Alpha outside [0,1] clamps rather than corrupting the footprint.
	if got := s.MemoryGB(16, -1); got != full {
		t.Errorf("MemoryGB(16, -1) = %.3f, want clamp to %.3f", got, full)
	}
	if got := s.MemoryGB(16, 2); got != spilled {
		t.Errorf("MemoryGB(16, 2) = %.3f, want clamp to %.3f", got, spilled)
	}
}

// TestMemoryMonotonicInAlpha checks by property that spilling more input
// never increases the heap footprint.
func TestMemoryMonotonicInAlpha(t *testing.T) {
	s := Base()[42]
	f := func(a, b uint8, m uint8) bool {
		al, bl := float64(a)/255, float64(b)/255
		if al > bl {
			al, bl = bl, al
		}
		dop := int(m%32) + 1
		return s.MemoryGB(dop, bl) <= s.MemoryGB(dop, al)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFig4MemoryNarrative(t *testing.T) {
	nmf, lasso, mlr := Fig4Jobs()
	cap := 32.0
	two := nmf.MemoryGB(16, 0) + lasso.MemoryGB(16, 0)
	three := two + mlr.MemoryGB(16, 0)
	if two >= cap {
		t.Errorf("two-job co-location uses %.1f GB, want < %.0f (paper: 2 jobs fit)", two, cap)
	}
	if three <= cap {
		t.Errorf("three-job co-location uses %.1f GB, want > %.0f (paper: OOM)", three, cap)
	}
}

func TestCompCommSubsets(t *testing.T) {
	comp, comm := CompIntensive(), CommIntensive()
	if len(comp) != 60 || len(comm) != 60 {
		t.Fatalf("subset sizes %d/%d, want 60/60", len(comp), len(comm))
	}
	avg := func(specs []Spec) float64 {
		var sum float64
		for _, s := range specs {
			sum += s.CompRatioAt(ReferenceDoP)
		}
		return sum / float64(len(specs))
	}
	base := avg(Base())
	if a := avg(comp); a <= base {
		t.Errorf("comp-intensive avg ratio %.3f <= base %.3f", a, base)
	}
	if a := avg(comm); a >= base {
		t.Errorf("comm-intensive avg ratio %.3f >= base %.3f", a, base)
	}
}

func TestFig2Jobs(t *testing.T) {
	jobs := Fig2Jobs()
	if len(jobs) != 4 {
		t.Fatalf("Fig2Jobs() returned %d jobs, want 4", len(jobs))
	}
	// MLR-16K is more computation-heavy than MLR-8K (larger model work per
	// iteration grows compute faster than traffic in our calibration).
	if jobs[0].CompRatioAt(16) <= jobs[1].CompRatioAt(16) {
		t.Errorf("MLR-16K ratio %.2f <= MLR-8K ratio %.2f, want higher",
			jobs[0].CompRatioAt(16), jobs[1].CompRatioAt(16))
	}
}

func TestSmall(t *testing.T) {
	s := Small(6)
	if len(s) != 6 {
		t.Fatalf("Small(6) returned %d jobs", len(s))
	}
	// Interleaved: first jobs come from distinct profiles.
	apps := make(map[string]bool)
	for _, sp := range s {
		apps[sp.App.String()+sp.Data.Name] = true
	}
	if len(apps) != 6 {
		t.Errorf("Small(6) drew from %d profiles, want 6 distinct", len(apps))
	}
}

func TestValidateErrors(t *testing.T) {
	good := Base()[0]
	tests := []struct {
		name   string
		mutate func(*Spec)
	}{
		{"missing id", func(s *Spec) { s.ID = "" }},
		{"zero comp", func(s *Spec) { s.CompMachineSeconds = 0 }},
		{"zero net", func(s *Spec) { s.NetSeconds = 0 }},
		{"bad pull frac", func(s *Spec) { s.PullFrac = 1.5 }},
		{"zero iterations", func(s *Spec) { s.Iterations = 0 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			s := good
			tt.mutate(&s)
			if err := s.Validate(); err == nil {
				t.Error("Validate() = nil, want error")
			}
		})
	}
}

func TestSpecString(t *testing.T) {
	s := Base()[0]
	str := s.String()
	if !strings.Contains(str, "NMF") || !strings.Contains(str, s.ID) {
		t.Errorf("String() = %q, want app and ID present", str)
	}
}
