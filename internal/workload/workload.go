// Package workload defines the ML training job specifications used by the
// evaluation: the applications, datasets and hyper-parameter variants of
// Table I, and generators for the 80-job base workload whose iteration-time
// and computation-ratio distributions follow Fig. 9 of the paper.
//
// The paper trains on real datasets (Netflix, PubMed, NYTimes and
// Bösen-generated synthetic data). This reproduction replaces them with
// per-(app, dataset) cost profiles calibrated so that single-job runs
// reproduce the published resource-usage shapes: per-iteration aggregate
// CPU work in machine-seconds (which divides by the degree of parallelism,
// Eq. 2 of the paper) and per-machine communication seconds (which stay
// roughly constant as machines are added).
package workload

import (
	"fmt"
	"math"
)

// App enumerates the four classical ML applications of Table I.
type App int

// Applications used in the paper's evaluation.
const (
	NMF App = iota + 1
	LDA
	MLR
	Lasso
)

// String returns the application acronym as used in the paper.
func (a App) String() string {
	switch a {
	case NMF:
		return "NMF"
	case LDA:
		return "LDA"
	case MLR:
		return "MLR"
	case Lasso:
		return "Lasso"
	default:
		return fmt.Sprintf("App(%d)", int(a))
	}
}

// Dataset describes the input and model footprint of one dataset
// (Table I of the paper).
type Dataset struct {
	Name    string
	InputGB float64
	ModelGB float64
}

// Datasets from Table I. MLR and Lasso share the Bösen-style synthetic
// datasets; their model sizes (12 and 24 GB) correspond to the two
// synthetic input sizes.
var (
	Netflix64x  = Dataset{Name: "Netflix64x", InputGB: 45.6, ModelGB: 1.0}
	Netflix128x = Dataset{Name: "Netflix128x", InputGB: 91.2, ModelGB: 5.0}
	PubMed      = Dataset{Name: "PubMed", InputGB: 4.3, ModelGB: 2.1}
	NYTimes     = Dataset{Name: "NYTimes", InputGB: 0.6, ModelGB: 1.1}
	Synth78     = Dataset{Name: "Synth78", InputGB: 78.4, ModelGB: 12.0}
	Synth155    = Dataset{Name: "Synth155", InputGB: 155.0, ModelGB: 24.0}
)

// ReferenceDoP is the degree of parallelism at which profile numbers are
// quoted; Fig. 9 of the paper uses DoP 16 for all workload characteristics.
const ReferenceDoP = 16

// netDoPScale models the mild growth of per-machine communication time
// with the number of machines (more peers, more connection overhead);
// Fig. 3b of the paper shows PULL/PUSH times roughly flat but not exactly
// constant. Normalized to 1.0 at the reference DoP.
func netDoPScale(m int) float64 {
	if m < 1 {
		m = 1
	}
	return 1 + 0.04*math.Log2(float64(m)/float64(ReferenceDoP))
}

// Spec fully describes one training job: its application, dataset,
// hyper-parameter variant, and the calibrated cost model used by both the
// performance model and the simulator.
type Spec struct {
	// ID uniquely names the job within a workload.
	ID string
	// App is the ML application.
	App App
	// Data is the dataset trained on.
	Data Dataset
	// Hyper describes the hyper-parameter variant (e.g. "classes=16K").
	Hyper string

	// CompMachineSeconds is the aggregate CPU work of one iteration in
	// machine-seconds; the COMP subtask time at DoP m is
	// CompMachineSeconds / m (Eq. 2 of the paper).
	CompMachineSeconds float64
	// NetSeconds is the per-machine communication time (PULL + PUSH) of
	// one iteration at the reference DoP.
	NetSeconds float64
	// PullFrac is the fraction of NetSeconds spent in PULL; the rest is
	// PUSH.
	PullFrac float64
	// Iterations is the number of iterations until the objective crosses
	// its convergence threshold.
	Iterations int
	// WorkGB is the per-machine working memory for intermediate results
	// (pulled parameters, computed gradients, serialization buffers).
	WorkGB float64
}

// Validate reports an error for non-executable specs.
func (s Spec) Validate() error {
	switch {
	case s.ID == "":
		return fmt.Errorf("workload: spec missing ID")
	case s.CompMachineSeconds <= 0:
		return fmt.Errorf("workload: %s has comp work %.1f, need > 0", s.ID, s.CompMachineSeconds)
	case s.NetSeconds <= 0:
		return fmt.Errorf("workload: %s has net time %.1f, need > 0", s.ID, s.NetSeconds)
	case s.PullFrac < 0 || s.PullFrac > 1:
		return fmt.Errorf("workload: %s has pull fraction %.2f outside [0,1]", s.ID, s.PullFrac)
	case s.Iterations <= 0:
		return fmt.Errorf("workload: %s has %d iterations, need > 0", s.ID, s.Iterations)
	}
	return nil
}

// TcpuAt returns the COMP subtask time in seconds at DoP m (Eq. 2).
func (s Spec) TcpuAt(m int) float64 {
	if m < 1 {
		m = 1
	}
	return s.CompMachineSeconds / float64(m)
}

// TnetAt returns the per-machine COMM time (PULL+PUSH) in seconds at DoP m.
func (s Spec) TnetAt(m int) float64 {
	return s.NetSeconds * netDoPScale(m)
}

// TpullAt returns the PULL subtask time in seconds at DoP m.
func (s Spec) TpullAt(m int) float64 { return s.TnetAt(m) * s.PullFrac }

// TpushAt returns the PUSH subtask time in seconds at DoP m.
func (s Spec) TpushAt(m int) float64 { return s.TnetAt(m) * (1 - s.PullFrac) }

// IterSecondsAt returns the un-co-located iteration time at DoP m.
func (s Spec) IterSecondsAt(m int) float64 { return s.TcpuAt(m) + s.TnetAt(m) }

// CompRatioAt returns the fraction of the iteration spent computing at
// DoP m — the x-axis of Fig. 9b.
func (s Spec) CompRatioAt(m int) float64 {
	return s.TcpuAt(m) / s.IterSecondsAt(m)
}

// JVMHeapFactor inflates raw data sizes to heap footprints. The paper's
// system runs on the JVM, where object headers, boxing and serialization
// buffers roughly double resident size; this factor is what makes the
// three-job co-location of Fig. 4 exceed machine memory.
const JVMHeapFactor = 2.2

// MemoryGB returns the per-machine heap footprint of the job at DoP m
// when a fraction alpha of its input blocks is spilled to disk
// (alpha = 0 keeps all input in memory).
func (s Spec) MemoryGB(m int, alpha float64) float64 {
	if m < 1 {
		m = 1
	}
	if alpha < 0 {
		alpha = 0
	} else if alpha > 1 {
		alpha = 1
	}
	inMem := (1 - alpha) * s.Data.InputGB / float64(m)
	model := s.Data.ModelGB / float64(m)
	return JVMHeapFactor*(inMem+model) + s.WorkGB
}

// TotalCompSeconds returns the job's total CPU demand in machine-seconds.
func (s Spec) TotalCompSeconds() float64 {
	return s.CompMachineSeconds * float64(s.Iterations)
}

func (s Spec) String() string {
	return fmt.Sprintf("%s(%s/%s %s)", s.ID, s.App, s.Data.Name, s.Hyper)
}
