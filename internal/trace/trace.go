// Package trace generates job arrival processes for the workload
// sensitivity experiments of §V-D: batch submission, Poisson arrivals
// with a configurable mean inter-arrival time, and bursty trace-like
// arrivals standing in for the Google cluster traces used by the paper.
package trace

import (
	"math"
	"math/rand"

	"harmony/internal/simtime"
)

// Batch returns n arrival offsets all at time zero — the main experiment
// of §V-C submits all 80 jobs at once.
func Batch(n int) []simtime.Time {
	return make([]simtime.Time, n)
}

// Poisson returns n arrival offsets whose inter-arrival times are
// exponentially distributed with the given mean. A non-positive mean
// degenerates to Batch. The sequence is deterministic for a given seed.
func Poisson(n int, mean simtime.Duration, seed int64) []simtime.Time {
	if mean <= 0 {
		return Batch(n)
	}
	rng := rand.New(rand.NewSource(seed))
	out := make([]simtime.Time, n)
	var t simtime.Time
	for i := range out {
		out[i] = t
		gap := rng.ExpFloat64() * mean.Seconds()
		t = t.Add(simtime.FromSeconds(gap))
	}
	return out
}

// Bursty returns n arrival offsets following a trace-like process:
// alternating quiet and busy windows with occasional submission spikes,
// qualitatively matching the "more diverse pattern of arrivals and job
// arrival spikes" the paper extracts from the Google cluster traces.
func Bursty(n int, meanRatePerHour float64, seed int64) []simtime.Time {
	if n <= 0 {
		return nil
	}
	if meanRatePerHour <= 0 {
		meanRatePerHour = 30
	}
	rng := rand.New(rand.NewSource(seed))
	out := make([]simtime.Time, 0, n)
	var t simtime.Time
	for len(out) < n {
		// Draw a window with its own intensity: mostly near the mean,
		// sometimes a spike (5x) or a lull (0.2x).
		rate := meanRatePerHour * (0.5 + rng.Float64())
		switch {
		case rng.Float64() < 0.10:
			rate *= 5 // spike
		case rng.Float64() < 0.15:
			rate *= 0.2 // lull
		}
		windowLen := simtime.Duration(10+rng.Intn(20)) * simtime.Minute
		end := t.Add(windowLen)
		meanGapSec := 3600 / rate
		for t < end && len(out) < n {
			if rng.Float64() < 0.05 {
				// Submission spike: several jobs at the same instant.
				burst := 2 + rng.Intn(4)
				for b := 0; b < burst && len(out) < n; b++ {
					out = append(out, t)
				}
			} else {
				out = append(out, t)
			}
			gap := rng.ExpFloat64() * meanGapSec
			t = t.Add(simtime.FromSeconds(gap))
		}
		t = end
	}
	return out[:n]
}

// MeanInterarrival reports the average gap between consecutive arrivals.
func MeanInterarrival(arrivals []simtime.Time) simtime.Duration {
	if len(arrivals) < 2 {
		return 0
	}
	span := arrivals[len(arrivals)-1].Sub(arrivals[0])
	return span / simtime.Duration(len(arrivals)-1)
}

// Burstiness reports the coefficient of variation of inter-arrival gaps;
// 1.0 is Poisson, larger is burstier.
func Burstiness(arrivals []simtime.Time) float64 {
	if len(arrivals) < 3 {
		return 0
	}
	gaps := make([]float64, len(arrivals)-1)
	var sum float64
	for i := 1; i < len(arrivals); i++ {
		gaps[i-1] = arrivals[i].Sub(arrivals[i-1]).Seconds()
		sum += gaps[i-1]
	}
	mean := sum / float64(len(gaps))
	if mean == 0 {
		return 0
	}
	var varSum float64
	for _, g := range gaps {
		d := g - mean
		varSum += d * d
	}
	return math.Sqrt(varSum/float64(len(gaps))) / mean
}
