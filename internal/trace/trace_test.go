package trace

import (
	"math"
	"sort"
	"testing"

	"harmony/internal/simtime"
)

func TestBatch(t *testing.T) {
	arr := Batch(5)
	if len(arr) != 5 {
		t.Fatalf("Batch(5) returned %d arrivals", len(arr))
	}
	for i, a := range arr {
		if a != 0 {
			t.Errorf("arrival %d = %v, want 0", i, a)
		}
	}
}

func TestPoissonMean(t *testing.T) {
	mean := 4 * simtime.Minute
	arr := Poisson(2000, mean, 7)
	if len(arr) != 2000 {
		t.Fatalf("returned %d arrivals", len(arr))
	}
	got := MeanInterarrival(arr)
	ratio := got.Seconds() / mean.Seconds()
	if ratio < 0.9 || ratio > 1.1 {
		t.Errorf("mean interarrival = %v, want within 10%% of %v", got, mean)
	}
	if !sort.SliceIsSorted(arr, func(i, j int) bool { return arr[i] < arr[j] }) {
		t.Error("arrivals not monotone")
	}
}

func TestPoissonDeterministic(t *testing.T) {
	a := Poisson(50, simtime.Minute, 42)
	b := Poisson(50, simtime.Minute, 42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d", i)
		}
	}
	c := Poisson(50, simtime.Minute, 43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical arrivals")
	}
}

func TestPoissonZeroMeanIsBatch(t *testing.T) {
	arr := Poisson(10, 0, 1)
	for _, a := range arr {
		if a != 0 {
			t.Fatal("zero-mean Poisson should collapse to batch arrivals")
		}
	}
}

func TestBurstyProperties(t *testing.T) {
	arr := Bursty(500, 60, 11)
	if len(arr) != 500 {
		t.Fatalf("returned %d arrivals", len(arr))
	}
	if !sort.SliceIsSorted(arr, func(i, j int) bool { return arr[i] < arr[j] }) {
		t.Error("arrivals not monotone")
	}
	// Burstier than Poisson: coefficient of variation above 1.
	pois := Poisson(500, simtime.Minute, 11)
	bb, bp := Burstiness(arr), Burstiness(pois)
	if bb <= bp {
		t.Errorf("bursty CV %.2f <= poisson CV %.2f, want burstier", bb, bp)
	}
	// Contains at least one same-instant spike.
	spikes := 0
	for i := 1; i < len(arr); i++ {
		if arr[i] == arr[i-1] {
			spikes++
		}
	}
	if spikes == 0 {
		t.Error("no submission spikes in bursty trace")
	}
}

func TestBurstyEdgeCases(t *testing.T) {
	if got := Bursty(0, 60, 1); got != nil {
		t.Errorf("Bursty(0) = %v, want nil", got)
	}
	if got := Bursty(3, -5, 1); len(got) != 3 {
		t.Errorf("Bursty with bad rate returned %d arrivals, want fallback to default", len(got))
	}
}

func TestMeanInterarrivalEdge(t *testing.T) {
	if got := MeanInterarrival(nil); got != 0 {
		t.Errorf("MeanInterarrival(nil) = %v", got)
	}
	if got := MeanInterarrival([]simtime.Time{5}); got != 0 {
		t.Errorf("MeanInterarrival(single) = %v", got)
	}
	arr := []simtime.Time{0, simtime.Time(simtime.Minute), simtime.Time(3 * simtime.Minute)}
	if got := MeanInterarrival(arr); got != 90*simtime.Second {
		t.Errorf("MeanInterarrival = %v, want 90s", got)
	}
}

func TestBurstinessPoissonNearOne(t *testing.T) {
	arr := Poisson(5000, simtime.Minute, 3)
	cv := Burstiness(arr)
	if math.Abs(cv-1) > 0.12 {
		t.Errorf("Poisson CV = %.3f, want near 1.0", cv)
	}
	if Burstiness(nil) != 0 || Burstiness(arr[:2]) != 0 {
		t.Error("Burstiness of degenerate input should be 0")
	}
	same := []simtime.Time{1, 1, 1, 1}
	if Burstiness(same) != 0 {
		t.Error("Burstiness of zero-gap arrivals should be 0")
	}
}
