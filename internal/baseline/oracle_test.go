package baseline

import (
	"math/rand"
	"testing"

	"harmony/internal/core"
	"harmony/internal/workload"
)

func job(id string, comp, net float64) core.JobInfo {
	return core.JobInfo{ID: id, Comp: comp, Net: net}
}

func randomJobs(rng *rand.Rand, n int) []core.JobInfo {
	jobs := make([]core.JobInfo, n)
	for i := range jobs {
		jobs[i] = core.JobInfo{
			ID:   string(rune('a'+i%26)) + string(rune('0'+i/26)),
			Comp: 100 + rng.Float64()*5000,
			Net:  5 + rng.Float64()*300,
		}
	}
	return jobs
}

func TestOracleEmpty(t *testing.T) {
	if p := Oracle(nil, 8, core.Options{}); len(p.Groups) != 0 {
		t.Error("Oracle(nil) returned groups")
	}
	if p := Oracle([]core.JobInfo{job("a", 1, 1)}, 0, core.Options{}); len(p.Groups) != 0 {
		t.Error("Oracle with no machines returned groups")
	}
}

func TestOracleSinglePair(t *testing.T) {
	jobs := []core.JobInfo{
		job("cpu", 3200, 20),
		job("net", 200, 180),
	}
	opts := core.Options{}
	p := Oracle(jobs, 16, opts)
	if p.NumJobs() != 2 || len(p.Groups) != 1 {
		t.Fatalf("oracle plan %s, want both jobs co-located", p)
	}
	if opts.Score(p) < 0.8 {
		t.Errorf("oracle score %.3f, want >= 0.8 for a complementary pair", opts.Score(p))
	}
}

// TestOracleAtLeastAsGoodAsHarmony is the §V-F ground-truth property: the
// exhaustive search can never score below Algorithm 1.
func TestOracleAtLeastAsGoodAsHarmony(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	opts := core.Options{}
	for trial := 0; trial < 10; trial++ {
		n := 3 + rng.Intn(6) // within exhaustive range
		m := 8 + rng.Intn(24)
		jobs := randomJobs(rng, n)
		oracle := Oracle(jobs, m, opts)
		harmony := core.Schedule(jobs, m, opts)
		os, hs := opts.Score(oracle), opts.Score(harmony)
		if os < hs-1e-9 {
			t.Errorf("trial %d: oracle %.4f < harmony %.4f\noracle: %s\nharmony: %s",
				trial, os, hs, oracle, harmony)
		}
	}
}

// TestHarmonyCloseToOracle checks the headline of Fig. 14 on realistic
// job mixes: Algorithm 1's decisions land close to the exhaustive
// optimum. (On adversarial random mixes the pure-utilization objective
// lets the Oracle cherry-pick tiny job subsets, which no real scheduler
// would run; the full Fig. 14 comparison in the benchmark harness runs
// complete executions where queue pressure removes that degeneracy.)
func TestHarmonyCloseToOracle(t *testing.T) {
	opts := core.Options{}
	var worst float64
	for trial := 0; trial < 4; trial++ {
		specs := workload.Small(6 + trial)
		jobs := make([]core.JobInfo, len(specs))
		for i, s := range specs {
			jobs[i] = core.JobInfo{ID: s.ID, Comp: s.CompMachineSeconds, Net: s.NetSeconds}
		}
		m := 24
		oracle := Oracle(jobs, m, opts)
		harmony := core.Schedule(jobs, m, opts)
		os, hs := opts.Score(oracle), opts.Score(harmony)
		if os <= 0 {
			t.Fatalf("oracle failed to place anything: %s", oracle)
		}
		gap := (os - hs) / os
		if gap > worst {
			worst = gap
		}
	}
	if worst > 0.15 {
		t.Errorf("worst harmony-vs-oracle gap %.1f%%, want <= 15%% on realistic mixes (paper: ~2%%)", worst*100)
	}
}

func TestOracleRespectsConstraints(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	jobs := randomJobs(rng, 7)
	opts := core.Options{MaxJobsPerGroup: 2}
	p := Oracle(jobs, 14, opts)
	for _, g := range p.Groups {
		if len(g.Jobs) > 2 {
			t.Errorf("oracle group %s violates MaxJobsPerGroup", g)
		}
	}
	if p.TotalMachines() > 14 {
		t.Errorf("oracle uses %d machines, only 14 available", p.TotalMachines())
	}
}

func TestOracleAnnealFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	jobs := randomJobs(rng, ExhaustiveLimit+6)
	opts := core.Options{}
	p := Oracle(jobs, 40, opts)
	if p.NumJobs() == 0 {
		t.Fatal("anneal fallback placed nothing")
	}
	// The local search starts from Algorithm 1 and can only improve.
	if opts.Score(p) < opts.Score(core.Schedule(jobs, 40, opts))-1e-9 {
		t.Error("anneal result scores below its own starting point")
	}
	seen := map[string]int{}
	for _, id := range p.JobIDs() {
		seen[id]++
	}
	for id, n := range seen {
		if n != 1 {
			t.Errorf("job %s placed %d times", id, n)
		}
	}
}

func TestAllocateMachinesWaterFilling(t *testing.T) {
	groups := []core.Group{
		{Jobs: []core.JobInfo{job("cpu", 6400, 10)}},
		{Jobs: []core.JobInfo{job("net", 10, 200)}},
	}
	AllocateMachines(groups, 12)
	if groups[0].Machines+groups[1].Machines != 12 {
		t.Fatalf("allocated %d machines, want 12", groups[0].Machines+groups[1].Machines)
	}
	if groups[0].Machines <= groups[1].Machines {
		t.Error("computation-bound group should receive more machines")
	}
}

func TestFeasible(t *testing.T) {
	good := core.Plan{Groups: []core.Group{{Machines: 2, Jobs: []core.JobInfo{job("a", 1, 1)}}}}
	if !Feasible(good, core.Options{}) {
		t.Error("valid plan reported infeasible")
	}
	empty := core.Plan{Groups: []core.Group{{Machines: 2}}}
	if Feasible(empty, core.Options{}) {
		t.Error("plan with empty group reported feasible")
	}
	heavy := core.Plan{Groups: []core.Group{{Machines: 1, Jobs: []core.JobInfo{{ID: "a", Comp: 1, Net: 1, WorkGB: 64}}}}}
	if Feasible(heavy, core.Options{MemoryCapGB: 32}) {
		t.Error("over-memory plan reported feasible")
	}
}
