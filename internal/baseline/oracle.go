// Package baseline implements the comparison schedulers of §V: the
// exhaustive-search Oracle that §V-F uses as ground truth for Harmony's
// scheduling decisions. (The isolated and naively co-located execution
// baselines live in the simulator, where their runtime behaviour is
// modelled; the Oracle is a pure planner and is comparable head-to-head
// with core.Schedule.)
package baseline

import (
	"math"
	"math/rand"

	"harmony/internal/core"
)

// ExhaustiveLimit is the largest job count for which Oracle enumerates
// every grouping exactly; the search space grows as the Bell numbers, and
// beyond ~12 jobs exact enumeration is what makes the paper's Oracle take
// "about 10 hours" for thousands of jobs.
const ExhaustiveLimit = 12

// Oracle searches for the grouping that maximizes the scheduling score.
// Up to ExhaustiveLimit jobs it enumerates all set partitions (with
// machine allocation per partition); beyond that it falls back to a
// large-budget local search (simulated annealing) which in practice finds
// near-optimal groupings — the role the exhaustive search plays in
// Fig. 14, at a cost orders of magnitude above Algorithm 1's.
func Oracle(jobs []core.JobInfo, machines int, opts core.Options) core.Plan {
	if len(jobs) == 0 || machines <= 0 {
		return core.Plan{}
	}
	if len(jobs) <= ExhaustiveLimit {
		return exhaustive(jobs, machines, opts)
	}
	return anneal(jobs, machines, opts, 42)
}

// exhaustive enumerates every partition of jobs into groups, allocates
// machines to each candidate, and keeps the best-scoring feasible plan.
// It also considers leaving a suffix of jobs out (the scheduler may run
// fewer jobs), by treating "waiting" as an extra bucket.
func exhaustive(jobs []core.JobInfo, machines int, opts core.Options) core.Plan {
	best := core.Plan{}
	bestScore := -1.0

	assignment := make([]int, len(jobs)) // group index per job; -1 = waiting
	var recurse func(i, nGroups int)
	recurse = func(i, nGroups int) {
		if i == len(jobs) {
			if nGroups == 0 || nGroups > machines {
				return
			}
			plan := buildPlan(jobs, assignment, nGroups, machines)
			if !Feasible(plan, opts) {
				return
			}
			if score := opts.Score(plan); score > bestScore {
				bestScore = score
				best = plan.Clone()
			}
			return
		}
		// Place job i into each existing group, a new group, or leave it
		// waiting. Restricting new-group choice to index nGroups avoids
		// enumerating permutations of the same partition.
		for g := 0; g <= nGroups && g < machines; g++ {
			assignment[i] = g
			next := nGroups
			if g == nGroups {
				next++
			}
			recurse(i+1, next)
		}
		assignment[i] = -1
		recurse(i+1, nGroups)
	}
	recurse(0, 0)
	return best
}

func buildPlan(jobs []core.JobInfo, assignment []int, nGroups, machines int) core.Plan {
	groups := make([]core.Group, nGroups)
	for i, g := range assignment {
		if g >= 0 {
			groups[g].Jobs = append(groups[g].Jobs, jobs[i])
		}
	}
	// Drop empty groups (possible when all of a group's jobs wait).
	kept := groups[:0]
	for _, g := range groups {
		if len(g.Jobs) > 0 {
			kept = append(kept, g)
		}
	}
	groups = kept
	AllocateMachines(groups, machines)
	return core.Plan{Groups: groups}
}

// AllocateMachines distributes machines to maximize the utilization score:
// one machine each, then marginal allocation to the group whose iteration
// time shrinks the most (the same water-filling rule as Algorithm 1's
// allocation step, §IV-B3).
func AllocateMachines(groups []core.Group, machines int) {
	if len(groups) == 0 {
		return
	}
	for i := range groups {
		groups[i].Machines = 1
	}
	for spare := machines - len(groups); spare > 0; spare-- {
		best, bestGain := -1, 0.0
		for i := range groups {
			g := groups[i]
			now := g.IterSeconds()
			g.Machines++
			gain := (now - g.IterSeconds()) / math.Max(now, 1e-12)
			if gain > bestGain+1e-12 {
				bestGain = gain
				best = i
			}
		}
		if best < 0 {
			for i := 0; spare > 0; i, spare = (i+1)%len(groups), spare-1 {
				groups[i].Machines++
			}
			return
		}
		groups[best].Machines++
	}
}

// Feasible checks a plan against the option constraints (group size and
// per-machine memory with full spill).
func Feasible(p core.Plan, opts core.Options) bool {
	for _, g := range p.Groups {
		if len(g.Jobs) == 0 || g.Machines < 1 {
			return false
		}
		if opts.MaxJobsPerGroup > 0 && len(g.Jobs) > opts.MaxJobsPerGroup {
			return false
		}
		if opts.MemoryCapGB > 0 && g.MinMemoryGB() > opts.MemoryCapGB {
			return false
		}
	}
	return true
}

// annealBudgetPerJob sets the local-search budget; large enough that the
// search approximates the exhaustive optimum while remaining orders of
// magnitude slower than Algorithm 1 (the point of §V-F's comparison).
const annealBudgetPerJob = 200

// anneal runs simulated annealing over assignments of jobs to groups
// (including a waiting bucket), re-allocating machines for every
// candidate.
func anneal(jobs []core.JobInfo, machines int, opts core.Options, seed int64) core.Plan {
	rng := rand.New(rand.NewSource(seed))
	n := len(jobs)
	maxGroups := n
	if machines < maxGroups {
		maxGroups = machines
	}

	// Start from Algorithm 1's answer so the search explores around a
	// good region.
	current := core.Schedule(jobs, machines, opts)
	assignment := assignmentOf(jobs, current)
	score := opts.Score(current)
	if !Feasible(current, opts) {
		score = -1
	}
	best := current.Clone()
	bestScore := score

	temp := 0.05
	budget := annealBudgetPerJob * n
	if budget < 4000 {
		budget = 4000
	}
	for it := 0; it < budget; it++ {
		i := rng.Intn(n)
		old := assignment[i]
		move := rng.Intn(maxGroups+1) - 1 // -1 = waiting
		if move == old {
			continue
		}
		assignment[i] = move
		cand := planFromAssignment(jobs, assignment, maxGroups, machines)
		candScore := -1.0
		if Feasible(cand, opts) {
			candScore = opts.Score(cand)
		}
		accept := candScore > score ||
			(candScore > 0 && rng.Float64() < math.Exp((candScore-score)/math.Max(temp, 1e-6)))
		if accept {
			score = candScore
			if candScore > bestScore {
				bestScore = candScore
				best = cand.Clone()
			}
		} else {
			assignment[i] = old
		}
		temp *= 0.9995
	}
	return best
}

func assignmentOf(jobs []core.JobInfo, p core.Plan) []int {
	idx := make(map[string]int)
	for gi, g := range p.Groups {
		for _, j := range g.Jobs {
			idx[j.ID] = gi
		}
	}
	out := make([]int, len(jobs))
	for i, j := range jobs {
		if gi, ok := idx[j.ID]; ok {
			out[i] = gi
		} else {
			out[i] = -1
		}
	}
	return out
}

func planFromAssignment(jobs []core.JobInfo, assignment []int, maxGroups, machines int) core.Plan {
	groups := make([]core.Group, maxGroups)
	for i, g := range assignment {
		if g >= 0 && g < maxGroups {
			groups[g].Jobs = append(groups[g].Jobs, jobs[i])
		}
	}
	kept := groups[:0]
	for _, g := range groups {
		if len(g.Jobs) > 0 {
			kept = append(kept, g)
		}
	}
	groups = kept
	AllocateMachines(groups, machines)
	return core.Plan{Groups: groups}
}
