package mlapp

import (
	"encoding/binary"
	"fmt"
	"math"

	"harmony/internal/rpc"
)

// This file is the binary columnar codec for example blocks: the live
// worker stores its input shard in the §IV-C block store as encoded
// payloads, and the fast COMP path decodes each resident block exactly
// once. The layout extends the data plane's float-frame format (DESIGN.md
// §8) — bulk float columns are plain IEEE-754 frames, headers are
// little-endian fixed-width integers — so NaN payloads and infinities
// round-trip bit-exactly and decoding is a straight memory walk instead
// of gob's reflective per-field stream.
//
// Block layout (little-endian):
//
//	u32 magic        exampleMagic, guards against foreign payloads
//	u32 n            example count
//	u32 xLen[n]      per-example feature-vector lengths
//	u32 tokLen[n]    per-example token counts
//	float frame      n Y values (u32 count + raw IEEE-754 bits)
//	float frame      ΣxLen concatenated X values
//	u32 tok[Σtok]    concatenated token ids
//
// Columns are contiguous, so the decoder allocates one float arena for
// all X vectors and one int arena for all token slices per block and
// hands out subslices — three allocations per block, amortized to zero by
// the worker's decoded-block cache.

// exampleMagic tags encoded example blocks ("HXB1": Harmony example
// block, layout 1).
const exampleMagic = 0x48584231

// EncodedExamplesLen reports the exact encoded size of a block.
func EncodedExamplesLen(examples []Example) int {
	n := len(examples)
	totalX, totalT := 0, 0
	for i := range examples {
		totalX += len(examples[i].X)
		totalT += len(examples[i].Tokens)
	}
	return 4 + 4 + 4*n + 4*n + rpc.FloatsLen(n) + rpc.FloatsLen(totalX) + 4*totalT
}

// AppendExamples appends the columnar encoding of examples to dst and
// returns the extended slice.
func AppendExamples(dst []byte, examples []Example) []byte {
	n := len(examples)
	if need := EncodedExamplesLen(examples); cap(dst)-len(dst) < need {
		grown := make([]byte, len(dst), len(dst)+need)
		copy(grown, dst)
		dst = grown
	}
	dst = rpc.AppendUint32(dst, exampleMagic)
	dst = rpc.AppendUint32(dst, uint32(n))
	totalX := 0
	for i := range examples {
		dst = rpc.AppendUint32(dst, uint32(len(examples[i].X)))
		totalX += len(examples[i].X)
	}
	for i := range examples {
		dst = rpc.AppendUint32(dst, uint32(len(examples[i].Tokens)))
	}
	// Y column as one float frame.
	dst = rpc.AppendUint32(dst, uint32(n))
	for i := range examples {
		dst = appendFloatBits(dst, examples[i].Y)
	}
	// X column: every feature vector concatenated into one frame.
	dst = rpc.AppendUint32(dst, uint32(totalX))
	for i := range examples {
		for _, v := range examples[i].X {
			dst = appendFloatBits(dst, v)
		}
	}
	// Token column.
	for i := range examples {
		for _, t := range examples[i].Tokens {
			dst = rpc.AppendUint32(dst, uint32(t))
		}
	}
	return dst
}

func appendFloatBits(dst []byte, v float64) []byte {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
	return append(dst, buf[:]...)
}

// DecodeExamples decodes one columnar block. The returned examples share
// two backing arenas (one for X values, one for tokens), so a block
// decodes in three allocations regardless of its example count.
func DecodeExamples(b []byte) ([]Example, error) {
	magic, b, err := rpc.ReadUint32(b)
	if err != nil {
		return nil, fmt.Errorf("mlapp: example block: %w", err)
	}
	if magic != exampleMagic {
		return nil, fmt.Errorf("mlapp: example block: bad magic %#x", magic)
	}
	nu, b, err := rpc.ReadUint32(b)
	if err != nil {
		return nil, fmt.Errorf("mlapp: example block: %w", err)
	}
	n := int(nu)
	// Columns are fixed-width, so the header bound check is a single
	// comparison per column instead of one per example.
	if len(b) < 8*n {
		return nil, fmt.Errorf("mlapp: example block truncated: %d length bytes, have %d", 8*n, len(b))
	}
	xLens := b[:4*n]
	tokLens := b[4*n : 8*n]
	b = b[8*n:]

	yCount, yData, b, err := rpc.FloatFrame(b)
	if err != nil {
		return nil, fmt.Errorf("mlapp: example block Y column: %w", err)
	}
	if yCount != n {
		return nil, fmt.Errorf("mlapp: example block: %d Y values for %d examples", yCount, n)
	}
	xCount, xData, b, err := rpc.FloatFrame(b)
	if err != nil {
		return nil, fmt.Errorf("mlapp: example block X column: %w", err)
	}
	totalX := 0
	totalT := 0
	for i := 0; i < n; i++ {
		totalX += int(binary.LittleEndian.Uint32(xLens[4*i:]))
		totalT += int(binary.LittleEndian.Uint32(tokLens[4*i:]))
	}
	if xCount != totalX {
		return nil, fmt.Errorf("mlapp: example block: %d X values, lengths sum to %d", xCount, totalX)
	}
	if len(b) < 4*totalT {
		return nil, fmt.Errorf("mlapp: example block truncated: %d token bytes, have %d", 4*totalT, len(b))
	}

	examples := make([]Example, n)
	var xArena []float64
	if totalX > 0 {
		xArena = make([]float64, totalX)
		for i := range xArena {
			xArena[i] = rpc.FloatAt(xData, i)
		}
	}
	var tokArena []int
	if totalT > 0 {
		tokArena = make([]int, totalT)
		for i := range tokArena {
			tokArena[i] = int(binary.LittleEndian.Uint32(b[4*i:]))
		}
	}
	xOff, tOff := 0, 0
	for i := 0; i < n; i++ {
		xl := int(binary.LittleEndian.Uint32(xLens[4*i:]))
		tl := int(binary.LittleEndian.Uint32(tokLens[4*i:]))
		examples[i].Y = rpc.FloatAt(yData, i)
		if xl > 0 {
			examples[i].X = xArena[xOff : xOff+xl : xOff+xl]
			xOff += xl
		}
		if tl > 0 {
			examples[i].Tokens = tokArena[tOff : tOff+tl : tOff+tl]
			tOff += tl
		}
	}
	return examples, nil
}
