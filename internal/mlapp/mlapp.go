// Package mlapp implements the four classical ML training algorithms of
// Table I — multinomial logistic regression, lasso regression,
// non-negative matrix factorization and latent Dirichlet allocation —
// with synthetic dataset generators.
//
// These are real implementations (genuine gradients, coordinate updates
// and Gibbs sampling), scaled to laptop-size problems: the live Harmony
// runtime trains them through the Parameter-Server push/pull path to
// demonstrate that subtask decomposition works on actual computation, as
// the substitution notes in DESIGN.md §2 describe.
package mlapp

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
)

// Kind names an algorithm.
type Kind int

// Algorithms of Table I.
const (
	MLR Kind = iota + 1
	Lasso
	NMF
	LDA
)

func (k Kind) String() string {
	switch k {
	case MLR:
		return "MLR"
	case Lasso:
		return "Lasso"
	case NMF:
		return "NMF"
	case LDA:
		return "LDA"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// ParseKind maps an algorithm name ("mlr", "Lasso", "NMF", "lda" — case
// insensitive) to its Kind.
func ParseKind(s string) (Kind, error) {
	switch strings.ToLower(s) {
	case "mlr":
		return MLR, nil
	case "lasso":
		return Lasso, nil
	case "nmf":
		return NMF, nil
	case "lda":
		return LDA, nil
	default:
		return 0, fmt.Errorf("mlapp: unknown algorithm %q", s)
	}
}

// Example is one training row: a dense feature vector with a label
// (class index for MLR, regression target for Lasso). NMF reuses X as a
// row of the ratings matrix; LDA uses Tokens instead.
type Example struct {
	X      []float64
	Y      float64
	Tokens []int
}

// Shard is one worker's partition of the input data.
type Shard struct {
	Kind     Kind
	Examples []Example
	// RowOffset is the shard's first global row index (NMF needs it to
	// address per-row factors).
	RowOffset int
}

// Config sizes a synthetic problem.
type Config struct {
	Kind Kind
	// Features is the input dimension (vocabulary size for LDA).
	Features int
	// Classes is the class count for MLR, the factorization rank for
	// NMF, and the topic count for LDA; ignored by Lasso.
	Classes int
	// Rows is the total number of examples across all shards.
	Rows int
	// Lambda is the L1 penalty for Lasso.
	Lambda float64
	// LearningRate scales gradient steps.
	LearningRate float64
}

func (c Config) withDefaults() Config {
	if c.Features <= 0 {
		c.Features = 32
	}
	if c.Classes <= 0 {
		c.Classes = 4
	}
	if c.Rows <= 0 {
		c.Rows = 256
	}
	if c.Lambda <= 0 {
		c.Lambda = 0.01
	}
	if c.LearningRate <= 0 {
		c.LearningRate = 0.1
	}
	return c
}

// Model dimensions per algorithm.
//
//	MLR:   Classes × Features weight matrix (row-major)
//	Lasso: Features weights
//	NMF:   Classes × Features item-factor matrix (row-major); per-row
//	       user factors are worker-local state
//	LDA:   Classes × Features topic-word counts (row-major)
func (c Config) ModelSize() int {
	c = c.withDefaults()
	switch c.Kind {
	case Lasso:
		return c.Features
	default:
		return c.Classes * c.Features
	}
}

// Algorithm trains one model kind: it computes an additive model update
// from a shard (the COMP subtask) and evaluates the objective.
type Algorithm interface {
	// Kind identifies the algorithm.
	Kind() Kind
	// InitModel returns the initial parameter vector.
	InitModel(rng *rand.Rand) []float64
	// Compute derives an additive update (same length as model) from the
	// shard under the current model — the COMP subtask's work.
	Compute(model []float64, shard *Shard, rng *rand.Rand) []float64
	// ComputeInto is Compute writing into dst (grown when its capacity is
	// short, zeroed, and returned), so iterating callers reuse one delta
	// buffer instead of allocating a model-sized slice every iteration.
	ComputeInto(dst, model []float64, shard *Shard, rng *rand.Rand) []float64
	// Loss evaluates the objective on the shard (lower is better; LDA
	// reports negative log-likelihood).
	Loss(model []float64, shard *Shard) float64
}

// deltaBuf resizes dst to n elements, reusing its capacity when
// possible, and zeroes it — the shared prologue of every ComputeInto.
func deltaBuf(dst []float64, n int) []float64 {
	if cap(dst) < n {
		return make([]float64, n)
	}
	dst = dst[:n]
	for i := range dst {
		dst[i] = 0
	}
	return dst
}

// New constructs the algorithm for a configuration.
func New(c Config) (Algorithm, error) {
	c = c.withDefaults()
	switch c.Kind {
	case MLR:
		return &mlr{cfg: c}, nil
	case Lasso:
		return &lasso{cfg: c}, nil
	case NMF:
		return &nmf{cfg: c}, nil
	case LDA:
		return &lda{cfg: c}, nil
	default:
		return nil, fmt.Errorf("mlapp: unknown kind %d", int(c.Kind))
	}
}

// GenerateShards builds synthetic training data split into n shards. The
// data is drawn from a planted model so training demonstrably reduces
// the objective.
func GenerateShards(c Config, n int, seed int64) ([]*Shard, error) {
	c = c.withDefaults()
	if n <= 0 {
		return nil, fmt.Errorf("mlapp: %d shards, need > 0", n)
	}
	rng := rand.New(rand.NewSource(seed))
	shards := make([]*Shard, n)
	rows := c.Rows
	perShard := (rows + n - 1) / n
	offset := 0
	for i := range shards {
		count := perShard
		if offset+count > rows {
			count = rows - offset
		}
		if count < 1 {
			count = 1
		}
		shards[i] = &Shard{Kind: c.Kind, RowOffset: offset}
		for r := 0; r < count; r++ {
			shards[i].Examples = append(shards[i].Examples, genExample(c, rng))
		}
		offset += count
	}
	return shards, nil
}

func genExample(c Config, rng *rand.Rand) Example {
	switch c.Kind {
	case LDA:
		// Documents with topic-skewed token distributions.
		topic := rng.Intn(c.Classes)
		nTokens := 20 + rng.Intn(20)
		tokens := make([]int, nTokens)
		for t := range tokens {
			if rng.Float64() < 0.7 {
				// Token from the planted topic's preferred band.
				band := c.Features / c.Classes
				tokens[t] = topic*band + rng.Intn(maxInt(band, 1))
			} else {
				tokens[t] = rng.Intn(c.Features)
			}
		}
		return Example{Tokens: tokens}
	case NMF:
		// A ratings row generated from planted low-rank factors.
		x := make([]float64, c.Features)
		u := make([]float64, c.Classes)
		for k := range u {
			u[k] = rng.Float64()
		}
		for f := range x {
			var v float64
			for k := 0; k < c.Classes; k++ {
				v += u[k] * plantedFactor(k, f, c.Features)
			}
			x[f] = v + 0.05*rng.NormFloat64()
			if x[f] < 0 {
				x[f] = 0
			}
		}
		return Example{X: x}
	default:
		x := make([]float64, c.Features)
		for f := range x {
			x[f] = rng.NormFloat64()
		}
		if c.Kind == Lasso {
			// Sparse planted weights: only the first few features matter.
			var y float64
			for f := 0; f < minInt(4, c.Features); f++ {
				y += float64(f+1) * x[f]
			}
			return Example{X: x, Y: y + 0.01*rng.NormFloat64()}
		}
		// MLR: class from a planted linear model.
		best, bestScore := 0, math.Inf(-1)
		for cl := 0; cl < c.Classes; cl++ {
			var score float64
			for f := range x {
				score += plantedFactor(cl, f, c.Features) * x[f]
			}
			if score > bestScore {
				bestScore = score
				best = cl
			}
		}
		return Example{X: x, Y: float64(best)}
	}
}

// plantedFactor is a deterministic pseudo-random ground-truth parameter.
func plantedFactor(k, f, features int) float64 {
	v := math.Sin(float64(k*features+f)*12.9898) * 43758.5453
	return v - math.Floor(v)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
