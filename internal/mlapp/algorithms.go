package mlapp

import (
	"math"
	"math/rand"
)

// mlr is multinomial logistic regression trained by mini-batch gradient
// descent on the softmax cross-entropy loss.
type mlr struct {
	cfg Config
}

func (m *mlr) Kind() Kind { return MLR }

func (m *mlr) InitModel(rng *rand.Rand) []float64 {
	w := make([]float64, m.cfg.ModelSize())
	for i := range w {
		w[i] = 0.01 * rng.NormFloat64()
	}
	return w
}

func (m *mlr) Compute(model []float64, shard *Shard, rng *rand.Rand) []float64 {
	return m.ComputeInto(nil, model, shard, rng)
}

func (m *mlr) ComputeInto(dst, model []float64, shard *Shard, rng *rand.Rand) []float64 {
	c := m.cfg.withDefaults()
	grad := deltaBuf(dst, len(model))
	probs := make([]float64, c.Classes)
	for _, ex := range shard.Examples {
		softmax(model, ex.X, c, probs)
		y := int(ex.Y)
		for cl := 0; cl < c.Classes; cl++ {
			coef := probs[cl]
			if cl == y {
				coef -= 1
			}
			row := cl * c.Features
			for f, x := range ex.X {
				grad[row+f] -= c.LearningRate * coef * x / float64(len(shard.Examples))
			}
		}
	}
	return grad
}

func (m *mlr) Loss(model []float64, shard *Shard) float64 {
	c := m.cfg.withDefaults()
	probs := make([]float64, c.Classes)
	var loss float64
	for _, ex := range shard.Examples {
		softmax(model, ex.X, c, probs)
		p := probs[int(ex.Y)]
		loss -= math.Log(math.Max(p, 1e-12))
	}
	return loss / float64(maxInt(len(shard.Examples), 1))
}

func softmax(model, x []float64, c Config, out []float64) {
	maxLogit := math.Inf(-1)
	for cl := 0; cl < c.Classes; cl++ {
		var logit float64
		row := cl * c.Features
		for f, xv := range x {
			logit += model[row+f] * xv
		}
		out[cl] = logit
		if logit > maxLogit {
			maxLogit = logit
		}
	}
	var sum float64
	for cl := range out {
		out[cl] = math.Exp(out[cl] - maxLogit)
		sum += out[cl]
	}
	for cl := range out {
		out[cl] /= sum
	}
}

// lasso is L1-regularized linear regression trained by proximal gradient
// steps (soft thresholding).
type lasso struct {
	cfg Config
}

func (l *lasso) Kind() Kind { return Lasso }

func (l *lasso) InitModel(rng *rand.Rand) []float64 {
	return make([]float64, l.cfg.ModelSize())
}

func (l *lasso) Compute(model []float64, shard *Shard, rng *rand.Rand) []float64 {
	return l.ComputeInto(nil, model, shard, rng)
}

func (l *lasso) ComputeInto(dst, model []float64, shard *Shard, rng *rand.Rand) []float64 {
	c := l.cfg.withDefaults()
	grad := deltaBuf(dst, len(model))
	n := float64(maxInt(len(shard.Examples), 1))
	for _, ex := range shard.Examples {
		pred := dot(model, ex.X)
		resid := pred - ex.Y
		for f, x := range ex.X {
			grad[f] -= c.LearningRate * resid * x / n
		}
	}
	// Proximal step: express soft thresholding as an additive delta so
	// servers can apply it with a plain +=.
	for f := range grad {
		next := softThreshold(model[f]+grad[f], c.LearningRate*c.Lambda)
		grad[f] = next - model[f]
	}
	return grad
}

func (l *lasso) Loss(model []float64, shard *Shard) float64 {
	c := l.cfg.withDefaults()
	var loss float64
	for _, ex := range shard.Examples {
		r := dot(model, ex.X) - ex.Y
		loss += r * r / 2
	}
	loss /= float64(maxInt(len(shard.Examples), 1))
	var l1 float64
	for _, w := range model {
		l1 += math.Abs(w)
	}
	return loss + c.Lambda*l1
}

func softThreshold(v, t float64) float64 {
	switch {
	case v > t:
		return v - t
	case v < -t:
		return v + t
	default:
		return 0
	}
}

func dot(a, b []float64) float64 {
	var s float64
	for i := range b {
		s += a[i] * b[i]
	}
	return s
}

// nmf factorizes the ratings matrix X ≈ Uᵀ·V with non-negative factors;
// the item-factor matrix V lives in the parameter servers while per-row
// user factors U are recomputed locally (the standard PS formulation).
type nmf struct {
	cfg Config
}

func (n *nmf) Kind() Kind { return NMF }

func (n *nmf) InitModel(rng *rand.Rand) []float64 {
	v := make([]float64, n.cfg.ModelSize())
	for i := range v {
		v[i] = 0.1 + 0.1*rng.Float64()
	}
	return v
}

func (n *nmf) Compute(model []float64, shard *Shard, rng *rand.Rand) []float64 {
	return n.ComputeInto(nil, model, shard, rng)
}

func (n *nmf) ComputeInto(dst, model []float64, shard *Shard, rng *rand.Rand) []float64 {
	c := n.cfg.withDefaults()
	grad := deltaBuf(dst, len(model))
	u := make([]float64, c.Classes)
	rows := float64(maxInt(len(shard.Examples), 1))
	for _, ex := range shard.Examples {
		n.solveUser(model, ex.X, u)
		// Gradient of ||x - Vᵀu||² with respect to V, projected to keep
		// factors non-negative.
		for k := 0; k < c.Classes; k++ {
			row := k * c.Features
			for f, x := range ex.X {
				pred := predictNMF(model, u, f, c)
				g := -c.LearningRate * (pred - x) * u[k] / rows
				next := model[row+f] + grad[row+f] + g
				if next < 0 {
					g = -(model[row+f] + grad[row+f])
				}
				grad[row+f] += g
			}
		}
	}
	return grad
}

// solveUser fits the user factors for one row by a few multiplicative
// updates against the current item factors.
func (n *nmf) solveUser(model, x []float64, u []float64) {
	c := n.cfg.withDefaults()
	for k := range u {
		u[k] = 0.5
	}
	for it := 0; it < 5; it++ {
		for k := 0; k < c.Classes; k++ {
			var num, den float64
			row := k * c.Features
			for f, xv := range x {
				num += model[row+f] * xv
				den += model[row+f] * predictNMF(model, u, f, c)
			}
			if den > 1e-12 {
				u[k] *= num / den
			}
		}
	}
}

func predictNMF(model, u []float64, f int, c Config) float64 {
	var p float64
	for k := 0; k < c.Classes; k++ {
		p += u[k] * model[k*c.Features+f]
	}
	return p
}

func (n *nmf) Loss(model []float64, shard *Shard) float64 {
	c := n.cfg.withDefaults()
	u := make([]float64, c.Classes)
	var loss float64
	var count int
	for _, ex := range shard.Examples {
		n.solveUser(model, ex.X, u)
		for f, x := range ex.X {
			r := predictNMF(model, u, f, c) - x
			loss += r * r
			count++
		}
	}
	return loss / float64(maxInt(count, 1))
}

// lda is latent Dirichlet allocation trained by one collapsed-Gibbs sweep
// per COMP subtask; the global topic-word counts are the PS model.
type lda struct {
	cfg Config
}

func (l *lda) Kind() Kind { return LDA }

func (l *lda) InitModel(rng *rand.Rand) []float64 {
	// Topic-word counts start at a small smoothing mass.
	m := make([]float64, l.cfg.ModelSize())
	for i := range m {
		m[i] = 0.1
	}
	return m
}

func (l *lda) Compute(model []float64, shard *Shard, rng *rand.Rand) []float64 {
	return l.ComputeInto(nil, model, shard, rng)
}

func (l *lda) ComputeInto(dst, model []float64, shard *Shard, rng *rand.Rand) []float64 {
	c := l.cfg.withDefaults()
	const alphaDirichlet = 0.1
	delta := deltaBuf(dst, len(model))
	probs := make([]float64, c.Classes)
	topicTotals := make([]float64, c.Classes)
	for k := 0; k < c.Classes; k++ {
		var t float64
		for f := 0; f < c.Features; f++ {
			t += model[k*c.Features+f]
		}
		topicTotals[k] = t
	}
	for _, doc := range shard.Examples {
		docCounts := make([]float64, c.Classes)
		assignments := make([]int, len(doc.Tokens))
		// Initialize assignments proportional to current word-topic mass.
		for ti, w := range doc.Tokens {
			for k := 0; k < c.Classes; k++ {
				probs[k] = model[k*c.Features+w] / (topicTotals[k] + 1)
			}
			assignments[ti] = sample(probs, rng)
			docCounts[assignments[ti]]++
		}
		// One Gibbs sweep.
		for ti, w := range doc.Tokens {
			old := assignments[ti]
			docCounts[old]--
			for k := 0; k < c.Classes; k++ {
				wordMass := model[k*c.Features+w] + delta[k*c.Features+w]
				probs[k] = (docCounts[k] + alphaDirichlet) * wordMass / (topicTotals[k] + 1)
			}
			next := sample(probs, rng)
			assignments[ti] = next
			docCounts[next]++
			if next != old {
				delta[old*c.Features+w]--
				delta[next*c.Features+w]++
				topicTotals[old]--
				topicTotals[next]++
			}
		}
	}
	// Keep counts non-negative when applied.
	for i := range delta {
		if model[i]+delta[i] < 0.01 {
			delta[i] = 0.01 - model[i]
		}
	}
	return delta
}

func (l *lda) Loss(model []float64, shard *Shard) float64 {
	c := l.cfg.withDefaults()
	topicTotals := make([]float64, c.Classes)
	for k := 0; k < c.Classes; k++ {
		for f := 0; f < c.Features; f++ {
			topicTotals[k] += model[k*c.Features+f]
		}
	}
	var ll float64
	var tokens int
	for _, doc := range shard.Examples {
		for _, w := range doc.Tokens {
			var p float64
			for k := 0; k < c.Classes; k++ {
				p += (model[k*c.Features+w] / (topicTotals[k] + 1)) / float64(c.Classes)
			}
			ll -= math.Log(math.Max(p, 1e-12))
			tokens++
		}
	}
	return ll / float64(maxInt(tokens, 1))
}

func sample(weights []float64, rng *rand.Rand) int {
	var sum float64
	for _, w := range weights {
		if w > 0 {
			sum += w
		}
	}
	if sum <= 0 {
		return rng.Intn(len(weights))
	}
	r := rng.Float64() * sum
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		r -= w
		if r <= 0 {
			return i
		}
	}
	return len(weights) - 1
}
