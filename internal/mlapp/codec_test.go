package mlapp

import (
	"math"
	"testing"
)

func sampleExamples() []Example {
	return []Example{
		{X: []float64{1.5, -2.25, 0}, Y: 2},
		{X: []float64{math.Inf(1), math.Inf(-1), math.NaN()}, Y: -0.0},
		{Tokens: []int{0, 7, 7, 31}},
		{}, // fully empty example
		{X: []float64{3.14}, Y: 1, Tokens: []int{5}},
	}
}

func TestExampleCodecRoundTrip(t *testing.T) {
	in := sampleExamples()
	enc := AppendExamples(nil, in)
	if len(enc) != EncodedExamplesLen(in) {
		t.Errorf("encoded %d bytes, EncodedExamplesLen = %d", len(enc), EncodedExamplesLen(in))
	}
	out, err := DecodeExamples(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("decoded %d examples, want %d", len(out), len(in))
	}
	for i := range in {
		if got, want := math.Float64bits(out[i].Y), math.Float64bits(in[i].Y); got != want {
			t.Errorf("example %d: Y bits %x, want %x", i, got, want)
		}
		if len(out[i].X) != len(in[i].X) {
			t.Fatalf("example %d: %d X values, want %d", i, len(out[i].X), len(in[i].X))
		}
		for j := range in[i].X {
			if got, want := math.Float64bits(out[i].X[j]), math.Float64bits(in[i].X[j]); got != want {
				t.Errorf("example %d X[%d]: bits %x, want %x", i, j, got, want)
			}
		}
		if len(out[i].Tokens) != len(in[i].Tokens) {
			t.Fatalf("example %d: %d tokens, want %d", i, len(out[i].Tokens), len(in[i].Tokens))
		}
		for j := range in[i].Tokens {
			if out[i].Tokens[j] != in[i].Tokens[j] {
				t.Errorf("example %d token %d = %d, want %d", i, j, out[i].Tokens[j], in[i].Tokens[j])
			}
		}
	}
}

func TestExampleCodecEmptyBlock(t *testing.T) {
	enc := AppendExamples(nil, nil)
	out, err := DecodeExamples(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 {
		t.Errorf("decoded %d examples from empty block", len(out))
	}
}

func TestExampleCodecAppendsToPrefix(t *testing.T) {
	prefix := []byte{0xde, 0xad}
	enc := AppendExamples(prefix, sampleExamples())
	if enc[0] != 0xde || enc[1] != 0xad {
		t.Fatal("prefix clobbered")
	}
	if _, err := DecodeExamples(enc[2:]); err != nil {
		t.Fatal(err)
	}
}

func TestExampleCodecRejectsGarbage(t *testing.T) {
	enc := AppendExamples(nil, sampleExamples())
	cases := map[string][]byte{
		"empty":       {},
		"short magic": enc[:3],
		"bad magic":   append([]byte{9, 9, 9, 9}, enc[4:]...),
		"no count":    enc[:4],
		"truncated":   enc[:len(enc)-3],
		"half header": enc[:10],
	}
	for name, b := range cases {
		if _, err := DecodeExamples(b); err == nil {
			t.Errorf("%s: decode succeeded", name)
		}
	}
}

func TestExampleCodecGeneratedShards(t *testing.T) {
	// Every algorithm's generated data must survive the columnar layout.
	for _, kind := range []Kind{MLR, Lasso, NMF, LDA} {
		cfg := Config{Kind: kind, Features: 12, Classes: 3, Rows: 40}
		shards, err := GenerateShards(cfg, 2, 11)
		if err != nil {
			t.Fatal(err)
		}
		for si, sh := range shards {
			enc := AppendExamples(nil, sh.Examples)
			out, err := DecodeExamples(enc)
			if err != nil {
				t.Fatalf("%v shard %d: %v", kind, si, err)
			}
			if len(out) != len(sh.Examples) {
				t.Fatalf("%v shard %d: %d examples, want %d", kind, si, len(out), len(sh.Examples))
			}
		}
	}
}
