package mlapp

import (
	"math"
	"math/rand"
	"testing"
)

func configFor(k Kind) Config {
	return Config{Kind: k, Features: 16, Classes: 3, Rows: 120, LearningRate: 0.2}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{MLR: "MLR", Lasso: "Lasso", NMF: "NMF", LDA: "LDA", Kind(9): "Kind(9)"} {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d) = %q, want %q", int(k), got, want)
		}
	}
}

func TestNewUnknownKind(t *testing.T) {
	if _, err := New(Config{Kind: Kind(42)}); err == nil {
		t.Error("New with unknown kind succeeded")
	}
}

func TestGenerateShards(t *testing.T) {
	c := configFor(MLR)
	shards, err := GenerateShards(c, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(shards) != 4 {
		t.Fatalf("got %d shards", len(shards))
	}
	total := 0
	lastOffset := -1
	for _, s := range shards {
		total += len(s.Examples)
		if s.RowOffset <= lastOffset {
			t.Error("row offsets not increasing")
		}
		lastOffset = s.RowOffset
		for _, ex := range s.Examples {
			if len(ex.X) != c.Features {
				t.Fatalf("example has %d features, want %d", len(ex.X), c.Features)
			}
			if y := int(ex.Y); y < 0 || y >= c.Classes {
				t.Fatalf("label %d out of range", y)
			}
		}
	}
	if total < c.Rows {
		t.Errorf("generated %d rows, want >= %d", total, c.Rows)
	}
	if _, err := GenerateShards(c, 0, 7); err == nil {
		t.Error("zero shards accepted")
	}
}

func TestGenerateShardsDeterministic(t *testing.T) {
	c := configFor(Lasso)
	a, _ := GenerateShards(c, 2, 3)
	b, _ := GenerateShards(c, 2, 3)
	if len(a[0].Examples) != len(b[0].Examples) {
		t.Fatal("shard sizes differ")
	}
	for i := range a[0].Examples {
		if a[0].Examples[i].Y != b[0].Examples[i].Y {
			t.Fatal("same seed produced different data")
		}
	}
}

// TestTrainingReducesLoss is the core sanity check for every algorithm:
// iterating Compute/apply must reduce the objective on the planted data.
func TestTrainingReducesLoss(t *testing.T) {
	for _, kind := range []Kind{MLR, Lasso, NMF, LDA} {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			c := configFor(kind)
			algo, err := New(c)
			if err != nil {
				t.Fatal(err)
			}
			shards, err := GenerateShards(c, 2, 11)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(5))
			model := algo.InitModel(rng)
			if len(model) != c.ModelSize() {
				t.Fatalf("model size %d, want %d", len(model), c.ModelSize())
			}
			lossBefore := algo.Loss(model, shards[0]) + algo.Loss(model, shards[1])
			iters := 30
			if kind == LDA {
				iters = 10
			}
			for it := 0; it < iters; it++ {
				for _, s := range shards {
					delta := algo.Compute(model, s, rng)
					if len(delta) != len(model) {
						t.Fatalf("delta size %d, want %d", len(delta), len(model))
					}
					for i := range model {
						model[i] += delta[i]
					}
				}
			}
			lossAfter := algo.Loss(model, shards[0]) + algo.Loss(model, shards[1])
			if math.IsNaN(lossAfter) || math.IsInf(lossAfter, 0) {
				t.Fatalf("loss diverged to %v", lossAfter)
			}
			if lossAfter >= lossBefore {
				t.Errorf("loss did not decrease: %.4f -> %.4f", lossBefore, lossAfter)
			}
		})
	}
}

func TestNMFModelStaysNonNegative(t *testing.T) {
	c := configFor(NMF)
	algo, _ := New(c)
	shards, _ := GenerateShards(c, 1, 2)
	rng := rand.New(rand.NewSource(1))
	model := algo.InitModel(rng)
	for it := 0; it < 10; it++ {
		delta := algo.Compute(model, shards[0], rng)
		for i := range model {
			model[i] += delta[i]
		}
	}
	for i, v := range model {
		if v < -1e-9 {
			t.Fatalf("model[%d] = %v, want non-negative factors", i, v)
		}
	}
}

func TestLassoProducesSparseModel(t *testing.T) {
	c := configFor(Lasso)
	c.Lambda = 0.05
	algo, _ := New(c)
	shards, _ := GenerateShards(c, 1, 9)
	rng := rand.New(rand.NewSource(1))
	model := algo.InitModel(rng)
	for it := 0; it < 200; it++ {
		delta := algo.Compute(model, shards[0], rng)
		for i := range model {
			model[i] += delta[i]
		}
	}
	zeros := 0
	for _, w := range model {
		if w == 0 {
			zeros++
		}
	}
	// The planted model uses only 4 features; L1 should zero out many of
	// the remaining 12.
	if zeros < 4 {
		t.Errorf("only %d exact zeros in lasso model, want sparsity", zeros)
	}
}

func TestLDAKeepsCountsPositive(t *testing.T) {
	c := configFor(LDA)
	algo, _ := New(c)
	shards, _ := GenerateShards(c, 1, 4)
	rng := rand.New(rand.NewSource(2))
	model := algo.InitModel(rng)
	for it := 0; it < 5; it++ {
		delta := algo.Compute(model, shards[0], rng)
		for i := range model {
			model[i] += delta[i]
		}
	}
	for i, v := range model {
		if v <= 0 {
			t.Fatalf("model[%d] = %v, want positive topic-word counts", i, v)
		}
	}
}

func TestModelSize(t *testing.T) {
	tests := []struct {
		kind Kind
		want int
	}{
		{MLR, 3 * 16},
		{Lasso, 16},
		{NMF, 3 * 16},
		{LDA, 3 * 16},
	}
	for _, tt := range tests {
		c := configFor(tt.kind)
		if got := c.ModelSize(); got != tt.want {
			t.Errorf("%s ModelSize = %d, want %d", tt.kind, got, tt.want)
		}
	}
}
