package mlapp

import (
	"math"
	"math/rand"
	"runtime"
	"testing"
)

// fusedConfig returns a shard big enough for several chunks plus a model
// and RNG with fixed seeds.
func fusedSetup(t *testing.T, kind Kind) (Algorithm, *Shard, []float64) {
	t.Helper()
	cfg := Config{Kind: kind, Features: 16, Classes: 4, Rows: 200, LearningRate: 0.2}
	algo, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	shards, err := GenerateShards(cfg, 1, 42)
	if err != nil {
		t.Fatal(err)
	}
	model := algo.InitModel(rand.New(rand.NewSource(7)))
	return algo, shards[0], model
}

// TestComputeFusedDeterministicAcrossParallelism is the bit-identity
// contract: the fused kernel's delta and loss must not depend on the
// worker count.
func TestComputeFusedDeterministicAcrossParallelism(t *testing.T) {
	workerCounts := []int{1, 4, runtime.GOMAXPROCS(0)}
	for _, kind := range []Kind{MLR, Lasso, NMF, LDA} {
		algo, shard, model := fusedSetup(t, kind)
		var ref []float64
		var refLoss float64
		for wi, workers := range workerCounts {
			// Fresh RNG per run: the seed stream must be consumed
			// identically at any parallelism.
			rng := rand.New(rand.NewSource(99))
			delta, loss := ComputeFused(algo, nil, model, shard, rng, workers, nil)
			if wi == 0 {
				ref = append([]float64(nil), delta...)
				refLoss = loss
				continue
			}
			if math.Float64bits(loss) != math.Float64bits(refLoss) {
				t.Errorf("%v: loss at workers=%d is %x, want %x", kind, workers,
					math.Float64bits(loss), math.Float64bits(refLoss))
			}
			if len(delta) != len(ref) {
				t.Fatalf("%v: delta length %d, want %d", kind, len(delta), len(ref))
			}
			for i := range delta {
				if math.Float64bits(delta[i]) != math.Float64bits(ref[i]) {
					t.Fatalf("%v: delta[%d] at workers=%d is %x, want %x",
						kind, i, workers, math.Float64bits(delta[i]), math.Float64bits(ref[i]))
				}
			}
		}
	}
}

// TestComputeFusedScratchReuse proves a reused Scratch yields the same
// bits as a fresh one (the worker's steady-state configuration).
func TestComputeFusedScratchReuse(t *testing.T) {
	algo, shard, model := fusedSetup(t, MLR)
	scratch := &Scratch{}
	var first []float64
	for round := 0; round < 3; round++ {
		rng := rand.New(rand.NewSource(5))
		delta, _ := ComputeFused(algo, nil, model, shard, rng, 4, scratch)
		if round == 0 {
			first = append([]float64(nil), delta...)
			continue
		}
		for i := range delta {
			if math.Float64bits(delta[i]) != math.Float64bits(first[i]) {
				t.Fatalf("round %d: delta[%d] changed with scratch reuse", round, i)
			}
		}
	}
}

// TestComputeFusedDstReuse: passing a dirty dst must not leak stale
// values into the result.
func TestComputeFusedDstReuse(t *testing.T) {
	algo, shard, model := fusedSetup(t, Lasso)
	rng := rand.New(rand.NewSource(5))
	clean, _ := ComputeFused(algo, nil, model, shard, rng, 4, nil)
	dirty := make([]float64, len(model))
	for i := range dirty {
		dirty[i] = 1e9
	}
	rng = rand.New(rand.NewSource(5))
	reused, _ := ComputeFused(algo, dirty, model, shard, rng, 4, nil)
	for i := range clean {
		if math.Float64bits(reused[i]) != math.Float64bits(clean[i]) {
			t.Fatalf("delta[%d] polluted by dirty dst", i)
		}
	}
}

// TestComputeFusedLossMatchesSerialLoss: for the deterministic algorithms
// the fused objective must equal the two-pass Loss at the same model.
func TestComputeFusedLossMatchesSerialLoss(t *testing.T) {
	for _, kind := range []Kind{MLR, Lasso, NMF, LDA} {
		algo, shard, model := fusedSetup(t, kind)
		rng := rand.New(rand.NewSource(99))
		_, fusedLoss := ComputeFused(algo, nil, model, shard, rng, 4, nil)
		serial := algo.Loss(model, shard)
		// Chunked summation reorders float additions, so compare within a
		// tight relative tolerance rather than bit-exactly.
		diff := math.Abs(fusedLoss - serial)
		if diff > 1e-9*math.Max(1, math.Abs(serial)) {
			t.Errorf("%v: fused loss %v, serial loss %v", kind, fusedLoss, serial)
		}
	}
}

// TestComputeFusedInvariants: the nonlinear finalizers must uphold the
// same invariants as the serial kernels.
func TestComputeFusedInvariants(t *testing.T) {
	// NMF: applying the delta keeps factors non-negative.
	algo, shard, model := fusedSetup(t, NMF)
	rng := rand.New(rand.NewSource(3))
	delta, _ := ComputeFused(algo, nil, model, shard, rng, 4, nil)
	for i := range delta {
		if model[i]+delta[i] < 0 {
			t.Fatalf("NMF factor %d negative after update: %v", i, model[i]+delta[i])
		}
	}
	// LDA: counts keep the 0.01 floor.
	algo, shard, model = fusedSetup(t, LDA)
	rng = rand.New(rand.NewSource(3))
	delta, _ = ComputeFused(algo, nil, model, shard, rng, 4, nil)
	for i := range delta {
		if model[i]+delta[i] < 0.01-1e-12 {
			t.Fatalf("LDA count %d below floor after update: %v", i, model[i]+delta[i])
		}
	}
}

// TestComputeFusedTrainingReducesLoss drives a few fused iterations and
// checks the objective falls — the kernels must be genuine gradients, not
// just deterministic ones.
func TestComputeFusedTrainingReducesLoss(t *testing.T) {
	for _, kind := range []Kind{MLR, Lasso, NMF, LDA} {
		cfg := Config{Kind: kind, Features: 16, Classes: 4, Rows: 120, LearningRate: 0.2}
		algo, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		shards, err := GenerateShards(cfg, 1, 21)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(17))
		model := algo.InitModel(rng)
		scratch := &Scratch{}
		var delta []float64
		var firstLoss, lastLoss float64
		iters := 12
		for it := 0; it < iters; it++ {
			var loss float64
			delta, loss = ComputeFused(algo, delta, model, shards[0], rng, 0, scratch)
			if it == 0 {
				firstLoss = loss
			}
			lastLoss = loss
			for i := range model {
				model[i] += delta[i]
			}
		}
		if lastLoss >= firstLoss {
			t.Errorf("%v: fused training did not reduce loss: %.6f -> %.6f", kind, firstLoss, lastLoss)
		}
	}
}

func TestFusedChunkGeometry(t *testing.T) {
	cases := []struct{ n, chunks int }{
		{0, 1}, {1, 1}, {16, 1}, {17, 2}, {200, 13}, {100000, fusedMaxChunks},
	}
	for _, c := range cases {
		if got := fusedChunks(c.n); got != c.chunks {
			t.Errorf("fusedChunks(%d) = %d, want %d", c.n, got, c.chunks)
		}
	}
	// Bounds must partition [0,n) exactly, in order.
	for _, n := range []int{1, 17, 200, 12345} {
		chunks := fusedChunks(n)
		prev := 0
		for i := 0; i < chunks; i++ {
			lo, hi := fusedBounds(n, chunks, i)
			if lo != prev || hi < lo {
				t.Fatalf("n=%d chunk %d: bounds [%d,%d) after %d", n, i, lo, hi, prev)
			}
			prev = hi
		}
		if prev != n {
			t.Fatalf("n=%d: chunks cover %d rows", n, prev)
		}
	}
}
