package mlapp

import (
	"math"
	"math/rand"

	"harmony/internal/parallel"
)

// This file is the multicore COMP kernel: one fused pass over the shard
// computes the model update and the objective together, chunked across a
// bounded core pool. The executor runs one COMP subtask at a time
// (§IV-A) precisely because a COMP subtask is assumed to saturate the
// machine — this kernel makes that assumption true.
//
// Determinism contract (same as internal/parallel): chunk boundaries and
// per-chunk RNG seeds are pure functions of the shard size and the
// caller's RNG stream, each chunk accumulates into its own scratch delta,
// and the partials are reduced on one goroutine in ascending chunk
// order. Results are therefore bit-identical at any parallelism.
//
// The chunked kernels are the unit of semantics, not an approximation of
// the serial Compute/Loss pair: per-example work reads only the pulled
// model (never the partially-accumulated delta), nonlinear steps (Lasso's
// proximal update, NMF's and LDA's non-negativity floors) run once per
// pass on the reduced delta, and LDA runs an independent collapsed-Gibbs
// sweep per chunk from per-chunk seeds (the standard approximate
// distributed Gibbs formulation). The serial Compute/ComputeInto/Loss
// methods remain as the reference implementations.

const (
	// fusedChunkRows is the minimum chunk granularity: chunks never get
	// smaller than this, so tiny shards stay on the sequential path.
	fusedChunkRows = 16
	// fusedMaxChunks bounds the scratch arena at fusedMaxChunks×modelSize
	// floats. Both constants depend only on the shard size, never on the
	// worker count — chunk geometry is part of the determinism contract.
	fusedMaxChunks = 64
)

// fusedChunks reports the chunk count for an n-example shard.
func fusedChunks(n int) int {
	if n <= fusedChunkRows {
		return 1
	}
	c := (n + fusedChunkRows - 1) / fusedChunkRows
	if c > fusedMaxChunks {
		c = fusedMaxChunks
	}
	return c
}

// fusedBounds returns chunk i's half-open example range, splitting n rows
// as evenly as possible (the first n%chunks chunks take one extra row).
func fusedBounds(n, chunks, i int) (lo, hi int) {
	base := n / chunks
	extra := n % chunks
	lo = i*base + minInt(i, extra)
	hi = lo + base
	if i < extra {
		hi++
	}
	return lo, hi
}

// chunkFn computes one chunk's contribution: the additive update for
// examples [lo,hi) accumulated into delta (pre-zeroed), plus the chunk's
// unnormalized loss sum and term count.
type chunkFn func(lo, hi int, delta []float64, rng *rand.Rand) (lossSum float64, lossN int)

// finalizeFn runs once on the reduced delta (nonlinear steps, clamps) and
// turns the summed loss terms into the objective value.
type finalizeFn func(delta []float64, lossSum float64, lossN int) float64

// fusedAlgo is implemented by algorithms that provide the fused chunked
// kernel; ComputeFused falls back to the serial two-pass path otherwise.
// usesRNG reports whether the chunk function draws from its RNG: seeding
// a math/rand generator costs microseconds per chunk, so deterministic
// kernels (MLR, Lasso, NMF) skip RNG setup entirely.
type fusedAlgo interface {
	Algorithm
	fusedPass(shard *Shard, model []float64) (chunk chunkFn, finalize finalizeFn, usesRNG bool)
}

// All in-tree algorithms provide the fused kernel.
var (
	_ fusedAlgo = (*mlr)(nil)
	_ fusedAlgo = (*lasso)(nil)
	_ fusedAlgo = (*nmf)(nil)
	_ fusedAlgo = (*lda)(nil)
)

// Scratch is the reusable arena for ComputeFused: per-chunk partial
// deltas, loss terms, and reusable per-chunk RNGs. The zero value is
// ready to use; a caller that iterates (the live worker) keeps one
// Scratch per job so the steady-state pass allocates nothing.
type Scratch struct {
	deltas [][]float64
	loss   []float64
	count  []int
	rngs   []*rand.Rand
}

// ensure sizes the arena for chunks×modelSize without shrinking capacity.
func (s *Scratch) ensure(chunks, modelSize int) {
	if cap(s.deltas) < chunks {
		s.deltas = make([][]float64, chunks)
	}
	s.deltas = s.deltas[:chunks]
	for i := range s.deltas {
		if cap(s.deltas[i]) < modelSize {
			s.deltas[i] = make([]float64, modelSize)
		}
		s.deltas[i] = s.deltas[i][:modelSize]
	}
	if cap(s.loss) < chunks {
		s.loss = make([]float64, chunks)
		s.count = make([]int, chunks)
	}
	s.loss = s.loss[:chunks]
	s.count = s.count[:chunks]
}

// rng returns the i-th cached generator seeded to seed.
func (s *Scratch) rng(i int, seed int64) *rand.Rand {
	for len(s.rngs) <= i {
		s.rngs = append(s.rngs, rand.New(&fusedSource{}))
	}
	s.rngs[i].Seed(seed)
	return s.rngs[i]
}

// fusedSource is the chunk generator: splitmix64, chosen for its O(1)
// seeding. math/rand's default source initializes a ~600-word table on
// every Seed, and the kernel reseeds one generator per chunk per
// iteration — with the default source that tax showed up as ~10% of an
// LDA COMP subtask. Chunk randomness is part of the fused kernel's own
// semantics (the chunked Gibbs sweep), so it owes no stream
// compatibility to math/rand's source.
type fusedSource struct{ state uint64 }

func (s *fusedSource) Seed(seed int64) { s.state = uint64(seed) }

func (s *fusedSource) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (s *fusedSource) Int63() int64 { return int64(s.Uint64() >> 1) }

// ComputeFused runs the fused gradient+loss pass over the shard on at
// most workers goroutines (values below 1 select GOMAXPROCS) and returns
// the update written into dst (grown when needed) together with the
// objective at model. scratch may be nil for one-shot callers; iterating
// callers pass a reused Scratch. The delta and loss are bit-identical at
// any workers setting.
func ComputeFused(algo Algorithm, dst, model []float64, shard *Shard, rng *rand.Rand, workers int, scratch *Scratch) ([]float64, float64) {
	fa, ok := algo.(fusedAlgo)
	if !ok {
		// Reference path for foreign Algorithm implementations: two passes,
		// no fusion.
		dst = algo.ComputeInto(dst, model, shard, rng)
		return dst, algo.Loss(model, shard)
	}
	n := len(shard.Examples)
	chunks := fusedChunks(n)
	chunk, finalize, usesRNG := fa.fusedPass(shard, model)
	dst = deltaBuf(dst, len(model))
	if usesRNG && scratch == nil {
		scratch = &Scratch{}
	}

	if chunks == 1 {
		// Single-chunk fast path: compute straight into dst. Bit-identical
		// to the scratch path because reduction copies (not adds) chunk 0.
		var crng *rand.Rand
		if usesRNG {
			seed := int64(1)
			if rng != nil {
				seed = rng.Int63()
			}
			crng = scratch.rng(0, seed)
		}
		lossSum, lossN := chunk(0, n, dst, crng)
		return dst, finalize(dst, lossSum, lossN)
	}

	if scratch == nil {
		scratch = &Scratch{}
	}
	scratch.ensure(chunks, len(model))
	// Per-chunk generators are seeded sequentially from the caller's RNG
	// before the parallel region, so the stream consumed per iteration is
	// independent of the worker count (and Scratch is not mutated
	// concurrently). Deterministic kernels skip RNG setup entirely.
	if usesRNG {
		for i := 0; i < chunks; i++ {
			seed := int64(i + 1)
			if rng != nil {
				seed = rng.Int63()
			}
			scratch.rng(i, seed)
		}
	}
	parallel.Run(chunks, parallel.Workers(workers), func(i int) {
		d := scratch.deltas[i]
		for j := range d {
			d[j] = 0
		}
		lo, hi := fusedBounds(n, chunks, i)
		var crng *rand.Rand
		if usesRNG {
			crng = scratch.rngs[i]
		}
		scratch.loss[i], scratch.count[i] = chunk(lo, hi, d, crng)
	})
	// Deterministic reduction: ascending chunk order on this goroutine.
	// Chunk 0 is copied, not added, so the single-chunk fast path above
	// produces the same bits (0 + -0 would flip the sign bit).
	copy(dst, scratch.deltas[0])
	lossSum, lossN := scratch.loss[0], scratch.count[0]
	for c := 1; c < chunks; c++ {
		d := scratch.deltas[c]
		for j := range dst {
			dst[j] += d[j]
		}
		lossSum += scratch.loss[c]
		lossN += scratch.count[c]
	}
	return dst, finalize(dst, lossSum, lossN)
}

// --- per-algorithm fused kernels ---------------------------------------

func (m *mlr) fusedPass(shard *Shard, model []float64) (chunkFn, finalizeFn, bool) {
	c := m.cfg.withDefaults()
	n := float64(maxInt(len(shard.Examples), 1))
	chunk := func(lo, hi int, grad []float64, _ *rand.Rand) (float64, int) {
		probs := make([]float64, c.Classes)
		var lossSum float64
		for _, ex := range shard.Examples[lo:hi] {
			softmax(model, ex.X, c, probs)
			y := int(ex.Y)
			lossSum -= math.Log(math.Max(probs[y], 1e-12))
			for cl := 0; cl < c.Classes; cl++ {
				coef := probs[cl]
				if cl == y {
					coef -= 1
				}
				row := cl * c.Features
				for f, x := range ex.X {
					grad[row+f] -= c.LearningRate * coef * x / n
				}
			}
		}
		return lossSum, hi - lo
	}
	finalize := func(_ []float64, lossSum float64, lossN int) float64 {
		return lossSum / float64(maxInt(lossN, 1))
	}
	return chunk, finalize, false
}

func (l *lasso) fusedPass(shard *Shard, model []float64) (chunkFn, finalizeFn, bool) {
	c := l.cfg.withDefaults()
	n := float64(maxInt(len(shard.Examples), 1))
	chunk := func(lo, hi int, grad []float64, _ *rand.Rand) (float64, int) {
		var lossSum float64
		for _, ex := range shard.Examples[lo:hi] {
			pred := dot(model, ex.X)
			resid := pred - ex.Y
			lossSum += resid * resid / 2
			for f, x := range ex.X {
				grad[f] -= c.LearningRate * resid * x / n
			}
		}
		return lossSum, hi - lo
	}
	finalize := func(delta []float64, lossSum float64, lossN int) float64 {
		// The proximal step is nonlinear, so it runs once on the reduced
		// gradient — exactly as the serial kernel applies it after its
		// accumulation loop.
		for f := range delta {
			next := softThreshold(model[f]+delta[f], c.LearningRate*c.Lambda)
			delta[f] = next - model[f]
		}
		var l1 float64
		for _, w := range model {
			l1 += math.Abs(w)
		}
		return lossSum/float64(maxInt(lossN, 1)) + c.Lambda*l1
	}
	return chunk, finalize, false
}

func (nm *nmf) fusedPass(shard *Shard, model []float64) (chunkFn, finalizeFn, bool) {
	c := nm.cfg.withDefaults()
	rows := float64(maxInt(len(shard.Examples), 1))
	chunk := func(lo, hi int, grad []float64, _ *rand.Rand) (float64, int) {
		u := make([]float64, c.Classes)
		preds := make([]float64, c.Features)
		var lossSum float64
		var lossN int
		for _, ex := range shard.Examples[lo:hi] {
			nm.solveUser(model, ex.X, u)
			// Fused objective: the residual at the solved user factors,
			// priced before this example's gradient contribution (the
			// serial Loss also evaluates at the pulled model). The
			// prediction depends only on (model, u, f), so the values
			// computed here feed every topic row of the gradient below —
			// the serial kernel recomputes the O(Classes) sum per row.
			for f, x := range ex.X {
				preds[f] = predictNMF(model, u, f, c)
				r := preds[f] - x
				lossSum += r * r
				lossN++
			}
			for k := 0; k < c.Classes; k++ {
				row := k * c.Features
				for f, x := range ex.X {
					g := -c.LearningRate * (preds[f] - x) * u[k] / rows
					next := model[row+f] + grad[row+f] + g
					if next < 0 {
						g = -(model[row+f] + grad[row+f])
					}
					grad[row+f] += g
				}
			}
		}
		return lossSum, lossN
	}
	finalize := func(delta []float64, lossSum float64, lossN int) float64 {
		// Per-chunk projections kept each partial non-negative against the
		// model; their sum can still undershoot, so clamp once after the
		// reduction to restore V ≥ 0.
		for i := range delta {
			if model[i]+delta[i] < 0 {
				delta[i] = -model[i]
			}
		}
		return lossSum / float64(maxInt(lossN, 1))
	}
	return chunk, finalize, false
}

func (l *lda) fusedPass(shard *Shard, model []float64) (chunkFn, finalizeFn, bool) {
	c := l.cfg.withDefaults()
	const alphaDirichlet = 0.1
	// Topic totals at the pulled model, computed once and shared read-only
	// across chunks; each chunk evolves its own copy during its sweep.
	base := make([]float64, c.Classes)
	for k := 0; k < c.Classes; k++ {
		var t float64
		for f := 0; f < c.Features; f++ {
			t += model[k*c.Features+f]
		}
		base[k] = t
	}
	chunk := func(lo, hi int, delta []float64, rng *rand.Rand) (float64, int) {
		probs := make([]float64, c.Classes)
		topicTotals := make([]float64, c.Classes)
		copy(topicTotals, base)
		// Reciprocal caches: the column walks below would otherwise pay one
		// FP division per (token, topic). invTotals tracks topicTotals —
		// only the two entries a Gibbs move touches are refreshed.
		invBase := make([]float64, c.Classes)
		invTotals := make([]float64, c.Classes)
		for k := range invBase {
			invBase[k] = 1 / (base[k] + 1)
			invTotals[k] = 1 / (topicTotals[k] + 1)
		}
		// Per-document state reused across the chunk's documents.
		docCounts := make([]float64, c.Classes)
		var assignments []int
		var lossSum float64
		var tokens int
		// Batched objective: Σ log p_i = log Π p_i, with the running
		// product flushed well before it can underflow (each factor is
		// clamped to ≥1e-12, so a flush threshold of 1e-250 keeps the
		// product out of the denormal range).
		logProd := 1.0
		flushLog := func() {
			if logProd != 1.0 {
				lossSum -= math.Log(logProd)
				logProd = 1.0
			}
		}
		for _, doc := range shard.Examples[lo:hi] {
			for k := range docCounts {
				docCounts[k] = 0
			}
			if cap(assignments) < len(doc.Tokens) {
				assignments = make([]int, len(doc.Tokens))
			}
			assignments = assignments[:len(doc.Tokens)]
			// Initialize assignments proportional to current word-topic
			// mass; the objective — token likelihood at the pulled model —
			// falls out of the same column walk, which is the fusion win.
			for ti, w := range doc.Tokens {
				var p float64
				for k := 0; k < c.Classes; k++ {
					probs[k] = model[k*c.Features+w] * invTotals[k]
					p += model[k*c.Features+w] * invBase[k]
				}
				p /= float64(c.Classes)
				logProd *= math.Max(p, 1e-12)
				if logProd < 1e-250 {
					flushLog()
				}
				tokens++
				assignments[ti] = sample(probs, rng)
				docCounts[assignments[ti]]++
			}
			// One Gibbs sweep against the chunk-local state.
			for ti, w := range doc.Tokens {
				old := assignments[ti]
				docCounts[old]--
				for k := 0; k < c.Classes; k++ {
					wordMass := model[k*c.Features+w] + delta[k*c.Features+w]
					probs[k] = (docCounts[k] + alphaDirichlet) * wordMass * invTotals[k]
				}
				next := sample(probs, rng)
				assignments[ti] = next
				docCounts[next]++
				if next != old {
					delta[old*c.Features+w]--
					delta[next*c.Features+w]++
					topicTotals[old]--
					topicTotals[next]++
					invTotals[old] = 1 / (topicTotals[old] + 1)
					invTotals[next] = 1 / (topicTotals[next] + 1)
				}
			}
		}
		flushLog()
		return lossSum, tokens
	}
	finalize := func(delta []float64, lossSum float64, lossN int) float64 {
		// Keep counts non-negative when applied (same floor as the serial
		// kernel, once on the reduced delta).
		for i := range delta {
			if model[i]+delta[i] < 0.01 {
				delta[i] = 0.01 - model[i]
			}
		}
		return lossSum / float64(maxInt(lossN, 1))
	}
	return chunk, finalize, true
}
