// Package fair is the multi-tenant admission policy layer (DESIGN.md
// §13): named hierarchical queues with weights, quotas and over-quota
// weights, per-job priorities, deficit-weighted fair ordering of held
// jobs, and preemption victim selection. It is pure policy — no locks,
// no goroutines, no clocks — so every decision is a deterministic
// function of its inputs; the master calls it under its own mutex and
// the simulator (experiment.go) drives the exact same code.
//
// The model follows KAI-Scheduler's queue semantics (SNIPPETS.md
// snippet 1): a queue's quota is a guaranteed fraction of the cluster,
// capacity beyond it is borrowed and preemptible, and gang jobs place
// their full worker set atomically (minMember) or not at all.
package fair

import (
	"fmt"
	"math"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// DefaultQueue is where jobs without an explicit queue land. It always
// exists; with no other queues configured it owns the whole cluster,
// which reproduces the single-tenant FIFO behavior of PR 2.
const DefaultQueue = "default"

// Hold reasons surfaced in JobView.HoldReason and journal notes; they
// distinguish a job waiting on the Eq. 1 slowdown bound from one
// waiting on gang capacity or on its tenant's quota.
const (
	// HoldSlowdown: the §IV-B4 arrival rule found no placement that
	// improves the Eq. 1/Eq. 3 scheduling score (the slowdown bound).
	HoldSlowdown = "slowdown_bound"
	// HoldNoGang: no feasible worker set of the job's gang size exists
	// (free workers < MinWorkers and no running group fits the band).
	HoldNoGang = "no_gang_capacity"
	// HoldQuota: the job's queue is at or over its quota while an
	// under-quota queue has held jobs; borrowing is gated.
	HoldQuota = "quota_exhausted"
	// HoldPreempted: the job was reclaimed from a running placement and
	// holds a checkpoint; it resumes from it on re-admission.
	HoldPreempted = "preempted"
)

var nameRe = regexp.MustCompile(`^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$`)

// QueueConfig declares one admission queue.
type QueueConfig struct {
	// Name identifies the queue; job specs reference it.
	Name string `json:"name"`
	// Parent nests this queue under another for hierarchical shares;
	// empty means a root queue.
	Parent string `json:"parent,omitempty"`
	// Weight is the queue's relative share among its siblings when no
	// quota pins it; <= 0 defaults to 1.
	Weight float64 `json:"weight,omitempty"`
	// Quota pins the queue's guaranteed share as a fraction of its
	// parent's share (of the whole cluster for roots), in (0, 1]. Zero
	// derives the share from Weight over the unpinned remainder.
	Quota float64 `json:"quota,omitempty"`
	// OverQuotaWeight orders queues competing for capacity beyond their
	// quota (higher borrows first); <= 0 defaults to Weight.
	OverQuotaWeight float64 `json:"over_quota_weight,omitempty"`
}

// Held is one job waiting in the admission queue, as the policy sees it.
type Held struct {
	Job      string
	Queue    string
	Priority int
	// Seq is the arrival sequence number; FIFO within equal priority.
	Seq uint64
	// Demand is the gang size the job needs to place (>= 1).
	Demand int
	// Resumable marks a preempted job holding a checkpoint.
	Resumable bool
}

// Running is one deployed job, as victim selection sees it.
type Running struct {
	Job      string
	Queue    string
	Priority int
	// StartSeq orders deployments; higher = more recently started.
	StartSeq uint64
	// Workers is the size of the job's current placement.
	Workers int
}

// Usage maps queue name to the number of workers its running jobs
// occupy. Co-located jobs each count their full group, so usage can
// exceed the cluster size; shares gate scheduling pressure, not slots.
type Usage map[string]int

// Scheduler resolves queue shares and orders admission. It is immutable
// after New; reconfiguring builds a new one.
type Scheduler struct {
	cfgs   map[string]QueueConfig
	shares map[string]float64
	names  []string
}

// New validates the queue forest and resolves every queue's share of
// the cluster. The default queue is added when absent. Quotas of
// sibling queues must not sum above 1; weight-only siblings split what
// the quotas leave.
func New(cfgs ...QueueConfig) (*Scheduler, error) {
	s := &Scheduler{
		cfgs:   make(map[string]QueueConfig, len(cfgs)+1),
		shares: make(map[string]float64, len(cfgs)+1),
	}
	for _, c := range cfgs {
		if !nameRe.MatchString(c.Name) {
			return nil, fmt.Errorf("fair: queue name %q must match %s", c.Name, nameRe)
		}
		if _, dup := s.cfgs[c.Name]; dup {
			return nil, fmt.Errorf("fair: duplicate queue %q", c.Name)
		}
		if c.Quota < 0 || c.Quota > 1 {
			return nil, fmt.Errorf("fair: queue %q quota %v outside [0, 1]", c.Name, c.Quota)
		}
		if c.Weight <= 0 {
			c.Weight = 1
		}
		if c.OverQuotaWeight <= 0 {
			c.OverQuotaWeight = c.Weight
		}
		s.cfgs[c.Name] = c
	}
	if _, ok := s.cfgs[DefaultQueue]; !ok {
		s.cfgs[DefaultQueue] = QueueConfig{Name: DefaultQueue, Weight: 1, OverQuotaWeight: 1}
	}
	for name, c := range s.cfgs {
		if c.Parent == "" {
			continue
		}
		if _, ok := s.cfgs[c.Parent]; !ok {
			return nil, fmt.Errorf("fair: queue %q has unknown parent %q", name, c.Parent)
		}
		// Cycle check: walk to a root within the queue count.
		seen := 0
		for p := c.Parent; p != ""; p = s.cfgs[p].Parent {
			if p == name {
				return nil, fmt.Errorf("fair: queue %q is its own ancestor", name)
			}
			if seen++; seen > len(s.cfgs) {
				return nil, fmt.Errorf("fair: queue parent cycle involving %q", name)
			}
		}
	}
	if err := s.resolveShares(); err != nil {
		return nil, err
	}
	for name := range s.cfgs {
		s.names = append(s.names, name)
	}
	sort.Strings(s.names)
	return s, nil
}

// Default is the single-queue scheduler the master starts with: one
// uncapped default queue, which degenerates to PR 2's FIFO admission.
func Default() *Scheduler {
	s, err := New()
	if err != nil {
		panic("fair: default scheduler: " + err.Error())
	}
	return s
}

// resolveShares assigns every queue its fraction of the cluster:
// siblings with quotas are pinned to quota×parentShare; the rest split
// the parent's remainder by weight.
func (s *Scheduler) resolveShares() error {
	children := make(map[string][]string)
	var roots []string
	for name, c := range s.cfgs {
		if c.Parent == "" {
			roots = append(roots, name)
		} else {
			children[c.Parent] = append(children[c.Parent], name)
		}
	}
	var divide func(names []string, parentShare float64) error
	divide = func(names []string, parentShare float64) error {
		sort.Strings(names)
		quotaSum, weightSum := 0.0, 0.0
		for _, n := range names {
			c := s.cfgs[n]
			if c.Quota > 0 {
				quotaSum += c.Quota
			} else {
				weightSum += c.Weight
			}
		}
		if quotaSum > 1+1e-9 {
			return fmt.Errorf("fair: sibling quotas of %v sum to %.3f > 1", names, quotaSum)
		}
		rest := 1 - quotaSum
		for _, n := range names {
			c := s.cfgs[n]
			frac := 0.0
			if c.Quota > 0 {
				frac = c.Quota
			} else if weightSum > 0 {
				frac = rest * c.Weight / weightSum
			}
			s.shares[n] = parentShare * frac
			if kids := children[n]; len(kids) > 0 {
				if err := divide(kids, s.shares[n]); err != nil {
					return err
				}
			}
		}
		return nil
	}
	return divide(roots, 1)
}

// Names lists all queues, sorted.
func (s *Scheduler) Names() []string { return append([]string(nil), s.names...) }

// Has reports whether the queue exists.
func (s *Scheduler) Has(name string) bool { _, ok := s.cfgs[name]; return ok }

// Config returns a queue's declaration.
func (s *Scheduler) Config(name string) (QueueConfig, bool) {
	c, ok := s.cfgs[name]
	return c, ok
}

// Configs returns every queue's declaration in Names order — the exact
// inputs New was given, so a snapshot of the policy can rebuild an
// equivalent Scheduler on the replay side.
func (s *Scheduler) Configs() []QueueConfig {
	out := make([]QueueConfig, 0, len(s.names))
	for _, name := range s.names {
		out = append(out, s.cfgs[name])
	}
	return out
}

// Share is the queue's resolved fraction of the cluster (0 for unknown
// queues).
func (s *Scheduler) Share(name string) float64 { return s.shares[name] }

// QuotaWorkers converts a queue's share into whole workers on a cluster
// of the given size (round half up). A queue the rounding starves gets
// no guarantee; it still borrows like any other.
func (s *Scheduler) QuotaWorkers(name string, total int) int {
	return int(math.Round(s.shares[name] * float64(total)))
}

// overQuota reports whether admitting demand more workers would take the
// queue past its guaranteed share.
func (s *Scheduler) overQuota(queue string, demand int, usage Usage, total int) bool {
	return usage[queue]+demand > s.QuotaWorkers(queue, total)
}

// BorrowGated reports whether over-quota admission for the queue must
// hold: true when some other queue is under its guarantee and has held
// jobs — its claim on the capacity outranks a borrow.
func (s *Scheduler) BorrowGated(queue string, held []Held, usage Usage, total int) bool {
	for _, h := range held {
		if h.Queue == queue {
			continue
		}
		if usage[h.Queue] < s.QuotaWorkers(h.Queue, total) {
			return true
		}
	}
	return false
}

// Order arranges held jobs in admission-attempt order: queues under
// their guaranteed share first (largest normalized deficit leading),
// then over-quota queues by descending over-quota weight; within a
// queue, higher priority first, then arrival order. All ties break on
// names and sequence numbers, so the order is a pure function of the
// inputs.
func (s *Scheduler) Order(held []Held, usage Usage, total int) []Held {
	if len(held) == 0 {
		return nil
	}
	type qrank struct {
		name  string
		under bool
		ratio float64 // usage / quota workers; +Inf when no guarantee
		oqw   float64
	}
	ranks := make(map[string]qrank)
	for _, h := range held {
		if _, ok := ranks[h.Queue]; ok {
			continue
		}
		q := s.QuotaWorkers(h.Queue, total)
		r := qrank{name: h.Queue, oqw: s.cfgs[h.Queue].OverQuotaWeight}
		if q > 0 {
			r.ratio = float64(usage[h.Queue]) / float64(q)
			r.under = usage[h.Queue] < q
		} else {
			r.ratio = math.Inf(1)
		}
		ranks[h.Queue] = r
	}
	out := append([]Held(nil), held...)
	sort.SliceStable(out, func(i, j int) bool {
		a, b := ranks[out[i].Queue], ranks[out[j].Queue]
		if a.name != b.name {
			if a.under != b.under {
				return a.under
			}
			if a.under {
				if a.ratio != b.ratio {
					return a.ratio < b.ratio // deeper deficit first
				}
			} else {
				if a.oqw != b.oqw {
					return a.oqw > b.oqw // stronger borrower first
				}
				if a.ratio != b.ratio {
					return a.ratio < b.ratio
				}
			}
			return a.name < b.name
		}
		if out[i].Priority != out[j].Priority {
			return out[i].Priority > out[j].Priority
		}
		return out[i].Seq < out[j].Seq
	})
	return out
}

// Victims selects running jobs to preempt so that `need` workers free
// up for the beneficiary queue. Only jobs borrowing beyond their
// queue's guarantee are eligible — a victim is never taken if removing
// it would drop its queue below quota — and candidates order by
// priority (lowest first), then recency (most recently started first,
// the cheapest work to redo). Victims from the beneficiary's own queue
// are excluded. Returns nil when eligible victims cannot cover need:
// partial preemption would checkpoint jobs without unblocking anyone.
func (s *Scheduler) Victims(beneficiary string, need int, running []Running, usage Usage, total int) []Running {
	if need <= 0 {
		return nil
	}
	cands := make([]Running, 0, len(running))
	for _, r := range running {
		if r.Queue == beneficiary || r.Workers <= 0 {
			continue
		}
		cands = append(cands, r)
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].Priority != cands[j].Priority {
			return cands[i].Priority < cands[j].Priority
		}
		if cands[i].StartSeq != cands[j].StartSeq {
			return cands[i].StartSeq > cands[j].StartSeq
		}
		return cands[i].Job < cands[j].Job
	})
	left := make(Usage, len(usage))
	for q, u := range usage {
		left[q] = u
	}
	var picked []Running
	freed := 0
	for _, c := range cands {
		if left[c.Queue]-c.Workers < s.QuotaWorkers(c.Queue, total) {
			continue // would dig the victim's queue below its guarantee
		}
		picked = append(picked, c)
		left[c.Queue] -= c.Workers
		if freed += c.Workers; freed >= need {
			return picked
		}
	}
	return nil
}

// ParseConfigs parses a queue forest from a flag string:
//
//	name[:key=value[,key=value...]][;name...]
//
// with keys weight, quota, over-quota-weight (or oqw) and parent, e.g.
// "tenantA:weight=7,quota=0.7;tenantB:weight=3,quota=0.3".
func ParseConfigs(spec string) ([]QueueConfig, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	var cfgs []QueueConfig
	for _, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, rest, _ := strings.Cut(part, ":")
		c := QueueConfig{Name: strings.TrimSpace(name)}
		if rest != "" {
			for _, kv := range strings.Split(rest, ",") {
				key, val, ok := strings.Cut(strings.TrimSpace(kv), "=")
				if !ok {
					return nil, fmt.Errorf("fair: queue %q: want key=value, got %q", c.Name, kv)
				}
				switch key {
				case "parent":
					c.Parent = val
					continue
				case "weight", "quota", "over-quota-weight", "oqw":
				default:
					return nil, fmt.Errorf("fair: queue %q: unknown key %q", c.Name, key)
				}
				f, err := strconv.ParseFloat(val, 64)
				if err != nil {
					return nil, fmt.Errorf("fair: queue %q: %s=%q: %v", c.Name, key, val, err)
				}
				switch key {
				case "weight":
					c.Weight = f
				case "quota":
					c.Quota = f
				default:
					c.OverQuotaWeight = f
				}
			}
		}
		cfgs = append(cfgs, c)
	}
	return cfgs, nil
}
