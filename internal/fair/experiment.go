package fair

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
)

// Experiment is a deterministic discrete-tick simulation of two-tenant
// contention, used by `harmony-bench -bench-fair` and by tests. One
// tick is one training iteration: admitted jobs burn one unit of work
// per tick on a fixed-size gang of workers; completions free the gang.
//
// Fair=true runs the DESIGN.md §13 policy — deficit-weighted ordering
// (Scheduler.Order), quota-gated borrowing (BorrowGated), and
// preemptive reclaim (Victims) with checkpoint-style resumable
// requeue. Fair=false is the pre-fair baseline: strict FIFO arrival
// order with backfill and no preemption.
//
// Everything is a pure function of (Workers, Queues, Jobs|Seed): two
// runs with the same inputs produce bit-identical event logs.
type Experiment struct {
	// Workers is the cluster size in workers.
	Workers int
	// Queues configures the scheduler; nil means the default queue only.
	Queues []QueueConfig
	// Jobs is the workload; nil generates TwoTenantWorkload(Seed).
	Jobs []SimJob
	// Seed drives workload generation when Jobs is nil.
	Seed int64
	// Ticks bounds the simulation; 0 means run until all jobs finish
	// (capped at a large internal horizon to keep bugs from spinning).
	Ticks int
	// Fair selects the policy: fair ordering + reclaim vs FIFO.
	Fair bool
}

// SimJob is one job in the simulated workload.
type SimJob struct {
	Name     string `json:"name"`
	Queue    string `json:"queue"`
	Priority int    `json:"priority"`
	// Arrival is the tick the job enters the admission queue.
	Arrival int `json:"arrival"`
	// Work is the number of ticks of compute once placed.
	Work int `json:"work"`
	// Gang is the fixed worker-set size; the whole gang places
	// atomically or the job holds.
	Gang int `json:"gang"`
}

// SimResult aggregates one simulated run.
type SimResult struct {
	Mode string `json:"mode"`
	// Makespan is the tick after the last completion (or the horizon).
	Makespan int `json:"makespan"`
	// Completed counts jobs that finished within the horizon.
	Completed int `json:"completed"`
	// Preemptions counts reclaim victims suspended.
	Preemptions int `json:"preemptions"`
	// MeanResumeTicks is the mean preemption-to-resume latency in
	// ticks over victims that resumed (0 when none were preempted).
	MeanResumeTicks float64 `json:"mean_resume_ticks"`
	// TimeToQuota maps each queue to the first tick its usage reached
	// min(quota workers, outstanding demand) while it had outstanding
	// demand; -1 means it never did.
	TimeToQuota map[string]int `json:"time_to_quota"`
	// Events is the deterministic decision log; bit-stability tests
	// compare it across runs.
	Events []string `json:"-"`
}

// EventLog renders the decision log as one newline-joined string.
func (r SimResult) EventLog() string { return strings.Join(r.Events, "\n") }

// TwoTenantWorkload builds the canonical contention scenario: tenantB
// floods the cluster with long single-worker jobs at tick 0, then
// tenantA's gang jobs arrive at tick 1 and find every worker taken.
// Under FIFO tenantA starves until tenantB's flood drains; under the
// fair policy reclaim suspends tenantB back to its quota. Durations
// jitter with seed so the workload is seeded but reproducible.
func TwoTenantWorkload(seed int64, workers int) []SimJob {
	rng := rand.New(rand.NewSource(seed))
	jobs := make([]SimJob, 0, workers+4)
	for i := 0; i < workers; i++ {
		jobs = append(jobs, SimJob{
			Name: fmt.Sprintf("b%02d", i), Queue: "tenantB",
			Arrival: 0, Work: 60 + rng.Intn(20), Gang: 1,
		})
	}
	gang := workers / 3
	if gang < 1 {
		gang = 1
	}
	for i := 0; i < 4; i++ {
		// Alternate gang jobs with single-worker jobs so tenantA's
		// admissible demand can tile its quota exactly.
		g := gang
		if i%2 == 1 {
			g = 1
		}
		jobs = append(jobs, SimJob{
			Name: fmt.Sprintf("a%02d", i), Queue: "tenantA",
			Arrival: 1, Work: 25 + rng.Intn(10), Gang: g,
		})
	}
	return jobs
}

// TwoTenantQueues is the 70/30 split used by the canonical scenario.
func TwoTenantQueues() []QueueConfig {
	return []QueueConfig{
		{Name: "tenantA", Quota: 0.7},
		{Name: "tenantB", Quota: 0.3},
	}
}

// simJob is the mutable per-job simulation state.
type simJob struct {
	SimJob
	seq       uint64
	remaining int
	resumable bool
	// preemptedAt is the tick of the last preemption, -1 otherwise.
	preemptedAt int
	startSeq    uint64
}

type simState struct {
	exp   *Experiment
	sched *Scheduler
	held  []*simJob
	run   map[string]*simJob
	free  int
	// seq and startSeq mirror the master's arrival/deploy counters.
	seq, startSeq uint64
	res           SimResult
	// outstanding tracks per-queue demand (held + running workers).
	t int
}

// Run executes the simulation and returns its aggregate result.
func (e Experiment) Run() (SimResult, error) {
	if e.Workers <= 0 {
		return SimResult{}, fmt.Errorf("fair: experiment needs workers")
	}
	sched, err := New(e.Queues...)
	if err != nil {
		return SimResult{}, err
	}
	jobs := e.Jobs
	if jobs == nil {
		jobs = TwoTenantWorkload(e.Seed, e.Workers)
	}
	for _, j := range jobs {
		if j.Queue == "" {
			j.Queue = DefaultQueue
		}
		if !sched.Has(j.Queue) {
			return SimResult{}, fmt.Errorf("fair: job %s: unknown queue %q", j.Name, j.Queue)
		}
		if j.Gang < 1 || j.Gang > e.Workers || j.Work < 1 {
			return SimResult{}, fmt.Errorf("fair: job %s: bad gang/work", j.Name)
		}
	}
	mode := "fifo"
	if e.Fair {
		mode = "fair"
	}
	st := &simState{
		exp: &e, sched: sched,
		run:  make(map[string]*simJob),
		free: e.Workers,
		res:  SimResult{Mode: mode, TimeToQuota: make(map[string]int)},
	}
	for _, q := range sched.Names() {
		st.res.TimeToQuota[q] = -1
	}

	horizon := e.Ticks
	if horizon <= 0 {
		horizon = 100000
	}
	var resumeTicks []int
	for st.t = 0; st.t < horizon; st.t++ {
		// Arrivals enter the admission queue in declaration order.
		for i := range jobs {
			if jobs[i].Arrival == st.t {
				st.seq++
				st.held = append(st.held, &simJob{
					SimJob: jobs[i], seq: st.seq,
					remaining: jobs[i].Work, preemptedAt: -1,
				})
			}
		}
		// Drain: admit in policy order until nothing fits; the fair
		// policy may reclaim to unblock an under-quota queue.
		for {
			if st.admitOne(&resumeTicks) {
				continue
			}
			if e.Fair && st.reclaimOne() {
				continue
			}
			break
		}
		st.recordQuotaAttainment()
		if len(st.held) == 0 && len(st.run) == 0 {
			break
		}
		// One tick of training on every placed gang.
		var done []*simJob
		for _, j := range st.run {
			j.remaining--
			if j.remaining == 0 {
				done = append(done, j)
			}
		}
		sort.Slice(done, func(a, b int) bool { return done[a].Name < done[b].Name })
		for _, j := range done {
			delete(st.run, j.Name)
			st.free += j.Gang
			st.res.Completed++
			st.event("complete %s queue=%s", j.Name, j.Queue)
		}
	}
	st.res.Makespan = st.t
	if len(resumeTicks) > 0 {
		sum := 0
		for _, v := range resumeTicks {
			sum += v
		}
		st.res.MeanResumeTicks = float64(sum) / float64(len(resumeTicks))
	}
	return st.res, nil
}

func (st *simState) event(format string, args ...any) {
	st.res.Events = append(st.res.Events,
		fmt.Sprintf("t=%d ", st.t)+fmt.Sprintf(format, args...))
}

func (st *simState) usage() Usage {
	u := make(Usage)
	for _, j := range st.run {
		u[j.Queue] += j.Gang
	}
	return u
}

func (st *simState) heldAsFair() []Held {
	hs := make([]Held, len(st.held))
	for i, j := range st.held {
		hs[i] = Held{Job: j.Name, Queue: j.Queue, Priority: j.Priority,
			Seq: j.seq, Demand: j.Gang, Resumable: j.resumable}
	}
	return hs
}

func (st *simState) runningAsFair() []Running {
	rs := make([]Running, 0, len(st.run))
	for _, j := range st.run {
		rs = append(rs, Running{Job: j.Name, Queue: j.Queue,
			Priority: j.Priority, StartSeq: j.startSeq, Workers: j.Gang})
	}
	return rs
}

// order returns held jobs in admission order for the active policy.
func (st *simState) order() []Held {
	hs := st.heldAsFair()
	if st.exp.Fair {
		return st.sched.Order(hs, st.usage(), st.exp.Workers)
	}
	sort.SliceStable(hs, func(a, b int) bool { return hs[a].Seq < hs[b].Seq })
	return hs
}

// admitOne places the first held job (in policy order) whose gang fits,
// honoring quota-gated borrowing under the fair policy. Returns whether
// anything was admitted.
func (st *simState) admitOne(resumeTicks *[]int) bool {
	usage := st.usage()
	for _, h := range st.order() {
		if h.Demand > st.free {
			continue
		}
		if st.exp.Fair {
			quota := st.sched.QuotaWorkers(h.Queue, st.exp.Workers)
			over := usage[h.Queue]+h.Demand > quota
			if over && st.sched.BorrowGated(h.Queue, st.heldAsFair(), usage, st.exp.Workers) {
				continue
			}
		}
		j := st.takeHeld(h.Job)
		st.startSeq++
		j.startSeq = st.startSeq
		st.run[j.Name] = j
		st.free -= j.Gang
		if j.resumable {
			lat := st.t - j.preemptedAt
			*resumeTicks = append(*resumeTicks, lat)
			st.event("resume %s queue=%s gang=%d after=%d", j.Name, j.Queue, j.Gang, lat)
		} else {
			st.event("admit %s queue=%s gang=%d", j.Name, j.Queue, j.Gang)
		}
		return true
	}
	return false
}

// reclaimOne mirrors the master's reclaim round: the best-ordered held
// job whose queue would stay within quota picks over-quota victims by
// priority then recency; victims suspend and requeue resumable.
func (st *simState) reclaimOne() bool {
	usage := st.usage()
	for _, h := range st.order() {
		if usage[h.Queue]+h.Demand > st.sched.QuotaWorkers(h.Queue, st.exp.Workers) {
			continue
		}
		need := h.Demand - st.free
		if need <= 0 {
			continue
		}
		victims := st.sched.Victims(h.Queue, need, st.runningAsFair(), usage, st.exp.Workers)
		if victims == nil {
			continue
		}
		for _, v := range victims {
			j := st.run[v.Job]
			delete(st.run, j.Name)
			st.free += j.Gang
			j.resumable = true
			j.preemptedAt = st.t
			st.held = append(st.held, j)
			st.res.Preemptions++
			st.event("preempt %s queue=%s remaining=%d for=%s", j.Name, j.Queue, j.remaining, h.Queue)
		}
		return true
	}
	return false
}

func (st *simState) takeHeld(name string) *simJob {
	for i, j := range st.held {
		if j.Name == name {
			st.held = append(st.held[:i], st.held[i+1:]...)
			return j
		}
	}
	return nil
}

// recordQuotaAttainment stamps the first tick each queue's usage covers
// min(quota, outstanding demand) while it has outstanding demand.
func (st *simState) recordQuotaAttainment() {
	usage := st.usage()
	demand := make(Usage)
	for _, j := range st.run {
		demand[j.Queue] += j.Gang
	}
	for _, j := range st.held {
		demand[j.Queue] += j.Gang
	}
	for q, first := range st.res.TimeToQuota {
		if first >= 0 || demand[q] == 0 {
			continue
		}
		want := st.sched.QuotaWorkers(q, st.exp.Workers)
		if demand[q] < want {
			want = demand[q]
		}
		if want > 0 && usage[q] >= want {
			st.res.TimeToQuota[q] = st.t
		}
	}
}
