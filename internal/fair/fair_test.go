package fair

import (
	"math"
	"reflect"
	"testing"
)

func mustNew(t *testing.T, cfgs ...QueueConfig) *Scheduler {
	t.Helper()
	s, err := New(cfgs...)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestDefaultQueueOwnsCluster(t *testing.T) {
	s := Default()
	if got := s.Share(DefaultQueue); got != 1 {
		t.Fatalf("default share = %v, want 1", got)
	}
	if got := s.QuotaWorkers(DefaultQueue, 7); got != 7 {
		t.Fatalf("default quota workers = %d, want 7", got)
	}
	if s.BorrowGated(DefaultQueue, []Held{{Job: "a", Queue: DefaultQueue}}, Usage{}, 4) {
		t.Fatal("single queue must never gate itself")
	}
}

func TestSharesQuotasAndWeights(t *testing.T) {
	s := mustNew(t,
		QueueConfig{Name: "a", Quota: 0.7},
		QueueConfig{Name: "b", Quota: 0.3},
		QueueConfig{Name: "c", Weight: 3},
	)
	// a and b pin the whole cluster; c and default split the remainder 0.
	if got := s.Share("a"); math.Abs(got-0.7) > 1e-12 {
		t.Errorf("share(a) = %v", got)
	}
	if got := s.Share("b"); math.Abs(got-0.3) > 1e-12 {
		t.Errorf("share(b) = %v", got)
	}
	if got := s.Share("c"); got != 0 {
		t.Errorf("share(c) = %v, want 0 (quotas exhaust the cluster)", got)
	}
	if got := s.QuotaWorkers("a", 4); got != 3 {
		t.Errorf("quota workers a on 4 = %d, want 3 (0.7*4 rounds up)", got)
	}
	if got := s.QuotaWorkers("b", 4); got != 1 {
		t.Errorf("quota workers b on 4 = %d, want 1", got)
	}
}

func TestWeightOnlyShares(t *testing.T) {
	s := mustNew(t,
		QueueConfig{Name: "x", Weight: 3},
		QueueConfig{Name: "y", Weight: 1},
	)
	// default rides along with weight 1: 3/5, 1/5, 1/5.
	if got := s.Share("x"); math.Abs(got-0.6) > 1e-12 {
		t.Errorf("share(x) = %v, want 0.6", got)
	}
	if got := s.Share(DefaultQueue); math.Abs(got-0.2) > 1e-12 {
		t.Errorf("share(default) = %v, want 0.2", got)
	}
}

func TestHierarchicalShares(t *testing.T) {
	s := mustNew(t,
		QueueConfig{Name: "org", Quota: 0.8},
		QueueConfig{Name: "research", Parent: "org", Quota: 0.5},
		QueueConfig{Name: "prod", Parent: "org", Weight: 1},
	)
	if got := s.Share("research"); math.Abs(got-0.4) > 1e-12 {
		t.Errorf("share(research) = %v, want 0.4 (half of org's 0.8)", got)
	}
	if got := s.Share("prod"); math.Abs(got-0.4) > 1e-12 {
		t.Errorf("share(prod) = %v, want 0.4 (org remainder)", got)
	}
}

func TestNewValidation(t *testing.T) {
	cases := []struct {
		name string
		cfgs []QueueConfig
	}{
		{"bad name", []QueueConfig{{Name: "bad name"}}},
		{"dup", []QueueConfig{{Name: "a"}, {Name: "a"}}},
		{"quota range", []QueueConfig{{Name: "a", Quota: 1.5}}},
		{"unknown parent", []QueueConfig{{Name: "a", Parent: "nope"}}},
		{"self parent", []QueueConfig{{Name: "a", Parent: "a"}}},
		{"cycle", []QueueConfig{{Name: "a", Parent: "b"}, {Name: "b", Parent: "a"}}},
		{"quota sum", []QueueConfig{{Name: "a", Quota: 0.7}, {Name: "b", Quota: 0.7}}},
	}
	for _, c := range cases {
		if _, err := New(c.cfgs...); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestOrderDeficitFirstThenPriority(t *testing.T) {
	s := mustNew(t,
		QueueConfig{Name: "a", Quota: 0.5},
		QueueConfig{Name: "b", Quota: 0.5},
	)
	held := []Held{
		{Job: "b1", Queue: "b", Seq: 1},
		{Job: "a1", Queue: "a", Seq: 2},
		{Job: "a2", Queue: "a", Priority: 5, Seq: 3},
		{Job: "b2", Queue: "b", Seq: 4},
	}
	// b is at quota (2 of 2 on 4 workers), a idle: a's jobs lead,
	// higher priority first, then FIFO within b.
	got := s.Order(held, Usage{"b": 2}, 4)
	want := []string{"a2", "a1", "b1", "b2"}
	names := make([]string, len(got))
	for i, h := range got {
		names[i] = h.Job
	}
	if !reflect.DeepEqual(names, want) {
		t.Fatalf("order = %v, want %v", names, want)
	}
	// Determinism: same inputs, same order.
	again := s.Order(held, Usage{"b": 2}, 4)
	for i := range got {
		if got[i] != again[i] {
			t.Fatalf("order not deterministic at %d: %v vs %v", i, got[i], again[i])
		}
	}
}

func TestOrderOverQuotaWeightBreaksBorrowTies(t *testing.T) {
	s := mustNew(t,
		QueueConfig{Name: "a", Quota: 0.5, OverQuotaWeight: 1},
		QueueConfig{Name: "b", Quota: 0.5, OverQuotaWeight: 9},
	)
	held := []Held{
		{Job: "a1", Queue: "a", Seq: 1},
		{Job: "b1", Queue: "b", Seq: 2},
	}
	// Both queues at quota: the stronger over-quota weight borrows first.
	got := s.Order(held, Usage{"a": 2, "b": 2}, 4)
	if got[0].Job != "b1" {
		t.Fatalf("order = %v, want b1 first", got)
	}
}

func TestBorrowGated(t *testing.T) {
	s := mustNew(t,
		QueueConfig{Name: "a", Quota: 0.5},
		QueueConfig{Name: "b", Quota: 0.5},
	)
	held := []Held{{Job: "a1", Queue: "a"}}
	if !s.BorrowGated("b", held, Usage{"a": 0, "b": 2}, 4) {
		t.Fatal("b should be gated while a waits under quota")
	}
	if s.BorrowGated("b", held, Usage{"a": 2, "b": 2}, 4) {
		t.Fatal("b gated although a is at quota")
	}
	if s.BorrowGated("a", held, Usage{"a": 0, "b": 2}, 4) {
		t.Fatal("a gated by its own held job")
	}
}

func TestVictimsPriorityThenRecency(t *testing.T) {
	s := mustNew(t,
		QueueConfig{Name: "a", Quota: 0.5},
		QueueConfig{Name: "b", Quota: 0.5},
	)
	running := []Running{
		{Job: "b-old", Queue: "b", Priority: 0, StartSeq: 1, Workers: 1},
		{Job: "b-new", Queue: "b", Priority: 0, StartSeq: 3, Workers: 1},
		{Job: "b-vip", Queue: "b", Priority: 9, StartSeq: 2, Workers: 1},
	}
	usage := Usage{"b": 3}
	got := s.Victims("a", 1, running, usage, 4)
	if len(got) != 1 || got[0].Job != "b-new" {
		t.Fatalf("victims = %v, want [b-new] (lowest priority, most recent)", got)
	}
	// Need 2: b-new then b-old (recency within equal priority), the VIP
	// survives because quota (2 of 4) floors the queue... b usage 3,
	// quota 2: only 1 worker is reclaimable, so need 2 returns nil.
	if got := s.Victims("a", 2, running, usage, 4); got != nil {
		t.Fatalf("victims over the quota floor = %v, want nil", got)
	}
}

func TestVictimsNeverDigBelowQuota(t *testing.T) {
	s := mustNew(t,
		QueueConfig{Name: "a", Quota: 0.25},
		QueueConfig{Name: "b", Quota: 0.75},
	)
	running := []Running{{Job: "b1", Queue: "b", StartSeq: 1, Workers: 3}}
	// b holds exactly its quota (3 of 4): nothing to reclaim.
	if got := s.Victims("a", 1, running, Usage{"b": 3}, 4); got != nil {
		t.Fatalf("victims = %v, want nil (b at quota)", got)
	}
	// b borrowed one extra worker: its 4-worker job is still not
	// eligible, because preempting it would land b at 0 < 3.
	running[0].Workers = 4
	if got := s.Victims("a", 1, running, Usage{"b": 4}, 4); got != nil {
		t.Fatalf("victims = %v, want nil (whole-job preemption digs below quota)", got)
	}
}

func TestVictimsExcludeBeneficiaryQueue(t *testing.T) {
	s := mustNew(t, QueueConfig{Name: "a", Quota: 0.5}, QueueConfig{Name: "b", Quota: 0.5})
	running := []Running{{Job: "a1", Queue: "a", StartSeq: 1, Workers: 4}}
	if got := s.Victims("a", 1, running, Usage{"a": 4}, 4); got != nil {
		t.Fatalf("victims = %v, want nil (own queue excluded)", got)
	}
}

func TestParseConfigs(t *testing.T) {
	cfgs, err := ParseConfigs("tenantA:weight=7,quota=0.7;tenantB:weight=3,quota=0.3;sub:parent=tenantA,oqw=2")
	if err != nil {
		t.Fatal(err)
	}
	want := []QueueConfig{
		{Name: "tenantA", Weight: 7, Quota: 0.7},
		{Name: "tenantB", Weight: 3, Quota: 0.3},
		{Name: "sub", Parent: "tenantA", OverQuotaWeight: 2},
	}
	if !reflect.DeepEqual(cfgs, want) {
		t.Fatalf("parsed %+v, want %+v", cfgs, want)
	}
	if _, err := New(cfgs...); err != nil {
		t.Fatalf("parsed configs rejected: %v", err)
	}
	if _, err := ParseConfigs("a:frob=1"); err == nil {
		t.Error("unknown key accepted")
	}
	if _, err := ParseConfigs("a:weight"); err == nil {
		t.Error("missing value accepted")
	}
	if cfgs, err := ParseConfigs("  "); err != nil || cfgs != nil {
		t.Errorf("blank spec = %v, %v", cfgs, err)
	}
}
