package fair

import (
	"strings"
	"testing"
)

func twoTenantExperiment(fairMode bool) Experiment {
	return Experiment{
		Workers: 10,
		Queues:  TwoTenantQueues(),
		Seed:    7,
		Fair:    fairMode,
	}
}

// TestExperimentDeterministic pins the bit-stability contract: the
// simulation is a pure function of its inputs, so two runs with the
// same seed produce identical event logs and aggregates.
func TestExperimentDeterministic(t *testing.T) {
	for _, mode := range []bool{false, true} {
		e := twoTenantExperiment(mode)
		r1, err := e.Run()
		if err != nil {
			t.Fatalf("run 1 (fair=%v): %v", mode, err)
		}
		r2, err := e.Run()
		if err != nil {
			t.Fatalf("run 2 (fair=%v): %v", mode, err)
		}
		if r1.EventLog() != r2.EventLog() {
			t.Errorf("fair=%v: event logs differ across identical runs", mode)
		}
		if r1.Makespan != r2.Makespan || r1.Preemptions != r2.Preemptions {
			t.Errorf("fair=%v: aggregates differ: %+v vs %+v", mode, r1, r2)
		}
	}
}

// TestExperimentFairBeatsFIFO is the headline A/B: with tenantB
// flooding at tick 0 and tenantA arriving at tick 1, the fair policy
// reclaims tenantB down toward its 30% quota so tenantA reaches its
// share within a few ticks; FIFO makes tenantA wait for the flood to
// drain.
func TestExperimentFairBeatsFIFO(t *testing.T) {
	fifo, err := twoTenantExperiment(false).Run()
	if err != nil {
		t.Fatalf("fifo: %v", err)
	}
	fair, err := twoTenantExperiment(true).Run()
	if err != nil {
		t.Fatalf("fair: %v", err)
	}

	if fifo.Preemptions != 0 {
		t.Errorf("fifo preempted %d jobs; baseline must not preempt", fifo.Preemptions)
	}
	if fair.Preemptions == 0 {
		t.Error("fair policy never preempted despite an over-quota flood")
	}
	af, ok := fair.TimeToQuota["tenantA"]
	if !ok || af < 0 {
		t.Fatalf("fair: tenantA never reached its quota share: %+v", fair.TimeToQuota)
	}
	a0, ok := fifo.TimeToQuota["tenantA"]
	if ok && a0 >= 0 && a0 <= af {
		t.Errorf("fifo reached tenantA's share at tick %d, not later than fair's %d", a0, af)
	}
	if af > 5 {
		t.Errorf("fair took %d ticks to reach tenantA's share, want <= 5", af)
	}
	if fair.MeanResumeTicks <= 0 {
		t.Error("fair preempted but recorded no resume latency; victims never resumed")
	}
	if fifo.Completed != len(TwoTenantWorkload(7, 10)) || fair.Completed != fifo.Completed {
		t.Errorf("completions: fifo %d, fair %d, want all %d",
			fifo.Completed, fair.Completed, len(TwoTenantWorkload(7, 10)))
	}
	// Preempted work is conserved: every preempt event's remaining
	// ticks reappear in a later resume of the same job.
	if n := strings.Count(fair.EventLog(), "resume "); n < fair.Preemptions {
		t.Errorf("only %d resumes for %d preemptions within the horizon", n, fair.Preemptions)
	}
}

// TestExperimentGangNeverSplits scans the fair event log for a gang
// admission that could only have happened with a partial placement.
func TestExperimentGangNeverSplits(t *testing.T) {
	res, err := twoTenantExperiment(true).Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range res.Events {
		if strings.Contains(ev, "gang=2") && strings.Contains(ev, " a0") {
			t.Errorf("tenantA gang shrank: %s", ev)
		}
	}
}
