// Package cluster models the physical resources the scheduler divides
// among job groups: machines with CPU cores, memory, network bandwidth,
// and local disk.
//
// The shapes default to the AWS m4.2xlarge instances used throughout the
// paper's evaluation (8 vCPUs, 32 GB memory, 1.1 Gbps network).
package cluster

import (
	"fmt"
	"sort"
)

// MachineSpec describes the capacity of one machine.
type MachineSpec struct {
	// Cores is the number of CPU cores usable by COMP subtasks.
	Cores int
	// MemoryGB is the memory capacity available to co-located jobs.
	MemoryGB float64
	// NetGbps is the network bandwidth in gigabits per second.
	NetGbps float64
	// DiskMBps is the sequential disk read bandwidth available for
	// reloading spilled input blocks, in megabytes per second.
	DiskMBps float64
}

// M42XLarge is the instance shape used in the paper's evaluation
// (100 × AWS m4.2xlarge).
var M42XLarge = MachineSpec{
	Cores:    8,
	MemoryGB: 32,
	NetGbps:  1.1,
	// gp2-class EBS throughput; block reloads contend with it (§IV-C).
	DiskMBps: 120,
}

// Validate reports an error if the spec describes an unusable machine.
func (s MachineSpec) Validate() error {
	switch {
	case s.Cores <= 0:
		return fmt.Errorf("cluster: spec has %d cores, need > 0", s.Cores)
	case s.MemoryGB <= 0:
		return fmt.Errorf("cluster: spec has %.1f GB memory, need > 0", s.MemoryGB)
	case s.NetGbps <= 0:
		return fmt.Errorf("cluster: spec has %.2f Gbps network, need > 0", s.NetGbps)
	case s.DiskMBps <= 0:
		return fmt.Errorf("cluster: spec has %.0f MB/s disk, need > 0", s.DiskMBps)
	}
	return nil
}

// MachineID identifies one machine within a Cluster.
type MachineID int

// Cluster is a homogeneous pool of machines with allocation bookkeeping.
// The zero value is unusable; construct with New.
type Cluster struct {
	spec  MachineSpec
	size  int
	free  map[MachineID]struct{}
	owner map[MachineID]string // allocated machine -> group name
}

// New creates a cluster of n machines of the given spec.
func New(n int, spec MachineSpec) (*Cluster, error) {
	if n <= 0 {
		return nil, fmt.Errorf("cluster: size %d, need > 0", n)
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	c := &Cluster{
		spec:  spec,
		size:  n,
		free:  make(map[MachineID]struct{}, n),
		owner: make(map[MachineID]string, n),
	}
	for i := 0; i < n; i++ {
		c.free[MachineID(i)] = struct{}{}
	}
	return c, nil
}

// Spec reports the machine shape of the cluster.
func (c *Cluster) Spec() MachineSpec { return c.spec }

// Size reports the total number of machines.
func (c *Cluster) Size() int { return c.size }

// Free reports the number of unallocated machines.
func (c *Cluster) Free() int { return len(c.free) }

// Allocated reports the number of machines currently held by groups.
func (c *Cluster) Allocated() int { return c.size - len(c.free) }

// Alloc reserves n machines for the named owner and returns their ids in
// ascending order. It fails without side effects if fewer than n machines
// are free.
func (c *Cluster) Alloc(owner string, n int) ([]MachineID, error) {
	if n <= 0 {
		return nil, fmt.Errorf("cluster: alloc %d machines, need > 0", n)
	}
	if n > len(c.free) {
		return nil, fmt.Errorf("cluster: alloc %d machines for %q, only %d free", n, owner, len(c.free))
	}
	ids := make([]MachineID, 0, len(c.free))
	for id := range c.free {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	ids = ids[:n]
	for _, id := range ids {
		delete(c.free, id)
		c.owner[id] = owner
	}
	return ids, nil
}

// Release returns machines to the free pool. Releasing a machine that is
// already free is an error, as it indicates double accounting.
func (c *Cluster) Release(ids []MachineID) error {
	for _, id := range ids {
		if id < 0 || int(id) >= c.size {
			return fmt.Errorf("cluster: release unknown machine %d", id)
		}
		if _, ok := c.free[id]; ok {
			return fmt.Errorf("cluster: release machine %d which is already free", id)
		}
	}
	for _, id := range ids {
		delete(c.owner, id)
		c.free[id] = struct{}{}
	}
	return nil
}

// Owner reports which owner holds the machine, or "" if it is free.
func (c *Cluster) Owner(id MachineID) string { return c.owner[id] }

// Owners returns a snapshot of owner -> machine count.
func (c *Cluster) Owners() map[string]int {
	out := make(map[string]int)
	for _, owner := range c.owner {
		out[owner]++
	}
	return out
}
