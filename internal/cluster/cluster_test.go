package cluster

import (
	"testing"
	"testing/quick"
)

func TestSpecValidate(t *testing.T) {
	tests := []struct {
		name    string
		spec    MachineSpec
		wantErr bool
	}{
		{name: "m4.2xlarge", spec: M42XLarge, wantErr: false},
		{name: "zero cores", spec: MachineSpec{Cores: 0, MemoryGB: 1, NetGbps: 1, DiskMBps: 1}, wantErr: true},
		{name: "zero memory", spec: MachineSpec{Cores: 1, MemoryGB: 0, NetGbps: 1, DiskMBps: 1}, wantErr: true},
		{name: "zero net", spec: MachineSpec{Cores: 1, MemoryGB: 1, NetGbps: 0, DiskMBps: 1}, wantErr: true},
		{name: "zero disk", spec: MachineSpec{Cores: 1, MemoryGB: 1, NetGbps: 1, DiskMBps: 0}, wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.spec.Validate(); (err != nil) != tt.wantErr {
				t.Errorf("Validate() err = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestNewRejectsBadInputs(t *testing.T) {
	if _, err := New(0, M42XLarge); err == nil {
		t.Error("New(0) succeeded, want error")
	}
	if _, err := New(4, MachineSpec{}); err == nil {
		t.Error("New with zero spec succeeded, want error")
	}
}

func TestAllocRelease(t *testing.T) {
	c, err := New(10, M42XLarge)
	if err != nil {
		t.Fatal(err)
	}
	ids, err := c.Alloc("g0", 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 4 {
		t.Fatalf("alloc returned %d ids, want 4", len(ids))
	}
	if c.Free() != 6 || c.Allocated() != 4 {
		t.Errorf("free/allocated = %d/%d, want 6/4", c.Free(), c.Allocated())
	}
	for _, id := range ids {
		if got := c.Owner(id); got != "g0" {
			t.Errorf("Owner(%d) = %q, want g0", id, got)
		}
	}
	if err := c.Release(ids); err != nil {
		t.Fatal(err)
	}
	if c.Free() != 10 {
		t.Errorf("free = %d after release, want 10", c.Free())
	}
}

func TestAllocExhaustion(t *testing.T) {
	c, _ := New(3, M42XLarge)
	if _, err := c.Alloc("g0", 4); err == nil {
		t.Error("over-allocation succeeded, want error")
	}
	if c.Free() != 3 {
		t.Errorf("failed alloc mutated state: free = %d, want 3", c.Free())
	}
	if _, err := c.Alloc("g0", 0); err == nil {
		t.Error("zero allocation succeeded, want error")
	}
}

func TestReleaseErrors(t *testing.T) {
	c, _ := New(3, M42XLarge)
	ids, _ := c.Alloc("g0", 2)
	if err := c.Release([]MachineID{99}); err == nil {
		t.Error("releasing unknown machine succeeded, want error")
	}
	if err := c.Release(ids); err != nil {
		t.Fatal(err)
	}
	if err := c.Release(ids); err == nil {
		t.Error("double release succeeded, want error")
	}
}

func TestOwners(t *testing.T) {
	c, _ := New(10, M42XLarge)
	if _, err := c.Alloc("a", 3); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Alloc("b", 2); err != nil {
		t.Fatal(err)
	}
	owners := c.Owners()
	if owners["a"] != 3 || owners["b"] != 2 {
		t.Errorf("Owners() = %v, want a:3 b:2", owners)
	}
}

// TestAllocConservation checks by property that any interleaving of
// allocations and releases conserves the total machine count.
func TestAllocConservation(t *testing.T) {
	f := func(ops []uint8) bool {
		c, err := New(16, M42XLarge)
		if err != nil {
			return false
		}
		var held [][]MachineID
		for _, op := range ops {
			if op%2 == 0 || len(held) == 0 {
				n := int(op%5) + 1
				ids, err := c.Alloc("g", n)
				if err == nil {
					held = append(held, ids)
				}
			} else {
				last := held[len(held)-1]
				held = held[:len(held)-1]
				if err := c.Release(last); err != nil {
					return false
				}
			}
			total := c.Free()
			for _, h := range held {
				total += len(h)
			}
			if total != 16 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
