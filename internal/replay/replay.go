// Package replay re-executes a captured master snapshot's decision
// journal deterministically and reports model drift (DESIGN.md §16).
//
// The replayer is a pure state machine: it walks the journal in sequence
// order, reconstructs each decision's group from the snapshot's job
// metrics, re-runs the §IV-B2 performance model over that group, and
// compares three quantities per decision — the prediction the live
// master stamped at decision time, the prediction the model produces
// now, and the measured values the journal carries. Identical inputs
// produce bit-identical reports: the package never reads the clock,
// never draws randomness, and iterates every collection in sorted
// order.
//
// What-if overrides (machine count, NetModel on/off, a replacement
// queue policy) re-evaluate the same decision sequence under changed
// assumptions; placement history is kept as recorded — overrides change
// the model and the policy verdicts, not the placements, which is what
// makes the comparison to the journal meaningful.
package replay

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strings"

	"harmony/internal/core"
	"harmony/internal/fair"
	"harmony/internal/master"
)

// Overrides are the what-if knobs. The zero value replays the snapshot
// exactly as captured.
type Overrides struct {
	// Machines overrides the cluster size for quota arithmetic and
	// scenario conversion when > 0. Recorded placements keep their
	// captured sizes — a 4-worker group stays a 4-worker group.
	Machines int `json:"machines,omitempty"`
	// NetModel toggles the §IV-B3 network-aware model independently of
	// what the capture ran with.
	NetModel *bool `json:"net_model,omitempty"`
	// Queues replaces the fair-queue policy with a fair.ParseConfigs
	// spec ("name[:key=value,...][;name...]", keys weight/quota/
	// over-quota-weight/parent); empty keeps the captured policy.
	Queues string `json:"queues,omitempty"`
}

func (o Overrides) active() bool {
	return o.Machines > 0 || o.NetModel != nil || o.Queues != ""
}

// Decision is one journal event's calibration row: the live master's
// prediction, the replayer's recomputation, the measured values, and
// the pairwise error ratios between them.
type Decision struct {
	Seq   uint64 `json:"seq"`
	Kind  string `json:"kind"`
	Job   string `json:"job,omitempty"`
	Group string `json:"group,omitempty"`
	// Journal* is what the live master predicted at decision time;
	// Replay* what this replay's model predicts for the reconstructed
	// group; Measured* what the journal recorded from the running job.
	JournalIterSeconds  float64 `json:"journal_iter_seconds,omitempty"`
	ReplayIterSeconds   float64 `json:"replay_iter_seconds,omitempty"`
	MeasuredIterSeconds float64 `json:"measured_iter_seconds,omitempty"`
	JournalCPUUtil      float64 `json:"journal_cpu_util,omitempty"`
	ReplayCPUUtil       float64 `json:"replay_cpu_util,omitempty"`
	MeasuredCPUUtil     float64 `json:"measured_cpu_util,omitempty"`
	JournalNetUtil      float64 `json:"journal_net_util,omitempty"`
	ReplayNetUtil       float64 `json:"replay_net_util,omitempty"`
	MeasuredNetUtil     float64 `json:"measured_net_util,omitempty"`
	// IterErrRatio is |journal − measured| / measured — how wrong the
	// live prediction was. ReplayIterErrRatio is the same for the replay
	// prediction. DriftRatio is |replay − journal| / journal — how far
	// the model's view of this decision has moved since capture (from
	// profile refinement, or deliberately from a what-if override).
	IterErrRatio       float64 `json:"iter_err_ratio,omitempty"`
	ReplayIterErrRatio float64 `json:"replay_iter_err_ratio,omitempty"`
	DriftRatio         float64 `json:"drift_ratio,omitempty"`
	// QuotaFlip marks decisions whose policy verdict changes under the
	// overrides: "would_admit" on a quota hold the override policy would
	// let through, "would_gate" on an admit it would have held.
	QuotaFlip string `json:"quota_flip,omitempty"`
	Note      string `json:"note,omitempty"`
}

// GroupKindError aggregates calibration error over every decision that
// placed a job on one worker set: the mean error ratios per
// (group, kind) pair. These rows back the
// harmony_model_error_ratio{group,kind} gauges.
type GroupKindError struct {
	Group              string  `json:"group"`
	Kind               string  `json:"kind"`
	Decisions          int     `json:"decisions"`
	MeanIterErrRatio   float64 `json:"mean_iter_err_ratio"`
	MeanReplayErrRatio float64 `json:"mean_replay_err_ratio"`
	MeanDriftRatio     float64 `json:"mean_drift_ratio"`
}

// Overall summarizes the whole replay.
type Overall struct {
	Events             int     `json:"events"`
	Modeled            int     `json:"modeled"`
	Measured           int     `json:"measured"`
	MeanIterErrRatio   float64 `json:"mean_iter_err_ratio"`
	MeanReplayErrRatio float64 `json:"mean_replay_err_ratio"`
	MeanDriftRatio     float64 `json:"mean_drift_ratio"`
}

// WhatIf reports the override evaluation.
type WhatIf struct {
	Machines int `json:"machines"`
	// QuotaWorkers is each queue's guaranteed worker count under the
	// override policy and machine count.
	QuotaWorkers map[string]int `json:"quota_workers,omitempty"`
	// HoldsLifted counts quota holds the override policy would admit;
	// AdmitsGated counts recorded admissions it would have held. Both
	// are policy-level verdicts: quota headroom and borrow gating are
	// re-evaluated, gang placement and Eq. 1 scoring are not re-run.
	HoldsLifted int `json:"holds_lifted"`
	AdmitsGated int `json:"admits_gated"`
}

// Report is the full calibration output of one replay.
type Report struct {
	SchemaVersion int  `json:"schema_version"`
	Machines      int  `json:"machines"`
	NetModel      bool `json:"net_model"`
	// Decisions holds one calibration row per journal event, in
	// sequence order.
	Decisions []Decision `json:"decisions,omitempty"`
	// Groups aggregates per (worker set, decision kind), sorted by
	// group then kind.
	Groups  []GroupKindError `json:"groups,omitempty"`
	Overall Overall          `json:"overall"`
	WhatIf  *WhatIf          `json:"what_if,omitempty"`
	// Skipped lists events the replayer could not model (job evicted
	// from the snapshot, unknown kind), so silent gaps are visible.
	Skipped []string `json:"skipped,omitempty"`
}

// Encode renders the report as canonical indented JSON. Reports from
// identical (snapshot, overrides) inputs encode to identical bytes —
// the determinism contract the property test pins.
func (r *Report) Encode() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// Load decodes and schema-checks a snapshot.
func Load(data []byte) (*master.Snapshot, error) {
	var s master.Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("replay: decode snapshot: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("replay: %w", err)
	}
	return &s, nil
}

// placementKinds are the journal kinds whose Group field is the job's
// new worker placement; every other group-bearing kind (ps_resize
// carries the PS server set) leaves placement untouched.
var placementKinds = map[string]bool{
	master.EventAdmitInitial: true,
	master.EventAdmitArrival: true,
	master.EventQueueDrain:   true,
	master.EventMigrate:      true,
	master.EventRecover:      true,
	master.EventResume:       true,
}

// removalKinds clear the job's placement.
var removalKinds = map[string]bool{
	master.EventCancel:   true,
	master.EventComplete: true,
	master.EventPreempt:  true,
}

// Run replays the snapshot's journal and produces the calibration
// report. It is deterministic: same snapshot bytes and overrides, same
// report bytes.
func Run(s *master.Snapshot, ov Overrides) (*Report, error) {
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("replay: %w", err)
	}
	netModel := s.Options.NetModel
	if ov.NetModel != nil {
		netModel = *ov.NetModel
	}
	machines := len(s.Workers)
	if ov.Machines > 0 {
		machines = ov.Machines
	}
	rep := &Report{
		SchemaVersion: s.SchemaVersion,
		Machines:      machines,
		NetModel:      netModel,
	}

	jobs := make(map[string]master.SnapshotJob, len(s.Jobs))
	infos := make(map[string]core.JobInfo, len(s.Jobs))
	for _, j := range s.Jobs {
		jobs[j.Name] = j
		info := core.JobInfo{
			ID: j.Name, Comp: j.CompSeconds, Net: j.NetSeconds,
			InputGB: j.InputGB, ModelGB: j.ModelGB, WorkGB: j.WorkGB,
			JVMHeapFactor: j.JVMHeapFactor, PullFrac: j.PullFrac,
		}
		// Same gate the live master applies (jobInfoLocked): the fitted
		// serial floor only feeds the model under the net-aware scheduler.
		if netModel {
			info.CompFloor = j.CompFloorSeconds
		}
		infos[j.Name] = info
	}

	var sched *fair.Scheduler
	var err error
	if ov.Queues != "" {
		cfgs, perr := fair.ParseConfigs(ov.Queues)
		if perr != nil {
			return nil, fmt.Errorf("replay: queue override: %w", perr)
		}
		sched, err = fair.New(cfgs...)
	} else {
		sched, err = fair.New(queueConfigs(s.Queues)...)
	}
	if err != nil {
		return nil, fmt.Errorf("replay: rebuild scheduler: %w", err)
	}

	// placed maps job → sorted worker set; held tracks pending jobs for
	// the policy what-if.
	placed := make(map[string][]string)
	held := make(map[string]bool)

	type agg struct {
		n              int
		iter, replay   float64
		iterN, replayN int
		drift          float64
		driftN         int
	}
	groups := make(map[string]*agg)
	var overall agg

	for _, e := range s.Journal {
		d := Decision{
			Seq: e.Seq, Kind: e.Kind, Job: e.Job, Note: e.Note,
			JournalIterSeconds:  e.PredictedIterSeconds,
			JournalCPUUtil:      e.PredictedCPUUtil,
			JournalNetUtil:      e.PredictedNetUtil,
			MeasuredIterSeconds: e.MeasuredIterSeconds,
			MeasuredCPUUtil:     e.MeasuredCPUUtil,
			MeasuredNetUtil:     e.MeasuredNetUtil,
		}
		missing := e.Job != "" && jobs[e.Job].Name == ""

		// State transitions first, so the reconstruction below sees the
		// post-decision placement — the same group the live stamp modeled.
		switch {
		case placementKinds[e.Kind]:
			if len(e.Group) > 0 {
				ws := append([]string(nil), e.Group...)
				sort.Strings(ws)
				placed[e.Job] = ws
			}
			delete(held, e.Job)
		case e.Kind == master.EventHold:
			held[e.Job] = true
		case e.Kind == master.EventCancelHeld:
			delete(held, e.Job)
		case removalKinds[e.Kind]:
			delete(placed, e.Job)
			if e.Kind == master.EventPreempt {
				held[e.Job] = true
			}
		}

		switch {
		case missing:
			rep.Skipped = append(rep.Skipped,
				fmt.Sprintf("seq %d (%s): job %q not in snapshot", e.Seq, e.Kind, e.Job))
		case placed[e.Job] != nil && e.Kind != master.EventComplete:
			ws := placed[e.Job]
			d.Group = strings.Join(ws, ",")
			g := core.Group{Machines: len(ws)}
			for _, name := range sortedKeys(placed) {
				if d.Group == strings.Join(placed[name], ",") {
					g.Jobs = append(g.Jobs, infos[name])
				}
			}
			p := core.PredictGroup(g, netModel)
			d.ReplayIterSeconds = p.IterSeconds
			d.ReplayCPUUtil, d.ReplayNetUtil = p.CPUUtil, p.NetUtil
		case e.Kind == master.EventComplete && len(e.Group) > 0:
			// Completion clears the placement; keep the recorded set as
			// the row's label so the aggregate lands on the right group.
			ws := append([]string(nil), e.Group...)
			sort.Strings(ws)
			d.Group = strings.Join(ws, ",")
		}

		d.IterErrRatio = errRatio(d.JournalIterSeconds, d.MeasuredIterSeconds)
		d.ReplayIterErrRatio = errRatio(d.ReplayIterSeconds, d.MeasuredIterSeconds)
		d.DriftRatio = errRatio(d.ReplayIterSeconds, d.JournalIterSeconds)

		if ov.active() {
			d.QuotaFlip = quotaFlip(e, jobs, placed, held, sched, machines, rep)
		}

		if d.Group != "" {
			key := d.Group + "\x00" + d.Kind
			a := groups[key]
			if a == nil {
				a = &agg{}
				groups[key] = a
			}
			for _, t := range []*agg{a, &overall} {
				t.n++
				if d.IterErrRatio > 0 {
					t.iter += d.IterErrRatio
					t.iterN++
				}
				if d.ReplayIterErrRatio > 0 {
					t.replay += d.ReplayIterErrRatio
					t.replayN++
				}
				if d.DriftRatio > 0 {
					t.drift += d.DriftRatio
					t.driftN++
				}
			}
		}
		rep.Decisions = append(rep.Decisions, d)
	}

	keys := make([]string, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		a := groups[k]
		gk, kind, _ := strings.Cut(k, "\x00")
		rep.Groups = append(rep.Groups, GroupKindError{
			Group: gk, Kind: kind, Decisions: a.n,
			MeanIterErrRatio:   mean(a.iter, a.iterN),
			MeanReplayErrRatio: mean(a.replay, a.replayN),
			MeanDriftRatio:     mean(a.drift, a.driftN),
		})
	}
	rep.Overall = Overall{
		Events:             len(s.Journal),
		Modeled:            overall.n,
		Measured:           overall.iterN,
		MeanIterErrRatio:   mean(overall.iter, overall.iterN),
		MeanReplayErrRatio: mean(overall.replay, overall.replayN),
		MeanDriftRatio:     mean(overall.drift, overall.driftN),
	}
	if ov.active() {
		wi := rep.WhatIf
		if wi == nil {
			wi = &WhatIf{}
			rep.WhatIf = wi
		}
		wi.Machines = machines
		wi.QuotaWorkers = make(map[string]int)
		for _, name := range sched.Names() {
			wi.QuotaWorkers[name] = sched.QuotaWorkers(name, machines)
		}
	}
	return rep, nil
}

// quotaFlip re-evaluates one decision's quota verdict under the
// override policy: a quota hold that would now fit (headroom or
// ungated borrowing, plus free cluster capacity) flips to
// "would_admit"; a recorded admission that would now exceed quota with
// borrowing gated flips to "would_gate". Gang placement and Eq. 1
// scoring are deliberately not re-run — this is the policy layer only.
func quotaFlip(e master.Event, jobs map[string]master.SnapshotJob,
	placed map[string][]string, held map[string]bool,
	sched *fair.Scheduler, machines int, rep *Report) string {

	j, ok := jobs[e.Job]
	if !ok {
		return ""
	}
	queue := j.Queue
	if queue == "" || !sched.Has(queue) {
		queue = fair.DefaultQueue
	}
	usage := make(fair.Usage)
	used := 0
	for name, ws := range placed {
		q := jobs[name].Queue
		if q == "" || !sched.Has(q) {
			q = fair.DefaultQueue
		}
		usage[q] += len(ws)
		used += len(ws)
	}
	heldList := heldSlice(held, jobs, sched)

	switch {
	case e.Kind == master.EventHold && strings.Contains(e.Note, fair.HoldQuota):
		demand := j.MinWorkers
		if demand < 1 {
			demand = 1
		}
		headroom := usage[queue]+demand <= sched.QuotaWorkers(queue, machines)
		borrow := !sched.BorrowGated(queue, heldList, usage, machines)
		if (headroom || borrow) && used+demand <= machines {
			if rep.WhatIf == nil {
				rep.WhatIf = &WhatIf{}
			}
			rep.WhatIf.HoldsLifted++
			return "would_admit"
		}
	case e.Kind == master.EventAdmitArrival || e.Kind == master.EventQueueDrain:
		size := len(e.Group)
		if size == 0 {
			return ""
		}
		// The admitted job is already in usage (state applied first);
		// the verdict asks whether the policy would have let it in.
		over := usage[queue] > sched.QuotaWorkers(queue, machines)
		if over && sched.BorrowGated(queue, heldList, usage, machines) {
			if rep.WhatIf == nil {
				rep.WhatIf = &WhatIf{}
			}
			rep.WhatIf.AdmitsGated++
			return "would_gate"
		}
	}
	return ""
}

// heldSlice builds the fair.Held list from the replayer's held set, in
// arrival order.
func heldSlice(held map[string]bool, jobs map[string]master.SnapshotJob,
	sched *fair.Scheduler) []fair.Held {
	out := make([]fair.Held, 0, len(held))
	for _, name := range sortedBoolKeys(held) {
		j := jobs[name]
		q := j.Queue
		if q == "" || !sched.Has(q) {
			q = fair.DefaultQueue
		}
		demand := j.MinWorkers
		if demand < 1 {
			demand = 1
		}
		out = append(out, fair.Held{
			Job: name, Queue: q, Priority: j.Priority,
			Seq: j.ArrivalSeq, Demand: demand, Resumable: j.Resumable,
		})
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Seq < out[b].Seq })
	return out
}

// queueConfigs rebuilds the captured policy's declarations from the
// snapshot's queue views.
func queueConfigs(qs []master.QueueView) []fair.QueueConfig {
	out := make([]fair.QueueConfig, 0, len(qs))
	for _, q := range qs {
		out = append(out, fair.QueueConfig{
			Name: q.Name, Parent: q.Parent, Weight: q.Weight,
			Quota: q.Quota, OverQuotaWeight: q.OverQuotaWeight,
		})
	}
	return out
}

// errRatio is |a − b| / b, zero when either side is unavailable.
func errRatio(a, b float64) float64 {
	if a <= 0 || b <= 0 {
		return 0
	}
	return math.Abs(a-b) / b
}

func mean(sum float64, n int) float64 {
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

func sortedKeys(m map[string][]string) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func sortedBoolKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
