package replay

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"harmony/internal/master"
)

// testSnapshot builds a fixed two-tenant snapshot: two jobs co-located
// on one group, one quota-held job, one completed job, and a journal
// covering admit/hold/complete. Every timestamp is pinned so the
// fixture is byte-stable.
func testSnapshot() *master.Snapshot {
	t0 := time.Date(2026, 8, 1, 12, 0, 0, 0, time.UTC)
	at := func(s int) time.Time { return t0.Add(time.Duration(s) * time.Second) }
	return &master.Snapshot{
		SchemaVersion: master.SnapshotSchemaVersion,
		CapturedAt:    at(60),
		Options: master.SnapshotOptions{
			CPUWeight: 0.5, MemoryCapGB: 40, MaxJobsPerGroup: 3,
		},
		Workers: []string{"w0", "w1", "w2", "w3"},
		Groups: []master.SnapshotGroup{
			{Workers: []string{"w0", "w1"}, Jobs: []string{"prod-a", "prod-b"}},
		},
		Jobs: []master.SnapshotJob{
			{
				Name: "dev-c", State: "pending", Algorithm: "LDA",
				Iterations: 30, MinWorkers: 2, Queue: "dev", ArrivalSeq: 3,
				CompSeconds: 6, NetSeconds: 1, ModelGB: 0.4, WorkGB: 0.2,
				JVMHeapFactor: 2.2, PullFrac: 0.5,
				HoldReason: "quota_exhausted",
			},
			{
				Name: "prod-a", State: "running", Algorithm: "NMF",
				Iterations: 50, Iteration: 5, Queue: "prod", ArrivalSeq: 1, StartSeq: 1,
				Workers:     []string{"w0", "w1"},
				CompSeconds: 8, NetSeconds: 1, InputGB: 2, ModelGB: 0.5, WorkGB: 0.3,
				JVMHeapFactor: 2.2, PullFrac: 0.6,
				Profiled: true, ProfileSamples: 5,
				MeasuredIterSeconds: 5.2,
			},
			{
				Name: "prod-b", State: "running", Algorithm: "MLR",
				Iterations: 40, Iteration: 3, Queue: "prod", ArrivalSeq: 2, StartSeq: 2,
				Workers:     []string{"w0", "w1"},
				CompSeconds: 4, NetSeconds: 2, InputGB: 1, ModelGB: 0.3, WorkGB: 0.2,
				JVMHeapFactor: 2.2, PullFrac: 0.4,
				Profiled: true, ProfileSamples: 4,
				MeasuredIterSeconds: 5.4,
			},
			{
				Name: "prod-d", State: "finished", Algorithm: "Lasso",
				Iterations: 10, Iteration: 10, Queue: "prod",
				CompSeconds: 2, NetSeconds: 0.5,
			},
		},
		Queues: []master.QueueView{
			{Name: "dev", Weight: 1, Quota: 0.25, OverQuotaWeight: 1},
			{Name: "prod", Weight: 3, Quota: 0.75, OverQuotaWeight: 3},
		},
		Journal: []master.Event{
			{
				Seq: 1, Time: at(0), Kind: master.EventAdmitInitial, Job: "prod-a",
				Group:                []string{"w0", "w1"},
				PredictedIterSeconds: 5.0, PredictedCPUUtil: 0.8, PredictedNetUtil: 0.2,
				MeasuredIterSeconds: 5.2, MeasuredCPUUtil: 0.77, MeasuredNetUtil: 0.19,
			},
			{
				Seq: 2, Time: at(5), Kind: master.EventAdmitArrival, Job: "prod-b",
				Group:                []string{"w0", "w1"},
				PredictedIterSeconds: 6.1, PredictedCPUUtil: 0.95, PredictedNetUtil: 0.5,
				MeasuredIterSeconds: 5.4, MeasuredCPUUtil: 0.9, MeasuredNetUtil: 0.52,
			},
			{
				Seq: 3, Time: at(10), Kind: master.EventHold, Job: "dev-c",
				Note: "held: quota_exhausted",
			},
			{
				Seq: 4, Time: at(40), Kind: master.EventComplete, Job: "prod-d",
				Group:                []string{"w2", "w3"},
				PredictedIterSeconds: 1.5, MeasuredIterSeconds: 1.6,
			},
		},
	}
}

// TestReplayDeterministic pins the determinism contract: replaying the
// same snapshot twice — and replaying its own JSON round trip — must
// produce bit-identical report bytes.
func TestReplayDeterministic(t *testing.T) {
	snap := testSnapshot()
	encode := func(s *master.Snapshot) []byte {
		t.Helper()
		rep, err := Run(s, Overrides{})
		if err != nil {
			t.Fatal(err)
		}
		b, err := rep.Encode()
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	first := encode(snap)
	for i := 0; i < 5; i++ {
		if again := encode(snap); !bytes.Equal(first, again) {
			t.Fatalf("replay %d diverged from the first run", i+2)
		}
	}
	raw, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(raw)
	if err != nil {
		t.Fatal(err)
	}
	if b := encode(loaded); !bytes.Equal(first, b) {
		t.Fatal("replay of the JSON round trip diverged")
	}
}

// TestReplayCalibration checks the report's substance: journal stamps
// flow into the rows, the model is re-run per placement, and the error
// ratios line up with the recorded values.
func TestReplayCalibration(t *testing.T) {
	rep, err := Run(testSnapshot(), Overrides{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Overall.Events != 4 {
		t.Fatalf("events = %d, want 4", rep.Overall.Events)
	}
	if len(rep.Decisions) != 4 {
		t.Fatalf("decisions = %d, want 4", len(rep.Decisions))
	}
	if len(rep.Skipped) != 0 {
		t.Fatalf("unexpected skips: %v", rep.Skipped)
	}

	d0 := rep.Decisions[0] // admit_initial prod-a, alone on w0,w1
	if d0.Group != "w0,w1" {
		t.Fatalf("d0 group = %q", d0.Group)
	}
	// prod-a alone at DoP 2: T_itr = max(8/2, 1, 8/2+1) = 5.
	if d0.ReplayIterSeconds != 5 {
		t.Fatalf("d0 replay T_itr = %v, want 5", d0.ReplayIterSeconds)
	}
	if d0.JournalIterSeconds != 5.0 || d0.MeasuredIterSeconds != 5.2 {
		t.Fatalf("d0 journal/measured = %v/%v", d0.JournalIterSeconds, d0.MeasuredIterSeconds)
	}
	wantErr := (5.2 - 5.0) / 5.2
	if diff := d0.IterErrRatio - wantErr; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("d0 err ratio = %v, want %v", d0.IterErrRatio, wantErr)
	}

	d1 := rep.Decisions[1] // admit_arrival prod-b joins the group
	// Group {prod-a, prod-b} at DoP 2: SumComp = 8/2 + 4/2 = 6,
	// SumNet = 1 + 2 = 3, MaxJobIter = max(5, 4) = 5 → T_itr = 6.
	if d1.ReplayIterSeconds != 6 {
		t.Fatalf("d1 replay T_itr = %v, want 6", d1.ReplayIterSeconds)
	}
	if d1.DriftRatio <= 0 {
		t.Fatal("d1 should drift: journal stamped 6.1, replay computes 6")
	}

	if rep.Decisions[2].Group != "" || rep.Decisions[2].ReplayIterSeconds != 0 {
		t.Fatalf("hold decision should carry no placement model: %+v", rep.Decisions[2])
	}
	if rep.Decisions[3].Group != "w2,w3" {
		t.Fatalf("complete row keeps its recorded group, got %q", rep.Decisions[3].Group)
	}

	if len(rep.Groups) == 0 {
		t.Fatal("no group aggregates")
	}
	found := false
	for _, g := range rep.Groups {
		if g.Group == "w0,w1" && g.Kind == "admit_arrival" {
			found = true
			if g.Decisions != 1 || g.MeanIterErrRatio <= 0 {
				t.Fatalf("bad aggregate: %+v", g)
			}
		}
	}
	if !found {
		t.Fatal("missing (w0,w1, admit_arrival) aggregate")
	}
	if rep.WhatIf != nil {
		t.Fatal("no overrides, but WhatIf present")
	}
}

// TestReplayWhatIf checks the override path: a bigger cluster and a
// dev-favoring policy lift the recorded quota hold, and the report
// carries the override's quota arithmetic.
func TestReplayWhatIf(t *testing.T) {
	rep, err := Run(testSnapshot(), Overrides{
		Machines: 8,
		Queues:   "dev:quota=0.5;prod:quota=0.5",
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Machines != 8 {
		t.Fatalf("machines = %d, want 8", rep.Machines)
	}
	if rep.WhatIf == nil {
		t.Fatal("overrides set but WhatIf missing")
	}
	if rep.WhatIf.HoldsLifted != 1 {
		t.Fatalf("holds lifted = %d, want 1", rep.WhatIf.HoldsLifted)
	}
	if rep.Decisions[2].QuotaFlip != "would_admit" {
		t.Fatalf("hold decision flip = %q, want would_admit", rep.Decisions[2].QuotaFlip)
	}
	if got := rep.WhatIf.QuotaWorkers["dev"]; got != 4 {
		t.Fatalf("dev quota workers = %d, want 4", got)
	}

	// NetModel override changes the model but never the recorded
	// placements.
	on := true
	rep2, err := Run(testSnapshot(), Overrides{NetModel: &on})
	if err != nil {
		t.Fatal(err)
	}
	if !rep2.NetModel {
		t.Fatal("NetModel override not reflected")
	}
	if rep2.Decisions[0].Group != "w0,w1" {
		t.Fatal("override must not move recorded placements")
	}
}

// TestReplayValidates ensures broken snapshots are refused, not
// replayed into garbage.
func TestReplayValidates(t *testing.T) {
	snap := testSnapshot()
	snap.SchemaVersion++
	if _, err := Run(snap, Overrides{}); err == nil {
		t.Fatal("version-mismatched snapshot accepted")
	}
	if _, err := Load([]byte(`{"schema_version": 999}`)); err == nil {
		t.Fatal("Load accepted a future schema version")
	}
}

// TestReplaySkipsEvictedJobs: a journal event whose job aged out of the
// snapshot is reported in Skipped rather than silently dropped.
func TestReplaySkipsEvictedJobs(t *testing.T) {
	snap := testSnapshot()
	snap.Journal = append(snap.Journal, master.Event{
		Seq: 5, Time: snap.CapturedAt, Kind: master.EventMigrate, Job: "ghost",
		Group: []string{"w2"},
	})
	rep, err := Run(snap, Overrides{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Skipped) != 1 {
		t.Fatalf("skipped = %v, want one ghost entry", rep.Skipped)
	}
}

// TestToScenario checks snapshot → simulator conversion: unfinished
// jobs carry their remaining iterations, arrivals follow the journal,
// finished jobs are skipped with a reason.
func TestToScenario(t *testing.T) {
	sc, err := ToScenario(testSnapshot(), Overrides{})
	if err != nil {
		t.Fatal(err)
	}
	if sc.Config.Machines != 4 {
		t.Fatalf("machines = %d, want 4", sc.Config.Machines)
	}
	if len(sc.Jobs) != 3 {
		t.Fatalf("jobs = %d, want 3 (prod-d finished)", len(sc.Jobs))
	}
	if len(sc.Skipped) != 1 {
		t.Fatalf("skipped = %v, want prod-d", sc.Skipped)
	}
	byID := make(map[string]int)
	for _, j := range sc.Jobs {
		byID[j.Spec.ID] = j.Spec.Iterations
	}
	if byID["prod-a"] != 45 {
		t.Fatalf("prod-a remaining iterations = %d, want 45", byID["prod-a"])
	}
	if byID["dev-c"] != 30 {
		t.Fatalf("dev-c remaining iterations = %d, want 30", byID["dev-c"])
	}
	// Arrivals: prod-a journaled at t0 (offset 0), prod-b at +5s,
	// dev-c at +10s; the job list is sorted by arrival.
	if sc.Jobs[0].Spec.ID != "prod-a" || sc.Jobs[0].Arrival != 0 {
		t.Fatalf("first arrival = %+v, want prod-a at 0", sc.Jobs[0])
	}
	if sc.Jobs[2].Spec.ID != "dev-c" {
		t.Fatalf("last arrival = %s, want dev-c", sc.Jobs[2].Spec.ID)
	}
	if sc.Jobs[1].Arrival >= sc.Jobs[2].Arrival {
		t.Fatal("arrival offsets not ordered")
	}

	// Conversion is deterministic through a JSON round trip (Mode
	// marshals by name).
	b1, err := json.Marshal(sc)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(b1, []byte(`"harmony"`)) {
		t.Fatal("scenario config should carry the mode by name")
	}
	sc2, err := ToScenario(testSnapshot(), Overrides{})
	if err != nil {
		t.Fatal(err)
	}
	b2, err := json.Marshal(sc2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatal("scenario conversion not deterministic")
	}
}
