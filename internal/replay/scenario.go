package replay

import (
	"fmt"
	"sort"

	"harmony/internal/master"
	"harmony/internal/sim"
	"harmony/internal/simtime"
	"harmony/internal/workload"
)

// Scenario is a snapshot converted into simulator inputs: the live
// cluster's unfinished work as a sim.Config plus an arrival trace, so
// "what would this workload have done under regime X" questions run in
// internal/sim instead of against the live cluster.
type Scenario struct {
	Config sim.Config `json:"config"`
	Jobs   []sim.Job  `json:"jobs"`
	// Skipped names jobs that could not convert (already finished, or
	// missing cost metrics); conversion never drops work silently.
	Skipped []string `json:"skipped,omitempty"`
}

// ToScenario converts a snapshot into a simulator scenario. Unfinished
// jobs become workload specs with their remaining iterations; arrival
// offsets come from each job's first journal event, measured from the
// journal's start (jobs with no journaled arrival submit at time zero).
// Overrides apply the same way they do in Run: machine count replaces
// the captured cluster size, NetModel toggles the scheduler's model.
// The conversion is deterministic — jobs sort by (arrival, name).
func ToScenario(s *master.Snapshot, ov Overrides) (*Scenario, error) {
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("replay: %w", err)
	}
	netModel := s.Options.NetModel
	if ov.NetModel != nil {
		netModel = *ov.NetModel
	}
	machines := len(s.Workers)
	if ov.Machines > 0 {
		machines = ov.Machines
	}
	sc := &Scenario{Config: sim.Config{
		Machines: machines,
		Mode:     sim.ModeHarmony,
		Seed:     1,
	}}
	sc.Config.SchedOpts.CPUWeight = s.Options.CPUWeight
	sc.Config.SchedOpts.MemoryCapGB = s.Options.MemoryCapGB
	sc.Config.SchedOpts.MinImprovement = s.Options.MinImprovement
	sc.Config.SchedOpts.MaxJobsPerGroup = s.Options.MaxJobsPerGroup
	sc.Config.SchedOpts.DisableSwapTuning = s.Options.DisableSwapTuning
	sc.Config.SchedOpts.NetModel = netModel

	arrivals := arrivalOffsets(s.Journal)
	for _, j := range s.Jobs {
		spec, err := jobSpec(j)
		if err != nil {
			sc.Skipped = append(sc.Skipped, fmt.Sprintf("%s: %v", j.Name, err))
			continue
		}
		sc.Jobs = append(sc.Jobs, sim.Job{Spec: spec, Arrival: arrivals[j.Name]})
	}
	sort.Slice(sc.Jobs, func(a, b int) bool {
		if sc.Jobs[a].Arrival != sc.Jobs[b].Arrival {
			return sc.Jobs[a].Arrival < sc.Jobs[b].Arrival
		}
		return sc.Jobs[a].Spec.ID < sc.Jobs[b].Spec.ID
	})
	return sc, nil
}

// jobSpec converts one snapshot job into a workload spec carrying its
// remaining work.
func jobSpec(j master.SnapshotJob) (workload.Spec, error) {
	switch j.State {
	case "finished", "canceled", "failed":
		return workload.Spec{}, fmt.Errorf("state %s", j.State)
	}
	remaining := j.Iterations - j.Iteration
	if remaining < 1 {
		remaining = 1
	}
	spec := workload.Spec{
		ID:  j.Name,
		App: parseApp(j.Algorithm),
		Data: workload.Dataset{
			Name:    j.Name + "-data",
			InputGB: j.InputGB,
			ModelGB: j.ModelGB,
		},
		CompMachineSeconds: j.CompSeconds,
		NetSeconds:         j.NetSeconds,
		PullFrac:           j.PullFrac,
		Iterations:         remaining,
		WorkGB:             j.WorkGB,
	}
	if err := spec.Validate(); err != nil {
		return workload.Spec{}, err
	}
	return spec, nil
}

// parseApp maps the journal's algorithm names (mlapp.Kind.String) onto
// workload applications; unknown names fall back to MLR, the most
// generic cost shape.
func parseApp(name string) workload.App {
	switch name {
	case "NMF":
		return workload.NMF
	case "LDA":
		return workload.LDA
	case "Lasso":
		return workload.Lasso
	default:
		return workload.MLR
	}
}

// arrivalOffsets derives each job's submission offset from its first
// journal event, relative to the journal's first event. Only times the
// snapshot itself carries are used — the conversion never reads the
// clock.
func arrivalOffsets(events []master.Event) map[string]simtime.Time {
	out := make(map[string]simtime.Time)
	if len(events) == 0 {
		return out
	}
	epoch := events[0].Time
	for _, e := range events {
		if e.Job == "" {
			continue
		}
		if _, seen := out[e.Job]; seen {
			continue
		}
		out[e.Job] = simtime.Time(simtime.FromSeconds(e.Time.Sub(epoch).Seconds()))
	}
	return out
}
