package replay

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"

	"harmony/internal/master"
	"harmony/internal/profile"
	"harmony/internal/ps"
)

// Regenerate the golden corpus after an intentional schema or report
// change with:
//
//	go test ./internal/replay/ -run Golden -update
//	go test ./internal/replay/ -run SchemaGuard -update
var update = flag.Bool("update", false, "rewrite golden snapshot/report/schema files")

const (
	goldenSnapshot = "../../examples/snapshots/two-tenant.json"
	goldenReport   = "testdata/two-tenant.report.json"
	goldenSchema   = "testdata/schema_v1.json"
)

func writeGolden(t *testing.T, path string, data []byte) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestGoldenSnapshotRoundTrip pins the full pipeline against checked-in
// bytes: the example snapshot loads, validates, and replays to exactly
// the golden calibration report. A diff here means either the snapshot
// schema or the replay semantics changed — both must be deliberate
// (and the schema kind must bump SnapshotSchemaVersion).
func TestGoldenSnapshotRoundTrip(t *testing.T) {
	if *update {
		snapBytes, err := json.MarshalIndent(testSnapshot(), "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		writeGolden(t, goldenSnapshot, append(snapBytes, '\n'))
		rep, err := Run(testSnapshot(), Overrides{})
		if err != nil {
			t.Fatal(err)
		}
		repBytes, err := rep.Encode()
		if err != nil {
			t.Fatal(err)
		}
		writeGolden(t, goldenReport, repBytes)
	}

	raw, err := os.ReadFile(goldenSnapshot)
	if err != nil {
		t.Fatalf("read golden snapshot (regenerate with -update): %v", err)
	}
	snap, err := Load(raw)
	if err != nil {
		t.Fatalf("golden snapshot no longer loads: %v", err)
	}
	rep, err := Run(snap, Overrides{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := rep.Encode()
	if err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(goldenReport)
	if err != nil {
		t.Fatalf("read golden report (regenerate with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("replay of the golden snapshot diverged from %s;\n"+
			"if the change is intentional, regenerate with -update\ngot:\n%s",
			goldenReport, got)
	}

	// The checked-in snapshot must also round-trip byte-identically
	// through the current schema: decode → re-encode → same bytes.
	// An unversioned field addition or tag rename breaks this.
	re, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(append(re, '\n'), raw) {
		t.Fatalf("golden snapshot does not round-trip through the current schema; " +
			"bump master.SnapshotSchemaVersion for wire changes, then regenerate with -update")
	}
}

// schemaProbe is a snapshot with every field populated, so any change
// to the JSON shape — added field, renamed tag, changed type — shows up
// as a byte diff against the schema golden.
func schemaProbe() *master.Snapshot {
	t0 := time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)
	return &master.Snapshot{
		SchemaVersion: master.SnapshotSchemaVersion,
		CapturedAt:    t0,
		Options: master.SnapshotOptions{
			CPUWeight: 0.5, MemoryCapGB: 48, MinImprovement: 0.02,
			MaxJobsPerGroup: 3, DisableSwapTuning: true, NetModel: true,
		},
		Workers: []string{"w0", "w1"},
		Groups:  []master.SnapshotGroup{{Workers: []string{"w0"}, Jobs: []string{"j"}}},
		Jobs: []master.SnapshotJob{{
			Name: "j", State: "running", Algorithm: "NMF", Seed: 7, Alpha: 0.3,
			Iterations: 100, MinWorkers: 1, MaxWorkers: 4,
			Queue: "prod", Priority: 2, ArrivalSeq: 3, StartSeq: 4,
			Iteration: 10, Workers: []string{"w0"}, CheckpointIteration: 9,
			CompSeconds: 8, NetSeconds: 1, InputGB: 2, ModelGB: 0.5, WorkGB: 0.3,
			JVMHeapFactor: 2.2, PullFrac: 0.6, CompFloorSeconds: 0.4,
			Profiled: true, ProfileSamples: 5,
			ProfilePoints: []profile.DoPPoint{
				{DoP: 2, CompSeconds: 8, Samples: 3},
				{DoP: 4, CompSeconds: 4.5, Samples: 2},
			},
			SensitivityDoPs:     2,
			MeasuredIterSeconds: 5.2,
			HoldReason:          "quota_exhausted", Resumable: true, ResumeIteration: 8,
		}},
		Queues: []master.QueueView{{
			Name: "prod", Parent: "root", Weight: 3, Quota: 0.75, OverQuotaWeight: 3,
			Share: 0.75, QuotaWorkers: 2, UsageWorkers: 1, Running: 1, Depth: 0,
			Admitted: 5, Held: 2, Drained: 1, Preempted: 1, Canceled: 1,
		}},
		PS: &ps.ClusterStats{Servers: []ps.ServerStats{{Name: "w0", Addr: "127.0.0.1:1"}}},
		Journal: []master.Event{{
			Seq: 1, Time: t0, Kind: master.EventAdmitInitial, Job: "j",
			Group:                []string{"w0"},
			PredictedIterSeconds: 5, PredictedCPUUtil: 0.8, PredictedNetUtil: 0.2,
			MeasuredIterSeconds: 5.2, MeasuredCPUUtil: 0.77, MeasuredNetUtil: 0.19,
			PredictedCompatibility: 0.9, MeasuredCompatibility: 0.85,
			Note: "note",
		}},
	}
}

// TestSnapshotSchemaGuard fails when the snapshot's JSON shape changes
// without a version bump: the canonical marshal of a fully-populated
// snapshot must match the checked-in schema golden for the current
// SnapshotSchemaVersion.
func TestSnapshotSchemaGuard(t *testing.T) {
	got, err := json.MarshalIndent(schemaProbe(), "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')
	if *update {
		writeGolden(t, goldenSchema, got)
	}
	want, err := os.ReadFile(goldenSchema)
	if err != nil {
		t.Fatalf("read schema golden (regenerate with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("snapshot JSON shape changed without a schema version bump;\n"+
			"bump master.SnapshotSchemaVersion, add testdata/schema_v%d.json, and "+
			"regenerate this golden with -update",
			master.SnapshotSchemaVersion+1)
	}
}
