package exp

import (
	"strings"
	"testing"
	"time"
)

func TestFig2ShapesMatchPaper(t *testing.T) {
	r, err := Fig2(DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("fig2 rows = %d, want 4", len(r.Rows))
	}
	for _, row := range r.Rows {
		// Fig. 2's point: single jobs never saturate both resources.
		if row.CPUUtil > 0.95 && row.NetUtil > 0.95 {
			t.Errorf("%s: both resources saturated (%.2f, %.2f)", row.Workload, row.CPUUtil, row.NetUtil)
		}
		if row.CPUUtil+row.NetUtil < 0.4 {
			t.Errorf("%s: implausibly idle (%.2f, %.2f)", row.Workload, row.CPUUtil, row.NetUtil)
		}
	}
	if !strings.Contains(r.String(), "Fig. 2") {
		t.Error("String() missing title")
	}
}

func TestFig3ShapesMatchPaper(t *testing.T) {
	r, err := Fig3(DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("fig3 rows = %d, want 4", len(r.Rows))
	}
	for i := 1; i < len(r.Rows); i++ {
		// More machines: shorter iterations, lower CPU utilization.
		if r.Rows[i].IterSeconds >= r.Rows[i-1].IterSeconds {
			t.Errorf("iteration time not decreasing: m=%d %.0fs vs m=%d %.0fs",
				r.Rows[i].Machines, r.Rows[i].IterSeconds,
				r.Rows[i-1].Machines, r.Rows[i-1].IterSeconds)
		}
		if r.Rows[i].CPUUtil >= r.Rows[i-1].CPUUtil {
			t.Errorf("CPU util not decreasing with machines: %.2f -> %.2f",
				r.Rows[i-1].CPUUtil, r.Rows[i].CPUUtil)
		}
		// COMP halves with machines (Eq. 2); PULL/PUSH stay near-flat.
		if r.Rows[i].CompSeconds >= r.Rows[i-1].CompSeconds {
			t.Error("COMP time not shrinking with machines")
		}
	}
}

func TestFig4OOMOnTriple(t *testing.T) {
	r, err := Fig4(DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 6 {
		t.Fatalf("fig4 rows = %d, want 6", len(r.Rows))
	}
	last := r.Rows[len(r.Rows)-1]
	if !last.OOM {
		t.Errorf("three-job co-location should OOM, got util (%.2f, %.2f)", last.CPUUtil, last.NetUtil)
	}
	for _, row := range r.Rows[:5] {
		if row.OOM {
			t.Errorf("%s unexpectedly OOMed", row.Setup)
		}
		// Naive co-location never raises both utilizations high.
		if row.CPUUtil > 0.9 && row.NetUtil > 0.9 {
			t.Errorf("%s: naive co-location should not saturate both resources", row.Setup)
		}
	}
}

func TestFig9Distributions(t *testing.T) {
	r := Fig9()
	if len(r.IterMinutes) != 80 || len(r.CompRatios) != 80 {
		t.Fatalf("fig9 samples = %d/%d, want 80/80", len(r.IterMinutes), len(r.CompRatios))
	}
	if !strings.Contains(r.String(), "iteration time") {
		t.Error("String() missing series")
	}
}

func TestFig10Headline(t *testing.T) {
	if testing.Short() {
		t.Skip("full 80-job comparison")
	}
	r, err := Fig10(DefaultSeed, 3)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's ordering: Harmony beats isolated on both metrics.
	if s := r.JCTSpeedup(r.Harmony); s <= 1.1 {
		t.Errorf("harmony JCT speedup %.2fx, want > 1.1x (paper: 2.11x)", s)
	}
	if s := r.MakespanSpeedup(r.Harmony); s <= 1.3 {
		t.Errorf("harmony makespan speedup %.2fx, want > 1.3x (paper: 1.60x)", s)
	}
	// Harmony completes everything; naive is unpredictable.
	if r.Harmony.Failed != 0 {
		t.Errorf("harmony failed %d jobs", r.Harmony.Failed)
	}
	if r.Harmony.CPUUtil <= r.Isolated.CPUUtil {
		t.Error("harmony CPU utilization should beat isolated")
	}
	_, worstJCT, _, worstMk, _, _ := r.naiveRange()
	if worstJCT >= r.JCTSpeedup(r.Harmony) || worstMk >= r.MakespanSpeedup(r.Harmony) {
		t.Error("naive worst case should fall below harmony")
	}
}

func TestFig13bPredictionErrorSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("full 80-job run")
	}
	r, err := Fig13b(DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.IterErrors) == 0 {
		t.Fatal("no iteration-time prediction samples")
	}
	if e := r.MeanIterError(); e > 0.12 {
		t.Errorf("mean T_g_itr prediction error %.1f%%, want small (paper < 5%%)", e*100)
	}
	if e := r.MeanUError(); e > 0.25 {
		t.Errorf("mean U prediction error %.1f%%, want moderate", e*100)
	}
}

func TestScaleSchedFast(t *testing.T) {
	r := ScaleSched(DefaultSeed)
	if len(r.Points) != 4 {
		t.Fatalf("scale points = %d", len(r.Points))
	}
	last := r.Points[len(r.Points)-1]
	if last.Jobs != 8000 || last.Machines != 10000 {
		t.Fatalf("unexpected final case %+v", last)
	}
	if last.Latency > 5*time.Second {
		t.Errorf("8K jobs / 10K machines took %v, paper claims < 5s", last.Latency)
	}
}

func TestTab1(t *testing.T) {
	r := Tab1()
	if len(r.Specs) != 8 {
		t.Fatalf("tab1 rows = %d, want 8", len(r.Specs))
	}
	if !strings.Contains(r.String(), "Netflix64x") {
		t.Error("missing dataset")
	}
}

func TestReloadShape(t *testing.T) {
	if testing.Short() {
		t.Skip("reload micro-benchmark")
	}
	r, err := Reload(DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	bestA, bestIter := r.BestFixed()
	if bestIter <= 0 {
		t.Fatal("no successful fixed-alpha run")
	}
	// The low-α regime must hurt: out-of-memory kills or exploding GC
	// ("when α is too low, GC explodes", §V-G).
	lowAlphaPain := false
	for _, row := range r.Rows {
		if row.Alpha >= 0 && row.Alpha <= 0.2 && (row.Failed > 0 || row.GCSeconds > 2*bestIter) {
			lowAlphaPain = true
		}
	}
	if !lowAlphaPain {
		t.Error("low fixed α shows neither OOM nor GC explosion")
	}
	// The best fixed α is interior: extremes lose to the middle.
	if bestA <= 0.05 || bestA >= 0.95 {
		t.Errorf("best fixed alpha %.1f at the extreme, want interior (paper: 0.3)", bestA)
	}
	// Adaptive completes everything and lands near the best fixed
	// setting without knowing it in advance. (The paper's adaptive beats
	// best-fixed by 16%; see EXPERIMENTS.md for why ours only ties.)
	if ad := r.Adaptive(); ad > bestIter*1.25 {
		t.Errorf("adaptive %.0fs far from best fixed %.0fs", ad, bestIter)
	}
	for _, row := range r.Rows {
		if row.Alpha < 0 && row.Failed > 0 {
			t.Errorf("adaptive run failed %d jobs", row.Failed)
		}
	}
}
