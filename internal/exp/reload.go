package exp

import (
	"fmt"
	"strings"

	"harmony/internal/sim"
	"harmony/internal/workload"
)

// ReloadRow is one α setting of the §V-G micro-benchmark.
type ReloadRow struct {
	Alpha       float64 // -1 marks the adaptive controller
	IterSeconds float64 // mean group iteration time
	Makespan    float64 // seconds; grouping-independent comparison
	GCSeconds   float64
	StallSecs   float64
	Failed      int
}

// ReloadResult reproduces §V-G: mean group iteration time is U-shaped in
// the fixed disk-block ratio α, and the adaptive per-job controller beats
// the best fixed setting.
type ReloadResult struct {
	Rows []ReloadRow
	// AlphaMean/Min/Max summarize the adaptive run's final ratios
	// (paper: average 0.34, min 0.11, max 1).
	AlphaMean float64
	AlphaMin  float64
	AlphaMax  float64
	// ModelSpills counts jobs that needed the last-resort model spill.
	ModelSpills int
}

// Reload runs the 8-job / 32-machine micro-benchmark across fixed α
// values and the adaptive controller.
func Reload(seed int64) (*ReloadResult, error) {
	specs := workload.ReloadJobs()
	// Shorten convergence (the comparison stabilizes within a few dozen
	// iterations) and scale the datasets so that the sweep exercises both
	// failure regimes on 32 machines: α near 0 must overflow memory ("GC
	// explodes", §V-G) while mid-range α must fit — mirroring the
	// data-to-memory ratio of the paper's configuration.
	for i := range specs {
		specs[i].Iterations = 24
		specs[i].Data.InputGB *= 0.6
	}
	jobs := sim.Jobs(specs, nil)
	out := &ReloadResult{}
	run := func(alpha float64) (*sim.Result, error) {
		cfg := sim.Config{Machines: 32, Mode: sim.ModeHarmony, Seed: seed}
		if alpha >= 0 {
			cfg.FixedAlpha = alpha
			cfg.ExplicitZeroAlpha = alpha == 0
		}
		return sim.Run(cfg, jobs)
	}
	for _, a := range []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.7, 0.9, 1.0} {
		res, err := run(a)
		if err != nil {
			return nil, fmt.Errorf("reload alpha=%.1f: %w", a, err)
		}
		out.Rows = append(out.Rows, ReloadRow{
			Alpha:       a,
			IterSeconds: res.MeanGroupIterSeconds,
			Makespan:    res.Summary.Makespan.Seconds(),
			GCSeconds:   res.GCSeconds,
			StallSecs:   res.StallSeconds,
			Failed:      len(res.Failed),
		})
	}
	adaptive, err := run(-1)
	if err != nil {
		return nil, fmt.Errorf("reload adaptive: %w", err)
	}
	out.Rows = append(out.Rows, ReloadRow{
		Alpha:       -1,
		IterSeconds: adaptive.MeanGroupIterSeconds,
		Makespan:    adaptive.Summary.Makespan.Seconds(),
		GCSeconds:   adaptive.GCSeconds,
		StallSecs:   adaptive.StallSeconds,
		Failed:      len(adaptive.Failed),
	})
	out.AlphaMean = adaptive.AlphaMean
	out.AlphaMin = adaptive.AlphaMin
	out.AlphaMax = adaptive.AlphaMax
	out.ModelSpills = adaptive.ModelSpills
	return out, nil
}

// BestFixed returns the best (lowest mean group iteration time, the
// paper's §V-G metric) fixed-α row among runs that completed every job.
func (r *ReloadResult) BestFixed() (alpha, iterSeconds float64) {
	best := -1.0
	for _, row := range r.Rows {
		if row.Alpha < 0 || row.Failed > 0 || row.IterSeconds <= 0 {
			continue
		}
		if best < 0 || row.IterSeconds < best {
			best = row.IterSeconds
			alpha = row.Alpha
		}
	}
	return alpha, best
}

// Adaptive returns the adaptive controller's mean group iteration time.
func (r *ReloadResult) Adaptive() float64 {
	for _, row := range r.Rows {
		if row.Alpha < 0 {
			return row.IterSeconds
		}
	}
	return 0
}

func (r *ReloadResult) String() string {
	rows := make([][]string, len(r.Rows))
	for i, row := range r.Rows {
		name := fmt.Sprintf("fixed %.1f", row.Alpha)
		if row.Alpha < 0 {
			name = "adaptive"
		}
		rows[i] = []string{
			name,
			fmt.Sprintf("%.1fs", row.IterSeconds),
			fmt.Sprintf("%.0f min", row.Makespan/60),
			fmt.Sprintf("%.0fs", row.GCSeconds),
			fmt.Sprintf("%.0fs", row.StallSecs),
			fmt.Sprintf("%d", row.Failed),
		}
	}
	var b strings.Builder
	b.WriteString("§V-G — dynamic data reloading (8 jobs, 32 machines)\n")
	b.WriteString(table([]string{"alpha", "mean group iter", "makespan", "GC time", "reload stalls", "OOM"}, rows))
	bestA, bestIter := r.BestFixed()
	fmt.Fprintf(&b, "best fixed alpha %.1f at %.0fs group iteration; adaptive %.0fs (paper: 52.9s vs 44.3s)\n",
		bestA, bestIter, r.Adaptive())
	fmt.Fprintf(&b, "adaptive final alpha mean %.2f min %.2f max %.2f, model spills %d (paper: 0.34 / 0.11 / 1)\n",
		r.AlphaMean, r.AlphaMin, r.AlphaMax, r.ModelSpills)
	return b.String()
}

// Tab1Result reproduces Table I: the workload inventory.
type Tab1Result struct {
	Specs []workload.Spec
}

// Tab1 lists one representative variant per (application, dataset) pair.
func Tab1() *Tab1Result {
	return &Tab1Result{Specs: workload.ReloadJobs()}
}

func (r *Tab1Result) String() string {
	rows := make([][]string, len(r.Specs))
	for i, s := range r.Specs {
		rows[i] = []string{
			s.App.String(), s.Data.Name,
			fmt.Sprintf("%.1f GB", s.Data.InputGB),
			fmt.Sprintf("%.1f GB", s.Data.ModelGB),
			fmt.Sprintf("%d variants", workload.VariantsPerProfile),
		}
	}
	return "Table I — workloads used for evaluation\n" +
		table([]string{"application", "dataset", "input", "model", "hyper-params"}, rows)
}
