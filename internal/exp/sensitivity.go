package exp

import (
	"fmt"
	"strings"

	"harmony/internal/metrics"
	"harmony/internal/sim"
	"harmony/internal/simtime"
	"harmony/internal/trace"
	"harmony/internal/workload"
)

// SensRatioRow is one workload mix of the §V-D resource-ratio analysis.
type SensRatioRow struct {
	Mix             string
	JCTSpeedup      float64
	MakespanSpeedup float64
	CPUUtil         float64
	NetUtil         float64
	MedianDoP       float64
}

// SensRatioResult reproduces §V-D's workload-ratio sensitivity: Harmony
// keeps utilization high on computation- and communication-heavy mixes,
// using larger DoPs for the computation-heavy one.
type SensRatioResult struct {
	Rows []SensRatioRow
}

// SensRatio runs the base, computation-intensive and communication-
// intensive mixes under both isolated and Harmony scheduling.
func SensRatio(seed int64) (*SensRatioResult, error) {
	mixes := []struct {
		name  string
		specs []workload.Spec
	}{
		{"base", workload.Base()},
		{"comp-intensive", workload.CompIntensive()},
		{"comm-intensive", workload.CommIntensive()},
	}
	// Flatten the (mix, mode) grid into 2·len(mixes) pool units; both runs
	// of a mix write into its slot pair.
	isoRes := make([]*sim.Result, len(mixes))
	harRes := make([]*sim.Result, len(mixes))
	err := runPool(2*len(mixes), func(i int) error {
		mix := mixes[i/2]
		jobs := sim.Jobs(mix.specs, nil)
		if i%2 == 0 {
			res, err := runMode(sim.ModeIsolated, jobs, seed, nil)
			if err != nil {
				return fmt.Errorf("sens-ratio %s isolated: %w", mix.name, err)
			}
			isoRes[i/2] = res
			return nil
		}
		res, err := runMode(sim.ModeHarmony, jobs, seed, nil)
		if err != nil {
			return fmt.Errorf("sens-ratio %s harmony: %w", mix.name, err)
		}
		harRes[i/2] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := &SensRatioResult{}
	for i, mix := range mixes {
		iso, har := isoRes[i], harRes[i]
		var dops []float64
		for _, d := range har.Decisions {
			dops = append(dops, float64(d.Machines))
		}
		out.Rows = append(out.Rows, SensRatioRow{
			Mix:             mix.name,
			JCTSpeedup:      iso.Summary.MeanJCT.Seconds() / har.Summary.MeanJCT.Seconds(),
			MakespanSpeedup: iso.Summary.Makespan.Seconds() / har.Summary.Makespan.Seconds(),
			CPUUtil:         har.Summary.CPUUtil,
			NetUtil:         har.Summary.NetUtil,
			MedianDoP:       metrics.Percentile(dops, 50),
		})
	}
	return out, nil
}

func (r *SensRatioResult) String() string {
	rows := make([][]string, len(r.Rows))
	for i, row := range r.Rows {
		rows[i] = []string{
			row.Mix,
			fmt.Sprintf("%.2fx", row.JCTSpeedup),
			fmt.Sprintf("%.2fx", row.MakespanSpeedup),
			pct(row.CPUUtil), pct(row.NetUtil),
			fmt.Sprintf("%.0f", row.MedianDoP),
		}
	}
	return "§V-D — workload resource-ratio sensitivity (speedups vs isolated)\n" +
		table([]string{"mix", "JCT speedup", "makespan speedup", "CPU util", "net util", "median DoP"}, rows)
}

// SensArrivalRow is one arrival process of the §V-D arrival-rate analysis.
type SensArrivalRow struct {
	Process         string
	JCTSpeedup      float64
	MakespanSpeedup float64
}

// SensArrivalResult reproduces §V-D's arrival sensitivity: speedups stay
// close to the batch case for Poisson arrivals up to 8-minute means and
// for bursty trace-like arrivals.
type SensArrivalResult struct {
	Rows []SensArrivalRow
}

// SensArrival sweeps Poisson mean inter-arrival times and a bursty
// trace-like process.
func SensArrival(seed int64) (*SensArrivalResult, error) {
	specs := workload.Base()
	type arrivalCase struct {
		name     string
		arrivals []simtime.Time
	}
	var cases []arrivalCase
	for _, mean := range []int{0, 2, 4, 8} {
		cases = append(cases, arrivalCase{
			fmt.Sprintf("poisson mean %dm", mean),
			trace.Poisson(len(specs), simtime.Duration(mean)*simtime.Minute, seed),
		})
	}
	cases = append(cases, arrivalCase{"bursty trace", trace.Bursty(len(specs), 40, seed)})
	out := &SensArrivalResult{Rows: make([]SensArrivalRow, len(cases))}
	err := runPool(len(cases), func(i int) error {
		c := cases[i]
		jobs := sim.Jobs(specs, c.arrivals)
		iso, err := runMode(sim.ModeIsolated, jobs, seed, nil)
		if err != nil {
			return fmt.Errorf("sens-arrival %s isolated: %w", c.name, err)
		}
		har, err := runMode(sim.ModeHarmony, jobs, seed, nil)
		if err != nil {
			return fmt.Errorf("sens-arrival %s harmony: %w", c.name, err)
		}
		out.Rows[i] = SensArrivalRow{
			Process:         c.name,
			JCTSpeedup:      iso.Summary.MeanJCT.Seconds() / har.Summary.MeanJCT.Seconds(),
			MakespanSpeedup: iso.Summary.Makespan.Seconds() / har.Summary.Makespan.Seconds(),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

func (r *SensArrivalResult) String() string {
	rows := make([][]string, len(r.Rows))
	for i, row := range r.Rows {
		rows[i] = []string{
			row.Process,
			fmt.Sprintf("%.2fx", row.JCTSpeedup),
			fmt.Sprintf("%.2fx", row.MakespanSpeedup),
		}
	}
	var b strings.Builder
	b.WriteString("§V-D — job arrival-rate sensitivity (speedups vs isolated)\n")
	b.WriteString(table([]string{"arrival process", "JCT speedup", "makespan speedup"}, rows))
	return b.String()
}
