package exp

import (
	"fmt"
	"strings"
	"time"

	"harmony/internal/core"
	"harmony/internal/metrics"
	"harmony/internal/sim"
	"harmony/internal/workload"
)

// Fig13aPoint is one error level of the sensitivity sweep.
type Fig13aPoint struct {
	ErrorFrac       float64
	JCTSpeedup      float64 // normalized to the zero-error run
	MakespanSpeedup float64
}

// Fig13aResult reproduces Fig. 13a: Harmony's speedup degrades as the
// performance-model error grows.
type Fig13aResult struct {
	Points []Fig13aPoint
}

// Fig13a sweeps injected profiling error from 0 to 20%.
func Fig13a(seed int64) (*Fig13aResult, error) {
	jobs := sim.Jobs(workload.Base(), nil)
	levels := []float64{0, 0.05, 0.075, 0.10, 0.15, 0.20}
	// Every error level is an independent run; normalization against the
	// zero-error base happens after the sweep, in level order.
	results := make([]*sim.Result, len(levels))
	err := runPool(len(levels), func(i int) error {
		e := levels[i]
		res, err := runMode(sim.ModeHarmony, jobs, seed, func(c *sim.Config) {
			c.MetricErrorFrac = e
		})
		if err != nil {
			return fmt.Errorf("fig13a err=%.0f%%: %w", e*100, err)
		}
		results[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	base := results[0]
	out := &Fig13aResult{}
	for i, e := range levels {
		res := results[i]
		out.Points = append(out.Points, Fig13aPoint{
			ErrorFrac:       e,
			JCTSpeedup:      base.Summary.MeanJCT.Seconds() / res.Summary.MeanJCT.Seconds(),
			MakespanSpeedup: base.Summary.Makespan.Seconds() / res.Summary.Makespan.Seconds(),
		})
	}
	return out, nil
}

func (r *Fig13aResult) String() string {
	rows := make([][]string, len(r.Points))
	for i, p := range r.Points {
		rows[i] = []string{
			fmt.Sprintf("%.1f%%", p.ErrorFrac*100),
			fmt.Sprintf("%.3f", p.JCTSpeedup),
			fmt.Sprintf("%.3f", p.MakespanSpeedup),
		}
	}
	return "Fig. 13a — speedup vs injected model error (normalized to error-free run)\n" +
		table([]string{"injected error", "JCT speedup", "makespan speedup"}, rows)
}

// Fig13bResult reproduces Fig. 13b: prediction error of cluster
// utilization U and group iteration time T_g_itr over all scheduling
// decisions of a full run.
type Fig13bResult struct {
	UErrors    []float64
	IterErrors []float64
}

// Fig13b collects predicted-vs-actual samples from the base run.
func Fig13b(seed int64) (*Fig13bResult, error) {
	res, err := runMode(sim.ModeHarmony, sim.Jobs(workload.Base(), nil), seed, nil)
	if err != nil {
		return nil, err
	}
	out := &Fig13bResult{}
	for _, p := range res.UPred {
		out.UErrors = append(out.UErrors, p.Err())
	}
	for _, p := range res.IterPred {
		out.IterErrors = append(out.IterErrors, p.Err())
	}
	return out, nil
}

// MeanUError and MeanIterError report the average relative errors.
func (r *Fig13bResult) MeanUError() float64    { return metrics.Mean(r.UErrors) }
func (r *Fig13bResult) MeanIterError() float64 { return metrics.Mean(r.IterErrors) }

func (r *Fig13bResult) String() string {
	return "Fig. 13b — performance-model prediction error (paper: below 5%)\n" +
		fmt.Sprintf("  cluster utilization U:   mean %.1f%%  %s\n",
			r.MeanUError()*100, cdfSummary(scale100(r.UErrors), "%")) +
		fmt.Sprintf("  group iteration T_g_itr: mean %.1f%%  %s\n",
			r.MeanIterError()*100, cdfSummary(scale100(r.IterErrors), "%"))
}

func scale100(vs []float64) []float64 {
	out := make([]float64, len(vs))
	for i, v := range vs {
		out[i] = v * 100
	}
	return out
}

// Fig14Result reproduces Fig. 14 and §V-F: full executions under
// Harmony's scheduler vs the exhaustive-search Oracle, plus the
// scheduling-latency comparison.
type Fig14Result struct {
	Harmony ModeOutcome
	Oracle  ModeOutcome
	// Mean wall-clock per scheduling decision during the runs.
	HarmonyMeanSched time.Duration
	OracleMeanSched  time.Duration
	// One-shot planning latency over the full 80-job/100-machine input.
	HarmonyPlan80 time.Duration
	OraclePlan80  time.Duration
}

// Fig14Jobs and Fig14Machines scale the oracle execution comparison down
// from the paper's 80/100 so the annealing Oracle (which replaces the
// "about 10 hours" exhaustive search) keeps the benchmark runnable.
const (
	Fig14Jobs     = 24
	Fig14Machines = 40
)

// Fig14 runs the comparison.
func Fig14(seed int64) (*Fig14Result, error) {
	specs := workload.Small(Fig14Jobs)
	jobs := sim.Jobs(specs, nil)
	har, err := sim.Run(sim.Config{Machines: Fig14Machines, Mode: sim.ModeHarmony, Seed: seed}, jobs)
	if err != nil {
		return nil, fmt.Errorf("fig14 harmony: %w", err)
	}
	ora, err := sim.Run(sim.Config{Machines: Fig14Machines, Mode: sim.ModeHarmony, Seed: seed,
		OraclePlanner: true}, jobs)
	if err != nil {
		return nil, fmt.Errorf("fig14 oracle: %w", err)
	}
	out := &Fig14Result{
		Harmony:          outcomeOf(sim.ModeHarmony, har),
		Oracle:           outcomeOf(sim.ModeHarmony, ora),
		HarmonyMeanSched: meanDuration(har.SchedulingTimes),
		OracleMeanSched:  meanDuration(ora.SchedulingTimes),
	}

	// One-shot planning latency on the full-size input.
	est := estimatesOf(workload.Base())
	opts := core.Options{MemoryCapGB: 25, MaxJobsPerGroup: 3}
	start := time.Now()
	core.Schedule(est, Machines, opts)
	out.HarmonyPlan80 = time.Since(start)
	start = time.Now()
	oraclePlan(est, Machines, opts)
	out.OraclePlan80 = time.Since(start)
	return out, nil
}

func meanDuration(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	var sum time.Duration
	for _, d := range ds {
		sum += d
	}
	return sum / time.Duration(len(ds))
}

func estimatesOf(specs []workload.Spec) []core.JobInfo {
	out := make([]core.JobInfo, len(specs))
	for i, s := range specs {
		out[i] = core.JobInfo{
			ID: s.ID, Comp: s.CompMachineSeconds, Net: s.NetSeconds,
			InputGB: s.Data.InputGB, ModelGB: s.Data.ModelGB, WorkGB: s.WorkGB,
			JVMHeapFactor: workload.JVMHeapFactor,
		}
	}
	return out
}

func (r *Fig14Result) String() string {
	rows := [][]string{
		{"oracle", minutes(r.Oracle.MeanJCT), minutes(r.Oracle.Makespan),
			pct(r.Oracle.CPUUtil), pct(r.Oracle.NetUtil), r.OracleMeanSched.Round(time.Millisecond).String()},
		{"harmony", minutes(r.Harmony.MeanJCT), minutes(r.Harmony.Makespan),
			pct(r.Harmony.CPUUtil), pct(r.Harmony.NetUtil), r.HarmonyMeanSched.Round(time.Microsecond).String()},
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 14 — Harmony vs exhaustive-search Oracle (%d jobs, %d machines)\n",
		Fig14Jobs, Fig14Machines)
	b.WriteString(table([]string{"scheduler", "mean JCT", "makespan", "CPU util", "net util", "mean sched time"}, rows))
	fmt.Fprintf(&b, "one-shot planning, 80 jobs / 100 machines: harmony %s, oracle %s (%.0fx slower)\n",
		r.HarmonyPlan80.Round(time.Microsecond), r.OraclePlan80.Round(time.Millisecond),
		float64(r.OraclePlan80)/float64(maxDuration(r.HarmonyPlan80, time.Microsecond)))
	return b.String()
}

func maxDuration(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}
