// Package exp implements every experiment of the paper's evaluation
// (§V): one function per table and figure, each returning a structured
// result that prints the same rows or series the paper reports.
// DESIGN.md §4 maps experiment ids to paper references.
package exp

import (
	"fmt"
	"strings"

	"harmony/internal/metrics"
	"harmony/internal/sim"
	"harmony/internal/simtime"
	"harmony/internal/workload"
)

// Machines is the default cluster size of the main evaluation
// (100 m4.2xlarge instances, §V-B).
const Machines = 100

// DefaultSeed keeps experiment runs reproducible.
const DefaultSeed = 1

// ModeOutcome summarizes one scheduling regime's full run.
type ModeOutcome struct {
	Mode      sim.Mode
	MeanJCT   simtime.Duration
	Makespan  simtime.Duration
	CPUUtil   float64
	NetUtil   float64
	Finished  int
	Failed    int
	ConcJobs  float64
	Groups    float64
	GCSeconds float64
}

func outcomeOf(mode sim.Mode, res *sim.Result) ModeOutcome {
	return ModeOutcome{
		Mode:      mode,
		MeanJCT:   res.Summary.MeanJCT,
		Makespan:  res.Summary.Makespan,
		CPUUtil:   res.Summary.CPUUtil,
		NetUtil:   res.Summary.NetUtil,
		Finished:  len(res.Records),
		Failed:    len(res.Failed),
		ConcJobs:  res.MeanConcurrentJobs,
		Groups:    res.MeanGroups,
		GCSeconds: res.GCSeconds,
	}
}

func runMode(mode sim.Mode, jobs []sim.Job, seed int64, mutate func(*sim.Config)) (*sim.Result, error) {
	cfg := sim.Config{Machines: Machines, Mode: mode, Seed: seed}
	if mutate != nil {
		mutate(&cfg)
	}
	if cfg.SchedOpts.Parallelism == 0 {
		// Follow the harness knob so -parallel 1 yields a true
		// single-threaded baseline end to end. Plans are identical either
		// way; only wall-clock changes.
		cfg.SchedOpts.Parallelism = concurrency
	}
	return sim.Run(cfg, jobs)
}

// table renders rows with padded columns.
func table(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	writeRow(header)
	for _, r := range rows {
		writeRow(r)
	}
	return b.String()
}

func pct(v float64) string { return fmt.Sprintf("%5.1f%%", v*100) }

func minutes(d simtime.Duration) string { return fmt.Sprintf("%.0f min", d.Minutes()) }

// cdfSummary formats a distribution as P10/P50/P90 plus min and max.
func cdfSummary(values []float64, unit string) string {
	if len(values) == 0 {
		return "(no samples)"
	}
	sorted := metrics.CDF(values)
	return fmt.Sprintf("min=%.2f p10=%.2f p50=%.2f p90=%.2f max=%.2f %s (n=%d)",
		sorted[0], metrics.Percentile(values, 10), metrics.Percentile(values, 50),
		metrics.Percentile(values, 90), sorted[len(sorted)-1], unit, len(values))
}

// scaleJobs uniformly scales a workload's per-iteration costs and sizes;
// experiments use it to shrink run time without changing the shape.
func scaleJobs(specs []workload.Spec, factor float64) []workload.Spec {
	out := make([]workload.Spec, len(specs))
	copy(out, specs)
	for i := range out {
		out[i].CompMachineSeconds *= factor
		out[i].NetSeconds *= factor
	}
	return out
}
