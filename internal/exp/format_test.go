package exp

import (
	"strings"
	"testing"
)

// TestResultFormatting smoke-tests every result formatter on cheap
// inputs: each must produce a non-empty, titled table.
func TestResultFormatting(t *testing.T) {
	checks := []struct {
		name  string
		title string
		text  func() (string, error)
	}{
		{"tab1", "Table I", func() (string, error) { return Tab1().String(), nil }},
		{"fig9", "Fig. 9", func() (string, error) { return Fig9().String(), nil }},
		{"fig2", "Fig. 2", func() (string, error) {
			r, err := Fig2(DefaultSeed)
			if err != nil {
				return "", err
			}
			return r.String(), nil
		}},
		{"fig3", "Fig. 3", func() (string, error) {
			r, err := Fig3(DefaultSeed)
			if err != nil {
				return "", err
			}
			return r.String(), nil
		}},
		{"fig4", "Fig. 4", func() (string, error) {
			r, err := Fig4(DefaultSeed)
			if err != nil {
				return "", err
			}
			return r.String(), nil
		}},
		{"scale", "scalability", func() (string, error) { return ScaleSched(DefaultSeed).String(), nil }},
	}
	for _, c := range checks {
		t.Run(c.name, func(t *testing.T) {
			text, err := c.text()
			if err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(text, c.title) {
				t.Errorf("output missing title %q:\n%s", c.title, text)
			}
			if strings.Count(text, "\n") < 2 {
				t.Errorf("output suspiciously short:\n%s", text)
			}
		})
	}
}

// TestTableLayout checks the column padder directly.
func TestTableLayout(t *testing.T) {
	out := table([]string{"a", "long-header"}, [][]string{
		{"value-longer-than-header", "x"},
		{"b", "y"},
	})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines", len(lines))
	}
	if len(lines[0]) != len(lines[1]) || len(lines[1]) != len(lines[2]) {
		t.Errorf("rows not aligned:\n%s", out)
	}
}

// TestSpark covers the sparkline renderer edge cases.
func TestSpark(t *testing.T) {
	if got := spark(nil); len([]rune(got)) != 48 {
		t.Errorf("empty spark length %d", len([]rune(got)))
	}
	s := spark([]float64{0, 0.5, 1})
	if len([]rune(s)) != 48 {
		t.Errorf("spark length %d, want 48", len([]rune(s)))
	}
	if !strings.ContainsRune(s, '█') || !strings.ContainsRune(s, '▁') {
		t.Errorf("spark lacks dynamic range: %q", s)
	}
}

// TestScaleJobsHelper checks the uniform cost scaler.
func TestScaleJobsHelper(t *testing.T) {
	r := Fig9()
	_ = r
	in := Tab1().Specs
	out := scaleJobs(in, 0.5)
	if out[0].CompMachineSeconds != in[0].CompMachineSeconds*0.5 {
		t.Error("comp not scaled")
	}
	if in[0].CompMachineSeconds == out[0].CompMachineSeconds {
		t.Error("input mutated or not scaled")
	}
}
