package exp

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"harmony/internal/baseline"
	"harmony/internal/core"
)

// oraclePlan wraps the exhaustive-search Oracle for latency measurements.
func oraclePlan(jobs []core.JobInfo, machines int, opts core.Options) core.Plan {
	return baseline.Oracle(jobs, machines, opts)
}

// ScalePoint is one row of the §V-F scalability emulation.
type ScalePoint struct {
	Jobs     int
	Machines int
	Latency  time.Duration
}

// ScaleResult reproduces the §V-F scalability claim: Harmony schedules
// 8K jobs onto 10K machines within seconds.
type ScaleResult struct {
	Points []ScalePoint
}

// ScaleSched emulates large-scale scheduling by generating synthetic
// profiled jobs (drawn from the base workload's distribution) and timing
// Algorithm 1.
func ScaleSched(seed int64) *ScaleResult {
	rng := rand.New(rand.NewSource(seed))
	out := &ScaleResult{}
	cases := []struct{ jobs, machines int }{
		{80, 100},
		{1000, 1000},
		{4000, 10000},
		{8000, 10000},
	}
	for _, c := range cases {
		jobs := syntheticJobs(rng, c.jobs)
		opts := core.Options{MemoryCapGB: 25, MaxJobsPerGroup: 4}
		start := time.Now()
		core.Schedule(jobs, c.machines, opts)
		out.Points = append(out.Points, ScalePoint{
			Jobs: c.jobs, Machines: c.machines, Latency: time.Since(start),
		})
	}
	return out
}

func syntheticJobs(rng *rand.Rand, n int) []core.JobInfo {
	jobs := make([]core.JobInfo, n)
	for i := range jobs {
		jobs[i] = core.JobInfo{
			ID:   fmt.Sprintf("s%d", i),
			Comp: 500 + rng.Float64()*10000,
			Net:  30 + rng.Float64()*400,
		}
	}
	return jobs
}

func (r *ScaleResult) String() string {
	rows := make([][]string, len(r.Points))
	for i, p := range r.Points {
		rows[i] = []string{
			fmt.Sprintf("%d", p.Jobs),
			fmt.Sprintf("%d", p.Machines),
			p.Latency.Round(time.Millisecond).String(),
		}
	}
	var b strings.Builder
	b.WriteString("§V-F — scheduling-algorithm scalability (paper: 8K jobs / 10K machines < 5 s)\n")
	b.WriteString(table([]string{"jobs", "machines", "Algorithm 1 latency"}, rows))
	return b.String()
}
