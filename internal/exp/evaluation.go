package exp

import (
	"fmt"
	"strings"

	"harmony/internal/metrics"
	"harmony/internal/sim"
	"harmony/internal/workload"
)

// Fig9Result reproduces Fig. 9: the workload characteristic CDFs at
// DoP 16 — iteration times (minutes) and computation-time ratios.
type Fig9Result struct {
	IterMinutes []float64
	CompRatios  []float64
}

// Fig9 derives the distributions from the 80-job base workload.
func Fig9() *Fig9Result {
	out := &Fig9Result{}
	for _, s := range workload.Base() {
		out.IterMinutes = append(out.IterMinutes, s.IterSecondsAt(workload.ReferenceDoP)/60)
		out.CompRatios = append(out.CompRatios, s.CompRatioAt(workload.ReferenceDoP))
	}
	return out
}

func (r *Fig9Result) String() string {
	return "Fig. 9 — base workload characteristics (DoP 16)\n" +
		"  (a) iteration time:  " + cdfSummary(r.IterMinutes, "min") + "\n" +
		"  (b) comp-time ratio: " + cdfSummary(r.CompRatios, "") + "\n"
}

// Fig10Result reproduces Fig. 10: normalized JCT and makespan speedups of
// the three approaches (isolated = 1.0).
type Fig10Result struct {
	Isolated ModeOutcome
	Harmony  ModeOutcome
	// Naive holds one outcome per grouping seed (the paper reports mean
	// with best/worst error bars over "all possible cases").
	Naive []ModeOutcome
}

// Fig10 runs the main comparison on the full base workload. The isolated
// and Harmony runs plus every naive grouping seed are independent
// simulations, so they fan out across the experiment pool; seed-indexed
// result slots keep the reported rows in a fixed order.
func Fig10(seed int64, naiveSeeds int) (*Fig10Result, error) {
	jobs := sim.Jobs(workload.Base(), nil)
	if naiveSeeds < 1 {
		naiveSeeds = 1
	}
	out := &Fig10Result{Naive: make([]ModeOutcome, naiveSeeds)}
	err := runPool(2+naiveSeeds, func(i int) error {
		switch i {
		case 0:
			iso, err := runMode(sim.ModeIsolated, jobs, seed, nil)
			if err != nil {
				return fmt.Errorf("fig10 isolated: %w", err)
			}
			out.Isolated = outcomeOf(sim.ModeIsolated, iso)
		case 1:
			har, err := runMode(sim.ModeHarmony, jobs, seed, nil)
			if err != nil {
				return fmt.Errorf("fig10 harmony: %w", err)
			}
			out.Harmony = outcomeOf(sim.ModeHarmony, har)
		default:
			s := seed + int64(i-2)
			nv, err := runMode(sim.ModeNaive, jobs, s, nil)
			if err != nil {
				return fmt.Errorf("fig10 naive seed %d: %w", s, err)
			}
			out.Naive[i-2] = outcomeOf(sim.ModeNaive, nv)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// JCTSpeedup is mean-JCT speedup versus the isolated baseline.
func (r *Fig10Result) JCTSpeedup(o ModeOutcome) float64 {
	if o.MeanJCT == 0 {
		return 0
	}
	return r.Isolated.MeanJCT.Seconds() / o.MeanJCT.Seconds()
}

// MakespanSpeedup is makespan speedup versus the isolated baseline.
func (r *Fig10Result) MakespanSpeedup(o ModeOutcome) float64 {
	if o.Makespan == 0 {
		return 0
	}
	return r.Isolated.Makespan.Seconds() / o.Makespan.Seconds()
}

func (r *Fig10Result) naiveRange() (bestJCT, worstJCT, bestMk, worstMk, meanJCT, meanMk float64) {
	if len(r.Naive) == 0 {
		return
	}
	bestJCT, worstJCT = r.JCTSpeedup(r.Naive[0]), r.JCTSpeedup(r.Naive[0])
	bestMk, worstMk = r.MakespanSpeedup(r.Naive[0]), r.MakespanSpeedup(r.Naive[0])
	for _, o := range r.Naive {
		j, m := r.JCTSpeedup(o), r.MakespanSpeedup(o)
		meanJCT += j
		meanMk += m
		if j > bestJCT {
			bestJCT = j
		}
		if j < worstJCT {
			worstJCT = j
		}
		if m > bestMk {
			bestMk = m
		}
		if m < worstMk {
			worstMk = m
		}
	}
	meanJCT /= float64(len(r.Naive))
	meanMk /= float64(len(r.Naive))
	return
}

func (r *Fig10Result) String() string {
	bj, wj, bm, wm, mj, mm := r.naiveRange()
	rows := [][]string{
		{"isolated", "1.00x", "1.00x", pct(r.Isolated.CPUUtil), pct(r.Isolated.NetUtil), fmt.Sprintf("%d", r.Isolated.Failed)},
		{"naive (mean)", fmt.Sprintf("%.2fx", mj), fmt.Sprintf("%.2fx", mm), "", "", ""},
		{"naive (best/worst)", fmt.Sprintf("%.2f/%.2fx", bj, wj), fmt.Sprintf("%.2f/%.2fx", bm, wm), "", "", ""},
		{"harmony", fmt.Sprintf("%.2fx", r.JCTSpeedup(r.Harmony)), fmt.Sprintf("%.2fx", r.MakespanSpeedup(r.Harmony)),
			pct(r.Harmony.CPUUtil), pct(r.Harmony.NetUtil), fmt.Sprintf("%d", r.Harmony.Failed)},
	}
	var b strings.Builder
	b.WriteString("Fig. 10 — JCT and makespan speedups (80 jobs, 100 machines, isolated = 1.0)\n")
	b.WriteString(table([]string{"approach", "JCT speedup", "makespan speedup", "CPU util", "net util", "OOM"}, rows))
	fmt.Fprintf(&b, "harmony: %.1f concurrent jobs in %.1f groups on average (paper: 27.2 in 6.7)\n",
		r.Harmony.ConcJobs, r.Harmony.Groups)
	return b.String()
}

// Fig11Result reproduces Fig. 11: cluster utilization over time for the
// isolated baseline and Harmony.
type Fig11Result struct {
	IsolatedCPU []float64 // per-minute samples
	IsolatedNet []float64
	HarmonyCPU  []float64
	HarmonyNet  []float64
	Isolated    ModeOutcome
	Harmony     ModeOutcome
}

// Fig11 collects per-minute utilization series from the main runs.
func Fig11(seed int64) (*Fig11Result, error) {
	jobs := sim.Jobs(workload.Base(), nil)
	var iso, har *sim.Result
	err := runPool(2, func(i int) error {
		var err error
		if i == 0 {
			iso, err = runMode(sim.ModeIsolated, jobs, seed, nil)
		} else {
			har, err = runMode(sim.ModeHarmony, jobs, seed, nil)
		}
		return err
	})
	if err != nil {
		return nil, err
	}
	return &Fig11Result{
		IsolatedCPU: iso.Util.Series(metrics.CPU),
		IsolatedNet: iso.Util.Series(metrics.Net),
		HarmonyCPU:  har.Util.Series(metrics.CPU),
		HarmonyNet:  har.Util.Series(metrics.Net),
		Isolated:    outcomeOf(sim.ModeIsolated, iso),
		Harmony:     outcomeOf(sim.ModeHarmony, har),
	}, nil
}

func (r *Fig11Result) String() string {
	var b strings.Builder
	b.WriteString("Fig. 11 — utilization over time (per-minute samples, sparkline over run)\n")
	fmt.Fprintf(&b, "  isolated CPU %s mean %s\n", spark(r.IsolatedCPU), pct(r.Isolated.CPUUtil))
	fmt.Fprintf(&b, "  isolated net %s mean %s\n", spark(r.IsolatedNet), pct(r.Isolated.NetUtil))
	fmt.Fprintf(&b, "  harmony  CPU %s mean %s\n", spark(r.HarmonyCPU), pct(r.Harmony.CPUUtil))
	fmt.Fprintf(&b, "  harmony  net %s mean %s\n", spark(r.HarmonyNet), pct(r.Harmony.NetUtil))
	gain := 0.0
	if r.Isolated.CPUUtil > 0 {
		gain = r.Harmony.CPUUtil / r.Isolated.CPUUtil
	}
	fmt.Fprintf(&b, "  CPU utilization gain %.2fx (paper: up to 1.65x)\n", gain)
	return b.String()
}

// spark renders a series as a fixed-width unicode sparkline.
func spark(series []float64) string {
	const width = 48
	levels := []rune("▁▂▃▄▅▆▇█")
	if len(series) == 0 {
		return strings.Repeat(" ", width)
	}
	out := make([]rune, 0, width)
	for i := 0; i < width; i++ {
		lo := i * len(series) / width
		hi := (i + 1) * len(series) / width
		if hi <= lo {
			hi = lo + 1
		}
		var sum float64
		n := 0
		for k := lo; k < hi && k < len(series); k++ {
			sum += series[k]
			n++
		}
		v := sum / float64(n)
		idx := int(v * float64(len(levels)))
		if idx >= len(levels) {
			idx = len(levels) - 1
		}
		if idx < 0 {
			idx = 0
		}
		out = append(out, levels[idx])
	}
	return string(out)
}

// Fig12Result reproduces Fig. 12: distributions of group DoPs and group
// sizes extracted from all grouping decisions, per workload mix.
type Fig12Result struct {
	// DoPs and JobsPerGroup map workload name to decision samples.
	DoPs         map[string][]float64
	JobsPerGroup map[string][]float64
}

// Fig12 runs Harmony over the base, computation-intensive and
// communication-intensive workloads and extracts every decision's groups.
func Fig12(seed int64) (*Fig12Result, error) {
	mixes := []struct {
		name  string
		specs []workload.Spec
	}{
		{"base", workload.Base()},
		{"comp-intensive", workload.CompIntensive()},
		{"comm-intensive", workload.CommIntensive()},
	}
	out := &Fig12Result{
		DoPs:         make(map[string][]float64),
		JobsPerGroup: make(map[string][]float64),
	}
	// Maps are not safe for concurrent writes: collect per-mix results in
	// index slots, then merge in mix order.
	results := make([]*sim.Result, len(mixes))
	err := runPool(len(mixes), func(i int) error {
		res, err := runMode(sim.ModeHarmony, sim.Jobs(mixes[i].specs, nil), seed, nil)
		if err != nil {
			return fmt.Errorf("fig12 %s: %w", mixes[i].name, err)
		}
		results[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i, mix := range mixes {
		for _, d := range results[i].Decisions {
			out.DoPs[mix.name] = append(out.DoPs[mix.name], float64(d.Machines))
			out.JobsPerGroup[mix.name] = append(out.JobsPerGroup[mix.name], float64(d.Jobs))
		}
	}
	return out, nil
}

// MedianDoP reports the median group DoP for a mix.
func (r *Fig12Result) MedianDoP(mix string) float64 {
	return metrics.Percentile(r.DoPs[mix], 50)
}

func (r *Fig12Result) String() string {
	var b strings.Builder
	b.WriteString("Fig. 12 — grouping decision distributions\n")
	for _, mix := range []string{"base", "comp-intensive", "comm-intensive"} {
		fmt.Fprintf(&b, "  %-15s group DoP:      %s\n", mix, cdfSummary(r.DoPs[mix], "machines"))
		fmt.Fprintf(&b, "  %-15s jobs per group: %s\n", mix, cdfSummary(r.JobsPerGroup[mix], "jobs"))
	}
	return b.String()
}
