package exp

import (
	"fmt"
	"strings"

	"harmony/internal/sim"
	"harmony/internal/workload"
)

// Fig2Row is one bar pair of Fig. 2: CPU and network utilization of a
// single PS job running alone.
type Fig2Row struct {
	Workload string
	CPUUtil  float64
	NetUtil  float64
}

// Fig2Result reproduces Fig. 2: single-job utilization for MLR (16K and
// 8K classes) and LDA (PubMed, NYTimes) on 16 machines.
type Fig2Result struct {
	Rows []Fig2Row
}

// Fig2 runs each of the four workloads alone on 16 dedicated machines.
func Fig2(seed int64) (*Fig2Result, error) {
	specs := workload.Fig2Jobs()
	out := &Fig2Result{Rows: make([]Fig2Row, len(specs))}
	err := runPool(len(specs), func(i int) error {
		res, err := singleJobRun(specs[i], 16, seed)
		if err != nil {
			return fmt.Errorf("fig2 %s: %w", specs[i].ID, err)
		}
		out.Rows[i] = Fig2Row{
			Workload: specs[i].ID,
			CPUUtil:  res.Summary.CPUUtil,
			NetUtil:  res.Summary.NetUtil,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

func (r *Fig2Result) String() string {
	rows := make([][]string, len(r.Rows))
	for i, row := range r.Rows {
		rows[i] = []string{row.Workload, pct(row.CPUUtil), pct(row.NetUtil)}
	}
	return "Fig. 2 — single-job resource utilization (16 machines)\n" +
		table([]string{"workload", "CPU util", "network util"}, rows)
}

// singleJobRun executes one job alone on exactly m dedicated machines.
func singleJobRun(spec workload.Spec, m int, seed int64) (*sim.Result, error) {
	// Shorten the run: utilization converges within a few iterations.
	spec.Iterations = 12
	return sim.Run(sim.Config{
		Machines: m,
		Mode:     sim.ModeIsolated,
		Seed:     seed,
		// Force the full allocation: a tiny CPU target makes the DoP
		// policy ask for more machines than exist, clamping to m.
		IsolatedCPUTarget: 0.01,
		IsolatedMaxDoP:    m,
	}, sim.Jobs([]workload.Spec{spec}, nil))
}

// Fig3Row is one machine-count column of Fig. 3.
type Fig3Row struct {
	Machines    int
	CPUUtil     float64
	NetUtil     float64
	IterSeconds float64
	PullSeconds float64
	CompSeconds float64
	PushSeconds float64
}

// Fig3Result reproduces Fig. 3: one MLR job swept across 4/8/16/32
// machines — utilization shifts toward network, iteration time shrinks
// with diminishing returns.
type Fig3Result struct {
	Rows []Fig3Row
}

// Fig3 runs the sweep. The dataset is scaled down so the job fits in
// memory even at 4 machines — the sweep isolates the compute/communication
// trade-off, not memory pressure (which Fig. 4 covers).
func Fig3(seed int64) (*Fig3Result, error) {
	spec := workload.Fig3Job()
	spec.Data.InputGB = 16
	spec.Data.ModelGB = 6
	counts := []int{4, 8, 16, 32}
	out := &Fig3Result{Rows: make([]Fig3Row, len(counts))}
	err := runPool(len(counts), func(i int) error {
		m := counts[i]
		res, err := singleJobRun(spec, m, seed)
		if err != nil {
			return fmt.Errorf("fig3 m=%d: %w", m, err)
		}
		if len(res.Failed) > 0 {
			return fmt.Errorf("fig3 m=%d: job failed: %v", m, res.Failed)
		}
		iter := res.Summary.Makespan.Seconds() / 12 // 12 iterations
		out.Rows[i] = Fig3Row{
			Machines:    m,
			CPUUtil:     res.Summary.CPUUtil,
			NetUtil:     res.Summary.NetUtil,
			IterSeconds: iter,
			PullSeconds: spec.TpullAt(m),
			CompSeconds: spec.TcpuAt(m),
			PushSeconds: spec.TpushAt(m),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

func (r *Fig3Result) String() string {
	rows := make([][]string, len(r.Rows))
	for i, row := range r.Rows {
		rows[i] = []string{
			fmt.Sprintf("%d", row.Machines),
			pct(row.CPUUtil), pct(row.NetUtil),
			fmt.Sprintf("%.0fs", row.IterSeconds),
			fmt.Sprintf("%.0fs", row.PullSeconds),
			fmt.Sprintf("%.0fs", row.CompSeconds),
			fmt.Sprintf("%.0fs", row.PushSeconds),
		}
	}
	return "Fig. 3 — one MLR job vs number of machines\n" +
		table([]string{"machines", "CPU util", "net util", "iter", "PULL", "COMP", "PUSH"}, rows)
}

// Fig4Row is one bar group of Fig. 4.
type Fig4Row struct {
	Setup   string
	CPUUtil float64
	NetUtil float64
	OOM     bool
}

// Fig4Result reproduces Fig. 4: naive co-location fails to raise
// utilization, and the three-job co-location dies of OOM.
type Fig4Result struct {
	Rows []Fig4Row
}

// Fig4 runs singles, the two pairs, and the fatal triple on 16 machines
// under naive (uncoordinated) co-location.
func Fig4(seed int64) (*Fig4Result, error) {
	nmf, lasso, mlr := workload.Fig4Jobs()
	for _, s := range []*workload.Spec{&nmf, &lasso, &mlr} {
		s.Iterations = 12
	}
	cases := []struct {
		name  string
		specs []workload.Spec
	}{
		{"NMF", []workload.Spec{nmf}},
		{"Lasso", []workload.Spec{lasso}},
		{"MLR", []workload.Spec{mlr}},
		{"NMF+Lasso", []workload.Spec{nmf, lasso}},
		{"NMF+MLR", []workload.Spec{nmf, mlr}},
		{"NMF+MLR+Lasso", []workload.Spec{nmf, mlr, lasso}},
	}
	out := &Fig4Result{Rows: make([]Fig4Row, len(cases))}
	err := runPool(len(cases), func(i int) error {
		c := cases[i]
		res, err := sim.Run(sim.Config{
			Machines:          16,
			Mode:              sim.ModeNaive,
			Seed:              seed,
			NaiveGroupSize:    len(c.specs),
			IsolatedCPUTarget: 0.01, // force full 16-machine allocations
			IsolatedMaxDoP:    16,
		}, sim.Jobs(c.specs, nil))
		if err != nil {
			return fmt.Errorf("fig4 %s: %w", c.name, err)
		}
		out.Rows[i] = Fig4Row{
			Setup:   c.name,
			CPUUtil: res.Summary.CPUUtil,
			NetUtil: res.Summary.NetUtil,
			OOM:     len(res.Failed) == len(c.specs),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

func (r *Fig4Result) String() string {
	rows := make([][]string, len(r.Rows))
	for i, row := range r.Rows {
		oom := ""
		if row.OOM {
			oom = "OUT OF MEMORY"
		}
		rows[i] = []string{row.Setup, pct(row.CPUUtil), pct(row.NetUtil), oom}
	}
	var b strings.Builder
	b.WriteString("Fig. 4 — naive co-location utilization (16 machines)\n")
	b.WriteString(table([]string{"setup", "CPU util", "network util", ""}, rows))
	return b.String()
}
