package exp

import (
	"testing"
)

// TestConcurrencyDeterminism runs representative sweeps at Concurrency 1
// and 4 and requires identical printed figures: pooled runs write to
// index-ordered slots and each simulation owns its state, so the fan-out
// must never change a result.
func TestConcurrencyDeterminism(t *testing.T) {
	old := Concurrency()
	defer SetConcurrency(old)

	render := func() []string {
		fig10, err := Fig10(DefaultSeed, 3)
		if err != nil {
			t.Fatalf("Fig10: %v", err)
		}
		fig3, err := Fig3(DefaultSeed)
		if err != nil {
			t.Fatalf("Fig3: %v", err)
		}
		sens, err := SensRatio(DefaultSeed)
		if err != nil {
			t.Fatalf("SensRatio: %v", err)
		}
		return []string{fig10.String(), fig3.String(), sens.String()}
	}

	SetConcurrency(1)
	sequential := render()
	SetConcurrency(4)
	pooled := render()

	for i := range sequential {
		if sequential[i] != pooled[i] {
			t.Errorf("figure %d differs between Concurrency=1 and 4:\nseq:\n%s\npool:\n%s",
				i, sequential[i], pooled[i])
		}
	}
}
