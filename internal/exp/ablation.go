package exp

import (
	"fmt"
	"strings"

	"harmony/internal/sim"
	"harmony/internal/workload"
)

// AblationRow is one configuration of the §V-C technique breakdown.
type AblationRow struct {
	Config          string
	MakespanSpeedup float64
	JCTSpeedup      float64
	BenefitShare    float64 // share of the full system's makespan benefit
}

// AblationResult reproduces the §V-C decomposition: subtasks alone give
// part of the benefit, grouping most of the rest, dynamic reloading the
// remainder (paper: 32% / 81% / 100%).
type AblationResult struct {
	Rows []AblationRow
}

// Ablation runs the cumulative configurations over the base workload.
func Ablation(seed int64) (*AblationResult, error) {
	jobs := sim.Jobs(workload.Base(), nil)
	iso, err := runMode(sim.ModeIsolated, jobs, seed, nil)
	if err != nil {
		return nil, err
	}
	type cfgCase struct {
		name   string
		mutate func(*sim.Config)
	}
	cases := []cfgCase{
		// "No dynamic reloading" keeps the static occupancy-based spill
		// (co-locating these datasets is impossible without any spill)
		// but turns the per-job hill climbing off.
		{"subtasks only", func(c *sim.Config) {
			c.DisableSmartGrouping = true
			c.DisableAlphaTuning = true
		}},
		{"+ grouping", func(c *sim.Config) {
			c.DisableAlphaTuning = true
		}},
		{"+ dynamic reloading (full)", nil},
	}
	out := &AblationResult{}
	isoMk := iso.Summary.Makespan.Seconds()
	var fullGain float64
	results := make([]*sim.Result, len(cases))
	if err := runPool(len(cases), func(i int) error {
		res, err := runMode(sim.ModeHarmony, jobs, seed, cases[i].mutate)
		if err != nil {
			return fmt.Errorf("ablation %s: %w", cases[i].name, err)
		}
		results[i] = res
		return nil
	}); err != nil {
		return nil, err
	}
	fullGain = isoMk - results[len(results)-1].Summary.Makespan.Seconds()
	for i, c := range cases {
		res := results[i]
		gain := isoMk - res.Summary.Makespan.Seconds()
		share := 0.0
		if fullGain > 0 {
			share = gain / fullGain
		}
		out.Rows = append(out.Rows, AblationRow{
			Config:          c.name,
			MakespanSpeedup: isoMk / res.Summary.Makespan.Seconds(),
			JCTSpeedup:      iso.Summary.MeanJCT.Seconds() / res.Summary.MeanJCT.Seconds(),
			BenefitShare:    share,
		})
	}
	return out, nil
}

func (r *AblationResult) String() string {
	rows := make([][]string, len(r.Rows))
	for i, row := range r.Rows {
		rows[i] = []string{
			row.Config,
			fmt.Sprintf("%.2fx", row.MakespanSpeedup),
			fmt.Sprintf("%.2fx", row.JCTSpeedup),
			fmt.Sprintf("%.0f%%", row.BenefitShare*100),
		}
	}
	return "§V-C — technique ablation (cumulative; paper: 32% / 81% / 100% of benefit)\n" +
		table([]string{"configuration", "makespan speedup", "JCT speedup", "benefit share"}, rows)
}

// DesignAblationRow is one design-choice toggle (DESIGN.md §5).
type DesignAblationRow struct {
	Variant         string
	MakespanSpeedup float64
	CPUUtil         float64
	NetUtil         float64
}

// DesignAblationResult collects the extra design ablations DESIGN.md
// calls out: the secondary COMM subtask, swap-based fine-tuning, and the
// 5% regrouping threshold.
type DesignAblationResult struct {
	Rows []DesignAblationRow
}

// DesignAblation toggles each design choice off against the full system.
func DesignAblation(seed int64) (*DesignAblationResult, error) {
	jobs := sim.Jobs(workload.Base(), nil)
	iso, err := runMode(sim.ModeIsolated, jobs, seed, nil)
	if err != nil {
		return nil, err
	}
	cases := []struct {
		name   string
		mutate func(*sim.Config)
	}{
		{"full system", nil},
		{"no secondary COMM", func(c *sim.Config) { c.DisableSecondaryComm = true }},
		{"no swap fine-tuning", func(c *sim.Config) { c.SchedOpts.DisableSwapTuning = true }},
		{"no regroup threshold", func(c *sim.Config) { c.SchedOpts.MinImprovement = 1e-9 }},
	}
	out := &DesignAblationResult{Rows: make([]DesignAblationRow, len(cases))}
	err = runPool(len(cases), func(i int) error {
		c := cases[i]
		res, err := runMode(sim.ModeHarmony, jobs, seed, c.mutate)
		if err != nil {
			return fmt.Errorf("design ablation %s: %w", c.name, err)
		}
		out.Rows[i] = DesignAblationRow{
			Variant:         c.name,
			MakespanSpeedup: iso.Summary.Makespan.Seconds() / res.Summary.Makespan.Seconds(),
			CPUUtil:         res.Summary.CPUUtil,
			NetUtil:         res.Summary.NetUtil,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

func (r *DesignAblationResult) String() string {
	rows := make([][]string, len(r.Rows))
	for i, row := range r.Rows {
		rows[i] = []string{
			row.Variant,
			fmt.Sprintf("%.2fx", row.MakespanSpeedup),
			pct(row.CPUUtil), pct(row.NetUtil),
		}
	}
	var b strings.Builder
	b.WriteString("Design-choice ablations (DESIGN.md §5; speedups vs isolated)\n")
	b.WriteString(table([]string{"variant", "makespan speedup", "CPU util", "net util"}, rows))
	return b.String()
}
