package exp

import (
	"runtime"

	"harmony/internal/parallel"
)

// concurrency bounds how many independent simulation runs the experiment
// sweeps execute at once. Each sim.Run owns its engine, rng and state, so
// runs only share read-only workload tables; results land in index-ordered
// slots, making every figure identical at any setting.
var concurrency = runtime.GOMAXPROCS(0)

// SetConcurrency adjusts the sweep fan-out (and the Parallelism handed to
// the scheduler inside each simulation). Values below 1 restore the
// GOMAXPROCS default; 1 runs everything on the calling goroutine, exactly
// reproducing the original sequential harness.
func SetConcurrency(n int) { concurrency = parallel.Workers(n) }

// Concurrency reports the current sweep fan-out.
func Concurrency() int { return concurrency }

// runPool evaluates fn(0) … fn(n-1) on the experiment worker pool. Each
// call must write only to its own result slot. All units run even when
// some fail; the lowest-index error is returned so failure reporting does
// not depend on completion order.
func runPool(n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	errs := make([]error, n)
	parallel.Run(n, concurrency, func(i int) { errs[i] = fn(i) })
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
