// Package memstore is the live runtime's block-granular input-data store
// with spill and reload (§IV-C): a fraction α of a job's input blocks
// lives on disk and is streamed back in the background before each COMP
// subtask needs it, bounding the resident heap while keeping compute
// unblocked.
package memstore

import (
	"encoding/gob"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"harmony/internal/metrics"
)

// ErrClosed is returned after Close.
var ErrClosed = errors.New("memstore: store closed")

// EventKind classifies residency-change notifications.
type EventKind int

// Residency events. Evict fires when a block leaves memory for disk
// (the §IV-C spiller); Reload fires when a spilled block returns, whether
// by the background reloader or a blocking Get.
const (
	Evict EventKind = iota + 1
	Reload
)

// String names the event kind.
func (k EventKind) String() string {
	switch k {
	case Evict:
		return "evict"
	case Reload:
		return "reload"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// Event is one residency change of one block. Consumers (the worker's
// decoded-block cache) use Evict to invalidate derived state: a spilled
// block's payload pointer is dead, and serving stale decodes would let
// compute dodge the reload cost the spiller is modeling.
type Event struct {
	Kind EventKind
	ID   int
}

// Block is one unit of spillable data.
type Block struct {
	// ID is unique within the store.
	ID int
	// Payload is arbitrary gob-encodable content (the live runtime
	// stores mlapp shards).
	Payload []byte
}

// Store manages a job's input blocks across memory and disk. It is safe
// for concurrent use; the background reloader runs in its own goroutine.
type Store struct {
	mu       sync.Mutex
	cond     *sync.Cond
	dir      string
	resident map[int]*Block
	onDisk   map[int]string // block id -> file path
	alpha    float64
	order    []int // all block ids, spill priority order
	closed   bool

	reloadCh chan int
	done     chan struct{}

	// notify receives residency events; see SetNotify.
	notify func(Event)

	// Stats.
	spills     int
	reloads    int
	stallNanos int64
}

// Open creates a store that spills into dir (created if needed).
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("memstore: %w", err)
	}
	s := &Store{
		dir:      dir,
		resident: make(map[int]*Block),
		onDisk:   make(map[int]string),
		reloadCh: make(chan int, 64),
		done:     make(chan struct{}),
	}
	s.cond = sync.NewCond(&s.mu)
	go s.reloader()
	return s, nil
}

// SetNotify installs the residency-event callback. The callback runs with
// the store lock held (so an Evict is delivered before any Get can
// observe the block gone) and therefore must not call back into the
// Store. Pass nil to remove it.
func (s *Store) SetNotify(fn func(Event)) {
	s.mu.Lock()
	s.notify = fn
	s.mu.Unlock()
}

func (s *Store) notifyLocked(kind EventKind, id int) {
	if s.notify != nil {
		s.notify(Event{Kind: kind, ID: id})
	}
}

// Put registers a block, initially resident.
func (s *Store) Put(b *Block) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if _, dup := s.resident[b.ID]; dup {
		return fmt.Errorf("memstore: duplicate block %d", b.ID)
	}
	if _, dup := s.onDisk[b.ID]; dup {
		return fmt.Errorf("memstore: duplicate block %d", b.ID)
	}
	s.resident[b.ID] = b
	s.order = append(s.order, b.ID)
	return nil
}

// SetAlpha adjusts the disk-side ratio α and rebalances: blocks are
// spilled synchronously (cheap: a file write) while reloads happen in the
// background.
func (s *Store) SetAlpha(alpha float64) error {
	if alpha < 0 {
		alpha = 0
	}
	if alpha > 1 {
		alpha = 1
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	s.alpha = alpha
	return s.rebalanceLocked()
}

// Alpha reports the current disk-side ratio target.
func (s *Store) Alpha() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.alpha
}

// rebalanceLocked moves blocks to match α: the first ⌈α·n⌉ ids in spill
// order live on disk, the rest in memory.
func (s *Store) rebalanceLocked() error {
	n := len(s.order)
	wantDisk := int(float64(n)*s.alpha + 0.5)
	for i, id := range s.order {
		if i < wantDisk {
			if b, ok := s.resident[id]; ok {
				if err := s.spillLocked(b); err != nil {
					return err
				}
			}
		} else if _, ok := s.onDisk[id]; ok {
			// Queue a background reload.
			select {
			case s.reloadCh <- id:
			default:
				// Reloader busy; it will catch up on the next Get or
				// rebalance.
			}
		}
	}
	return nil
}

func (s *Store) spillLocked(b *Block) error {
	path := filepath.Join(s.dir, fmt.Sprintf("block-%d.gob", b.ID))
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("memstore: spill block %d: %w", b.ID, err)
	}
	if err := gob.NewEncoder(f).Encode(b); err != nil {
		f.Close()
		return fmt.Errorf("memstore: spill block %d: %w", b.ID, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("memstore: spill block %d: %w", b.ID, err)
	}
	delete(s.resident, b.ID)
	s.onDisk[b.ID] = path
	s.spills++
	s.notifyLocked(Evict, b.ID)
	return nil
}

// Get returns a block, reloading it synchronously if it is on disk (a
// blocked COMP subtask — the stall §IV-C tries to avoid).
func (s *Store) Get(id int) (*Block, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.closed {
			return nil, ErrClosed
		}
		if b, ok := s.resident[id]; ok {
			return b, nil
		}
		if _, ok := s.onDisk[id]; ok {
			// A blocked COMP subtask: the reloader has not caught up, so
			// this Get pays the disk latency inline. Track it — the profiled
			// T_cpu the scheduler feeds Algorithm 1 includes these stalls.
			start := time.Now()
			b, err := s.loadLocked(id)
			if err != nil {
				return nil, err
			}
			stall := time.Since(start)
			s.stallNanos += int64(stall)
			metrics.Comp.ObserveReloadStall(stall)
			return b, nil
		}
		return nil, fmt.Errorf("memstore: unknown block %d", id)
	}
}

func (s *Store) loadLocked(id int) (*Block, error) {
	path := s.onDisk[id]
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("memstore: reload block %d: %w", id, err)
	}
	defer f.Close()
	var b Block
	if err := gob.NewDecoder(f).Decode(&b); err != nil {
		return nil, fmt.Errorf("memstore: reload block %d: %w", id, err)
	}
	delete(s.onDisk, id)
	s.resident[id] = &b
	s.reloads++
	s.notifyLocked(Reload, id)
	// Keep the spill file: re-spilling the block later becomes free, and
	// Close removes the directory anyway.
	return &b, nil
}

// Prefetch queues a background reload so a later Get does not block.
func (s *Store) Prefetch(id int) {
	select {
	case s.reloadCh <- id:
	default:
	}
}

// reloader streams queued blocks back into memory.
func (s *Store) reloader() {
	for {
		select {
		case <-s.done:
			return
		case id := <-s.reloadCh:
			s.mu.Lock()
			if !s.closed {
				if _, onDisk := s.onDisk[id]; onDisk {
					// Only reload blocks the α target wants resident.
					n := len(s.order)
					wantDisk := int(float64(n)*s.alpha + 0.5)
					pos := -1
					for i, oid := range s.order {
						if oid == id {
							pos = i
							break
						}
					}
					if pos >= wantDisk {
						_, _ = s.loadLocked(id)
					}
				}
			}
			s.mu.Unlock()
		}
	}
}

// Stats reports resident/disk block counts and cumulative spill/reload
// operations.
func (s *Store) Stats() (resident, onDisk, spills, reloads int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.resident), len(s.onDisk), s.spills, s.reloads
}

// StallSeconds reports the cumulative wall time synchronous Gets spent
// reloading spilled blocks — the §IV-C stall the background reloader
// exists to hide.
func (s *Store) StallSeconds() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return time.Duration(s.stallNanos).Seconds()
}

// Blocks reports how many blocks the store manages.
func (s *Store) Blocks() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.order)
}

// Close stops the reloader and removes spill files.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	close(s.done)
	return os.RemoveAll(s.dir)
}
