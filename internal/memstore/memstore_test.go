package memstore

import (
	"errors"
	"fmt"
	"testing"
	"testing/quick"
	"time"
)

func open(t *testing.T) *Store {
	t.Helper()
	s, err := Open(t.TempDir() + "/spill")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func fill(t *testing.T, s *Store, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if err := s.Put(&Block{ID: i, Payload: []byte(fmt.Sprintf("payload-%d", i))}); err != nil {
			t.Fatal(err)
		}
	}
}

func TestPutGet(t *testing.T) {
	s := open(t)
	fill(t, s, 5)
	b, err := s.Get(3)
	if err != nil {
		t.Fatal(err)
	}
	if string(b.Payload) != "payload-3" {
		t.Errorf("payload = %q", b.Payload)
	}
	if _, err := s.Get(99); err == nil {
		t.Error("Get(99) succeeded for unknown block")
	}
}

func TestDuplicatePut(t *testing.T) {
	s := open(t)
	fill(t, s, 1)
	if err := s.Put(&Block{ID: 0}); err == nil {
		t.Error("duplicate Put succeeded")
	}
}

func TestSpillMovesBlocksToDisk(t *testing.T) {
	s := open(t)
	fill(t, s, 10)
	if err := s.SetAlpha(0.5); err != nil {
		t.Fatal(err)
	}
	resident, onDisk, spills, _ := s.Stats()
	if onDisk != 5 || resident != 5 {
		t.Errorf("resident/disk = %d/%d, want 5/5", resident, onDisk)
	}
	if spills != 5 {
		t.Errorf("spills = %d, want 5", spills)
	}
}

func TestGetReloadsSpilledBlock(t *testing.T) {
	s := open(t)
	fill(t, s, 4)
	if err := s.SetAlpha(1); err != nil {
		t.Fatal(err)
	}
	b, err := s.Get(2)
	if err != nil {
		t.Fatal(err)
	}
	if string(b.Payload) != "payload-2" {
		t.Errorf("payload = %q after reload", b.Payload)
	}
	_, _, _, reloads := s.Stats()
	if reloads != 1 {
		t.Errorf("reloads = %d, want 1", reloads)
	}
}

func TestAlphaRoundTripPreservesData(t *testing.T) {
	s := open(t)
	fill(t, s, 8)
	for _, a := range []float64{1, 0, 0.5, 0} {
		if err := s.SetAlpha(a); err != nil {
			t.Fatal(err)
		}
	}
	// Everything must still be readable with the right contents.
	waitFor(t, func() bool {
		resident, _, _, _ := s.Stats()
		return resident == 8
	})
	for i := 0; i < 8; i++ {
		b, err := s.Get(i)
		if err != nil {
			t.Fatal(err)
		}
		if string(b.Payload) != fmt.Sprintf("payload-%d", i) {
			t.Errorf("block %d corrupted: %q", i, b.Payload)
		}
	}
}

func TestBackgroundReloadAfterAlphaDrop(t *testing.T) {
	s := open(t)
	fill(t, s, 6)
	if err := s.SetAlpha(1); err != nil {
		t.Fatal(err)
	}
	if err := s.SetAlpha(0); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool {
		resident, onDisk, _, _ := s.Stats()
		return resident == 6 && onDisk == 0
	})
}

func TestPrefetchAvoidsBlocking(t *testing.T) {
	s := open(t)
	fill(t, s, 4)
	if err := s.SetAlpha(1); err != nil {
		t.Fatal(err)
	}
	if err := s.SetAlpha(0.0); err != nil { // target: everything resident
		t.Fatal(err)
	}
	s.Prefetch(0)
	waitFor(t, func() bool {
		resident, _, _, _ := s.Stats()
		return resident >= 1
	})
}

func TestAlphaClamped(t *testing.T) {
	s := open(t)
	fill(t, s, 2)
	if err := s.SetAlpha(7); err != nil {
		t.Fatal(err)
	}
	if got := s.Alpha(); got != 1 {
		t.Errorf("alpha = %v, want clamp to 1", got)
	}
	if err := s.SetAlpha(-3); err != nil {
		t.Fatal(err)
	}
	if got := s.Alpha(); got != 0 {
		t.Errorf("alpha = %v, want clamp to 0", got)
	}
}

func TestClosedStore(t *testing.T) {
	s := open(t)
	fill(t, s, 2)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(&Block{ID: 9}); !errors.Is(err, ErrClosed) {
		t.Errorf("Put after close = %v, want ErrClosed", err)
	}
	if _, err := s.Get(0); !errors.Is(err, ErrClosed) {
		t.Errorf("Get after close = %v, want ErrClosed", err)
	}
	if err := s.SetAlpha(0.5); !errors.Is(err, ErrClosed) {
		t.Errorf("SetAlpha after close = %v, want ErrClosed", err)
	}
	if err := s.Close(); err != nil {
		t.Error("double close errored:", err)
	}
}

// TestConservation checks by property that no α sequence loses blocks:
// resident + onDisk always equals the number of blocks put.
func TestConservation(t *testing.T) {
	s := open(t)
	fill(t, s, 12)
	f := func(steps []uint8) bool {
		for _, st := range steps {
			if err := s.SetAlpha(float64(st%11) / 10); err != nil {
				return false
			}
			resident, onDisk, _, _ := s.Stats()
			if resident+onDisk != 12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("condition not met within deadline")
}

func TestNotifyEvictAndReload(t *testing.T) {
	s := open(t)
	var events []Event
	s.SetNotify(func(e Event) { events = append(events, e) })
	fill(t, s, 4)
	if len(events) != 0 {
		t.Fatalf("Put fired %d events", len(events))
	}
	if err := s.SetAlpha(1); err != nil {
		t.Fatal(err)
	}
	if len(events) != 4 {
		t.Fatalf("%d events after full spill, want 4", len(events))
	}
	for i, e := range events {
		if e.Kind != Evict || e.ID != i {
			t.Errorf("event %d = %v/%d, want evict/%d", i, e.Kind, e.ID, i)
		}
	}
	events = nil
	if _, err := s.Get(2); err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 || events[0].Kind != Reload || events[0].ID != 2 {
		t.Fatalf("events after blocking Get = %v, want one reload of 2", events)
	}
	// Removing the callback silences further events.
	s.SetNotify(nil)
	if err := s.SetAlpha(1); err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 {
		t.Errorf("events delivered after SetNotify(nil): %v", events[1:])
	}
}

func TestNotifyBackgroundReload(t *testing.T) {
	s := open(t)
	ch := make(chan Event, 16)
	s.SetNotify(func(e Event) { ch <- e })
	fill(t, s, 2)
	if err := s.SetAlpha(1); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		<-ch // the two evictions
	}
	// Dropping alpha queues background reloads; both must announce.
	if err := s.SetAlpha(0); err != nil {
		t.Fatal(err)
	}
	deadline := time.After(5 * time.Second)
	got := map[int]bool{}
	for len(got) < 2 {
		select {
		case e := <-ch:
			if e.Kind != Reload {
				t.Fatalf("unexpected event %v/%d", e.Kind, e.ID)
			}
			got[e.ID] = true
		case <-deadline:
			t.Fatalf("reload events missing, have %v", got)
		}
	}
}

func TestStallSecondsAccumulates(t *testing.T) {
	s := open(t)
	fill(t, s, 3)
	if s.StallSeconds() != 0 {
		t.Fatalf("stall = %v before any reload", s.StallSeconds())
	}
	if err := s.SetAlpha(1); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := s.Get(i); err != nil {
			t.Fatal(err)
		}
	}
	if s.StallSeconds() <= 0 {
		t.Error("synchronous reloads did not accumulate stall time")
	}
}
