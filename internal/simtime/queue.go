package simtime

import (
	"container/heap"
	"errors"
	"fmt"
	"os"
	"reflect"
	"runtime"
)

// debugProgress enables periodic progress dumps for diagnosing hot loops.
var debugProgress = os.Getenv("SIMTIME_DEBUG_PROGRESS") != ""

// ErrHalted is returned by Run when the engine is stopped via Halt before
// the event queue drains.
var ErrHalted = errors.New("simtime: engine halted")

// Event is a scheduled callback. Events with the same firing time run in
// the order they were scheduled, which keeps simulations deterministic.
type Event struct {
	at       Time
	seq      uint64
	fn       func()
	index    int // heap index, -1 once popped or canceled
	canceled bool
}

// Time reports when the event fires.
func (e *Event) Time() Time { return e.at }

// Canceled reports whether Cancel was called on the event.
func (e *Event) Canceled() bool { return e.canceled }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*h)
	*h = append(*h, ev)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// Engine is a single-threaded discrete-event engine. It is not safe for
// concurrent use; simulations drive it from one goroutine.
type Engine struct {
	now         Time
	seq         uint64
	events      eventHeap
	free        []*Event
	halted      bool
	fired       uint64
	sameInstant uint64
}

// Fired reports how many events have been executed.
func (e *Engine) Fired() uint64 { return e.fired }

// SameInstant reports how many consecutive events fired without the clock
// advancing (only tracked when SIMTIME_DEBUG_PROGRESS is set).
func (e *Engine) SameInstant() uint64 { return e.sameInstant }

// NewEngine returns an engine positioned at virtual time zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now reports the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Len reports the number of pending (non-canceled) events.
func (e *Engine) Len() int {
	n := 0
	for _, ev := range e.events {
		if !ev.canceled {
			n++
		}
	}
	return n
}

// At schedules fn to run at the given instant. Scheduling in the past is an
// error in the caller; the engine clamps such events to the current time so
// that time never moves backwards.
func (e *Engine) At(t Time, fn func()) *Event {
	if t < e.now {
		t = e.now
	}
	var ev *Event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		*ev = Event{at: t, seq: e.seq, fn: fn}
	} else {
		ev = &Event{at: t, seq: e.seq, fn: fn}
	}
	e.seq++
	heap.Push(&e.events, ev)
	return ev
}

// After schedules fn to run d after the current time.
func (e *Engine) After(d Duration, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return e.At(e.now.Add(d), fn)
}

// Cancel removes a pending event. Canceling an already-fired or
// already-canceled event is a no-op.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.canceled || ev.index < 0 {
		if ev != nil {
			ev.canceled = true
		}
		return
	}
	ev.canceled = true
	heap.Remove(&e.events, ev.index)
}

// Release returns a fired or canceled event to the engine's freelist so a
// later At can reuse the struct. Only an event's sole holder may release
// it, and must drop its reference; releasing an event still pending in the
// queue is ignored. High-frequency schedulers (the resource completion
// loop) release their events to avoid allocating one per state change.
func (e *Engine) Release(ev *Event) {
	if ev == nil || ev.index >= 0 {
		return
	}
	*ev = Event{index: -1}
	e.free = append(e.free, ev)
}

// Halt stops a Run in progress after the current event returns.
func (e *Engine) Halt() { e.halted = true }

// Step fires the next pending event, advancing the clock to its time.
// It reports false when no events remain.
func (e *Engine) Step() bool {
	for len(e.events) > 0 {
		ev := heap.Pop(&e.events).(*Event)
		if ev.canceled {
			continue
		}
		e.now = ev.at
		e.fired++
		ev.fn()
		return true
	}
	return false
}

// Run fires events until the queue drains or the deadline passes. When the
// deadline interrupts the run, the clock is advanced to the deadline.
// It returns ErrHalted if Halt was called during the run.
func (e *Engine) Run(deadline Time) error {
	e.halted = false
	for len(e.events) > 0 {
		next := e.events[0]
		if next.canceled {
			heap.Pop(&e.events)
			continue
		}
		if next.at > deadline {
			e.now = deadline
			return nil
		}
		heap.Pop(&e.events)
		if debugProgress {
			if next.at == e.now {
				e.sameInstant++
				if e.sameInstant > 1<<20 {
					fmt.Fprintf(os.Stderr, "simtime: loop event: %s\n",
						runtime.FuncForPC(reflect.ValueOf(next.fn).Pointer()).Name())
					if e.sameInstant > 1<<20+20 {
						panic(fmt.Sprintf("simtime: %d events at %s without progress", e.sameInstant, e.now))
					}
				}
			} else {
				e.sameInstant = 0
			}
		}
		e.now = next.at
		e.fired++
		if debugProgress && e.fired%(1<<21) == 0 {
			fmt.Fprintf(os.Stderr, "simtime: %d events, now=%s, pending=%d\n", e.fired, e.now, len(e.events))
		}
		next.fn()
		if e.halted {
			return ErrHalted
		}
	}
	if deadline != MaxTime && deadline > e.now {
		e.now = deadline
	}
	return nil
}

// RunAll fires events until the queue drains. It returns ErrHalted if Halt
// was called during the run.
func (e *Engine) RunAll() error { return e.Run(MaxTime) }
