// Package simtime provides a virtual clock and a deterministic
// discrete-event queue used by the cluster simulator.
//
// Virtual time is tracked as an integer number of microseconds so that
// event ordering is exact and runs are reproducible across platforms.
package simtime

import (
	"fmt"
	"math"
	"time"
)

// Time is an instant on the virtual time line, in microseconds since the
// start of the simulation.
type Time int64

// Duration is a span of virtual time, in microseconds.
type Duration int64

// Common durations.
const (
	Microsecond Duration = 1
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
	Minute               = 60 * Second
	Hour                 = 60 * Minute
)

// MaxTime is the largest representable virtual instant.
const MaxTime Time = math.MaxInt64

// FromSeconds converts a floating-point number of seconds to a Duration,
// rounding to the nearest microsecond and saturating instead of
// overflowing for absurdly large inputs.
func FromSeconds(s float64) Duration {
	us := math.Round(s * 1e6)
	if us >= math.MaxInt64 {
		return Duration(math.MaxInt64)
	}
	if us <= math.MinInt64 {
		return Duration(math.MinInt64)
	}
	return Duration(us)
}

// FromStd converts a time.Duration to a virtual Duration.
func FromStd(d time.Duration) Duration {
	return Duration(d / time.Microsecond)
}

// Seconds reports the duration as a floating-point number of seconds.
func (d Duration) Seconds() float64 { return float64(d) / 1e6 }

// Minutes reports the duration as a floating-point number of minutes.
func (d Duration) Minutes() float64 { return float64(d) / (60 * 1e6) }

// Std converts the virtual duration to a time.Duration.
func (d Duration) Std() time.Duration { return time.Duration(d) * time.Microsecond }

// String formats the duration using time.Duration notation.
func (d Duration) String() string { return d.Std().String() }

// Add returns the instant d after t, saturating at MaxTime on overflow.
func (t Time) Add(d Duration) Time {
	sum := t + Time(d)
	if d > 0 && sum < t {
		return MaxTime
	}
	return sum
}

// Sub returns the duration elapsed from u to t.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Seconds reports the instant as seconds since the simulation start.
func (t Time) Seconds() float64 { return float64(t) / 1e6 }

// Minutes reports the instant as minutes since the simulation start.
func (t Time) Minutes() float64 { return float64(t) / (60 * 1e6) }

// String formats the instant as an offset from the simulation start.
func (t Time) String() string {
	return fmt.Sprintf("t+%s", (time.Duration(t) * time.Microsecond).String())
}
