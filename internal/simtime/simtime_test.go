package simtime

import (
	"testing"
	"testing/quick"
	"time"
)

func TestDurationConversions(t *testing.T) {
	tests := []struct {
		name string
		d    Duration
		want float64
	}{
		{name: "second", d: Second, want: 1},
		{name: "minute", d: Minute, want: 60},
		{name: "hour", d: Hour, want: 3600},
		{name: "millisecond", d: Millisecond, want: 0.001},
		{name: "zero", d: 0, want: 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.d.Seconds(); got != tt.want {
				t.Errorf("Seconds() = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestFromSecondsRoundTrip(t *testing.T) {
	f := func(ms int32) bool {
		s := float64(ms) / 1000.0
		d := FromSeconds(s)
		return d == Duration(ms)*Millisecond
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFromStd(t *testing.T) {
	if got := FromStd(3 * time.Second); got != 3*Second {
		t.Errorf("FromStd(3s) = %v, want %v", got, 3*Second)
	}
}

func TestTimeArithmetic(t *testing.T) {
	t0 := Time(0)
	t1 := t0.Add(90 * Second)
	if got := t1.Minutes(); got != 1.5 {
		t.Errorf("Minutes() = %v, want 1.5", got)
	}
	if got := t1.Sub(t0); got != 90*Second {
		t.Errorf("Sub = %v, want 90s", got)
	}
}

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var got []int
	e.At(Time(30*Second), func() { got = append(got, 3) })
	e.At(Time(10*Second), func() { got = append(got, 1) })
	e.At(Time(20*Second), func() { got = append(got, 2) })
	if err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("events fired in order %v, want %v", got, want)
		}
	}
	if e.Now() != Time(30*Second) {
		t.Errorf("Now() = %v, want 30s", e.Now())
	}
}

func TestEngineTieBreakBySchedulingOrder(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(Time(Second), func() { got = append(got, i) })
	}
	if err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != i {
			t.Fatalf("same-time events fired out of scheduling order: %v", got)
		}
	}
}

func TestEngineAfterAndNestedScheduling(t *testing.T) {
	e := NewEngine()
	var fired []Time
	e.After(Second, func() {
		fired = append(fired, e.Now())
		e.After(2*Second, func() {
			fired = append(fired, e.Now())
		})
	})
	if err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 2 || fired[0] != Time(Second) || fired[1] != Time(3*Second) {
		t.Errorf("fired at %v, want [1s 3s]", fired)
	}
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.After(Second, func() { fired = true })
	e.Cancel(ev)
	if err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Error("canceled event fired")
	}
	if !ev.Canceled() {
		t.Error("Canceled() = false after Cancel")
	}
	// Double-cancel is a no-op.
	e.Cancel(ev)
}

func TestEngineCancelMiddleOfHeap(t *testing.T) {
	e := NewEngine()
	var got []int
	var evs []*Event
	for i := 0; i < 5; i++ {
		i := i
		evs = append(evs, e.At(Time(Duration(i+1)*Second), func() { got = append(got, i) }))
	}
	e.Cancel(evs[2])
	if err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1, 3, 4}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestEngineRunDeadline(t *testing.T) {
	e := NewEngine()
	count := 0
	e.At(Time(Second), func() { count++ })
	e.At(Time(10*Second), func() { count++ })
	if err := e.Run(Time(5 * Second)); err != nil {
		t.Fatal(err)
	}
	if count != 1 {
		t.Errorf("fired %d events before deadline, want 1", count)
	}
	if e.Now() != Time(5*Second) {
		t.Errorf("Now() = %v, want deadline 5s", e.Now())
	}
	if e.Len() != 1 {
		t.Errorf("Len() = %d, want 1 pending", e.Len())
	}
}

func TestEngineHalt(t *testing.T) {
	e := NewEngine()
	count := 0
	e.At(Time(Second), func() { count++; e.Halt() })
	e.At(Time(2*Second), func() { count++ })
	if err := e.RunAll(); err != ErrHalted {
		t.Fatalf("RunAll() = %v, want ErrHalted", err)
	}
	if count != 1 {
		t.Errorf("fired %d events, want 1", count)
	}
}

func TestEnginePastEventClampsToNow(t *testing.T) {
	e := NewEngine()
	var at Time
	e.At(Time(10*Second), func() {
		e.At(Time(Second), func() { at = e.Now() })
	})
	if err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	if at != Time(10*Second) {
		t.Errorf("past-scheduled event fired at %v, want clamp to 10s", at)
	}
}

func TestEngineStep(t *testing.T) {
	e := NewEngine()
	e.At(Time(Second), func() {})
	if !e.Step() {
		t.Fatal("Step() = false with pending event")
	}
	if e.Step() {
		t.Fatal("Step() = true with empty queue")
	}
}

func TestEngineDeterminism(t *testing.T) {
	run := func() []Time {
		e := NewEngine()
		var log []Time
		var tick func(n int)
		tick = func(n int) {
			log = append(log, e.Now())
			if n < 20 {
				e.After(Duration(n%3+1)*Second, func() { tick(n + 1) })
				if n%4 == 0 {
					e.After(500*Millisecond, func() { log = append(log, e.Now()) })
				}
			}
		}
		e.After(0, func() { tick(0) })
		if err := e.RunAll(); err != nil {
			t.Fatal(err)
		}
		return log
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("non-deterministic run lengths: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic event at %d: %v vs %v", i, a[i], b[i])
		}
	}
}
