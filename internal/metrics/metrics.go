// Package metrics accumulates resource-utilization time series and job
// completion statistics for simulated and live runs.
//
// Utilization is recorded the way the paper measures it (§V-B): busy time
// per resource, averaged over one-minute intervals, relative to the whole
// cluster.
package metrics

import (
	"fmt"
	"math"
	"sort"

	"harmony/internal/simtime"
)

// Resource identifies which resource a busy interval used.
type Resource int

// Resources tracked by the recorder.
const (
	CPU Resource = iota + 1
	Net
	Disk
)

// String names the resource.
func (r Resource) String() string {
	switch r {
	case CPU:
		return "CPU"
	case Net:
		return "Network"
	case Disk:
		return "Disk"
	default:
		return fmt.Sprintf("Resource(%d)", int(r))
	}
}

const numResources = 3

// UtilRecorder bins busy machine-time per resource into fixed sampling
// intervals, normalized by total cluster size.
type UtilRecorder struct {
	interval    simtime.Duration
	clusterSize int
	busy        [numResources][]float64 // machine-seconds per bucket
	maxTime     simtime.Time
}

// NewUtilRecorder creates a recorder for a cluster of the given size,
// sampling at the given interval (the paper uses one minute).
func NewUtilRecorder(clusterSize int, interval simtime.Duration) *UtilRecorder {
	if clusterSize < 1 {
		clusterSize = 1
	}
	if interval <= 0 {
		interval = simtime.Minute
	}
	return &UtilRecorder{interval: interval, clusterSize: clusterSize}
}

// AddBusy records that n machines kept the resource busy from 'from' to
// 'to'. Overlapping calls accumulate, so concurrent busy jobs on disjoint
// machines sum correctly.
func (u *UtilRecorder) AddBusy(r Resource, from, to simtime.Time, n int) {
	u.AddBusyWeighted(r, from, to, float64(n))
}

// AddBusyWeighted records fractionally-busy machine time: weight is the
// number of machines multiplied by the busy fraction that held over the
// interval (fluid-flow resources are often partially busy).
func (u *UtilRecorder) AddBusyWeighted(r Resource, from, to simtime.Time, weight float64) {
	if to <= from || weight <= 0 {
		return
	}
	idx := int(r) - 1
	if idx < 0 || idx >= numResources {
		return
	}
	if to > u.maxTime {
		u.maxTime = to
	}
	firstBucket := int(int64(from) / int64(u.interval))
	lastBucket := int(int64(to-1) / int64(u.interval))
	if need := lastBucket + 1; need > len(u.busy[idx]) {
		cur := u.busy[idx]
		if need <= cap(cur) {
			// Slots past len were zeroed at allocation and never written.
			cur = cur[:need]
		} else {
			// Grow geometrically: busy time extends one bucket at a time
			// over a whole run, and exact-size reallocation would copy the
			// entire series each minute.
			newCap := 2 * cap(cur)
			if newCap < need {
				newCap = need
			}
			grown := make([]float64, need, newCap)
			copy(grown, cur)
			cur = grown
		}
		u.busy[idx] = cur
	}
	for b := firstBucket; b <= lastBucket; b++ {
		bStart := simtime.Time(int64(b) * int64(u.interval))
		bEnd := bStart.Add(u.interval)
		s, e := from, to
		if s < bStart {
			s = bStart
		}
		if e > bEnd {
			e = bEnd
		}
		u.busy[idx][b] += e.Sub(s).Seconds() * weight
	}
}

// Series returns the utilization fraction per sampling interval for the
// resource, truncated at the last recorded activity.
func (u *UtilRecorder) Series(r Resource) []float64 {
	idx := int(r) - 1
	if idx < 0 || idx >= numResources {
		return nil
	}
	capacity := u.interval.Seconds() * float64(u.clusterSize)
	out := make([]float64, len(u.busy[idx]))
	for i, b := range u.busy[idx] {
		out[i] = b / capacity
	}
	return out
}

// Mean returns the average utilization of the resource between time zero
// and the given end (typically the makespan).
func (u *UtilRecorder) Mean(r Resource, end simtime.Time) float64 {
	idx := int(r) - 1
	if idx < 0 || idx >= numResources || end <= 0 {
		return 0
	}
	var busy float64
	lastBucket := int(int64(end-1) / int64(u.interval))
	for b, v := range u.busy[idx] {
		if b > lastBucket {
			break
		}
		busy += v
	}
	return busy / (end.Seconds() * float64(u.clusterSize))
}

// Interval reports the sampling interval.
func (u *UtilRecorder) Interval() simtime.Duration { return u.interval }

// JobRecord captures the lifecycle timestamps of one finished job.
type JobRecord struct {
	ID     string
	Submit simtime.Time
	Start  simtime.Time
	Finish simtime.Time
}

// JCT returns the job completion time: submission to termination (§V-C).
func (j JobRecord) JCT() simtime.Duration { return j.Finish.Sub(j.Submit) }

// Summary aggregates the outcome of one scheduling run.
type Summary struct {
	// MeanJCT is the average job completion time across all jobs.
	MeanJCT simtime.Duration
	// Makespan is the time from the first submission to the last finish.
	Makespan simtime.Duration
	// CPUUtil and NetUtil are mean utilizations over the makespan.
	CPUUtil float64
	NetUtil float64
}

// Summarize computes run statistics from job records and the recorder.
func Summarize(records []JobRecord, util *UtilRecorder) Summary {
	var s Summary
	if len(records) == 0 {
		return s
	}
	var total simtime.Duration
	var firstSubmit simtime.Time = math.MaxInt64
	var lastFinish simtime.Time
	for _, r := range records {
		total += r.JCT()
		if r.Submit < firstSubmit {
			firstSubmit = r.Submit
		}
		if r.Finish > lastFinish {
			lastFinish = r.Finish
		}
	}
	s.MeanJCT = total / simtime.Duration(len(records))
	s.Makespan = lastFinish.Sub(firstSubmit)
	if util != nil {
		s.CPUUtil = util.Mean(CPU, lastFinish)
		s.NetUtil = util.Mean(Net, lastFinish)
	}
	return s
}

// CDF returns the sorted copy of values, ready to print as an empirical
// cumulative distribution (the i-th value has cumulative probability
// (i+1)/n).
func CDF(values []float64) []float64 {
	out := make([]float64, len(values))
	copy(out, values)
	sort.Float64s(out)
	return out
}

// Percentile returns the p-th percentile (0..100) of values using
// nearest-rank on a sorted copy. It returns 0 for empty input.
func Percentile(values []float64, p float64) float64 {
	if len(values) == 0 {
		return 0
	}
	sorted := CDF(values)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	return sorted[rank]
}

// Mean returns the arithmetic mean of values, or 0 for empty input.
func Mean(values []float64) float64 {
	if len(values) == 0 {
		return 0
	}
	var sum float64
	for _, v := range values {
		sum += v
	}
	return sum / float64(len(values))
}
