package metrics

import (
	"math"
	"strconv"
	"sync/atomic"
	"time"
)

// HistBuckets is the number of finite latency buckets. Bounds are fixed
// log-spaced: 1µs doubling up to ~134s, which covers everything from a
// cached COMP subtask to a stalled barrier without per-histogram
// configuration, and keeps snapshots fixed-size (they ride the Stats RPC
// as plain arrays).
const HistBuckets = 28

// histBounds holds the upper bound of each finite bucket in seconds.
var histBounds = func() [HistBuckets]float64 {
	var b [HistBuckets]float64
	ub := 1e-6
	for i := range b {
		b[i] = ub
		ub *= 2
	}
	return b
}()

// HistUpperBound returns the inclusive upper bound of bucket i in
// seconds.
func HistUpperBound(i int) float64 { return histBounds[i] }

// Histogram is a fixed-log-bucket latency histogram with atomic
// counters: observation is lock-free and allocation-free, so it can sit
// on the worker's span-recording path. The zero value is ready to use.
type Histogram struct {
	counts [HistBuckets + 1]atomic.Int64 // last slot is +Inf
	// sum accumulates nanoseconds; phase latencies fit comfortably in
	// int64 for any realistic process lifetime.
	sumNanos atomic.Int64
}

// Observe records one latency in seconds.
func (h *Histogram) Observe(seconds float64) {
	i := 0
	for i < HistBuckets && seconds > histBounds[i] {
		i++
	}
	h.counts[i].Add(1)
	ns := seconds * float64(time.Second)
	// Clamp absurd observations: converting a float64 beyond the int64
	// range is implementation-defined and would corrupt the sum.
	if ns > float64(math.MaxInt64) {
		ns = float64(math.MaxInt64)
	}
	h.sumNanos.Add(int64(ns))
}

// HistSnapshot is a point-in-time copy of a Histogram, safe to ship over
// gob and to aggregate across workers.
type HistSnapshot struct {
	// Counts are per-bucket (non-cumulative) observation counts; Inf
	// holds observations above the last finite bound.
	Counts [HistBuckets]int64
	Inf    int64
	Sum    float64 // seconds
}

// Snapshot copies the counters. Buckets are read independently, so a
// snapshot taken mid-observation may be skewed by one in-flight op —
// fine for monitoring.
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	for i := 0; i < HistBuckets; i++ {
		s.Counts[i] = h.counts[i].Load()
	}
	s.Inf = h.counts[HistBuckets].Load()
	s.Sum = time.Duration(h.sumNanos.Load()).Seconds()
	return s
}

// Count is the total number of observations in the snapshot.
func (s HistSnapshot) Count() int64 {
	n := s.Inf
	for _, c := range s.Counts {
		n += c
	}
	return n
}

// Quantile estimates the q-quantile (q in [0, 1]) of the observations,
// interpolating linearly inside the bucket where the cumulative count
// crosses q*Count — the same estimator as PromQL's histogram_quantile,
// so adjacent distributions separate even when they land in the same
// log-spaced bucket. Observations beyond the last finite bucket report
// the last finite bound. Zero observations report 0.
func (s HistSnapshot) Quantile(q float64) float64 {
	total := s.Count()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(total)
	if target < 1 {
		target = 1
	}
	var cum int64
	for i, c := range s.Counts {
		prev := cum
		cum += c
		if float64(cum) >= target {
			lower := 0.0
			if i > 0 {
				lower = histBounds[i-1]
			}
			frac := (target - float64(prev)) / float64(c)
			return lower + frac*(histBounds[i]-lower)
		}
	}
	return histBounds[HistBuckets-1]
}

// Sub returns s minus an earlier snapshot o, bucket-wise, clamped at
// zero — the observations of the window between the two snapshots
// (steady-state measurement after a warmup).
func (s HistSnapshot) Sub(o HistSnapshot) HistSnapshot {
	for i := range s.Counts {
		s.Counts[i] -= o.Counts[i]
		if s.Counts[i] < 0 {
			s.Counts[i] = 0
		}
	}
	s.Inf -= o.Inf
	if s.Inf < 0 {
		s.Inf = 0
	}
	s.Sum -= o.Sum
	if s.Sum < 0 {
		s.Sum = 0
	}
	return s
}

// Add accumulates another snapshot (cross-worker aggregation).
func (s HistSnapshot) Add(o HistSnapshot) HistSnapshot {
	for i := range s.Counts {
		s.Counts[i] += o.Counts[i]
	}
	s.Inf += o.Inf
	s.Sum += o.Sum
	return s
}

// AppendHistogram renders the snapshot as one Prometheus histogram
// series set of family fam: cumulative `fam_bucket{...,le="..."}` rows
// ending in le="+Inf", then `fam_sum` and `fam_count`. labels is the
// label body without braces (e.g. `phase="comp"`) and may be empty.
// Every appended sample carries Fam=fam so WritePrometheus announces the
// family once as TYPE histogram.
func AppendHistogram(dst []Sample, fam, help, labels string, s HistSnapshot) []Sample {
	series := func(suffix, extra string) string {
		switch {
		case labels == "" && extra == "":
			return fam + suffix
		case labels == "":
			return fam + suffix + "{" + extra + "}"
		case extra == "":
			return fam + suffix + "{" + labels + "}"
		default:
			return fam + suffix + "{" + labels + "," + extra + "}"
		}
	}
	var cum int64
	for i, c := range s.Counts {
		cum += c
		le := strconv.FormatFloat(histBounds[i], 'g', -1, 64)
		dst = append(dst, Sample{
			Name: series("_bucket", `le="`+le+`"`),
			Help: help, Type: PromHistogram, Fam: fam, Value: float64(cum),
		})
	}
	cum += s.Inf
	dst = append(dst,
		Sample{Name: series("_bucket", `le="+Inf"`),
			Type: PromHistogram, Fam: fam, Value: float64(cum)},
		Sample{Name: series("_sum", ""),
			Type: PromHistogram, Fam: fam, Value: s.Sum},
		Sample{Name: series("_count", ""),
			Type: PromHistogram, Fam: fam, Value: float64(cum)},
	)
	return dst
}
