package metrics

import (
	"strings"
	"testing"
)

func TestWritePrometheusGroupsFamilies(t *testing.T) {
	var b strings.Builder
	err := WritePrometheus(&b, []Sample{
		{Name: `harmony_jobs{state="running"}`, Help: "Jobs by state.", Type: PromGauge, Value: 2},
		{Name: `harmony_jobs{state="pending"}`, Type: PromGauge, Value: 1},
		{Name: "harmony_queue_depth", Help: "Admission queue depth.", Type: PromGauge, Value: 1},
		{Name: "harmony_migrations_total", Help: "Pause/resume migrations.", Type: PromCounter, Value: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := `# HELP harmony_jobs Jobs by state.
# TYPE harmony_jobs gauge
harmony_jobs{state="running"} 2
harmony_jobs{state="pending"} 1
# HELP harmony_queue_depth Admission queue depth.
# TYPE harmony_queue_depth gauge
harmony_queue_depth 1
# HELP harmony_migrations_total Pause/resume migrations.
# TYPE harmony_migrations_total counter
harmony_migrations_total 3
`
	if got := b.String(); got != want {
		t.Errorf("output mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestWritePrometheusHelpFromLaterSample(t *testing.T) {
	var b strings.Builder
	err := WritePrometheus(&b, []Sample{
		{Name: `x{a="1"}`, Value: 1},
		{Name: `x{a="2"}`, Help: "an x", Value: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "# HELP x an x\n") {
		t.Errorf("help from later sample not used:\n%s", out)
	}
	if strings.Count(out, "# TYPE x gauge") != 1 {
		t.Errorf("family announced more than once:\n%s", out)
	}
}

func TestWritePrometheusEscapesHelp(t *testing.T) {
	var b strings.Builder
	if err := WritePrometheus(&b, []Sample{
		{Name: "y", Help: "line1\nline2 \\ backslash", Value: 0.5},
	}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `# HELP y line1\nline2 \\ backslash`) {
		t.Errorf("help not escaped:\n%s", b.String())
	}
}

func TestWritePrometheusValueFormatting(t *testing.T) {
	var b strings.Builder
	if err := WritePrometheus(&b, []Sample{
		{Name: "v", Value: 0.25},
		{Name: "n", Value: 12},
	}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "v 0.25\n") || !strings.Contains(b.String(), "n 12\n") {
		t.Errorf("unexpected value formatting:\n%s", b.String())
	}
}

func TestWritePrometheusEmptyName(t *testing.T) {
	var b strings.Builder
	if err := WritePrometheus(&b, []Sample{{Name: ""}}); err == nil {
		t.Error("empty sample name accepted")
	}
}
