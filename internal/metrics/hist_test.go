package metrics

import (
	"bytes"
	"math"
	"strconv"
	"strings"
	"testing"
)

func TestHistogramBucketing(t *testing.T) {
	var h Histogram
	h.Observe(0)      // at or below the first bound
	h.Observe(1e-6)   // exactly the first bound (inclusive)
	h.Observe(1.5e-6) // second bucket
	h.Observe(1.0)    // somewhere in the middle
	h.Observe(1e9)    // beyond the last finite bound
	s := h.Snapshot()
	if s.Counts[0] != 2 {
		t.Errorf("bucket 0 = %d, want 2 (0 and 1e-6 are both ≤ 1µs)", s.Counts[0])
	}
	if s.Counts[1] != 1 {
		t.Errorf("bucket 1 = %d, want 1", s.Counts[1])
	}
	if s.Inf != 1 {
		t.Errorf("+Inf bucket = %d, want 1", s.Inf)
	}
	if s.Count() != 5 {
		t.Errorf("count = %d, want 5", s.Count())
	}
	if math.Abs(s.Sum-(1e-6+1.5e-6+1.0+1e9)) > 1e9*1e-9 {
		t.Errorf("sum = %v", s.Sum)
	}
	// The 1.0s observation must land in a bucket whose bound covers it
	// and whose predecessor does not.
	found := -1
	for i := 0; i < HistBuckets; i++ {
		if i >= 2 && s.Counts[i] == 1 {
			found = i
		}
	}
	if found < 0 || HistUpperBound(found) < 1.0 || (found > 0 && HistUpperBound(found-1) >= 1.0) {
		t.Errorf("1.0s observation in bucket %d (bound %v)", found, HistUpperBound(found))
	}
}

func TestHistogramSnapshotAdd(t *testing.T) {
	var a, b Histogram
	a.Observe(0.5)
	b.Observe(0.5)
	b.Observe(1e12)
	sum := a.Snapshot().Add(b.Snapshot())
	if sum.Count() != 3 || sum.Inf != 1 {
		t.Errorf("aggregated snapshot = %+v", sum)
	}
}

// TestHistogramPrometheusRendering pins the exposition-format contract:
// one TYPE histogram line per family, cumulative buckets ending in
// le="+Inf", and _sum/_count rows whose count equals the +Inf bucket.
func TestHistogramPrometheusRendering(t *testing.T) {
	var h Histogram
	h.Observe(1e-6) // bucket 0
	h.Observe(1e-6) // bucket 0
	h.Observe(2e-6) // bucket 1
	h.Observe(1e9)  // +Inf

	var samples []Sample
	samples = AppendHistogram(samples, "harmony_phase_seconds",
		"Phase latency.", `phase="comp"`, h.Snapshot())
	samples = AppendHistogram(samples, "harmony_phase_seconds",
		"", `phase="pull"`, HistSnapshot{})
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, samples); err != nil {
		t.Fatal(err)
	}
	out := buf.String()

	if n := strings.Count(out, "# TYPE harmony_phase_seconds histogram"); n != 1 {
		t.Errorf("TYPE lines = %d, want exactly 1:\n%s", n, out)
	}
	for _, want := range []string{
		`harmony_phase_seconds_bucket{phase="comp",le="1e-06"} 2`,
		`harmony_phase_seconds_bucket{phase="comp",le="2e-06"} 3`, // cumulative
		`harmony_phase_seconds_bucket{phase="comp",le="+Inf"} 4`,
		`harmony_phase_seconds_count{phase="comp"} 4`,
		`harmony_phase_seconds_bucket{phase="pull",le="+Inf"} 0`,
		`harmony_phase_seconds_count{phase="pull"} 0`,
		`harmony_phase_seconds_sum{phase="pull"} 0`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("missing %q in rendering:\n%s", want, out)
		}
	}
	// _sum carries the observed seconds (1e-6+1e-6+2e-6+1e9 ≈ 1e9).
	sumOK := false
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, `harmony_phase_seconds_sum{phase="comp"}`) {
			fields := strings.Fields(line)
			v, err := strconv.ParseFloat(fields[len(fields)-1], 64)
			if err != nil {
				t.Fatalf("parse %q: %v", line, err)
			}
			sumOK = math.Abs(v-1e9) < 1
		}
	}
	if !sumOK {
		t.Errorf("missing comp _sum near 1e9:\n%s", out)
	}
	// Buckets must be monotonically non-decreasing within one series set.
	var prev float64 = -1
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, `harmony_phase_seconds_bucket{phase="comp"`) {
			continue
		}
		fields := strings.Fields(line)
		v, err := strconv.ParseFloat(fields[len(fields)-1], 64)
		if err != nil {
			t.Fatalf("parse %q: %v", line, err)
		}
		if v < prev {
			t.Errorf("bucket cumulativity violated at %q (prev %v)", line, prev)
		}
		prev = v
	}
}
