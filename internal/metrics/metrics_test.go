package metrics

import (
	"math"
	"testing"
	"testing/quick"

	"harmony/internal/simtime"
)

func TestResourceString(t *testing.T) {
	if CPU.String() != "CPU" || Net.String() != "Network" || Disk.String() != "Disk" {
		t.Error("resource names wrong")
	}
	if Resource(9).String() != "Resource(9)" {
		t.Error("unknown resource name wrong")
	}
}

func TestUtilRecorderSingleInterval(t *testing.T) {
	u := NewUtilRecorder(10, simtime.Minute)
	// 5 machines busy for 30s within the first minute: 150/600 = 0.25.
	u.AddBusy(CPU, 0, simtime.Time(30*simtime.Second), 5)
	series := u.Series(CPU)
	if len(series) != 1 {
		t.Fatalf("series length %d, want 1", len(series))
	}
	if math.Abs(series[0]-0.25) > 1e-9 {
		t.Errorf("utilization = %v, want 0.25", series[0])
	}
}

func TestUtilRecorderSpansBuckets(t *testing.T) {
	u := NewUtilRecorder(1, simtime.Minute)
	// Busy from 30s to 90s: half of bucket 0 and half of bucket 1.
	u.AddBusy(Net, simtime.Time(30*simtime.Second), simtime.Time(90*simtime.Second), 1)
	series := u.Series(Net)
	if len(series) != 2 {
		t.Fatalf("series length %d, want 2", len(series))
	}
	for i, v := range series {
		if math.Abs(v-0.5) > 1e-9 {
			t.Errorf("bucket %d = %v, want 0.5", i, v)
		}
	}
}

func TestUtilRecorderAccumulates(t *testing.T) {
	u := NewUtilRecorder(2, simtime.Minute)
	end := simtime.Time(simtime.Minute)
	u.AddBusy(CPU, 0, end, 1)
	u.AddBusy(CPU, 0, end, 1)
	if got := u.Series(CPU)[0]; math.Abs(got-1.0) > 1e-9 {
		t.Errorf("two disjoint machines = %v, want 1.0", got)
	}
}

func TestUtilRecorderIgnoresBadInput(t *testing.T) {
	u := NewUtilRecorder(1, simtime.Minute)
	u.AddBusy(CPU, simtime.Time(simtime.Second), 0, 1) // to <= from
	u.AddBusy(CPU, 0, simtime.Time(simtime.Second), 0) // n == 0
	u.AddBusy(Resource(99), 0, simtime.Time(simtime.Second), 1)
	if len(u.Series(CPU)) != 0 {
		t.Error("bad input recorded busy time")
	}
	if u.Series(Resource(99)) != nil {
		t.Error("unknown resource returned a series")
	}
}

func TestUtilMean(t *testing.T) {
	u := NewUtilRecorder(4, simtime.Minute)
	// 4 machines fully busy for 2 minutes, then idle for 2 minutes.
	u.AddBusy(CPU, 0, simtime.Time(2*simtime.Minute), 4)
	got := u.Mean(CPU, simtime.Time(4*simtime.Minute))
	if math.Abs(got-0.5) > 1e-9 {
		t.Errorf("Mean = %v, want 0.5", got)
	}
	if u.Mean(CPU, 0) != 0 {
		t.Error("Mean over empty window should be 0")
	}
}

// TestUtilConservation checks by property that total recorded busy time is
// preserved across bucket boundaries.
func TestUtilConservation(t *testing.T) {
	f := func(startSec, durSec uint16, n uint8) bool {
		u := NewUtilRecorder(100, simtime.Minute)
		from := simtime.Time(simtime.Duration(startSec) * simtime.Second)
		to := from.Add(simtime.Duration(durSec+1) * simtime.Second)
		machines := int(n%10) + 1
		u.AddBusy(CPU, from, to, machines)
		var sum float64
		for _, v := range u.Series(CPU) {
			sum += v * 60 * 100 // back to machine-seconds
		}
		want := to.Sub(from).Seconds() * float64(machines)
		return math.Abs(sum-want) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestJobRecordJCT(t *testing.T) {
	r := JobRecord{
		Submit: simtime.Time(simtime.Minute),
		Finish: simtime.Time(10 * simtime.Minute),
	}
	if got := r.JCT(); got != 9*simtime.Minute {
		t.Errorf("JCT = %v, want 9m", got)
	}
}

func TestSummarize(t *testing.T) {
	recs := []JobRecord{
		{ID: "a", Submit: 0, Finish: simtime.Time(10 * simtime.Minute)},
		{ID: "b", Submit: simtime.Time(2 * simtime.Minute), Finish: simtime.Time(22 * simtime.Minute)},
	}
	s := Summarize(recs, nil)
	if s.MeanJCT != 15*simtime.Minute {
		t.Errorf("MeanJCT = %v, want 15m", s.MeanJCT)
	}
	if s.Makespan != 22*simtime.Minute {
		t.Errorf("Makespan = %v, want 22m", s.Makespan)
	}
	if empty := Summarize(nil, nil); empty.Makespan != 0 || empty.MeanJCT != 0 {
		t.Error("empty summarize should be zero")
	}
}

func TestCDFAndPercentile(t *testing.T) {
	vals := []float64{3, 1, 2}
	cdf := CDF(vals)
	if cdf[0] != 1 || cdf[1] != 2 || cdf[2] != 3 {
		t.Errorf("CDF = %v, want sorted", cdf)
	}
	if vals[0] != 3 {
		t.Error("CDF mutated its input")
	}
	if got := Percentile(vals, 50); got != 2 {
		t.Errorf("P50 = %v, want 2", got)
	}
	if got := Percentile(vals, 100); got != 3 {
		t.Errorf("P100 = %v, want 3", got)
	}
	if got := Percentile(vals, 0); got != 1 {
		t.Errorf("P0 = %v, want 1", got)
	}
	if got := Percentile(nil, 50); got != 0 {
		t.Errorf("P50(empty) = %v, want 0", got)
	}
}

func TestMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3}); math.Abs(got-2) > 1e-12 {
		t.Errorf("Mean = %v, want 2", got)
	}
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %v, want 0", got)
	}
}
