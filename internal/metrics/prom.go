package metrics

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Prometheus sample types accepted by WritePrometheus.
const (
	PromCounter   = "counter"
	PromGauge     = "gauge"
	PromHistogram = "histogram"
)

// Sample is one Prometheus time-series value in the text exposition
// format (version 0.0.4). Name is the full series name and may carry a
// label suffix, e.g. `harmony_jobs{state="running"}`; all samples whose
// names share the part before '{' belong to one metric family and are
// announced by a single pair of # HELP / # TYPE lines.
type Sample struct {
	Name  string
	Help  string // family help text; the first non-empty one wins
	Type  string // PromCounter, PromGauge or PromHistogram (defaults to gauge)
	Value float64
	// Fam overrides the derived family name. Histogram series need it:
	// `x_bucket`, `x_sum` and `x_count` all belong to family `x`, whose
	// single TYPE line announces `histogram`.
	Fam string
}

// Family returns the metric-family name: Fam when set, otherwise the
// series name with any label suffix stripped.
func (s Sample) Family() string {
	if s.Fam != "" {
		return s.Fam
	}
	if i := strings.IndexByte(s.Name, '{'); i >= 0 {
		return s.Name[:i]
	}
	return s.Name
}

// WritePrometheus renders the samples in the Prometheus text exposition
// format. Families appear in first-seen order and series keep the order
// they were passed in, so output is deterministic for a fixed input.
func WritePrometheus(w io.Writer, samples []Sample) error {
	written := make(map[string]bool, len(samples))
	for i, s := range samples {
		fam := s.Family()
		if fam == "" {
			return fmt.Errorf("metrics: sample %d has an empty name", i)
		}
		if !written[fam] {
			written[fam] = true
			help := s.Help
			// The family is announced once; later samples may carry the
			// help text when the first one omits it.
			if help == "" {
				for _, t := range samples[i+1:] {
					if t.Family() == fam && t.Help != "" {
						help = t.Help
						break
					}
				}
			}
			typ := s.Type
			if typ == "" {
				typ = PromGauge
			}
			if help != "" {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", fam, escapeHelp(help)); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", fam, typ); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s %s\n", s.Name, formatValue(s.Value)); err != nil {
			return err
		}
	}
	return nil
}

// escapeHelp applies the exposition-format escaping for HELP lines:
// backslash and newline.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
