package metrics

import (
	"sync/atomic"
	"time"
)

// CompCounters aggregates the live compute path's health: decoded-block
// cache hits and misses in the workers' COMP fast path, and the wall time
// COMP subtasks stalled on synchronous block reloads (the §IV-C stall the
// background reloader tries to hide). Counters are atomic so every
// worker job in the process records without coordination, mirroring
// CommCounters on the data plane.
type CompCounters struct {
	blockHits   atomic.Int64
	blockMisses atomic.Int64
	stallNanos  atomic.Int64
}

// Comp is the process-wide compute-path counter set; the worker's block
// cache and the memstore reload path record into it and the control
// plane's /metrics endpoint exposes it.
var Comp CompCounters

// ObserveBlockHits records n COMP block accesses served from the
// decoded-block cache without touching the store payload.
func (c *CompCounters) ObserveBlockHits(n int64) {
	c.blockHits.Add(n)
}

// ObserveBlockMiss records one COMP block access that had to decode the
// stored payload (first touch, or re-decode after a spill evicted it).
func (c *CompCounters) ObserveBlockMiss() {
	c.blockMisses.Add(1)
}

// ObserveReloadStall records wall time a COMP subtask spent blocked on a
// synchronous reload of a spilled block.
func (c *CompCounters) ObserveReloadStall(d time.Duration) {
	c.stallNanos.Add(int64(d))
}

// CompSnapshot is a point-in-time copy of the compute-path counters.
type CompSnapshot struct {
	BlockHits          int64
	BlockMisses        int64
	ReloadStallSeconds float64
}

// Snapshot copies the counters; like CommCounters.Snapshot, a read taken
// mid-operation may be skewed by one in-flight op.
func (c *CompCounters) Snapshot() CompSnapshot {
	return CompSnapshot{
		BlockHits:          c.blockHits.Load(),
		BlockMisses:        c.blockMisses.Load(),
		ReloadStallSeconds: time.Duration(c.stallNanos.Load()).Seconds(),
	}
}

// Add accumulates another snapshot (cross-process aggregation).
func (s CompSnapshot) Add(o CompSnapshot) CompSnapshot {
	return CompSnapshot{
		BlockHits:          s.BlockHits + o.BlockHits,
		BlockMisses:        s.BlockMisses + o.BlockMisses,
		ReloadStallSeconds: s.ReloadStallSeconds + o.ReloadStallSeconds,
	}
}

// Samples renders the counters in the Prometheus families
// harmony_comp_block_cache_total (by result) and
// harmony_comp_reload_stall_seconds_total.
func (c *CompCounters) Samples() []Sample {
	return CompSamples(c.Snapshot())
}

// CompSamples renders a (possibly aggregated) snapshot in the same
// Prometheus families as CompCounters.Samples.
func CompSamples(s CompSnapshot) []Sample {
	return []Sample{
		{Name: `harmony_comp_block_cache_total{result="hit"}`,
			Help: "COMP input-block accesses, by decoded-block cache outcome.",
			Type: PromCounter, Value: float64(s.BlockHits)},
		{Name: `harmony_comp_block_cache_total{result="miss"}`,
			Type: PromCounter, Value: float64(s.BlockMisses)},
		{Name: "harmony_comp_reload_stall_seconds_total",
			Help: "Wall time COMP subtasks spent blocked on synchronous reloads of spilled input blocks.",
			Type: PromCounter, Value: s.ReloadStallSeconds},
	}
}
