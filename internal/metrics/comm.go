package metrics

import (
	"fmt"
	"os"
	"sync/atomic"
	"time"
)

// CommCounters aggregates live data-plane traffic: operation counts,
// bytes moved and cumulative latency for the PULL and PUSH subtasks.
// Counters are atomic so every ps.Client in the process (one per loaded
// job per worker) can record without coordination.
type CommCounters struct {
	pulls     atomic.Int64
	pushes    atomic.Int64
	pullBytes atomic.Int64
	pushBytes atomic.Int64
	pullNanos atomic.Int64
	pushNanos atomic.Int64
}

// Comm is the process-wide data-plane counter set; ps.Client records
// into it and the control plane's /metrics endpoint exposes it.
var Comm CommCounters

// processID distinguishes counter-owning processes so an aggregator
// (the master summing worker stats) can dedupe: in-process workers all
// report the same global Comm and must be counted once, while separate
// worker processes each contribute their own.
var processID = fmt.Sprintf("%d-%d", os.Getpid(), time.Now().UnixNano())

// ProcessID identifies this process's Comm counters; see CommSnapshot
// aggregation in the master.
func ProcessID() string { return processID }

// ObservePull records one completed full-model pull: payload bytes moved
// and wall-clock latency across the server fan-out.
func (c *CommCounters) ObservePull(bytes int64, d time.Duration) {
	c.pulls.Add(1)
	c.pullBytes.Add(bytes)
	c.pullNanos.Add(int64(d))
}

// ObservePush records one completed full-delta push.
func (c *CommCounters) ObservePush(bytes int64, d time.Duration) {
	c.pushes.Add(1)
	c.pushBytes.Add(bytes)
	c.pushNanos.Add(int64(d))
}

// CommSnapshot is a point-in-time copy of the data-plane counters.
type CommSnapshot struct {
	Pulls       int64
	Pushes      int64
	PullBytes   int64
	PushBytes   int64
	PullSeconds float64
	PushSeconds float64
}

// Snapshot copies the counters. The fields are read independently, so a
// snapshot taken mid-operation may be skewed by one in-flight op — fine
// for monitoring.
func (c *CommCounters) Snapshot() CommSnapshot {
	return CommSnapshot{
		Pulls:       c.pulls.Load(),
		Pushes:      c.pushes.Load(),
		PullBytes:   c.pullBytes.Load(),
		PushBytes:   c.pushBytes.Load(),
		PullSeconds: time.Duration(c.pullNanos.Load()).Seconds(),
		PushSeconds: time.Duration(c.pushNanos.Load()).Seconds(),
	}
}

// Add accumulates another snapshot (cross-process aggregation).
func (s CommSnapshot) Add(o CommSnapshot) CommSnapshot {
	return CommSnapshot{
		Pulls:       s.Pulls + o.Pulls,
		Pushes:      s.Pushes + o.Pushes,
		PullBytes:   s.PullBytes + o.PullBytes,
		PushBytes:   s.PushBytes + o.PushBytes,
		PullSeconds: s.PullSeconds + o.PullSeconds,
		PushSeconds: s.PushSeconds + o.PushSeconds,
	}
}

// Samples renders the counters in the Prometheus families
// harmony_comm_ops_total, harmony_comm_bytes_total and
// harmony_comm_seconds_total, labeled by op.
func (c *CommCounters) Samples() []Sample {
	return CommSamples(c.Snapshot())
}

// CommSamples renders an (possibly aggregated) snapshot in the same
// Prometheus families as CommCounters.Samples.
func CommSamples(s CommSnapshot) []Sample {
	return []Sample{
		{Name: `harmony_comm_ops_total{op="pull"}`,
			Help: "Completed data-plane operations, by op (pull or push).",
			Type: PromCounter, Value: float64(s.Pulls)},
		{Name: `harmony_comm_ops_total{op="push"}`,
			Type: PromCounter, Value: float64(s.Pushes)},
		{Name: `harmony_comm_bytes_total{op="pull"}`,
			Help: "Model payload bytes moved through the data plane, by op.",
			Type: PromCounter, Value: float64(s.PullBytes)},
		{Name: `harmony_comm_bytes_total{op="push"}`,
			Type: PromCounter, Value: float64(s.PushBytes)},
		{Name: `harmony_comm_seconds_total{op="pull"}`,
			Help: "Cumulative data-plane operation latency in seconds, by op.",
			Type: PromCounter, Value: s.PullSeconds},
		{Name: `harmony_comm_seconds_total{op="push"}`,
			Type: PromCounter, Value: s.PushSeconds},
	}
}
