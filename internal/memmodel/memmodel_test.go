package memmodel

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestGCFactorBelowKnee(t *testing.T) {
	for _, occ := range []float64{0, 0.1, 0.3, GCKneeOccupancy} {
		if got := GCFactor(occ); got != 0 {
			t.Errorf("GCFactor(%v) = %v, want 0 below knee", occ, got)
		}
	}
}

func TestGCFactorGrowth(t *testing.T) {
	// Strictly increasing past the knee, and steep near full occupancy.
	prev := 0.0
	for _, occ := range []float64{0.65, 0.75, 0.85, 0.92, 0.97, 0.99} {
		got := GCFactor(occ)
		if got <= prev {
			t.Errorf("GCFactor(%v) = %v, not increasing (prev %v)", occ, got, prev)
		}
		prev = got
	}
	if f := GCFactor(0.85); f < 0.1 || f > 0.4 {
		t.Errorf("GCFactor(0.85) = %v, want moderate slowdown in [0.1, 0.4]", f)
	}
	if f := GCFactor(0.99); f < 2 {
		t.Errorf("GCFactor(0.99) = %v, want severe slowdown >= 2", f)
	}
	if f := GCFactor(1.0); f != 100 {
		t.Errorf("GCFactor(1.0) = %v, want stall value 100", f)
	}
}

func TestCheck(t *testing.T) {
	if err := Check(30, 32); err != nil {
		t.Errorf("Check(30, 32) = %v, want nil", err)
	}
	if err := Check(33, 32); !errors.Is(err, ErrOOM) {
		t.Errorf("Check(33, 32) = %v, want ErrOOM", err)
	}
	if err := Check(31.5, 32); err == nil {
		t.Error("Check(31.5, 32) = nil, want ErrOOM past the GC overhead limit")
	}
	if err := Check(GCOverheadLimitOccupancy*32, 32); err != nil {
		t.Errorf("Check at the limit = %v, want nil", err)
	}
}

func TestOccupancy(t *testing.T) {
	tests := []struct {
		used, cap, want float64
	}{
		{16, 32, 0.5},
		{0, 32, 0},
		{-5, 32, 0},
		{10, 0, 1},
		{48, 32, 1.5},
	}
	for _, tt := range tests {
		if got := Occupancy(tt.used, tt.cap); got != tt.want {
			t.Errorf("Occupancy(%v, %v) = %v, want %v", tt.used, tt.cap, got, tt.want)
		}
	}
}

// TestGCFactorMonotone checks by property that more occupancy never means
// less GC overhead.
func TestGCFactorMonotone(t *testing.T) {
	f := func(a, b uint16) bool {
		x := float64(a) / 65535
		y := float64(b) / 65535
		if x > y {
			x, y = y, x
		}
		return GCFactor(x) <= GCFactor(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
