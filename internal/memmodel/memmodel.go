// Package memmodel is the analytical memory-pressure model used by the
// cluster simulator in place of a real managed runtime.
//
// The paper's system runs on the JVM, where co-locating jobs inflates heap
// occupancy and triggers garbage-collection overheads well before memory
// exhaustion, and out-of-memory errors once the working set exceeds
// capacity (§II-B, Fig. 4). This package reproduces both cliffs:
//
//   - OOM when resident heap exceeds machine capacity;
//   - a GC slowdown factor that is negligible below ~60% occupancy and
//     grows super-linearly as occupancy approaches 100%, matching the
//     "GC explodes" behaviour reported for low spill ratios in §V-G.
package memmodel

import "errors"

// ErrOOM reports that the combined working set of co-located jobs exceeds
// machine memory; in the paper this kills every co-located job (§VI).
var ErrOOM = errors.New("memmodel: out of memory")

// GCKneeOccupancy is the heap occupancy below which garbage collection is
// effectively free: generational collectors reclaim the young generation
// without touching the bulk of the heap.
const GCKneeOccupancy = 0.60

// GCOverheadLimitOccupancy is the occupancy at which the JVM gives up:
// nearly all CPU goes to collection and the runtime throws
// "GC overhead limit exceeded", which kills the process just like a hard
// allocation failure. Check treats this as OOM.
const GCOverheadLimitOccupancy = 0.97

// gcSteepness calibrates how quickly GC overhead grows past the knee. At
// 85% occupancy the factor is ~0.21 (21% slowdown), at 95% ~1.2, diverging
// toward full stalls as occupancy approaches 1.
const gcSteepness = 0.5

// maxGCFactor caps the GC slowdown at a full stall: a 100x-slower job is
// operationally dead, and unbounded factors would overflow virtual time.
const maxGCFactor = 100

// GCFactor returns the fraction of extra CPU time spent in garbage
// collection at the given heap occupancy: compute time is stretched by
// (1 + GCFactor). Occupancy at or above 1.0 is an OOM condition and
// reports a very large factor; callers should check Check first.
func GCFactor(occupancy float64) float64 {
	if occupancy <= GCKneeOccupancy {
		return 0
	}
	if occupancy >= 1 {
		return maxGCFactor // effectively stalled; Check reports ErrOOM before this matters
	}
	over := occupancy - GCKneeOccupancy
	f := gcSteepness * over * over / (1 - occupancy)
	if f > maxGCFactor {
		// The hyperbola diverges as occupancy approaches 1; cap it at the
		// stall value so downstream durations stay finite.
		f = maxGCFactor
	}
	return f
}

// Check validates that a working set of usedGB fits a machine with
// capacityGB of memory, returning ErrOOM when it does not — including the
// GC-overhead-limit cliff just below hard exhaustion.
func Check(usedGB, capacityGB float64) error {
	if usedGB > GCOverheadLimitOccupancy*capacityGB {
		return ErrOOM
	}
	return nil
}

// Occupancy returns usedGB/capacityGB clamped to [0, ∞); a capacity of
// zero or less reports full occupancy.
func Occupancy(usedGB, capacityGB float64) float64 {
	if capacityGB <= 0 {
		return 1
	}
	if usedGB < 0 {
		return 0
	}
	return usedGB / capacityGB
}
