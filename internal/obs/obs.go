// Package obs is the live runtime's telemetry subsystem: a low-overhead
// per-worker span recorder for the §IV-A subtask phases, phase latency
// histograms built on the same stream, and a Chrome-trace-event exporter
// so subtask overlap across co-located jobs is inspectable in Perfetto.
//
// Tracing is opt-in. A nil *Recorder is valid everywhere and records
// nothing — the instrumentation in the worker and the subtask executor
// compiles down to a nil check with zero allocations, keeping the
// zero-alloc hot paths of the data and compute planes intact (pinned by
// TestNilRecorderZeroAllocs).
package obs

import (
	"sync"
	"time"

	"harmony/internal/metrics"
)

// Version is the build version stamped into /healthz and the
// harmony_build_info metric; override at link time with
//
//	go build -ldflags "-X harmony/internal/obs.Version=v1.2.3"
var Version = "dev"

// Phase identifies one instrumented interval of a worker's subtask
// cycle.
type Phase uint8

// Phases. Comp/Pull/Push are subtask executions on their resource lane,
// WaitCPU/WaitNet are executor slot waits (queued behind another job's
// subtask, §IV-A runner queues), and Barrier is the iteration-boundary
// synchronization with the master (Fig. 7).
const (
	PhaseComp Phase = iota
	PhasePull
	PhasePush
	PhaseWaitCPU
	PhaseWaitNet
	PhaseBarrier
	// NumPhases sizes per-phase tables; keep it last.
	NumPhases
)

// String names the phase as it appears in metric labels and trace
// categories.
func (p Phase) String() string {
	switch p {
	case PhaseComp:
		return "comp"
	case PhasePull:
		return "pull"
	case PhasePush:
		return "push"
	case PhaseWaitCPU:
		return "wait_cpu"
	case PhaseWaitNet:
		return "wait_net"
	case PhaseBarrier:
		return "barrier"
	default:
		return "unknown"
	}
}

// IsComm reports whether the phase occupies the network resource.
func (p Phase) IsComm() bool { return p == PhasePull || p == PhasePush }

// Span is one recorded interval: a phase of one job's iteration on the
// recording worker. Start and End are wall-clock unix nanoseconds so
// spans from different processes align on one timeline.
type Span struct {
	// Seq is the recorder-local monotone sequence number, starting at 1.
	// Consumers resume collection with SpansAfter(lastSeq).
	Seq   uint64
	Phase Phase
	Job   string
	Iter  int
	Start int64
	End   int64
}

// Seconds is the span's duration.
func (s Span) Seconds() float64 {
	return time.Duration(s.End - s.Start).Seconds()
}

// TaggedSpan is a span annotated by the collector with cluster context
// the worker does not know: its machine and the co-location group the
// job belonged to at collection time.
type TaggedSpan struct {
	Span
	Machine string
	Group   string
}

// Recorder buffers spans in a bounded ring: recording is one mutex'd
// copy into a preallocated slot (no allocation), the sequence is
// monotone for the recorder's lifetime, and overflow drops the oldest
// spans — telemetry must never stall or grow the worker. Each Record
// also feeds the per-phase latency histogram.
//
// All methods are safe on a nil receiver (no-ops / zero values), so
// "tracing off" is represented by a nil recorder.
type Recorder struct {
	mu   sync.Mutex
	buf  []Span
	next uint64 // total spans ever recorded; last assigned Seq
	hist [NumPhases]metrics.Histogram
}

// DefaultSpanCapacity bounds the ring when callers pass 0: at ~80 bytes
// a span this is a few MB per worker, hours of spans at live iteration
// rates.
const DefaultSpanCapacity = 1 << 16

// NewRecorder creates a recorder holding up to capacity spans
// (DefaultSpanCapacity when capacity <= 0).
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultSpanCapacity
	}
	return &Recorder{buf: make([]Span, capacity)}
}

// Record appends one span and feeds the phase histogram. Nil-safe and
// allocation-free.
func (r *Recorder) Record(phase Phase, job string, iter int, start, end time.Time) {
	if r == nil {
		return
	}
	if phase >= NumPhases || end.Before(start) {
		return
	}
	r.hist[phase].Observe(end.Sub(start).Seconds())
	r.mu.Lock()
	r.next++
	r.buf[(r.next-1)%uint64(len(r.buf))] = Span{
		Seq: r.next, Phase: phase, Job: job, Iter: iter,
		Start: start.UnixNano(), End: end.UnixNano(),
	}
	r.mu.Unlock()
}

// LastSeq reports the most recently assigned sequence number (0 before
// the first span).
func (r *Recorder) LastSeq() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.next
}

// SpansAfter appends to dst every retained span with Seq > after, in
// sequence order. Spans already evicted by ring overflow are silently
// absent — the consumer sees a sequence gap and knows it fell behind.
func (r *Recorder) SpansAfter(after uint64, dst []Span) []Span {
	if r == nil {
		return dst
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	lo := after + 1
	if n := uint64(len(r.buf)); r.next > n && lo <= r.next-n {
		lo = r.next - n + 1
	}
	for s := lo; s <= r.next; s++ {
		dst = append(dst, r.buf[(s-1)%uint64(len(r.buf))])
	}
	return dst
}

// HistSnapshots copies the per-phase latency histograms, indexable by
// Phase. Zero-valued on a nil recorder.
func (r *Recorder) HistSnapshots() [NumPhases]metrics.HistSnapshot {
	var out [NumPhases]metrics.HistSnapshot
	if r == nil {
		return out
	}
	for p := range out {
		out[p] = r.hist[p].Snapshot()
	}
	return out
}
