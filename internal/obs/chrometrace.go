package obs

import (
	"encoding/json"
	"io"
	"sort"
)

// Trace-event track (tid) layout: one Perfetto "thread" per
// machine×resource, so co-located jobs' COMP and COMM subtasks render as
// stacked slices on shared tracks and their overlap is visible at a
// glance.
const (
	trackCPU = iota + 1
	trackNet
	trackCPUQueue
	trackNetQueue
	trackSync
)

func (p Phase) track() int {
	switch p {
	case PhaseComp:
		return trackCPU
	case PhasePull, PhasePush:
		return trackNet
	case PhaseWaitCPU:
		return trackCPUQueue
	case PhaseWaitNet:
		return trackNetQueue
	default:
		return trackSync
	}
}

var trackNames = map[int]string{
	trackCPU:      "cpu",
	trackNet:      "network",
	trackCPUQueue: "cpu queue",
	trackNetQueue: "network queue",
	trackSync:     "sync",
}

// chromeEvent is one entry of the Chrome trace-event JSON format
// (ph "X" complete events plus "M" metadata), accepted by Perfetto and
// chrome://tracing.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"` // microseconds
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace renders collected spans as Chrome trace-event JSON:
// one process per machine, one track per resource (cpu, network, the
// two executor queues, and barrier sync), slices named by job so two
// co-located jobs' subtasks are distinguishable on a shared track.
func WriteChromeTrace(w io.Writer, spans []TaggedSpan) error {
	machines := make([]string, 0, 4)
	seen := make(map[string]int)
	for _, s := range spans {
		if _, ok := seen[s.Machine]; !ok {
			seen[s.Machine] = 0
			machines = append(machines, s.Machine)
		}
	}
	sort.Strings(machines)
	for i, m := range machines {
		seen[m] = i + 1 // pid 0 renders oddly in some viewers
	}

	tr := chromeTrace{DisplayTimeUnit: "ms",
		TraceEvents: make([]chromeEvent, 0, len(spans)+6*len(machines))}
	for _, m := range machines {
		pid := seen[m]
		tr.TraceEvents = append(tr.TraceEvents, chromeEvent{
			Name: "process_name", Ph: "M", PID: pid,
			Args: map[string]any{"name": m},
		})
		for tid := trackCPU; tid <= trackSync; tid++ {
			tr.TraceEvents = append(tr.TraceEvents, chromeEvent{
				Name: "thread_name", Ph: "M", PID: pid, TID: tid,
				Args: map[string]any{"name": trackNames[tid]},
			})
		}
	}
	for _, s := range spans {
		tr.TraceEvents = append(tr.TraceEvents, chromeEvent{
			Name: s.Job + " " + s.Phase.String(),
			Cat:  s.Phase.String(),
			Ph:   "X",
			TS:   float64(s.Start) / 1e3,
			Dur:  float64(s.End-s.Start) / 1e3,
			PID:  seen[s.Machine],
			TID:  s.Phase.track(),
			Args: map[string]any{
				"job": s.Job, "iter": s.Iter, "group": s.Group, "seq": s.Seq,
			},
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(tr)
}

// OverlapByGroup measures, per co-location group, the fraction of
// instrumented machine time where COMP and COMM subtasks ran
// simultaneously — the live check of the paper's §IV-A claim that
// co-located complementary jobs keep CPU and network busy at once.
// For each machine of a group, the union of COMP intervals is
// intersected with the union of PULL/PUSH intervals; the ratio is
// Σ intersections / Σ unions of all subtask activity.
//
// The second return distinguishes "no overlap" from "no data": ok[g] is
// true only when group g has spans in both phase classes, i.e. a
// measured zero. Consumers recalibrating predictions (the interleaving
// feedback loop) must skip groups with ok false rather than treat their
// 0 as a measurement.
func OverlapByGroup(spans []TaggedSpan) (ratio map[string]float64, ok map[string]bool) {
	type key struct{ group, machine string }
	comp := make(map[key][]ival)
	comm := make(map[key][]ival)
	for _, s := range spans {
		k := key{s.Group, s.Machine}
		switch {
		case s.Phase == PhaseComp:
			comp[k] = append(comp[k], ival{s.Start, s.End})
		case s.Phase.IsComm():
			comm[k] = append(comm[k], ival{s.Start, s.End})
		}
	}
	overlap := make(map[string]int64)
	busy := make(map[string]int64)
	hasComp := make(map[string]bool)
	hasComm := make(map[string]bool)
	keys := make(map[key]bool)
	for k := range comp {
		keys[k] = true
	}
	for k := range comm {
		keys[k] = true
	}
	for k := range keys {
		cu := mergeIvals(comp[k])
		nu := mergeIvals(comm[k])
		if lenIvals(cu) > 0 {
			hasComp[k.group] = true
		}
		if lenIvals(nu) > 0 {
			hasComm[k.group] = true
		}
		overlap[k.group] += intersectSeconds(cu, nu)
		busy[k.group] += lenIvals(mergeIvals(append(cu, nu...)))
	}
	ratio = make(map[string]float64, len(busy))
	ok = make(map[string]bool, len(busy))
	for g, b := range busy {
		if b > 0 {
			ratio[g] = float64(overlap[g]) / float64(b)
		} else {
			ratio[g] = 0
		}
		ok[g] = b > 0 && hasComp[g] && hasComm[g]
	}
	return ratio, ok
}

type ival struct{ s, e int64 }

// mergeIvals returns the sorted union of the intervals.
func mergeIvals(in []ival) []ival {
	if len(in) == 0 {
		return nil
	}
	sorted := append([]ival(nil), in...)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a].s < sorted[b].s })
	out := sorted[:1]
	for _, iv := range sorted[1:] {
		last := &out[len(out)-1]
		if iv.s <= last.e {
			if iv.e > last.e {
				last.e = iv.e
			}
			continue
		}
		out = append(out, iv)
	}
	return out
}

// intersectSeconds sums the pairwise intersection of two interval
// unions (both sorted and disjoint).
func intersectSeconds(a, b []ival) int64 {
	var total int64
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		s := max64(a[i].s, b[j].s)
		e := min64(a[i].e, b[j].e)
		if e > s {
			total += e - s
		}
		if a[i].e < b[j].e {
			i++
		} else {
			j++
		}
	}
	return total
}

func lenIvals(in []ival) int64 {
	var total int64
	for _, iv := range in {
		total += iv.e - iv.s
	}
	return total
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
