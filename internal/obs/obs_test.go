package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"
	"time"
)

func at(ms int64) time.Time { return time.Unix(0, ms*int64(time.Millisecond)) }

func TestRecorderSequenceAndDrain(t *testing.T) {
	r := NewRecorder(8)
	for i := 0; i < 5; i++ {
		r.Record(PhaseComp, "a", i, at(int64(i)), at(int64(i)+1))
	}
	if r.LastSeq() != 5 {
		t.Fatalf("LastSeq = %d, want 5", r.LastSeq())
	}
	spans := r.SpansAfter(0, nil)
	if len(spans) != 5 {
		t.Fatalf("got %d spans, want 5", len(spans))
	}
	for i, s := range spans {
		if s.Seq != uint64(i+1) || s.Iter != i || s.Job != "a" {
			t.Errorf("span %d = %+v", i, s)
		}
	}
	// Resuming from a cursor returns only newer spans.
	tail := r.SpansAfter(3, nil)
	if len(tail) != 2 || tail[0].Seq != 4 {
		t.Errorf("SpansAfter(3) = %+v", tail)
	}
	if got := r.SpansAfter(5, nil); len(got) != 0 {
		t.Errorf("SpansAfter(lastSeq) = %+v, want empty", got)
	}
}

// TestRecorderOverflowDropsOldest pins the ring contract: over capacity,
// the oldest spans are evicted, sequence numbers stay monotone with no
// reuse, and a stale cursor resumes at the oldest retained span.
func TestRecorderOverflowDropsOldest(t *testing.T) {
	const capacity = 4
	r := NewRecorder(capacity)
	for i := 0; i < 10; i++ {
		r.Record(PhasePull, "a", i, at(int64(i)), at(int64(i)+1))
	}
	if r.LastSeq() != 10 {
		t.Fatalf("LastSeq = %d, want 10", r.LastSeq())
	}
	spans := r.SpansAfter(0, nil)
	if len(spans) != capacity {
		t.Fatalf("retained %d spans, want %d", len(spans), capacity)
	}
	for i, s := range spans {
		want := uint64(10 - capacity + 1 + i) // 7, 8, 9, 10
		if s.Seq != want {
			t.Errorf("span %d Seq = %d, want %d", i, s.Seq, want)
		}
		if i > 0 && s.Seq <= spans[i-1].Seq {
			t.Errorf("sequence not monotone at %d: %d after %d", i, s.Seq, spans[i-1].Seq)
		}
	}
	// A cursor pointing into the evicted range sees the retained suffix.
	if got := r.SpansAfter(2, nil); len(got) != capacity || got[0].Seq != 7 {
		t.Errorf("stale cursor drain = %+v", got)
	}
}

func TestRecorderHistograms(t *testing.T) {
	r := NewRecorder(8)
	r.Record(PhaseComp, "a", 0, at(0), at(10))   // 10ms
	r.Record(PhaseComp, "a", 1, at(0), at(20))   // 20ms
	r.Record(PhaseBarrier, "a", 0, at(0), at(1)) // 1ms
	hs := r.HistSnapshots()
	if hs[PhaseComp].Count() != 2 {
		t.Errorf("comp count = %d, want 2", hs[PhaseComp].Count())
	}
	if math.Abs(hs[PhaseComp].Sum-0.030) > 1e-9 {
		t.Errorf("comp sum = %v, want 0.030", hs[PhaseComp].Sum)
	}
	if hs[PhaseBarrier].Count() != 1 || hs[PhasePull].Count() != 0 {
		t.Errorf("histograms = %+v", hs)
	}
}

// TestNilRecorderZeroAllocs pins the flag-off cost: with tracing
// disabled the recorder is nil and every instrumentation point must be
// a nil check — zero allocations — so the PR 3/4 zero-alloc hot paths
// stay zero-alloc.
func TestNilRecorderZeroAllocs(t *testing.T) {
	var r *Recorder
	start := time.Now()
	end := start.Add(time.Millisecond)
	allocs := testing.AllocsPerRun(100, func() {
		r.Record(PhaseComp, "job", 3, start, end)
		r.Record(PhasePull, "job", 3, start, end)
		_ = r.SpansAfter(0, nil)
		_ = r.LastSeq()
	})
	if allocs != 0 {
		t.Fatalf("nil recorder allocates %.1f per run, want 0", allocs)
	}
}

// TestRecordSteadyStateZeroAllocs: even enabled, recording into the
// preallocated ring must not allocate.
func TestRecordSteadyStateZeroAllocs(t *testing.T) {
	r := NewRecorder(16)
	start := time.Now()
	end := start.Add(time.Millisecond)
	allocs := testing.AllocsPerRun(100, func() {
		r.Record(PhaseComp, "job", 3, start, end)
	})
	if allocs != 0 {
		t.Fatalf("enabled recorder allocates %.1f per span, want 0", allocs)
	}
}

func TestWriteChromeTrace(t *testing.T) {
	spans := []TaggedSpan{
		{Span: Span{Seq: 1, Phase: PhaseComp, Job: "a", Iter: 0,
			Start: 1_000_000, End: 5_000_000}, Machine: "w0", Group: "w0,w1"},
		{Span: Span{Seq: 2, Phase: PhasePull, Job: "b", Iter: 0,
			Start: 2_000_000, End: 4_000_000}, Machine: "w0", Group: "w0,w1"},
		{Span: Span{Seq: 1, Phase: PhasePush, Job: "a", Iter: 0,
			Start: 3_000_000, End: 6_000_000}, Machine: "w1", Group: "w0,w1"},
	}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, spans); err != nil {
		t.Fatal(err)
	}
	var tr struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			TS   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			PID  int            `json:"pid"`
			TID  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tr); err != nil {
		t.Fatalf("trace is not valid JSON: %v\n%s", err, buf.String())
	}
	var complete, meta int
	pidOf := map[string]int{}
	for _, e := range tr.TraceEvents {
		switch e.Ph {
		case "X":
			complete++
			if e.Dur <= 0 {
				t.Errorf("complete event %q has dur %v", e.Name, e.Dur)
			}
		case "M":
			meta++
			if e.Name == "process_name" {
				pidOf[e.Args["name"].(string)] = e.PID
			}
		}
	}
	if complete != 3 {
		t.Errorf("complete events = %d, want 3", complete)
	}
	if pidOf["w0"] == 0 || pidOf["w1"] == 0 || pidOf["w0"] == pidOf["w1"] {
		t.Errorf("machine pids = %v, want distinct nonzero", pidOf)
	}
	// COMP and PULL on the same machine must land on different tracks.
	var compTID, pullTID = -1, -1
	for _, e := range tr.TraceEvents {
		if e.Ph != "X" || e.PID != pidOf["w0"] {
			continue
		}
		switch e.Args["job"] {
		case "a":
			compTID = e.TID
		case "b":
			pullTID = e.TID
		}
	}
	if compTID < 0 || pullTID < 0 || compTID == pullTID {
		t.Errorf("cpu/net tracks not separated: comp tid %d, pull tid %d", compTID, pullTID)
	}
	// An empty trace is still valid JSON with an events array.
	buf.Reset()
	if err := WriteChromeTrace(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(buf.Bytes(), &tr); err != nil || tr.TraceEvents == nil {
		t.Errorf("empty trace invalid: %v / %s", err, buf.String())
	}
}

func TestOverlapByGroup(t *testing.T) {
	g := "w0,w1"
	ms := func(v int64) int64 { return v * int64(time.Millisecond) }
	spans := []TaggedSpan{
		// w0: comp [0,100), comm [50,150) → overlap 50ms, busy 150ms.
		{Span: Span{Phase: PhaseComp, Start: ms(0), End: ms(100)}, Machine: "w0", Group: g},
		{Span: Span{Phase: PhasePull, Start: ms(50), End: ms(150)}, Machine: "w0", Group: g},
		// w1: disjoint comp and comm → overlap 0, busy 100ms.
		{Span: Span{Phase: PhaseComp, Start: ms(0), End: ms(50)}, Machine: "w1", Group: g},
		{Span: Span{Phase: PhasePush, Start: ms(50), End: ms(100)}, Machine: "w1", Group: g},
		// Barrier spans are neither comp nor comm and must be ignored.
		{Span: Span{Phase: PhaseBarrier, Start: ms(0), End: ms(500)}, Machine: "w0", Group: g},
	}
	got, ok := OverlapByGroup(spans)
	want := 50.0 / 250.0
	if math.Abs(got[g]-want) > 1e-12 {
		t.Errorf("overlap[%s] = %v, want %v", g, got[g], want)
	}
	if len(got) != 1 {
		t.Errorf("groups = %v", got)
	}
	if !ok[g] {
		t.Errorf("ok[%s] = false, want true for a group with both phase classes", g)
	}
}

// TestOverlapByGroupInsufficientSamples pins the no-data semantics: a
// group whose spans cover only one phase class reports ratio 0 with ok
// false, so recalibration can tell "no overlap measured" apart from
// "nothing to measure".
func TestOverlapByGroupInsufficientSamples(t *testing.T) {
	ms := func(v int64) int64 { return v * int64(time.Millisecond) }
	spans := []TaggedSpan{
		// compOnly: COMP spans but no COMM at all.
		{Span: Span{Phase: PhaseComp, Start: ms(0), End: ms(100)}, Machine: "w0", Group: "compOnly"},
		// commOnly: COMM spans but no COMP.
		{Span: Span{Phase: PhasePull, Start: ms(0), End: ms(80)}, Machine: "w1", Group: "commOnly"},
		// both: a real measured zero (disjoint phases on one machine).
		{Span: Span{Phase: PhaseComp, Start: ms(0), End: ms(50)}, Machine: "w2", Group: "both"},
		{Span: Span{Phase: PhasePush, Start: ms(50), End: ms(100)}, Machine: "w2", Group: "both"},
	}
	got, ok := OverlapByGroup(spans)
	for _, g := range []string{"compOnly", "commOnly", "both"} {
		if got[g] != 0 {
			t.Errorf("overlap[%s] = %v, want 0", g, got[g])
		}
	}
	if ok["compOnly"] || ok["commOnly"] {
		t.Errorf("ok for one-phase-class groups = (%v, %v), want false", ok["compOnly"], ok["commOnly"])
	}
	if !ok["both"] {
		t.Error("ok[both] = false, want true: zero overlap with both classes present is a measurement")
	}
}
