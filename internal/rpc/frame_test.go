package rpc

import (
	"bytes"
	"encoding/binary"
	"math"
	"testing"
)

func bitsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

func TestFloatsRoundTripSpecialValues(t *testing.T) {
	vals := []float64{
		0, math.Copysign(0, -1), 1.5, -2.25e300, 5e-324,
		math.Inf(1), math.Inf(-1), math.NaN(),
		// A NaN with a non-default payload must survive bit-exactly.
		math.Float64frombits(0x7ff8_0000_dead_beef),
	}
	frame := AppendFloats(nil, vals)
	if len(frame) != FloatsLen(len(vals)) {
		t.Fatalf("frame length = %d, want %d", len(frame), FloatsLen(len(vals)))
	}
	got, rest, err := ReadFloats(frame, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 0 {
		t.Errorf("rest = %d bytes, want 0", len(rest))
	}
	if !bitsEqual(got, vals) {
		t.Errorf("round trip not bit-exact:\n got %v\nwant %v", got, vals)
	}
}

func TestFloatsRoundTripWithTrailingBytes(t *testing.T) {
	vals := []float64{3.14, -1}
	frame := AppendFloats(nil, vals)
	frame = append(frame, 0xAA, 0xBB)
	got, rest, err := ReadFloats(frame, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bitsEqual(got, vals) {
		t.Errorf("values corrupted: %v", got)
	}
	if !bytes.Equal(rest, []byte{0xAA, 0xBB}) {
		t.Errorf("rest = %x, want aabb", rest)
	}
}

func TestReadFloatsReusesBuffer(t *testing.T) {
	frame := AppendFloats(nil, []float64{1, 2, 3})
	dst := make([]float64, 0, 8)
	got, _, err := ReadFloats(frame, dst)
	if err != nil {
		t.Fatal(err)
	}
	if &got[:1][0] != &dst[:1][0] {
		t.Error("ReadFloats allocated despite sufficient dst capacity")
	}
}

func TestFloatFrameTruncated(t *testing.T) {
	frame := AppendFloats(nil, []float64{1, 2, 3, 4})
	for cut := 0; cut < len(frame); cut++ {
		if _, _, _, err := FloatFrame(frame[:cut]); err == nil {
			t.Errorf("FloatFrame accepted a frame truncated to %d of %d bytes", cut, len(frame))
		}
	}
}

func TestFloatFrameCountLimit(t *testing.T) {
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(maxFrame/8+1))
	if _, _, _, err := FloatFrame(hdr[:]); err == nil {
		t.Error("FloatFrame accepted an over-limit count")
	}
}

func TestStringAndUint32RoundTrip(t *testing.T) {
	b := AppendString(nil, "job-0")
	b = AppendUint32(b, 123456)
	s, rest, err := ReadString(b)
	if err != nil || s != "job-0" {
		t.Fatalf("ReadString = %q, %v", s, err)
	}
	v, rest, err := ReadUint32(rest)
	if err != nil || v != 123456 {
		t.Fatalf("ReadUint32 = %d, %v", v, err)
	}
	if len(rest) != 0 {
		t.Errorf("rest = %d bytes", len(rest))
	}
	if _, _, err := ReadString([]byte{9}); err == nil {
		t.Error("ReadString accepted truncated header")
	}
	if _, _, err := ReadString([]byte{5, 0, 'a'}); err == nil {
		t.Error("ReadString accepted truncated body")
	}
	if _, _, err := ReadUint32([]byte{1, 2}); err == nil {
		t.Error("ReadUint32 accepted truncated input")
	}
}

func TestBufferPoolRecycling(t *testing.T) {
	b := GetBuffer(100)
	if len(b) != 100 || cap(b) < minPooledBuffer {
		t.Fatalf("GetBuffer(100): len %d cap %d", len(b), cap(b))
	}
	PutBuffer(b)
	// Nil and oversized puts must be dropped without panicking.
	PutBuffer(nil)
	PutBuffer(make([]byte, maxPooledBuffer+1))
	big := GetBuffer(3 << 20)
	if len(big) != 3<<20 || cap(big)&(cap(big)-1) != 0 {
		t.Errorf("GetBuffer(3MiB): len %d cap %d (want pow-2 cap)", len(big), cap(big))
	}
	PutBuffer(big)
}

// FuzzFloatFrame feeds arbitrary bytes to the frame validator: it must
// never panic, and whenever it accepts a frame, re-encoding the decoded
// values must reproduce the accepted bytes exactly.
func FuzzFloatFrame(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{1, 0, 0, 0, 1, 2, 3})                     // truncated values
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})                  // absurd count
	f.Add(AppendFloats(nil, []float64{math.NaN(), 1e300})) // valid frame
	f.Fuzz(func(t *testing.T, data []byte) {
		count, vals, rest, err := FloatFrame(data)
		if err != nil {
			return
		}
		if len(vals) != 8*count {
			t.Fatalf("data section %d bytes for count %d", len(vals), count)
		}
		if len(rest)+len(vals)+4 != len(data) {
			t.Fatalf("frame accounting: %d + %d + 4 != %d", len(rest), len(vals), len(data))
		}
		decoded, rest2, err := ReadFloats(data, nil)
		if err != nil || len(decoded) != count || len(rest2) != len(rest) {
			t.Fatalf("ReadFloats disagrees with FloatFrame: %v", err)
		}
		re := AppendFloats(nil, decoded)
		if !bytes.Equal(re, data[:len(data)-len(rest)]) {
			t.Fatal("re-encoding an accepted frame changed its bytes")
		}
	})
}

// FuzzFloatsRoundTrip encodes fuzz-derived float64 bit patterns (NaNs,
// infinities, denormals included) and checks bit-exact decoding.
func FuzzFloatsRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add(binary.LittleEndian.AppendUint64(nil, math.Float64bits(math.NaN())))
	f.Add(binary.LittleEndian.AppendUint64(nil, math.Float64bits(math.Inf(-1))))
	f.Fuzz(func(t *testing.T, data []byte) {
		vals := make([]float64, 0, len(data)/8)
		for len(data) >= 8 {
			vals = append(vals, math.Float64frombits(binary.LittleEndian.Uint64(data)))
			data = data[8:]
		}
		frame := AppendFloats(nil, vals)
		got, rest, err := ReadFloats(frame, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(rest) != 0 || !bitsEqual(got, vals) {
			t.Fatal("round trip not bit-exact")
		}
	})
}
