package rpc

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"time"
)

// Encode gob-encodes a value for use as a request or response body.
func Encode(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, fmt.Errorf("rpc: encode %T: %w", v, err)
	}
	return buf.Bytes(), nil
}

// Decode gob-decodes body into out (a pointer).
func Decode(body []byte, out any) error {
	if err := gob.NewDecoder(bytes.NewReader(body)).Decode(out); err != nil {
		return fmt.Errorf("rpc: decode %T: %w", out, err)
	}
	return nil
}

// Typed wraps a strongly-typed handler function as a raw Handler.
func Typed[Arg, Reply any](fn func(Arg) (Reply, error)) Handler {
	return func(raw []byte) ([]byte, error) {
		var arg Arg
		if err := Decode(raw, &arg); err != nil {
			return nil, err
		}
		reply, err := fn(arg)
		if err != nil {
			return nil, err
		}
		return Encode(reply)
	}
}

// Invoke performs a strongly-typed call on a client.
func Invoke[Arg, Reply any](c *Client, method string, arg Arg, timeout time.Duration) (Reply, error) {
	var reply Reply
	raw, err := Encode(arg)
	if err != nil {
		return reply, err
	}
	body, err := c.Call(method, raw, timeout)
	if err != nil {
		return reply, err
	}
	if err := Decode(body, &reply); err != nil {
		return reply, err
	}
	return reply, nil
}
