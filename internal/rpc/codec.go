package rpc

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"time"
)

// Encode gob-encodes a value for use as a request or response body. The
// returned slice is backed by pool memory when available; transient users
// (Invoke, Typed) hand it back via PutBuffer after the bytes are written.
func Encode(v any) ([]byte, error) {
	buf := bytes.NewBuffer(GetBuffer(0))
	if err := gob.NewEncoder(buf).Encode(v); err != nil {
		return nil, fmt.Errorf("rpc: encode %T: %w", v, err)
	}
	return buf.Bytes(), nil
}

// Decode gob-decodes body into out (a pointer).
func Decode(body []byte, out any) error {
	if err := gob.NewDecoder(bytes.NewReader(body)).Decode(out); err != nil {
		return fmt.Errorf("rpc: decode %T: %w", out, err)
	}
	return nil
}

// Typed wraps a strongly-typed handler function as a raw Handler.
func Typed[Arg, Reply any](fn func(Arg) (Reply, error)) Handler {
	return func(raw []byte) ([]byte, error) {
		var arg Arg
		if err := Decode(raw, &arg); err != nil {
			return nil, err
		}
		reply, err := fn(arg)
		if err != nil {
			return nil, err
		}
		return Encode(reply)
	}
}

// Invoke performs a strongly-typed call on a client. Request and response
// buffers cycle through the shared pool: gob stays the control-plane
// codec without the control plane paying a fresh allocation per call.
func Invoke[Arg, Reply any](c *Client, method string, arg Arg, timeout time.Duration) (Reply, error) {
	var reply Reply
	raw, err := Encode(arg)
	if err != nil {
		return reply, err
	}
	body, err := c.Call(method, raw, timeout)
	// Call writes the request synchronously before waiting, so raw is
	// flushed (or dead) by the time it returns on every path.
	PutBuffer(raw)
	if err != nil {
		return reply, err
	}
	err = Decode(body, &reply)
	PutBuffer(body)
	if err != nil {
		return reply, err
	}
	return reply, nil
}
