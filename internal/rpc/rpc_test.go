package rpc

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

type echoArgs struct {
	Text string
	N    int
}

type echoReply struct {
	Text string
}

func startServer(t *testing.T) (*Server, string) {
	t.Helper()
	srv := NewServer()
	srv.Handle("echo", Typed(func(a echoArgs) (echoReply, error) {
		return echoReply{Text: strings.Repeat(a.Text, a.N)}, nil
	}))
	srv.Handle("fail", Typed(func(a echoArgs) (echoReply, error) {
		return echoReply{}, errors.New("deliberate failure")
	}))
	srv.Handle("slow", Typed(func(a echoArgs) (echoReply, error) {
		time.Sleep(200 * time.Millisecond)
		return echoReply{Text: "late"}, nil
	}))
	srv.Handle("panic", Typed(func(a echoArgs) (echoReply, error) {
		panic("handler exploded")
	}))
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, addr
}

func dial(t *testing.T, addr string) *Client {
	t.Helper()
	c, err := Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestCallRoundTrip(t *testing.T) {
	_, addr := startServer(t)
	c := dial(t, addr)
	reply, err := Invoke[echoArgs, echoReply](c, "echo", echoArgs{Text: "ab", N: 3}, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if reply.Text != "ababab" {
		t.Errorf("reply = %q, want ababab", reply.Text)
	}
}

func TestCallHandlerError(t *testing.T) {
	_, addr := startServer(t)
	c := dial(t, addr)
	_, err := Invoke[echoArgs, echoReply](c, "fail", echoArgs{}, time.Second)
	if err == nil || !strings.Contains(err.Error(), "deliberate failure") {
		t.Errorf("err = %v, want handler error surfaced", err)
	}
}

func TestCallUnknownMethod(t *testing.T) {
	_, addr := startServer(t)
	c := dial(t, addr)
	_, err := Invoke[echoArgs, echoReply](c, "nope", echoArgs{}, time.Second)
	if err == nil || !strings.Contains(err.Error(), "unknown method") {
		t.Errorf("err = %v, want unknown method", err)
	}
}

func TestHandlerPanicIsolated(t *testing.T) {
	_, addr := startServer(t)
	c := dial(t, addr)
	if _, err := Invoke[echoArgs, echoReply](c, "panic", echoArgs{}, time.Second); err == nil ||
		!strings.Contains(err.Error(), "panic") {
		t.Errorf("err = %v, want panic surfaced as error", err)
	}
	// The connection must survive the panicking handler.
	reply, err := Invoke[echoArgs, echoReply](c, "echo", echoArgs{Text: "x", N: 1}, time.Second)
	if err != nil || reply.Text != "x" {
		t.Errorf("connection unusable after handler panic: %v", err)
	}
}

func TestCallTimeout(t *testing.T) {
	_, addr := startServer(t)
	c := dial(t, addr)
	_, err := Invoke[echoArgs, echoReply](c, "slow", echoArgs{}, 20*time.Millisecond)
	if !errors.Is(err, ErrTimeout) {
		t.Errorf("err = %v, want ErrTimeout", err)
	}
}

func TestConcurrentCalls(t *testing.T) {
	_, addr := startServer(t)
	c := dial(t, addr)
	var wg sync.WaitGroup
	errs := make(chan error, 50)
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			want := strings.Repeat(fmt.Sprintf("m%d", i), 2)
			reply, err := Invoke[echoArgs, echoReply](c, "echo",
				echoArgs{Text: fmt.Sprintf("m%d", i), N: 2}, 2*time.Second)
			if err != nil {
				errs <- err
				return
			}
			if reply.Text != want {
				errs <- fmt.Errorf("got %q want %q", reply.Text, want)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestMultipleClients(t *testing.T) {
	_, addr := startServer(t)
	for i := 0; i < 4; i++ {
		c := dial(t, addr)
		if _, err := Invoke[echoArgs, echoReply](c, "echo", echoArgs{Text: "q", N: 1}, time.Second); err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
	}
}

func TestServerCloseFailsPendingCalls(t *testing.T) {
	srv, addr := startServer(t)
	c := dial(t, addr)
	done := make(chan error, 1)
	go func() {
		_, err := Invoke[echoArgs, echoReply](c, "slow", echoArgs{}, 5*time.Second)
		done <- err
	}()
	time.Sleep(50 * time.Millisecond)
	srv.Close()
	select {
	case err := <-done:
		if err == nil {
			t.Error("pending call succeeded after server close")
		}
	case <-time.After(2 * time.Second):
		t.Error("pending call hung after server close")
	}
}

func TestClientCloseFailsPendingCalls(t *testing.T) {
	_, addr := startServer(t)
	c, err := Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := Invoke[echoArgs, echoReply](c, "slow", echoArgs{}, 5*time.Second)
		done <- err
	}()
	time.Sleep(50 * time.Millisecond)
	c.Close()
	select {
	case err := <-done:
		if err == nil {
			t.Error("pending call succeeded after client close")
		}
	case <-time.After(2 * time.Second):
		t.Error("pending call hung after client close")
	}
	// Calls after close fail fast.
	if _, err := c.Call("echo", nil, time.Second); !errors.Is(err, ErrClosed) {
		t.Errorf("call after close = %v, want ErrClosed", err)
	}
}

func TestDialFailure(t *testing.T) {
	if _, err := Dial("127.0.0.1:1", 200*time.Millisecond); err == nil {
		t.Error("Dial to closed port succeeded")
	}
}

func TestServerDoubleCloseAndAddr(t *testing.T) {
	srv, addr := startServer(t)
	if srv.Addr() != addr {
		t.Errorf("Addr() = %q, want %q", srv.Addr(), addr)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal("double close errored:", err)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	in := echoArgs{Text: "hello", N: 7}
	raw, err := Encode(in)
	if err != nil {
		t.Fatal(err)
	}
	var out echoArgs
	if err := Decode(raw, &out); err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Errorf("round trip %+v != %+v", out, in)
	}
	if err := Decode([]byte("garbage"), &out); err == nil {
		t.Error("decoding garbage succeeded")
	}
}
