package rpc

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync"
)

// This file is the bulk binary codec of the data plane: length-prefixed
// little-endian frames for []float64 payloads (via math.Float64bits, so
// NaN payloads and infinities round-trip bit-exactly), tiny helpers for
// the string/int headers of data-plane messages, and a sync.Pool of
// recycled byte buffers that keeps the steady-state pull/push cycle free
// of per-iteration allocations.

const (
	// maxPooledBuffer keeps pathological one-off giants (a full-model
	// snapshot of an enormous job) from pinning pool memory forever.
	maxPooledBuffer = 1 << 26

	// minPooledBuffer is the smallest capacity GetBuffer hands out, so
	// ack-sized buffers still amortize across reuse.
	minPooledBuffer = 1 << 10
)

var bufPool sync.Pool

// GetBuffer returns a length-n byte slice from the shared pool, growing
// capacity as needed. The contents are unspecified; callers that append
// should slice it to [:0] first.
func GetBuffer(n int) []byte {
	if v := bufPool.Get(); v != nil {
		b := *(v.(*[]byte))
		if cap(b) >= n {
			return b[:n]
		}
	}
	c := minPooledBuffer
	for c < n {
		c <<= 1
	}
	return make([]byte, n, c)
}

// PutBuffer returns a buffer to the pool. Nil and oversized buffers are
// dropped. The caller must not touch b afterwards.
func PutBuffer(b []byte) {
	if b == nil || cap(b) == 0 || cap(b) > maxPooledBuffer {
		return
	}
	b = b[:0]
	bufPool.Put(&b)
}

// FloatsLen reports the encoded size of an n-element float frame.
func FloatsLen(n int) int { return 4 + 8*n }

// AppendFloats appends a length-prefixed little-endian encoding of vals
// to dst and returns the extended slice. Layout: u32 count, then count
// raw IEEE-754 bit patterns (8 bytes each).
func AppendFloats(dst []byte, vals []float64) []byte {
	off := len(dst)
	need := FloatsLen(len(vals))
	if cap(dst)-off < need {
		grown := make([]byte, off, roundUp(off+need))
		copy(grown, dst)
		dst = grown
	}
	dst = dst[:off+need]
	binary.LittleEndian.PutUint32(dst[off:], uint32(len(vals)))
	off += 4
	for _, v := range vals {
		binary.LittleEndian.PutUint64(dst[off:], math.Float64bits(v))
		off += 8
	}
	return dst
}

// AppendFloatValues appends raw IEEE-754 bit patterns without a count
// prefix. Streaming producers (the PS pull handler) write one u32 count
// for the whole frame, then append each stripe's values under that
// stripe's lock.
func AppendFloatValues(dst []byte, vals []float64) []byte {
	off := len(dst)
	need := 8 * len(vals)
	if cap(dst)-off < need {
		grown := make([]byte, off, roundUp(off+need))
		copy(grown, dst)
		dst = grown
	}
	dst = dst[:off+need]
	for _, v := range vals {
		binary.LittleEndian.PutUint64(dst[off:], math.Float64bits(v))
		off += 8
	}
	return dst
}

func roundUp(n int) int {
	c := minPooledBuffer
	for c < n {
		c <<= 1
	}
	return c
}

// ReadFloats decodes one float frame from b into dst (reused when its
// capacity suffices, so steady-state pulls decode without allocating)
// and returns the decoded values plus the bytes following the frame.
func ReadFloats(b []byte, dst []float64) (vals []float64, rest []byte, err error) {
	count, data, rest, err := FloatFrame(b)
	if err != nil {
		return nil, nil, err
	}
	if cap(dst) < count {
		dst = make([]float64, count)
	} else {
		dst = dst[:count]
	}
	for i := range dst {
		dst[i] = FloatAt(data, i)
	}
	return dst, rest, nil
}

// FloatFrame validates a float frame in place and returns its element
// count, the raw element bytes, and the remainder of b. It performs no
// copies: accumulate-style consumers (the PS push handler) read elements
// straight off the wire with FloatAt.
func FloatFrame(b []byte) (count int, data []byte, rest []byte, err error) {
	if len(b) < 4 {
		return 0, nil, nil, fmt.Errorf("rpc: float frame truncated: %d header bytes", len(b))
	}
	count = int(binary.LittleEndian.Uint32(b))
	b = b[4:]
	if count > maxFrame/8 {
		return 0, nil, nil, fmt.Errorf("rpc: float frame count %d exceeds limit", count)
	}
	if len(b) < 8*count {
		return 0, nil, nil, fmt.Errorf("rpc: float frame truncated: want %d value bytes, have %d", 8*count, len(b))
	}
	return count, b[:8*count], b[8*count:], nil
}

// FloatAt reads element i of a validated float-frame data section.
func FloatAt(data []byte, i int) float64 {
	return math.Float64frombits(binary.LittleEndian.Uint64(data[8*i:]))
}

// AppendString appends a u16-length-prefixed string (data-plane message
// headers; method-name-sized, not bulk).
func AppendString(dst []byte, s string) []byte {
	if len(s) > 1<<16-1 {
		s = s[:1<<16-1]
	}
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(s)))
	return append(dst, s...)
}

// ReadString decodes a u16-length-prefixed string and returns the rest.
func ReadString(b []byte) (s string, rest []byte, err error) {
	if len(b) < 2 {
		return "", nil, fmt.Errorf("rpc: string header truncated")
	}
	n := int(binary.LittleEndian.Uint16(b))
	b = b[2:]
	if len(b) < n {
		return "", nil, fmt.Errorf("rpc: string truncated: want %d bytes, have %d", n, len(b))
	}
	return string(b[:n]), b[n:], nil
}

// AppendUint32 appends a little-endian u32 (offsets and counts in
// data-plane message headers).
func AppendUint32(dst []byte, v uint32) []byte {
	return binary.LittleEndian.AppendUint32(dst, v)
}

// ReadUint32 decodes a little-endian u32 and returns the rest.
func ReadUint32(b []byte) (v uint32, rest []byte, err error) {
	if len(b) < 4 {
		return 0, nil, fmt.Errorf("rpc: uint32 truncated")
	}
	return binary.LittleEndian.Uint32(b), b[4:], nil
}

// AppendUint64 appends a little-endian u64 (stripe versions in handoff
// frames).
func AppendUint64(dst []byte, v uint64) []byte {
	return binary.LittleEndian.AppendUint64(dst, v)
}

// ReadUint64 decodes a little-endian u64 and returns the rest.
func ReadUint64(b []byte) (v uint64, rest []byte, err error) {
	if len(b) < 8 {
		return 0, nil, fmt.Errorf("rpc: uint64 truncated")
	}
	return binary.LittleEndian.Uint64(b), b[8:], nil
}
