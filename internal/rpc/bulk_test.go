package rpc

import (
	"encoding/binary"
	"testing"
	"time"
)

// TestLargePayloadCall pushes a body larger than the pool's 64 MiB cap
// through a single call: it must transit the framing layer intact (the
// server checksums it) even though such buffers bypass the pool.
func TestLargePayloadCall(t *testing.T) {
	if testing.Short() {
		t.Skip("68 MiB payload in -short mode")
	}
	const n = maxPooledBuffer + 4<<20 // 68 MiB, over the pooled-buffer cap
	srv := NewServer()
	srv.Handle("sum", func(arg []byte) ([]byte, error) {
		var sum uint64
		for _, b := range arg {
			sum = sum*131 + uint64(b)
		}
		return binary.LittleEndian.AppendUint64(nil, sum), nil
	})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := Dial(addr, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	payload := make([]byte, n)
	var want uint64
	for i := range payload {
		payload[i] = byte(i * 7)
		want = want*131 + uint64(payload[i])
	}
	reply, err := c.Call("sum", payload, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if got := binary.LittleEndian.Uint64(reply); got != want {
		t.Errorf("checksum over %d-byte payload = %d, want %d", n, got, want)
	}
	PutBuffer(reply)
}
