// Package rpc is a minimal gob-over-TCP remote procedure call layer used
// by the live Harmony runtime (master, workers and parameter servers).
//
// It provides what Apache REEF provided the paper's implementation:
// typed request/response messaging with connection reuse, concurrent
// in-flight calls, deadlines and graceful shutdown — built only on the
// standard library.
package rpc

import (
	"bufio"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// Errors returned by the client and server.
var (
	ErrClosed  = errors.New("rpc: connection closed")
	ErrTimeout = errors.New("rpc: call timed out")
)

// Request is the wire envelope for one call.
type Request struct {
	// Seq matches responses to in-flight calls.
	Seq uint64
	// Method routes the call to a registered handler.
	Method string
	// Body is the gob-encoded argument. Concrete types must be
	// registered with gob.Register by both sides.
	Body []byte
}

// Response is the wire envelope for one reply.
type Response struct {
	Seq uint64
	// Err is a non-empty string when the handler failed.
	Err  string
	Body []byte
}

// Handler processes the raw argument bytes of a method and returns reply
// bytes. Encoding helpers are in codec.go.
type Handler func(arg []byte) ([]byte, error)

// Server accepts connections and dispatches calls to handlers.
type Server struct {
	mu       sync.RWMutex
	handlers map[string]Handler
	ln       net.Listener
	conns    map[net.Conn]struct{}
	wg       sync.WaitGroup
	closed   bool
}

// NewServer returns an empty server; register handlers before Serve.
func NewServer() *Server {
	return &Server{
		handlers: make(map[string]Handler),
		conns:    make(map[net.Conn]struct{}),
	}
}

// Handle registers a handler for a method name. Registering after Serve
// has started is safe; re-registering replaces the handler.
func (s *Server) Handle(method string, h Handler) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.handlers[method] = h
}

// Listen binds the server to addr (e.g. "127.0.0.1:0") and starts
// serving in the background. It returns the bound address.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("rpc: listen %s: %w", addr, err)
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return "", ErrClosed
	}
	s.ln = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(ln)
	return ln.Addr().String(), nil
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	br := bufio.NewWriter(conn)
	dec := gob.NewDecoder(bufio.NewReader(conn))
	enc := gob.NewEncoder(br)
	var wmu sync.Mutex // one writer at a time per connection
	for {
		var req Request
		if err := dec.Decode(&req); err != nil {
			return
		}
		s.mu.RLock()
		h, ok := s.handlers[req.Method]
		s.mu.RUnlock()
		s.wg.Add(1)
		go func(req Request) {
			defer s.wg.Done()
			var resp Response
			resp.Seq = req.Seq
			if !ok {
				resp.Err = fmt.Sprintf("rpc: unknown method %q", req.Method)
			} else {
				body, err := safeCall(h, req.Body)
				if err != nil {
					resp.Err = err.Error()
				} else {
					resp.Body = body
				}
			}
			wmu.Lock()
			defer wmu.Unlock()
			if err := enc.Encode(&resp); err != nil {
				return
			}
			_ = br.Flush()
		}(req)
	}
}

// safeCall shields the connection loop from panicking handlers: a failed
// handler fails one call, not the whole runtime (§VI, fault tolerance).
func safeCall(h Handler, arg []byte) (body []byte, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("rpc: handler panic: %v", r)
		}
	}()
	return h(arg)
}

// Addr reports the bound address, or "" before Listen.
func (s *Server) Addr() string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close stops accepting, closes every connection and waits for in-flight
// handlers to drain.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	if s.ln != nil {
		s.ln.Close()
	}
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return nil
}

// Client is a connection to one Server supporting concurrent calls.
type Client struct {
	mu      sync.Mutex
	conn    net.Conn
	enc     *gob.Encoder
	bw      *bufio.Writer
	seq     uint64
	pending map[uint64]chan Response
	closed  bool
	readErr error
	done    chan struct{}
}

// Dial connects to a server with the given timeout.
func Dial(addr string, timeout time.Duration) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("rpc: dial %s: %w", addr, err)
	}
	bw := bufio.NewWriter(conn)
	c := &Client{
		conn:    conn,
		enc:     gob.NewEncoder(bw),
		bw:      bw,
		pending: make(map[uint64]chan Response),
		done:    make(chan struct{}),
	}
	go c.readLoop()
	return c, nil
}

func (c *Client) readLoop() {
	dec := gob.NewDecoder(bufio.NewReader(c.conn))
	for {
		var resp Response
		if err := dec.Decode(&resp); err != nil {
			c.failAll(err)
			return
		}
		c.mu.Lock()
		ch, ok := c.pending[resp.Seq]
		delete(c.pending, resp.Seq)
		c.mu.Unlock()
		if ok {
			ch <- resp
		}
	}
}

func (c *Client) failAll(err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if errors.Is(err, io.EOF) || c.closed {
		err = ErrClosed
	}
	c.readErr = err
	for seq, ch := range c.pending {
		delete(c.pending, seq)
		ch <- Response{Err: err.Error()}
	}
	close(c.done)
}

// Call sends a raw request and waits for the reply or the timeout
// (zero means wait forever).
func (c *Client) Call(method string, arg []byte, timeout time.Duration) ([]byte, error) {
	c.mu.Lock()
	if c.closed || c.readErr != nil {
		err := c.readErr
		c.mu.Unlock()
		if err == nil {
			err = ErrClosed
		}
		return nil, err
	}
	c.seq++
	seq := c.seq
	ch := make(chan Response, 1)
	c.pending[seq] = ch
	err := c.enc.Encode(&Request{Seq: seq, Method: method, Body: arg})
	if err == nil {
		err = c.bw.Flush()
	}
	if err != nil {
		delete(c.pending, seq)
		c.mu.Unlock()
		return nil, fmt.Errorf("rpc: send %s: %w", method, err)
	}
	c.mu.Unlock()

	var timer <-chan time.Time
	if timeout > 0 {
		t := time.NewTimer(timeout)
		defer t.Stop()
		timer = t.C
	}
	select {
	case resp := <-ch:
		if resp.Err != "" {
			return nil, errors.New(resp.Err)
		}
		return resp.Body, nil
	case <-timer:
		c.mu.Lock()
		delete(c.pending, seq)
		c.mu.Unlock()
		return nil, fmt.Errorf("%w: %s after %s", ErrTimeout, method, timeout)
	}
}

// Close tears the connection down; outstanding calls fail with ErrClosed.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	err := c.conn.Close()
	<-c.done // wait for readLoop to drain pending calls
	return err
}
