// Package rpc is a minimal binary-framed remote procedure call layer over
// TCP used by the live Harmony runtime (master, workers and parameter
// servers).
//
// It provides what Apache REEF provided the paper's implementation:
// typed request/response messaging with connection reuse, concurrent
// in-flight calls, deadlines and graceful shutdown — built only on the
// standard library.
//
// # Wire format
//
// Every message is one length-prefixed frame (all integers little-endian):
//
//	u32 payloadLen                      bytes after this field
//	u64 seq                             matches responses to calls
//	u8  kind                            0 = request, 1 = response
//	request:  u16 methodLen, method, body
//	response: u8 status (0 ok, 1 err), body (error text when status=1)
//
// Bodies are opaque to the transport. Control-plane methods gob-encode
// their bodies through Typed/Invoke; bulk data-plane methods carry the
// binary float frames of frame.go and skip gob entirely. The framing
// itself never reflects or copies per element, so a megabyte body costs
// one buffered write on the way out and one ReadFull into a pooled
// buffer on the way in.
package rpc

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// Errors returned by the client and server.
var (
	ErrClosed  = errors.New("rpc: connection closed")
	ErrTimeout = errors.New("rpc: call timed out")
)

const (
	frameRequest  = 0
	frameResponse = 1

	// maxFrame bounds one message's payload; large enough for a full
	// model partition plus headroom, small enough to reject corrupt
	// length prefixes before allocating.
	maxFrame = 1 << 30

	// reqHeader / respHeader are the fixed payload bytes before the
	// variable part: seq(8) + kind(1) + methodLen(2) or status(1).
	reqHeader  = 11
	respHeader = 10
)

// Handler processes the raw argument bytes of a method and returns reply
// bytes. Encoding helpers are in codec.go (gob) and frame.go (binary).
//
// Ownership contract: the argument slice is only valid for the duration
// of the call and is recycled afterwards — handlers must not retain it or
// return a slice aliasing it. The returned reply is recycled by the
// server once written, so handlers must not retain it either; returning a
// buffer from GetBuffer keeps the steady state allocation-free.
type Handler func(arg []byte) ([]byte, error)

// response is the decoded reply delivered to a waiting call.
type response struct {
	Seq  uint64
	Err  string
	Body []byte
}

type handlerEntry struct {
	h Handler
	// inline handlers run on the connection's read loop instead of a
	// fresh goroutine. Reserved for fast, non-blocking data-plane
	// methods (PS pull/push): it saves a goroutine spawn per call and
	// keeps request buffers hot, but an inline handler that blocks
	// stalls every call on its connection.
	inline bool
}

// Server accepts connections and dispatches calls to handlers.
type Server struct {
	mu       sync.RWMutex
	handlers map[string]handlerEntry
	ln       net.Listener
	conns    map[net.Conn]struct{}
	wg       sync.WaitGroup
	closed   bool
}

// NewServer returns an empty server; register handlers before Serve.
func NewServer() *Server {
	return &Server{
		handlers: make(map[string]handlerEntry),
		conns:    make(map[net.Conn]struct{}),
	}
}

// Handle registers a handler for a method name. Registering after Serve
// has started is safe; re-registering replaces the handler.
func (s *Server) Handle(method string, h Handler) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.handlers[method] = handlerEntry{h: h}
}

// HandleInline registers a data-plane handler that runs directly on the
// connection's read loop. Only use it for fast handlers that never block
// on other RPCs: inline dispatch serializes calls per connection.
func (s *Server) HandleInline(method string, h Handler) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.handlers[method] = handlerEntry{h: h, inline: true}
}

// Listen binds the server to addr (e.g. "127.0.0.1:0") and starts
// serving in the background. It returns the bound address.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("rpc: listen %s: %w", addr, err)
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return "", ErrClosed
	}
	s.ln = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(ln)
	return ln.Addr().String(), nil
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	br := bufio.NewReaderSize(conn, 64<<10)
	bw := bufio.NewWriterSize(conn, 64<<10)
	var wmu sync.Mutex // one writer at a time per connection
	var lenBuf [4]byte
	var hdr [reqHeader]byte
	var methodBuf []byte
	for {
		if _, err := io.ReadFull(br, lenBuf[:]); err != nil {
			return
		}
		n := int(binary.LittleEndian.Uint32(lenBuf[:]))
		if n < reqHeader || n > maxFrame {
			return // corrupt stream
		}
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			return
		}
		seq := binary.LittleEndian.Uint64(hdr[0:8])
		if hdr[8] != frameRequest {
			return
		}
		mlen := int(binary.LittleEndian.Uint16(hdr[9:reqHeader]))
		if mlen > n-reqHeader {
			return
		}
		if cap(methodBuf) < mlen {
			methodBuf = make([]byte, mlen)
		}
		method := methodBuf[:mlen]
		if _, err := io.ReadFull(br, method); err != nil {
			return
		}
		body := GetBuffer(n - reqHeader - mlen)
		if _, err := io.ReadFull(br, body); err != nil {
			PutBuffer(body)
			return
		}
		s.mu.RLock()
		e, ok := s.handlers[string(method)] // no-alloc map lookup
		s.mu.RUnlock()
		if !ok {
			PutBuffer(body)
			wmu.Lock()
			err := writeResponse(bw, seq, fmt.Sprintf("rpc: unknown method %q", method), nil)
			wmu.Unlock()
			if err != nil {
				return
			}
			continue
		}
		if e.inline {
			reply, err := safeCall(e.h, body)
			PutBuffer(body)
			wmu.Lock()
			werr := writeCallResult(bw, seq, reply, err)
			wmu.Unlock()
			PutBuffer(reply)
			if werr != nil {
				return
			}
			continue
		}
		s.wg.Add(1)
		go func(seq uint64, body []byte) {
			defer s.wg.Done()
			reply, err := safeCall(e.h, body)
			PutBuffer(body)
			wmu.Lock()
			_ = writeCallResult(bw, seq, reply, err)
			wmu.Unlock()
			PutBuffer(reply)
		}(seq, body)
	}
}

// writeCallResult frames a handler outcome as a response and flushes it.
func writeCallResult(bw *bufio.Writer, seq uint64, reply []byte, err error) error {
	if err != nil {
		return writeResponse(bw, seq, err.Error(), nil)
	}
	return writeResponse(bw, seq, "", reply)
}

// writeResponse frames one reply (or error) and flushes the writer. The
// caller must hold the connection's write lock.
func writeResponse(bw *bufio.Writer, seq uint64, errMsg string, body []byte) error {
	if errMsg != "" {
		body = nil
	}
	payload := respHeader + len(errMsg) + len(body)
	if payload > maxFrame {
		// Replace an oversized reply with an error the caller can see.
		return writeResponse(bw, seq, "rpc: reply exceeds frame limit", nil)
	}
	var hdr [4 + respHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(payload))
	binary.LittleEndian.PutUint64(hdr[4:12], seq)
	hdr[12] = frameResponse
	if errMsg != "" {
		hdr[13] = 1
	}
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	if errMsg != "" {
		if _, err := bw.WriteString(errMsg); err != nil {
			return err
		}
	} else if _, err := bw.Write(body); err != nil {
		return err
	}
	return bw.Flush()
}

// safeCall shields the connection loop from panicking handlers: a failed
// handler fails one call, not the whole runtime (§VI, fault tolerance).
func safeCall(h Handler, arg []byte) (body []byte, err error) {
	defer func() {
		if r := recover(); r != nil {
			body = nil
			err = fmt.Errorf("rpc: handler panic: %v", r)
		}
	}()
	return h(arg)
}

// Addr reports the bound address, or "" before Listen.
func (s *Server) Addr() string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close stops accepting, closes every connection and waits for in-flight
// handlers to drain.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	if s.ln != nil {
		s.ln.Close()
	}
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return nil
}

// Client is a connection to one Server supporting concurrent calls.
type Client struct {
	mu      sync.Mutex
	conn    net.Conn
	bw      *bufio.Writer
	seq     uint64
	pending map[uint64]chan response
	closed  bool
	readErr error
	done    chan struct{}
}

// Dial connects to a server with the given timeout.
func Dial(addr string, timeout time.Duration) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("rpc: dial %s: %w", addr, err)
	}
	c := &Client{
		conn:    conn,
		bw:      bufio.NewWriterSize(conn, 64<<10),
		pending: make(map[uint64]chan response),
		done:    make(chan struct{}),
	}
	go c.readLoop()
	return c, nil
}

func (c *Client) readLoop() {
	br := bufio.NewReaderSize(c.conn, 64<<10)
	var lenBuf [4]byte
	var hdr [respHeader]byte
	for {
		if _, err := io.ReadFull(br, lenBuf[:]); err != nil {
			c.failAll(err)
			return
		}
		n := int(binary.LittleEndian.Uint32(lenBuf[:]))
		if n < respHeader || n > maxFrame {
			c.failAll(errors.New("rpc: corrupt response frame"))
			return
		}
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			c.failAll(err)
			return
		}
		if hdr[8] != frameResponse {
			c.failAll(errors.New("rpc: corrupt response frame"))
			return
		}
		resp := response{Seq: binary.LittleEndian.Uint64(hdr[0:8])}
		bodyLen := n - respHeader
		if hdr[9] != 0 {
			errBytes := make([]byte, bodyLen)
			if _, err := io.ReadFull(br, errBytes); err != nil {
				c.failAll(err)
				return
			}
			resp.Err = string(errBytes)
			if resp.Err == "" {
				resp.Err = "rpc: handler failed"
			}
		} else {
			body := GetBuffer(bodyLen)
			if _, err := io.ReadFull(br, body); err != nil {
				PutBuffer(body)
				c.failAll(err)
				return
			}
			resp.Body = body
		}
		c.mu.Lock()
		ch, ok := c.pending[resp.Seq]
		delete(c.pending, resp.Seq)
		c.mu.Unlock()
		if ok {
			ch <- resp
		} else {
			// The call timed out or was abandoned; reclaim its body.
			PutBuffer(resp.Body)
		}
	}
}

func (c *Client) failAll(err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if errors.Is(err, io.EOF) || c.closed {
		err = ErrClosed
	}
	c.readErr = err
	for seq, ch := range c.pending {
		delete(c.pending, seq)
		ch <- response{Err: err.Error()}
	}
	close(c.done)
}

// Call sends a raw request and waits for the reply or the timeout
// (zero means wait forever).
//
// The returned body may come from the shared buffer pool: callers that
// are done with it should hand it back with PutBuffer (Invoke does this
// automatically). Forgetting to is safe, just slower.
func (c *Client) Call(method string, arg []byte, timeout time.Duration) ([]byte, error) {
	if len(method) > 1<<16-1 {
		return nil, fmt.Errorf("rpc: method name too long (%d bytes)", len(method))
	}
	payload := reqHeader + len(method) + len(arg)
	if payload > maxFrame {
		return nil, fmt.Errorf("rpc: %s request exceeds frame limit (%d bytes)", method, len(arg))
	}
	c.mu.Lock()
	if c.closed || c.readErr != nil {
		err := c.readErr
		c.mu.Unlock()
		if err == nil {
			err = ErrClosed
		}
		return nil, err
	}
	c.seq++
	seq := c.seq
	ch := make(chan response, 1)
	c.pending[seq] = ch
	var hdr [4 + reqHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(payload))
	binary.LittleEndian.PutUint64(hdr[4:12], seq)
	hdr[12] = frameRequest
	binary.LittleEndian.PutUint16(hdr[13:15], uint16(len(method)))
	_, err := c.bw.Write(hdr[:])
	if err == nil {
		_, err = c.bw.WriteString(method)
	}
	if err == nil {
		_, err = c.bw.Write(arg)
	}
	if err == nil {
		err = c.bw.Flush()
	}
	if err != nil {
		delete(c.pending, seq)
		c.mu.Unlock()
		return nil, fmt.Errorf("rpc: send %s: %w", method, err)
	}
	c.mu.Unlock()

	var timer <-chan time.Time
	if timeout > 0 {
		t := time.NewTimer(timeout)
		defer t.Stop()
		timer = t.C
	}
	select {
	case resp := <-ch:
		if resp.Err != "" {
			return nil, errors.New(resp.Err)
		}
		return resp.Body, nil
	case <-timer:
		c.mu.Lock()
		delete(c.pending, seq)
		c.mu.Unlock()
		return nil, fmt.Errorf("%w: %s after %s", ErrTimeout, method, timeout)
	}
}

// Close tears the connection down; outstanding calls fail with ErrClosed.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	err := c.conn.Close()
	<-c.done // wait for readLoop to drain pending calls
	return err
}
