package worker

import (
	"math"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"harmony/internal/memstore"
	"harmony/internal/mlapp"
	"harmony/internal/ps"
	"harmony/internal/rpc"
)

// newCompState builds a jobState around a generated shard stored in
// columnar blocks, mirroring handleLoadJob's data-plane setup without the
// RPC machinery, so the COMP path can be driven directly.
func newCompState(t testing.TB, cfg mlapp.Config, rowsPerBlock int) *jobState {
	t.Helper()
	cfg = fillDefaults(cfg)
	algo, err := mlapp.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	shards, err := mlapp.GenerateShards(cfg, 1, 11)
	if err != nil {
		t.Fatal(err)
	}
	shard := shards[0]
	store, err := memstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })
	cache := newBlockCache()
	store.SetNotify(cache.onEvent)
	for b := 0; b*rowsPerBlock < len(shard.Examples); b++ {
		lo := b * rowsPerBlock
		hi := minInt(lo+rowsPerBlock, len(shard.Examples))
		payload := mlapp.AppendExamples(nil, shard.Examples[lo:hi])
		if err := store.Put(&memstore.Block{ID: b, Payload: payload}); err != nil {
			t.Fatal(err)
		}
	}
	return &jobState{cfg: cfg, algo: algo, store: store, shard: shard, cache: cache}
}

func fillDefaults(cfg mlapp.Config) mlapp.Config {
	if cfg.Features == 0 {
		cfg.Features = 12
	}
	if cfg.Classes == 0 {
		cfg.Classes = 3
	}
	if cfg.Rows == 0 {
		cfg.Rows = 96
	}
	return cfg
}

// sameExamples compares two example slices bit-exactly.
func sameExamples(t *testing.T, got, want []mlapp.Example) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("examples: got %d, want %d", len(got), len(want))
	}
	for i := range got {
		g, w := got[i], want[i]
		if math.Float64bits(g.Y) != math.Float64bits(w.Y) {
			t.Fatalf("example %d: Y = %v, want %v", i, g.Y, w.Y)
		}
		if len(g.X) != len(w.X) || len(g.Tokens) != len(w.Tokens) {
			t.Fatalf("example %d: shape mismatch", i)
		}
		for j := range g.X {
			if math.Float64bits(g.X[j]) != math.Float64bits(w.X[j]) {
				t.Fatalf("example %d: X[%d] = %v, want %v", i, j, g.X[j], w.X[j])
			}
		}
		for j := range g.Tokens {
			if g.Tokens[j] != w.Tokens[j] {
				t.Fatalf("example %d: Tokens[%d] = %d, want %d", i, j, g.Tokens[j], w.Tokens[j])
			}
		}
	}
}

// TestMaterializeShardCacheInvalidation walks the cache through its
// lifecycle: cold decode, warm zero-decode fast path, spill-driven
// invalidation, and re-decode of the reloaded blocks with no stale data.
func TestMaterializeShardCacheInvalidation(t *testing.T) {
	st := newCompState(t, mlapp.Config{Kind: mlapp.MLR}, 16)
	blocks := st.store.Blocks()
	if blocks < 2 {
		t.Fatalf("want multiple blocks, got %d", blocks)
	}

	// Cold: every block is decoded once.
	sh, err := st.materializeShard()
	if err != nil {
		t.Fatal(err)
	}
	sameExamples(t, sh.Examples, st.shard.Examples)
	hits, misses := st.cache.stats()
	if hits != 0 || misses != int64(blocks) {
		t.Fatalf("cold pass: hits=%d misses=%d, want 0/%d", hits, misses, blocks)
	}

	// Warm: the assembled view is still valid, no decode at all.
	sh2, err := st.materializeShard()
	if err != nil {
		t.Fatal(err)
	}
	if sh2 != sh {
		t.Fatal("warm pass rebuilt the assembled shard")
	}
	hits, misses = st.cache.stats()
	if hits != int64(blocks) || misses != int64(blocks) {
		t.Fatalf("warm pass: hits=%d misses=%d, want %d/%d", hits, misses, blocks, blocks)
	}

	// Spill half the blocks: the Evict notifications must invalidate both
	// the per-block entries and the assembled fast path.
	if err := st.store.SetAlpha(0.5); err != nil {
		t.Fatal(err)
	}
	sh3, err := st.materializeShard()
	if err != nil {
		t.Fatal(err)
	}
	sameExamples(t, sh3.Examples, st.shard.Examples)
	_, misses = st.cache.stats()
	if misses == int64(blocks) {
		t.Fatal("spilled blocks were served from the cache without re-decoding")
	}
}

// TestMaterializeResidentZeroAllocs pins the fast path's contract: once a
// fully resident shard has been assembled, further COMP subtasks perform
// zero decode allocations.
func TestMaterializeResidentZeroAllocs(t *testing.T) {
	st := newCompState(t, mlapp.Config{Kind: mlapp.Lasso}, 16)
	if _, err := st.materializeShard(); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := st.materializeShard(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("resident materialize allocates %.1f objects/op, want 0", allocs)
	}
}

// TestMaterializeShardErrorPropagates covers the bugfix: a block that
// cannot be decoded must surface an error (the seed silently truncated
// the shard and trained on partial data).
func TestMaterializeShardErrorPropagates(t *testing.T) {
	st := newCompState(t, mlapp.Config{Kind: mlapp.MLR}, 16)
	bad := st.store.Blocks()
	if err := st.store.Put(&memstore.Block{ID: bad, Payload: []byte("garbage")}); err != nil {
		t.Fatal(err)
	}
	if _, err := st.materializeShard(); err == nil {
		t.Fatal("corrupt block did not fail materialization")
	} else if !strings.Contains(err.Error(), "materialize shard") {
		t.Fatalf("err = %v, want materialize-shard context", err)
	}
	if st.assembled != nil {
		t.Fatal("failed materialization left a partial assembled view")
	}
}

// TestCompTeardownOnCorruptBlock verifies the drive loop treats a COMP
// data failure like a PULL/PUSH failure: the job stops instead of
// training on a truncated shard.
func TestCompTeardownOnCorruptBlock(t *testing.T) {
	w, ctl := startWorker(t)
	self := w.srv.Addr()
	if _, err := rpc.Invoke[LoadJobArgs, Ack](ctl, MethodLoadJob, loadArgs(w, []string{self}), 5*time.Second); err != nil {
		t.Fatal(err)
	}
	w.mu.Lock()
	st := w.jobs["j1"]
	w.mu.Unlock()
	bad := st.store.Blocks()
	if err := st.store.Put(&memstore.Block{ID: bad, Payload: []byte("garbage")}); err != nil {
		t.Fatal(err)
	}
	if _, err := rpc.Invoke[StartJobArgs, Ack](ctl, MethodStartJob,
		StartJobArgs{Job: "j1", Iterations: 50}, time.Second); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		w.mu.Lock()
		running, last := st.running, st.lastIter
		w.mu.Unlock()
		if !running {
			if last != 0 {
				t.Fatalf("job advanced to iteration %d on corrupt data", last)
			}
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("job kept running with a corrupt input block")
}

// TestRestoreFrameRoundTrip checks that checkpointed parameters carried
// in the float-frame codec seed the parameter servers bit-exactly.
func TestRestoreFrameRoundTrip(t *testing.T) {
	w, ctl := startWorker(t)
	self := w.srv.Addr()
	restore := make([]float64, 16) // MLR 8×2 model
	for i := range restore {
		restore[i] = float64(i) * 1.25
	}
	restore[3] = math.Copysign(0, -1)
	restore[7] = 1e-308
	args := loadArgs(w, []string{self})
	args.RestoreFrame = rpc.AppendFloats(nil, restore)
	if _, err := rpc.Invoke[LoadJobArgs, Ack](ctl, MethodLoadJob, args, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	c, err := ps.NewClient([]string{self}, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	got := make([]float64, len(restore))
	if err := c.PullInto("j1", got); err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if math.Float64bits(got[i]) != math.Float64bits(restore[i]) {
			t.Fatalf("param %d = %v, want %v", i, got[i], restore[i])
		}
	}

	// A truncated frame must fail the load, not silently seed garbage.
	args.RestoreFrame = args.RestoreFrame[:len(args.RestoreFrame)-3]
	if _, err := rpc.Invoke[LoadJobArgs, Ack](ctl, MethodLoadJob, args, 5*time.Second); err == nil ||
		!strings.Contains(err.Error(), "restore frame") {
		t.Fatalf("truncated restore frame: err = %v", err)
	}
}

// TestCompPathRaceSmoke exercises the materialize loop against concurrent
// spill-ratio retunes (the SetAlpha RPC) and the background reloader; run
// under -race it guards the cache's generation protocol.
func TestCompPathRaceSmoke(t *testing.T) {
	st := newCompState(t, mlapp.Config{Kind: mlapp.NMF}, 8)
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		alphas := []float64{0.5, 0, 0.75, 0.25}
		for i := 0; ; i++ {
			select {
			case <-done:
				return
			default:
			}
			if err := st.store.SetAlpha(alphas[i%len(alphas)]); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for i := 0; i < 200; i++ {
		sh, err := st.materializeShard()
		if err != nil {
			t.Fatal(err)
		}
		if len(sh.Examples) != len(st.shard.Examples) {
			t.Fatalf("iteration %d: %d examples, want %d", i, len(sh.Examples), len(st.shard.Examples))
		}
	}
	close(done)
	wg.Wait()
}

// BenchmarkComp compares one steady-state COMP subtask on the fast path
// (decoded-block cache + fused multicore kernel) against a faithful
// replica of the seed implementation (gob-decode every block per
// iteration, serial ComputeInto, separate Loss pass). The replica lives
// here so the comparison survives as the packages evolve.
func BenchmarkComp(b *testing.B) {
	cfg := mlapp.Config{Features: 32, Classes: 8, Rows: 512}
	for _, kind := range []mlapp.Kind{mlapp.MLR, mlapp.Lasso, mlapp.NMF, mlapp.LDA} {
		cfg.Kind = kind
		b.Run(kind.String()+"/cached_binary_parallel", func(b *testing.B) {
			benchCompFast(b, cfg, 0)
		})
		b.Run(kind.String()+"/seed_gob_single", func(b *testing.B) {
			benchCompGob(b, cfg)
		})
	}
}

func benchCompFast(b *testing.B, cfg mlapp.Config, workers int) {
	st := newCompState(b, cfg, 32)
	rng := newBenchRng()
	model := st.algo.InitModel(rng)
	if _, err := st.materializeShard(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		shard, err := st.materializeShard()
		if err != nil {
			b.Fatal(err)
		}
		st.delta, _ = mlapp.ComputeFused(st.algo, st.delta, model, shard, rng, workers, &st.scratch)
	}
}

// benchCompGob replays the seed COMP subtask: gob payloads decoded on
// every iteration, freshly assembled shard, serial update pass, then a
// second full pass for the loss.
func benchCompGob(b *testing.B, cfg mlapp.Config) {
	st := newCompState(b, cfg, 32)
	rng := newBenchRng()
	model := st.algo.InitModel(rng)
	const rowsPerBlock = 32
	var payloads [][]byte
	for lo := 0; lo < len(st.shard.Examples); lo += rowsPerBlock {
		hi := minInt(lo+rowsPerBlock, len(st.shard.Examples))
		p, err := rpc.Encode(st.shard.Examples[lo:hi])
		if err != nil {
			b.Fatal(err)
		}
		payloads = append(payloads, p)
	}
	var delta []float64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := &mlapp.Shard{Kind: st.shard.Kind, RowOffset: st.shard.RowOffset}
		for _, p := range payloads {
			var examples []mlapp.Example
			if err := rpc.Decode(p, &examples); err != nil {
				b.Fatal(err)
			}
			out.Examples = append(out.Examples, examples...)
		}
		delta = st.algo.ComputeInto(delta, model, out, rng)
		_ = st.algo.Loss(model, out)
	}
	_ = delta
}

func newBenchRng() *rand.Rand { return rand.New(rand.NewSource(7)) }
