package worker

import (
	"fmt"
	"sync"

	"harmony/internal/memstore"
	"harmony/internal/metrics"
	"harmony/internal/mlapp"
)

// blockCache is the fast COMP path's decoded-block cache: each input
// block's columnar payload is decoded once and the []mlapp.Example view
// is served from memory until the §IV-C spiller evicts the block. The
// store's Evict notification invalidates the entry, so a spilled block is
// re-decoded on its next access — compute never trains on a view the
// residency model says was paid for again.
//
// Invalidation is generation-based: every eviction bumps gen, and both
// the assembled-shard fast path (materializeShard) and in-flight decodes
// compare generations instead of tracking per-block dirty bits. Bumping
// on every eviction — even of a block this cache never decoded — is
// deliberately conservative: it closes the race where a concurrent
// SetAlpha evicts a block between its store.Get and the cache insert.
type blockCache struct {
	mu      sync.Mutex
	decoded map[int][]mlapp.Example
	gen     uint64

	// Stats (under mu); the process-wide metrics.Comp counters are
	// mirrored for /metrics, these stay per-job for tests and debugging.
	hits   int64
	misses int64
}

func newBlockCache() *blockCache {
	return &blockCache{decoded: make(map[int][]mlapp.Example)}
}

// onEvent is wired as the job store's notify callback. It runs with the
// store lock held, so it only touches cache state.
func (c *blockCache) onEvent(e memstore.Event) {
	if e.Kind != memstore.Evict {
		// A reload re-reads the payload from disk; the decoded entry was
		// already dropped when the block was evicted, so there is nothing
		// to invalidate.
		return
	}
	c.mu.Lock()
	delete(c.decoded, e.ID)
	c.gen++
	c.mu.Unlock()
}

// generation reports the current invalidation generation.
func (c *blockCache) generation() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.gen
}

// recordHits counts n cache-served block accesses (the assembled-shard
// fast path, which never consults the per-block map).
func (c *blockCache) recordHits(n int64) {
	c.mu.Lock()
	c.hits += n
	c.mu.Unlock()
	metrics.Comp.ObserveBlockHits(n)
}

// get returns the decoded examples of one block, decoding (and caching)
// on a miss. The store access happens outside the cache lock: Get may
// block on a synchronous reload, and the store's notify callback takes
// the cache lock while holding the store's.
func (c *blockCache) get(store *memstore.Store, id int) ([]mlapp.Example, error) {
	c.mu.Lock()
	if ex, ok := c.decoded[id]; ok {
		c.hits++
		c.mu.Unlock()
		metrics.Comp.ObserveBlockHits(1)
		return ex, nil
	}
	startGen := c.gen
	c.mu.Unlock()

	blk, err := store.Get(id)
	if err != nil {
		return nil, err
	}
	ex, err := mlapp.DecodeExamples(blk.Payload)
	if err != nil {
		return nil, fmt.Errorf("block %d: %w", id, err)
	}
	metrics.Comp.ObserveBlockMiss()
	c.mu.Lock()
	c.misses++
	if c.gen == startGen {
		// No eviction raced the decode; the entry is safe to serve until
		// the next Evict notification.
		c.decoded[id] = ex
	}
	c.mu.Unlock()
	return ex, nil
}

// stats returns the per-job hit/miss counters.
func (c *blockCache) stats() (hits, misses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}
