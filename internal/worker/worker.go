// Package worker implements the live Harmony worker process: it hosts a
// co-located parameter server, keeps its input shard in a spillable block
// store, and executes jobs as PULL→COMP→PUSH subtask cycles through the
// §IV-A runner queues, synchronizing each iteration with the master.
package worker

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"harmony/internal/memstore"
	"harmony/internal/metrics"
	"harmony/internal/mlapp"
	"harmony/internal/obs"
	"harmony/internal/parallel"
	"harmony/internal/ps"
	"harmony/internal/rpc"
	"harmony/internal/subtask"
)

// RPC method names served by the worker.
const (
	MethodLoadJob  = "worker.loadJob"
	MethodStartJob = "worker.startJob"
	MethodDropJob  = "worker.dropJob"
	MethodSetAlpha = "worker.setAlpha"
	MethodStats    = "worker.stats"
	MethodUpdatePS = "worker.updatePS"
)

// Master-side methods the worker calls.
const (
	MethodBarrier = "master.barrier"
	MethodJobDone = "master.jobDone"
)

// LoadJobArgs prepares a job on this worker: generate (or re-load) the
// input shard, connect to the group's parameter servers, and optionally
// initialize the model partitions.
type LoadJobArgs struct {
	Job     string
	Config  mlapp.Config
	Servers []string
	// ShardIndex / ShardCount select this worker's partition of the
	// synthetic dataset; Seed keeps it reproducible across migrations.
	ShardIndex int
	ShardCount int
	Seed       int64
	// InitModel is set on exactly one worker per group to seed the
	// parameter servers. RestoreFrame carries checkpointed parameters
	// instead when a migrated job resumes (§IV-B4), encoded as one
	// data-plane float frame (rpc.AppendFloats) so large-model
	// migrations ride the binary codec rather than gob's reflective
	// per-element walk.
	InitModel    bool
	RestoreFrame []byte
	// Alpha is the initial disk-block ratio for the shard store.
	Alpha float64
}

// StartJobArgs begins (or resumes) iterating a loaded job.
type StartJobArgs struct {
	Job string
	// FromIteration resumes counting; Iterations is the convergence
	// bound.
	FromIteration int
	Iterations    int
	// Epoch identifies the placement this run belongs to; the worker
	// echoes it on barrier and done calls so the master can discard
	// stragglers from a torn-down placement.
	Epoch int
}

// DropJobArgs stops and unloads a job.
type DropJobArgs struct {
	Job string
}

// SetAlphaArgs retunes the job's spill ratio.
type SetAlphaArgs struct {
	Job   string
	Alpha float64
}

// UpdatePSArgs rewires a running job's PS client to a new server set —
// the worker-side half of elastic resizing (DESIGN.md §12). The client
// keeps connections to retained servers and refreshes its stripe routes
// lazily, so in-flight iterations see at most one moved-stripe retry.
type UpdatePSArgs struct {
	Job     string
	Servers []string
}

// SpanCursorNone asks a Stats call to skip span payloads entirely —
// utilization aggregators poll Stats every scrape and must not drag the
// whole span ring along each time.
const SpanCursorNone = ^uint64(0)

// StatsArgs requests executor statistics. SpanAfter is the caller's
// trace cursor: the reply piggybacks recorded spans with sequence
// numbers beyond it (none when tracing is disabled on this worker, or
// when the cursor is SpanCursorNone).
type StatsArgs struct {
	Unused    bool
	SpanAfter uint64
}

// StatsReply summarizes the worker's executor state.
type StatsReply struct {
	CPUUtil float64
	NetUtil float64
	Jobs    int
	// Comm is this worker process's data-plane traffic (pull/push ops,
	// bytes, latency); the master aggregates it across workers so the
	// control plane's /metrics sees cluster-wide COMM totals even when
	// workers run as separate processes. CommProcess identifies the
	// owning process — in-process workers share one counter set and the
	// aggregator must count it once.
	Comm metrics.CommSnapshot
	// Comp is this process's compute-path health (decoded-block cache
	// hits/misses, reload-stall seconds), aggregated like Comm and
	// deduplicated by the same CommProcess id.
	Comp        metrics.CompSnapshot
	CommProcess string
	// Spans are the subtask/barrier spans recorded since the caller's
	// SpanAfter cursor, and PhaseHist the per-phase latency histograms —
	// both empty unless this worker runs with tracing enabled. They ride
	// the existing Stats path so trace collection needs no extra RPC
	// surface and inherits its best-effort semantics.
	Spans     []obs.Span
	PhaseHist [obs.NumPhases]metrics.HistSnapshot
}

// BarrierArgs is the per-iteration synchronization call to the master
// (the SubTask Synchronizer of Fig. 7). The reply directs the worker.
type BarrierArgs struct {
	Job       string
	Worker    string
	Iteration int
	// Epoch is the placement epoch from StartJobArgs; mismatched calls
	// are stale and answered with Stop.
	Epoch int
	// Measured subtask seconds for profiling (§IV-B1).
	CompSeconds float64
	NetSeconds  float64
	// Loss lets the master track convergence.
	Loss float64
}

// BarrierReply tells the worker how to continue.
type BarrierReply struct {
	Directive Directive
}

// Directive is the master's instruction at an iteration boundary.
type Directive int

// Directives.
const (
	Continue Directive = iota + 1
	Pause
	Stop
)

// JobDoneArgs reports that this worker finished all iterations.
type JobDoneArgs struct {
	Job    string
	Worker string
	Epoch  int
}

// Ack is an empty reply.
type Ack struct{}

// jobState is one loaded job on the worker.
type jobState struct {
	cfg      mlapp.Config
	algo     mlapp.Algorithm
	client   *ps.Client
	store    *memstore.Store
	shard    *mlapp.Shard
	rng      *rand.Rand
	stopCh   chan struct{}
	running  bool
	lastIter int
	// model and delta are reused across iterations: PullInto decodes the
	// pulled parameters straight into model and the fused COMP kernel
	// writes the update into delta, so the steady-state cycle allocates
	// nothing.
	model []float64
	delta []float64
	// The fast COMP path (DESIGN.md §9): cache holds per-block decoded
	// examples, assembled is the stitched shard view valid while
	// assembledGen matches the cache generation, examplesBuf is its
	// reused backing array, and scratch is the fused kernel's per-chunk
	// arena. Only the drive goroutine touches assembled/examplesBuf/
	// scratch; cache is shared with the store's notify callback.
	cache        *blockCache
	assembled    *mlapp.Shard
	assembledGen uint64
	examplesBuf  []mlapp.Example
	scratch      mlapp.Scratch
}

// Worker is the live worker runtime. Create with New, then Close.
type Worker struct {
	name     string
	spillDir string
	// compWorkers bounds the fused COMP kernel's core pool; 0 selects
	// GOMAXPROCS. Atomic so a live retune never races the drive loop.
	// The executor runs one COMP subtask at a time (§IV-A), so the
	// kernel may saturate the pool without oversubscribing.
	compWorkers atomic.Int32
	// rec is the span recorder; nil (the default) means tracing is off
	// and every instrumentation point reduces to a nil check.
	rec atomic.Pointer[obs.Recorder]

	mu   sync.Mutex
	jobs map[string]*jobState

	srv    *rpc.Server
	psrv   *ps.Server
	exec   *subtask.Executor
	master *rpc.Client
	wg     sync.WaitGroup
	closed bool
}

// New starts a worker: its RPC server (with the co-located parameter
// server) listens on addr ("127.0.0.1:0" for tests), and the worker
// registers with the master.
func New(name, addr, masterAddr, spillDir string) (*Worker, string, error) {
	w := &Worker{
		name:     name,
		spillDir: spillDir,
		jobs:     make(map[string]*jobState),
		srv:      rpc.NewServer(),
		psrv:     ps.NewServer(),
		exec:     subtask.NewExecutor(),
	}
	w.psrv.Register(w.srv)
	w.srv.Handle(MethodLoadJob, rpc.Typed(w.handleLoadJob))
	w.srv.Handle(MethodStartJob, rpc.Typed(w.handleStartJob))
	w.srv.Handle(MethodDropJob, rpc.Typed(w.handleDropJob))
	w.srv.Handle(MethodSetAlpha, rpc.Typed(w.handleSetAlpha))
	w.srv.Handle(MethodStats, rpc.Typed(w.handleStats))
	w.srv.Handle(MethodUpdatePS, rpc.Typed(w.handleUpdatePS))
	bound, err := w.srv.Listen(addr)
	if err != nil {
		return nil, "", err
	}
	master, err := rpc.Dial(masterAddr, 10*time.Second)
	if err != nil {
		w.srv.Close()
		return nil, "", fmt.Errorf("worker %s: dial master: %w", name, err)
	}
	w.master = master
	type registerArgs struct {
		Name string
		Addr string
	}
	if _, err := rpc.Invoke[registerArgs, Ack](master, "master.register",
		registerArgs{Name: name, Addr: bound}, 10*time.Second); err != nil {
		w.srv.Close()
		master.Close()
		return nil, "", fmt.Errorf("worker %s: register: %w", name, err)
	}
	return w, bound, nil
}

func (w *Worker) handleLoadJob(a LoadJobArgs) (Ack, error) {
	algo, err := mlapp.New(a.Config)
	if err != nil {
		return Ack{}, err
	}
	shards, err := mlapp.GenerateShards(a.Config, maxInt(a.ShardCount, 1), a.Seed)
	if err != nil {
		return Ack{}, err
	}
	idx := a.ShardIndex
	if idx < 0 || idx >= len(shards) {
		return Ack{}, fmt.Errorf("worker %s: shard index %d of %d", w.name, idx, len(shards))
	}
	client, err := ps.NewClient(a.Servers, 30*time.Second)
	if err != nil {
		return Ack{}, err
	}
	store, err := memstore.Open(fmt.Sprintf("%s/%s-%s", w.spillDir, w.name, a.Job))
	if err != nil {
		client.Close()
		return Ack{}, err
	}
	// Input data lives in the block store so the spill/reload mechanism
	// governs its residency (§IV-C): one block per bundle of examples,
	// encoded in the columnar binary layout the fast COMP path decodes
	// once per residency period.
	shard := shards[idx]
	const rowsPerBlock = 32
	cache := newBlockCache()
	store.SetNotify(cache.onEvent)
	for b := 0; b*rowsPerBlock < len(shard.Examples); b++ {
		lo := b * rowsPerBlock
		hi := minInt(lo+rowsPerBlock, len(shard.Examples))
		payload := mlapp.AppendExamples(nil, shard.Examples[lo:hi])
		if err := store.Put(&memstore.Block{ID: b, Payload: payload}); err != nil {
			client.Close()
			store.Close()
			return Ack{}, err
		}
	}
	if err := store.SetAlpha(a.Alpha); err != nil {
		client.Close()
		store.Close()
		return Ack{}, err
	}

	rng := rand.New(rand.NewSource(a.Seed ^ int64(idx+1)))
	st := &jobState{
		cfg: a.Config, algo: algo, client: client, store: store,
		shard: shard, rng: rng, stopCh: make(chan struct{}),
		cache: cache,
	}
	if a.InitModel {
		var model []float64
		if a.RestoreFrame != nil {
			model, _, err = rpc.ReadFloats(a.RestoreFrame, nil)
			if err != nil {
				client.Close()
				store.Close()
				return Ack{}, fmt.Errorf("worker %s: restore frame: %w", w.name, err)
			}
		} else {
			model = algo.InitModel(rng)
		}
		if err := client.Init(a.Job, model); err != nil {
			client.Close()
			store.Close()
			return Ack{}, err
		}
	}

	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		client.Close()
		store.Close()
		return Ack{}, rpc.ErrClosed
	}
	if old, ok := w.jobs[a.Job]; ok {
		old.client.Close()
		old.store.Close()
	}
	w.jobs[a.Job] = st
	return Ack{}, nil
}

func (w *Worker) handleStartJob(a StartJobArgs) (Ack, error) {
	w.mu.Lock()
	st, ok := w.jobs[a.Job]
	if !ok {
		w.mu.Unlock()
		return Ack{}, fmt.Errorf("worker %s: job %q not loaded", w.name, a.Job)
	}
	if st.running {
		w.mu.Unlock()
		return Ack{}, fmt.Errorf("worker %s: job %q already running", w.name, a.Job)
	}
	st.running = true
	st.stopCh = make(chan struct{})
	w.mu.Unlock()

	w.wg.Add(1)
	go w.drive(a.Job, st, a.FromIteration, a.Iterations, a.Epoch)
	return Ack{}, nil
}

// drive runs the job's PULL→COMP→PUSH cycle through the subtask executor
// until convergence, a pause directive, or shutdown.
func (w *Worker) drive(job string, st *jobState, from, iterations, epoch int) {
	defer w.wg.Done()
	defer func() {
		w.mu.Lock()
		st.running = false
		w.mu.Unlock()
	}()
	modelSize := st.cfg.ModelSize()
	if cap(st.model) < modelSize {
		st.model = make([]float64, modelSize)
	}
	st.model = st.model[:modelSize]
	for iter := from; iter < iterations; iter++ {
		select {
		case <-st.stopCh:
			return
		default:
		}
		var pullErr error
		var compSecs, netSecs float64
		var loss float64
		model := st.model

		// PULL subtask: decode straight into the reused model buffer.
		stepDone := make(chan struct{})
		start := time.Now()
		if err := w.exec.SubmitAt(subtask.Pull, job, iter, func() {
			pullErr = st.client.PullInto(job, model)
		}, func() { close(stepDone) }); err != nil {
			return
		}
		<-stepDone
		netSecs += time.Since(start).Seconds()
		if pullErr != nil {
			return // servers gone: the master is tearing the job down
		}

		// COMP subtask: reload-gated data access plus real computation.
		// The shard comes from the decoded-block cache (re-decoding only
		// blocks the spiller evicted), and the fused multicore kernel
		// produces the update and the loss in one pass over the data,
		// writing into the reused delta buffer.
		var compErr error
		stepDone = make(chan struct{})
		start = time.Now()
		if err := w.exec.SubmitAt(subtask.Comp, job, iter, func() {
			shard, err := st.materializeShard()
			if err != nil {
				compErr = err
				return
			}
			st.delta, loss = mlapp.ComputeFused(st.algo, st.delta, model, shard,
				st.rng, int(w.compWorkers.Load()), &st.scratch)
		}, func() { close(stepDone) }); err != nil {
			return
		}
		<-stepDone
		compSecs = time.Since(start).Seconds()
		if compErr != nil {
			// Input data unavailable or corrupt: training on a truncated
			// shard would silently skew the model and its loss. Tear the
			// job down exactly like a PULL/PUSH failure — the master's
			// recovery path restarts it from the last checkpoint.
			return
		}

		// PUSH subtask.
		var pushErr error
		stepDone = make(chan struct{})
		start = time.Now()
		if err := w.exec.SubmitAt(subtask.Push, job, iter, func() {
			pushErr = st.client.Push(job, st.delta)
		}, func() { close(stepDone) }); err != nil {
			return
		}
		<-stepDone
		netSecs += time.Since(start).Seconds()
		if pushErr != nil {
			return
		}

		st.lastIter = iter

		// Iteration barrier with the master (Fig. 7's synchronizer). The
		// wait is traced so stalls behind slower group members show up on
		// the sync track next to the subtask spans.
		rec := w.rec.Load()
		var barrierStart time.Time
		if rec != nil {
			barrierStart = time.Now()
		}
		reply, err := rpc.Invoke[BarrierArgs, BarrierReply](w.master, MethodBarrier, BarrierArgs{
			Job: job, Worker: w.name, Iteration: iter, Epoch: epoch,
			CompSeconds: compSecs, NetSeconds: netSecs, Loss: loss,
		}, time.Minute)
		if rec != nil {
			rec.Record(obs.PhaseBarrier, job, iter, barrierStart, time.Now())
		}
		if err != nil {
			return
		}
		switch reply.Directive {
		case Pause, Stop:
			return
		}
	}
	_, _ = rpc.Invoke[JobDoneArgs, Ack](w.master, MethodJobDone,
		JobDoneArgs{Job: job, Worker: w.name, Epoch: epoch}, time.Minute)
}

// materializeShard assembles the shard view for one COMP subtask, paying
// reload latency for spilled blocks (the §IV-C stall when the background
// reloader has not caught up) and decoding only blocks the cache lost to
// eviction. A fully resident shard takes the zero-allocation fast path:
// the assembled view from the previous iteration is still valid because
// no eviction bumped the cache generation.
//
// An error — a missing block, a failed reload, a corrupt payload — means
// the shard cannot be assembled whole; the caller tears the job down
// rather than training on partial data with a silently wrong loss.
func (st *jobState) materializeShard() (*mlapp.Shard, error) {
	blocks := st.store.Blocks()
	// The generation is sampled before assembly: if an eviction races the
	// loop below, the stored generation won't match and the next
	// iteration re-assembles.
	gen := st.cache.generation()
	if st.assembled != nil && st.assembledGen == gen {
		st.cache.recordHits(int64(blocks))
		return st.assembled, nil
	}
	st.examplesBuf = st.examplesBuf[:0]
	for b := 0; b < blocks; b++ {
		// Prefetch the next block while decoding this one.
		st.store.Prefetch(b + 1)
		examples, err := st.cache.get(st.store, b)
		if err != nil {
			st.assembled = nil
			return nil, fmt.Errorf("materialize shard: %w", err)
		}
		st.examplesBuf = append(st.examplesBuf, examples...)
	}
	// Re-apply the spill target: reloaded blocks beyond the α budget go
	// back to disk (their cache entries are invalidated by the Evict
	// notification, which is why the fast path only holds for fully
	// resident shards).
	if err := st.store.SetAlpha(st.store.Alpha()); err != nil {
		st.assembled = nil
		return nil, fmt.Errorf("materialize shard: %w", err)
	}
	st.assembled = &mlapp.Shard{
		Kind: st.shard.Kind, RowOffset: st.shard.RowOffset,
		Examples: st.examplesBuf,
	}
	st.assembledGen = gen
	return st.assembled, nil
}

func (w *Worker) handleDropJob(a DropJobArgs) (Ack, error) {
	w.mu.Lock()
	st, ok := w.jobs[a.Job]
	if ok {
		delete(w.jobs, a.Job)
	}
	w.mu.Unlock()
	if !ok {
		return Ack{}, nil
	}
	close(st.stopCh)
	st.client.Close()
	st.store.Close()
	return Ack{}, nil
}

func (w *Worker) handleSetAlpha(a SetAlphaArgs) (Ack, error) {
	w.mu.Lock()
	st, ok := w.jobs[a.Job]
	w.mu.Unlock()
	if !ok {
		return Ack{}, fmt.Errorf("worker %s: job %q not loaded", w.name, a.Job)
	}
	return Ack{}, st.store.SetAlpha(a.Alpha)
}

func (w *Worker) handleUpdatePS(a UpdatePSArgs) (Ack, error) {
	w.mu.Lock()
	st, ok := w.jobs[a.Job]
	w.mu.Unlock()
	if !ok {
		return Ack{}, fmt.Errorf("worker %s: job %q not loaded", w.name, a.Job)
	}
	if err := st.client.SetServers(a.Servers); err != nil {
		return Ack{}, fmt.Errorf("worker %s: update ps: %w", w.name, err)
	}
	return Ack{}, nil
}

func (w *Worker) handleStats(a StatsArgs) (StatsReply, error) {
	cpu, net := w.exec.Utilization()
	w.mu.Lock()
	jobs := len(w.jobs)
	w.mu.Unlock()
	reply := StatsReply{CPUUtil: cpu, NetUtil: net, Jobs: jobs,
		Comm: metrics.Comm.Snapshot(), Comp: metrics.Comp.Snapshot(),
		CommProcess: metrics.ProcessID()}
	if rec := w.rec.Load(); rec != nil {
		if a.SpanAfter != SpanCursorNone {
			reply.Spans = rec.SpansAfter(a.SpanAfter, nil)
		}
		reply.PhaseHist = rec.HistSnapshots()
	}
	return reply, nil
}

// EnableTracing attaches a span recorder of the given ring capacity
// (<= 0 selects obs.DefaultSpanCapacity) to this worker and its subtask
// executor. Call before starting jobs; spans and phase histograms then
// ride StatsReply back to the master.
func (w *Worker) EnableTracing(capacity int) {
	if capacity <= 0 {
		capacity = obs.DefaultSpanCapacity
	}
	r := obs.NewRecorder(capacity)
	w.rec.Store(r)
	w.exec.SetRecorder(r)
}

// SetCompParallelism bounds the fused COMP kernel's core pool (0 restores
// the GOMAXPROCS default). Results are bit-identical at any setting; only
// wall time changes. Safe to call while jobs run — the next COMP subtask
// picks it up.
func (w *Worker) SetCompParallelism(n int) {
	w.compWorkers.Store(int32(parallel.Workers(n)))
}

// Name reports the worker's registered name.
func (w *Worker) Name() string { return w.name }

// Close stops all jobs and tears the worker down.
func (w *Worker) Close() {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return
	}
	w.closed = true
	jobs := make([]*jobState, 0, len(w.jobs))
	for _, st := range w.jobs {
		jobs = append(jobs, st)
	}
	w.jobs = make(map[string]*jobState)
	w.mu.Unlock()
	for _, st := range jobs {
		close(st.stopCh)
	}
	w.master.Close() // unblocks barrier waits
	w.wg.Wait()
	for _, st := range jobs {
		st.client.Close()
		st.store.Close()
	}
	w.exec.Close()
	w.psrv.Close()
	w.srv.Close()
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
