package worker

import (
	"strings"
	"testing"
	"time"

	"harmony/internal/mlapp"
	"harmony/internal/rpc"
)

// fakeMaster is a minimal barrier-free master endpoint for driving a
// worker directly.
func fakeMaster(t *testing.T) string {
	t.Helper()
	srv := rpc.NewServer()
	type registerArgs struct {
		Name string
		Addr string
	}
	srv.Handle("master.register", rpc.Typed(func(a registerArgs) (Ack, error) {
		return Ack{}, nil
	}))
	srv.Handle(MethodBarrier, rpc.Typed(func(a BarrierArgs) (BarrierReply, error) {
		return BarrierReply{Directive: Continue}, nil
	}))
	srv.Handle(MethodJobDone, rpc.Typed(func(a JobDoneArgs) (Ack, error) {
		return Ack{}, nil
	}))
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return addr
}

func startWorker(t *testing.T) (*Worker, *rpc.Client) {
	t.Helper()
	w, addr, err := New("unit", "127.0.0.1:0", fakeMaster(t), t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Close)
	ctl, err := rpc.Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ctl.Close() })
	return w, ctl
}

func loadArgs(w *Worker, servers []string) LoadJobArgs {
	return LoadJobArgs{
		Job:     "j1",
		Config:  mlapp.Config{Kind: mlapp.MLR, Features: 8, Classes: 2, Rows: 64},
		Servers: servers, ShardIndex: 0, ShardCount: 1,
		Seed: 3, InitModel: true,
	}
}

func TestLoadJobValidation(t *testing.T) {
	w, ctl := startWorker(t)
	self := w.srv.Addr()

	// Unknown algorithm.
	bad := loadArgs(w, []string{self})
	bad.Config.Kind = mlapp.Kind(99)
	if _, err := rpc.Invoke[LoadJobArgs, Ack](ctl, MethodLoadJob, bad, time.Second); err == nil {
		t.Error("unknown algorithm accepted")
	}

	// Shard index out of range.
	bad = loadArgs(w, []string{self})
	bad.ShardIndex = 5
	if _, err := rpc.Invoke[LoadJobArgs, Ack](ctl, MethodLoadJob, bad, time.Second); err == nil ||
		!strings.Contains(err.Error(), "shard index") {
		t.Errorf("bad shard index: err = %v", err)
	}

	// No parameter servers.
	bad = loadArgs(w, nil)
	if _, err := rpc.Invoke[LoadJobArgs, Ack](ctl, MethodLoadJob, bad, time.Second); err == nil {
		t.Error("empty server list accepted")
	}
}

func TestStartJobRequiresLoad(t *testing.T) {
	_, ctl := startWorker(t)
	_, err := rpc.Invoke[StartJobArgs, Ack](ctl, MethodStartJob,
		StartJobArgs{Job: "ghost", Iterations: 1}, time.Second)
	if err == nil || !strings.Contains(err.Error(), "not loaded") {
		t.Errorf("start of unloaded job: err = %v", err)
	}
}

func TestLoadStartRunsToCompletion(t *testing.T) {
	w, ctl := startWorker(t)
	self := w.srv.Addr()
	if _, err := rpc.Invoke[LoadJobArgs, Ack](ctl, MethodLoadJob, loadArgs(w, []string{self}), 5*time.Second); err != nil {
		t.Fatal(err)
	}
	if _, err := rpc.Invoke[StartJobArgs, Ack](ctl, MethodStartJob,
		StartJobArgs{Job: "j1", Iterations: 3}, time.Second); err != nil {
		t.Fatal(err)
	}
	// Double start must fail while running... or succeed after it
	// finished; poll stats until the executor ran subtasks.
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		st, err := rpc.Invoke[StatsArgs, StatsReply](ctl, MethodStats, StatsArgs{}, time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if st.Jobs == 1 && st.CPUUtil >= 0 {
			if w.exec.Stats().Executed[1] >= 3 { // 3 COMP subtasks
				return
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("job never completed its iterations")
}

func TestSetAlphaAndDrop(t *testing.T) {
	w, ctl := startWorker(t)
	self := w.srv.Addr()
	if _, err := rpc.Invoke[LoadJobArgs, Ack](ctl, MethodLoadJob, loadArgs(w, []string{self}), 5*time.Second); err != nil {
		t.Fatal(err)
	}
	if _, err := rpc.Invoke[SetAlphaArgs, Ack](ctl, MethodSetAlpha,
		SetAlphaArgs{Job: "j1", Alpha: 0.5}, time.Second); err != nil {
		t.Fatal(err)
	}
	if _, err := rpc.Invoke[SetAlphaArgs, Ack](ctl, MethodSetAlpha,
		SetAlphaArgs{Job: "ghost", Alpha: 0.5}, time.Second); err == nil {
		t.Error("SetAlpha on unknown job succeeded")
	}
	if _, err := rpc.Invoke[DropJobArgs, Ack](ctl, MethodDropJob,
		DropJobArgs{Job: "j1"}, time.Second); err != nil {
		t.Fatal(err)
	}
	// Dropping twice is a no-op.
	if _, err := rpc.Invoke[DropJobArgs, Ack](ctl, MethodDropJob,
		DropJobArgs{Job: "j1"}, time.Second); err != nil {
		t.Fatal(err)
	}
	st, err := rpc.Invoke[StatsArgs, StatsReply](ctl, MethodStats, StatsArgs{}, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if st.Jobs != 0 {
		t.Errorf("jobs = %d after drop", st.Jobs)
	}
}

func TestWorkerDoubleClose(t *testing.T) {
	w, _ := startWorker(t)
	w.Close()
	w.Close()
	if w.Name() != "unit" {
		t.Error("name lost after close")
	}
}
