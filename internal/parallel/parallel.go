// Package parallel provides the bounded worker pool shared by the
// scheduler's candidate search (internal/core) and the experiment
// harness (internal/exp).
//
// The pool is deliberately minimal: callers hand it n independent units
// of work that each write into a caller-owned, index-disjoint result
// slot. Because every unit is a pure function of its index, results are
// identical at any worker count — determinism is the caller's contract,
// the pool only bounds concurrency.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers normalizes a parallelism knob: values below 1 select
// runtime.GOMAXPROCS(0), everything else passes through.
func Workers(n int) int {
	if n < 1 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// Run evaluates fn(0) … fn(n-1) on at most workers goroutines and
// returns once all calls finished. With workers <= 1 (or n == 1) it
// degrades to a plain sequential loop on the calling goroutine — the
// exact single-threaded path, no goroutines spawned.
//
// Work units must be independent: fn must only write to caller-owned
// state indexed by its argument. Indices are handed out in order but may
// complete in any order.
func Run(n, workers int, fn func(int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
