package parallel

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkersDefaults(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(-3) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(5); got != 5 {
		t.Errorf("Workers(5) = %d, want 5", got)
	}
}

func TestRunCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 16} {
		const n = 1000
		counts := make([]int32, n)
		Run(n, workers, func(i int) { atomic.AddInt32(&counts[i], 1) })
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times, want 1", workers, i, c)
			}
		}
	}
}

func TestRunSequentialStaysOnCaller(t *testing.T) {
	// workers <= 1 must not spawn goroutines: indices arrive in order.
	var got []int
	Run(5, 1, func(i int) { got = append(got, i) })
	for i, v := range got {
		if v != i {
			t.Fatalf("sequential order broken: got %v", got)
		}
	}
}

func TestRunZeroAndNegative(t *testing.T) {
	called := false
	Run(0, 4, func(int) { called = true })
	Run(-1, 4, func(int) { called = true })
	if called {
		t.Error("Run with n <= 0 invoked fn")
	}
}
