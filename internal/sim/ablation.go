package sim

import (
	"sort"

	"harmony/internal/core"
)

// allProfiled reports whether every job that has arrived (and not yet
// finished or failed) has produced a usable profile.
func (s *Simulator) allProfiled() bool {
	for id, sj := range s.jobs {
		switch sj.state {
		case jobProfiling, jobRunning, jobPaused:
			if _, ok := s.estimates[id]; !ok {
				return false
			}
		}
	}
	return true
}

// naivePlan stands in for Algorithm 1 when smart grouping is disabled
// (the "subtasks only" ablation of §V-C): jobs are chunked into groups of
// NaiveGroupSize in submission order with an even machine split — no
// performance model, no complementary-resource matching.
func (s *Simulator) naivePlan(jobs []core.JobInfo, machines int) core.Plan {
	if len(jobs) == 0 || machines <= 0 {
		return core.Plan{}
	}
	k := s.cfg.NaiveGroupSize
	if k < 1 {
		k = 2
	}
	nGroups := (len(jobs) + k - 1) / k
	if nGroups > machines {
		nGroups = machines
	}
	// Deterministic shuffle so that grouping is arbitrary rather than
	// correlated with submission order.
	shuffled := make([]core.JobInfo, len(jobs))
	copy(shuffled, jobs)
	s.rng.Shuffle(len(shuffled), func(i, j int) {
		shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
	})
	base := machines / nGroups
	extra := machines % nGroups
	var plan core.Plan
	next := 0
	for gi := 0; gi < nGroups; gi++ {
		m := base
		if gi < extra {
			m++
		}
		count := len(shuffled) / nGroups
		if gi < len(shuffled)%nGroups {
			count++
		}
		plan.Groups = append(plan.Groups, core.Group{
			Jobs:     shuffled[next : next+count],
			Machines: m,
		})
		next += count
	}
	return plan
}

// naiveAddToSmallestGroup places a job into the plan group with the
// fewest jobs — the model-free arrival rule used when smart grouping is
// disabled.
func naiveAddToSmallestGroup(plan core.Plan, job core.JobInfo) (core.Plan, bool) {
	if len(plan.Groups) == 0 {
		return plan, false
	}
	out := plan.Clone()
	idxs := make([]int, len(out.Groups))
	for i := range idxs {
		idxs[i] = i
	}
	sort.SliceStable(idxs, func(a, b int) bool {
		return len(out.Groups[idxs[a]].Jobs) < len(out.Groups[idxs[b]].Jobs)
	})
	gi := idxs[0]
	out.Groups[gi].Jobs = append(out.Groups[gi].Jobs, job)
	return out, true
}

// shrinkPlanNaive removes a finished job and back-fills waiting jobs into
// the smallest groups, without consulting the performance model.
func (s *Simulator) shrinkPlanNaive(finishedID string, waiting []core.JobInfo) core.Plan {
	p := s.plan.Clone()
	if gi, ok := p.FindJob(finishedID); ok {
		jobs := p.Groups[gi].Jobs[:0]
		for _, j := range p.Groups[gi].Jobs {
			if j.ID != finishedID {
				jobs = append(jobs, j)
			}
		}
		p.Groups[gi].Jobs = jobs
		if len(jobs) == 0 {
			p.Groups = append(p.Groups[:gi], p.Groups[gi+1:]...)
		}
	}
	for _, w := range waiting {
		if _, already := p.FindJob(w.ID); already {
			continue // placed by an earlier decision, still migrating
		}
		if next, ok := naiveAddToSmallestGroup(p, w); ok {
			p = next
		}
	}
	return p
}
